package quartz

// Benchmark harness: one testing.B benchmark per paper artifact (tables and
// figures of the evaluation, §4, plus the §3.2 overhead accounting and the
// design ablations). Each benchmark regenerates its artifact at Quick scale
// and reports the headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// exercises the complete reproduction. Full-scale numbers for EXPERIMENTS.md
// come from `go run ./cmd/quartzbench -exp all -scale full`.

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/experiments"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/runner"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// runExperiment regenerates one artifact per iteration through the runner
// (GOMAXPROCS workers — the engine guarantees tables identical to the serial
// path) and reports the mean of the column the extractor selects.
func runExperiment(b *testing.B, id string, metric string, extract func(experiments.Table) float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		runs, err := runner.Suite(context.Background(), []string{id}, experiments.Quick, runner.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if runs[0].Err != nil {
			b.Fatal(runs[0].Err)
		}
		table := runs[0].Table
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if extract != nil {
			b.ReportMetric(extract(table), metric)
		}
	}
}

// meanPercentColumn averages a "12.34%"-formatted column.
func meanPercentColumn(col int) func(experiments.Table) float64 {
	return func(t experiments.Table) float64 {
		var sum float64
		var n int
		for _, row := range t.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(row[col], "+"), "%"), 64)
			if err != nil {
				continue
			}
			if v < 0 {
				v = -v
			}
			sum += v
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
}

func BenchmarkTable1Events(b *testing.B) {
	runExperiment(b, "table1", "", nil)
}

func BenchmarkTable2Latencies(b *testing.B) {
	runExperiment(b, "table2", "", nil)
}

func BenchmarkFig8Throttle(b *testing.B) {
	runExperiment(b, "fig8", "", nil)
}

func BenchmarkFig11MemLatMLP(b *testing.B) {
	runExperiment(b, "fig11", "mean-err-%", meanPercentColumn(4))
}

func BenchmarkFig12LatencySweep(b *testing.B) {
	runExperiment(b, "fig12", "mean-err-%", meanPercentColumn(5))
}

func BenchmarkFig13MultiThreaded(b *testing.B) {
	runExperiment(b, "fig13", "", nil)
}

func BenchmarkFig14MultiLat(b *testing.B) {
	runExperiment(b, "fig14", "mean-err-%", meanPercentColumn(6))
}

func BenchmarkFig15KVStore(b *testing.B) {
	runExperiment(b, "fig15", "mean-err-%", meanPercentColumn(1))
}

func BenchmarkFig16Sensitivity(b *testing.B) {
	runExperiment(b, "fig16", "", nil)
}

func BenchmarkPageRankValidation(b *testing.B) {
	runExperiment(b, "pagerank-validate", "err-%", meanPercentColumn(2))
}

func BenchmarkEpochOverhead(b *testing.B) {
	runExperiment(b, "overhead", "", nil)
}

func BenchmarkEpochSizeSweep(b *testing.B) {
	runExperiment(b, "epoch-size", "mean-err-%", meanPercentColumn(3))
}

func BenchmarkModelAblation(b *testing.B) {
	runExperiment(b, "model-ablation", "", nil)
}

func BenchmarkPCommitAblation(b *testing.B) {
	runExperiment(b, "pcommit", "", nil)
}

func BenchmarkAmortizationAblation(b *testing.B) {
	runExperiment(b, "amortization", "", nil)
}

// --- simulator micro-benchmarks (engine throughput, not paper artifacts) ---

// BenchmarkSimLoadMiss measures the host cost of one simulated demand miss.
func BenchmarkSimLoadMiss(b *testing.B) {
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		b.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	base, err := p.Malloc(1 << 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = p.Run(func(t *simos.Thread) {
		for i := 0; i < b.N; i++ {
			t.Load(base + uintptr(i%(1<<24))*64)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimLoadHit measures the host cost of a simulated L1 hit.
func BenchmarkSimLoadHit(b *testing.B) {
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		b.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	base, err := p.Malloc(4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = p.Run(func(t *simos.Thread) {
		for i := 0; i < b.N; i++ {
			t.Load(base)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimContextSwitch measures a strict two-thread ping-pong: the cost
// of one scheduler handoff.
func BenchmarkSimContextSwitch(b *testing.B) {
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		b.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = p.Run(func(t *simos.Thread) {
		other, err := t.CreateThread("pong", func(t2 *simos.Thread) {
			for i := 0; i < b.N; i++ {
				t2.Compute(10)
				t2.YieldStrict()
			}
		})
		if err != nil {
			t.Failf("create: %v", err)
		}
		for i := 0; i < b.N; i++ {
			t.Compute(10)
			t.YieldStrict()
		}
		t.Join(other)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEmulatedLoad measures the host cost of a simulated miss under an
// attached emulator (epoch machinery live).
func BenchmarkEmulatedLoad(b *testing.B) {
	sys, err := NewSystem(IvyBridge, Config{
		NVMLatency: Nanoseconds(500),
		InitCycles: 1,
		MaxEpoch:   sim.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	base, err := sys.PMalloc(1 << 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = sys.Run(func(t *Thread) {
		for i := 0; i < b.N; i++ {
			t.Load(base + uintptr(i%(1<<24))*64)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
