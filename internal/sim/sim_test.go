package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"nanoseconds", (250 * Nanosecond).Nanoseconds(), 250},
		{"microseconds", (3 * Microsecond).Microseconds(), 3},
		{"milliseconds", (7 * Millisecond).Milliseconds(), 7},
		{"seconds", (2 * Second).Seconds(), 2},
		{"from-nanos", float64(FromNanos(97)), 97 * 1e6},
		{"from-seconds", float64(FromSeconds(0.5)), 0.5e15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestCycleConversionRoundTrip(t *testing.T) {
	const freq = 2.1e9
	d := CyclesToTime(1000, freq)
	wantNS := 1000 / 2.1
	if got := d.Nanoseconds(); got < wantNS-0.001 || got > wantNS+0.001 {
		t.Errorf("CyclesToTime(1000, 2.1GHz) = %vns, want ~%vns", got, wantNS)
	}
	if got := TimeToCycles(d, freq); got < 999.99 || got > 1000.01 {
		t.Errorf("round trip = %v cycles, want ~1000", got)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{176 * Nanosecond, "176ns"},
		{10 * Millisecond, "10ms"},
		{500 * Picosecond, "500ps"},
		{2 * Second, "2s"},
		{MaxTime, "∞"},
		{-3 * Microsecond, "-3us"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	k := NewKernel(0)
	var end Time
	k.Spawn("solo", 0, func(c *Coro) {
		for i := 0; i < 100; i++ {
			c.Advance(10 * Nanosecond)
		}
		end = c.Clock()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 1000*Nanosecond {
		t.Errorf("end clock = %v, want 1us", end)
	}
}

func TestTwoThreadsInterleaveInTimeOrder(t *testing.T) {
	// Thread A advances in 10ns steps, thread B in 25ns steps. With strict
	// ordering, the observed sequence of (thread, clock) pairs must be
	// globally sorted by clock.
	k := NewKernel(0)
	var order []Time
	body := func(step Time, n int) func(*Coro) {
		return func(c *Coro) {
			for i := 0; i < n; i++ {
				c.Advance(step)
				c.Strict()
				order = append(order, c.Clock())
			}
		}
	}
	k.Spawn("a", 0, body(10*Nanosecond, 50))
	k.Spawn("b", 0, body(25*Nanosecond, 20))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 70 {
		t.Fatalf("observed %d events, want 70", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("event %d at %v precedes event %d at %v", i, order[i], i-1, order[i-1])
		}
	}
}

func TestLookaheadBoundsReordering(t *testing.T) {
	// With lookahead L, an event may be observed at most L earlier than an
	// already-observed event.
	const L = 100 * Nanosecond
	k := NewKernel(L)
	var order []Time
	body := func(step Time, n int) func(*Coro) {
		return func(c *Coro) {
			for i := 0; i < n; i++ {
				c.Advance(step)
				c.Sync()
				order = append(order, c.Clock())
			}
		}
	}
	k.Spawn("a", 0, body(7*Nanosecond, 200))
	k.Spawn("b", 0, body(13*Nanosecond, 100))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var maxSeen Time
	for i, ts := range order {
		if ts < maxSeen-L {
			t.Fatalf("event %d at %v violates lookahead bound (max seen %v)", i, ts, maxSeen)
		}
		if ts > maxSeen {
			maxSeen = ts
		}
	}
}

func TestBlockUnblockTransfersTime(t *testing.T) {
	k := NewKernel(0)
	var waiter *Coro
	var wokenAt Time
	k.Spawn("waiter", 0, func(c *Coro) {
		waiter = c
		c.Advance(10 * Nanosecond)
		c.Block()
		wokenAt = c.Clock()
	})
	k.Spawn("waker", 0, func(c *Coro) {
		c.Advance(500 * Nanosecond)
		c.Strict()
		c.Unblock(waiter, c.Clock())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 500*Nanosecond {
		t.Errorf("woken at %v, want 500ns", wokenAt)
	}
}

func TestUnblockInPastKeepsWaiterClock(t *testing.T) {
	k := NewKernel(0)
	var waiter *Coro
	var wokenAt Time
	k.Spawn("waiter", 0, func(c *Coro) {
		waiter = c
		c.Advance(800 * Nanosecond)
		c.Strict()
		c.Block()
		wokenAt = c.Clock()
	})
	k.Spawn("waker", 0, func(c *Coro) {
		// Runs logically in the waiter's past; waiter must not travel back.
		c.Advance(900 * Nanosecond)
		c.Strict()
		c.Unblock(waiter, 100*Nanosecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 800*Nanosecond {
		t.Errorf("woken at %v, want 800ns (own clock preserved)", wokenAt)
	}
}

func TestSleepUntilAndInterrupt(t *testing.T) {
	k := NewKernel(0)
	var sleeper *Coro
	var wokeAt Time
	k.Spawn("sleeper", 0, func(c *Coro) {
		sleeper = c
		wokeAt = c.SleepUntil(10 * Millisecond)
	})
	k.Spawn("interrupter", 0, func(c *Coro) {
		c.Advance(1 * Millisecond)
		c.Strict()
		if !c.Interrupt(sleeper, c.Clock()) {
			c.Failf("target was not sleeping")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 1*Millisecond {
		t.Errorf("woke at %v, want 1ms", wokeAt)
	}
}

func TestSleepWithoutInterruptWakesOnTime(t *testing.T) {
	k := NewKernel(0)
	var wokeAt Time
	k.Spawn("sleeper", 0, func(c *Coro) {
		c.Advance(2 * Nanosecond)
		wokeAt = c.Sleep(5 * Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 5*Millisecond+2*Nanosecond {
		t.Errorf("woke at %v, want 5.000002ms", wokeAt)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel(0)
	k.Spawn("stuck", 0, func(c *Coro) {
		c.Block()
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("Run() = %v, want deadlock error", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock error %q does not name the blocked thread", err)
	}
}

func TestFailfAbortsRun(t *testing.T) {
	k := NewKernel(0)
	k.Spawn("bad", 0, func(c *Coro) {
		c.Advance(1 * Nanosecond)
		c.Failf("boom %d", 42)
	})
	k.Spawn("bystander", 0, func(c *Coro) {
		for i := 0; i < 1000; i++ {
			c.Advance(1 * Nanosecond)
			c.Strict()
		}
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom 42") {
		t.Fatalf("Run() = %v, want failure containing 'boom 42'", err)
	}
}

func TestBodyPanicBecomesError(t *testing.T) {
	k := NewKernel(0)
	k.Spawn("panicky", 0, func(c *Coro) {
		panic("unexpected")
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "unexpected") {
		t.Fatalf("Run() = %v, want panic converted to error", err)
	}
}

func TestSpawnFromRunningCoro(t *testing.T) {
	k := NewKernel(0)
	var childStart, childEnd Time
	k.Spawn("parent", 0, func(c *Coro) {
		c.Advance(100 * Nanosecond)
		c.Spawn("child", 10*Nanosecond, func(cc *Coro) {
			childStart = cc.Clock()
			cc.Advance(50 * Nanosecond)
			childEnd = cc.Clock()
		})
		c.Advance(1 * Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childStart != 110*Nanosecond {
		t.Errorf("child started at %v, want 110ns", childStart)
	}
	if childEnd != 160*Nanosecond {
		t.Errorf("child ended at %v, want 160ns", childEnd)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		k := NewKernel(0)
		var seq []int
		for i := 0; i < 8; i++ {
			id := i
			step := Time(3+2*i) * Nanosecond
			k.Spawn("t", 0, func(c *Coro) {
				for j := 0; j < 40; j++ {
					c.Advance(step)
					c.Strict()
					seq = append(seq, id)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving diverges at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestKernelNowTracksLowWaterMark(t *testing.T) {
	k := NewKernel(0)
	var sampled Time
	k.Spawn("a", 0, func(c *Coro) {
		c.Advance(10 * Nanosecond)
		c.Strict()
		sampled = c.Kernel().Now()
		c.Advance(100 * Nanosecond)
	})
	k.Spawn("b", 0, func(c *Coro) {
		c.Advance(4 * Nanosecond)
		c.Strict()
		c.Advance(200 * Nanosecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sampled > 10*Nanosecond {
		t.Errorf("Now() sampled %v; low-water mark must not exceed sampler's clock", sampled)
	}
	if end := k.Now(); end != 204*Nanosecond {
		t.Errorf("final Now() = %v, want 204ns", end)
	}
}

// TestHeapOrderingProperty checks, via testing/quick, that any batch of
// spawn times is drained by the scheduler in nondecreasing order.
func TestHeapOrderingProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		k := NewKernel(0)
		var seen []Time
		for _, r := range raw {
			start := Time(r%1_000_000) * Picosecond
			k.Spawn("p", start, func(c *Coro) {
				c.Strict()
				seen = append(seen, c.Clock())
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdvanceNegativeFails(t *testing.T) {
	k := NewKernel(0)
	k.Spawn("neg", 0, func(c *Coro) {
		c.Advance(-1)
	})
	if err := k.Run(); err == nil {
		t.Fatal("Run() = nil, want error for negative advance")
	}
}
