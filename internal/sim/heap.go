package sim

// coroHeap is a binary min-heap of coros ordered by scheduling key, with
// coro id as a deterministic tie-breaker. Coros track their heap index so
// they can be re-positioned in place when a wake-up time changes.
type coroHeap struct {
	items []*Coro
}

func (h *coroHeap) len() int { return len(h.items) }

func (h *coroHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	ka, kb := a.key(), b.key()
	if ka != kb {
		return ka < kb
	}
	return a.id < b.id
}

func (h *coroHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *coroHeap) push(c *Coro) {
	c.heapIdx = len(h.items)
	h.items = append(h.items, c)
	h.up(c.heapIdx)
}

func (h *coroHeap) pop() *Coro {
	n := len(h.items)
	top := h.items[0]
	h.swap(0, n-1)
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	top.heapIdx = -1
	return top
}

func (h *coroHeap) peek() *Coro {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// fix restores heap order after c's key changed in place.
func (h *coroHeap) fix(c *Coro) {
	i := c.heapIdx
	if i < 0 || i >= len(h.items) || h.items[i] != c {
		return
	}
	h.up(i)
	h.down(c.heapIdx)
}

func (h *coroHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *coroHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
