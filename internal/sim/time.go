// Package sim implements the deterministic discrete-event simulation kernel
// that the rest of the emulator substrate is built on.
//
// Simulated ("virtual") time is tracked per thread: every simulated thread
// owns a local clock that its operations advance. A conservative sequential
// scheduler always resumes the runnable thread with the smallest clock, so
// events on shared resources (caches, memory controllers, locks) are
// processed in global virtual-time order. An optional lookahead quantum lets
// threads run slightly ahead of the global minimum for non-synchronizing
// operations, trading a bounded amount of ordering precision on shared
// hardware state for a large reduction in context switches. Synchronization
// operations are always strictly ordered regardless of the quantum.
//
// Execution is fully deterministic: scheduling decisions depend only on
// thread clocks and spawn order, and all randomness used by workloads comes
// from explicitly seeded generators.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in (or span of) simulated time, measured in femtoseconds.
//
// Femtosecond resolution lets processor cycle periods (for example 476.19 ps
// at 2.1 GHz) be represented without cumulative drift while an int64 still
// covers about 2.5 hours of simulated time, far more than any experiment in
// this repository needs.
type Time int64

// Common simulated-time units.
const (
	Femtosecond Time = 1
	Picosecond       = 1000 * Femtosecond
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond

	// MaxTime is the largest representable simulated time. It is used as
	// the scheduling horizon when a thread has no peers to synchronize
	// with.
	MaxTime Time = math.MaxInt64
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t with an auto-selected unit, e.g. "176ns" or "10ms".
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "∞"
	case t < 0:
		return "-" + (-t).String()
	case t < Picosecond:
		return fmt.Sprintf("%dfs", int64(t))
	case t < Nanosecond:
		return fmt.Sprintf("%gps", float64(t)/float64(Picosecond))
	case t < Microsecond:
		return fmt.Sprintf("%gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%gs", t.Seconds())
	}
}

// FromNanos converts a floating-point nanosecond quantity to a Time.
func FromNanos(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// FromSeconds converts a floating-point second quantity to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// CyclesToTime converts a cycle count at the given core frequency (Hz) to a
// simulated duration.
func CyclesToTime(cycles int64, freqHz float64) Time {
	return Time(float64(cycles) * 1e15 / freqHz)
}

// TimeToCycles converts a simulated duration to a (fractional) cycle count
// at the given core frequency (Hz).
func TimeToCycles(t Time, freqHz float64) float64 {
	return float64(t) * freqHz / 1e15
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
