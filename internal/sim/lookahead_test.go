package sim

import (
	"testing"
	"testing/quick"
)

// TestLookaheadSingleThreadEquivalence: for a single thread, any lookahead
// produces identical virtual timing (there are no peers to reorder against).
func TestLookaheadSingleThreadEquivalence(t *testing.T) {
	run := func(lookahead Time) Time {
		k := NewKernel(lookahead)
		var end Time
		k.Spawn("solo", 0, func(c *Coro) {
			for i := 0; i < 5000; i++ {
				c.Advance(Time(3+i%7) * Nanosecond)
				c.Sync()
			}
			end = c.Clock()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	strict := run(0)
	for _, la := range []Time{Nanosecond, Microsecond, Millisecond} {
		if got := run(la); got != strict {
			t.Errorf("lookahead %v end = %v, strict = %v", la, got, strict)
		}
	}
}

// TestLookaheadPreservesStrictOps: synchronization operations stay globally
// ordered even under a large lookahead quantum.
func TestLookaheadPreservesStrictOps(t *testing.T) {
	for _, la := range []Time{0, 10 * Microsecond, Millisecond} {
		k := NewKernel(la)
		var order []Time
		body := func(step Time, n int) func(*Coro) {
			return func(c *Coro) {
				for i := 0; i < n; i++ {
					c.Advance(step)
					c.Sync() // lookahead-tolerant progress
					c.Strict()
					order = append(order, c.Clock())
				}
			}
		}
		k.Spawn("a", 0, body(11*Nanosecond, 300))
		k.Spawn("b", 0, body(23*Nanosecond, 150))
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("lookahead %v: strict op at %v observed after %v", la, order[i], order[i-1])
			}
		}
		order = nil
	}
}

// TestLookaheadDeterminism: a fixed lookahead still yields bit-identical
// interleavings across runs.
func TestLookaheadDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel(5 * Microsecond)
		var stamps []Time
		for i := 0; i < 4; i++ {
			step := Time(7+3*i) * Nanosecond
			k.Spawn("t", 0, func(c *Coro) {
				for j := 0; j < 500; j++ {
					c.Advance(step)
					c.Sync()
				}
				c.Strict()
				stamps = append(stamps, c.Clock())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return stamps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestLookaheadBoundProperty: for random step patterns, no Sync-observed
// event precedes an already-observed event by more than the lookahead.
func TestLookaheadBoundProperty(t *testing.T) {
	prop := func(seed uint32, laRaw uint8) bool {
		la := Time(laRaw%100) * Nanosecond
		k := NewKernel(la)
		var order []Time
		x := uint64(seed) | 1
		for i := 0; i < 3; i++ {
			k.Spawn("p", 0, func(c *Coro) {
				local := x + uint64(c.ID())*0x9e3779b97f4a7c15
				for j := 0; j < 100; j++ {
					local = local*6364136223846793005 + 1442695040888963407
					c.Advance(Time(local%50+1) * Nanosecond)
					c.Sync()
					order = append(order, c.Clock())
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		var maxSeen Time
		for _, ts := range order {
			if ts < maxSeen-la {
				return false
			}
			if ts > maxSeen {
				maxSeen = ts
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
