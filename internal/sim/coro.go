package sim

import "fmt"

// coroState describes where a Coro is in its lifecycle.
type coroState int

const (
	stateRunnable coroState = iota + 1
	stateSleeping           // waiting for virtual time to reach wake
	stateBlocked            // waiting for another thread to unblock it
	stateDone
)

func (s coroState) String() string {
	switch s {
	case stateRunnable:
		return "runnable"
	case stateSleeping:
		return "sleeping"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	default:
		return fmt.Sprintf("coroState(%d)", int(s))
	}
}

// grant is the execution permission handed to a coro when it is resumed.
type grant struct {
	strict  Time // clock bound for strictly ordered operations
	horizon Time // clock bound for lookahead-tolerant operations
	abort   bool // kernel is shutting down; unwind immediately
}

// Coro is a simulated thread of execution: a goroutine coupled to a virtual
// clock and scheduled cooperatively by the Kernel. At most one Coro (or the
// scheduler) runs at any host instant, so simulation state needs no locking.
type Coro struct {
	kernel *Kernel
	id     int
	name   string

	clock Time
	wake  Time // valid in stateSleeping
	state coroState
	grant grant

	body    func(*Coro)
	started bool
	resume  chan grant
	yield   chan struct{}
	heapIdx int
}

// abortSentinel is panicked through a coro body to unwind it during kernel
// shutdown; it is recovered silently by run.
type abortSentinel struct{}

// failPanic carries a fatal simulation error out of a coro body.
type failPanic struct{ err error }

// ID reports the coro's unique id (spawn order).
func (c *Coro) ID() int { return c.id }

// Name reports the coro's diagnostic name.
func (c *Coro) Name() string { return c.name }

// Clock reports the coro's local virtual time.
func (c *Coro) Clock() Time { return c.clock }

// Kernel reports the owning kernel.
func (c *Coro) Kernel() *Kernel { return c.kernel }

// run is the goroutine body backing the coro.
func (c *Coro) run() {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case abortSentinel:
		case failPanic:
			c.kernel.fail(fmt.Errorf("sim: thread %q failed at %v: %w", c.name, c.clock, r.err))
		default:
			c.kernel.fail(fmt.Errorf("sim: thread %q panicked at %v: %v", c.name, c.clock, r))
		}
		c.state = stateDone
		c.kernel.finished++
		c.yield <- struct{}{}
	}()
	g := <-c.resume
	if g.abort {
		panic(abortSentinel{})
	}
	c.grant = g
	c.body(c)
}

// yieldBack returns control to the scheduler and blocks until resumed.
func (c *Coro) yieldBack() {
	c.yield <- struct{}{}
	g := <-c.resume
	if g.abort {
		panic(abortSentinel{})
	}
	c.grant = g
}

// Advance moves the coro's clock forward by dt. It does not yield; callers
// use Sync or Strict before touching shared state.
func (c *Coro) Advance(dt Time) {
	if dt < 0 {
		c.Failf("negative time advance %v", dt)
	}
	c.clock += dt
}

// AdvanceTo moves the coro's clock to t if t is in its future.
func (c *Coro) AdvanceTo(t Time) {
	if t > c.clock {
		c.clock = t
	}
}

// Sync yields until the coro's clock is within the lookahead horizon of its
// peers. Call it before operating on shared hardware state where bounded
// reordering is acceptable.
func (c *Coro) Sync() {
	for c.clock > c.grant.horizon {
		c.yieldBack()
	}
}

// Strict yields until the coro's clock is the global minimum among runnable
// peers. Call it before synchronization operations (locks, signals, thread
// management) whose ordering must be exact.
func (c *Coro) Strict() {
	for c.clock > c.grant.strict {
		c.yieldBack()
	}
}

// Yield unconditionally returns control to the scheduler once. It is useful
// after making another thread runnable at a time earlier than the caller's
// clock.
func (c *Coro) Yield() { c.yieldBack() }

// Block parks the coro until another thread calls Unblock on it. The coro's
// clock on return is the unblock time (at least its clock at Block time).
func (c *Coro) Block() {
	c.state = stateBlocked
	c.yieldBack()
}

// Unblock makes a blocked coro runnable with its clock advanced to at least
// at. It must be called from another running coro or before Kernel.Run.
func (c *Coro) Unblock(target *Coro, at Time) {
	c.kernel.unblock(target, at)
}

// SleepUntil parks the coro until virtual time t (or until Interrupt wakes
// it earlier). It reports the coro's clock on wake-up.
func (c *Coro) SleepUntil(t Time) Time {
	if t > c.clock {
		c.state = stateSleeping
		c.wake = t
		c.yieldBack()
	}
	return c.clock
}

// Sleep parks the coro for duration d of virtual time.
func (c *Coro) Sleep(d Time) Time { return c.SleepUntil(c.clock + d) }

// Interrupt wakes a sleeping coro at time at (if earlier than its scheduled
// wake-up). It reports whether the target was sleeping. Interrupting a
// runnable or blocked coro has no effect.
func (c *Coro) Interrupt(target *Coro, at Time) bool {
	if target.state != stateSleeping {
		return false
	}
	if at < target.wake {
		oldKey := target.key()
		target.wake = maxTime(at, target.clock)
		// An earlier wake-up only reorders the heap when it changes the
		// scheduling key (a sleeper whose clock already passed its wake
		// time keys on the clock either way); skip the fix when it cannot.
		if target.key() != oldKey {
			c.kernel.queue.fix(target)
		}
		c.kernel.noteEnqueued(target.key())
	}
	return true
}

// Spawn creates a sibling thread starting at the caller's clock plus cost.
func (c *Coro) Spawn(name string, cost Time, fn func(*Coro)) *Coro {
	return c.kernel.Spawn(name, c.clock+cost, fn)
}

// Failf aborts the simulation with a formatted fatal error attributed to
// this thread. It does not return.
func (c *Coro) Failf(format string, args ...any) {
	panic(failPanic{err: fmt.Errorf(format, args...)})
}

// key is the scheduling key: the virtual time at which the coro next needs
// the scheduler's attention.
func (c *Coro) key() Time {
	if c.state == stateSleeping {
		return maxTime(c.clock, c.wake)
	}
	return c.clock
}
