package sim

import (
	"errors"
	"fmt"
	"sort"
)

// Kernel is the discrete-event scheduler. It owns every simulated thread
// (Coro) and interleaves them deterministically in virtual-time order.
//
// The zero value is not usable; construct kernels with NewKernel.
type Kernel struct {
	lookahead Time

	coros   []*Coro // all coros ever spawned, by id
	queue   coroHeap
	running *Coro // coro currently executing, nil while scheduling

	spawned    int
	finished   int
	dispatches int64
	maxQueue   int
	failure    error
	aborted    bool

	// noFastPath disables the run-to-block re-grant (push+pop per dispatch
	// instead); the equivalence tests use it to pin both paths together.
	noFastPath bool
}

// KernelStats snapshots a kernel's scheduler activity for observability:
// how many coros it ran, how many scheduler dispatches (context switches)
// the interleaving needed, and the run-queue high-water mark. Dispatches
// per coro is the direct measure of how much a lookahead quantum is saving.
type KernelStats struct {
	Spawned    int
	Finished   int
	Dispatches int64
	MaxQueue   int
}

// Stats reports scheduler activity so far (stable after Run returns).
func (k *Kernel) Stats() KernelStats {
	return KernelStats{
		Spawned:    k.spawned,
		Finished:   k.finished,
		Dispatches: k.dispatches,
		MaxQueue:   k.maxQueue,
	}
}

// NewKernel returns a kernel with the given lookahead quantum.
//
// A zero lookahead gives strict global virtual-time ordering for every
// operation. A positive lookahead lets a resumed thread keep executing
// non-strict operations until its clock exceeds the minimum peer clock plus
// the quantum, which greatly reduces context switches for memory-access
// heavy multithreaded workloads.
func NewKernel(lookahead Time) *Kernel {
	if lookahead < 0 {
		lookahead = 0
	}
	return &Kernel{lookahead: lookahead}
}

// Lookahead reports the kernel's lookahead quantum.
func (k *Kernel) Lookahead() Time { return k.lookahead }

// Spawn creates a new simulated thread whose body is fn, starting at virtual
// time start. It may be called before Run, or from inside a running coro (in
// which case start is typically the parent's clock plus a creation cost).
//
// The coro's goroutine is created lazily on first resume, so spawning is
// cheap and no goroutine outlives Run.
func (k *Kernel) Spawn(name string, start Time, fn func(*Coro)) *Coro {
	c := &Coro{
		kernel: k,
		id:     k.spawned,
		name:   name,
		clock:  start,
		state:  stateRunnable,
		body:   fn,
		resume: make(chan grant),
		yield:  make(chan struct{}),
	}
	k.spawned++
	k.coros = append(k.coros, c)
	k.queue.push(c)
	k.noteEnqueued(c.key())
	return c
}

// Run executes the simulation until every thread has finished. It returns an
// error if a thread failed (via Coro.Failf or a panic in its body) or if the
// system deadlocked (blocked threads remain but nothing is runnable).
func (k *Kernel) Run() error {
	for k.queue.len() > 0 && !k.aborted {
		if n := k.queue.len(); n > k.maxQueue {
			k.maxQueue = n
		}
		c := k.queue.pop()
		for {
			if c.state == stateSleeping {
				c.clock = maxTime(c.clock, c.wake)
				c.state = stateRunnable
			}
			c.grant = k.grantFor(c)
			k.dispatch(c)
			if c.state != stateRunnable && c.state != stateSleeping {
				break // done or blocked: nothing to re-queue
			}
			// Run-to-block fast path: if the yielded coro still orders
			// before every queued peer (key, then id — exactly the heap
			// order), pushing it would only have it popped right back, so
			// re-grant it directly and skip both heap operations. The
			// queue the grant computation sees is identical either way,
			// as are dispatch counts; only the high-water mark must be
			// accounted by hand (the reference path measures it with c
			// back in the queue).
			if k.aborted || k.noFastPath || !k.ordersFirst(c) {
				k.queue.push(c)
				break
			}
			if n := k.queue.len() + 1; n > k.maxQueue {
				k.maxQueue = n
			}
		}
	}
	blocked := k.blockedNames()
	k.drain()
	if k.failure != nil {
		return k.failure
	}
	if len(blocked) > 0 {
		return fmt.Errorf("sim: deadlock: %d thread(s) blocked forever: %v", len(blocked), blocked)
	}
	return nil
}

// drain unwinds every started-but-unfinished coro goroutine so that Run
// never leaks goroutines, even after an abort or deadlock.
func (k *Kernel) drain() {
	for _, c := range k.coros {
		if c.started && c.state != stateDone {
			c.resume <- grant{abort: true}
			<-c.yield
		}
	}
}

// Now reports the low-water mark of virtual time: the clock of the earliest
// runnable or sleeping thread, or the maximum finished clock if none remain.
func (k *Kernel) Now() Time {
	c := k.queue.peek()
	switch {
	case c != nil && k.running != nil:
		return minTime(c.key(), k.running.clock)
	case c != nil:
		return c.key()
	case k.running != nil:
		return k.running.clock
	}
	var end Time
	for _, c := range k.coros {
		if c.state == stateDone {
			end = maxTime(end, c.clock)
		}
	}
	return end
}

// dispatch hands control to c and waits for it to yield back.
func (k *Kernel) dispatch(c *Coro) {
	k.dispatches++
	k.running = c
	if !c.started {
		c.started = true
		go c.run()
	}
	c.resume <- c.grant
	<-c.yield
	k.running = nil
}

// grantFor computes the execution horizon for c: how far its clock may
// advance before it must yield back to the scheduler.
func (k *Kernel) grantFor(c *Coro) grant {
	peer := k.queue.peek()
	if peer == nil {
		return grant{strict: MaxTime, horizon: MaxTime}
	}
	pk := peer.key()
	h := pk + k.lookahead
	if h < pk { // overflow
		h = MaxTime
	}
	return grant{strict: pk, horizon: h}
}

// ordersFirst reports whether c schedules before every queued coro — the
// same strict total order (key, then spawn id) the heap pops in.
func (k *Kernel) ordersFirst(c *Coro) bool {
	top := k.queue.peek()
	if top == nil {
		return true
	}
	ck, tk := c.key(), top.key()
	return ck < tk || (ck == tk && c.id < top.id)
}

// unblock moves a blocked coro back onto the run queue with its clock
// advanced to at least at. It must only be called from simulation context
// (inside a running coro) or before Run starts.
func (k *Kernel) unblock(c *Coro, at Time) {
	if c.state != stateBlocked {
		k.fail(fmt.Errorf("sim: unblock of %s in state %v", c.name, c.state))
		return
	}
	c.clock = maxTime(c.clock, at)
	c.state = stateRunnable
	k.queue.push(c)
	k.noteEnqueued(c.key())
}

// noteEnqueued shrinks the running coro's execution grant after a peer
// appears at (or moves to) virtual time at. Without this, a coro that was
// granted a far horizon (for example while it was the only runnable thread)
// could keep executing past events of a thread it just spawned or woke,
// violating causality.
func (k *Kernel) noteEnqueued(at Time) {
	r := k.running
	if r == nil {
		return
	}
	r.grant.strict = minTime(r.grant.strict, at)
	h := at + k.lookahead
	if h < at { // overflow
		h = MaxTime
	}
	r.grant.horizon = minTime(r.grant.horizon, h)
}

// fail records the first fatal error and aborts the simulation.
func (k *Kernel) fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
	k.aborted = true
}

func (k *Kernel) blockedNames() []string {
	var names []string
	for _, c := range k.coros {
		if c.state == stateBlocked {
			names = append(names, c.name)
		}
	}
	sort.Strings(names)
	return names
}

// ErrAborted is returned by coro operations attempted after the kernel has
// aborted due to a prior failure.
var ErrAborted = errors.New("sim: kernel aborted")
