package sim

import (
	"fmt"
	"testing"
)

// runWorkload executes a mixed multi-coro workload (strict yields, sleeps,
// blocking hand-offs, interrupts) and returns an event log of (name, clock)
// observations plus the kernel stats. The noFastPath knob disables Run's
// re-grant fast path so the same workload exercises the reference
// pop/push-per-dispatch scheduler.
func runWorkload(t *testing.T, lookahead Time, noFastPath bool) ([]string, KernelStats) {
	t.Helper()
	k := NewKernel(lookahead)
	k.noFastPath = noFastPath
	var log []string
	record := func(c *Coro) {
		log = append(log, fmt.Sprintf("%s@%d", c.Name(), c.Clock()))
	}

	var pong *Coro
	k.Spawn("compute", 0, func(c *Coro) {
		// Long uninterrupted advance runs — the run-to-block fast path's
		// best case.
		for i := 0; i < 300; i++ {
			c.Advance(3 * Nanosecond)
			if i%50 == 0 {
				c.Strict()
				record(c)
			}
		}
	})
	k.Spawn("stepper", 0, func(c *Coro) {
		for i := 0; i < 100; i++ {
			c.Advance(7 * Nanosecond)
			c.Sync()
			record(c)
		}
	})
	k.Spawn("sleeper", 0, func(c *Coro) {
		for i := 0; i < 20; i++ {
			c.Sleep(40 * Nanosecond)
			record(c)
		}
	})
	pong = k.Spawn("pong", 0, func(c *Coro) {
		for i := 0; i < 10; i++ {
			c.Block()
			record(c)
		}
	})
	k.Spawn("ping", 0, func(c *Coro) {
		for i := 0; i < 10; i++ {
			c.Advance(55 * Nanosecond)
			c.Strict()
			c.Unblock(pong, c.Clock()+5*Nanosecond)
			record(c)
		}
		// Nudge the sleeper with interrupts, including wakes that do and do
		// not change its heap key.
		for i := 0; i < 5; i++ {
			c.Advance(13 * Nanosecond)
			c.Interrupt(k.coros[2], c.Clock())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return log, k.Stats()
}

// TestFastPathMatchesReferenceScheduler runs the same workload with the
// dispatch fast path enabled and disabled: the observable event sequence
// (names and clocks), the dispatch count and the spawn/finish accounting
// must be identical. Only MaxQueue may legitimately differ — the fast path
// never materializes the running coro in the heap, but it still accounts it,
// so it must match too.
func TestFastPathMatchesReferenceScheduler(t *testing.T) {
	for _, lookahead := range []Time{0, 10 * Nanosecond, Microsecond} {
		t.Run(fmt.Sprintf("lookahead=%v", lookahead), func(t *testing.T) {
			fastLog, fastStats := runWorkload(t, lookahead, false)
			refLog, refStats := runWorkload(t, lookahead, true)
			if len(fastLog) != len(refLog) {
				t.Fatalf("event counts differ: fast %d, reference %d", len(fastLog), len(refLog))
			}
			for i := range refLog {
				if fastLog[i] != refLog[i] {
					t.Fatalf("event %d differs: fast %q, reference %q", i, fastLog[i], refLog[i])
				}
			}
			if fastStats != refStats {
				t.Errorf("kernel stats differ: fast %+v, reference %+v", fastStats, refStats)
			}
		})
	}
}

// BenchmarkKernelDispatch measures scheduler throughput on a ping-pong of
// synchronizing coros — the dispatch-dominated regime.
func BenchmarkKernelDispatch(b *testing.B) {
	k := NewKernel(0)
	for w := 0; w < 4; w++ {
		k.Spawn(fmt.Sprintf("w%d", w), 0, func(c *Coro) {
			for i := 0; i < b.N; i++ {
				c.Advance(Nanosecond)
				c.Sync()
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelRunToBlock measures the solo-coro regime where the re-grant
// fast path should keep the heap untouched.
func BenchmarkKernelRunToBlock(b *testing.B) {
	k := NewKernel(0)
	k.Spawn("solo", 0, func(c *Coro) {
		for i := 0; i < b.N; i++ {
			c.Advance(Nanosecond)
			c.Yield()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
