package core

import (
	"fmt"
	"strings"

	"github.com/quartz-emu/quartz/internal/sim"
)

// ThreadStats reports one registered thread's emulation activity.
type ThreadStats struct {
	Name        string
	Epochs      int64
	MaxEpochs   int64 // closed by the monitor's signal
	SyncEpochs  int64 // closed at inter-thread communication events
	AvgEpochLen sim.Time
	Injected    sim.Time // delay actually injected
	WouldInject sim.Time // delay computed in switched-off-injection mode
	WriteDelay  sim.Time // store-model delay computed (asymmetric mode)
	StoreMisses int64    // store misses observed across closed epochs
	Overhead    sim.Time // epoch-processing cost accrued
	Unamortized sim.Time // overhead not yet recovered from delays
	Flushes     int64
	FlushStall  sim.Time
}

// Stats aggregates emulator activity, with the §3.2 feedback on whether the
// epoch-processing overhead was fully amortized.
type Stats struct {
	Threads     []ThreadStats
	Epochs      int64
	MaxEpochs   int64
	SyncEpochs  int64
	Injected    sim.Time
	WouldInject sim.Time
	WriteDelay  sim.Time
	StoreMisses int64
	Overhead    sim.Time
	Unamortized sim.Time
	Flushes     int64
	FlushStall  sim.Time

	// Amortized reports whether the accumulated epoch overhead was fully
	// recovered by discounting injected delays.
	Amortized bool
}

// Stats returns the emulator's accumulated statistics. Valid after Run.
func (e *Emulator) Stats() Stats {
	var s Stats
	for _, ts := range e.threads {
		t := ThreadStats{
			Name:        ts.t.Name(),
			Epochs:      ts.epochs,
			MaxEpochs:   ts.maxEpochs,
			SyncEpochs:  ts.syncEpochs,
			Injected:    ts.injected,
			WouldInject: ts.wouldInject,
			WriteDelay:  ts.writeDelaySum,
			StoreMisses: ts.storeMisses,
			Overhead:    ts.overhead,
			Unamortized: ts.carry,
			Flushes:     ts.flushes,
			FlushStall:  ts.flushStall,
		}
		if ts.epochs > 0 {
			t.AvgEpochLen = ts.epochLenSum / sim.Time(ts.epochs)
		}
		s.Threads = append(s.Threads, t)
		s.Epochs += t.Epochs
		s.MaxEpochs += t.MaxEpochs
		s.SyncEpochs += t.SyncEpochs
		s.Injected += t.Injected
		s.WouldInject += t.WouldInject
		s.WriteDelay += t.WriteDelay
		s.StoreMisses += t.StoreMisses
		s.Overhead += t.Overhead
		s.Unamortized += t.Unamortized
		s.Flushes += t.Flushes
		s.FlushStall += t.FlushStall
	}
	s.Amortized = s.Unamortized == 0 || s.Overhead == 0 ||
		float64(s.Unamortized)/float64(s.Overhead) < 0.05
	return s
}

// Suggestion implements the §3.2 user feedback: it reports whether the
// overhead was amortized and whether adjusting the epoch size may improve
// accuracy for this workload.
func (s Stats) Suggestion() string {
	var b strings.Builder
	if s.Epochs == 0 {
		return "no epochs were closed; the workload may be shorter than the maximum epoch"
	}
	if s.Amortized {
		b.WriteString("emulator overhead fully amortized")
	} else {
		frac := float64(s.Unamortized) / float64(s.Overhead)
		fmt.Fprintf(&b, "%.0f%% of epoch overhead was NOT amortized; the emulated latency is overstated — consider a larger min/max epoch", frac*100)
	}
	if s.Epochs > 0 {
		syncFrac := float64(s.SyncEpochs) / float64(s.Epochs)
		if syncFrac > 0.95 {
			b.WriteString("; epochs are dominated by synchronization events — a smaller min epoch would track dependencies more closely")
		}
	}
	if s.Injected == 0 && s.WouldInject == 0 {
		b.WriteString("; no delay was computed — the workload may be compute-bound or cache-resident (memory-bound workloads benefit from a smaller epoch)")
	}
	return b.String()
}
