package core

import (
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// TestRecorderReconcilesWithStats: the epoch ledger and the metrics registry
// are a second, independent accounting of the same run — they must agree
// exactly with the emulator's own Stats().
func TestRecorderReconcilesWithStats(t *testing.T) {
	rec := obs.New(0)
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
	cfg := fastCfg(500)
	cfg.Observer = rec
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := buildChase(t, p, 0, chaseLines, 21)
	if err := e.Run(func(th *simos.Thread) {
		ch.run(th, 40_000)
	}); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	ledger := rec.Ledger()
	if int64(len(ledger)) != st.Epochs {
		t.Fatalf("ledger has %d records, Stats().Epochs = %d", len(ledger), st.Epochs)
	}
	if st.Epochs == 0 || st.Injected == 0 {
		t.Fatalf("workload closed no epochs or injected nothing: %+v", st)
	}

	var injected, delaySum, overhead sim.Time
	var maxN, syncN, endN int64
	var injectedNS int64
	for _, r := range ledger {
		injected += r.Injected
		delaySum += r.Delay
		overhead += r.Overhead
		injectedNS += int64(r.Injected / sim.Nanosecond)
		switch r.Reason {
		case "max":
			maxN++
		case "sync":
			syncN++
		case "end":
			endN++
		default:
			t.Errorf("record %d has unknown reason %q", r.Seq, r.Reason)
		}
		if r.End < r.Start {
			t.Errorf("record %d: End %v before Start %v", r.Seq, r.End, r.Start)
		}
		// The spin loop polls the TSC at SpinPollCycles granularity, so the
		// observed injection window overshoots the requested delay slightly —
		// never undershoots, and never by much.
		if r.Injected > 0 {
			window := r.InjectEnd - r.InjectStart
			if window < r.Injected || window-r.Injected > 10*sim.Microsecond {
				t.Errorf("record %d: inject window %v vs injected %v (overshoot %v)",
					r.Seq, window, r.Injected, window-r.Injected)
			}
		}
	}
	if injected != st.Injected {
		t.Errorf("ledger injected sum %v != Stats().Injected %v", injected, st.Injected)
	}
	if overhead != st.Overhead {
		t.Errorf("ledger overhead sum %v != Stats().Overhead %v", overhead, st.Overhead)
	}
	if maxN != st.MaxEpochs || syncN != st.SyncEpochs {
		t.Errorf("ledger reasons max/sync = %d/%d, Stats = %d/%d",
			maxN, syncN, st.MaxEpochs, st.SyncEpochs)
	}
	if delaySum < injected {
		t.Errorf("computed delay %v below injected %v; amortization can only withhold", delaySum, injected)
	}

	reg := rec.Registry()
	if got := reg.Counter("quartz.epochs.closed").Value(); got != st.Epochs {
		t.Errorf("epochs.closed counter = %d, Stats().Epochs = %d", got, st.Epochs)
	}
	if got := reg.Counter("quartz.delay.injected_ns").Value(); got != injectedNS {
		t.Errorf("delay.injected_ns counter = %d, ledger sum = %d", got, injectedNS)
	}
	if got := reg.Counter("quartz.epochs.reason.end").Value(); got != endN {
		t.Errorf("reason.end counter = %d, ledger count = %d", got, endN)
	}

	// The metrics snapshot must mention every quartz.* family at least.
	var sb strings.Builder
	if err := rec.WriteMetricsJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"quartz.epochs.closed", "quartz.delay.injected_ns", "quartz.epoch.len_ns", "sim.kernels"} {
		if !strings.Contains(sb.String(), key) {
			t.Errorf("metrics snapshot missing %q", key)
		}
	}
}

// TestRecorderDoesNotPerturbVirtualTime: observation must be pure — an
// attached recorder advances no simulated clock, so two identical runs with
// and without one finish at the same virtual instant.
func TestRecorderDoesNotPerturbVirtualTime(t *testing.T) {
	run := func(rec *obs.Recorder) sim.Time {
		_, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
		cfg := fastCfg(500)
		cfg.Observer = rec
		e, err := Attach(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ch := buildChase(t, p, 0, chaseLines, 13)
		var end sim.Time
		if err := e.Run(func(th *simos.Thread) {
			ch.run(th, 30_000)
			end = th.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}
	bare := run(nil)
	observed := run(obs.New(0))
	if bare != observed {
		t.Errorf("virtual completion time changed under observation: %v vs %v", bare, observed)
	}
}

// TestAttachFallsBackToDefaultRecorder: with no Config.Observer, Attach must
// pick up the process-global recorder the CLIs install — the mechanism that
// lets experiment jobs report without plumbing.
func TestAttachFallsBackToDefaultRecorder(t *testing.T) {
	rec := obs.New(0)
	obs.SetDefault(rec)
	defer obs.SetDefault(nil)

	_, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
	e, err := Attach(p, fastCfg(500))
	if err != nil {
		t.Fatal(err)
	}
	ch := buildChase(t, p, 0, chaseLines, 17)
	if err := e.Run(func(th *simos.Thread) {
		ch.run(th, 20_000)
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Ledger()) == 0 {
		t.Error("default recorder captured no epochs")
	}
	if got := rec.Registry().Counter("sim.kernels").Value(); got != 1 {
		t.Errorf("sim.kernels = %d, want 1", got)
	}
}
