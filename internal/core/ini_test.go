package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

const sampleINI = `
; nvmemul.ini-style configuration
[general]

[latency]
enable = true
read = 500      ; ns
write = 700
nvm_write = 680 ; asymmetric store-model NVM write latency, ns

[bandwidth]
enable = true
read = 5000     # MB/s
write = 2000

[epochs]
min = 0.1
max = 10
monitor_interval = 5

[model]
type = stall
pmc = rdpmc
inject = true
amortize = true

[topology]
two_memory = true
`

func TestParseINIFull(t *testing.T) {
	cfg, err := ParseINI(strings.NewReader(sampleINI))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NVMLatency != sim.FromNanos(500) {
		t.Errorf("NVMLatency = %v, want 500ns", cfg.NVMLatency)
	}
	if cfg.WriteLatency != sim.FromNanos(700) {
		t.Errorf("WriteLatency = %v, want 700ns", cfg.WriteLatency)
	}
	if cfg.NVMWriteLatency != sim.FromNanos(680) {
		t.Errorf("NVMWriteLatency = %v, want 680ns", cfg.NVMWriteLatency)
	}
	if cfg.NVMBandwidth != 5000e6 {
		t.Errorf("NVMBandwidth = %g, want 5e9", cfg.NVMBandwidth)
	}
	if cfg.NVMWriteBandwidth != 2000e6 {
		t.Errorf("NVMWriteBandwidth = %g, want 2e9", cfg.NVMWriteBandwidth)
	}
	if cfg.MinEpoch != 100*sim.Microsecond || cfg.MaxEpoch != 10*sim.Millisecond {
		t.Errorf("epochs = %v/%v", cfg.MinEpoch, cfg.MaxEpoch)
	}
	if cfg.MonitorInterval != 5*sim.Millisecond {
		t.Errorf("monitor interval = %v", cfg.MonitorInterval)
	}
	if cfg.Model != ModelStall || cfg.CounterMode != perf.RDPMC {
		t.Errorf("model = %v / %v", cfg.Model, cfg.CounterMode)
	}
	if cfg.InjectionOff || cfg.DisableAmortization {
		t.Error("inject/amortize flags inverted")
	}
	if !cfg.TwoMemory {
		t.Error("two_memory not set")
	}
}

func TestParseINIDisabledSections(t *testing.T) {
	cfg, err := ParseINI(strings.NewReader(`
[latency]
enable = false
read = 500
nvm_write = 680
[bandwidth]
enable = no
model = 9000
`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NVMLatency != 0 || cfg.NVMBandwidth != 0 {
		t.Errorf("disabled sections leaked: lat=%v bw=%g", cfg.NVMLatency, cfg.NVMBandwidth)
	}
	if cfg.NVMWriteLatency != 0 {
		t.Errorf("enable = false leaked nvm_write: %v", cfg.NVMWriteLatency)
	}
}

// TestSampleINIMatchesParser is the drift gate between the shipped sample
// configuration (docs/nvmemul.ini.sample) and the parser: every key in the
// sample must parse, and the documented asymmetric store-model knob
// ([latency] nvm_write) must round-trip into Config.NVMWriteLatency. A new
// ini key without a sample line (or vice versa) should fail here, not in a
// user's config.
func TestSampleINIMatchesParser(t *testing.T) {
	cfg, err := LoadINIFile(filepath.Join("..", "..", "docs", "nvmemul.ini.sample"))
	if err != nil {
		t.Fatalf("shipped sample no longer parses: %v", err)
	}
	if cfg.NVMLatency != sim.FromNanos(500) {
		t.Errorf("sample NVMLatency = %v, want 500ns", cfg.NVMLatency)
	}
	if cfg.NVMWriteLatency != sim.FromNanos(680) {
		t.Errorf("sample NVMWriteLatency = %v, want 680ns (is the nvm_write line present?)", cfg.NVMWriteLatency)
	}
	if cfg.NVMWriteBandwidth != 2000e6 {
		t.Errorf("sample NVMWriteBandwidth = %g, want 2e9", cfg.NVMWriteBandwidth)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("shipped sample does not validate: %v", err)
	}
}

func TestParseINIInvertedFlags(t *testing.T) {
	cfg, err := ParseINI(strings.NewReader(`
[model]
inject = false
amortize = off
pmc = papi
type = simple
`))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.InjectionOff || !cfg.DisableAmortization {
		t.Error("inject=false / amortize=off not applied")
	}
	if cfg.CounterMode != perf.PAPI || cfg.Model != ModelSimple {
		t.Errorf("pmc/type = %v/%v", cfg.CounterMode, cfg.Model)
	}
}

func TestParseINIErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"unknown-section", "[frobnicate]\nx = 1\n"},
		{"unknown-key", "[latency]\nbogus = 1\n"},
		{"bad-number", "[latency]\nread = fast\n"},
		{"bad-bool", "[latency]\nenable = maybe\n"},
		{"no-section", "read = 500\n"},
		{"no-equals", "[latency]\nread 500\n"},
		{"bad-model", "[model]\ntype = quantum\n"},
		{"bad-pmc", "[model]\npmc = msr\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseINI(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ParseINI(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestLoadINIFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nvmemul.ini")
	if err := os.WriteFile(path, []byte(sampleINI), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadINIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NVMLatency != sim.FromNanos(500) {
		t.Errorf("file config NVMLatency = %v", cfg.NVMLatency)
	}
	if _, err := LoadINIFile(filepath.Join(dir, "missing.ini")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParsedConfigValidatesAndAttaches(t *testing.T) {
	cfg, err := ParseINI(strings.NewReader(`
[latency]
read = 400
[epochs]
min = 0.05
max = 2
`))
	if err != nil {
		t.Fatal(err)
	}
	cfg.InitCycles = 1
	_, p := newMachineProc(t, machineIvy(), simosOptsSocket0())
	if _, err := Attach(p, cfg); err != nil {
		t.Errorf("parsed config failed to attach: %v", err)
	}
}
