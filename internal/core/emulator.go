package core

import (
	"errors"
	"fmt"

	"github.com/quartz-emu/quartz/internal/interpose"
	"github.com/quartz-emu/quartz/internal/kmod"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/trace"
)

// epochReason classifies why an epoch was closed.
type epochReason int

const (
	reasonMax  epochReason = iota + 1 // monitor signal: maximum epoch length
	reasonSync                        // inter-thread communication event
	reasonEnd                         // thread exit / emulator shutdown
)

func (r epochReason) String() string {
	switch r {
	case reasonMax:
		return "max"
	case reasonSync:
		return "sync"
	case reasonEnd:
		return "end"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// threadState is the emulator's per-registered-thread bookkeeping.
type threadState struct {
	t          *simos.Thread
	epochStart sim.Time
	snapshot   counterSample

	inEpochEnd bool

	// statistics
	epochs        int64
	maxEpochs     int64
	syncEpochs    int64
	injected      sim.Time
	wouldInject   sim.Time
	writeDelaySum sim.Time // store-model delay computed (asymmetric mode)
	storeMisses   int64    // store misses observed across closed epochs
	overhead      sim.Time
	carry         sim.Time // accumulated not-yet-amortized overhead
	epochLenSum   sim.Time
	flushes       int64
	flushStall    sim.Time
	pendingWrites []sim.Time // clflushopt completions awaiting pcommit
}

// Emulator is an attached Quartz instance.
type Emulator struct {
	proc *simos.Process
	mach *machine.Machine
	cfg  Config
	km   *kmod.Module

	params   modelParams
	nvmNode  int
	writeLat sim.Time
	// asym is true when the store-side write model is active
	// (NVMWriteLatency > 0): store counters are programmed, read on every
	// epoch close (adding their read cost), and the write-stall term joins
	// the injected delay. False keeps the epoch path bit-identical to the
	// symmetric read-only model.
	asym bool
	// bwSockets are the sockets the bandwidth throttles target (the NVM
	// node in two-memory mode, every socket otherwise).
	bwSockets []int
	// epochCostCycles is the fixed per-close processing cost (counter reads
	// plus epoch logic), hoisted out of endEpoch at Attach time: the event
	// set, counter mode and logic cost are all fixed for the emulator's
	// lifetime, so the hot path must not rebuild them per epoch.
	epochCostCycles int64

	threads  []*threadState
	byThread map[*simos.Thread]*threadState

	monitorThread *simos.Thread
	stopMonitor   bool
	restoreHooks  func()

	rec    *obs.Recorder // nil unless observability is enabled
	obsPID int           // trace PID assigned by rec

	attached bool
	ran      bool
}

// Attach prepares emulation of proc under cfg: it verifies the platform
// (DVFS off; counter support), programs the hardware via the kernel module
// (bandwidth throttle, PMC events, user rdpmc), and interposes on the
// process's thread and synchronization entry points. Call Run afterwards.
func Attach(proc *simos.Process, cfg Config) (*Emulator, error) {
	if proc == nil {
		return nil, errors.New("core: nil process")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mach := proc.Machine()
	mcfg := mach.Config()

	// §6: a varying frequency breaks the cycles<->time translation the
	// model depends on; the testbeds run with DVFS disabled.
	if mach.DVFS().Enabled() {
		return nil, errors.New("core: DVFS is enabled; disable frequency scaling before attaching (see §6)")
	}

	dramLat := cfg.DRAMLatency
	nvmNode := -1
	if cfg.TwoMemory {
		if len(mach.Sockets()) < 2 {
			return nil, errors.New("core: two-memory mode needs a multi-socket machine")
		}
		if !perf.SplitsLocalRemote(mach.Family()) {
			return nil, fmt.Errorf("core: two-memory mode needs local/remote miss counters, unavailable on %v", mach.Family())
		}
		for _, s := range proc.Options().AllowedSockets {
			if s != 0 {
				return nil, fmt.Errorf("core: two-memory mode requires threads bound to socket 0 (allowed: %v)", proc.Options().AllowedSockets)
			}
		}
		if len(proc.Options().AllowedSockets) == 0 {
			return nil, errors.New("core: two-memory mode requires AllowedSockets=[0] (virtual topology)")
		}
		nvmNode = 1
		if dramLat == 0 {
			dramLat = mcfg.RemoteLat // remote DRAM is the NVM substrate
		}
	} else if dramLat == 0 {
		dramLat = mcfg.LocalLat
	}
	if cfg.NVMLatency > 0 && cfg.NVMLatency < dramLat {
		return nil, fmt.Errorf("core: NVM latency %v below DRAM baseline %v; DRAM cannot be sped up", cfg.NVMLatency, dramLat)
	}

	km, err := kmod.Open(mach)
	if err != nil {
		return nil, err
	}
	if err := km.ProgramCounters(); err != nil {
		return nil, err
	}
	km.EnableUserRDPMC()

	// Sockets whose controllers the bandwidth throttles target: the NVM
	// node in two-memory mode, every socket otherwise. The write-collapse
	// curve reprograms the same set per thread registration.
	var bwSockets []int
	if cfg.TwoMemory {
		bwSockets = []int{nvmNode}
	} else {
		for s := range mach.Sockets() {
			bwSockets = append(bwSockets, s)
		}
	}

	if cfg.NVMBandwidth > 0 || cfg.NVMWriteBandwidth > 0 {
		readBW := cfg.NVMBandwidth
		writeBW := cfg.NVMWriteBandwidth
		if writeBW == 0 {
			writeBW = readBW // symmetric throttling by default
		}
		for _, s := range bwSockets {
			if readBW > 0 {
				reg, err := km.ThrottleForBandwidth(s, readBW)
				if err != nil {
					return nil, err
				}
				if err := km.SetReadThrottle(s, reg); err != nil {
					return nil, err
				}
			}
			if writeBW > 0 {
				reg, err := km.ThrottleForBandwidth(s, writeBW)
				if err != nil {
					return nil, err
				}
				if err := km.SetWriteThrottle(s, reg); err != nil {
					return nil, err
				}
			}
		}
	}

	writeLat := cfg.WriteLatency
	if writeLat == 0 && cfg.NVMLatency > dramLat {
		writeLat = cfg.NVMLatency - dramLat
	}

	// The asymmetric store model programs extra counters, so its per-close
	// read cost grows with the store event set — but only when enabled, so
	// a symmetric configuration's epoch cost (and therefore its amortization
	// arithmetic and golden tables) is untouched.
	asym := cfg.NVMWriteLatency > 0
	nEvents := len(perf.EventsFor(mach.Family()))
	if asym {
		nEvents += len(perf.StoreEventsFor(mach.Family()))
	}

	e := &Emulator{
		proc: proc,
		mach: mach,
		cfg:  cfg,
		km:   km,
		params: modelParams{
			model:       cfg.Model,
			nvmLat:      cfg.NVMLatency,
			nvmWriteLat: cfg.NVMWriteLatency,
			dramLat:     dramLat,
			l3Lat:       mcfg.L1.LookupLat + mcfg.L2.LookupLat + mcfg.L3.LookupLat,
			localLat:    mcfg.LocalLat,
			remoteLat:   mcfg.RemoteLat,
			freqHz:      mcfg.Core.FreqHz,
			twoMemory:   cfg.TwoMemory,
		},
		nvmNode:   nvmNode,
		writeLat:  writeLat,
		asym:      asym,
		bwSockets: bwSockets,
		epochCostCycles: perf.ReadCostCycles(cfg.CounterMode, nEvents) +
			cfg.EpochLogicCycles,
		byThread: make(map[*simos.Thread]*threadState),
	}

	// Observability: an explicitly configured recorder wins; otherwise the
	// process-global default (installed by -trace/-metrics CLI flags) is
	// picked up, so emulators assembled deep inside experiment jobs report
	// without plumbing. Both are usually nil — the disabled path is one
	// branch per epoch event.
	e.rec = cfg.Observer
	if e.rec == nil {
		e.rec = obs.Default()
	}
	if e.rec != nil {
		e.obsPID = e.rec.RegisterProcess(fmt.Sprintf("quartz %s (NVM %v)", mcfg.Name, cfg.NVMLatency))
		proc.SetRecorder(e.rec)
	}

	restore, err := interpose.Install(proc, interpose.Hooks{
		ThreadStarted:       e.onThreadStarted,
		BeforeMutexLock:     func(t *simos.Thread, _ *simos.Mutex) { e.onSyncEvent(t) },
		BeforeMutexUnlock:   func(t *simos.Thread, _ *simos.Mutex) { e.onSyncEvent(t) },
		BeforeCondSignal:    func(t *simos.Thread, _ *simos.Cond) { e.onSyncEvent(t) },
		BeforeCondBroadcast: func(t *simos.Thread, _ *simos.Cond) { e.onSyncEvent(t) },
		BeforeRWLock:        func(t *simos.Thread, _ *simos.RWMutex) { e.onSyncEvent(t) },
		BeforeRWUnlock:      func(t *simos.Thread, _ *simos.RWMutex) { e.onSyncEvent(t) },
		BeforeBarrierWait:   func(t *simos.Thread, _ *simos.Barrier) { e.onSyncEvent(t) },
	})
	if err != nil {
		return nil, err
	}
	e.restoreHooks = restore
	proc.RegisterHandler(simos.SigEpoch, e.onSigEpoch)
	e.attached = true
	return e, nil
}

// Config reports the effective (default-filled) configuration.
func (e *Emulator) Config() Config { return e.cfg }

// DRAMLatency reports the baseline latency the model uses.
func (e *Emulator) DRAMLatency() sim.Time { return e.params.dramLat }

// WriteLatency reports the effective PFlush write delay.
func (e *Emulator) WriteLatency() sim.Time { return e.writeLat }

// Run executes fn as the emulated process's main function: the library
// initializes (charging its §3.2 init cost), registers the main thread,
// starts the monitor, runs fn, and shuts the monitor down.
func (e *Emulator) Run(fn simos.ThreadFunc) error {
	if !e.attached {
		return errors.New("core: emulator not attached")
	}
	if e.ran {
		return errors.New("core: emulator already ran")
	}
	e.ran = true
	err := e.proc.Run(func(t *simos.Thread) {
		t.Compute(e.cfg.InitCycles)
		e.register(t)

		monSocket := len(e.mach.Sockets()) - 1
		mon, merr := t.CreateThreadOn(monSocket, "quartz-monitor", e.monitorLoop)
		if merr != nil {
			t.Failf("core: spawning monitor: %v", merr)
		}
		e.monitorThread = mon

		fn(t)

		// Close the main thread's final epoch so trailing stalls are
		// accounted, then stop the monitor.
		if ts := e.byThread[t]; ts != nil {
			e.endEpoch(ts, reasonEnd)
		}
		e.stopMonitor = true
		t.Kill(mon, simos.SigEpoch)
		t.Join(mon)
	})
	e.restoreHooks()
	return err
}

// onThreadStarted registers a new application thread with the monitor
// (Fig. 5 step 1), charging the §3.2 registration cost.
func (e *Emulator) onThreadStarted(t *simos.Thread) {
	if t == e.monitorThread {
		return
	}
	t.Compute(e.cfg.RegisterCycles)
	e.register(t)
}

// register starts epoch bookkeeping for t.
func (e *Emulator) register(t *simos.Thread) {
	ts := &threadState{t: t}
	ts.epochStart = t.Now()
	ts.snapshot = e.readCountersRaw(t)
	e.threads = append(e.threads, ts)
	e.byThread[t] = ts
	if len(e.cfg.WriteBandwidthByThreads) > 0 {
		e.reprogramWriteThrottle(t, len(e.threads))
	}
}

// reprogramWriteThrottle applies the write-bandwidth collapse curve for the
// given registered-thread count: the curve's target (clamped to its ends)
// is translated to a throttle register and written to every NVM-throttled
// socket, through the same token-bucket path static bandwidth caps use.
func (e *Emulator) reprogramWriteThrottle(t *simos.Thread, writers int) {
	curve := e.cfg.WriteBandwidthByThreads
	if writers < 1 {
		writers = 1
	}
	if writers > len(curve) {
		writers = len(curve)
	}
	target := curve[writers-1]
	for _, s := range e.bwSockets {
		reg, err := e.km.ThrottleForBandwidth(s, target)
		if err != nil {
			t.Failf("core: write-collapse throttle for socket %d: %v", s, err)
		}
		if err := e.km.SetWriteThrottle(s, reg); err != nil {
			t.Failf("core: programming write throttle on socket %d: %v", s, err)
		}
	}
}

// onSyncEvent closes the current epoch before an inter-thread communication
// event (lock release, condvar notify) so the accumulated delay propagates
// to waiting threads (§2.3), subject to the minimum epoch length.
func (e *Emulator) onSyncEvent(t *simos.Thread) {
	ts := e.byThread[t]
	if ts == nil || ts.inEpochEnd {
		return
	}
	if t.Now()-ts.epochStart < e.cfg.MinEpoch {
		e.rec.EpochSuppressed("sync")
		return
	}
	e.endEpoch(ts, reasonSync)
}

// onSigEpoch handles the monitor's maximum-epoch signal in the context of
// the interrupted thread (Fig. 5 steps 2-6).
func (e *Emulator) onSigEpoch(t *simos.Thread, _ simos.Signal) {
	ts := e.byThread[t]
	if ts == nil || ts.inEpochEnd {
		return // monitor shutdown kick or unregistered thread
	}
	if t.Now()-ts.epochStart < e.cfg.MinEpoch {
		e.rec.EpochSuppressed("max") // reset after the signal was sent (wake-up drift)
		return
	}
	e.endEpoch(ts, reasonMax)
}

// CloseEpoch force-closes t's current epoch, injecting any accrued delay
// immediately. Measurement harnesses call it before reading timestamps so a
// partial trailing epoch does not escape the measured window; long-running
// applications do not need it.
func (e *Emulator) CloseEpoch(t *simos.Thread) {
	ts := e.byThread[t]
	if ts == nil || ts.inEpochEnd {
		return
	}
	e.endEpoch(ts, reasonEnd)
}

// monitorLoop periodically scans registered threads and signals those whose
// epoch exceeds the maximum length.
func (e *Emulator) monitorLoop(mt *simos.Thread) {
	for !e.stopMonitor {
		_ = mt.Nanosleep(e.cfg.MonitorInterval) // EINTR only at shutdown
		if e.stopMonitor {
			return
		}
		mt.YieldStrict()
		for _, ts := range e.threads {
			if ts.t.Done() || ts.t == mt {
				continue
			}
			if mt.Now()-ts.epochStart > e.cfg.MaxEpoch {
				mt.Kill(ts.t, simos.SigEpoch)
			}
		}
	}
}

// readCountersRaw reads the Table 1 events without charging read cost (used
// for the initial snapshot, which the real library folds into registration).
func (e *Emulator) readCountersRaw(t *simos.Thread) counterSample {
	ctr := t.Core().Counters()
	var s counterSample
	read := func(ev perf.Event) uint64 {
		v, err := ctr.Read(ev)
		if err != nil {
			t.Failf("core: reading %v: %v", ev, err)
		}
		return v
	}
	s.stallCycles = read(perf.EventStallsL2Pending)
	s.l3Hit = read(perf.EventL3Hit)
	if perf.SplitsLocalRemote(ctr.Family()) {
		s.l3MissLoc = read(perf.EventL3MissLocal)
		s.l3MissRem = read(perf.EventL3MissRemote)
	} else {
		s.l3MissLoc = read(perf.EventL3Miss)
	}
	if e.asym {
		s.stores = read(perf.EventStoresRetired)
		if perf.SplitsLocalRemote(ctr.Family()) {
			s.storeMissLoc = read(perf.EventStoreMissLocal)
			s.storeMissRem = read(perf.EventStoreMissRemote)
		} else {
			s.storeMissLoc = read(perf.EventStoreMiss)
		}
	}
	return s
}

// endEpoch closes ts's current epoch: reads the counters (charging rdpmc or
// PAPI cost), evaluates the analytic model, amortizes accumulated overhead,
// injects the remaining delay by spinning, and opens a new epoch.
func (e *Emulator) endEpoch(ts *threadState, reason epochReason) {
	t := ts.t
	ts.inEpochEnd = true
	defer func() { ts.inEpochEnd = false }()

	epochLen := t.Now() - ts.epochStart

	costCycles := e.epochCostCycles
	t.Compute(costCycles)
	overhead := t.Core().TimeForCycles(costCycles)

	sample := e.readCountersRaw(t)
	delta := sample.delta(ts.snapshot)
	delay := e.params.delay(delta)

	// Asymmetric store model: the write-stall term joins the read delay and
	// is injected in the same spin, so virtual time stays coherent across
	// both models. delay stays the combined total through the amortization
	// arithmetic below; writeDelay is recorded separately in the ledger.
	var writeDelay sim.Time
	if e.asym {
		writeDelay = e.params.writeDelay(delta)
		delay += writeDelay
		ts.writeDelaySum += writeDelay
		ts.storeMisses += int64(delta.storeMisses())
	}

	ts.epochs++
	switch reason {
	case reasonMax:
		ts.maxEpochs++
	case reasonSync:
		ts.syncEpochs++
	}
	ts.epochLenSum += epochLen
	ts.overhead += overhead

	// Injection bookkeeping for the epoch ledger: what was actually spun,
	// and over which virtual-time window.
	var injected, injStart, injEnd sim.Time
	doInject := func(d sim.Time) {
		injStart = t.Now()
		e.inject(ts, d)
		injEnd = t.Now()
		injected = d
		// Attribute the injected span to the profiler's inject categories
		// (split read/write by the epoch's writeDelay share); the spin's
		// cycle-quantization overshoot lands in sched_wait.
		t.AccountInjected(d, writeDelay, delay)
	}

	if e.cfg.DisableAmortization {
		if !e.cfg.InjectionOff && delay > 0 {
			doInject(delay)
		} else {
			ts.wouldInject += delay
		}
	} else {
		// §3.2: discount injected delay by accumulated epoch-processing
		// overhead; carry the remainder into upcoming epochs.
		ts.carry += overhead
		switch {
		case e.cfg.InjectionOff:
			ts.wouldInject += delay
		case delay > ts.carry:
			inject := delay - ts.carry
			ts.carry = 0
			doInject(inject)
		default:
			ts.carry -= delay
		}
	}

	if t.Tracing() {
		t.Trace(trace.KindEpoch, fmt.Sprintf("len=%v delay=%v reason=%d", epochLen, delay, int(reason)))
	}

	if e.rec != nil {
		epochEnd := ts.epochStart + epochLen
		e.rec.EpochClosed(obs.EpochRecord{
			PID:            e.obsPID,
			TID:            t.TID(),
			Thread:         t.Name(),
			Start:          ts.epochStart,
			End:            epochEnd,
			Reason:         reason.String(),
			StallCycles:    delta.stallCycles,
			L3Hit:          delta.l3Hit,
			L3MissLocal:    delta.l3MissLoc,
			L3MissRemote:   delta.l3MissRem,
			LDMStallCycles: e.params.observedStall(delta),
			Stores:         delta.stores,
			StoreMissLocal: delta.storeMissLoc,
			StoreMissRem:   delta.storeMissRem,
			Delay:          delay,
			WriteDelay:     writeDelay,
			Injected:       injected,
			InjectStart:    injStart,
			InjectEnd:      injEnd,
			Overhead:       overhead,
			Carry:          ts.carry,
		})
	}

	// Open the next epoch.
	ts.epochStart = t.Now()
	ts.snapshot = e.readCountersRaw(t)
}

// inject spins for d of virtual time using the rdtscp spin loop.
func (e *Emulator) inject(ts *threadState, d sim.Time) {
	t := ts.t
	if t.Tracing() {
		t.Trace(trace.KindInject, d.String())
	}
	target := t.Core().TSC(t.Now()) + uint64(sim.TimeToCycles(d, t.Core().FreqHz()))
	t.SpinUntilTSC(target, e.cfg.SpinPollCycles)
	ts.injected += d
}
