package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/quartz-emu/quartz/internal/sim"
)

func ivyParams() modelParams {
	return modelParams{
		model:     ModelStall,
		nvmLat:    sim.FromNanos(500),
		dramLat:   sim.FromNanos(87),
		l3Lat:     sim.FromNanos(17.5),
		localLat:  sim.FromNanos(87),
		remoteLat: sim.FromNanos(176),
		freqHz:    2.2e9,
	}
}

func TestEq3AllMissesPassesStallsThrough(t *testing.T) {
	p := ivyParams()
	d := counterSample{stallCycles: 100_000, l3MissLoc: 500}
	if got := p.ldmStall(d); math.Abs(got-100_000) > 1e-6 {
		t.Errorf("ldmStall with no L3 hits = %g, want 100000", got)
	}
}

func TestEq3ScalesByHitMissMix(t *testing.T) {
	p := ivyParams()
	// W = 87/17.5 ~= 4.97. With equal hits and misses, the memory share is
	// W/(1+W) ~= 0.833.
	d := counterSample{stallCycles: 100_000, l3Hit: 1000, l3MissLoc: 1000}
	w := 87.0 / 17.5
	want := 100_000 * w / (1 + w)
	if got := p.ldmStall(d); math.Abs(got-want) > 1 {
		t.Errorf("ldmStall = %g, want %g", got, want)
	}
}

func TestEq3NoMissesNoStall(t *testing.T) {
	p := ivyParams()
	d := counterSample{stallCycles: 100_000, l3Hit: 5000}
	if got := p.ldmStall(d); got != 0 {
		t.Errorf("ldmStall with no misses = %g, want 0", got)
	}
}

func TestEq4PaperExample(t *testing.T) {
	// §3.3's worked example: 3000ns total stall, 10 local refs at 100ns,
	// 10 remote refs at 200ns -> 2000ns attributed to remote.
	p := modelParams{
		localLat:  sim.FromNanos(100),
		remoteLat: sim.FromNanos(200),
	}
	d := counterSample{l3MissLoc: 10, l3MissRem: 10}
	got := p.splitRemote(3000, d)
	if math.Abs(got-2000) > 1e-9 {
		t.Errorf("splitRemote = %g, want 2000 (paper's example)", got)
	}
}

func TestEq4NoRemoteRefs(t *testing.T) {
	p := modelParams{localLat: sim.FromNanos(100), remoteLat: sim.FromNanos(200)}
	d := counterSample{l3MissLoc: 10}
	if got := p.splitRemote(3000, d); got != 0 {
		t.Errorf("splitRemote with no remote refs = %g, want 0", got)
	}
}

func TestEq2DelayForSerialChase(t *testing.T) {
	// A serial pointer chase: every access stalls the full DRAM latency.
	// N accesses at 87ns = N*87ns of stall; the injected delay must be
	// N*(500-87)ns.
	p := ivyParams()
	const n = 1000
	stallCycles := sim.TimeToCycles(n*sim.FromNanos(87), p.freqHz)
	d := counterSample{stallCycles: uint64(stallCycles), l3MissLoc: n}
	got := p.delay(d)
	want := n * sim.FromNanos(500-87)
	if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.001 {
		t.Errorf("delay = %v, want %v (%.3f%% off)", got, want, rel*100)
	}
}

func TestEq2AccountsForMLP(t *testing.T) {
	// With MLP=4, the same 1000 references produce only 1000/4 serial
	// stall periods, so Eq. 2 must inject a quarter of the serial delay
	// while Eq. 1 still injects the full amount (Fig. 2).
	p := ivyParams()
	const n = 1000
	stallCycles := sim.TimeToCycles(n/4*sim.FromNanos(87), p.freqHz)
	d := counterSample{stallCycles: uint64(stallCycles), l3MissLoc: n}

	eq2 := p.delay(d)
	p.model = ModelSimple
	eq1 := p.delay(d)

	serial := n * sim.FromNanos(500-87)
	if rel := math.Abs(float64(eq1-serial)) / float64(serial); rel > 0.001 {
		t.Errorf("Eq.1 delay = %v, want full serial %v", eq1, serial)
	}
	if ratio := float64(eq1) / float64(eq2); ratio < 3.9 || ratio > 4.1 {
		t.Errorf("Eq.1/Eq.2 ratio = %g, want ~4 (the MLP factor)", ratio)
	}
}

func TestDelayZeroWhenTargetBelowBaseline(t *testing.T) {
	p := ivyParams()
	p.nvmLat = sim.FromNanos(50) // below DRAM: nothing to add
	d := counterSample{stallCycles: 1 << 20, l3MissLoc: 1000}
	if got := p.delay(d); got != 0 {
		t.Errorf("delay = %v, want 0 when NVM <= DRAM", got)
	}
}

func TestTwoMemoryDelayOnlyForRemote(t *testing.T) {
	p := ivyParams()
	p.twoMemory = true
	p.nvmLat = sim.FromNanos(500)
	p.dramLat = p.remoteLat
	stallCycles := sim.TimeToCycles(1000*sim.FromNanos(87), p.freqHz)
	localOnly := counterSample{stallCycles: uint64(stallCycles), l3MissLoc: 1000}
	if got := p.delay(localOnly); got != 0 {
		t.Errorf("two-memory delay for local-only epoch = %v, want 0", got)
	}
	mixed := counterSample{stallCycles: uint64(stallCycles), l3MissLoc: 500, l3MissRem: 500}
	if got := p.delay(mixed); got <= 0 {
		t.Error("two-memory delay for mixed epoch not positive")
	}
}

func TestDeltaSaturatesAtZero(t *testing.T) {
	a := counterSample{stallCycles: 100, l3Hit: 5}
	b := counterSample{stallCycles: 150, l3Hit: 3} // noise regression
	d := a.delta(b)
	if d.stallCycles != 0 {
		t.Errorf("negative stall delta = %d, want clamp to 0", d.stallCycles)
	}
	if d.l3Hit != 2 {
		t.Errorf("hit delta = %d, want 2", d.l3Hit)
	}
}

// TestDelayMonotoneInTarget: higher NVM targets never produce smaller
// delays, for any counter mix.
func TestDelayMonotoneInTarget(t *testing.T) {
	prop := func(stall uint32, hit, missL, missR uint16, bump uint16) bool {
		p := ivyParams()
		d := counterSample{
			stallCycles: uint64(stall),
			l3Hit:       uint64(hit),
			l3MissLoc:   uint64(missL),
			l3MissRem:   uint64(missR),
		}
		p.nvmLat = sim.FromNanos(200)
		lo := p.delay(d)
		p.nvmLat = sim.FromNanos(200 + float64(bump))
		hi := p.delay(d)
		return hi >= lo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestModelString(t *testing.T) {
	if ModelStall.String() != "stall (Eq. 2)" || ModelSimple.String() != "simple (Eq. 1)" {
		t.Error("Model.String mismatch")
	}
}
