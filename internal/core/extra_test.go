package core

import (
	"math"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// TestPAPIModeCostsMore reproduces §3.2's argument for rdpmc: with
// PAPI-style virtualized counter access (~30k cycles per epoch), the
// switched-off emulator overhead is markedly higher than with rdpmc.
func TestPAPIModeCostsMore(t *testing.T) {
	run := func(mode perf.AccessMode) sim.Time {
		_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
		cfg := fastCfg(800)
		cfg.CounterMode = mode
		cfg.InjectionOff = true
		cfg.MaxEpoch = 200 * sim.Microsecond // frequent epochs expose read cost
		cfg.MinEpoch = 10 * sim.Microsecond
		e, err := Attach(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ch := buildChase(t, p, 0, chaseLines, 13)
		var ct sim.Time
		if err := e.Run(func(th *simos.Thread) {
			start := th.Now()
			ch.run(th, 40_000)
			ct = th.Now() - start
		}); err != nil {
			t.Fatal(err)
		}
		return ct
	}
	rdpmc := run(perf.RDPMC)
	papi := run(perf.PAPI)
	if papi <= rdpmc {
		t.Errorf("PAPI run %v not slower than rdpmc %v", papi, rdpmc)
	}
	// The per-epoch gap is 28k cycles; over hundreds of epochs it must be
	// clearly visible but not catastrophic.
	if float64(papi)/float64(rdpmc) > 1.5 {
		t.Errorf("PAPI/rdpmc ratio %.2f implausibly large", float64(papi)/float64(rdpmc))
	}
}

// TestDVFSBreaksAccuracy demonstrates the §6 requirement: with DVFS enabled
// (bypassing the attach-time check by flipping it afterwards), the
// cycles-to-time translation drifts and the emulated latency misses the
// target by far more than the DVFS-off run.
func TestDVFSBreaksAccuracy(t *testing.T) {
	const target = 600.0
	run := func(dvfs bool) float64 {
		m, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
		e, err := Attach(p, fastCfg(target))
		if err != nil {
			t.Fatal(err)
		}
		if dvfs {
			m.DVFS().SetEnabled(true) // what the paper tells you not to do
		}
		ch := buildChase(t, p, 0, chaseLines, 15)
		var per sim.Time
		if err := e.Run(func(th *simos.Thread) {
			start := th.Now()
			cur := int32(0)
			const iters = 40_000
			for i := 0; i < iters; i++ {
				th.Load(ch.base + uintptr(cur)*64)
				cur = ch.next[cur]
				th.Compute(40) // compute between accesses is what DVFS stretches
			}
			e.CloseEpoch(th)
			per = (th.Now() - start) / iters
		}); err != nil {
			t.Fatal(err)
		}
		return math.Abs(per.Nanoseconds()-(target+40/2.2)) / target
	}
	errOff := run(false)
	errOn := run(true)
	t.Logf("emulation error: DVFS off %.2f%%, DVFS on %.2f%%", errOff*100, errOn*100)
	if errOn <= errOff {
		t.Errorf("DVFS did not degrade accuracy (off %.2f%%, on %.2f%%)", errOff*100, errOn*100)
	}
}

// TestBarrierPropagatesDelay checks the §7 extension: a thread whose
// critical path runs through a barrier observes the slow thread's injected
// delay, keeping emulated rendezvous timing consistent with Conf_2.
func TestBarrierPropagatesDelay(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(600)
	cfg.MinEpoch = 5 * sim.Microsecond
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bar, err := p.NewBarrier("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	ch := buildChase(t, p, 0, chaseLines, 17)
	var fastAfter, slowArrive sim.Time
	if err := e.Run(func(th *simos.Thread) {
		slow, err := th.CreateThread("slow", func(t2 *simos.Thread) {
			cur := int32(0)
			for i := 0; i < 3000; i++ { // memory-bound: accrues delay
				t2.Load(ch.base + uintptr(cur)*64)
				cur = ch.next[cur]
			}
			slowArrive = t2.Now()
			bar.Wait(t2)
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		fast, err := th.CreateThread("fast", func(t2 *simos.Thread) {
			t2.Compute(1000) // nearly no memory work
			bar.Wait(t2)
			fastAfter = t2.Now()
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		th.Join(slow)
		th.Join(fast)
	}); err != nil {
		t.Fatal(err)
	}
	// slowArrive is sampled before the barrier's sync epoch injects the
	// final chunk of delay; the fast thread must still leave the barrier
	// at (or after) the slow thread's delayed arrival.
	if fastAfter < slowArrive {
		t.Errorf("fast thread left barrier at %v before the slow arrival at %v", fastAfter, slowArrive)
	}
	if e.Stats().SyncEpochs == 0 {
		t.Error("barrier wait closed no sync epochs")
	}
}

// TestAsymmetricWriteBandwidth drives writeback-heavy traffic under a write
// bandwidth cap and checks reads stay unthrottled.
func TestAsymmetricWriteBandwidth(t *testing.T) {
	m, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(200)
	cfg.NVMWriteBandwidth = 2e9 // writes capped; reads unthrottled
	if _, err := Attach(p, cfg); err != nil {
		t.Fatal(err)
	}
	ctrl := m.Socket(0).Ctrl
	if ctrl.ChannelWriteBandwidth() >= ctrl.ChannelBandwidth() {
		t.Errorf("write bw %g not below read bw %g", ctrl.ChannelWriteBandwidth(), ctrl.ChannelBandwidth())
	}
	wantWrite := 2e9 / float64(m.Config().Mem.Channels)
	if got := ctrl.ChannelWriteBandwidth(); math.Abs(got-wantWrite)/wantWrite > 0.05 {
		t.Errorf("per-channel write bw = %g, want ~%g", got, wantWrite)
	}
}

// TestMonitorDriftTolerated: the monitor wakes on a fixed interval, so
// epochs can exceed MaxEpoch by up to one interval (§3.1 notes the drift is
// acceptable); accuracy must hold regardless of the monitor phase.
func TestMonitorDriftTolerated(t *testing.T) {
	for _, interval := range []sim.Time{200 * sim.Microsecond, 900 * sim.Microsecond} {
		_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
		cfg := fastCfg(500)
		cfg.MonitorInterval = interval
		e, err := Attach(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ch := buildChase(t, p, 0, chaseLines, 19)
		var per sim.Time
		if err := e.Run(func(th *simos.Thread) {
			start := th.Now()
			cur := int32(0)
			const iters = 50_000
			for i := 0; i < iters; i++ {
				th.Load(ch.base + uintptr(cur)*64)
				cur = ch.next[cur]
			}
			e.CloseEpoch(th)
			per = (th.Now() - start) / iters
		}); err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(per.Nanoseconds()-500) / 500; rel > 0.05 {
			t.Errorf("interval %v: measured %.1fns, error %.2f%% > 5%%", interval, per.Nanoseconds(), rel*100)
		}
	}
}

// TestNanosleepUnderEmulation: an emulated application sleeping in a
// "syscall" gets interrupted by the monitor's epoch signal and must see
// EINTR, the §3.1 interaction the paper warns about.
func TestNanosleepUnderEmulation(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(800)
	cfg.MaxEpoch = 500 * sim.Microsecond
	cfg.MonitorInterval = 250 * sim.Microsecond
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := buildChase(t, p, 0, chaseLines, 23)
	sawEINTR := false
	if err := e.Run(func(th *simos.Thread) {
		// Accrue memory work so the monitor has a reason to signal...
		cur := int32(0)
		for i := 0; i < 20_000; i++ {
			th.Load(ch.base + uintptr(cur)*64)
			cur = ch.next[cur]
		}
		// ...then block in a long "syscall"; a robust application retries.
		remaining := 5 * sim.Millisecond
		for remaining > 0 {
			before := th.Now()
			if err := th.Nanosleep(remaining); err == nil {
				break
			}
			sawEINTR = true
			remaining -= th.Now() - before
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !sawEINTR {
		t.Skip("monitor did not interrupt the sleep in this phase alignment")
	}
}
