package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

// ParseINI reads a Quartz configuration in the nvmemul.ini format the real
// project ships. Supported schema (all sections and keys optional; unknown
// keys are rejected so typos fail loudly):
//
//	[latency]
//	enable = true      ; false leaves read latency unemulated
//	read   = 500       ; target NVM read latency, ns
//	write  = 700       ; pflush write delay, ns (0 = read - DRAM gap)
//	nvm_write = 0      ; asymmetric store-model NVM write latency, ns (0 = off)
//	dram   = 0         ; DRAM baseline override, ns (0 = machine-calibrated)
//
//	[bandwidth]
//	enable = true
//	read   = 5000      ; NVM read bandwidth, MB/s
//	write  = 2000      ; NVM write bandwidth, MB/s (0 = same as read)
//	model  = 5000      ; legacy symmetric knob, MB/s
//
//	[epochs]
//	min = 0.1          ; minimum epoch, ms
//	max = 10           ; maximum epoch, ms
//	monitor_interval = 5 ; monitor wake-up, ms
//
//	[model]
//	type   = stall     ; stall (Eq.2) | simple (Eq.1)
//	pmc    = rdpmc     ; rdpmc | papi
//	inject = true      ; false = switched-off delay injection (§3.2)
//	amortize = true    ; false disables overhead carry-over
//
//	[topology]
//	two_memory = false ; DRAM+NVM virtual topology (§3.3)
//
//	[overhead]
//	init_cycles        = 5500000000 ; library initialization cost (§3.2)
//	register_cycles    = 300000     ; per-thread registration cost (§3.2)
//	epoch_logic_cycles = 2000       ; epoch cost beyond counter reads (§3.2)
//	spin_poll_cycles   = 20         ; rdtscp polling granularity of the spin loop
//
// Comments start with ';' or '#'. Booleans accept true/false/1/0/yes/no.
// See doc/config.md for the full key-by-key reference against core.Config.
func ParseINI(r io.Reader) (Config, error) {
	var cfg Config
	latencyEnabled := true
	bandwidthEnabled := true
	var latReadNS, latWriteNS, latNVMWriteNS, latDRAMNS float64
	var bwReadMB, bwWriteMB float64

	section := ""
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			section = strings.ToLower(strings.TrimSpace(line[1 : len(line)-1]))
			switch section {
			case "latency", "bandwidth", "epochs", "model", "topology", "overhead", "general":
			default:
				return Config{}, fmt.Errorf("core: ini line %d: unknown section %q", lineNo, section)
			}
			continue
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return Config{}, fmt.Errorf("core: ini line %d: expected key = value, got %q", lineNo, line)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)

		fail := func(err error) (Config, error) {
			return Config{}, fmt.Errorf("core: ini line %d: key %q: %w", lineNo, key, err)
		}
		switch section {
		case "latency":
			switch key {
			case "enable":
				b, err := parseBool(value)
				if err != nil {
					return fail(err)
				}
				latencyEnabled = b
			case "read":
				v, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return fail(err)
				}
				latReadNS = v
			case "write":
				v, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return fail(err)
				}
				latWriteNS = v
			case "nvm_write":
				v, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return fail(err)
				}
				latNVMWriteNS = v
			case "dram":
				v, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return fail(err)
				}
				latDRAMNS = v
			default:
				return fail(fmt.Errorf("unknown key"))
			}
		case "bandwidth":
			switch key {
			case "enable":
				b, err := parseBool(value)
				if err != nil {
					return fail(err)
				}
				bandwidthEnabled = b
			case "read", "model":
				v, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return fail(err)
				}
				bwReadMB = v
			case "write":
				v, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return fail(err)
				}
				bwWriteMB = v
			default:
				return fail(fmt.Errorf("unknown key"))
			}
		case "epochs":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return fail(err)
			}
			d := sim.Time(v * float64(sim.Millisecond))
			switch key {
			case "min":
				cfg.MinEpoch = d
			case "max":
				cfg.MaxEpoch = d
			case "monitor_interval":
				cfg.MonitorInterval = d
			default:
				return fail(fmt.Errorf("unknown key"))
			}
		case "model":
			switch key {
			case "type":
				switch strings.ToLower(value) {
				case "stall":
					cfg.Model = ModelStall
				case "simple":
					cfg.Model = ModelSimple
				default:
					return fail(fmt.Errorf("unknown model %q", value))
				}
			case "pmc":
				switch strings.ToLower(value) {
				case "rdpmc":
					cfg.CounterMode = perf.RDPMC
				case "papi":
					cfg.CounterMode = perf.PAPI
				default:
					return fail(fmt.Errorf("unknown pmc mode %q", value))
				}
			case "inject":
				b, err := parseBool(value)
				if err != nil {
					return fail(err)
				}
				cfg.InjectionOff = !b
			case "amortize":
				b, err := parseBool(value)
				if err != nil {
					return fail(err)
				}
				cfg.DisableAmortization = !b
			default:
				return fail(fmt.Errorf("unknown key"))
			}
		case "topology":
			switch key {
			case "two_memory":
				b, err := parseBool(value)
				if err != nil {
					return fail(err)
				}
				cfg.TwoMemory = b
			default:
				return fail(fmt.Errorf("unknown key"))
			}
		case "overhead":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return fail(err)
			}
			if v < 0 {
				return fail(fmt.Errorf("negative cycle count %d", v))
			}
			switch key {
			case "init_cycles":
				cfg.InitCycles = v
			case "register_cycles":
				cfg.RegisterCycles = v
			case "epoch_logic_cycles":
				cfg.EpochLogicCycles = v
			case "spin_poll_cycles":
				cfg.SpinPollCycles = v
			default:
				return fail(fmt.Errorf("unknown key"))
			}
		case "general":
			// Accepted for compatibility; no knobs yet.
		default:
			return Config{}, fmt.Errorf("core: ini line %d: key %q outside any section", lineNo, key)
		}
	}
	if err := scanner.Err(); err != nil {
		return Config{}, fmt.Errorf("core: reading ini: %w", err)
	}

	if latencyEnabled {
		cfg.NVMLatency = sim.FromNanos(latReadNS)
		cfg.WriteLatency = sim.FromNanos(latWriteNS)
		cfg.NVMWriteLatency = sim.FromNanos(latNVMWriteNS)
	}
	cfg.DRAMLatency = sim.FromNanos(latDRAMNS)
	if bandwidthEnabled {
		cfg.NVMBandwidth = bwReadMB * 1e6
		cfg.NVMWriteBandwidth = bwWriteMB * 1e6
	}
	return cfg, nil
}

// LoadINIFile reads a configuration file via ParseINI.
func LoadINIFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("core: opening config: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ParseINI(f)
}

func parseBool(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "true", "1", "yes", "on":
		return true, nil
	case "false", "0", "no", "off":
		return false, nil
	default:
		return false, fmt.Errorf("invalid boolean %q", s)
	}
}
