package core

import (
	"github.com/quartz-emu/quartz/internal/sim"
)

// counterSample is one reading of the Table 1 events, plus — when the
// asymmetric write model is enabled — the store-side events.
type counterSample struct {
	stallCycles uint64
	l3Hit       uint64
	l3MissLoc   uint64 // total misses on Sandy Bridge (no split)
	l3MissRem   uint64 // zero on Sandy Bridge

	// Store-side events (zero unless NVMWriteLatency > 0 programs them).
	stores       uint64
	storeMissLoc uint64 // total store misses on Sandy Bridge (no split)
	storeMissRem uint64 // zero on Sandy Bridge
}

// delta subtracts an epoch-start snapshot from an epoch-end reading.
func (s counterSample) delta(base counterSample) counterSample {
	sub := func(a, b uint64) uint64 {
		if a < b { // counter noise can make cumulative reads regress slightly
			return 0
		}
		return a - b
	}
	return counterSample{
		stallCycles:  sub(s.stallCycles, base.stallCycles),
		l3Hit:        sub(s.l3Hit, base.l3Hit),
		l3MissLoc:    sub(s.l3MissLoc, base.l3MissLoc),
		l3MissRem:    sub(s.l3MissRem, base.l3MissRem),
		stores:       sub(s.stores, base.stores),
		storeMissLoc: sub(s.storeMissLoc, base.storeMissLoc),
		storeMissRem: sub(s.storeMissRem, base.storeMissRem),
	}
}

func (s counterSample) misses() uint64 { return s.l3MissLoc + s.l3MissRem }

func (s counterSample) storeMisses() uint64 { return s.storeMissLoc + s.storeMissRem }

// modelParams are the calibrated latencies the analytic model needs.
type modelParams struct {
	model       Model
	nvmLat      sim.Time // target NVM latency
	nvmWriteLat sim.Time // target NVM write latency (0 disables the store model)
	dramLat     sim.Time // measured DRAM baseline (remote DRAM in two-memory mode)
	l3Lat       sim.Time // measured L3 hit latency (for W)
	localLat    sim.Time // local DRAM latency (two-memory split weights)
	remoteLat   sim.Time // remote DRAM latency (two-memory split weights)
	freqHz      float64  // core frequency for cycle<->time translation
	twoMemory   bool
}

// ldmStall implements Eq. 3: it scales the raw STALLS_L2_PENDING cycles —
// which include stalls served by the L3 — down to the portion attributable
// to memory, using the L3 hit/miss mix weighted by W = DRAM_lat / L3_lat.
func (p modelParams) ldmStall(d counterSample) float64 {
	miss := float64(d.misses())
	if miss == 0 {
		return 0
	}
	w := float64(p.dramLat) / float64(p.l3Lat)
	hit := float64(d.l3Hit)
	return float64(d.stallCycles) * (w * miss) / (hit + w*miss)
}

// splitRemote implements Eq. 4: it splits total memory stall cycles into the
// portion attributable to remote-DRAM (virtual NVM) accesses, weighting the
// local and remote reference counts by their measured latencies.
func (p modelParams) splitRemote(stallCycles float64, d counterSample) float64 {
	loc := float64(d.l3MissLoc) * float64(p.localLat)
	rem := float64(d.l3MissRem) * float64(p.remoteLat)
	if rem == 0 {
		return 0
	}
	return stallCycles * rem / (loc + rem)
}

// observedStall reports the LDM_STALL cycles the stall model attributes to
// (virtual-NVM) memory for an epoch's counter delta — Eq. 3, narrowed by
// the Eq. 4 remote split in two-memory mode. It exists for the epoch
// ledger; the delay path recomputes it inline.
func (p modelParams) observedStall(d counterSample) float64 {
	stall := p.ldmStall(d)
	if p.twoMemory {
		stall = p.splitRemote(stall, d)
	}
	return stall
}

// delay computes the epoch's injected delay Δᵢ from the counter delta.
//
// ModelStall (Eq. 2): Δ = LDM_STALL / DRAM_lat · (NVM_lat − DRAM_lat),
// where LDM_STALL is first extracted via Eq. 3 and, in two-memory mode,
// narrowed to the remote portion via Eq. 4.
//
// ModelSimple (Eq. 1): Δ = M · (NVM_lat − DRAM_lat) with M the raw memory
// reference count, ignoring memory-level parallelism.
func (p modelParams) delay(d counterSample) sim.Time {
	extra := p.nvmLat - p.dramLat
	if extra <= 0 {
		return 0
	}
	switch p.model {
	case ModelSimple:
		m := float64(d.misses())
		if p.twoMemory {
			m = float64(d.l3MissRem)
		}
		return sim.Time(m * float64(extra))
	default:
		stall := p.ldmStall(d)
		if p.twoMemory {
			stall = p.splitRemote(stall, d)
		}
		stallTime := sim.CyclesToTime(int64(stall), p.freqHz)
		// Δ = (stall / DRAM_lat) * (NVM_lat - DRAM_lat): the number of
		// serial memory accesses times the per-access latency increase.
		return sim.Time(float64(stallTime) / float64(p.dramLat) * float64(extra))
	}
}

// writeDelay computes the store-side epoch delay Δw of the asymmetric model
// (Koshiba et al.): Δw = Mw · (NVM_write_lat − DRAM_lat) with Mw the count
// of store misses reaching memory in the epoch. Stores are posted — they
// never contribute stall cycles — so the write term is count-based by
// construction (there is no stall signal to scale), unlike the read path's
// Eq. 2. In two-memory mode only remote-attributed store misses (those that
// reached the virtual-NVM node) are delayed, mirroring Eq. 4's intent.
// Returns 0 when nvmWriteLat is unset (symmetric configuration).
func (p modelParams) writeDelay(d counterSample) sim.Time {
	extra := p.nvmWriteLat - p.dramLat
	if p.nvmWriteLat <= 0 || extra <= 0 {
		return 0
	}
	m := float64(d.storeMisses())
	if p.twoMemory {
		m = float64(d.storeMissRem)
	}
	return sim.Time(m * float64(extra))
}
