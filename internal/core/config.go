// Package core implements Quartz itself: the epoch-based persistent-memory
// latency emulator of §2–§3. It attaches to a simulated process the way the
// real library attaches via LD_PRELOAD, programs the hardware through the
// kernel module, runs a monitor thread that interrupts application threads
// at maximum-epoch boundaries with POSIX signals, interposes on lock
// releases to propagate delays at inter-thread communication points, and
// injects model-derived delays by spinning on the timestamp counter.
//
// Epoch model: an epoch is the unit of delay accounting — it opens when the
// previous one closes, accumulates PMC deltas, and closes at a monitor
// signal, a sync-point hook, or an explicit request (no earlier than the
// minimum epoch, no later than the maximum). Closing an epoch reads the
// counters, evaluates Eq. 3 then Eq. 2, amortizes accumulated overhead and
// spins the thread forward. This close path is steady-state: it performs no
// heap allocations (fixed-cost terms are precomputed at attach time, and
// diagnostic formatting is gated behind Tracing()), a contract pinned by
// the allocation gates run via `make bench-alloc` — see doc/performance.md.
package core

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

// Model selects the analytic latency model.
type Model int

// Latency models.
const (
	// ModelStall is the paper's Eq. 2: delay proportional to memory stall
	// cycles, which naturally accounts for memory-level parallelism.
	ModelStall Model = iota + 1
	// ModelSimple is the paper's Eq. 1: delay proportional to the raw
	// count of memory references. It over-delays MLP-rich workloads and
	// exists as the ablation baseline for Fig. 2 / Fig. 11.
	ModelSimple
)

func (m Model) String() string {
	switch m {
	case ModelStall:
		return "stall (Eq. 2)"
	case ModelSimple:
		return "simple (Eq. 1)"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config parameterizes an emulation session.
type Config struct {
	// NVMLatency is the target emulated NVM read latency (average
	// application-perceived).
	NVMLatency sim.Time
	// DRAMLatency overrides the measured DRAM baseline latency; zero uses
	// the machine's calibrated value (local DRAM in single-memory mode,
	// remote DRAM in two-memory mode, since remote DRAM is the NVM
	// substrate there).
	DRAMLatency sim.Time
	// NVMBandwidth caps emulated NVM read bandwidth in bytes/sec via the
	// thermal-control registers; zero leaves bandwidth unthrottled.
	NVMBandwidth float64
	// NVMWriteBandwidth caps write bandwidth separately (NVM write
	// bandwidth is generally below read bandwidth, §2.1); zero follows
	// NVMBandwidth.
	NVMWriteBandwidth float64
	// WriteBandwidthByThreads, when non-empty, is the write-bandwidth
	// collapse curve of the asymmetric model (machine.NVMProfile): entry i
	// is the aggregate write-bandwidth target in bytes/sec with i+1
	// registered application threads; counts beyond the table clamp to the
	// last entry. Each thread registration reprograms the write throttle
	// through the same token-bucket path NVMWriteBandwidth uses, so write
	// bandwidth degrades as writer concurrency grows — the Empirical
	// Guide's Optane behavior. Empty leaves the throttle static.
	WriteBandwidthByThreads []float64
	// MaxEpoch is the static maximum epoch length enforced by the monitor
	// thread (default 10 ms, the paper's choice).
	MaxEpoch sim.Time
	// MinEpoch is the minimum epoch length below which synchronization
	// events do not close epochs (default 0.01 ms, the smallest setting
	// the paper evaluates and the most accurate for lock-heavy loads).
	MinEpoch sim.Time
	// MonitorInterval is the monitor thread's fixed wake-up period
	// (default MaxEpoch/2). Wake-ups and epoch completions may drift
	// apart, as the paper notes.
	MonitorInterval sim.Time
	// Model selects Eq. 2 (default) or the Eq. 1 ablation.
	Model Model
	// CounterMode selects rdpmc (default) or PAPI-style counter access.
	CounterMode perf.AccessMode
	// InjectionOff runs the "switched-off delay injection" mode of §3.2:
	// epochs are created and delays computed but not injected, exposing
	// the pure emulator overhead.
	InjectionOff bool
	// TwoMemory enables the DRAM+NVM virtual topology of §3.3: threads
	// must be bound to socket 0, PMalloc serves from socket 1 (remote
	// DRAM), and only remote-attributed stalls are delayed.
	TwoMemory bool
	// WriteLatency is the extra delay PFlush injects to emulate a slower
	// NVM write; zero defaults to NVMLatency - DRAMLatency.
	WriteLatency sim.Time
	// NVMWriteLatency is the target emulated NVM *store* latency of the
	// asymmetric read/write model (Koshiba et al., see doc/asymmetry.md).
	// When positive, the emulator additionally programs the store-side
	// counters and injects a count-based write-stall term
	// Δw = store_misses · (NVMWriteLatency − DRAM_lat) on the same epoch
	// boundaries as the read delay. Zero (the default) disables the store
	// model entirely: no store counters are read, the per-epoch counter
	// read cost is unchanged, and emulation is byte-identical to the
	// symmetric read-only model.
	NVMWriteLatency sim.Time
	// InitCycles models the library's initialization cost (§3.2 reports
	// ~5.5 billion cycles). Charged to the main thread before it runs.
	InitCycles int64
	// RegisterCycles models per-thread registration (§3.2: ~300,000).
	RegisterCycles int64
	// EpochLogicCycles is the epoch-processing cost beyond counter reads
	// (§3.2: roughly half of the ~4,000-cycle epoch cost is counter
	// reading; the rest is model arithmetic and bookkeeping).
	EpochLogicCycles int64
	// SpinPollCycles is the rdtscp polling granularity of the delay spin
	// loop.
	SpinPollCycles int64
	// DisableAmortization turns off the overhead carry-over discounting of
	// §3.2 (ablation knob).
	DisableAmortization bool
	// Observer receives the per-epoch ledger records and aggregate metrics
	// (see internal/obs). Nil falls back to the process-global default
	// recorder (obs.Default), which is itself nil unless a CLI installed
	// one — the fully disabled path costs one branch per epoch.
	Observer *obs.Recorder
}

// Defaults for unset Config fields.
const (
	DefaultMaxEpoch         = 10 * sim.Millisecond
	DefaultMinEpoch         = 10 * sim.Microsecond
	DefaultInitCycles       = 5_500_000_000
	DefaultRegisterCycles   = 300_000
	DefaultEpochLogicCycles = 2_000
	DefaultSpinPollCycles   = 20
)

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxEpoch <= 0 {
		c.MaxEpoch = DefaultMaxEpoch
	}
	if c.MinEpoch <= 0 {
		c.MinEpoch = DefaultMinEpoch
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = c.MaxEpoch / 2
	}
	if c.Model == 0 {
		c.Model = ModelStall
	}
	if c.CounterMode == 0 {
		c.CounterMode = perf.RDPMC
	}
	if c.InitCycles == 0 {
		c.InitCycles = DefaultInitCycles
	}
	if c.RegisterCycles == 0 {
		c.RegisterCycles = DefaultRegisterCycles
	}
	if c.EpochLogicCycles == 0 {
		c.EpochLogicCycles = DefaultEpochLogicCycles
	}
	if c.SpinPollCycles == 0 {
		c.SpinPollCycles = DefaultSpinPollCycles
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NVMLatency < 0 {
		return fmt.Errorf("core: NVMLatency %v negative", c.NVMLatency)
	}
	if c.MinEpoch > c.MaxEpoch {
		return fmt.Errorf("core: MinEpoch %v exceeds MaxEpoch %v", c.MinEpoch, c.MaxEpoch)
	}
	if c.NVMBandwidth < 0 {
		return fmt.Errorf("core: NVMBandwidth %g negative", c.NVMBandwidth)
	}
	if c.NVMWriteBandwidth < 0 {
		return fmt.Errorf("core: NVMWriteBandwidth %g negative", c.NVMWriteBandwidth)
	}
	if c.NVMWriteLatency < 0 {
		return fmt.Errorf("core: NVMWriteLatency %v negative", c.NVMWriteLatency)
	}
	for i, bw := range c.WriteBandwidthByThreads {
		if bw <= 0 {
			return fmt.Errorf("core: WriteBandwidthByThreads[%d] = %g, must be positive", i, bw)
		}
	}
	return nil
}
