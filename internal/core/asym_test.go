package core

import (
	"math/rand"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// storeBuf allocates a cold buffer of n lines for store kernels.
func storeBuf(t *testing.T, p *simos.Process, n int) uintptr {
	t.Helper()
	base, err := p.MallocOnNode(uintptr(n)*64, 0)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

// TestStoreModelOffIsInert is the model-equivalence gate at the unit level:
// with NVMWriteLatency == 0 the store-side model must be fully disabled — no
// store counters read, zero store fields in every ledger record, zero
// write-delay statistics, and the per-epoch close cost of the symmetric
// read-only model (the golden tables in internal/experiments pin the same
// property end-to-end, byte for byte).
func TestStoreModelOffIsInert(t *testing.T) {
	rec := obs.New(0)
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
	cfg := fastCfg(500)
	cfg.Observer = rec
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.asym {
		t.Fatal("store model active with NVMWriteLatency == 0")
	}
	ch := buildChase(t, p, 0, chaseLines, 11)
	base := storeBuf(t, p, 1<<14)
	if err := e.Run(func(th *simos.Thread) {
		// A store-heavy workload: the stores must leave no trace in the
		// ledger or the statistics when the model is off.
		th.StoreRun(base, 64, 1<<14)
		ch.run(th, 10_000)
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.WriteDelay != 0 || st.StoreMisses != 0 {
		t.Errorf("symmetric run accumulated store statistics: WriteDelay=%v StoreMisses=%d",
			st.WriteDelay, st.StoreMisses)
	}
	for _, r := range rec.Ledger() {
		if r.Stores != 0 || r.StoreMissLocal != 0 || r.StoreMissRem != 0 || r.WriteDelay != 0 {
			t.Fatalf("record %d carries store fields in symmetric mode: %+v", r.Seq, r)
		}
	}

	// The per-close cost must grow only when the model is on: the store
	// events join the counter-read set, and a symmetric configuration pays
	// exactly the read-only cost.
	_, p2 := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
	cfgAsym := fastCfg(500)
	cfgAsym.NVMWriteLatency = sim.FromNanos(500)
	e2, err := Attach(p2, cfgAsym)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.asym {
		t.Fatal("store model inactive with NVMWriteLatency > 0")
	}
	if e2.epochCostCycles <= e.epochCostCycles {
		t.Errorf("asymmetric epoch cost %d not above symmetric %d (store counters unread?)",
			e2.epochCostCycles, e.epochCostCycles)
	}
}

// TestAsymWriteDelayMatchesModel pins the write-stall term record by record:
// in single-memory mode every ledger epoch must satisfy
// WriteDelay == (StoreMissLocal + StoreMissRem) x (NVMWriteLatency - DRAM),
// the retired-store deltas must sum to exactly the stores the workload
// issued, and the per-thread statistics must agree with the ledger.
func TestAsymWriteDelayMatchesModel(t *testing.T) {
	const writeNS = 500.0
	const lines = 1 << 14
	rec := obs.New(0)
	m, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
	cfg := fastCfg(700)
	cfg.NVMWriteLatency = sim.FromNanos(writeNS)
	cfg.Observer = rec
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := storeBuf(t, p, lines)
	if err := e.Run(func(th *simos.Thread) {
		th.StoreRun(base, 64, lines)
	}); err != nil {
		t.Fatal(err)
	}
	extra := sim.FromNanos(writeNS) - m.Config().LocalLat
	if extra <= 0 {
		t.Fatalf("test premise broken: write target %v not above DRAM %v",
			sim.FromNanos(writeNS), m.Config().LocalLat)
	}
	var stores, misses uint64
	var writeDelay sim.Time
	for _, r := range rec.Ledger() {
		miss := r.StoreMissLocal + r.StoreMissRem
		if want := sim.Time(float64(miss) * float64(extra)); r.WriteDelay != want {
			t.Errorf("record %d: WriteDelay = %v, want %d misses x %v = %v",
				r.Seq, r.WriteDelay, miss, extra, want)
		}
		stores += r.Stores
		misses += miss
		writeDelay += r.WriteDelay
	}
	if stores != lines {
		t.Errorf("ledger store deltas sum to %d, workload issued %d", stores, lines)
	}
	if misses == 0 {
		t.Error("cold streaming stores produced no store misses")
	}
	st := e.Stats()
	if int64(misses) != st.StoreMisses {
		t.Errorf("ledger misses %d != Stats().StoreMisses %d", misses, st.StoreMisses)
	}
	if writeDelay != st.WriteDelay {
		t.Errorf("ledger write delay %v != Stats().WriteDelay %v", writeDelay, st.WriteDelay)
	}
	if st.WriteDelay == 0 {
		t.Error("store model injected nothing for an all-miss store stream")
	}
}

// TestStoreDeltaAccountingProperty is the randomized accounting gate: under
// arbitrary interleavings of Load/Store/LoadRun/StoreRun with epoch closes
// scattered between them — on two concurrently scheduled threads — the
// epoch-by-epoch store-counter deltas must reconcile exactly with the number
// of stores the workload issued: no double counting across epoch boundaries,
// no drops at thread registration. Each thread flushes its trailing epoch
// with an explicit CloseEpoch before exiting: like the real library, the
// emulator closes only the main thread's final epoch at the end of Run, so
// an exited worker's partial trailing epoch is otherwise unaccounted (this
// test found exactly that gap). Run with -race this also gates the
// store-counter plumbing for data races.
func TestStoreDeltaAccountingProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rec := obs.New(0)
		_, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
		cfg := fastCfg(500)
		cfg.NVMWriteLatency = sim.FromNanos(600)
		cfg.MinEpoch = sim.Microsecond // let explicit closes land often
		cfg.Observer = rec
		e, err := Attach(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		const bufLines = 1 << 12
		mix := func(th *simos.Thread, base uintptr, rng *rand.Rand, ops int) int64 {
			var issued int64
			for i := 0; i < ops; i++ {
				addr := base + uintptr(rng.Intn(bufLines))*64
				n := 1 + rng.Intn(64)
				if int(addr-base)/64+n > bufLines {
					n = bufLines - int(addr-base)/64
				}
				switch rng.Intn(5) {
				case 0:
					th.Load(addr)
				case 1:
					th.Store(addr)
					issued++
				case 2:
					th.LoadRun(addr, 64, n)
				case 3:
					th.StoreRun(addr, 64, n)
					issued += int64(n)
				default:
					e.CloseEpoch(th) // epoch boundary mid-stream
				}
			}
			e.CloseEpoch(th) // flush the trailing epoch's deltas
			return issued
		}
		var mainIssued, workerIssued int64
		mainBuf := storeBuf(t, p, bufLines)
		workerBuf := storeBuf(t, p, bufLines)
		if err := e.Run(func(th *simos.Thread) {
			worker, err := th.CreateThread("acct-worker", func(wt *simos.Thread) {
				workerIssued = mix(wt, workerBuf, rand.New(rand.NewSource(seed*977)), 400)
			})
			if err != nil {
				th.Failf("%v", err)
				return
			}
			mainIssued = mix(th, mainBuf, rand.New(rand.NewSource(seed)), 400)
			th.Join(worker)
		}); err != nil {
			t.Fatal(err)
		}
		var stores uint64
		for _, r := range rec.Ledger() {
			stores += r.Stores
		}
		if total := uint64(mainIssued + workerIssued); stores != total {
			t.Errorf("seed %d: ledger store deltas sum to %d, threads issued %d",
				seed, stores, total)
		}
	}
}
