package core

import (
	"math"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// chase holds a pointer-chasing working set larger than the L3 cache, so
// every access is a demand miss — the MemLat access pattern.
type chase struct {
	next []int32
	base uintptr
}

// buildChase creates a single random permutation cycle of n cache lines on
// the given NUMA node.
func buildChase(t *testing.T, p *simos.Process, node int, n int, seed int64) *chase {
	t.Helper()
	base, err := p.MallocOnNode(uintptr(n)*64, node)
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	x := uint64(seed)
	for i := n - 1; i > 0; i-- {
		x = x*6364136223846793005 + 1442695040888963407
		j := int(x % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Convert the permutation into one full cycle (Sattolo's algorithm on
	// the already-shuffled order).
	next := make([]int32, n)
	for i := 0; i < n; i++ {
		next[perm[i]] = perm[(i+1)%n]
	}
	return &chase{next: next, base: base}
}

// run chases iters pointers starting from slot 0 and returns per-access
// latency.
func (c *chase) run(th *simos.Thread, iters int) sim.Time {
	cur := int32(0)
	start := th.Now()
	for i := 0; i < iters; i++ {
		th.Load(c.base + uintptr(cur)*64)
		cur = c.next[cur]
	}
	return (th.Now() - start) / sim.Time(iters)
}

// chaseLines is sized to overflow the 20-25MB preset L3s several times.
const chaseLines = 1 << 20 // 64 MiB working set

func newMachineProc(t *testing.T, preset machine.Preset, opts simos.Options) (*machine.Machine, *simos.Process) {
	t.Helper()
	m, err := machine.NewPreset(preset)
	if err != nil {
		t.Fatal(err)
	}
	p, err := simos.NewProcess(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func fastCfg(nvmNS float64) Config {
	return Config{
		NVMLatency: sim.FromNanos(nvmNS),
		MaxEpoch:   sim.Millisecond,
		InitCycles: 1, // keep unit tests fast; §3.2 cost measured in benches
	}
}

func TestAttachValidation(t *testing.T) {
	if _, err := Attach(nil, Config{}); err == nil {
		t.Error("Attach(nil) succeeded")
	}

	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.DefaultOptions())
	if _, err := Attach(p, Config{NVMLatency: -1}); err == nil {
		t.Error("negative NVM latency accepted")
	}
	if _, err := Attach(p, Config{NVMLatency: sim.FromNanos(10)}); err == nil {
		t.Error("NVM latency below DRAM accepted")
	}
	if _, err := Attach(p, Config{NVMLatency: sim.FromNanos(500), MinEpoch: sim.Second, MaxEpoch: sim.Millisecond}); err == nil {
		t.Error("MinEpoch > MaxEpoch accepted")
	}
}

func TestAttachRejectsDVFS(t *testing.T) {
	m, p := newMachineProc(t, machine.XeonE5_2660v2, simos.DefaultOptions())
	m.DVFS().SetEnabled(true)
	if _, err := Attach(p, fastCfg(500)); err == nil || !strings.Contains(err.Error(), "DVFS") {
		t.Errorf("Attach with DVFS = %v, want DVFS error", err)
	}
}

func TestAttachTwoMemoryValidation(t *testing.T) {
	// Sandy Bridge has no local/remote miss split (Table 1).
	_, p := newMachineProc(t, machine.XeonE5_2450, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(500)
	cfg.TwoMemory = true
	if _, err := Attach(p, cfg); err == nil {
		t.Error("two-memory mode on Sandy Bridge accepted")
	}

	// Unbound threads violate the virtual topology.
	_, p2 := newMachineProc(t, machine.XeonE5_2660v2, simos.DefaultOptions())
	if _, err := Attach(p2, cfg); err == nil {
		t.Error("two-memory mode without socket binding accepted")
	}

	_, p3 := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	if _, err := Attach(p3, cfg); err != nil {
		t.Errorf("valid two-memory attach failed: %v", err)
	}
}

func TestRunRequiresAttachOnce(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.DefaultOptions())
	e, err := Attach(p, fastCfg(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(func(th *simos.Thread) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(func(th *simos.Thread) {}); err == nil {
		t.Error("second Run succeeded")
	}
}

// TestSingleThreadedEmulationAccuracy is the paper's core validation (§4.3):
// run a latency-bound pointer chase under Quartz on local memory emulating
// the remote latency (Conf_1) and compare against the same chase physically
// on remote memory without the emulator (Conf_2).
func TestSingleThreadedEmulationAccuracy(t *testing.T) {
	const iters = 120_000

	// Conf_2: physical remote memory, no emulation.
	_, p2 := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	var physical sim.Time
	ch2 := buildChase(t, p2, 1, chaseLines, 42)
	if err := p2.Run(func(th *simos.Thread) {
		physical = ch2.run(th, iters)
	}); err != nil {
		t.Fatal(err)
	}

	// Conf_1: local memory under Quartz emulating the remote latency.
	m1, p1 := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(m1.Config().RemoteLat.Nanoseconds())
	e, err := Attach(p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch1 := buildChase(t, p1, 0, chaseLines, 42)
	var emulated sim.Time
	if err := e.Run(func(th *simos.Thread) {
		emulated = ch1.run(th, iters)
	}); err != nil {
		t.Fatal(err)
	}

	relErr := math.Abs(float64(emulated-physical)) / float64(physical)
	t.Logf("physical %.1fns, emulated %.1fns, error %.2f%%", physical.Nanoseconds(), emulated.Nanoseconds(), relErr*100)
	if relErr > 0.05 {
		t.Errorf("emulation error %.2f%% exceeds 5%% (Ivy Bridge band is <2%%)", relErr*100)
	}

	st := e.Stats()
	if st.Epochs == 0 || st.Injected == 0 {
		t.Errorf("stats = %+v: expected epochs and injected delay", st)
	}
}

func TestEmulatedLatencySweep(t *testing.T) {
	// Fig. 12's property at unit-test scale: the chase-measured latency
	// must track the emulated target across a range.
	for _, targetNS := range []float64{200, 600, 1000} {
		m, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
		_ = m
		e, err := Attach(p, fastCfg(targetNS))
		if err != nil {
			t.Fatal(err)
		}
		ch := buildChase(t, p, 0, chaseLines, 7)
		var got sim.Time
		if err := e.Run(func(th *simos.Thread) {
			const iters = 60_000
			start := th.Now()
			cur := int32(0)
			for i := 0; i < iters; i++ {
				th.Load(ch.base + uintptr(cur)*64)
				cur = ch.next[cur]
			}
			e.CloseEpoch(th)
			got = (th.Now() - start) / iters
		}); err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(got.Nanoseconds()-targetNS) / targetNS
		t.Logf("target %.0fns -> measured %.1fns (%.2f%%)", targetNS, got.Nanoseconds(), rel*100)
		if rel > 0.05 {
			t.Errorf("target %.0fns: measured %.1fns, error %.2f%% > 5%%", targetNS, got.Nanoseconds(), rel*100)
		}
	}
}

func TestInjectionOffComputesButDoesNotInject(t *testing.T) {
	m, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})

	cfg := fastCfg(800)
	cfg.InjectionOff = true
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := buildChase(t, p, 0, chaseLines, 3)
	var perAccess sim.Time
	if err := e.Run(func(th *simos.Thread) {
		perAccess = ch.run(th, 50_000)
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Injected != 0 {
		t.Errorf("switched-off mode injected %v", st.Injected)
	}
	if st.WouldInject == 0 {
		t.Error("switched-off mode computed no delay")
	}
	// The run must stay near native local latency (< ~10% overhead, paper
	// reports <4% for tuned epochs).
	local := m.Config().LocalLat
	if overhead := float64(perAccess-local) / float64(local); overhead > 0.10 {
		t.Errorf("switched-off overhead %.1f%%, want small", overhead*100)
	}
}

func TestOverheadCarryOver(t *testing.T) {
	// A cache-resident workload yields zero delay, so epoch overhead can
	// never be amortized and must accumulate as carry.
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(500)
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(func(th *simos.Thread) {
		base, _ := p.Malloc(4096)
		for i := 0; i < 600; i++ {
			th.Load(base) // L1-resident
			th.Compute(40_000)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Epochs == 0 {
		t.Fatal("no epochs closed")
	}
	if st.Unamortized == 0 {
		t.Error("cache-resident run fully amortized overhead; carry must remain")
	}
	if st.Amortized {
		t.Error("stats claim amortization despite carry")
	}
	if !strings.Contains(st.Suggestion(), "NOT amortized") {
		t.Errorf("suggestion %q does not flag unamortized overhead", st.Suggestion())
	}
}

func TestSyncEpochsCloseOnUnlock(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(500)
	cfg.MinEpoch = 10 * sim.Microsecond
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu := p.NewMutex("m")
	ch := buildChase(t, p, 0, chaseLines, 9)
	if err := e.Run(func(th *simos.Thread) {
		cur := int32(0)
		for i := 0; i < 200; i++ {
			mu.Lock(th)
			for j := 0; j < 20; j++ {
				th.Load(ch.base + uintptr(cur)*64)
				cur = ch.next[cur]
			}
			mu.Unlock(th)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SyncEpochs == 0 {
		t.Errorf("no sync epochs closed despite %d unlocks: %+v", 200, st)
	}
}

func TestMinEpochSuppressesFrequentSyncEpochs(t *testing.T) {
	run := func(minEpoch sim.Time) int64 {
		_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
		cfg := fastCfg(500)
		cfg.MinEpoch = minEpoch
		cfg.MaxEpoch = 10 * sim.Millisecond
		e, err := Attach(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mu := p.NewMutex("m")
		ch := buildChase(t, p, 0, chaseLines, 11)
		if err := e.Run(func(th *simos.Thread) {
			cur := int32(0)
			for i := 0; i < 300; i++ {
				mu.Lock(th)
				th.Load(ch.base + uintptr(cur)*64)
				cur = ch.next[cur]
				mu.Unlock(th)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return e.Stats().SyncEpochs
	}
	small := run(100 * sim.Nanosecond)
	large := run(5 * sim.Millisecond)
	if large >= small {
		t.Errorf("sync epochs: min-epoch 5ms gave %d, 100ns gave %d; larger min must suppress", large, small)
	}
}

func TestPFlushInjectsWriteDelay(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(500)
	cfg.WriteLatency = sim.FromNanos(700)
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var perFlush sim.Time
	if err := e.Run(func(th *simos.Thread) {
		base, _ := e.PMalloc(1 << 20)
		const n = 100
		start := th.Now()
		for i := 0; i < n; i++ {
			addr := base + uintptr(i*64)
			th.Store(addr)
			e.PFlush(th, addr)
		}
		perFlush = (th.Now() - start) / n
	}); err != nil {
		t.Fatal(err)
	}
	if perFlush < sim.FromNanos(700) {
		t.Errorf("per-flush cost %v below the 700ns write latency", perFlush)
	}
	st := e.Stats()
	if st.Flushes != 100 {
		t.Errorf("flush count = %d, want 100", st.Flushes)
	}
}

func TestPCommitParallelizesIndependentWrites(t *testing.T) {
	// §6: clflushopt+pcommit must beat serialized pflush for independent
	// writes (e.g. initializing fields of a persistent object).
	const n = 64
	run := func(usePCommit bool) sim.Time {
		_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
		cfg := fastCfg(500)
		cfg.WriteLatency = sim.FromNanos(600)
		e, err := Attach(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var elapsed sim.Time
		if err := e.Run(func(th *simos.Thread) {
			base, _ := e.PMalloc(1 << 20)
			start := th.Now()
			for i := 0; i < n; i++ {
				addr := base + uintptr(i*64)
				th.Store(addr)
				if usePCommit {
					e.PFlushOpt(th, addr)
				} else {
					e.PFlush(th, addr)
				}
			}
			if usePCommit {
				e.PCommit(th)
			}
			elapsed = th.Now() - start
		}); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	serialized := run(false)
	parallel := run(true)
	if parallel >= serialized/4 {
		t.Errorf("pcommit path %v not clearly faster than serialized pflush %v", parallel, serialized)
	}
}

func TestPMallocPlacementSingleVsTwoMemory(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(500)
	cfg.TwoMemory = true
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := e.PMalloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeOf(addr) != 1 {
		t.Errorf("two-memory PMalloc on node %d, want 1 (remote DRAM)", p.NodeOf(addr))
	}
	if !e.IsNVM(addr) {
		t.Error("PMalloc'd address not recognized as NVM")
	}
	vol, _ := p.Malloc(4096)
	if e.IsNVM(vol) {
		t.Error("volatile malloc recognized as NVM in two-memory mode")
	}
	if e.NVMNode() != 1 {
		t.Errorf("NVMNode = %d, want 1", e.NVMNode())
	}
}

func TestTwoMemoryLeavesLocalUnchanged(t *testing.T) {
	// DRAM-only accesses under two-memory emulation must run at native
	// local latency (no injected delay).
	m, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(500)
	cfg.TwoMemory = true
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := buildChase(t, p, 0, chaseLines, 5)
	var perAccess sim.Time
	if err := e.Run(func(th *simos.Thread) {
		perAccess = ch.run(th, 50_000)
	}); err != nil {
		t.Fatal(err)
	}
	local := m.Config().LocalLat
	if rel := math.Abs(float64(perAccess-local)) / float64(local); rel > 0.05 {
		t.Errorf("local-access latency %v deviates %.1f%% from native %v", perAccess, rel*100, local)
	}
}

func TestTwoMemoryNVMLatencyEmulated(t *testing.T) {
	// NVM (remote-backed) accesses must be slowed to the target.
	const targetNS = 400
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(targetNS)
	cfg.TwoMemory = true
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := buildChase(t, p, 1, chaseLines, 5) // chain in virtual NVM
	var perAccess sim.Time
	if err := e.Run(func(th *simos.Thread) {
		perAccess = ch.run(th, 50_000)
	}); err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(perAccess.Nanoseconds()-targetNS) / targetNS
	t.Logf("two-memory NVM chase: %.1fns (target %dns, %.2f%%)", perAccess.Nanoseconds(), targetNS, rel*100)
	if rel > 0.06 {
		t.Errorf("NVM latency %v deviates %.1f%% from %dns target", perAccess, rel*100, targetNS)
	}
}

func TestBandwidthThrottleApplied(t *testing.T) {
	m, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	cfg := fastCfg(200)
	cfg.NVMBandwidth = 5e9
	if _, err := Attach(p, cfg); err != nil {
		t.Fatal(err)
	}
	for s, sock := range m.Sockets() {
		if bw := sock.Ctrl.EffectiveBandwidth(); math.Abs(bw-5e9)/5e9 > 0.02 {
			t.Errorf("socket %d effective bandwidth = %g, want ~5e9", s, bw)
		}
	}
}

func TestStatsSuggestionNoEpochs(t *testing.T) {
	var s Stats
	if !strings.Contains(s.Suggestion(), "no epochs") {
		t.Errorf("empty-stats suggestion = %q", s.Suggestion())
	}
}

func TestEmulatorString(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1})
	e, err := Attach(p, fastCfg(500))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "PM-only") {
		t.Errorf("String() = %q", e.String())
	}
}

// machineIvy and simosOptsSocket0 are tiny helpers shared with ini_test.go.
func machineIvy() machine.Preset { return machine.XeonE5_2660v2 }

func simosOptsSocket0() simos.Options {
	return simos.Options{AllowedSockets: []int{0}, DefaultNode: -1}
}

func TestAccessorsAndPFree(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
	cfg := fastCfg(500)
	cfg.WriteLatency = sim.FromNanos(650)
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().NVMLatency != sim.FromNanos(500) {
		t.Errorf("Config().NVMLatency = %v", e.Config().NVMLatency)
	}
	if e.DRAMLatency() != sim.FromNanos(87) {
		t.Errorf("DRAMLatency = %v, want 87ns (Ivy local)", e.DRAMLatency())
	}
	if e.WriteLatency() != sim.FromNanos(650) {
		t.Errorf("WriteLatency = %v", e.WriteLatency())
	}
	addr, err := e.PMalloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	e.PFree(addr) // bump allocator: must not panic or corrupt state
	if !e.IsNVM(addr) {
		t.Error("single-memory mode: every address is persistent memory")
	}
}

func TestWriteLatencyDefaultsToLatencyGap(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
	e, err := Attach(p, fastCfg(500))
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.FromNanos(500 - 87); e.WriteLatency() != want {
		t.Errorf("default WriteLatency = %v, want NVM-DRAM gap %v", e.WriteLatency(), want)
	}
}

func TestTwoMemoryPFreeRoutes(t *testing.T) {
	_, p := newMachineProc(t, machine.XeonE5_2660v2, simosOptsSocket0())
	cfg := fastCfg(400)
	cfg.TwoMemory = true
	e, err := Attach(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nvm, _ := e.PMalloc(64)
	vol, _ := p.Malloc(64)
	e.PFree(nvm)
	e.PFree(vol) // freeing volatile memory through pfree is tolerated
}
