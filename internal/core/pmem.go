package core

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// PMalloc allocates persistent memory (§3.1 pmalloc). In two-memory mode it
// serves from the virtual-NVM node (remote DRAM, §3.3); in single-memory
// mode the whole address space is persistent memory, so it is a plain
// allocation.
func (e *Emulator) PMalloc(size uintptr) (uintptr, error) {
	if e.cfg.TwoMemory {
		return e.proc.MallocOnNode(size, e.nvmNode)
	}
	return e.proc.Malloc(size)
}

// PFree releases persistent memory (pfree).
func (e *Emulator) PFree(addr uintptr) {
	if e.cfg.TwoMemory && e.proc.NodeOf(addr) != e.nvmNode {
		// Freeing volatile memory through pfree is an application bug the
		// real library tolerates; we keep the same behaviour.
		e.proc.Free(addr)
		return
	}
	e.proc.Free(addr)
}

// PFlush writes back the cache line holding addr with clflush — stalling
// until the line reaches memory — and then injects the configured write
// delay, emulating a slower synchronous NVM write (§3.1). It pessimistically
// serializes dependent writes: each PFlush completes before the caller can
// issue the next.
func (e *Emulator) PFlush(t *simos.Thread, addr uintptr) {
	start := t.Now()
	t.Flush(addr)
	if e.writeLat > 0 && !e.cfg.InjectionOff {
		target := t.Core().TSC(t.Now()) + uint64(sim.TimeToCycles(e.writeLat, t.Core().FreqHz()))
		t.SpinUntilTSC(target, e.cfg.SpinPollCycles)
	}
	if ts := e.byThread[t]; ts != nil {
		ts.flushes++
		ts.flushStall += t.Now() - start
	}
}

// PFlushOpt writes back the cache line with clflushopt — without stalling —
// and records its expected NVM completion time for the next PCommit barrier
// (§6's write-parallelism extension). Independent flushes between barriers
// therefore proceed in parallel.
func (e *Emulator) PFlushOpt(t *simos.Thread, addr uintptr) {
	wb := t.FlushOpt(addr)
	if wb == 0 {
		wb = t.Now() // clean line: nothing to write back
	}
	expected := wb + e.writeLat
	if ts := e.byThread[t]; ts != nil {
		ts.flushes++
		ts.pendingWrites = append(ts.pendingWrites, expected)
	}
}

// PCommit stalls until every outstanding PFlushOpt write is durable,
// injecting only the portion of the accumulated write delay not already
// hidden by execution since the flushes were issued — flushes expected to
// have completed by the time the program reaches the barrier are discounted
// (§6).
func (e *Emulator) PCommit(t *simos.Thread) {
	ts := e.byThread[t]
	if ts == nil || len(ts.pendingWrites) == 0 {
		return
	}
	var latest sim.Time
	for _, w := range ts.pendingWrites {
		if w > latest {
			latest = w
		}
	}
	ts.pendingWrites = ts.pendingWrites[:0]
	if e.cfg.InjectionOff {
		return
	}
	if latest > t.Now() {
		start := t.Now()
		t.Fence(latest)
		ts.flushStall += t.Now() - start
	}
}

// IsNVM reports whether addr belongs to emulated persistent memory.
func (e *Emulator) IsNVM(addr uintptr) bool {
	if !e.cfg.TwoMemory {
		return true
	}
	return e.proc.NodeOf(addr) == e.nvmNode
}

// NVMNode reports the NUMA node backing virtual NVM (-1 in single-memory
// mode).
func (e *Emulator) NVMNode() int { return e.nvmNode }

// String summarizes the emulation target.
func (e *Emulator) String() string {
	mode := "PM-only"
	if e.cfg.TwoMemory {
		mode = "DRAM+NVM"
	}
	return fmt.Sprintf("quartz(%s, NVM %v, DRAM %v)", mode, e.cfg.NVMLatency, e.params.dramLat)
}
