package machine

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/mem"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

func TestAllPresetsAssemble(t *testing.T) {
	for _, p := range Presets() {
		t.Run(p.String(), func(t *testing.T) {
			m, err := NewPreset(p)
			if err != nil {
				t.Fatal(err)
			}
			cfg := m.Config()
			if got := len(m.Sockets()); got != cfg.Sockets {
				t.Errorf("sockets = %d, want %d", got, cfg.Sockets)
			}
			if got := len(m.Cores()); got != cfg.Sockets*cfg.CoresPerSocket {
				t.Errorf("cores = %d, want %d", got, cfg.Sockets*cfg.CoresPerSocket)
			}
			// Cores of one socket share the L3; across sockets they differ.
			s0 := m.Socket(0)
			if s0.Cores[0].L3() != s0.Cores[1].L3() {
				t.Error("cores of socket 0 have different L3s")
			}
			if m.Socket(0).L3 == m.Socket(1).L3 {
				t.Error("sockets share an L3")
			}
		})
	}
}

func TestPresetParameters(t *testing.T) {
	tests := []struct {
		preset Preset
		family perf.Family
		cores  int
		local  sim.Time
		remote sim.Time
	}{
		{XeonE5_2450, perf.SandyBridge, 8, sim.FromNanos(97), sim.FromNanos(163)},
		{XeonE5_2660v2, perf.IvyBridge, 10, sim.FromNanos(87), sim.FromNanos(176)},
		{XeonE5_2650v3, perf.Haswell, 10, sim.FromNanos(120), sim.FromNanos(175)},
	}
	for _, tt := range tests {
		cfg := PresetConfig(tt.preset)
		if cfg.Family != tt.family || cfg.CoresPerSocket != tt.cores {
			t.Errorf("%v: family/cores = %v/%d, want %v/%d", tt.preset, cfg.Family, cfg.CoresPerSocket, tt.family, tt.cores)
		}
		if cfg.LocalLat != tt.local || cfg.RemoteLat != tt.remote {
			t.Errorf("%v: latencies = %v/%v, want %v/%v", tt.preset, cfg.LocalLat, cfg.RemoteLat, tt.local, tt.remote)
		}
	}
}

func TestPresetFor(t *testing.T) {
	if PresetFor(perf.SandyBridge) != XeonE5_2450 ||
		PresetFor(perf.IvyBridge) != XeonE5_2660v2 ||
		PresetFor(perf.Haswell) != XeonE5_2650v3 {
		t.Error("PresetFor mapping wrong")
	}
}

func TestHomeNodeMapping(t *testing.T) {
	m, err := NewPreset(XeonE5_2660v2)
	if err != nil {
		t.Fatal(err)
	}
	if m.HomeNode(m.NodeBase(0)+4096) != 0 {
		t.Error("node 0 address mapped elsewhere")
	}
	if m.HomeNode(m.NodeBase(1)+4096) != 1 {
		t.Error("node 1 address mapped elsewhere")
	}
	// Addresses beyond the last node clamp to it.
	if m.HomeNode(uintptr(7)<<NodeShift) != 1 {
		t.Error("out-of-range address did not clamp to last node")
	}
}

func TestLocalVsRemoteAccessLatency(t *testing.T) {
	m, err := NewPreset(XeonE5_2660v2)
	if err != nil {
		t.Fatal(err)
	}
	local := m.Access(0, m.NodeBase(0), mem.Read, 0)
	remote := m.Access(0, m.NodeBase(1), mem.Read, 0)
	wantGap := m.RemoteServiceLat() - m.LocalServiceLat()
	if remote-local != wantGap {
		t.Errorf("remote-local gap = %v, want %v", remote-local, wantGap)
	}
	cfg := m.Config()
	walk := cfg.L1.LookupLat + cfg.L2.LookupLat + cfg.L3.LookupLat
	if local+walk != cfg.LocalLat {
		t.Errorf("local end-to-end = %v, want %v", local+walk, cfg.LocalLat)
	}
}

func TestEndToEndLoadLatencyMatchesTable2(t *testing.T) {
	// A cold load through a preset core must cost exactly the Table 2
	// local latency; a second, remote cold load the remote latency.
	for _, p := range Presets() {
		m, err := NewPreset(p)
		if err != nil {
			t.Fatal(err)
		}
		core := m.Core(0)
		core.Counters().SetEnabled(true)
		cfg := m.Config()
		latL, _ := core.Load(0, m.NodeBase(0)+1<<20)
		latR, _ := core.Load(0, m.NodeBase(1)+1<<20)
		if latL != cfg.LocalLat {
			t.Errorf("%v: local load = %v, want %v", p, latL, cfg.LocalLat)
		}
		if latR != cfg.RemoteLat {
			t.Errorf("%v: remote load = %v, want %v", p, latR, cfg.RemoteLat)
		}
	}
}

func TestInvalidateCachesDropsState(t *testing.T) {
	m, err := NewPreset(XeonE5_2450)
	if err != nil {
		t.Fatal(err)
	}
	core := m.Core(0)
	addr := m.NodeBase(0) + 1<<20
	core.Load(0, addr)
	if !core.L1().Contains(addr) {
		t.Fatal("line not cached after load")
	}
	m.InvalidateCaches()
	if core.L1().Contains(addr) || core.L2().Contains(addr) || core.L3().Contains(addr) {
		t.Error("line survived InvalidateCaches")
	}
}

func TestResetCountersClearsAll(t *testing.T) {
	m, err := NewPreset(XeonE5_2450)
	if err != nil {
		t.Fatal(err)
	}
	core := m.Core(0)
	core.Counters().SetEnabled(true)
	core.Load(0, m.NodeBase(0)+1<<20)
	if core.Counters().TrueStallCycles() == 0 {
		t.Fatal("no stalls recorded")
	}
	m.ResetCounters()
	if core.Counters().TrueStallCycles() != 0 {
		t.Error("stalls survived ResetCounters")
	}
	if m.Socket(0).Ctrl.Stats() != (mem.Stats{}) {
		t.Error("controller stats survived ResetCounters")
	}
}

func TestConfigValidateRejectsBadLatencies(t *testing.T) {
	cfg := PresetConfig(XeonE5_2450)
	cfg.LocalLat = sim.FromNanos(5) // below the cache walk
	if _, err := New(cfg); err == nil {
		t.Error("New accepted LocalLat below cache walk")
	}
	cfg = PresetConfig(XeonE5_2450)
	cfg.RemoteLat = cfg.LocalLat - 1
	if _, err := New(cfg); err == nil {
		t.Error("New accepted RemoteLat < LocalLat")
	}
	cfg = PresetConfig(XeonE5_2450)
	cfg.Sockets = 0
	if _, err := New(cfg); err == nil {
		t.Error("New accepted zero sockets")
	}
}

func TestCountersPerCoreIndependent(t *testing.T) {
	m, err := NewPreset(XeonE5_2450)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := m.Core(0), m.Core(1)
	c0.Counters().SetEnabled(true)
	c1.Counters().SetEnabled(true)
	c0.Load(0, m.NodeBase(0)+2<<20)
	if c1.Counters().TrueStallCycles() != 0 {
		t.Error("core 1 counters affected by core 0 load")
	}
}

func TestCustomMachineConfig(t *testing.T) {
	// A scaled testbed: preset structure with a smaller L3 and wider
	// channels, as the application experiments use.
	cfg := PresetConfig(XeonE5_2660v2)
	cfg.L3.SizeBytes = 256 << 10
	cfg.L3.Ways = 16
	cfg.Mem.ChannelBandwidth *= 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Socket(0).L3.Config().SizeBytes; got != 256<<10 {
		t.Errorf("custom L3 size = %d", got)
	}
	if got := m.Socket(0).Ctrl.PeakBandwidth(); got != 4*4*12.8e9 {
		t.Errorf("custom peak bandwidth = %g", got)
	}
	// Table 2 latencies unaffected by the scaling.
	core := m.Core(0)
	lat, _ := core.Load(0, m.NodeBase(0)+1<<20)
	if lat != cfg.LocalLat {
		t.Errorf("scaled machine local load = %v, want %v", lat, cfg.LocalLat)
	}
}

func TestSmallerL3MissesMore(t *testing.T) {
	run := func(l3 int) int64 {
		cfg := PresetConfig(XeonE5_2660v2)
		cfg.L3.SizeBytes = l3
		cfg.L3.Ways = 16
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		core := m.Core(0)
		core.Counters().SetEnabled(true)
		// 1 MiB working set, swept twice.
		var now sim.Time
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 16384; i++ {
				lat, _ := core.Load(now, m.NodeBase(0)+uintptr(1<<20)+uintptr(i*64))
				now += lat
			}
		}
		s := core.L3().Stats()
		return s.Misses
	}
	small := run(256 << 10)
	big := run(8 << 20)
	if small <= big {
		t.Errorf("256KiB L3 misses (%d) not above 8MiB L3 misses (%d)", small, big)
	}
}
