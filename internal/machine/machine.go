// Package machine assembles the simulated hardware: multi-socket NUMA
// topology, per-core private L1/L2 caches, a socket-shared L3, per-socket
// integrated memory controllers with throttle registers, per-core PMC banks,
// and a shared DVFS governor. Presets reproduce the paper's three testbeds
// (Table 2): Sandy Bridge (Xeon E5-2450), Ivy Bridge (E5-2660 v2), and
// Haswell (E5-2650 v3).
package machine

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/cache"
	"github.com/quartz-emu/quartz/internal/cpu"
	"github.com/quartz-emu/quartz/internal/mem"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

// NodeShift positions NUMA node ids in the simulated physical address space:
// node n owns addresses [n<<NodeShift, (n+1)<<NodeShift).
const NodeShift = 40

// Config describes a machine to assemble.
type Config struct {
	// Name labels the machine (e.g. "Intel Xeon E5-2660 v2").
	Name string
	// Family selects the PMC event file and fidelity model.
	Family perf.Family
	// Sockets is the number of CPU sockets (== NUMA nodes).
	Sockets int
	// CoresPerSocket is the number of usable hardware threads per socket.
	CoresPerSocket int
	// Core configures each core.
	Core cpu.Config
	// L1, L2 configure each core's private caches; L3 the socket-shared
	// last-level cache.
	L1, L2, L3 cache.Config
	// Mem configures each socket's memory controller.
	Mem mem.Config
	// LocalLat and RemoteLat are the end-to-end load-to-use latencies for
	// local and remote DRAM (Table 2 "Aver" columns).
	LocalLat, RemoteLat sim.Time
	// Fidelity overrides the family's default counter fidelity when
	// non-zero.
	Fidelity perf.Fidelity
	// DVFSLowFactor / DVFSHalfPeriod configure the (initially disabled)
	// frequency governor.
	DVFSLowFactor  float64
	DVFSHalfPeriod sim.Time
}

// Validate reports whether the machine configuration is assemblable.
func (c Config) Validate() error {
	if c.Sockets <= 0 || c.CoresPerSocket <= 0 {
		return fmt.Errorf("machine %q: sockets/cores must be positive (got %d/%d)", c.Name, c.Sockets, c.CoresPerSocket)
	}
	if err := c.Core.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", c.Name, err)
	}
	for _, cc := range []cache.Config{c.L1, c.L2, c.L3} {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("machine %q: %w", c.Name, err)
		}
	}
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", c.Name, err)
	}
	walk := c.L1.LookupLat + c.L2.LookupLat + c.L3.LookupLat
	if c.LocalLat <= walk {
		return fmt.Errorf("machine %q: LocalLat %v must exceed cache walk %v", c.Name, c.LocalLat, walk)
	}
	if c.RemoteLat < c.LocalLat {
		return fmt.Errorf("machine %q: RemoteLat %v below LocalLat %v", c.Name, c.RemoteLat, c.LocalLat)
	}
	return nil
}

// Socket groups one CPU package's shared resources.
type Socket struct {
	ID    int
	L3    *cache.Cache
	Ctrl  *mem.Controller
	Cores []*cpu.Core
}

// Machine is an assembled simulated server.
type Machine struct {
	cfg     Config
	sockets []*Socket
	cores   []*cpu.Core
	dvfs    *cpu.DVFS

	serviceLocal  sim.Time
	serviceRemote sim.Time
}

// New assembles a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fid := cfg.Fidelity
	if fid == (perf.Fidelity{}) {
		fid = perf.DefaultFidelity(cfg.Family)
	}
	walk := cfg.L1.LookupLat + cfg.L2.LookupLat + cfg.L3.LookupLat
	m := &Machine{
		cfg:           cfg,
		dvfs:          cpu.NewDVFS(cfg.DVFSLowFactor, cfg.DVFSHalfPeriod),
		serviceLocal:  cfg.LocalLat - walk,
		serviceRemote: cfg.RemoteLat - walk,
	}
	coreID := 0
	for s := 0; s < cfg.Sockets; s++ {
		l3, err := cache.New(cfg.L3)
		if err != nil {
			return nil, fmt.Errorf("machine %q: socket %d L3: %w", cfg.Name, s, err)
		}
		ctrl, err := mem.NewController(s, cfg.Mem)
		if err != nil {
			return nil, fmt.Errorf("machine %q: socket %d controller: %w", cfg.Name, s, err)
		}
		sock := &Socket{ID: s, L3: l3, Ctrl: ctrl}
		for i := 0; i < cfg.CoresPerSocket; i++ {
			l1, err := cache.New(cfg.L1)
			if err != nil {
				return nil, fmt.Errorf("machine %q: core %d L1: %w", cfg.Name, coreID, err)
			}
			l2, err := cache.New(cfg.L2)
			if err != nil {
				return nil, fmt.Errorf("machine %q: core %d L2: %w", cfg.Name, coreID, err)
			}
			ctr := perf.NewCounters(cfg.Family, fid)
			core, err := cpu.NewCore(coreID, s, cfg.Core, l1, l2, l3, ctr, m, m.dvfs)
			if err != nil {
				return nil, fmt.Errorf("machine %q: core %d: %w", cfg.Name, coreID, err)
			}
			sock.Cores = append(sock.Cores, core)
			m.cores = append(m.cores, core)
			coreID++
		}
		m.sockets = append(m.sockets, sock)
	}
	return m, nil
}

// Config reports the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Family reports the machine's processor family.
func (m *Machine) Family() perf.Family { return m.cfg.Family }

// Sockets returns the machine's sockets.
func (m *Machine) Sockets() []*Socket { return m.sockets }

// Socket returns socket s.
func (m *Machine) Socket(s int) *Socket { return m.sockets[s] }

// Cores returns every core, in id order.
func (m *Machine) Cores() []*cpu.Core { return m.cores }

// Core returns core id.
func (m *Machine) Core(id int) *cpu.Core { return m.cores[id] }

// DVFS exposes the shared frequency governor.
func (m *Machine) DVFS() *cpu.DVFS { return m.dvfs }

// NodeBase reports the first physical address owned by NUMA node n.
func (m *Machine) NodeBase(n int) uintptr { return uintptr(n) << NodeShift }

// HomeNode implements cpu.MemorySystem.
func (m *Machine) HomeNode(addr uintptr) int {
	n := int(addr >> NodeShift)
	if n >= len(m.sockets) {
		n = len(m.sockets) - 1
	}
	return n
}

// Access implements cpu.MemorySystem: it routes the request to the home
// controller with the right NUMA service latency.
func (m *Machine) Access(now sim.Time, addr uintptr, kind mem.AccessKind, fromSocket int) sim.Time {
	home := m.HomeNode(addr)
	service := m.serviceLocal
	if home != fromSocket {
		service = m.serviceRemote
	}
	return m.sockets[home].Ctrl.Access(now, addr, kind, service)
}

// LocalServiceLat reports the DRAM service latency (end-to-end latency minus
// the cache walk) for local accesses; used by tests.
func (m *Machine) LocalServiceLat() sim.Time { return m.serviceLocal }

// RemoteServiceLat reports the DRAM service latency for remote accesses.
func (m *Machine) RemoteServiceLat() sim.Time { return m.serviceRemote }

// InvalidateCaches drops all cache contents (modeling wbinvd between
// experiment trials, as the paper does to eliminate caching effects).
// Dirty-line writeback traffic is intentionally not charged.
func (m *Machine) InvalidateCaches() {
	for _, s := range m.sockets {
		s.L3.InvalidateAll()
		for _, c := range s.Cores {
			c.L1().InvalidateAll()
			c.L2().InvalidateAll()
		}
	}
}

// ResetCounters zeroes every core's PMC bank and controller statistics.
func (m *Machine) ResetCounters() {
	for _, s := range m.sockets {
		s.Ctrl.ResetStats()
		for _, c := range s.Cores {
			c.Counters().Reset()
		}
	}
}
