package machine

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/cache"
	"github.com/quartz-emu/quartz/internal/cpu"
	"github.com/quartz-emu/quartz/internal/mem"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

// Preset identifies one of the paper's three dual-socket testbeds.
type Preset int

// Testbed presets (§4.1).
const (
	// XeonE5_2450 is the Sandy Bridge testbed: 2 sockets x 8 two-way
	// hyper-threaded cores at 2.1 GHz; local/remote DRAM 97/163 ns.
	XeonE5_2450 Preset = iota + 1
	// XeonE5_2660v2 is the Ivy Bridge testbed: 2 sockets x 10 cores at
	// 2.2 GHz; local/remote DRAM 87/176 ns.
	XeonE5_2660v2
	// XeonE5_2650v3 is the Haswell testbed: 2 sockets x 10 cores at
	// 2.3 GHz; local/remote DRAM 120/175 ns.
	XeonE5_2650v3
)

func (p Preset) String() string {
	switch p {
	case XeonE5_2450:
		return "Intel Xeon E5-2450 (Sandy Bridge)"
	case XeonE5_2660v2:
		return "Intel Xeon E5-2660 v2 (Ivy Bridge)"
	case XeonE5_2650v3:
		return "Intel Xeon E5-2650 v3 (Haswell)"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// Presets lists all testbed presets in paper order.
func Presets() []Preset { return []Preset{XeonE5_2450, XeonE5_2660v2, XeonE5_2650v3} }

// PresetFor returns the preset matching a processor family.
func PresetFor(f perf.Family) Preset {
	switch f {
	case perf.SandyBridge:
		return XeonE5_2450
	case perf.IvyBridge:
		return XeonE5_2660v2
	default:
		return XeonE5_2650v3
	}
}

// baseConfig holds the structure shared by all three testbeds; presets
// specialize frequency, cache sizes, channel counts and NUMA latencies.
func baseConfig() Config {
	return Config{
		Sockets: 2,
		Core: cpu.Config{
			MSHRs:         10,
			LineSize:      64,
			PrefetchDepth: 16,
		},
		L1: cache.Config{Name: "L1d", SizeBytes: 32 << 10, Ways: 8, LineSize: 64,
			LookupLat: sim.FromNanos(1.5)},
		L2: cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LineSize: 64,
			LookupLat: sim.FromNanos(4.0)},
		Mem: mem.Config{
			LineSize:          64,
			ThrottleFullScale: 2048,
		},
		DVFSLowFactor:  0.8,
		DVFSHalfPeriod: 200 * sim.Microsecond,
	}
}

// PresetConfig returns the full machine configuration for preset p.
func PresetConfig(p Preset) Config {
	cfg := baseConfig()
	switch p {
	case XeonE5_2450:
		cfg.Name = "Intel Xeon E5-2450"
		cfg.Family = perf.SandyBridge
		cfg.CoresPerSocket = 8
		cfg.Core.FreqHz = 2.1e9
		cfg.L3 = cache.Config{Name: "L3", SizeBytes: 20 << 20, Ways: 20, LineSize: 64,
			LookupLat: sim.FromNanos(11.0)}
		// E5-2400 series: 3 DDR3-1600 channels per socket.
		cfg.Mem.Channels = 3
		cfg.Mem.ChannelBandwidth = 12.8e9
		cfg.LocalLat = sim.FromNanos(97)
		cfg.RemoteLat = sim.FromNanos(163)
	case XeonE5_2660v2:
		cfg.Name = "Intel Xeon E5-2660 v2"
		cfg.Family = perf.IvyBridge
		cfg.CoresPerSocket = 10
		cfg.Core.FreqHz = 2.2e9
		cfg.L3 = cache.Config{Name: "L3", SizeBytes: 25 << 20, Ways: 20, LineSize: 64,
			LookupLat: sim.FromNanos(12.0)}
		cfg.Mem.Channels = 4
		cfg.Mem.ChannelBandwidth = 12.8e9
		cfg.LocalLat = sim.FromNanos(87)
		cfg.RemoteLat = sim.FromNanos(176)
	case XeonE5_2650v3:
		cfg.Name = "Intel Xeon E5-2650 v3"
		cfg.Family = perf.Haswell
		cfg.CoresPerSocket = 10
		cfg.Core.FreqHz = 2.3e9
		cfg.L3 = cache.Config{Name: "L3", SizeBytes: 25 << 20, Ways: 20, LineSize: 64,
			LookupLat: sim.FromNanos(13.0)}
		// DDR4-2133.
		cfg.Mem.Channels = 4
		cfg.Mem.ChannelBandwidth = 17.0e9
		cfg.LocalLat = sim.FromNanos(120)
		cfg.RemoteLat = sim.FromNanos(175)
	}
	return cfg
}

// NewPreset assembles a machine for preset p.
func NewPreset(p Preset) (*Machine, error) {
	cfg := PresetConfig(p)
	m, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("machine: preset %v: %w", p, err)
	}
	return m, nil
}
