package machine

import (
	"fmt"
	"sort"
	"strings"

	"github.com/quartz-emu/quartz/internal/sim"
)

// NVMProfile bundles calibrated NVM device characteristics for the
// asymmetric read/write model: the read/write latency pair, the device's
// internal access granularity (per-line channel occupancy amplification),
// aggregate read/write bandwidth, and — because real NVM write bandwidth is
// not a constant — the write-bandwidth-by-writer-thread collapse curve.
// Profiles feed three existing mechanisms rather than adding new ones:
// latencies become core.Config.NVMLatency/NVMWriteLatency (epoch delay
// injection), bandwidths become the token-bucket throttle targets, and the
// curve reprograms the write throttle as threads register. See
// doc/asymmetry.md for the calibration sources.
type NVMProfile struct {
	// Name is the CLI-facing identifier (-nvm-profile).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// ReadLatency is the target emulated NVM read latency.
	ReadLatency sim.Time
	// WriteLatency is the target emulated NVM store latency (the store-side
	// model's knob). It may be below DRAM latency — Optane's ADR-buffered
	// stores complete faster than its reads — in which case the store model
	// injects nothing (the emulator cannot speed DRAM up).
	WriteLatency sim.Time
	// AccessGranularity is the device's internal access granularity in
	// bytes (mem.Config.AccessGranularity); 0 keeps the line size.
	AccessGranularity int
	// ReadBandwidth is the aggregate device read bandwidth in bytes/sec
	// (0 = unthrottled).
	ReadBandwidth float64
	// WriteBandwidth is the aggregate device write bandwidth in bytes/sec
	// with the profile's best-case writer count (0 = follows ReadBandwidth).
	WriteBandwidth float64
	// WriteBandwidthByThreads, when non-empty, is the write-bandwidth
	// collapse curve: entry i is the aggregate write bandwidth in bytes/sec
	// sustained by i+1 concurrent writer threads. Writer counts beyond the
	// table clamp to the last entry.
	WriteBandwidthByThreads []float64
}

// WriteBandwidthFor reports the profile's aggregate write bandwidth for the
// given concurrent writer-thread count: the collapse-curve entry when a
// curve is present (clamped to its ends), otherwise the flat WriteBandwidth.
func (p NVMProfile) WriteBandwidthFor(writers int) float64 {
	if len(p.WriteBandwidthByThreads) == 0 {
		return p.WriteBandwidth
	}
	if writers < 1 {
		writers = 1
	}
	if writers > len(p.WriteBandwidthByThreads) {
		writers = len(p.WriteBandwidthByThreads)
	}
	return p.WriteBandwidthByThreads[writers-1]
}

// ApplyToMem overlays the profile's device-side characteristics onto a
// machine memory configuration (currently the access granularity).
func (p NVMProfile) ApplyToMem(mc *Config) {
	if p.AccessGranularity > 0 {
		mc.Mem.AccessGranularity = p.AccessGranularity
	}
}

// Calibrated NVM profiles. Numbers follow the measured characterizations in
// PAPERS.md — "An Empirical Guide to the Behavior and Use of Scalable
// Persistent Memory" (Optane DC PMM, 6 interleaved DIMMs) — and the PCM
// literature for the write-dominated profile.
var nvmProfiles = []NVMProfile{
	{
		// Empirical Guide: random read latency ~305 ns (2-3x DRAM), store
		// latency ~94 ns (stores complete into the ADR write buffer, so
		// writes are *faster* than reads until bandwidth saturates), 256 B
		// internal XPLine granularity, peak read ~39.4 GB/s vs peak write
		// ~13.9 GB/s, and write bandwidth that peaks near 4 concurrent
		// writers before contention on the XPBuffer collapses it.
		Name:              "optane-dcpmm",
		Description:       "Intel Optane DC PMM (Empirical Guide): reads slower than writes, 256 B granularity, write bandwidth collapses past 4 writers",
		ReadLatency:       sim.FromNanos(305),
		WriteLatency:      sim.FromNanos(94),
		AccessGranularity: 256,
		ReadBandwidth:     39.4e9,
		WriteBandwidth:    13.9e9,
		WriteBandwidthByThreads: []float64{
			5.1e9,  // 1 writer
			9.6e9,  // 2
			12.5e9, // 3
			13.9e9, // 4 — the peak
			13.2e9, // 5
			12.4e9, // 6
			11.2e9, // 7
			10.1e9, // 8
			9.0e9,  // 9
			8.1e9,  // 10
			7.3e9,  // 11
			6.6e9,  // 12
			6.1e9,  // 13
			5.6e9,  // 14
			5.2e9,  // 15
			4.9e9,  // 16+ (clamped)
		},
	},
	{
		// A phase-change-memory-style device: write latency far above read
		// latency (the classic asymmetry the Koshiba et al. store model
		// targets), line-sized access granularity, modest flat bandwidth.
		Name:           "pcm",
		Description:    "PCM-style device: writes ~4x slower than reads, flat bandwidth",
		ReadLatency:    sim.FromNanos(170),
		WriteLatency:   sim.FromNanos(680),
		ReadBandwidth:  25.0e9,
		WriteBandwidth: 3.0e9,
	},
}

// NVMProfiles lists the calibrated profiles in registry order.
func NVMProfiles() []NVMProfile {
	return append([]NVMProfile(nil), nvmProfiles...)
}

// NVMProfileNames lists the profile identifiers, sorted.
func NVMProfileNames() []string {
	names := make([]string, 0, len(nvmProfiles))
	for _, p := range nvmProfiles {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

// NVMProfileByName resolves a profile identifier; the error names the known
// profiles so CLI typos fail helpfully.
func NVMProfileByName(name string) (NVMProfile, error) {
	for _, p := range nvmProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	return NVMProfile{}, fmt.Errorf("machine: unknown NVM profile %q (known: %s)",
		name, strings.Join(NVMProfileNames(), ", "))
}
