// Package kmod is the emulator's "kernel module" (§3.1): the privileged
// layer that programs the DRAM thermal-control registers through PCI
// configuration space, programs the performance-monitoring counters with the
// family's Table 1 events, and enables user-mode rdpmc so the library can
// read counters without trapping.
package kmod

import (
	"errors"
	"fmt"
	"sort"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/mem"
	"github.com/quartz-emu/quartz/internal/perf"
)

// Module is an opened kernel-module handle for one machine.
type Module struct {
	mach       *machine.Machine
	userRDPMC  bool
	programmed bool
}

// Open loads the kernel module on mach.
func Open(mach *machine.Machine) (*Module, error) {
	if mach == nil {
		return nil, errors.New("kmod: nil machine")
	}
	return &Module{mach: mach}, nil
}

// SetThrottle programs socket's THRT_PWR_DIMM thermal-control register.
func (k *Module) SetThrottle(socket int, reg uint16) error {
	socks := k.mach.Sockets()
	if socket < 0 || socket >= len(socks) {
		return fmt.Errorf("kmod: socket %d out of range [0,%d)", socket, len(socks))
	}
	if err := socks[socket].Ctrl.SetThrottle(reg); err != nil {
		return fmt.Errorf("kmod: socket %d: %w", socket, err)
	}
	return nil
}

// SetThrottleAll programs every socket's throttle registers.
func (k *Module) SetThrottleAll(reg uint16) error {
	for s := range k.mach.Sockets() {
		if err := k.SetThrottle(s, reg); err != nil {
			return err
		}
	}
	return nil
}

// SetReadThrottle programs only socket's read-path throttle register.
func (k *Module) SetReadThrottle(socket int, reg uint16) error {
	socks := k.mach.Sockets()
	if socket < 0 || socket >= len(socks) {
		return fmt.Errorf("kmod: socket %d out of range [0,%d)", socket, len(socks))
	}
	if err := socks[socket].Ctrl.SetReadThrottle(reg); err != nil {
		return fmt.Errorf("kmod: socket %d: %w", socket, err)
	}
	return nil
}

// SetWriteThrottle programs only socket's write-path throttle register,
// enabling the read/write bandwidth asymmetry of §2.1.
func (k *Module) SetWriteThrottle(socket int, reg uint16) error {
	socks := k.mach.Sockets()
	if socket < 0 || socket >= len(socks) {
		return fmt.Errorf("kmod: socket %d out of range [0,%d)", socket, len(socks))
	}
	if err := socks[socket].Ctrl.SetWriteThrottle(reg); err != nil {
		return fmt.Errorf("kmod: socket %d: %w", socket, err)
	}
	return nil
}

// ThrottleForBandwidth computes the register value capping one socket's
// total memory bandwidth closest to target bytes/sec (the analytic inverse
// of the linear throttle ramp; CalibrationTable interpolation is available
// through the calibration helper for measured curves).
func (k *Module) ThrottleForBandwidth(socket int, target float64) (uint16, error) {
	socks := k.mach.Sockets()
	if socket < 0 || socket >= len(socks) {
		return 0, fmt.Errorf("kmod: socket %d out of range [0,%d)", socket, len(socks))
	}
	return socks[socket].Ctrl.RegisterForBandwidth(target), nil
}

// ProgramCounters programs each core's PMC bank with the family's Table 1
// events and starts counting.
func (k *Module) ProgramCounters() error {
	f := k.mach.Family()
	for _, e := range perf.EventsFor(f) {
		if _, ok := perf.EventName(f, e); !ok {
			return fmt.Errorf("kmod: family %v cannot count %v", f, e)
		}
	}
	for _, c := range k.mach.Cores() {
		c.Counters().SetEnabled(true)
	}
	k.programmed = true
	return nil
}

// Programmed reports whether counters have been programmed.
func (k *Module) Programmed() bool { return k.programmed }

// EnableUserRDPMC allows user-mode rdpmc access (CR4.PCE).
func (k *Module) EnableUserRDPMC() { k.userRDPMC = true }

// UserRDPMCEnabled reports whether user-mode counter reads are enabled.
func (k *Module) UserRDPMCEnabled() bool { return k.userRDPMC }

// CalPoint is one row of the saved bandwidth-calibration table: the measured
// attainable bandwidth (bytes/sec) at a throttle-register setting.
type CalPoint struct {
	Register  uint16
	Bandwidth float64
}

// CalibrationTable maps throttle-register values to measured bandwidth, as
// produced by the calibration helper (cmd/quartzcal) that streams through a
// large region with SSE instructions per register value.
type CalibrationTable []CalPoint

// Validate checks the table is non-empty and sorted by register.
func (t CalibrationTable) Validate() error {
	if len(t) == 0 {
		return errors.New("kmod: empty calibration table")
	}
	if !sort.SliceIsSorted(t, func(i, j int) bool { return t[i].Register < t[j].Register }) {
		return errors.New("kmod: calibration table not sorted by register value")
	}
	return nil
}

// RegisterFor returns the smallest register value whose measured bandwidth
// reaches target, interpolating linearly between calibration points.
func (t CalibrationTable) RegisterFor(target float64) (uint16, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if target <= t[0].Bandwidth {
		return t[0].Register, nil
	}
	for i := 1; i < len(t); i++ {
		lo, hi := t[i-1], t[i]
		if target <= hi.Bandwidth {
			span := hi.Bandwidth - lo.Bandwidth
			if span <= 0 {
				return hi.Register, nil
			}
			frac := (target - lo.Bandwidth) / span
			return lo.Register + uint16(frac*float64(hi.Register-lo.Register)+0.5), nil
		}
	}
	return t[len(t)-1].Register, nil
}

// MaxBandwidth reports the largest measured bandwidth in the table.
func (t CalibrationTable) MaxBandwidth() float64 {
	var max float64
	for _, p := range t {
		if p.Bandwidth > max {
			max = p.Bandwidth
		}
	}
	return max
}

// Controller exposes a socket's memory controller for diagnostics.
func (k *Module) Controller(socket int) (*mem.Controller, error) {
	socks := k.mach.Sockets()
	if socket < 0 || socket >= len(socks) {
		return nil, fmt.Errorf("kmod: socket %d out of range [0,%d)", socket, len(socks))
	}
	return socks[socket].Ctrl, nil
}
