package kmod

import (
	"math"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/mem"
	"github.com/quartz-emu/quartz/internal/perf"
)

func mustMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil); err == nil {
		t.Error("Open(nil) succeeded")
	}
	if _, err := Open(mustMachine(t)); err != nil {
		t.Errorf("Open failed: %v", err)
	}
}

func TestSetThrottleProgramsRegisters(t *testing.T) {
	m := mustMachine(t)
	k, err := Open(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetThrottle(0, 1234); err != nil {
		t.Fatal(err)
	}
	if got := m.Socket(0).Ctrl.Throttle(); got != 1234 {
		t.Errorf("socket 0 register = %d, want 1234", got)
	}
	if got := m.Socket(1).Ctrl.Throttle(); got == 1234 {
		t.Error("SetThrottle(0,...) leaked to socket 1")
	}
	if err := k.SetThrottleAll(2222); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if got := m.Socket(s).Ctrl.Throttle(); got != 2222 {
			t.Errorf("socket %d register = %d after SetThrottleAll", s, got)
		}
		if got := m.Socket(s).Ctrl.WriteThrottle(); got != 2222 {
			t.Errorf("socket %d write register = %d after SetThrottleAll", s, got)
		}
	}
}

func TestSetThrottleErrors(t *testing.T) {
	k, err := Open(mustMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetThrottle(7, 100); err == nil {
		t.Error("invalid socket accepted")
	}
	if err := k.SetThrottle(0, mem.RegisterMax+1); err == nil {
		t.Error("13-bit register value accepted")
	}
	if err := k.SetReadThrottle(7, 100); err == nil {
		t.Error("SetReadThrottle invalid socket accepted")
	}
	if err := k.SetWriteThrottle(7, 100); err == nil {
		t.Error("SetWriteThrottle invalid socket accepted")
	}
}

func TestAsymmetricRegisters(t *testing.T) {
	m := mustMachine(t)
	k, err := Open(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetReadThrottle(0, 4095); err != nil {
		t.Fatal(err)
	}
	if err := k.SetWriteThrottle(0, 512); err != nil {
		t.Fatal(err)
	}
	ctrl := m.Socket(0).Ctrl
	if ctrl.ChannelBandwidth() <= ctrl.ChannelWriteBandwidth() {
		t.Errorf("read bw %g not above write bw %g after asymmetric throttle",
			ctrl.ChannelBandwidth(), ctrl.ChannelWriteBandwidth())
	}
}

func TestProgramCountersEnablesAllCores(t *testing.T) {
	m := mustMachine(t)
	k, err := Open(m)
	if err != nil {
		t.Fatal(err)
	}
	if k.Programmed() {
		t.Error("module claims programmed before ProgramCounters")
	}
	if err := k.ProgramCounters(); err != nil {
		t.Fatal(err)
	}
	if !k.Programmed() {
		t.Error("Programmed() false after ProgramCounters")
	}
	for _, c := range m.Cores() {
		if !c.Counters().Enabled() {
			t.Fatalf("core %d counters not enabled", c.ID())
		}
	}
	k.EnableUserRDPMC()
	if !k.UserRDPMCEnabled() {
		t.Error("user rdpmc not enabled")
	}
}

func TestThrottleForBandwidthInvertsLinearRamp(t *testing.T) {
	m := mustMachine(t)
	k, err := Open(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{2e9, 10e9, 25e9} {
		reg, err := k.ThrottleForBandwidth(0, target)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetThrottle(0, reg); err != nil {
			t.Fatal(err)
		}
		got := m.Socket(0).Ctrl.EffectiveBandwidth()
		if math.Abs(got-target)/target > 0.02 {
			t.Errorf("target %g -> register %d -> %g (%.1f%% off)", target, reg, got, 100*math.Abs(got-target)/target)
		}
	}
	if _, err := k.ThrottleForBandwidth(9, 1e9); err == nil {
		t.Error("invalid socket accepted")
	}
}

func TestCalibrationTable(t *testing.T) {
	table := CalibrationTable{
		{Register: 512, Bandwidth: 10e9},
		{Register: 1024, Bandwidth: 20e9},
		{Register: 2048, Bandwidth: 38e9},
		{Register: 4095, Bandwidth: 38.4e9},
	}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := table.MaxBandwidth(); got != 38.4e9 {
		t.Errorf("MaxBandwidth = %g", got)
	}
	// Exact point.
	reg, err := table.RegisterFor(20e9)
	if err != nil {
		t.Fatal(err)
	}
	if reg != 1024 {
		t.Errorf("RegisterFor(20e9) = %d, want 1024", reg)
	}
	// Interpolated point: halfway between 10 and 20 GB/s.
	reg, err = table.RegisterFor(15e9)
	if err != nil {
		t.Fatal(err)
	}
	if reg < 700 || reg > 850 {
		t.Errorf("RegisterFor(15e9) = %d, want ~768", reg)
	}
	// Below range clamps low; above range clamps high.
	if reg, _ := table.RegisterFor(1e9); reg != 512 {
		t.Errorf("below-range register = %d", reg)
	}
	if reg, _ := table.RegisterFor(1e12); reg != 4095 {
		t.Errorf("above-range register = %d", reg)
	}
}

func TestCalibrationTableValidation(t *testing.T) {
	if err := (CalibrationTable{}).Validate(); err == nil {
		t.Error("empty table accepted")
	}
	bad := CalibrationTable{{Register: 100, Bandwidth: 1}, {Register: 50, Bandwidth: 2}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted table accepted")
	}
	if _, err := bad.RegisterFor(1); err == nil {
		t.Error("RegisterFor on unsorted table succeeded")
	}
}

func TestControllerAccessor(t *testing.T) {
	m := mustMachine(t)
	k, err := Open(m)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := k.Controller(1)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl != m.Socket(1).Ctrl {
		t.Error("Controller(1) returned wrong controller")
	}
	if _, err := k.Controller(5); err == nil {
		t.Error("invalid socket accepted")
	}
}

func TestCountersAvailableForAllFamilies(t *testing.T) {
	for _, p := range machine.Presets() {
		m, err := machine.NewPreset(p)
		if err != nil {
			t.Fatal(err)
		}
		k, err := Open(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.ProgramCounters(); err != nil {
			t.Errorf("%v: ProgramCounters failed: %v", p, err)
		}
		for _, e := range perf.EventsFor(m.Family()) {
			if _, ok := perf.EventName(m.Family(), e); !ok {
				t.Errorf("%v: event %v unprogrammable", p, e)
			}
		}
	}
}
