package runner

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/experiments"
)

// suiteScale keeps the determinism suite fast; determinism must hold at any
// scale since jobs seed their simulations explicitly.
var suiteScale = experiments.Scale{
	Sparse:           true,
	Trials:           1,
	Lines:            1 << 16,
	MemLatIters:      2_000,
	MTSections:       30,
	MultiLatLines:    4_000,
	StreamLines:      1 << 13,
	KVOps:            150,
	KVPreload:        300,
	PRVertices:       400,
	PREdgesPerVertex: 4,
	PRIters:          2,
	TrafficClients:   []int{4, 8, 16},
	TrafficPool:      2,
	TrafficOps:       5,
	TrafficWarmup:    2,
	TrafficPreload:   150,
	TrafficMixes:     []string{"read-mostly", "write-heavy"},
	TrafficLatsNS:    []float64{300},

	TrafficMegaClients: []int{24, 96},
	TrafficMegaOps:     2,
	TrafficMegaWarmup:  1,

	AsymProfiles: []string{"optane-dcpmm", "pcm"},
	AsymLines:    1 << 12,
	AsymWriters:  []int{1, 2, 4},
	AsymBWLines:  256,
}

// renderAll concatenates the rendered tables of a suite run.
func renderAll(t *testing.T, runs []ExperimentRun) string {
	t.Helper()
	var b strings.Builder
	for _, er := range runs {
		if er.Err != nil {
			t.Fatalf("%s: %v", er.ID, er.Err)
		}
		b.WriteString(er.Table.Render())
	}
	return b.String()
}

// TestSuiteDeterminism: the assembled tables must be byte-identical
// regardless of worker count. table2 exercises the per-cell decomposition,
// fig16 the cross-job baseline normalization in the assembler.
func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	ids := []string{"table2", "fig16"}
	serial, err := Suite(context.Background(), ids, suiteScale, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Suite(context.Background(), ids, suiteScale, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, got := renderAll(t, serial), renderAll(t, parallel)
	if want != got {
		t.Errorf("parallel output diverges from serial output:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if len(want) == 0 {
		t.Fatal("empty suite output")
	}
}

// TestTrafficSuiteDeterminism: the traffic sweep's client x mix x latency
// matrix — whose per-client generators are merged by position — must
// assemble byte-identical tables for 1 vs. N workers, the ISSUE 6 gate.
func TestTrafficSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	ids := []string{"traffic-sweep", "traffic-slo", "traffic-mega"}
	serial, err := Suite(context.Background(), ids, suiteScale, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Suite(context.Background(), ids, suiteScale, Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, got := renderAll(t, serial), renderAll(t, parallel)
	if want != got {
		t.Errorf("parallel traffic tables diverge from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if !strings.Contains(want, "knee") {
		t.Errorf("traffic sweep reports no knee:\n%s", want)
	}
}

// TestTrialParallelDeterminism: within one job, the repeated trials and the
// paired Conf_1/Conf_2 (or model-variant) simulations merge by position, so
// the assembled tables must be byte-identical for serial vs. parallel units
// — and for every -parallel × -trial-parallel combination, the ISSUE 7
// gate. fig11 exercises paired trials, model-ablation the variant fan-out,
// table2 the plain positional trial slots, and the two asymmetric-model
// sweeps the store-counter/write-stall path (fig12-asym interleaves
// read/baseline/asym unit triples; fig11-asym spawns multi-writer
// simulations whose registration order reprograms the write throttle).
func TestTrialParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	ids := []string{"fig11", "model-ablation", "table2", "fig11-asym", "fig12-asym"}
	scale := suiteScale
	scale.Trials = 3 // multiple trial units per job, not just the paired runs
	serial, err := Suite(context.Background(), ids, scale, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, serial)
	if len(want) == 0 {
		t.Fatal("empty suite output")
	}
	for _, cfg := range []struct {
		name            string
		workers, trials int
	}{
		{"serial-workers/parallel-trials", 1, 4},
		{"parallel-workers/parallel-trials", 6, 4},
		{"parallel-workers/serial-trials", 6, 1},
	} {
		s := scale
		s.TrialParallel = cfg.trials
		runs, err := Suite(context.Background(), ids, s, Config{Workers: cfg.workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, runs); got != want {
			t.Errorf("%s diverges from serial output:\n--- serial ---\n%s\n--- %s ---\n%s",
				cfg.name, want, cfg.name, got)
		}
	}
}

// TestSuiteSerialMatchesDirectRun: the Workers=1 suite path must reproduce
// experiments.Run exactly.
func TestSuiteSerialMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	const id = "model-ablation"
	direct, err := experiments.Run(id, suiteScale)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := Suite(context.Background(), []string{id}, suiteScale, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Err != nil {
		t.Fatal(runs[0].Err)
	}
	if direct.Render() != runs[0].Table.Render() {
		t.Errorf("suite output differs from direct run:\n--- direct ---\n%s\n--- suite ---\n%s",
			direct.Render(), runs[0].Table.Render())
	}
}

// panickingSet is an injected experiment whose second job crashes.
func panickingSet() experiments.JobSet {
	ok := func() (experiments.Metrics, error) { return experiments.Metrics{"v": 1}, nil }
	return experiments.JobSet{
		ID: "inject-panic",
		Jobs: []experiments.Job{
			{Name: "fine", Run: ok},
			{Name: "crash", Run: func() (experiments.Metrics, error) { panic("injected crash") }},
			{Name: "also-fine", Run: ok},
		},
		Assemble: func(points []experiments.Metrics) (experiments.Table, error) {
			return experiments.Table{ID: "inject-panic", Header: []string{"n"}, Rows: [][]string{{"1"}}}, nil
		},
	}
}

// healthySet is a trivial experiment that must survive a sibling's crash.
func healthySet() experiments.JobSet {
	return experiments.JobSet{
		ID: "healthy",
		Jobs: []experiments.Job{{
			Name: "only",
			Run:  func() (experiments.Metrics, error) { return experiments.Metrics{"v": 2}, nil },
		}},
		Assemble: func(points []experiments.Metrics) (experiments.Table, error) {
			return experiments.Table{
				ID: "healthy", Title: "healthy", Header: []string{"v"},
				Rows: [][]string{{"2"}},
			}, nil
		},
	}
}

// TestSuitePanicFailsOneExperimentOnly: an injected panicking job must yield
// a failed-job JSONL record and a failed experiment (non-zero exit in
// quartzbench), while the other experiment still completes and renders.
func TestSuitePanicFailsOneExperimentOnly(t *testing.T) {
	var jsonl bytes.Buffer
	runs, err := SuiteSets(context.Background(),
		[]experiments.JobSet{panickingSet(), healthySet()},
		Config{Workers: 2, Sink: NewSink(&jsonl)})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Err == nil {
		t.Error("experiment with panicking job reported no error")
	} else if !strings.Contains(runs[0].Err.Error(), "injected crash") {
		t.Errorf("panic cause lost: %v", runs[0].Err)
	}
	if runs[1].Err != nil {
		t.Errorf("healthy experiment failed: %v", runs[1].Err)
	}
	if got := runs[1].Table.Render(); !strings.Contains(got, "healthy") {
		t.Errorf("healthy experiment did not render: %q", got)
	}
	out := jsonl.String()
	if !strings.Contains(out, `"status":"failed"`) || !strings.Contains(out, "injected crash") {
		t.Errorf("JSONL missing the failed-job record:\n%s", out)
	}
	if !strings.Contains(out, `"job":"healthy/only"`) {
		t.Errorf("JSONL missing the healthy job record:\n%s", out)
	}
}

// TestSuiteUnknownExperiment: resolution fails before anything runs.
func TestSuiteUnknownExperiment(t *testing.T) {
	if _, err := Suite(context.Background(), []string{"fig99"}, suiteScale, Config{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestSuiteZeroJobExperiment: table1 has no jobs; the assembler still
// produces the artifact.
func TestSuiteZeroJobExperiment(t *testing.T) {
	runs, err := Suite(context.Background(), []string{"table1"}, suiteScale, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Err != nil {
		t.Fatal(runs[0].Err)
	}
	if len(runs[0].Table.Rows) == 0 {
		t.Error("table1 produced no rows")
	}
}
