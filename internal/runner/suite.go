package runner

import (
	"context"
	"fmt"
	"time"

	"github.com/quartz-emu/quartz/internal/experiments"
)

// ExperimentRun is the outcome of one experiment within a suite.
type ExperimentRun struct {
	ID string
	// Table is the assembled artifact; valid only when Err is nil.
	Table experiments.Table
	// Err is set when any job failed, timed out, or was canceled, or when
	// assembly failed. The rest of the suite still completes.
	Err error
	// Jobs are the experiment's job results in decomposition order.
	Jobs []Result
	// Wall spans the earliest job start to the latest job end (zero for
	// job-less experiments such as table1).
	Wall time.Duration
}

// Suite resolves ids against the experiment registry and runs them as one
// scheduled workload via SuiteSets.
func Suite(ctx context.Context, ids []string, s experiments.Scale, cfg Config) ([]ExperimentRun, error) {
	sets := make([]experiments.JobSet, 0, len(ids))
	for _, id := range ids {
		js, err := experiments.Jobs(id, s)
		if err != nil {
			return nil, err
		}
		sets = append(sets, js)
	}
	return SuiteSets(ctx, sets, cfg)
}

// SuiteSets flattens the job sets into one job list, runs it on the pool —
// jobs of different experiments interleave freely, maximizing utilization —
// and reassembles each experiment's table from its results in decomposition
// order. Assembly depends only on job metrics, never on scheduling, so the
// output is byte-identical for every worker count. One experiment failing
// (job error, panic, timeout, cancellation) marks that run's Err and leaves
// the others intact.
func SuiteSets(ctx context.Context, sets []experiments.JobSet, cfg Config) ([]ExperimentRun, error) {
	var flat []Job
	offsets := make([]int, len(sets)+1)
	for si, set := range sets {
		offsets[si] = len(flat)
		for _, ej := range set.Jobs {
			flat = append(flat, Job{
				ID:         set.ID + "/" + ej.Name,
				Experiment: set.ID,
				Params:     ej.Params,
				Fn: func(context.Context) (map[string]float64, error) {
					return ej.Run()
				},
			})
		}
	}
	offsets[len(sets)] = len(flat)

	if cfg.Status != nil {
		ids := make([]string, len(sets))
		counts := make([]int, len(sets))
		for si, set := range sets {
			ids[si] = set.ID
			counts[si] = offsets[si+1] - offsets[si]
		}
		cfg.Status.SuiteStarted(ids, counts)
		defer cfg.Status.SuiteFinished()
	}

	results, sinkErr := Run(ctx, cfg, flat)

	runs := make([]ExperimentRun, 0, len(sets))
	for si, set := range sets {
		er := ExperimentRun{ID: set.ID, Jobs: results[offsets[si]:offsets[si+1]]}
		points := make([]experiments.Metrics, 0, len(er.Jobs))
		var first, last time.Time
		for _, r := range er.Jobs {
			if r.Status != StatusOK {
				er.Err = fmt.Errorf("job %s %s: %s", r.JobID, r.Status, r.Err)
				break
			}
			points = append(points, experiments.Metrics(r.Metrics))
			if first.IsZero() || r.Start.Before(first) {
				first = r.Start
			}
			if r.End.After(last) {
				last = r.End
			}
		}
		if er.Err == nil {
			er.Wall = last.Sub(first)
			er.Table, er.Err = set.Assemble(points)
		}
		cfg.Status.ExperimentFinished(set.ID, er.Err)
		runs = append(runs, er)
	}
	return runs, sinkErr
}
