package runner

import (
	"encoding/json"
	"io"
	"sync"
)

// Sink serializes job results as JSON Lines: one self-contained record per
// completed job, written in completion order. Write is safe for concurrent
// use.
type Sink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewSink returns a sink writing JSONL records to w.
func NewSink(w io.Writer) *Sink {
	return &Sink{enc: json.NewEncoder(w)}
}

// record is the JSONL schema of one job result.
type record struct {
	Job        string             `json:"job"`
	Experiment string             `json:"experiment"`
	Params     map[string]string  `json:"params,omitempty"`
	Status     Status             `json:"status"`
	Attempts   int                `json:"attempts"`
	WallMS     float64            `json:"wall_ms"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Error      string             `json:"error,omitempty"`
}

// Write appends one result as a JSONL record.
func (s *Sink) Write(r Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(record{
		Job:        r.JobID,
		Experiment: r.Experiment,
		Params:     r.Params,
		Status:     r.Status,
		Attempts:   r.Attempts,
		WallMS:     float64(r.Wall.Microseconds()) / 1e3,
		Metrics:    r.Metrics,
		Error:      r.Err,
	})
}
