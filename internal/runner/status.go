package runner

import (
	"sync"
	"time"
)

// StatusBoard tracks live suite and per-experiment job progress for the
// introspection plane: the runner updates it as jobs complete and the
// /runs HTTP endpoint (internal/obs/obshttp) serves its Snapshot. All
// methods are safe for concurrent use, and a nil *StatusBoard is a valid
// no-op — call sites never need to branch.
type StatusBoard struct {
	mu      sync.Mutex
	started time.Time
	running bool
	total   int
	done    int
	failed  int
	order   []string
	exps    map[string]*expState
	last    *JobStatus
}

// expState is one experiment's mutable progress.
type expState struct {
	total  int
	done   int
	failed int
	state  string // "pending" | "running" | "ok" | "error"
	err    string
}

// NewStatusBoard creates an empty board.
func NewStatusBoard() *StatusBoard {
	return &StatusBoard{exps: make(map[string]*expState)}
}

// SuiteStarted registers the suite's experiments and their job counts
// (parallel slices) and stamps the start time.
func (b *StatusBoard) SuiteStarted(ids []string, jobs []int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.started = time.Now()
	b.running = true
	for i, id := range ids {
		e := b.exp(id)
		e.total = jobs[i]
		if e.total == 0 {
			// Job-less experiments (static tables) assemble instantly.
			e.state = "running"
		}
		b.total += jobs[i]
	}
}

// exp returns (creating if needed) the state for id. Caller holds b.mu.
func (b *StatusBoard) exp(id string) *expState {
	e := b.exps[id]
	if e == nil {
		e = &expState{state: "pending"}
		b.exps[id] = e
		b.order = append(b.order, id)
	}
	return e
}

// JobFinished folds one completed job into the board. Experiments never
// registered via SuiteStarted (direct Run usage) are created on the fly
// with a growing total.
func (b *StatusBoard) JobFinished(r Result) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started.IsZero() {
		b.started = time.Now()
		b.running = true
	}
	e := b.exp(r.Experiment)
	e.done++
	if e.done > e.total {
		e.total = e.done
		b.total++
	}
	b.done++
	if r.Status != StatusOK {
		e.failed++
		b.failed++
	}
	if e.state == "pending" {
		e.state = "running"
	}
	b.last = &JobStatus{
		ID: r.JobID, Experiment: r.Experiment, Status: r.Status,
		Attempts: r.Attempts, WallMS: float64(r.Wall.Microseconds()) / 1e3,
	}
}

// ExperimentFinished records an experiment's final outcome after assembly.
func (b *StatusBoard) ExperimentFinished(id string, err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.exp(id)
	if err != nil {
		e.state = "error"
		e.err = err.Error()
	} else {
		e.state = "ok"
	}
}

// SuiteFinished marks the suite as no longer running.
func (b *StatusBoard) SuiteFinished() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.running = false
}

// JobStatus is one job outcome in a snapshot.
type JobStatus struct {
	ID         string  `json:"id"`
	Experiment string  `json:"experiment"`
	Status     Status  `json:"status"`
	Attempts   int     `json:"attempts"`
	WallMS     float64 `json:"wall_ms"`
}

// ExperimentStatus is one experiment's progress in a snapshot.
type ExperimentStatus struct {
	ID         string `json:"id"`
	TotalJobs  int    `json:"total_jobs"`
	DoneJobs   int    `json:"done_jobs"`
	FailedJobs int    `json:"failed_jobs"`
	// State is "pending", "running", "ok" or "error".
	State string `json:"state"`
	Err   string `json:"error,omitempty"`
}

// StatusSnapshot is the /runs JSON schema: the whole suite's live state.
type StatusSnapshot struct {
	Running     bool               `json:"running"`
	StartedAt   time.Time          `json:"started_at"`
	ElapsedS    float64            `json:"elapsed_s"`
	TotalJobs   int                `json:"total_jobs"`
	DoneJobs    int                `json:"done_jobs"`
	FailedJobs  int                `json:"failed_jobs"`
	Experiments []ExperimentStatus `json:"experiments"`
	LastJob     *JobStatus         `json:"last_job,omitempty"`
}

// Snapshot copies the board's current state. A nil board snapshots to the
// zero value.
func (b *StatusBoard) Snapshot() StatusSnapshot {
	if b == nil {
		return StatusSnapshot{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := StatusSnapshot{
		Running:    b.running,
		StartedAt:  b.started,
		TotalJobs:  b.total,
		DoneJobs:   b.done,
		FailedJobs: b.failed,
	}
	if !b.started.IsZero() {
		s.ElapsedS = time.Since(b.started).Seconds()
	}
	for _, id := range b.order {
		e := b.exps[id]
		s.Experiments = append(s.Experiments, ExperimentStatus{
			ID: id, TotalJobs: e.total, DoneJobs: e.done,
			FailedJobs: e.failed, State: e.state, Err: e.err,
		})
	}
	if b.last != nil {
		last := *b.last
		s.LastJob = &last
	}
	return s
}
