package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// okJob returns a job that yields {"v": v}.
func okJob(id string, v float64) Job {
	return Job{
		ID: id, Experiment: "test",
		Fn: func(context.Context) (map[string]float64, error) {
			return map[string]float64{"v": v}, nil
		},
	}
}

func TestResultsIndexedBySubmissionOrder(t *testing.T) {
	var jobs []Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, okJob(fmt.Sprintf("job-%d", i), float64(i)))
	}
	results, err := Run(context.Background(), Config{Workers: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.JobID != jobs[i].ID {
			t.Errorf("result %d is %q, want %q", i, r.JobID, jobs[i].ID)
		}
		if r.Status != StatusOK || r.Metrics["v"] != float64(i) {
			t.Errorf("result %d: status %s metrics %v", i, r.Status, r.Metrics)
		}
		if r.Attempts != 1 {
			t.Errorf("result %d: attempts = %d, want 1", i, r.Attempts)
		}
	}
}

// TestPanicBecomesFailedJobRecord: a crashed job must become a failed-job
// record — with the panic message preserved — while the rest of the suite
// completes untouched.
func TestPanicBecomesFailedJobRecord(t *testing.T) {
	jobs := []Job{
		okJob("before", 1),
		{
			ID: "boom", Experiment: "test",
			Fn: func(context.Context) (map[string]float64, error) {
				panic("simulated sim crash")
			},
		},
		okJob("after", 2),
	}
	results, err := Run(context.Background(), Config{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Status != StatusFailed {
		t.Fatalf("panicking job status = %s, want %s", results[1].Status, StatusFailed)
	}
	if !strings.Contains(results[1].Err, "simulated sim crash") {
		t.Errorf("panic message lost: %q", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Status != StatusOK {
			t.Errorf("job %s did not survive the sibling panic: %s", results[i].JobID, results[i].Status)
		}
	}
}

func TestBoundedRetries(t *testing.T) {
	var calls atomic.Int64
	flaky := Job{
		ID: "flaky", Experiment: "test",
		Fn: func(context.Context) (map[string]float64, error) {
			if calls.Add(1) < 3 {
				return nil, errors.New("transient")
			}
			return map[string]float64{"v": 7}, nil
		},
	}
	results, err := Run(context.Background(), Config{Workers: 1, Retries: 2}, []Job{flaky})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusOK {
		t.Fatalf("status = %s (%s), want ok after retries", results[0].Status, results[0].Err)
	}
	if results[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3", results[0].Attempts)
	}

	calls.Store(0)
	results, err = Run(context.Background(), Config{Workers: 1, Retries: 1}, []Job{flaky})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusFailed {
		t.Fatalf("status = %s, want failed once retries are exhausted", results[0].Status)
	}
	if results[0].Attempts != 2 {
		t.Errorf("attempts = %d, want 2", results[0].Attempts)
	}
}

// TestPerJobTimeout: a hung job is recorded as timed out (not retried) and
// does not stall its siblings.
func TestPerJobTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	jobs := []Job{
		{
			ID: "hang", Experiment: "test",
			Fn: func(context.Context) (map[string]float64, error) {
				<-release
				return nil, nil
			},
		},
		okJob("quick", 1),
	}
	results, err := Run(context.Background(), Config{Workers: 2, Timeout: 20 * time.Millisecond, Retries: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusTimeout {
		t.Fatalf("hung job status = %s, want %s", results[0].Status, StatusTimeout)
	}
	if results[0].Attempts != 1 {
		t.Errorf("timed-out job was retried: attempts = %d", results[0].Attempts)
	}
	if results[1].Status != StatusOK {
		t.Errorf("sibling job status = %s", results[1].Status)
	}
}

// TestCancellationDrainsWorkers: canceling mid-suite must mark the pending
// jobs canceled and return a full result set without deadlocking.
func TestCancellationDrainsWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var jobs []Job
	jobs = append(jobs, Job{
		ID: "first", Experiment: "test",
		Fn: func(context.Context) (map[string]float64, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			return map[string]float64{"v": 1}, nil
		},
	})
	for i := 0; i < 30; i++ {
		jobs = append(jobs, Job{
			ID: fmt.Sprintf("pending-%d", i), Experiment: "test",
			Fn: func(ctx context.Context) (map[string]float64, error) {
				<-ctx.Done() // simulate a ctx-aware long job
				return nil, ctx.Err()
			},
		})
	}
	go func() {
		<-started
		cancel()
	}()
	done := make(chan []Result, 1)
	go func() {
		results, _ := Run(ctx, Config{Workers: 4}, jobs)
		done <- results
	}()
	select {
	case results := <-done:
		if len(results) != len(jobs) {
			t.Fatalf("got %d results, want %d", len(results), len(jobs))
		}
		var canceledN int
		for _, r := range results {
			if r.Status == StatusCanceled {
				canceledN++
			}
			if r.Status == "" {
				t.Errorf("job %s has no recorded status", r.JobID)
			}
		}
		if canceledN == 0 {
			t.Error("no jobs recorded as canceled after mid-suite cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not drain workers after cancellation")
	}
}

func TestSinkWritesJSONLRecords(t *testing.T) {
	var buf bytes.Buffer
	jobs := []Job{
		okJob("a", 1),
		{
			ID: "b", Experiment: "test", Params: map[string]string{"point": "x"},
			Fn: func(context.Context) (map[string]float64, error) {
				return nil, errors.New("kaput")
			},
		},
	}
	if _, err := Run(context.Background(), Config{Workers: 2, Sink: NewSink(&buf)}, jobs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	byJob := map[string]record{}
	for _, line := range lines {
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", line, err)
		}
		byJob[rec.Job] = rec
	}
	if a := byJob["a"]; a.Status != StatusOK || a.Metrics["v"] != 1 || a.Experiment != "test" {
		t.Errorf("record a = %+v", a)
	}
	if b := byJob["b"]; b.Status != StatusFailed || !strings.Contains(b.Error, "kaput") || b.Params["point"] != "x" {
		t.Errorf("record b = %+v", b)
	}
}

func TestProgressReporting(t *testing.T) {
	var last Progress
	var callsN int
	jobs := []Job{okJob("a", 1), okJob("b", 2), {
		ID: "c", Experiment: "test",
		Fn: func(context.Context) (map[string]float64, error) { return nil, errors.New("no") },
	}}
	_, err := Run(context.Background(), Config{Workers: 1, OnProgress: func(p Progress) {
		callsN++
		last = p
	}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if callsN != 3 {
		t.Errorf("progress called %d times, want 3", callsN)
	}
	if last.Done != 3 || last.Total != 3 || last.Failed != 1 {
		t.Errorf("final progress = %+v", last)
	}
}

func TestZeroJobs(t *testing.T) {
	results, err := Run(context.Background(), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results for zero jobs", len(results))
	}
}
