// Package runner is the experiment execution engine: it schedules
// independent deterministic jobs onto a bounded worker pool with per-job
// timeouts, panic recovery, bounded retries, cancellation, live progress and
// a structured JSONL result sink, then reassembles the out-of-order
// completions into deterministic tables (suite.go).
//
// Determinism contract: results are indexed exactly like the submitted jobs,
// and the jobs themselves seed their simulations explicitly, so any worker
// count — including the serial Workers=1 special case — yields identical
// metrics and therefore byte-identical assembled tables.
//
// This pool is the outer of the two host-side parallelism layers: it
// spreads whole jobs across workers (-parallel), while Scale.TrialParallel
// (-trial-parallel) additionally fans out the independent trials and paired
// simulations inside one job. The knobs compose multiplicatively and both
// preserve the byte-identical-tables contract; see doc/parallelism.md.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/quartz-emu/quartz/internal/obs"
)

// Status classifies how a job finished.
type Status string

const (
	// StatusOK: the job returned metrics.
	StatusOK Status = "ok"
	// StatusFailed: every attempt returned an error or panicked.
	StatusFailed Status = "failed"
	// StatusTimeout: the per-job timeout fired; the attempt was abandoned.
	StatusTimeout Status = "timeout"
	// StatusCanceled: the suite was canceled before the job could finish.
	StatusCanceled Status = "canceled"
)

// Job is one schedulable unit of work.
type Job struct {
	// ID is unique across the suite, e.g. "fig12/Ivy Bridge/target=500".
	ID string
	// Experiment is the owning experiment id ("fig12").
	Experiment string
	// Params describes the sweep point for the result sink.
	Params map[string]string
	// Fn computes the job. Deterministic jobs ignore ctx; long-running ones
	// may honor it to stop early on cancellation.
	Fn func(ctx context.Context) (map[string]float64, error)
}

// Result records one job's outcome. Results are returned indexed exactly as
// the jobs were submitted, regardless of completion order.
type Result struct {
	JobID      string
	Experiment string
	Params     map[string]string
	Status     Status
	Metrics    map[string]float64
	Err        string
	Wall       time.Duration
	Attempts   int
	Start, End time.Time
}

// Config tunes the pool.
type Config struct {
	// Workers is the number of concurrently running jobs; <= 0 means
	// GOMAXPROCS. Workers == 1 is the serial path.
	Workers int
	// Timeout bounds each job attempt; 0 disables. A timed-out attempt's
	// goroutine is abandoned (it cannot be preempted mid-simulation) and the
	// job is recorded as StatusTimeout without retry.
	Timeout time.Duration
	// Retries is the number of additional attempts after a failed (errored
	// or panicked) attempt.
	Retries int
	// Sink, when non-nil, receives every result as its job completes.
	Sink *Sink
	// OnProgress, when non-nil, is called after every job completion. Calls
	// are serialized; keep the work cheap.
	OnProgress func(Progress)
	// Recorder, when non-nil, aggregates job outcomes, attempts and wall
	// times into its metrics registry (internal/obs). A nil recorder is a
	// no-op.
	Recorder *obs.Recorder
	// Status, when non-nil, tracks live per-experiment job progress for the
	// HTTP introspection plane (/runs). A nil board is a no-op.
	Status *StatusBoard
}

// Progress snapshots suite completion for live reporting.
type Progress struct {
	Done   int
	Failed int
	Total  int
	Last   Result
}

// Run executes jobs on a bounded worker pool and returns results indexed
// exactly as jobs. It never returns early: when ctx is canceled, running
// attempts are abandoned, the remaining jobs are recorded as
// StatusCanceled, and all workers are drained before returning. The error
// is non-nil only when the sink failed to record a result.
func Run(ctx context.Context, cfg Config, jobs []Job) ([]Result, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	completions := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if ctx.Err() != nil {
					results[i] = canceled(jobs[i])
				} else {
					results[i] = runJob(ctx, cfg, jobs[i])
				}
				completions <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completions)
	}()

	var sinkErr error
	done, failed := 0, 0
	for i := range completions {
		r := results[i]
		done++
		if r.Status != StatusOK {
			failed++
		}
		cfg.Recorder.JobDone(r.JobID, string(r.Status), r.Attempts, r.Wall)
		cfg.Status.JobFinished(r)
		if cfg.Sink != nil {
			if err := cfg.Sink.Write(r); err != nil && sinkErr == nil {
				sinkErr = fmt.Errorf("runner: result sink: %w", err)
			}
		}
		if cfg.OnProgress != nil {
			cfg.OnProgress(Progress{Done: done, Failed: failed, Total: len(jobs), Last: r})
		}
	}
	return results, sinkErr
}

// canceled records a job that was never attempted.
func canceled(j Job) Result {
	now := time.Now()
	return Result{
		JobID: j.ID, Experiment: j.Experiment, Params: j.Params,
		Status: StatusCanceled, Err: "suite canceled",
		Start: now, End: now,
	}
}

// runJob runs one job with bounded retries, converting panics and timeouts
// into failed-job records instead of letting them kill the suite.
func runJob(ctx context.Context, cfg Config, j Job) Result {
	res := Result{JobID: j.ID, Experiment: j.Experiment, Params: j.Params, Start: time.Now()}
	attempts := 1 + cfg.Retries
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; attempt <= attempts; attempt++ {
		res.Attempts = attempt
		metrics, interrupted, err := runAttempt(ctx, cfg.Timeout, j)
		switch {
		case interrupted == byTimeout:
			// Deterministic jobs time out deterministically: don't retry.
			res.Status = StatusTimeout
			res.Err = fmt.Sprintf("attempt %d: no result within %s", attempt, cfg.Timeout)
			attempt = attempts
		case interrupted == byCancel:
			res.Status = StatusCanceled
			res.Err = "suite canceled mid-attempt"
			attempt = attempts
		case err != nil:
			res.Status = StatusFailed
			res.Err = fmt.Sprintf("attempt %d: %v", attempt, err)
		default:
			res.Status = StatusOK
			res.Metrics = metrics
			res.Err = ""
			attempt = attempts
		}
	}
	res.End = time.Now()
	res.Wall = res.End.Sub(res.Start)
	return res
}

// interruption distinguishes why an attempt returned without a job result.
type interruption int

const (
	notInterrupted interruption = iota
	byTimeout
	byCancel
)

// runAttempt runs Fn in its own goroutine so that a panic, a hang past the
// timeout, or a context cancellation can be observed without taking down
// the worker. Abandoned attempts finish in the background; their results
// are discarded via the buffered channel.
func runAttempt(ctx context.Context, timeout time.Duration, j Job) (map[string]float64, interruption, error) {
	type attempt struct {
		metrics map[string]float64
		err     error
	}
	ch := make(chan attempt, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- attempt{err: fmt.Errorf("panic: %v\n%s", p, debug.Stack())}
			}
		}()
		m, err := j.Fn(ctx)
		ch <- attempt{metrics: m, err: err}
	}()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case a := <-ch:
		return a.metrics, notInterrupted, a.err
	case <-timer:
		return nil, byTimeout, nil
	case <-ctx.Done():
		return nil, byCancel, nil
	}
}
