package runner

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStatusBoardLifecycle walks a board through a small suite and checks
// every state transition the /runs endpoint exposes.
func TestStatusBoardLifecycle(t *testing.T) {
	b := NewStatusBoard()
	if s := b.Snapshot(); s.Running || s.TotalJobs != 0 {
		t.Fatalf("fresh board: %+v", s)
	}

	b.SuiteStarted([]string{"overhead", "tables"}, []int{3, 0})
	s := b.Snapshot()
	if !s.Running || s.TotalJobs != 3 {
		t.Fatalf("after start: %+v", s)
	}
	if s.Experiments[0].State != "pending" || s.Experiments[1].State != "running" {
		t.Fatalf("initial states: %+v", s.Experiments)
	}

	b.JobFinished(Result{JobID: "overhead/0", Experiment: "overhead", Status: StatusOK, Attempts: 1, Wall: 20 * time.Millisecond})
	b.JobFinished(Result{JobID: "overhead/1", Experiment: "overhead", Status: StatusFailed, Attempts: 2})
	s = b.Snapshot()
	if s.DoneJobs != 2 || s.FailedJobs != 1 {
		t.Fatalf("after jobs: %+v", s)
	}
	if e := s.Experiments[0]; e.State != "running" || e.DoneJobs != 2 || e.FailedJobs != 1 {
		t.Fatalf("overhead state: %+v", e)
	}
	if s.LastJob == nil || s.LastJob.ID != "overhead/1" || s.LastJob.Attempts != 2 {
		t.Fatalf("last job: %+v", s.LastJob)
	}

	b.ExperimentFinished("overhead", nil)
	b.ExperimentFinished("tables", errors.New("assembly failed"))
	b.SuiteFinished()
	s = b.Snapshot()
	if s.Running {
		t.Error("suite still running after SuiteFinished")
	}
	if s.Experiments[0].State != "ok" {
		t.Errorf("overhead final state %q", s.Experiments[0].State)
	}
	if e := s.Experiments[1]; e.State != "error" || e.Err != "assembly failed" {
		t.Errorf("tables final state: %+v", e)
	}
}

// TestStatusBoardUnregisteredExperiment: direct Run usage (no SuiteStarted)
// grows totals on the fly instead of reporting done > total.
func TestStatusBoardUnregisteredExperiment(t *testing.T) {
	b := NewStatusBoard()
	for i := 0; i < 3; i++ {
		b.JobFinished(Result{JobID: "adhoc/j", Experiment: "adhoc", Status: StatusOK})
	}
	s := b.Snapshot()
	if s.TotalJobs != 3 || s.DoneJobs != 3 {
		t.Fatalf("ad-hoc totals: %+v", s)
	}
	if e := s.Experiments[0]; e.TotalJobs != 3 || e.DoneJobs != 3 {
		t.Fatalf("ad-hoc experiment: %+v", e)
	}
}

// TestStatusBoardNil: every method must be a safe no-op on a nil board.
func TestStatusBoardNil(t *testing.T) {
	var b *StatusBoard
	b.SuiteStarted([]string{"x"}, []int{1})
	b.JobFinished(Result{JobID: "x/0", Experiment: "x"})
	b.ExperimentFinished("x", nil)
	b.SuiteFinished()
	if s := b.Snapshot(); s.Running || s.TotalJobs != 0 {
		t.Fatalf("nil board snapshot: %+v", s)
	}
}

// TestStatusBoardConcurrent: concurrent folds and snapshots stay coherent
// (run under -race).
func TestStatusBoardConcurrent(t *testing.T) {
	b := NewStatusBoard()
	b.SuiteStarted([]string{"p"}, []int{400})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.JobFinished(Result{JobID: "p/j", Experiment: "p", Status: StatusOK})
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = b.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := b.Snapshot(); s.DoneJobs != 400 || s.FailedJobs != 0 {
		t.Fatalf("final: %+v", s)
	}
}

// TestRunUpdatesStatusBoard: the runner itself must feed the board as jobs
// complete.
func TestRunUpdatesStatusBoard(t *testing.T) {
	board := NewStatusBoard()
	jobs := make([]Job, 4)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID: string(rune('a' + i)), Experiment: "exp",
			Fn: func(context.Context) (map[string]float64, error) {
				if i == 3 {
					return nil, errors.New("planned failure")
				}
				return map[string]float64{"v": 1}, nil
			},
		}
	}
	if _, err := Run(context.Background(), Config{Workers: 2, Status: board}, jobs); err != nil {
		t.Fatal(err)
	}
	s := board.Snapshot()
	if s.DoneJobs != 4 || s.FailedJobs != 1 {
		t.Fatalf("board after Run: %+v", s)
	}
}
