package runner

import (
	"bytes"
	"context"
	"testing"

	"github.com/quartz-emu/quartz/internal/experiments"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
)

// vtScale is a tiny scale covering the two experiment shapes that matter for
// profiler determinism: fig11's paired Conf_1/Conf_2 units (which share one
// job profiler and exercise trial parallelism) and traffic-sweep's
// phase-tagged serving scenarios.
func vtScale() experiments.Scale {
	return experiments.Scale{
		Sparse:      true,
		Trials:      1,
		Lines:       1 << 16,
		MemLatIters: 2_000,

		TrafficClients: []int{4, 8},
		TrafficPool:    2,
		TrafficOps:     6,
		TrafficWarmup:  2,
		TrafficPreload: 200,
		TrafficMixes:   []string{"read-mostly"},
		TrafficLatsNS:  []float64{300},
	}
}

// runVTSuite runs fig11 + traffic-sweep under one scheduling layout and
// returns the rendered tables plus the merged suite profile bytes (nil when
// no profiler was attached).
func runVTSuite(t *testing.T, workers, trialParallel int, profile bool) (string, []byte) {
	t.Helper()
	s := vtScale()
	s.TrialParallel = trialParallel
	var suite *vtprof.Suite
	if profile {
		suite = vtprof.NewSuite()
		s.Profiles = suite
	}
	runs, err := Suite(context.Background(), []string{"fig11", "traffic-sweep"}, s, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var tables bytes.Buffer
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		tables.WriteString(r.Table.Render())
	}
	if suite == nil {
		return tables.String(), nil
	}
	b, err := suite.PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	return tables.String(), b
}

// TestVTProfDeterministicAcrossLayouts: with the profiler attached, both the
// experiment tables and the merged suite profile must be byte-identical for
// every -parallel x -trial-parallel layout — job scheduling and the
// commutative fold may not leak into either artifact.
func TestVTProfDeterministicAcrossLayouts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two experiments under three layouts")
	}
	serialTables, serialProf := runVTSuite(t, 1, 1, true)
	parTables, parProf := runVTSuite(t, 4, 2, true)
	if serialTables != parTables {
		t.Errorf("tables differ across layouts:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialTables, parTables)
	}
	if !bytes.Equal(serialProf, parProf) {
		t.Errorf("suite profile bytes differ across layouts (%d vs %d bytes)",
			len(serialProf), len(parProf))
	}
	if len(serialProf) == 0 {
		t.Error("profiled suite produced no profile bytes")
	}

	// Detaching the profiler must not move a single virtual timestamp: the
	// tables are the same bytes with and without it.
	bareTables, _ := runVTSuite(t, 4, 2, false)
	if bareTables != serialTables {
		t.Errorf("tables differ with profiler detached:\n--- profiled ---\n%s\n--- bare ---\n%s",
			serialTables, bareTables)
	}
}

// TestVTSuiteJobKeys: the suite keys job profilers as "setID/jobName",
// matching the runner's job IDs, and every instrumented job of the suite
// accumulated nonzero virtual time.
func TestVTSuiteJobKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two experiments")
	}
	s := vtScale()
	suite := vtprof.NewSuite()
	s.Profiles = suite
	runs, err := Suite(context.Background(), []string{"traffic-sweep"}, s, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Err != nil {
		t.Fatal(runs[0].Err)
	}
	want := map[string]bool{}
	for _, jr := range runs[0].Jobs {
		want[jr.JobID] = true
	}
	jobs := suite.Jobs()
	if len(jobs) != len(want) {
		t.Errorf("suite has %d job profiles, runner ran %d jobs", len(jobs), len(want))
	}
	for _, name := range jobs {
		if !want[name] {
			t.Errorf("suite job key %q does not match any runner job ID", name)
		}
		if total := suite.JobProfile(name).TotalNS(); total <= 0 {
			t.Errorf("job %q profiled %d virtual ns, want > 0", name, total)
		}
	}
}
