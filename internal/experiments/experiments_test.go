package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny keeps structural tests fast; accuracy itself is covered by the bench
// and core test suites, and by the full-scale quartzbench runs recorded in
// EXPERIMENTS.md.
var tiny = Scale{
	Sparse:           true,
	Trials:           1,
	Lines:            1 << 17,
	MemLatIters:      4_000,
	MTSections:       40,
	MultiLatLines:    6_000,
	StreamLines:      1 << 14,
	KVOps:            200,
	KVPreload:        400,
	PRVertices:       500,
	PREdgesPerVertex: 4,
	PRIters:          3,
	TrafficClients:   []int{4, 8, 16},
	TrafficPool:      2,
	TrafficOps:       6,
	TrafficWarmup:    2,
	TrafficPreload:   200,
	TrafficMixes:     []string{"read-mostly", "scan-blend"},
	TrafficLatsNS:    []float64{300},

	TrafficMegaClients: []int{32, 128},
	TrafficMegaOps:     2,
	TrafficMegaWarmup:  1,

	AsymProfiles: []string{"optane-dcpmm", "pcm"},
	AsymLines:    1 << 12,
	AsymWriters:  []int{1, 2, 4, 8},
	AsymBWLines:  512,
}

func TestRegistryComplete(t *testing.T) {
	// Every artifact promised in DESIGN.md's experiment index must be
	// runnable.
	want := []string{
		"table1", "table2", "fig8", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "pagerank-validate", "overhead", "epoch-size",
		"model-ablation", "pcommit", "amortization", "graph500-validate", "ext-asym-bw",
		"traffic-sweep", "traffic-slo", "traffic-mega",
		"fig11-asym", "fig12-asym",
	}
	have := map[string]bool{}
	for _, id := range All() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", tiny); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := Jobs("fig99", tiny); err == nil {
		t.Error("unknown experiment accepted by Jobs")
	}
	if _, err := Describe("fig99"); err == nil {
		t.Error("unknown experiment accepted by Describe")
	}
	if Known("fig99") {
		t.Error("Known(fig99) = true")
	}
}

// TestJobsDecomposition checks the structural contract of every registered
// decomposition: matching set id, unique job names, an assembler, a
// description, and — for everything but the static table1 — at least one
// job so the runner has parallelism to exploit.
func TestJobsDecomposition(t *testing.T) {
	for _, id := range All() {
		if !Known(id) {
			t.Errorf("All lists %q but Known rejects it", id)
		}
		desc, err := Describe(id)
		if err != nil || desc == "" {
			t.Errorf("%s: missing description (%v)", id, err)
		}
		js, err := Jobs(id, tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if js.ID != id {
			t.Errorf("%s: job set id = %q", id, js.ID)
		}
		if js.Assemble == nil {
			t.Errorf("%s: no assembler", id)
		}
		if id != "table1" && len(js.Jobs) == 0 {
			t.Errorf("%s: no jobs", id)
		}
		seen := map[string]bool{}
		for _, j := range js.Jobs {
			if j.Name == "" || seen[j.Name] {
				t.Errorf("%s: duplicate or empty job name %q", id, j.Name)
			}
			seen[j.Name] = true
			if j.Run == nil {
				t.Errorf("%s/%s: nil Run", id, j.Name)
			}
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 11 { // 3 events Sandy + 4 Ivy + 4 Haswell
		t.Errorf("Table 1 has %d rows, want 11", len(tab.Rows))
	}
	rendered := tab.Render()
	for _, mnemonic := range []string{
		"CYCLE_ACTIVITY:STALLS_L2_PENDING",
		"MEM_LOAD_UOPS_MISC_RETIRED:LLC_MISS",
		"MEM_LOAD_UOPS_L3_MISS_RETIRED:REMOTE_DRAM",
	} {
		if !strings.Contains(rendered, mnemonic) {
			t.Errorf("Table 1 render missing %q", mnemonic)
		}
	}
}

func TestTable2ShapeAndOrdering(t *testing.T) {
	tab, err := Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 2 rows = %d, want 3 families", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		local, err1 := strconv.ParseFloat(row[2], 64)
		remote, err2 := strconv.ParseFloat(row[5], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if remote <= local {
			t.Errorf("%s: remote %.1f not above local %.1f", row[0], remote, local)
		}
	}
}

func TestFig8MonotoneThenSaturating(t *testing.T) {
	tab, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	var bws []float64
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		bws = append(bws, v)
	}
	for i := 1; i < len(bws); i++ {
		if bws[i] < bws[i-1]*0.95 {
			t.Errorf("bandwidth decreased at register step %d: %.2f -> %.2f", i, bws[i-1], bws[i])
		}
	}
	// Low registers are in the linear region: the second point roughly
	// doubles the first.
	if ratio := bws[1] / bws[0]; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("linear-region doubling ratio = %.2f, want ~2", ratio)
	}
	// Saturation: the last two points are close.
	n := len(bws)
	if diff := (bws[n-1] - bws[n-2]) / bws[n-2]; diff > 0.1 {
		t.Errorf("no saturation at the top of the register range (%.1f%% growth)", diff*100)
	}
}

func TestFig12TracksTargets(t *testing.T) {
	s := tiny
	tab, err := Fig12(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3*len(fig12Targets) {
		t.Fatalf("Fig 12 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		target, _ := strconv.ParseFloat(row[1], 64)
		measured, _ := strconv.ParseFloat(row[2], 64)
		if rel := (measured - target) / target; rel > 0.25 || rel < -0.25 {
			t.Errorf("%s target %.0f measured %.0f: way off even for tiny scale", row[0], target, measured)
		}
	}
}

// TestFig12AsymDivergence pins the asymmetric model's defining property:
// under the calibrated profiles, emulated read and store latencies diverge in
// the direction the device dictates — Optane stores floor at DRAM and stay
// well below its 305 ns reads (W/R < 1), while PCM's 680 ns stores dominate
// its 170 ns reads (W/R > 1) — and the measured store latency tracks the
// effective (DRAM-floored) target.
func TestFig12AsymDivergence(t *testing.T) {
	tab, err := Fig12Asym(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 2; len(tab.Rows) != want { // families x profiles
		t.Fatalf("fig12-asym rows = %d, want %d", len(tab.Rows), want)
	}
	for _, row := range tab.Rows {
		family, profile := row[0], row[1]
		wTgt, _ := strconv.ParseFloat(row[5], 64)
		wMeas, _ := strconv.ParseFloat(row[6], 64)
		ratio, _ := strconv.ParseFloat(row[8], 64)
		if rel := (wMeas - wTgt) / wTgt; rel > 0.1 || rel < -0.1 {
			t.Errorf("%s/%s: store latency %.1f vs target %.1f (>10%% off)", family, profile, wMeas, wTgt)
		}
		switch profile {
		case "optane-dcpmm":
			if ratio >= 1 {
				t.Errorf("%s/optane-dcpmm: W/R = %.2f, want < 1 (reads slower than stores)", family, ratio)
			}
		case "pcm":
			if ratio <= 1 {
				t.Errorf("%s/pcm: W/R = %.2f, want > 1 (stores slower than reads)", family, ratio)
			}
		}
	}
}

// TestFig11AsymCollapse pins the write-bandwidth-collapse shape: under the
// Optane profile the aggregate write throughput must rise from one writer to
// the curve's peak region and then fall back, while the flat-bandwidth PCM
// profile must never collapse below its single-writer throughput.
func TestFig11AsymCollapse(t *testing.T) {
	tab, err := Fig11Asym(tiny)
	if err != nil {
		t.Fatal(err)
	}
	agg := map[string][]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("unparseable row %v", row)
		}
		agg[row[0]] = append(agg[row[0]], v)
	}
	opt := agg["optane-dcpmm"]
	if len(opt) < 3 {
		t.Fatalf("optane-dcpmm has %d writer points", len(opt))
	}
	peak, last := opt[0], opt[len(opt)-1]
	for _, v := range opt {
		if v > peak {
			peak = v
		}
	}
	if peak <= opt[0]*1.2 {
		t.Errorf("optane-dcpmm: no rise to a peak (1 writer %.2f, peak %.2f)", opt[0], peak)
	}
	if last >= peak*0.98 {
		t.Errorf("optane-dcpmm: no collapse past the peak (peak %.2f, last %.2f)", peak, last)
	}
	for i, v := range agg["pcm"] {
		if v < agg["pcm"][0]*0.9 {
			t.Errorf("pcm: writer point %d collapsed (%.2f vs 1-writer %.2f)", i, v, agg["pcm"][0])
		}
	}
}

func TestOverheadTable(t *testing.T) {
	tab, err := Overhead(tiny)
	if err != nil {
		t.Fatal(err)
	}
	rendered := tab.Render()
	if !strings.Contains(rendered, "5500000000 cycles") {
		t.Errorf("overhead table missing init cycles: %s", rendered)
	}
	if !strings.Contains(rendered, "300000 cycles") {
		t.Errorf("overhead table missing registration cycles: %s", rendered)
	}
}

func TestPCommitAblationSpeedsUp(t *testing.T) {
	s := tiny
	s.KVOps = 60
	tab, err := PCommitAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		speedup, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		fields, _ := strconv.Atoi(row[0])
		if fields >= 4 && speedup < 1.5 {
			t.Errorf("%s fields: pcommit speedup %.2f, want >1.5", row[0], speedup)
		}
	}
}

func TestRenderAligned(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	out := tab.Render()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "note: n") {
		t.Errorf("render = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("render has %d lines, want 6", len(lines))
	}
}

// TestAllExperimentsRunAtTinyScale executes every registered experiment at
// tiny scale: each must produce at least one row and no error. Accuracy at
// realistic sizes is covered by the bench/core suites and the full-scale
// quartzbench runs in EXPERIMENTS.md.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the complete experiment registry")
	}
	for _, id := range All() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, tiny)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows produced")
			}
			if tab.ID != id {
				t.Errorf("table id = %q, want %q", tab.ID, id)
			}
			if out := tab.Render(); len(out) == 0 {
				t.Error("empty render")
			}
		})
	}
}
