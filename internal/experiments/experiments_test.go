package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny keeps structural tests fast; accuracy itself is covered by the bench
// and core test suites, and by the full-scale quartzbench runs recorded in
// EXPERIMENTS.md.
var tiny = Scale{
	Sparse:           true,
	Trials:           1,
	Lines:            1 << 17,
	MemLatIters:      4_000,
	MTSections:       40,
	MultiLatLines:    6_000,
	StreamLines:      1 << 14,
	KVOps:            200,
	KVPreload:        400,
	PRVertices:       500,
	PREdgesPerVertex: 4,
	PRIters:          3,
	TrafficClients:   []int{4, 8, 16},
	TrafficPool:      2,
	TrafficOps:       6,
	TrafficWarmup:    2,
	TrafficPreload:   200,
	TrafficMixes:     []string{"read-mostly", "scan-blend"},
	TrafficLatsNS:    []float64{300},

	TrafficMegaClients: []int{32, 128},
	TrafficMegaOps:     2,
	TrafficMegaWarmup:  1,
}

func TestRegistryComplete(t *testing.T) {
	// Every artifact promised in DESIGN.md's experiment index must be
	// runnable.
	want := []string{
		"table1", "table2", "fig8", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "pagerank-validate", "overhead", "epoch-size",
		"model-ablation", "pcommit", "amortization", "graph500-validate", "ext-asym-bw",
		"traffic-sweep", "traffic-slo", "traffic-mega",
	}
	have := map[string]bool{}
	for _, id := range All() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", tiny); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := Jobs("fig99", tiny); err == nil {
		t.Error("unknown experiment accepted by Jobs")
	}
	if _, err := Describe("fig99"); err == nil {
		t.Error("unknown experiment accepted by Describe")
	}
	if Known("fig99") {
		t.Error("Known(fig99) = true")
	}
}

// TestJobsDecomposition checks the structural contract of every registered
// decomposition: matching set id, unique job names, an assembler, a
// description, and — for everything but the static table1 — at least one
// job so the runner has parallelism to exploit.
func TestJobsDecomposition(t *testing.T) {
	for _, id := range All() {
		if !Known(id) {
			t.Errorf("All lists %q but Known rejects it", id)
		}
		desc, err := Describe(id)
		if err != nil || desc == "" {
			t.Errorf("%s: missing description (%v)", id, err)
		}
		js, err := Jobs(id, tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if js.ID != id {
			t.Errorf("%s: job set id = %q", id, js.ID)
		}
		if js.Assemble == nil {
			t.Errorf("%s: no assembler", id)
		}
		if id != "table1" && len(js.Jobs) == 0 {
			t.Errorf("%s: no jobs", id)
		}
		seen := map[string]bool{}
		for _, j := range js.Jobs {
			if j.Name == "" || seen[j.Name] {
				t.Errorf("%s: duplicate or empty job name %q", id, j.Name)
			}
			seen[j.Name] = true
			if j.Run == nil {
				t.Errorf("%s/%s: nil Run", id, j.Name)
			}
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 11 { // 3 events Sandy + 4 Ivy + 4 Haswell
		t.Errorf("Table 1 has %d rows, want 11", len(tab.Rows))
	}
	rendered := tab.Render()
	for _, mnemonic := range []string{
		"CYCLE_ACTIVITY:STALLS_L2_PENDING",
		"MEM_LOAD_UOPS_MISC_RETIRED:LLC_MISS",
		"MEM_LOAD_UOPS_L3_MISS_RETIRED:REMOTE_DRAM",
	} {
		if !strings.Contains(rendered, mnemonic) {
			t.Errorf("Table 1 render missing %q", mnemonic)
		}
	}
}

func TestTable2ShapeAndOrdering(t *testing.T) {
	tab, err := Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 2 rows = %d, want 3 families", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		local, err1 := strconv.ParseFloat(row[2], 64)
		remote, err2 := strconv.ParseFloat(row[5], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if remote <= local {
			t.Errorf("%s: remote %.1f not above local %.1f", row[0], remote, local)
		}
	}
}

func TestFig8MonotoneThenSaturating(t *testing.T) {
	tab, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	var bws []float64
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		bws = append(bws, v)
	}
	for i := 1; i < len(bws); i++ {
		if bws[i] < bws[i-1]*0.95 {
			t.Errorf("bandwidth decreased at register step %d: %.2f -> %.2f", i, bws[i-1], bws[i])
		}
	}
	// Low registers are in the linear region: the second point roughly
	// doubles the first.
	if ratio := bws[1] / bws[0]; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("linear-region doubling ratio = %.2f, want ~2", ratio)
	}
	// Saturation: the last two points are close.
	n := len(bws)
	if diff := (bws[n-1] - bws[n-2]) / bws[n-2]; diff > 0.1 {
		t.Errorf("no saturation at the top of the register range (%.1f%% growth)", diff*100)
	}
}

func TestFig12TracksTargets(t *testing.T) {
	s := tiny
	tab, err := Fig12(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3*len(fig12Targets) {
		t.Fatalf("Fig 12 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		target, _ := strconv.ParseFloat(row[1], 64)
		measured, _ := strconv.ParseFloat(row[2], 64)
		if rel := (measured - target) / target; rel > 0.25 || rel < -0.25 {
			t.Errorf("%s target %.0f measured %.0f: way off even for tiny scale", row[0], target, measured)
		}
	}
}

func TestOverheadTable(t *testing.T) {
	tab, err := Overhead(tiny)
	if err != nil {
		t.Fatal(err)
	}
	rendered := tab.Render()
	if !strings.Contains(rendered, "5500000000 cycles") {
		t.Errorf("overhead table missing init cycles: %s", rendered)
	}
	if !strings.Contains(rendered, "300000 cycles") {
		t.Errorf("overhead table missing registration cycles: %s", rendered)
	}
}

func TestPCommitAblationSpeedsUp(t *testing.T) {
	s := tiny
	s.KVOps = 60
	tab, err := PCommitAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		speedup, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		fields, _ := strconv.Atoi(row[0])
		if fields >= 4 && speedup < 1.5 {
			t.Errorf("%s fields: pcommit speedup %.2f, want >1.5", row[0], speedup)
		}
	}
}

func TestRenderAligned(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	out := tab.Render()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "note: n") {
		t.Errorf("render = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("render has %d lines, want 6", len(lines))
	}
}

// TestAllExperimentsRunAtTinyScale executes every registered experiment at
// tiny scale: each must produce at least one row and no error. Accuracy at
// realistic sizes is covered by the bench/core suites and the full-scale
// quartzbench runs in EXPERIMENTS.md.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the complete experiment registry")
	}
	for _, id := range All() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, tiny)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows produced")
			}
			if tab.ID != id {
				t.Errorf("table id = %q, want %q", tab.ID, id)
			}
			if out := tab.Render(); len(out) == 0 {
				t.Error("empty render")
			}
		})
	}
}
