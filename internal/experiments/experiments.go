// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated substrate: each function runs the
// corresponding workload sweep and returns a text table with the same rows
// or series the paper reports. cmd/quartzbench renders them; the root-level
// benchmarks wrap them for `go test -bench`.
package experiments

import (
	"fmt"
	"strings"

	"github.com/quartz-emu/quartz/internal/obs/vtprof"
)

// Scale sizes the sweeps. Quick keeps every experiment in seconds for tests
// and CI; Full is the EXPERIMENTS.md configuration.
type Scale struct {
	// Trials is the number of repetitions per data point (the paper uses
	// 20 for microbenchmarks, 10 for applications).
	Trials int
	// Lines sizes pointer-chase working sets (cache lines).
	Lines int
	// MemLatIters is the chase length per trial.
	MemLatIters int
	// MTSections is the per-thread critical-section count of the
	// Multi-Threaded benchmark.
	MTSections int
	// MultiLatLines sizes each MultiLat array (scaled from the paper's
	// 10M/20M elements).
	MultiLatLines int
	// StreamLines sizes the STREAM arrays.
	StreamLines int
	// KVOps is the per-thread operation count of the key-value workload.
	KVOps int
	// KVPreload is the key count preloaded into the store.
	KVPreload int
	// PRVertices / PREdgesPerVertex size the PageRank graph.
	PRVertices, PREdgesPerVertex int
	// PRIters bounds PageRank iterations.
	PRIters int
	// TrafficClients is the client-count sweep of the traffic experiments.
	TrafficClients []int
	// TrafficPool is the serving pool size (simos threads) per scenario.
	TrafficPool int
	// TrafficOps / TrafficWarmup are the per-client measured and warmup op
	// counts.
	TrafficOps, TrafficWarmup int
	// TrafficPreload is the key count preloaded into the traffic store (also
	// the zipfian key-space size).
	TrafficPreload int
	// TrafficMixes selects the workload.Presets mixes swept.
	TrafficMixes []string
	// TrafficLatsNS is the emulated NVM latency sweep of the traffic
	// experiments.
	TrafficLatsNS []float64
	// TrafficMegaClients is the client-count axis of traffic-mega, the
	// scheduler-scale sweep. It extends far past TrafficClients (Full tops out
	// at 2^20 clients), so per-client op counts come from the Mega fields
	// below rather than TrafficOps/TrafficWarmup.
	TrafficMegaClients []int
	// TrafficMegaOps / TrafficMegaWarmup are traffic-mega's per-client
	// measured and warmup op counts (small: total ops scale with the client
	// count).
	TrafficMegaOps, TrafficMegaWarmup int
	// AsymProfiles selects the machine.NVMProfile names swept by the
	// asymmetric-model experiments (fig11-asym / fig12-asym); quartzbench
	// narrows it via -nvm-profile.
	AsymProfiles []string
	// AsymWriteLatNS, when positive, overrides every swept profile's NVM
	// write latency (quartzbench -write-latency).
	AsymWriteLatNS float64
	// AsymLines sizes the fig12-asym streaming-store buffer (cache lines;
	// the buffer is cold, so each line is store-missed exactly once).
	AsymLines int
	// AsymWriters is the writer-thread-count axis of the fig11-asym
	// write-bandwidth sweep.
	AsymWriters []int
	// AsymBWLines is the per-writer store+flush line count of fig11-asym.
	AsymBWLines int
	// Sparse trims sweep grids (fewer latency points / patterns) for
	// quick runs; Full uses the paper's complete grids.
	Sparse bool
	// Profiles, when non-nil, attaches a virtual-time profiler per job
	// (keyed "setID/jobName"): the instrumented experiments pass it into
	// their environments so every simulated nanosecond is attributed by
	// (thread, phase stack, category). quartzbench exposes it as -vtprof.
	// Nil (the default) keeps every simulation byte-identical to an
	// unprofiled run. Trial-parallel units of one job share its profiler;
	// the fold is commutative, so profiles are identical for any
	// -parallel x -trial-parallel layout.
	Profiles *vtprof.Suite
	// TrialParallel bounds the goroutines one job may use to run its
	// independent units — repeated trials, or the paired/variant simulations
	// of one sweep point (Conf_1 vs Conf_2, model variants) — concurrently.
	// Each unit builds its own machine and seeds its own simulation, and
	// results land in position-indexed slots, so tables are byte-identical
	// for any value. 0 or 1 runs units serially (the default); quartzbench
	// exposes it as -trial-parallel. It composes multiplicatively with the
	// runner's -parallel worker count — see doc/parallelism.md.
	TrialParallel int
}

// Quick is the test/CI scale.
var Quick = Scale{
	Sparse:           true,
	Trials:           2,
	Lines:            1 << 19,
	MemLatIters:      25_000,
	MTSections:       200,
	MultiLatLines:    30_000,
	StreamLines:      1 << 16,
	KVOps:            2_500,
	KVPreload:        8_000,
	PRVertices:       20_000,
	PREdgesPerVertex: 6,
	PRIters:          6,
	TrafficClients:   []int{16, 64, 256},
	TrafficPool:      4,
	TrafficOps:       30,
	TrafficWarmup:    8,
	TrafficPreload:   32_000,
	TrafficMixes:     []string{"read-mostly", "write-heavy", "scan-blend"},
	TrafficLatsNS:    []float64{200, 1000},

	TrafficMegaClients: []int{4_096, 16_384},
	TrafficMegaOps:     3,
	TrafficMegaWarmup:  1,

	AsymProfiles: []string{"optane-dcpmm", "pcm"},
	AsymLines:    1 << 15,
	// Capped at 8 writers: with the main thread that is 9 of Ivy Bridge's 10
	// cores, so the sweep measures the throttle curve, not core timesharing.
	AsymWriters: []int{1, 2, 4, 8},
	AsymBWLines: 2_048,
}

// Full is the EXPERIMENTS.md scale.
var Full = Scale{
	Trials:           5,
	Lines:            1 << 20,
	MemLatIters:      120_000,
	MTSections:       1_000,
	MultiLatLines:    120_000,
	StreamLines:      1 << 17,
	KVOps:            4_000,
	KVPreload:        8_000,
	PRVertices:       50_000,
	PREdgesPerVertex: 8,
	PRIters:          10,
	TrafficClients:   []int{256, 1_024, 4_096, 16_384, 32_768},
	TrafficPool:      16,
	TrafficOps:       50,
	TrafficWarmup:    10,
	TrafficPreload:   100_000,
	TrafficMixes:     []string{"read-mostly", "write-heavy", "scan-blend"},
	TrafficLatsNS:    []float64{200, 600, 2_000},

	TrafficMegaClients: []int{65_536, 262_144, 1_048_576},
	TrafficMegaOps:     4,
	TrafficMegaWarmup:  1,

	AsymProfiles: []string{"optane-dcpmm", "pcm"},
	AsymLines:    1 << 17,
	AsymWriters:  []int{1, 2, 3, 4, 6, 8},
	AsymBWLines:  8_192,
}

// Metrics is the flat numeric result of one job, keyed by metric name
// (latencies in nanoseconds, bandwidths in bytes/s, errors as fractions).
type Metrics map[string]float64

// Job is one independent, deterministic unit of an experiment: a single
// sweep point (one latency target, one chain count, one trial group, ...).
// Jobs of the same experiment share no state, seed their simulations
// explicitly, and may therefore run in any order or concurrently.
type Job struct {
	// Name identifies the sweep point within the experiment, e.g.
	// "Ivy Bridge/target=500".
	Name string
	// Params describes the sweep point for structured result sinks.
	Params map[string]string
	// Run computes the point.
	Run func() (Metrics, error)
}

// JobSet is one experiment decomposed into independent jobs plus the
// assembler that merges their results into the final table. Assemble is pure
// aggregation and formatting over the per-job metrics (indexed exactly as
// Jobs), so the table is byte-identical however the jobs were scheduled. A
// set may have zero jobs when the artifact is static (table1).
type JobSet struct {
	ID       string
	Jobs     []Job
	Assemble func(points []Metrics) (Table, error)
}

// runSerial executes the set's jobs in order in the calling goroutine — the
// parallelism-1 special case of internal/runner.
func (js JobSet) runSerial() (Table, error) {
	points := make([]Metrics, len(js.Jobs))
	for i, j := range js.Jobs {
		m, err := j.Run()
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", j.Name, err)
		}
		points[i] = m
	}
	return js.Assemble(points)
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // e.g. "fig11"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// cell formats helpers.
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
