package experiments

import (
	"fmt"
	"strconv"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/stats"
)

// fig11Chains are the MemLat parallelism degrees of Figure 11.
var fig11Chains = []int{1, 2, 3, 4, 5, 8}

// fig11Jobs decomposes Figure 11 into one job per (family, chain count):
// each runs the paired Conf_2 (physically remote) and Conf_1 (emulated)
// trials and reports the mean completion times.
func fig11Jobs(s Scale) JobSet {
	js := JobSet{ID: "fig11"}
	prs := presetRows()
	for _, pr := range prs {
		for _, chains := range fig11Chains {
			js.Jobs = append(js.Jobs, Job{
				Name:   fmt.Sprintf("%s/chains=%d", pr.label, chains),
				Params: map[string]string{"family": pr.label, "chains": strconv.Itoa(chains)},
				Run: func() (Metrics, error) {
					prof := s.profiler(js.ID, fmt.Sprintf("%s/chains=%d", pr.label, chains))
					// Each trial's Conf_2 and Conf_1 runs are independent
					// simulations, so they form 2*Trials parallel units:
					// unit u is trial u/2, physical on even u, emulated on
					// odd. Results land positionally, keeping the mean's
					// summation order fixed.
					phys := make([]sim.Time, s.Trials)
					emu := make([]sim.Time, s.Trials)
					err := runUnits(s, 2*s.Trials, func(u int) error {
						trial := u / 2
						mlCfg := bench.MemLatConfig{
							Lines: s.Lines / 2, Chains: chains, Iters: s.MemLatIters,
							Seed: int64(trial*31 + chains),
						}
						if u%2 == 0 {
							p, err := runMemLat(bench.EnvConfig{
								Preset: pr.preset, Mode: bench.PhysicalRemote,
								Profiler: prof,
							}, mlCfg)
							if err != nil {
								return trialErr("fig11 physical", trial, err)
							}
							phys[trial] = p.CT
							return nil
						}
						e, err := runMemLat(bench.EnvConfig{
							Preset: pr.preset, Mode: bench.Emulated,
							Quartz:   quartzConfig(bench.RemoteLatNS(pr.preset)),
							Profiler: prof,
						}, mlCfg)
						if err != nil {
							return trialErr("fig11 emulated", trial, err)
						}
						emu[trial] = e.CT
						return nil
					})
					if err != nil {
						return nil, err
					}
					return Metrics{
						"phys_ct_ns": stats.Summarize(nanos(phys)).Mean,
						"emu_ct_ns":  stats.Summarize(nanos(emu)).Mean,
					}, nil
				},
			})
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "fig11",
			Title:  "MemLat emulation error vs memory-level parallelism (Fig. 11)",
			Header: []string{"Family", "Chains", "Conf_2 CT ms", "Conf_1 CT ms", "Error"},
		}
		i := 0
		for _, pr := range prs {
			for _, chains := range fig11Chains {
				pm, em := points[i]["phys_ct_ns"], points[i]["emu_ct_ns"]
				i++
				t.Rows = append(t.Rows, []string{
					pr.label, strconv.Itoa(chains),
					f2(pm / 1e6), f2(em / 1e6), pct(stats.RelErr(em, pm)),
				})
			}
		}
		t.Notes = append(t.Notes, "paper: 0.2%-4% across chains and families")
		return t, nil
	}
	return js
}

// Fig11 reproduces Figure 11: the MemLat emulation error versus the number
// of concurrent pointer chains, per processor family. Conf_1 (Quartz
// emulating the remote-DRAM latency on local memory) is compared against
// Conf_2 (physically remote memory, no emulation).
func Fig11(s Scale) (Table, error) { return fig11Jobs(s).runSerial() }

// fig12Targets are the emulated NVM latencies of Figure 12.
var fig12Targets = []float64{200, 300, 400, 500, 600, 700, 800, 900, 1000}

// fig12Jobs decomposes Figure 12 into one job per (family, target latency):
// each runs the MemLat trials at that emulated latency and reports the
// per-iteration latency summary.
func fig12Jobs(s Scale) JobSet {
	js := JobSet{ID: "fig12"}
	prs := presetRows()
	for _, pr := range prs {
		for _, target := range fig12Targets {
			js.Jobs = append(js.Jobs, Job{
				Name:   fmt.Sprintf("%s/target=%.0f", pr.label, target),
				Params: map[string]string{"family": pr.label, "target_ns": fmt.Sprintf("%.0f", target)},
				Run: func() (Metrics, error) {
					prof := s.profiler(js.ID, fmt.Sprintf("%s/target=%.0f", pr.label, target))
					lats := make([]sim.Time, s.Trials)
					err := runUnits(s, s.Trials, func(trial int) error {
						res, err := runMemLat(bench.EnvConfig{
							Preset: pr.preset, Mode: bench.Emulated,
							Quartz:   quartzConfig(target),
							Profiler: prof,
						}, bench.MemLatConfig{
							Lines: s.Lines, Chains: 1, Iters: s.MemLatIters,
							Seed: int64(trial*13 + int(target)),
						})
						if err != nil {
							return trialErr("fig12", trial, err)
						}
						lats[trial] = res.PerIteration
						return nil
					})
					if err != nil {
						return nil, err
					}
					sum := stats.Summarize(nanos(lats))
					return Metrics{"mean_ns": sum.Mean, "min_ns": sum.Min, "max_ns": sum.Max}, nil
				},
			})
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "fig12",
			Title:  "MemLat-reported latency vs emulated NVM latency (Fig. 12)",
			Header: []string{"Family", "Target ns", "Measured ns", "Min", "Max", "Error"},
		}
		i := 0
		for _, pr := range prs {
			for _, target := range fig12Targets {
				sum := points[i]
				i++
				t.Rows = append(t.Rows, []string{
					pr.label, f1(target), f1(sum["mean_ns"]), f1(sum["min_ns"]), f1(sum["max_ns"]),
					pct(stats.RelErr(sum["mean_ns"], target)),
				})
			}
		}
		t.Notes = append(t.Notes, "paper error bands: <9% Sandy Bridge, <2% Ivy Bridge, <6% Haswell")
		return t, nil
	}
	return js
}

// Fig12 reproduces Figure 12: MemLat-reported latency versus the target
// emulated NVM latency, per family, with the resulting emulation error.
func Fig12(s Scale) (Table, error) { return fig12Jobs(s).runSerial() }

// fig13MinEpochs are the minimum-epoch settings of Figure 13 (the 10 ms
// entry disables sync-epoch delay propagation since min == max).
var fig13MinEpochs = []sim.Time{
	10 * sim.Microsecond,
	100 * sim.Microsecond,
	1 * sim.Millisecond,
	10 * sim.Millisecond,
}

// fig13Variants are the two Multi-Threaded benchmark variants of Figure 13.
var fig13Variants = []struct {
	name   string
	outDur int
}{
	{"cs only", 0},
	{"with compute", 100},
}

// fig13Threads are the thread counts of Figure 13.
var fig13Threads = []int{2, 4, 8}

// fig13Jobs decomposes Figure 13 into one job per (family, variant, thread
// count, epoch setting) cell, where setting 0 is the no-emulation
// (physically remote) reference and settings 1..4 the four minimum epochs.
// Each job runs the Multi-Threaded trials and reports the mean completion
// time.
func fig13Jobs(s Scale) JobSet {
	js := JobSet{ID: "fig13"}
	families := presetRows()[:2] // Sandy Bridge, Ivy Bridge (as in the paper)
	type setting struct {
		name     string
		emulated bool
		minEpoch sim.Time
	}
	settings := []setting{{name: "actual"}}
	for _, me := range fig13MinEpochs {
		settings = append(settings, setting{name: "min=" + me.String(), emulated: true, minEpoch: me})
	}
	for _, pr := range families {
		for _, variant := range fig13Variants {
			for _, threads := range fig13Threads {
				for _, st := range settings {
					mtCfg := bench.MTConfig{
						Threads: threads, Sections: s.MTSections, CSDur: 100,
						OutDur: variant.outDur, Lines: s.Lines / 4, Seed: 77,
					}
					mode, q := bench.PhysicalRemote, core.Config{}
					if st.emulated {
						mode = bench.Emulated
						q = quartzConfig(bench.RemoteLatNS(pr.preset))
						q.MinEpoch = st.minEpoch
						q.MaxEpoch = 10 * sim.Millisecond
					}
					js.Jobs = append(js.Jobs, Job{
						Name: fmt.Sprintf("%s/%s/threads=%d/%s", pr.label, variant.name, threads, st.name),
						Params: map[string]string{
							"family": pr.label, "variant": variant.name,
							"threads": strconv.Itoa(threads), "setting": st.name,
						},
						Run: func() (Metrics, error) {
							prof := s.profiler(js.ID,
								fmt.Sprintf("%s/%s/threads=%d/%s", pr.label, variant.name, threads, st.name))
							cts := make([]sim.Time, s.Trials)
							err := runUnits(s, s.Trials, func(trial int) error {
								env, err := bench.NewEnv(bench.EnvConfig{
									Preset: pr.preset, Mode: mode, Quartz: q,
									Lookahead: 2 * sim.Microsecond,
									Profiler:  prof,
								})
								if err != nil {
									return trialErr("fig13", trial, err)
								}
								cfg := mtCfg
								cfg.Node = env.AllocNode()
								cfg.Seed += int64(trial)
								var res bench.MTResult
								if err := env.Run(func(e *bench.Env, th *simosThread) {
									var rerr error
									res, rerr = bench.RunMultiThreaded(e, th, cfg)
									if rerr != nil {
										th.Failf("%v", rerr)
									}
								}); err != nil {
									return trialErr("fig13", trial, err)
								}
								cts[trial] = res.CT
								return nil
							})
							if err != nil {
								return nil, err
							}
							return Metrics{"ct_ns": stats.Summarize(nanos(cts)).Mean}, nil
						},
					})
				}
			}
		}
	}
	perRow := len(settings)
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:    "fig13",
			Title: "Multi-Threaded benchmark: delay propagation via minimum epochs (Fig. 13)",
			Header: []string{"Family", "Variant", "Threads", "Actual ms",
				"min=10us", "min=0.1ms", "min=1ms", "min=10ms(no-prop)"},
		}
		i := 0
		for _, pr := range families {
			for _, variant := range fig13Variants {
				for _, threads := range fig13Threads {
					actual := sim.FromNanos(points[i]["ct_ns"])
					row := []string{pr.label, variant.name, strconv.Itoa(threads), f2(actual.Milliseconds())}
					for k := 1; k < perRow; k++ {
						ct := sim.FromNanos(points[i+k]["ct_ns"])
						row = append(row, fmt.Sprintf("%.2f (%+.1f%%)",
							ct.Milliseconds(), stats.SignedErr(float64(ct), float64(actual))*100))
					}
					i += perRow
					t.Rows = append(t.Rows, row)
				}
			}
		}
		t.Notes = append(t.Notes,
			"paper: min epochs <=1ms track the actual run (<3% error); min=max=10ms (no propagation) diverges with threads (up to 34%)")
		return t, nil
	}
	return js
}

// Fig13 reproduces Figure 13: Multi-Threaded benchmark completion time for
// 2, 4 and 8 threads under four minimum-epoch settings versus the
// no-emulation (physically remote) execution, in both the "cs only" and
// "with compute" variants, on Sandy Bridge and Ivy Bridge.
func Fig13(s Scale) (Table, error) { return fig13Jobs(s).runSerial() }
