package experiments

import (
	"fmt"
	"strconv"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/stats"
)

// fig11Chains are the MemLat parallelism degrees of Figure 11.
var fig11Chains = []int{1, 2, 3, 4, 5, 8}

// Fig11 reproduces Figure 11: the MemLat emulation error versus the number
// of concurrent pointer chains, per processor family. Conf_1 (Quartz
// emulating the remote-DRAM latency on local memory) is compared against
// Conf_2 (physically remote memory, no emulation).
func Fig11(s Scale) (Table, error) {
	t := Table{
		ID:     "fig11",
		Title:  "MemLat emulation error vs memory-level parallelism (Fig. 11)",
		Header: []string{"Family", "Chains", "Conf_2 CT ms", "Conf_1 CT ms", "Error"},
	}
	for _, pr := range presetRows() {
		for _, chains := range fig11Chains {
			var phys, emu []sim.Time
			for trial := 0; trial < s.Trials; trial++ {
				mlCfg := bench.MemLatConfig{
					Lines: s.Lines / 2, Chains: chains, Iters: s.MemLatIters,
					Seed: int64(trial*31 + chains),
				}
				p, err := runMemLat(bench.EnvConfig{Preset: pr.preset, Mode: bench.PhysicalRemote}, mlCfg)
				if err != nil {
					return Table{}, trialErr("fig11 physical", trial, err)
				}
				e, err := runMemLat(bench.EnvConfig{
					Preset: pr.preset, Mode: bench.Emulated,
					Quartz: quartzConfig(bench.RemoteLatNS(pr.preset)),
				}, mlCfg)
				if err != nil {
					return Table{}, trialErr("fig11 emulated", trial, err)
				}
				phys = append(phys, p.CT)
				emu = append(emu, e.CT)
			}
			pm := stats.Summarize(nanos(phys)).Mean
			em := stats.Summarize(nanos(emu)).Mean
			t.Rows = append(t.Rows, []string{
				pr.label, strconv.Itoa(chains),
				f2(pm / 1e6), f2(em / 1e6), pct(stats.RelErr(em, pm)),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: 0.2%-4% across chains and families")
	return t, nil
}

// fig12Targets are the emulated NVM latencies of Figure 12.
var fig12Targets = []float64{200, 300, 400, 500, 600, 700, 800, 900, 1000}

// Fig12 reproduces Figure 12: MemLat-reported latency versus the target
// emulated NVM latency, per family, with the resulting emulation error.
func Fig12(s Scale) (Table, error) {
	t := Table{
		ID:     "fig12",
		Title:  "MemLat-reported latency vs emulated NVM latency (Fig. 12)",
		Header: []string{"Family", "Target ns", "Measured ns", "Min", "Max", "Error"},
	}
	for _, pr := range presetRows() {
		for _, target := range fig12Targets {
			var lats []sim.Time
			for trial := 0; trial < s.Trials; trial++ {
				res, err := runMemLat(bench.EnvConfig{
					Preset: pr.preset, Mode: bench.Emulated,
					Quartz: quartzConfig(target),
				}, bench.MemLatConfig{
					Lines: s.Lines, Chains: 1, Iters: s.MemLatIters,
					Seed: int64(trial*13 + int(target)),
				})
				if err != nil {
					return Table{}, trialErr("fig12", trial, err)
				}
				lats = append(lats, res.PerIteration)
			}
			sum := stats.Summarize(nanos(lats))
			t.Rows = append(t.Rows, []string{
				pr.label, f1(target), f1(sum.Mean), f1(sum.Min), f1(sum.Max),
				pct(stats.RelErr(sum.Mean, target)),
			})
		}
	}
	t.Notes = append(t.Notes, "paper error bands: <9% Sandy Bridge, <2% Ivy Bridge, <6% Haswell")
	return t, nil
}

// fig13MinEpochs are the minimum-epoch settings of Figure 13 (the 10 ms
// entry disables sync-epoch delay propagation since min == max).
var fig13MinEpochs = []sim.Time{
	10 * sim.Microsecond,
	100 * sim.Microsecond,
	1 * sim.Millisecond,
	10 * sim.Millisecond,
}

// Fig13 reproduces Figure 13: Multi-Threaded benchmark completion time for
// 2, 4 and 8 threads under four minimum-epoch settings versus the
// no-emulation (physically remote) execution, in both the "cs only" and
// "with compute" variants, on Sandy Bridge and Ivy Bridge.
func Fig13(s Scale) (Table, error) {
	t := Table{
		ID:    "fig13",
		Title: "Multi-Threaded benchmark: delay propagation via minimum epochs (Fig. 13)",
		Header: []string{"Family", "Variant", "Threads", "Actual ms",
			"min=10us", "min=0.1ms", "min=1ms", "min=10ms(no-prop)"},
	}
	variants := []struct {
		name   string
		outDur int
	}{
		{"cs only", 0},
		{"with compute", 100},
	}
	families := presetRows()[:2] // Sandy Bridge, Ivy Bridge (as in the paper)
	for _, pr := range families {
		for _, variant := range variants {
			for _, threads := range []int{2, 4, 8} {
				mtCfg := bench.MTConfig{
					Threads: threads, Sections: s.MTSections, CSDur: 100,
					OutDur: variant.outDur, Lines: s.Lines / 4, Seed: 77,
				}
				runOne := func(mode bench.Mode, q core.Config) (sim.Time, error) {
					var cts []sim.Time
					for trial := 0; trial < s.Trials; trial++ {
						env, err := bench.NewEnv(bench.EnvConfig{
							Preset: pr.preset, Mode: mode, Quartz: q,
							Lookahead: 2 * sim.Microsecond,
						})
						if err != nil {
							return 0, err
						}
						cfg := mtCfg
						cfg.Node = env.AllocNode()
						cfg.Seed += int64(trial)
						var res bench.MTResult
						if err := env.Run(func(e *bench.Env, th *simosThread) {
							var rerr error
							res, rerr = bench.RunMultiThreaded(e, th, cfg)
							if rerr != nil {
								th.Failf("%v", rerr)
							}
						}); err != nil {
							return 0, err
						}
						cts = append(cts, res.CT)
					}
					return sim.FromNanos(stats.Summarize(nanos(cts)).Mean), nil
				}

				actual, err := runOne(bench.PhysicalRemote, core.Config{})
				if err != nil {
					return Table{}, fmt.Errorf("fig13 physical: %w", err)
				}
				row := []string{pr.label, variant.name, strconv.Itoa(threads), f2(actual.Milliseconds())}
				for _, minEpoch := range fig13MinEpochs {
					q := quartzConfig(bench.RemoteLatNS(pr.preset))
					q.MinEpoch = minEpoch
					q.MaxEpoch = 10 * sim.Millisecond
					ct, err := runOne(bench.Emulated, q)
					if err != nil {
						return Table{}, fmt.Errorf("fig13 emulated: %w", err)
					}
					row = append(row, fmt.Sprintf("%.2f (%+.1f%%)",
						ct.Milliseconds(), stats.SignedErr(float64(ct), float64(actual))*100))
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: min epochs <=1ms track the actual run (<3% error); min=max=10ms (no propagation) diverges with threads (up to 34%)")
	return t, nil
}
