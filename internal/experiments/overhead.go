package experiments

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/stats"
)

// Overhead reproduces the §3.2 overhead numbers: initialization and
// per-thread registration costs, epoch processing cost under rdpmc versus
// PAPI-style counter access, and the end-to-end emulator overhead measured
// with switched-off delay injection.
func Overhead(s Scale) (Table, error) {
	t := Table{
		ID:     "overhead",
		Title:  "Emulator overhead accounting (§3.2)",
		Header: []string{"Quantity", "Measured", "Paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"library initialization", fmt.Sprintf("%d cycles", core.DefaultInitCycles), "~5.5e9 cycles (2.5s at 2.2GHz)"},
		[]string{"thread registration", fmt.Sprintf("%d cycles", core.DefaultRegisterCycles), "~300,000 cycles"},
		[]string{"epoch cost (rdpmc, 4 ctrs)", fmt.Sprintf("%d cycles", perf.ReadCostCycles(perf.RDPMC, 4)+core.DefaultEpochLogicCycles), "~4,000 cycles"},
		[]string{"epoch cost (PAPI, 4 ctrs)", fmt.Sprintf("%d cycles", perf.ReadCostCycles(perf.PAPI, 4)+core.DefaultEpochLogicCycles), "~30,000 cycles"},
	)

	// Switched-off-injection overhead: MemLat CT with epoch machinery but
	// no delays versus a native run.
	measure := func(mode bench.Mode, q core.Config) (sim.Time, error) {
		var cts []sim.Time
		for trial := 0; trial < s.Trials; trial++ {
			res, err := runMemLat(bench.EnvConfig{
				Preset: machine.XeonE5_2660v2, Mode: mode, Quartz: q,
			}, bench.MemLatConfig{
				Lines: s.Lines, Chains: 1, Iters: s.MemLatIters, Seed: int64(trial + 9),
			})
			if err != nil {
				return 0, trialErr("overhead", trial, err)
			}
			cts = append(cts, res.CT)
		}
		return sim.FromNanos(stats.Summarize(nanos(cts)).Mean), nil
	}
	native, err := measure(bench.Native, core.Config{})
	if err != nil {
		return Table{}, err
	}
	off := quartzConfig(800)
	off.InjectionOff = true
	switched, err := measure(bench.Emulated, off)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{
		"epoch-creation overhead (switched-off injection)",
		pct(stats.SignedErr(float64(switched), float64(native))),
		"<4% for tuned epochs",
	})
	return t, nil
}

// EpochSize reproduces the paper's footnote 4: emulation accuracy as a
// function of the maximum epoch size (1, 10, 100 ms) — accuracy degrades
// with very large epochs.
func EpochSize(s Scale) (Table, error) {
	t := Table{
		ID:     "epoch-size",
		Title:  "MemLat accuracy vs maximum epoch size (footnote 4, Ivy Bridge)",
		Header: []string{"Max epoch", "Target ns", "Measured ns", "Error"},
	}
	const target = 500.0
	for _, maxEpoch := range []sim.Time{sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond} {
		var lats []sim.Time
		for trial := 0; trial < s.Trials; trial++ {
			q := quartzConfig(target)
			q.MaxEpoch = maxEpoch
			q.MonitorInterval = maxEpoch / 2
			res, err := runMemLatNoFinalClose(bench.EnvConfig{
				Preset: machine.XeonE5_2660v2, Mode: bench.Emulated, Quartz: q,
			}, bench.MemLatConfig{
				Lines: s.Lines, Chains: 1, Iters: s.MemLatIters, Seed: int64(trial + 3),
			})
			if err != nil {
				return Table{}, trialErr("epoch-size", trial, err)
			}
			lats = append(lats, res.PerIteration)
		}
		sum := stats.Summarize(nanos(lats))
		t.Rows = append(t.Rows, []string{
			maxEpoch.String(), f1(target), f1(sum.Mean), pct(stats.RelErr(sum.Mean, target)),
		})
	}
	t.Notes = append(t.Notes,
		"accuracy degrades with very large epochs (delay lands after the measurement window); 1-10ms are accurate",
		"the run is measured as an application would measure itself, without flushing the final epoch")
	return t, nil
}

// runMemLatNoFinalClose is runMemLat without the final CloseEpoch: it
// measures the way an uninstrumented application would, which is exactly
// what makes oversized epochs inaccurate.
func runMemLatNoFinalClose(envCfg bench.EnvConfig, mlCfg bench.MemLatConfig) (bench.MemLatResult, error) {
	env, err := bench.NewEnv(envCfg)
	if err != nil {
		return bench.MemLatResult{}, err
	}
	mlCfg.Node = env.AllocNode()
	ml, err := bench.BuildMemLat(env.Proc, mlCfg)
	if err != nil {
		return bench.MemLatResult{}, err
	}
	var res bench.MemLatResult
	err = env.Run(func(e *bench.Env, th *simosThread) {
		res = ml.Run(th)
	})
	return res, err
}
