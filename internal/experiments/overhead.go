package experiments

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/stats"
)

// overheadModes are the two measured executions of the §3.2 switched-off
// overhead comparison.
var overheadModes = []struct {
	name string
	mode bench.Mode
}{
	{"native", bench.Native},
	{"switched-off", bench.Emulated},
}

// overheadJobs decomposes the §3.2 overhead accounting into one job per
// measured execution (the static cycle-cost rows come from constants and
// need no job).
func overheadJobs(s Scale) JobSet {
	js := JobSet{ID: "overhead"}
	for _, m := range overheadModes {
		var q core.Config
		if m.mode == bench.Emulated {
			q = quartzConfig(800)
			q.InjectionOff = true
		}
		js.Jobs = append(js.Jobs, Job{
			Name:   m.name,
			Params: map[string]string{"mode": m.name},
			Run: func() (Metrics, error) {
				cts := make([]sim.Time, s.Trials)
				err := runUnits(s, s.Trials, func(trial int) error {
					res, err := runMemLat(bench.EnvConfig{
						Preset: machine.XeonE5_2660v2, Mode: m.mode, Quartz: q,
					}, bench.MemLatConfig{
						Lines: s.Lines, Chains: 1, Iters: s.MemLatIters, Seed: int64(trial + 9),
					})
					if err != nil {
						return trialErr("overhead", trial, err)
					}
					cts[trial] = res.CT
					return nil
				})
				if err != nil {
					return nil, err
				}
				return Metrics{"ct_ns": stats.Summarize(nanos(cts)).Mean}, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "overhead",
			Title:  "Emulator overhead accounting (§3.2)",
			Header: []string{"Quantity", "Measured", "Paper"},
		}
		t.Rows = append(t.Rows,
			[]string{"library initialization", fmt.Sprintf("%d cycles", core.DefaultInitCycles), "~5.5e9 cycles (2.5s at 2.2GHz)"},
			[]string{"thread registration", fmt.Sprintf("%d cycles", core.DefaultRegisterCycles), "~300,000 cycles"},
			[]string{"epoch cost (rdpmc, 4 ctrs)", fmt.Sprintf("%d cycles", perf.ReadCostCycles(perf.RDPMC, 4)+core.DefaultEpochLogicCycles), "~4,000 cycles"},
			[]string{"epoch cost (PAPI, 4 ctrs)", fmt.Sprintf("%d cycles", perf.ReadCostCycles(perf.PAPI, 4)+core.DefaultEpochLogicCycles), "~30,000 cycles"},
		)
		native := sim.FromNanos(points[0]["ct_ns"])
		switched := sim.FromNanos(points[1]["ct_ns"])
		t.Rows = append(t.Rows, []string{
			"epoch-creation overhead (switched-off injection)",
			pct(stats.SignedErr(float64(switched), float64(native))),
			"<4% for tuned epochs",
		})
		return t, nil
	}
	return js
}

// Overhead reproduces the §3.2 overhead numbers: initialization and
// per-thread registration costs, epoch processing cost under rdpmc versus
// PAPI-style counter access, and the end-to-end emulator overhead measured
// with switched-off delay injection.
func Overhead(s Scale) (Table, error) { return overheadJobs(s).runSerial() }

// epochSizeMaxEpochs are the maximum-epoch settings of footnote 4.
var epochSizeMaxEpochs = []sim.Time{sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond}

// epochSizeTarget is the emulated latency of the footnote 4 study.
const epochSizeTarget = 500.0

// epochSizeJobs decomposes the footnote 4 study into one job per maximum
// epoch setting.
func epochSizeJobs(s Scale) JobSet {
	js := JobSet{ID: "epoch-size"}
	for _, maxEpoch := range epochSizeMaxEpochs {
		js.Jobs = append(js.Jobs, Job{
			Name:   "max-epoch=" + maxEpoch.String(),
			Params: map[string]string{"max_epoch": maxEpoch.String()},
			Run: func() (Metrics, error) {
				lats := make([]sim.Time, s.Trials)
				err := runUnits(s, s.Trials, func(trial int) error {
					q := quartzConfig(epochSizeTarget)
					q.MaxEpoch = maxEpoch
					q.MonitorInterval = maxEpoch / 2
					res, err := runMemLatNoFinalClose(bench.EnvConfig{
						Preset: machine.XeonE5_2660v2, Mode: bench.Emulated, Quartz: q,
					}, bench.MemLatConfig{
						Lines: s.Lines, Chains: 1, Iters: s.MemLatIters, Seed: int64(trial + 3),
					})
					if err != nil {
						return trialErr("epoch-size", trial, err)
					}
					lats[trial] = res.PerIteration
					return nil
				})
				if err != nil {
					return nil, err
				}
				return Metrics{"mean_ns": stats.Summarize(nanos(lats)).Mean}, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "epoch-size",
			Title:  "MemLat accuracy vs maximum epoch size (footnote 4, Ivy Bridge)",
			Header: []string{"Max epoch", "Target ns", "Measured ns", "Error"},
		}
		for i, maxEpoch := range epochSizeMaxEpochs {
			mean := points[i]["mean_ns"]
			t.Rows = append(t.Rows, []string{
				maxEpoch.String(), f1(epochSizeTarget), f1(mean), pct(stats.RelErr(mean, epochSizeTarget)),
			})
		}
		t.Notes = append(t.Notes,
			"accuracy degrades with very large epochs (delay lands after the measurement window); 1-10ms are accurate",
			"the run is measured as an application would measure itself, without flushing the final epoch")
		return t, nil
	}
	return js
}

// EpochSize reproduces the paper's footnote 4: emulation accuracy as a
// function of the maximum epoch size (1, 10, 100 ms) — accuracy degrades
// with very large epochs.
func EpochSize(s Scale) (Table, error) { return epochSizeJobs(s).runSerial() }

// runMemLatNoFinalClose is runMemLat without the final CloseEpoch: it
// measures the way an uninstrumented application would, which is exactly
// what makes oversized epochs inaccurate.
func runMemLatNoFinalClose(envCfg bench.EnvConfig, mlCfg bench.MemLatConfig) (bench.MemLatResult, error) {
	env, err := bench.NewEnv(envCfg)
	if err != nil {
		return bench.MemLatResult{}, err
	}
	mlCfg.Node = env.AllocNode()
	ml, err := bench.BuildMemLat(env.Proc, mlCfg)
	if err != nil {
		return bench.MemLatResult{}, err
	}
	var res bench.MemLatResult
	err = env.Run(func(e *bench.Env, th *simosThread) {
		res = ml.Run(th)
	})
	return res, err
}
