package experiments

import (
	"strconv"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/stats"
)

// Table1 reproduces the paper's Table 1: the performance events Quartz
// programs per processor family.
func Table1() Table {
	t := Table{
		ID:     "table1",
		Title:  "Performance events per processor family (Table 1)",
		Header: []string{"Family", "Model input", "Hardware event"},
	}
	for _, f := range []perf.Family{perf.SandyBridge, perf.IvyBridge, perf.Haswell} {
		for _, e := range perf.EventsFor(f) {
			name, _ := perf.EventName(f, e)
			t.Rows = append(t.Rows, []string{f.String(), e.String(), name})
		}
	}
	return t
}

// Table2 reproduces Table 2: measured local and remote DRAM access
// latencies per testbed, via single-chain MemLat (the Intel MLC
// methodology).
func Table2(s Scale) (Table, error) {
	t := Table{
		ID:     "table2",
		Title:  "Measured memory access latencies, ns (Table 2)",
		Header: []string{"Processor family", "Min local", "Aver local", "Max local", "Min remote", "Aver remote", "Max remote"},
	}
	for _, pr := range presetRows() {
		measure := func(mode bench.Mode) (stats.Summary, error) {
			var lats []sim.Time
			for trial := 0; trial < s.Trials; trial++ {
				res, err := runMemLat(
					bench.EnvConfig{Preset: pr.preset, Mode: mode},
					bench.MemLatConfig{Lines: s.Lines, Chains: 1, Iters: s.MemLatIters, Seed: int64(100 + trial)},
				)
				if err != nil {
					return stats.Summary{}, trialErr("table2", trial, err)
				}
				lats = append(lats, res.PerIteration)
			}
			return stats.Summarize(nanos(lats)), nil
		}
		local, err := measure(bench.Native)
		if err != nil {
			return Table{}, err
		}
		remote, err := measure(bench.PhysicalRemote)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			pr.label,
			f1(local.Min), f1(local.Mean), f1(local.Max),
			f1(remote.Min), f1(remote.Mean), f1(remote.Max),
		})
	}
	t.Notes = append(t.Notes,
		"paper: Sandy 97/163, Ivy 87/176, Haswell 120/175 (avg local/remote)")
	return t, nil
}

// Fig8 reproduces Figure 8: STREAM copy bandwidth versus the thermal
// throttle register value on the Sandy Bridge testbed — linear until the
// attainable maximum.
func Fig8(s Scale) (Table, error) {
	t := Table{
		ID:     "fig8",
		Title:  "STREAM copy bandwidth vs thermal-control register (Fig. 8, Sandy Bridge)",
		Header: []string{"Register", "Copy GB/s"},
	}
	for _, reg := range []uint16{64, 128, 256, 512, 1024, 1536, 2048, 3072, 4095} {
		var bws []float64
		for trial := 0; trial < s.Trials; trial++ {
			env, err := bench.NewEnv(bench.EnvConfig{
				Preset: machine.XeonE5_2450, Mode: bench.Native,
				Lookahead: 5 * sim.Microsecond,
			})
			if err != nil {
				return Table{}, trialErr("fig8", trial, err)
			}
			for _, sock := range env.Mach.Sockets() {
				if err := sock.Ctrl.SetThrottle(reg); err != nil {
					return Table{}, trialErr("fig8", trial, err)
				}
			}
			var res bench.StreamResult
			err = env.Run(func(e *bench.Env, th *simos.Thread) {
				var rerr error
				res, rerr = bench.RunStream(e, th, bench.StreamConfig{
					Lines: s.StreamLines, Threads: 4, Node: 0,
				})
				if rerr != nil {
					th.Failf("%v", rerr)
				}
			})
			if err != nil {
				return Table{}, trialErr("fig8", trial, err)
			}
			bws = append(bws, res.BytesPerSec/1e9)
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(int(reg)), f2(stats.Summarize(bws).Mean),
		})
	}
	t.Notes = append(t.Notes,
		"linear growth until the attainable maximum, then flat (paper Fig. 8)")
	return t, nil
}
