package experiments

import (
	"strconv"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/stats"
)

// Table1 reproduces the paper's Table 1: the performance events Quartz
// programs per processor family.
func Table1() Table {
	t := Table{
		ID:     "table1",
		Title:  "Performance events per processor family (Table 1)",
		Header: []string{"Family", "Model input", "Hardware event"},
	}
	for _, f := range []perf.Family{perf.SandyBridge, perf.IvyBridge, perf.Haswell} {
		for _, e := range perf.EventsFor(f) {
			name, _ := perf.EventName(f, e)
			t.Rows = append(t.Rows, []string{f.String(), e.String(), name})
		}
	}
	return t
}

// table1Jobs: Table 1 is a static inventory, so the set has no jobs and the
// assembler renders it directly.
func table1Jobs(Scale) JobSet {
	return JobSet{
		ID:       "table1",
		Assemble: func([]Metrics) (Table, error) { return Table1(), nil },
	}
}

// table2Modes are the two measured configurations of Table 2.
var table2Modes = []struct {
	name string
	mode bench.Mode
}{
	{"local", bench.Native},
	{"remote", bench.PhysicalRemote},
}

// table2Jobs decomposes Table 2 into one job per (family, local/remote)
// cell; each runs the single-chain MemLat trials (the Intel MLC methodology)
// and reports the per-iteration latency summary.
func table2Jobs(s Scale) JobSet {
	js := JobSet{ID: "table2"}
	prs := presetRows()
	for _, pr := range prs {
		for _, m := range table2Modes {
			js.Jobs = append(js.Jobs, Job{
				Name:   pr.label + "/" + m.name,
				Params: map[string]string{"family": pr.label, "mode": m.name},
				Run: func() (Metrics, error) {
					lats := make([]sim.Time, s.Trials)
					err := runUnits(s, s.Trials, func(trial int) error {
						res, err := runMemLat(
							bench.EnvConfig{Preset: pr.preset, Mode: m.mode},
							bench.MemLatConfig{Lines: s.Lines, Chains: 1, Iters: s.MemLatIters, Seed: int64(100 + trial)},
						)
						if err != nil {
							return trialErr("table2", trial, err)
						}
						lats[trial] = res.PerIteration
						return nil
					})
					if err != nil {
						return nil, err
					}
					sum := stats.Summarize(nanos(lats))
					return Metrics{"min_ns": sum.Min, "mean_ns": sum.Mean, "max_ns": sum.Max}, nil
				},
			})
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "table2",
			Title:  "Measured memory access latencies, ns (Table 2)",
			Header: []string{"Processor family", "Min local", "Aver local", "Max local", "Min remote", "Aver remote", "Max remote"},
		}
		for i, pr := range prs {
			local, remote := points[2*i], points[2*i+1]
			t.Rows = append(t.Rows, []string{
				pr.label,
				f1(local["min_ns"]), f1(local["mean_ns"]), f1(local["max_ns"]),
				f1(remote["min_ns"]), f1(remote["mean_ns"]), f1(remote["max_ns"]),
			})
		}
		t.Notes = append(t.Notes,
			"paper: Sandy 97/163, Ivy 87/176, Haswell 120/175 (avg local/remote)")
		return t, nil
	}
	return js
}

// Table2 reproduces Table 2: measured local and remote DRAM access
// latencies per testbed.
func Table2(s Scale) (Table, error) { return table2Jobs(s).runSerial() }

// fig8Registers are the thermal-control register settings of Figure 8.
var fig8Registers = []uint16{64, 128, 256, 512, 1024, 1536, 2048, 3072, 4095}

// fig8Jobs decomposes Figure 8 into one job per register setting; each runs
// the STREAM trials and reports the mean copy bandwidth.
func fig8Jobs(s Scale) JobSet {
	js := JobSet{ID: "fig8"}
	for _, reg := range fig8Registers {
		js.Jobs = append(js.Jobs, Job{
			Name:   "register=" + strconv.Itoa(int(reg)),
			Params: map[string]string{"register": strconv.Itoa(int(reg))},
			Run: func() (Metrics, error) {
				bws := make([]float64, s.Trials)
				err := runUnits(s, s.Trials, func(trial int) error {
					env, err := bench.NewEnv(bench.EnvConfig{
						Preset: machine.XeonE5_2450, Mode: bench.Native,
						Lookahead: 5 * sim.Microsecond,
					})
					if err != nil {
						return trialErr("fig8", trial, err)
					}
					for _, sock := range env.Mach.Sockets() {
						if err := sock.Ctrl.SetThrottle(reg); err != nil {
							return trialErr("fig8", trial, err)
						}
					}
					var res bench.StreamResult
					err = env.Run(func(e *bench.Env, th *simos.Thread) {
						var rerr error
						res, rerr = bench.RunStream(e, th, bench.StreamConfig{
							Lines: s.StreamLines, Threads: 4, Node: 0,
						})
						if rerr != nil {
							th.Failf("%v", rerr)
						}
					})
					if err != nil {
						return trialErr("fig8", trial, err)
					}
					bws[trial] = res.BytesPerSec / 1e9
					return nil
				})
				if err != nil {
					return nil, err
				}
				return Metrics{"copy_gbps": stats.Summarize(bws).Mean}, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "fig8",
			Title:  "STREAM copy bandwidth vs thermal-control register (Fig. 8, Sandy Bridge)",
			Header: []string{"Register", "Copy GB/s"},
		}
		for i, reg := range fig8Registers {
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(int(reg)), f2(points[i]["copy_gbps"]),
			})
		}
		t.Notes = append(t.Notes,
			"linear growth until the attainable maximum, then flat (paper Fig. 8)")
		return t, nil
	}
	return js
}

// Fig8 reproduces Figure 8: STREAM copy bandwidth versus the thermal
// throttle register value on the Sandy Bridge testbed — linear until the
// attainable maximum.
func Fig8(s Scale) (Table, error) { return fig8Jobs(s).runSerial() }
