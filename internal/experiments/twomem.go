package experiments

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/stats"
)

// fig14Pattern is one MultiLat access pattern (DRAM and NVM burst lengths).
type fig14Pattern struct {
	name string
	dram int
	nvm  int
}

// fig14Patterns are the MultiLat access patterns, scaled from the paper's
// Pattern-1..4 (200k:100k down to 200:100) to the simulated array sizes.
var fig14Patterns = []fig14Pattern{
	{"P1", 20000, 10000},
	{"P2", 2000, 1000},
	{"P3", 200, 100},
	{"P4", 20, 10},
}

// fig14Configs are the two DRAM:NVM array-size configurations of Figure 14.
var fig14Configs = []struct {
	name string
	mul  int
}{
	{"10M:10M", 1},
	{"20M:10M", 2},
}

// fig14Grid is the sweep grid of Figure 14 at scale s.
func fig14Grid(s Scale) (lats []float64, patterns []fig14Pattern, families []presetRow) {
	lats = []float64{200, 300, 400, 500, 600, 700}
	patterns = fig14Patterns
	if s.Sparse {
		lats = []float64{300, 600}
		patterns = patterns[1:3]
	}
	families = []presetRow{
		{machine.XeonE5_2660v2, "Ivy Bridge"},
		{machine.XeonE5_2650v3, "Haswell"},
	}
	return lats, patterns, families
}

// fig14Jobs decomposes Figure 14 into one job per (family, config, pattern,
// NVM latency) cell; each runs the MultiLat trials under the two-memory
// topology and reports the measured and analytically expected completion
// times.
func fig14Jobs(s Scale) JobSet {
	js := JobSet{ID: "fig14"}
	lats, patterns, families := fig14Grid(s)
	for _, pr := range families {
		for _, cfgRow := range fig14Configs {
			for _, pat := range patterns {
				for _, nvmNS := range lats {
					js.Jobs = append(js.Jobs, Job{
						Name: fmt.Sprintf("%s/%s/%s/nvm=%.0f", pr.label, cfgRow.name, pat.name, nvmNS),
						Params: map[string]string{
							"family": pr.label, "config": cfgRow.name,
							"pattern": pat.name, "nvm_ns": fmt.Sprintf("%.0f", nvmNS),
						},
						Run: func() (Metrics, error) {
							cts := make([]sim.Time, s.Trials)
							exps := make([]sim.Time, s.Trials)
							err := runUnits(s, s.Trials, func(trial int) error {
								q := quartzConfig(nvmNS)
								q.TwoMemory = true
								env, err := bench.NewEnv(bench.EnvConfig{
									Preset: pr.preset, Mode: bench.Emulated, Quartz: q,
								})
								if err != nil {
									return trialErr("fig14", trial, err)
								}
								ml, err := bench.BuildMultiLat(env.Proc, env.Emu, bench.MultiLatConfig{
									DRAMLines: s.MultiLatLines * cfgRow.mul,
									NVMLines:  s.MultiLatLines,
									DRAMBurst: pat.dram, NVMBurst: pat.nvm,
									Seed: int64(trial*7 + 1),
								})
								if err != nil {
									return trialErr("fig14", trial, err)
								}
								var res bench.MultiLatResult
								if err := env.Run(func(e *bench.Env, th *simosThread) {
									start := th.Now()
									r := ml.Run(th, machine.PresetConfig(pr.preset).LocalLat, sim.FromNanos(nvmNS))
									e.CloseEpoch(th)
									r.CT = th.Now() - start
									res = r
								}); err != nil {
									return trialErr("fig14", trial, err)
								}
								cts[trial] = res.CT
								exps[trial] = res.ExpectedCT
								return nil
							})
							if err != nil {
								return nil, err
							}
							return Metrics{
								"ct_ns":       stats.Summarize(nanos(cts)).Mean,
								"expected_ns": stats.Summarize(nanos(exps)).Mean,
							}, nil
						},
					})
				}
			}
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "fig14",
			Title:  "MultiLat error with DRAM+NVM virtual topology (Fig. 14)",
			Header: []string{"Family", "Config", "Pattern", "NVM ns", "CT ms", "Expected ms", "Error"},
		}
		i := 0
		for _, pr := range families {
			for _, cfgRow := range fig14Configs {
				for _, pat := range patterns {
					for _, nvmNS := range lats {
						ct, exp := points[i]["ct_ns"], points[i]["expected_ns"]
						i++
						t.Rows = append(t.Rows, []string{
							pr.label, cfgRow.name, fmt.Sprintf("%s(%d:%d)", pat.name, pat.dram, pat.nvm),
							f1(nvmNS), f2(ct / 1e6), f2(exp / 1e6), pct(stats.RelErr(ct, exp)),
						})
					}
				}
			}
		}
		t.Notes = append(t.Notes, "paper: average errors below 1.2% for all patterns and configurations")
		return t, nil
	}
	return js
}

// Fig14 reproduces Figure 14: MultiLat emulation error under the two-memory
// (DRAM+NVM) virtual topology for two array configurations and four access
// patterns across emulated NVM latencies, on Ivy Bridge and Haswell (the
// families with local/remote miss counters).
func Fig14(s Scale) (Table, error) { return fig14Jobs(s).runSerial() }
