package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// quartzConfig is the baseline emulator configuration experiments use: the
// paper's 10 ms maximum epoch with a small minimum epoch, and the library
// init cost suppressed (experiments time the workload region, and the init
// cost is measured separately by the overhead experiment).
func quartzConfig(nvmNS float64) core.Config {
	return core.Config{
		NVMLatency: sim.FromNanos(nvmNS),
		MaxEpoch:   2 * sim.Millisecond,
		MinEpoch:   10 * sim.Microsecond,
		InitCycles: 1,
	}
}

// profiler resolves the vtprof profiler for job jobName of set setID — the
// "setID/jobName" key matches the runner's job IDs, so -vtprof output files
// line up with -progress and result-sink job identities. A nil Profiles
// suite yields a nil (inert) profiler.
func (s Scale) profiler(setID, jobName string) *vtprof.Profiler {
	return s.Profiles.Job(setID + "/" + jobName)
}

// runMemLat builds and runs one MemLat trial in a fresh environment,
// reporting the chase's completion time and per-iteration latency with any
// trailing epoch delay flushed into the window.
func runMemLat(envCfg bench.EnvConfig, mlCfg bench.MemLatConfig) (bench.MemLatResult, error) {
	env, err := bench.NewEnv(envCfg)
	if err != nil {
		return bench.MemLatResult{}, err
	}
	mlCfg.Node = env.AllocNode()
	ml, err := bench.BuildMemLat(env.Proc, mlCfg)
	if err != nil {
		return bench.MemLatResult{}, err
	}
	var res bench.MemLatResult
	err = env.Run(func(e *bench.Env, th *simos.Thread) {
		start := th.Now()
		r := ml.Run(th)
		e.CloseEpoch(th)
		ct := th.Now() - start
		r.CT = ct
		r.PerIteration = ct / sim.Time(mlCfg.Iters)
		res = r
	})
	return res, err
}

// simosThread shortens closure signatures in the sweep code.
type simosThread = simos.Thread

// appMachine returns the preset configuration with the last-level cache
// scaled to l3Bytes. The paper's application working sets (a 4.8M-vertex web
// graph, a GB-scale key-value store) dwarf the 20-25 MiB L3s of the
// testbeds; at tractable simulation sizes each application's
// working-set-to-cache geometry is preserved by scaling the cache with the
// workload:
//
//   - the KV store keeps its hot tree levels cache-resident (as MassTree's
//     cache-crafted upper levels are on a 20 MiB L3) while values miss, so
//     it gets a 2 MiB L3 against a ~32 MiB value arena;
//   - PageRank's rank vectors must exceed the cache (4.8M-vertex vectors
//     dwarf 20 MiB), so it gets a 256 KiB L3 against ~800 KiB vectors.
//
// Channel bandwidth is scaled up in proportion to the increased per-op
// traffic so the scaled testbeds stay latency-bound, not channel-saturated.
// Validation experiments compare Conf_1 against Conf_2 on the same scaled
// machine, so the comparison stays apples-to-apples.
func appMachine(p machine.Preset, l3Bytes int) *machine.Config {
	cfg := machine.PresetConfig(p)
	cfg.L3.SizeBytes = l3Bytes
	cfg.L3.Ways = 16
	cfg.Mem.ChannelBandwidth *= 4
	return &cfg
}

// Cache scalings per application (see appMachine).
const (
	kvL3Bytes = 2 << 20
	prL3Bytes = 256 << 10
)

// presetRows iterates the three testbeds with their short labels.
type presetRow struct {
	preset machine.Preset
	label  string
}

func presetRows() []presetRow {
	return []presetRow{
		{machine.XeonE5_2450, "Sandy Bridge"},
		{machine.XeonE5_2660v2, "Ivy Bridge"},
		{machine.XeonE5_2650v3, "Haswell"},
	}
}

// meanOf averages a slice of sim.Time as float64 nanoseconds.
func nanos(ts []sim.Time) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = t.Nanoseconds()
	}
	return out
}

// trialErr wraps an experiment trial failure with context.
func trialErr(what string, trial int, err error) error {
	return fmt.Errorf("experiments: %s trial %d: %w", what, trial, err)
}

// runUnits executes body(0..n-1) — a job's independent units: repeated
// trials, or the paired/variant simulations of one sweep point — honoring
// s.TrialParallel. Each unit must build its own environment, seed its own
// simulation, and write results only to its own position-indexed slots;
// under those rules (which every experiment's trial loop already followed)
// execution order cannot affect the assembled table, because assembly reads
// the slots in index order and floating-point reduction order is fixed.
//
// Serial execution (TrialParallel <= 1) runs in the calling goroutine with
// no synchronization. Parallel execution reports the lowest-index error,
// matching what the serial loop would have returned.
func runUnits(s Scale, n int, body func(unit int) error) error {
	par := s.TrialParallel
	if par > n {
		par = n
	}
	if par <= 1 {
		for u := 0; u < n; u++ {
			if err := body(u); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for g := 0; g < par; g++ {
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				errs[u] = body(u)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
