package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artifact at the given scale.
type Runner func(Scale) (Table, error)

// registry maps experiment ids (table/figure numbers) to runners.
var registry = map[string]Runner{
	"table1":            func(Scale) (Table, error) { return Table1(), nil },
	"table2":            Table2,
	"fig8":              Fig8,
	"fig11":             Fig11,
	"fig12":             Fig12,
	"fig13":             Fig13,
	"fig14":             Fig14,
	"fig15":             Fig15,
	"fig16":             Fig16,
	"pagerank-validate": PageRankValidation,
	"overhead":          Overhead,
	"epoch-size":        EpochSize,
	"model-ablation":    ModelAblation,
	"pcommit":           PCommitAblation,
	"amortization":      AmortizationAblation,
	"graph500-validate": Graph500Validation,
	"ext-asym-bw":       AsymmetricBandwidth,
}

// All lists experiment ids in stable order.
func All() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates experiment id at scale s.
func Run(id string, s Scale) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, All())
	}
	return r(s)
}
