package experiments

import (
	"fmt"
	"sort"
)

// entry couples an experiment's job decomposition with its one-line
// description for `quartzbench -list`.
type entry struct {
	jobs        func(Scale) JobSet
	description string
}

// registry maps experiment ids (table/figure numbers) to their
// decompositions.
var registry = map[string]entry{
	"table1":            {table1Jobs, "performance events programmed per processor family (Table 1)"},
	"table2":            {table2Jobs, "measured local/remote DRAM access latencies per testbed (Table 2)"},
	"fig8":              {fig8Jobs, "STREAM copy bandwidth vs thermal-throttle register (Fig. 8)"},
	"fig11":             {fig11Jobs, "MemLat emulation error vs memory-level parallelism (Fig. 11)"},
	"fig12":             {fig12Jobs, "MemLat-reported latency vs emulated NVM latency (Fig. 12)"},
	"fig13":             {fig13Jobs, "Multi-Threaded delay propagation via minimum epochs (Fig. 13)"},
	"fig14":             {fig14Jobs, "MultiLat error under the DRAM+NVM virtual topology (Fig. 14)"},
	"fig15":             {fig15Jobs, "KV store put/get validation errors, Conf_1 vs Conf_2 (Fig. 15)"},
	"fig16":             {fig16Jobs, "application sensitivity to NVM latency and bandwidth (Fig. 16)"},
	"pagerank-validate": {pageRankValidationJobs, "PageRank completion-time validation, Conf_1 vs Conf_2 (§4.7)"},
	"overhead":          {overheadJobs, "emulator overhead accounting: init, registration, epochs (§3.2)"},
	"epoch-size":        {epochSizeJobs, "MemLat accuracy vs maximum epoch size (footnote 4)"},
	"model-ablation":    {modelAblationJobs, "Eq. 2 stall model vs naive Eq. 1 under MLP (Fig. 2)"},
	"pcommit":           {pcommitAblationJobs, "serialized pflush vs clflushopt+pcommit write model (§6)"},
	"amortization":      {amortizationAblationJobs, "overhead carry-over amortization on/off (§3.2)"},
	"graph500-validate": {graph500ValidationJobs, "Graph500 BFS validation, Conf_1 vs Conf_2 (§7)"},
	"ext-asym-bw":       {asymmetricBandwidthJobs, "asymmetric read/write bandwidth throttling (§2.1 extension)"},
	"fig11-asym":        {fig11AsymJobs, "write bandwidth vs writer threads under calibrated NVM profiles (asymmetric model)"},
	"fig12-asym":        {fig12AsymJobs, "emulated read vs store latency per NVM profile (asymmetric model)"},
	"traffic-sweep":     {trafficSweepJobs, "serving traffic: client count x mix x NVM latency, knee detection (extension)"},
	"traffic-slo":       {trafficSLOJobs, "serving traffic: per-op-kind SLO breakdown at peak load (extension)"},
	"traffic-mega":      {trafficMegaJobs, "serving traffic at scheduler scale: up to 2^20 clients per scenario (extension)"},
}

// All lists experiment ids in stable order.
func All() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Known reports whether id names a registered experiment.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}

// Describe returns the one-line description of experiment id.
func Describe(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", unknownErr(id)
	}
	return e.description, nil
}

// Jobs decomposes experiment id at scale s into its independent sweep-point
// jobs and the deterministic assembler that merges their results.
func Jobs(id string, s Scale) (JobSet, error) {
	e, ok := registry[id]
	if !ok {
		return JobSet{}, unknownErr(id)
	}
	return e.jobs(s), nil
}

// Run regenerates experiment id at scale s by running its jobs serially in
// decomposition order. internal/runner executes the same jobs concurrently
// and assembles an identical table.
func Run(id string, s Scale) (Table, error) {
	js, err := Jobs(id, s)
	if err != nil {
		return Table{}, err
	}
	return js.runSerial()
}

func unknownErr(id string) error {
	return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, All())
}
