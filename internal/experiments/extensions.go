package experiments

import (
	"fmt"
	"strconv"

	"github.com/quartz-emu/quartz/internal/apps/graph500"
	"github.com/quartz-emu/quartz/internal/apps/pagerank"
	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/stats"
)

// graph500Run runs one BFS execution in a fresh environment.
func graph500Run(s Scale, mode bench.Mode, q core.Config, seed uint64) (graph500.Result, error) {
	env, err := bench.NewEnv(bench.EnvConfig{
		Preset: machine.XeonE5_2660v2, Machine: appMachine(machine.XeonE5_2660v2, prL3Bytes),
		Mode: mode, Quartz: q,
	})
	if err != nil {
		return graph500.Result{}, err
	}
	alloc := func(size uintptr) (uintptr, error) {
		return env.Proc.MallocOnNode(size, env.AllocNode())
	}
	g, err := pagerank.Generate(pagerank.GenerateConfig{
		Vertices: s.PRVertices, EdgesPerVertex: s.PREdgesPerVertex, Seed: seed,
	}, alloc)
	if err != nil {
		return graph500.Result{}, err
	}
	var res graph500.Result
	err = env.Run(func(e *bench.Env, th *simosThread) {
		start := th.Now()
		r, rerr := graph500.BFS(g, th, 0, alloc)
		if rerr != nil {
			th.Failf("%v", rerr)
		}
		e.CloseEpoch(th)
		r.CT = th.Now() - start
		res = r
	})
	return res, err
}

// graph500ValidationJobs decomposes the §7 validation into one job per
// trial, each running the paired Conf_2/Conf_1 executions with the same
// seed.
func graph500ValidationJobs(s Scale) JobSet {
	js := JobSet{ID: "graph500-validate"}
	for trial := 0; trial < s.Trials; trial++ {
		js.Jobs = append(js.Jobs, Job{
			Name:   fmt.Sprintf("trial=%d", trial),
			Params: map[string]string{"trial": strconv.Itoa(trial)},
			Run: func() (Metrics, error) {
				seed := uint64(trial + 11)
				// The Conf_2 and Conf_1 runs are independent simulations —
				// parallel units under -trial-parallel.
				var phys, emu graph500.Result
				err := runUnits(s, 2, func(u int) error {
					if u == 0 {
						p, err := graph500Run(s, bench.PhysicalRemote, core.Config{}, seed)
						if err != nil {
							return trialErr("graph500 physical", trial, err)
						}
						phys = p
						return nil
					}
					e, err := graph500Run(s, bench.Emulated, quartzConfig(bench.RemoteLatNS(machine.XeonE5_2660v2)), seed)
					if err != nil {
						return trialErr("graph500 emulated", trial, err)
					}
					emu = e
					return nil
				})
				if err != nil {
					return nil, err
				}
				return Metrics{
					"phys_ct_ns": phys.CT.Nanoseconds(),
					"emu_ct_ns":  emu.CT.Nanoseconds(),
					"teps":       emu.TEPS,
				}, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "graph500-validate",
			Title:  "Graph500 BFS validation, Conf_1 vs Conf_2 (§7, Ivy Bridge)",
			Header: []string{"Conf_2 CT ms", "Conf_1 CT ms", "Error", "TEPS (Conf_1)"},
		}
		var physs, emus stats.Accumulator
		var teps float64
		for _, p := range points {
			physs.Add(p["phys_ct_ns"])
			emus.Add(p["emu_ct_ns"])
			teps += p["teps"] / float64(s.Trials)
		}
		pm := physs.Summary().Mean
		em := emus.Summary().Mean
		t.Rows = append(t.Rows, []string{
			f2(pm / 1e6), f2(em / 1e6), pct(stats.RelErr(em, pm)), fmt.Sprintf("%.3g", teps),
		})
		t.Notes = append(t.Notes, "paper: within 12% of a hardware latency emulator on Graph500")
		return t, nil
	}
	return js
}

// Graph500Validation reproduces the conclusion's extended validation: BFS
// over a scale-free graph (the Graph500 reference kernel) compared between
// Conf_1 and Conf_2. The paper reports Quartz within 12% of a hardware
// latency emulator on this workload.
func Graph500Validation(s Scale) (Table, error) { return graph500ValidationJobs(s).runSerial() }

// asymSettings are the read/write throttle combinations of the §2.1
// extension study.
var asymSettings = []struct {
	name        string
	read, write uint16
}{
	{"full/full", 4095, 4095},
	{"full/quarter", 4095, 512},
	{"quarter/full", 512, 4095},
}

// asymKernels are the two measured stream kernels per throttle setting.
var asymKernels = []struct {
	name string
	copy bool
}{
	{"read", false},
	{"copy", true},
}

// asymmetricBandwidthJobs decomposes the asymmetric-throttling study into
// one job per (throttle setting, kernel).
func asymmetricBandwidthJobs(s Scale) JobSet {
	js := JobSet{ID: "ext-asym-bw"}
	for _, cfgRow := range asymSettings {
		for _, kern := range asymKernels {
			js.Jobs = append(js.Jobs, Job{
				Name:   cfgRow.name + "/" + kern.name,
				Params: map[string]string{"throttle": cfgRow.name, "kernel": kern.name},
				Run: func() (Metrics, error) {
					bw, err := asymMeasure(s, cfgRow.read, cfgRow.write, kern.copy)
					if err != nil {
						return nil, fmt.Errorf("asym-bw %s stream: %w", kern.name, err)
					}
					return Metrics{"bw": bw}, nil
				},
			})
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "ext-asym-bw",
			Title:  "Asymmetric read/write bandwidth throttling (§2.1 extension, Sandy Bridge)",
			Header: []string{"Throttle (r/w)", "Read-stream GB/s", "Copy-stream GB/s"},
		}
		for i, cfgRow := range asymSettings {
			readBW := points[2*i]["bw"]
			copyBW := points[2*i+1]["bw"]
			t.Rows = append(t.Rows, []string{cfgRow.name, f2(readBW / 1e9), f2(copyBW / 1e9)})
		}
		t.Notes = append(t.Notes,
			"write throttling leaves the read-only stream intact but caps the copy kernel (writeback path)",
			"the paper's testbeds exposed these registers but they were not functional (§2.1 footnote)")
		return t, nil
	}
	return js
}

// asymMeasure runs one stream kernel under the given read/write throttle
// registers and reports its bandwidth.
func asymMeasure(s Scale, read, write uint16, copyKernel bool) (float64, error) {
	env, err := bench.NewEnv(bench.EnvConfig{
		Preset: machine.XeonE5_2450, Mode: bench.Native,
		Lookahead: 5 * sim.Microsecond,
	})
	if err != nil {
		return 0, err
	}
	for _, sock := range env.Mach.Sockets() {
		if err := sock.Ctrl.SetReadThrottle(read); err != nil {
			return 0, err
		}
		if err := sock.Ctrl.SetWriteThrottle(write); err != nil {
			return 0, err
		}
	}
	var bw float64
	err = env.Run(func(e *bench.Env, th *simosThread) {
		if copyKernel {
			res, rerr := bench.RunStream(e, th, bench.StreamConfig{
				Lines: s.StreamLines, Threads: 4, Node: 0,
			})
			if rerr != nil {
				th.Failf("%v", rerr)
			}
			bw = res.BytesPerSec
			return
		}
		// Read-only stream: batched loads over a large region.
		base, aerr := e.Proc.Malloc(uintptr(s.StreamLines) * 64)
		if aerr != nil {
			th.Failf("%v", aerr)
		}
		batch := make([]uintptr, 0, 8)
		start := th.Now()
		for i := 0; i < s.StreamLines; i += 8 {
			batch = batch[:0]
			for j := i; j < i+8 && j < s.StreamLines; j++ {
				batch = append(batch, base+uintptr(j)*64)
			}
			th.LoadGroup(batch)
		}
		ct := th.Now() - start
		bw = float64(s.StreamLines) * 64 / ct.Seconds()
	})
	return bw, err
}

// AsymmetricBandwidth exercises the separate read/write throttle registers
// of §2.1 that the paper's hardware did not support: with the write register
// throttled to a quarter of the read register, a read-dominated stream keeps
// its bandwidth while a writeback-dominated stream drops, reflecting the
// read/write bandwidth asymmetry of real NVM parts.
func AsymmetricBandwidth(s Scale) (Table, error) { return asymmetricBandwidthJobs(s).runSerial() }
