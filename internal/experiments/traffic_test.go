package experiments

import (
	"strings"
	"testing"
)

// TestTrafficSweepStructure checks the sweep table's shape: one row per
// (mix, latency, clients) cell, a knee per series, and sane quantile
// ordering at every point.
func TestTrafficSweepStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real traffic scenarios")
	}
	tab, err := TrafficSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(tiny.TrafficMixes) * len(tiny.TrafficLatsNS) * len(tiny.TrafficClients)
	if len(tab.Rows) != wantRows {
		t.Errorf("traffic-sweep has %d rows, want %d", len(tab.Rows), wantRows)
	}
	rendered := tab.Render()
	for _, mixName := range tiny.TrafficMixes {
		if !strings.Contains(rendered, mixName) {
			t.Errorf("render missing mix %q", mixName)
		}
	}
	if !strings.Contains(rendered, "knee") {
		t.Errorf("no knee reported in notes:\n%s", rendered)
	}
}

// TestTrafficSweepDeterminism reruns the decomposition and requires
// byte-identical tables — the engine-to-assembler path has no hidden state.
func TestTrafficSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real traffic scenarios")
	}
	a, err := TrafficSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrafficSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Errorf("traffic-sweep reruns diverge:\n--- a ---\n%s\n--- b ---\n%s", a.Render(), b.Render())
	}
}

// TestTrafficSLOStructure checks the per-kind breakdown: one row per mix,
// with scan counts only in scan-bearing mixes.
func TestTrafficSLOStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real traffic scenarios")
	}
	tab, err := TrafficSLO(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(tiny.TrafficMixes) {
		t.Errorf("traffic-slo has %d rows, want %d", len(tab.Rows), len(tiny.TrafficMixes))
	}
	for _, row := range tab.Rows {
		scans := row[4]
		switch row[0] {
		case "read-mostly", "write-heavy":
			if scans != "0" {
				t.Errorf("%s: scans = %s, want 0", row[0], scans)
			}
		case "scan-blend":
			if scans == "0" {
				t.Errorf("scan-blend: no scans measured")
			}
		}
	}
}

func TestTrafficUnknownMix(t *testing.T) {
	if _, err := trafficRun(tiny, "nope", 300, 4, 1, nil); err == nil {
		t.Error("unknown mix accepted")
	}
}

// TestTrafficLatencyDegradesThroughput: raising emulated NVM latency must
// reduce serving throughput for the same scenario — the core Quartz claim
// carried into the serving characterization. The key space must spill the
// scaled L3 (see trafficValueBytes) or there are no NVM-attributable stalls
// to slow down, so this test sizes it up from tiny.
func TestTrafficLatencyDegradesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real traffic scenarios")
	}
	s := tiny
	s.TrafficPreload = 32_000
	s.TrafficOps = 20
	s.TrafficWarmup = 4
	fast, err := trafficRun(s, "read-mostly", 200, 8, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := trafficRun(s, "read-mostly", 2000, 8, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if slow.OpsPerSec >= fast.OpsPerSec {
		t.Errorf("2000ns NVM throughput %.0f not below 200ns %.0f", slow.OpsPerSec, fast.OpsPerSec)
	}
}
