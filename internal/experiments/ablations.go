package experiments

import (
	"strconv"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/stats"
)

// ModelAblation contrasts the paper's Eq. 2 stall model against the naive
// Eq. 1 reference-count model (Fig. 2's motivation): under memory-level
// parallelism, Eq. 1 over-delays by roughly the MLP factor.
func ModelAblation(s Scale) (Table, error) {
	t := Table{
		ID:     "model-ablation",
		Title:  "Eq. 2 (stall) vs Eq. 1 (simple) latency model under MLP (Fig. 2, Ivy Bridge)",
		Header: []string{"Chains", "Conf_2 CT ms", "Eq.2 CT ms (err)", "Eq.1 CT ms (err)"},
	}
	for _, chains := range []int{1, 4, 8} {
		mlCfg := bench.MemLatConfig{
			Lines: s.Lines / 2, Chains: chains, Iters: s.MemLatIters, Seed: 21,
		}
		phys, err := runMemLat(bench.EnvConfig{Preset: machine.XeonE5_2660v2, Mode: bench.PhysicalRemote}, mlCfg)
		if err != nil {
			return Table{}, err
		}
		runModel := func(m core.Model) (sim.Time, error) {
			q := quartzConfig(bench.RemoteLatNS(machine.XeonE5_2660v2))
			q.Model = m
			res, err := runMemLat(bench.EnvConfig{
				Preset: machine.XeonE5_2660v2, Mode: bench.Emulated, Quartz: q,
			}, mlCfg)
			return res.CT, err
		}
		eq2, err := runModel(core.ModelStall)
		if err != nil {
			return Table{}, err
		}
		eq1, err := runModel(core.ModelSimple)
		if err != nil {
			return Table{}, err
		}
		fmtCT := func(ct sim.Time) string {
			return f2(ct.Milliseconds()) + " (" + pct(stats.RelErr(float64(ct), float64(phys.CT))) + ")"
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(chains), f2(phys.CT.Milliseconds()), fmtCT(eq2), fmtCT(eq1),
		})
	}
	t.Notes = append(t.Notes, "Eq. 1 ignores MLP and over-delays parallel chains by about the chain count")
	return t, nil
}

// PCommitAblation contrasts the §3.1 serialized pflush write model against
// the §6 clflushopt+pcommit extension on a persistent-object initialization
// workload: independent field writes within an object can proceed in
// parallel under pcommit.
func PCommitAblation(s Scale) (Table, error) {
	t := Table{
		ID:     "pcommit",
		Title:  "Serialized pflush vs clflushopt+pcommit write model (§6, Ivy Bridge)",
		Header: []string{"Fields/object", "pflush CT ms", "pcommit CT ms", "Speedup"},
	}
	objects := s.KVOps // reuse the scale knob: one "object" per op
	for _, fields := range []int{2, 4, 8, 16} {
		run := func(usePCommit bool) (sim.Time, error) {
			q := quartzConfig(500)
			q.WriteLatency = sim.FromNanos(500)
			env, err := bench.NewEnv(bench.EnvConfig{
				Preset: machine.XeonE5_2660v2, Mode: bench.Emulated, Quartz: q,
			})
			if err != nil {
				return 0, err
			}
			var ct sim.Time
			err = env.Run(func(e *bench.Env, th *simos.Thread) {
				base, err := e.Emu.PMalloc(uintptr(objects*fields) * 64)
				if err != nil {
					th.Failf("pmalloc: %v", err)
				}
				start := th.Now()
				for o := 0; o < objects; o++ {
					objBase := base + uintptr(o*fields)*64
					for f := 0; f < fields; f++ {
						addr := objBase + uintptr(f)*64
						th.Store(addr)
						if usePCommit {
							e.Emu.PFlushOpt(th, addr)
						} else {
							e.Emu.PFlush(th, addr)
						}
					}
					if usePCommit {
						e.Emu.PCommit(th)
					}
				}
				e.CloseEpoch(th)
				ct = th.Now() - start
			})
			return ct, err
		}
		serialized, err := run(false)
		if err != nil {
			return Table{}, err
		}
		parallel, err := run(true)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(fields),
			f2(serialized.Milliseconds()), f2(parallel.Milliseconds()),
			f2(float64(serialized) / float64(parallel)),
		})
	}
	t.Notes = append(t.Notes, "pcommit discounts write delays that complete before the barrier (§6)")
	return t, nil
}

// AmortizationAblation contrasts the §3.2 overhead carry-over against a
// build with amortization disabled, on a latency-bound chase: without
// discounting, the epoch-processing overhead inflates the emulated latency.
func AmortizationAblation(s Scale) (Table, error) {
	t := Table{
		ID:     "amortization",
		Title:  "Overhead amortization (carry-over) ablation (§3.2, Ivy Bridge)",
		Header: []string{"Amortization", "Target ns", "Measured ns", "Error"},
	}
	const target = 300.0
	for _, disabled := range []bool{false, true} {
		q := quartzConfig(target)
		q.DisableAmortization = disabled
		q.MaxEpoch = 500 * sim.Microsecond // frequent epochs make overhead visible
		var lats []sim.Time
		for trial := 0; trial < s.Trials; trial++ {
			res, err := runMemLat(bench.EnvConfig{
				Preset: machine.XeonE5_2660v2, Mode: bench.Emulated, Quartz: q,
			}, bench.MemLatConfig{
				Lines: s.Lines, Chains: 1, Iters: s.MemLatIters, Seed: int64(trial + 31),
			})
			if err != nil {
				return Table{}, trialErr("amortization", trial, err)
			}
			lats = append(lats, res.PerIteration)
		}
		mean := stats.Summarize(nanos(lats)).Mean
		label := "on (paper)"
		if disabled {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{label, f1(target), f1(mean), pct(stats.RelErr(mean, target))})
	}
	return t, nil
}
