package experiments

import (
	"strconv"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/stats"
)

// modelAblationChains are the MLP degrees of the Eq. 1 vs Eq. 2 contrast.
var modelAblationChains = []int{1, 4, 8}

// modelAblationJobs decomposes the latency-model ablation into one job per
// chain count; each runs the physical reference and both model variants.
func modelAblationJobs(s Scale) JobSet {
	js := JobSet{ID: "model-ablation"}
	for _, chains := range modelAblationChains {
		js.Jobs = append(js.Jobs, Job{
			Name:   "chains=" + strconv.Itoa(chains),
			Params: map[string]string{"chains": strconv.Itoa(chains)},
			Run: func() (Metrics, error) {
				mlCfg := bench.MemLatConfig{
					Lines: s.Lines / 2, Chains: chains, Iters: s.MemLatIters, Seed: 21,
				}
				runModel := func(m core.Model) (sim.Time, error) {
					q := quartzConfig(bench.RemoteLatNS(machine.XeonE5_2660v2))
					q.Model = m
					res, err := runMemLat(bench.EnvConfig{
						Preset: machine.XeonE5_2660v2, Mode: bench.Emulated, Quartz: q,
					}, mlCfg)
					return res.CT, err
				}
				// The physical reference and the two model variants are three
				// independent simulations — parallel units under
				// -trial-parallel.
				var cts [3]sim.Time
				err := runUnits(s, 3, func(u int) error {
					switch u {
					case 0:
						phys, err := runMemLat(bench.EnvConfig{Preset: machine.XeonE5_2660v2, Mode: bench.PhysicalRemote}, mlCfg)
						cts[0] = phys.CT
						return err
					case 1:
						eq2, err := runModel(core.ModelStall)
						cts[1] = eq2
						return err
					default:
						eq1, err := runModel(core.ModelSimple)
						cts[2] = eq1
						return err
					}
				})
				if err != nil {
					return nil, err
				}
				return Metrics{
					"phys_ct_ns": cts[0].Nanoseconds(),
					"eq2_ct_ns":  cts[1].Nanoseconds(),
					"eq1_ct_ns":  cts[2].Nanoseconds(),
				}, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "model-ablation",
			Title:  "Eq. 2 (stall) vs Eq. 1 (simple) latency model under MLP (Fig. 2, Ivy Bridge)",
			Header: []string{"Chains", "Conf_2 CT ms", "Eq.2 CT ms (err)", "Eq.1 CT ms (err)"},
		}
		for i, chains := range modelAblationChains {
			phys := points[i]["phys_ct_ns"]
			fmtCT := func(ctNS float64) string {
				return f2(ctNS/1e6) + " (" + pct(stats.RelErr(ctNS, phys)) + ")"
			}
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(chains), f2(phys / 1e6),
				fmtCT(points[i]["eq2_ct_ns"]), fmtCT(points[i]["eq1_ct_ns"]),
			})
		}
		t.Notes = append(t.Notes, "Eq. 1 ignores MLP and over-delays parallel chains by about the chain count")
		return t, nil
	}
	return js
}

// ModelAblation contrasts the paper's Eq. 2 stall model against the naive
// Eq. 1 reference-count model (Fig. 2's motivation): under memory-level
// parallelism, Eq. 1 over-delays by roughly the MLP factor.
func ModelAblation(s Scale) (Table, error) { return modelAblationJobs(s).runSerial() }

// pcommitFieldCounts are the per-object field counts of the §6 contrast.
var pcommitFieldCounts = []int{2, 4, 8, 16}

// pcommitAblationJobs decomposes the write-model ablation into one job per
// field count; each runs the serialized-pflush and pcommit variants.
func pcommitAblationJobs(s Scale) JobSet {
	js := JobSet{ID: "pcommit"}
	objects := s.KVOps // reuse the scale knob: one "object" per op
	for _, fields := range pcommitFieldCounts {
		js.Jobs = append(js.Jobs, Job{
			Name:   "fields=" + strconv.Itoa(fields),
			Params: map[string]string{"fields": strconv.Itoa(fields)},
			Run: func() (Metrics, error) {
				run := func(usePCommit bool) (sim.Time, error) {
					q := quartzConfig(500)
					q.WriteLatency = sim.FromNanos(500)
					env, err := bench.NewEnv(bench.EnvConfig{
						Preset: machine.XeonE5_2660v2, Mode: bench.Emulated, Quartz: q,
					})
					if err != nil {
						return 0, err
					}
					var ct sim.Time
					err = env.Run(func(e *bench.Env, th *simos.Thread) {
						base, err := e.Emu.PMalloc(uintptr(objects*fields) * 64)
						if err != nil {
							th.Failf("pmalloc: %v", err)
						}
						start := th.Now()
						for o := 0; o < objects; o++ {
							objBase := base + uintptr(o*fields)*64
							for f := 0; f < fields; f++ {
								addr := objBase + uintptr(f)*64
								th.Store(addr)
								if usePCommit {
									e.Emu.PFlushOpt(th, addr)
								} else {
									e.Emu.PFlush(th, addr)
								}
							}
							if usePCommit {
								e.Emu.PCommit(th)
							}
						}
						e.CloseEpoch(th)
						ct = th.Now() - start
					})
					return ct, err
				}
				// The serialized and pcommit variants are independent
				// simulations — parallel units under -trial-parallel.
				var cts [2]sim.Time
				err := runUnits(s, 2, func(u int) error {
					ct, err := run(u == 1)
					cts[u] = ct
					return err
				})
				if err != nil {
					return nil, err
				}
				return Metrics{
					"pflush_ct_ns":  cts[0].Nanoseconds(),
					"pcommit_ct_ns": cts[1].Nanoseconds(),
				}, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "pcommit",
			Title:  "Serialized pflush vs clflushopt+pcommit write model (§6, Ivy Bridge)",
			Header: []string{"Fields/object", "pflush CT ms", "pcommit CT ms", "Speedup"},
		}
		for i, fields := range pcommitFieldCounts {
			serialized := points[i]["pflush_ct_ns"]
			parallel := points[i]["pcommit_ct_ns"]
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(fields),
				f2(serialized / 1e6), f2(parallel / 1e6),
				f2(serialized / parallel),
			})
		}
		t.Notes = append(t.Notes, "pcommit discounts write delays that complete before the barrier (§6)")
		return t, nil
	}
	return js
}

// PCommitAblation contrasts the §3.1 serialized pflush write model against
// the §6 clflushopt+pcommit extension on a persistent-object initialization
// workload: independent field writes within an object can proceed in
// parallel under pcommit.
func PCommitAblation(s Scale) (Table, error) { return pcommitAblationJobs(s).runSerial() }

// amortizationTarget is the emulated latency of the carry-over ablation.
const amortizationTarget = 300.0

// amortizationAblationJobs decomposes the carry-over ablation into one job
// per amortization setting (on/off).
func amortizationAblationJobs(s Scale) JobSet {
	js := JobSet{ID: "amortization"}
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		js.Jobs = append(js.Jobs, Job{
			Name:   "amortization=" + name,
			Params: map[string]string{"amortization": name},
			Run: func() (Metrics, error) {
				q := quartzConfig(amortizationTarget)
				q.DisableAmortization = disabled
				q.MaxEpoch = 500 * sim.Microsecond // frequent epochs make overhead visible
				lats := make([]sim.Time, s.Trials)
				err := runUnits(s, s.Trials, func(trial int) error {
					res, err := runMemLat(bench.EnvConfig{
						Preset: machine.XeonE5_2660v2, Mode: bench.Emulated, Quartz: q,
					}, bench.MemLatConfig{
						Lines: s.Lines, Chains: 1, Iters: s.MemLatIters, Seed: int64(trial + 31),
					})
					if err != nil {
						return trialErr("amortization", trial, err)
					}
					lats[trial] = res.PerIteration
					return nil
				})
				if err != nil {
					return nil, err
				}
				return Metrics{"mean_ns": stats.Summarize(nanos(lats)).Mean}, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "amortization",
			Title:  "Overhead amortization (carry-over) ablation (§3.2, Ivy Bridge)",
			Header: []string{"Amortization", "Target ns", "Measured ns", "Error"},
		}
		for i, label := range []string{"on (paper)", "off"} {
			mean := points[i]["mean_ns"]
			t.Rows = append(t.Rows, []string{label, f1(amortizationTarget), f1(mean), pct(stats.RelErr(mean, amortizationTarget))})
		}
		return t, nil
	}
	return js
}

// AmortizationAblation contrasts the §3.2 overhead carry-over against a
// build with amortization disabled, on a latency-bound chase: without
// discounting, the epoch-processing overhead inflates the emulated latency.
func AmortizationAblation(s Scale) (Table, error) { return amortizationAblationJobs(s).runSerial() }
