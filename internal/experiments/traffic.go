package experiments

import (
	"fmt"
	"strconv"

	"github.com/quartz-emu/quartz/internal/apps/kvstore"
	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/workload"
)

// Traffic experiments: the ROADMAP's serving-system characterization. They
// are extensions (no paper counterpart): the paper validates batch figures,
// while these sweep YCSB-style serving traffic — client count x op mix x
// emulated NVM latency — against the KV store and report throughput,
// latency quantiles, and the saturation knee, the way the Empirical Guide
// characterizes Optane.

// trafficValueBytes matches the validation workload's payload size, keeping
// serving traffic memory-bound against the scaled L3 (see appMachine). For
// the NVM-latency dimension to bite, the touched working set — key space x
// two cache lines per value — must exceed kvL3Bytes, so meaningful scales
// keep TrafficPreload at ~32k keys or more.
const trafficValueBytes = 1024

// trafficSeed derives a scenario's base seed from its sweep coordinates, so
// every sweep point is decorrelated but fully reproducible.
func trafficSeed(mixIdx, latIdx, clients int) uint64 {
	return uint64(7_919 + mixIdx*1_000_003 + latIdx*10_007 + clients)
}

// trafficRun executes one traffic scenario in a fresh emulated environment:
// a zipfian-keyed, preloaded KV store served by a bounded pool under the
// given mix and client count. Epoch tuning matches kvRun (raised minimum
// epoch per §3.2 so sub-microsecond critical sections amortize).
func trafficRun(s Scale, mixName string, latNS float64, clients int, seed uint64, prof *vtprof.Profiler) (workload.ScenarioResult, error) {
	mix, ok := workload.MixByName(mixName)
	if !ok {
		return workload.ScenarioResult{}, fmt.Errorf("experiments: unknown traffic mix %q (known: %v)",
			mixName, workload.PresetNames())
	}
	q := quartzConfig(latNS)
	if q.MinEpoch < 50*sim.Microsecond {
		q.MinEpoch = 50 * sim.Microsecond
	}
	env, err := bench.NewEnv(bench.EnvConfig{
		Preset: machine.XeonE5_2450, Machine: appMachine(machine.XeonE5_2450, kvL3Bytes),
		Mode: bench.Emulated, Quartz: q,
		Lookahead: 2 * sim.Microsecond,
		Profiler:  prof,
	})
	if err != nil {
		return workload.ScenarioResult{}, err
	}
	alloc := func(size uintptr) (uintptr, error) {
		return env.Proc.MallocOnNode(size, env.AllocNode())
	}
	store, err := kvstore.New(env.Proc, kvstore.Config{Partitions: 16, Alloc: alloc})
	if err != nil {
		return workload.ScenarioResult{}, err
	}
	keySpace := uint64(s.TrafficPreload)
	target, err := kvstore.NewTrafficTarget(store, keySpace, trafficValueBytes, alloc)
	if err != nil {
		return workload.ScenarioResult{}, err
	}
	keys, err := workload.NewZipfian(keySpace, workload.DefaultTheta, true)
	if err != nil {
		return workload.ScenarioResult{}, err
	}
	var res workload.ScenarioResult
	err = env.Run(func(e *bench.Env, th *simosThread) {
		if perr := target.Preload(th, keySpace); perr != nil {
			th.Failf("%v", perr)
		}
		var rerr error
		res, rerr = workload.RunScenario(th, target, workload.ScenarioConfig{
			Name:        fmt.Sprintf("%s/lat=%.0fns/clients=%d", mixName, latNS, clients),
			Clients:     clients,
			PoolThreads: s.TrafficPool,
			WarmupOps:   s.TrafficWarmup,
			MeasureOps:  s.TrafficOps,
			Keys:        keys,
			Mix:         mix,
			Seed:        seed,
			CloseEpoch:  e.CloseEpoch,
			Obs:         obs.Default(),
		})
		if rerr != nil {
			th.Failf("%v", rerr)
		}
	})
	return res, err
}

// trafficMetrics flattens a scenario result into job metrics.
func trafficMetrics(res workload.ScenarioResult) Metrics {
	p50, p95, p99 := res.Quantiles()
	return Metrics{
		"ops_per_sec": res.OpsPerSec,
		"p50_ns":      p50,
		"p95_ns":      p95,
		"p99_ns":      p99,
		"reads":       float64(res.Counts[workload.OpRead]),
		"updates":     float64(res.Counts[workload.OpUpdate]),
		"scans":       float64(res.Counts[workload.OpScan]),
		"ct_ms":       res.CT.Milliseconds(),
	}
}

// trafficSweepJobs decomposes traffic-sweep into one job per
// (mix, NVM latency, client count) cell. The assembler rebuilds each
// (mix, latency) series positionally and runs knee/SLO-breach detection over
// its client sweep, so the table is byte-identical for any worker count.
func trafficSweepJobs(s Scale) JobSet {
	js := JobSet{ID: "traffic-sweep"}
	for mi, mixName := range s.TrafficMixes {
		for li, latNS := range s.TrafficLatsNS {
			for _, clients := range s.TrafficClients {
				mixName, latNS, clients := mixName, latNS, clients
				seed := trafficSeed(mi, li, clients)
				js.Jobs = append(js.Jobs, Job{
					Name: fmt.Sprintf("%s/lat=%.0fns/clients=%d", mixName, latNS, clients),
					Params: map[string]string{
						"mix": mixName, "lat_ns": fmt.Sprintf("%.0f", latNS),
						"clients": strconv.Itoa(clients),
					},
					Run: func() (Metrics, error) {
						name := fmt.Sprintf("%s/lat=%.0fns/clients=%d", mixName, latNS, clients)
						res, err := trafficRun(s, mixName, latNS, clients, seed, s.profiler(js.ID, name))
						if err != nil {
							return nil, fmt.Errorf("traffic-sweep %s lat=%.0f clients=%d: %w",
								mixName, latNS, clients, err)
						}
						return trafficMetrics(res), nil
					},
				})
			}
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "traffic-sweep",
			Title:  "Serving traffic: throughput/latency vs client count, op mix, NVM latency (extension)",
			Header: []string{"Mix", "NVM lat", "Clients", "ops/s", "p50 ns", "p95 ns", "p99 ns", "Knee"},
		}
		i := 0
		for _, mixName := range s.TrafficMixes {
			for _, latNS := range s.TrafficLatsNS {
				series := make([]workload.SLOPoint, 0, len(s.TrafficClients))
				for _, clients := range s.TrafficClients {
					p := points[i]
					i++
					series = append(series, workload.SLOPoint{
						Clients: clients, OpsPerSec: p["ops_per_sec"],
						P50: p["p50_ns"], P95: p["p95_ns"], P99: p["p99_ns"],
					})
				}
				rep := workload.NewSLOReport("traffic-sweep", mixName, series)
				for pi, sp := range series {
					mark := ""
					if pi == rep.KneeIdx {
						mark = "<-"
					}
					t.Rows = append(t.Rows, []string{
						mixName, fmt.Sprintf("%.0fns", latNS), strconv.Itoa(sp.Clients),
						fmt.Sprintf("%.0f", sp.OpsPerSec),
						fmt.Sprintf("%.0f", sp.P50), fmt.Sprintf("%.0f", sp.P95), fmt.Sprintf("%.0f", sp.P99),
						mark,
					})
				}
				t.Notes = append(t.Notes, fmt.Sprintf("lat=%.0fns %s", latNS, rep.Summary()))
			}
		}
		t.Notes = append(t.Notes,
			"extension (no paper counterpart): YCSB-style serving characterization of the emulated store",
			"latency is response time (completion - due): it includes pool queueing, which is what bends the knee")
		return t, nil
	}
	return js
}

// TrafficSweep runs the traffic-sweep experiment serially.
func TrafficSweep(s Scale) (Table, error) { return trafficSweepJobs(s).runSerial() }

// trafficSLOJobs decomposes traffic-slo: one job per mix at the sweep's
// largest client count and lowest NVM latency, reporting the per-op-kind
// breakdown (counts and p99) behind the aggregate SLO.
func trafficSLOJobs(s Scale) JobSet {
	js := JobSet{ID: "traffic-slo"}
	clients := s.TrafficClients[len(s.TrafficClients)-1]
	latNS := s.TrafficLatsNS[0]
	for mi, mixName := range s.TrafficMixes {
		mixName := mixName
		seed := trafficSeed(mi, 0, clients)
		js.Jobs = append(js.Jobs, Job{
			Name: fmt.Sprintf("%s/clients=%d", mixName, clients),
			Params: map[string]string{
				"mix": mixName, "lat_ns": fmt.Sprintf("%.0f", latNS),
				"clients": strconv.Itoa(clients),
			},
			Run: func() (Metrics, error) {
				name := fmt.Sprintf("%s/clients=%d", mixName, clients)
				res, err := trafficRun(s, mixName, latNS, clients, seed, s.profiler(js.ID, name))
				if err != nil {
					return nil, fmt.Errorf("traffic-slo %s: %w", mixName, err)
				}
				m := trafficMetrics(res)
				for k := 0; k < workload.NumOpKinds; k++ {
					kind := workload.OpKind(k)
					snap := res.Lat.Kind[k].Snapshot()
					m[kind.String()+"_p99_ns"] = snap.P99
				}
				return m, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:    "traffic-slo",
			Title: fmt.Sprintf("Per-op-kind SLO breakdown at %d clients, %.0fns NVM (extension)", clients, latNS),
			Header: []string{"Mix", "ops/s", "reads", "updates", "scans",
				"read p99 ns", "update p99 ns", "scan p99 ns"},
		}
		for i, mixName := range s.TrafficMixes {
			p := points[i]
			t.Rows = append(t.Rows, []string{
				mixName,
				fmt.Sprintf("%.0f", p["ops_per_sec"]),
				fmt.Sprintf("%.0f", p["reads"]), fmt.Sprintf("%.0f", p["updates"]), fmt.Sprintf("%.0f", p["scans"]),
				fmt.Sprintf("%.0f", p["read_p99_ns"]), fmt.Sprintf("%.0f", p["update_p99_ns"]), fmt.Sprintf("%.0f", p["scan_p99_ns"]),
			})
		}
		t.Notes = append(t.Notes,
			"extension (no paper counterpart): scans aggregate many node visits, so their p99 dominates mixed blends")
		return t, nil
	}
	return js
}

// TrafficSLO runs the traffic-slo experiment serially.
func TrafficSLO(s Scale) (Table, error) { return trafficSLOJobs(s).runSerial() }

// trafficMegaJobs decomposes traffic-mega: the scheduler-scale sweep, one
// job per client count up to 2^20 simulated clients (Full scale). Each point
// serves the read-mostly mix closed-loop at the lowest NVM latency with a
// small per-client quota, so total op count — and simulated work — grows
// linearly with the client axis while the engine's flat client state keeps
// host memory at ~24 bytes per client. The point of the experiment is the
// engine itself: a client count where a linear next-due scan would spend
// ~owned/2 comparisons per op is served at O(1) per pick by the FIFO ring
// (see internal/workload/sched.go).
func trafficMegaJobs(s Scale) JobSet {
	js := JobSet{ID: "traffic-mega"}
	const mixName = "read-mostly"
	latNS := s.TrafficLatsNS[0]
	// Rebase the per-client quotas: trafficRun sizes scenarios from
	// TrafficOps/TrafficWarmup, which the mega sweep overrides.
	ms := s
	ms.TrafficOps = s.TrafficMegaOps
	ms.TrafficWarmup = s.TrafficMegaWarmup
	for _, clients := range s.TrafficMegaClients {
		clients := clients
		// Decorrelated from the traffic-sweep seeds by a mega-only offset.
		seed := trafficSeed(0, 0, clients) + 0x6d656761
		js.Jobs = append(js.Jobs, Job{
			Name: fmt.Sprintf("clients=%d", clients),
			Params: map[string]string{
				"mix": mixName, "lat_ns": fmt.Sprintf("%.0f", latNS),
				"clients": strconv.Itoa(clients),
			},
			Run: func() (Metrics, error) {
				name := fmt.Sprintf("clients=%d", clients)
				res, err := trafficRun(ms, mixName, latNS, clients, seed, s.profiler(js.ID, name))
				if err != nil {
					return nil, fmt.Errorf("traffic-mega clients=%d: %w", clients, err)
				}
				return trafficMetrics(res), nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "traffic-mega",
			Title:  fmt.Sprintf("Serving scale: %s at %.0fns NVM up to 2^20 clients (extension)", mixName, latNS),
			Header: []string{"Clients", "ops/s", "p50 ns", "p95 ns", "p99 ns", "CT ms"},
		}
		for i, clients := range s.TrafficMegaClients {
			p := points[i]
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(clients),
				fmt.Sprintf("%.0f", p["ops_per_sec"]),
				fmt.Sprintf("%.0f", p["p50_ns"]), fmt.Sprintf("%.0f", p["p95_ns"]), fmt.Sprintf("%.0f", p["p99_ns"]),
				fmt.Sprintf("%.0f", p["ct_ms"]),
			})
		}
		t.Notes = append(t.Notes,
			"extension (no paper counterpart): stresses the engine's O(1)/O(log n) client scheduling, not the store",
			fmt.Sprintf("per-client quota: %d measured + %d warmup ops; pool=%d threads",
				ms.TrafficOps, ms.TrafficWarmup, s.TrafficPool),
			"closed-loop zero-think: response time grows ~linearly with clients/pool (every client queues once per round)")
		return t, nil
	}
	return js
}

// TrafficMega runs the traffic-mega experiment serially.
func TrafficMega(s Scale) (Table, error) { return trafficMegaJobs(s).runSerial() }
