package experiments

import (
	"fmt"
	"strconv"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/stats"
)

// asymProfileList resolves the scale's profile selection against the
// machine.NVMProfile registry, applying the -write-latency override.
func asymProfileList(s Scale) ([]machine.NVMProfile, error) {
	names := s.AsymProfiles
	if len(names) == 0 {
		names = machine.NVMProfileNames()
	}
	profiles := make([]machine.NVMProfile, 0, len(names))
	for _, name := range names {
		p, err := machine.NVMProfileByName(name)
		if err != nil {
			return nil, err
		}
		if s.AsymWriteLatNS > 0 {
			p.WriteLatency = sim.FromNanos(s.AsymWriteLatNS)
		}
		profiles = append(profiles, p)
	}
	return profiles, nil
}

// errorJobSet surfaces a decomposition-time error (an unknown profile name)
// through the normal job machinery so every driver reports it identically.
func errorJobSet(id string, err error) JobSet {
	return JobSet{
		ID:   id,
		Jobs: []Job{{Name: "decompose", Run: func() (Metrics, error) { return nil, err }}},
		Assemble: func([]Metrics) (Table, error) {
			return Table{}, err
		},
	}
}

// asymQuartz is the emulator configuration of the asymmetric latency sweeps:
// the profile's read latency drives the stall model and its write latency the
// store-side model. Bandwidth caps are deliberately left off — fig12-asym is
// a latency validation, and keeping it latency-bound isolates the two knobs.
func asymQuartz(p machine.NVMProfile) core.Config {
	cfg := quartzConfig(p.ReadLatency.Nanoseconds())
	cfg.NVMWriteLatency = p.WriteLatency
	return cfg
}

// writeFloorNS is the smallest emulatable store latency: the emulator delays
// stores, it cannot accelerate DRAM, so the effective write target is
// max(profile write latency, local DRAM latency).
func writeFloorNS(pr presetRow, p machine.NVMProfile) float64 {
	dram := machine.PresetConfig(pr.preset).LocalLat.Nanoseconds()
	if w := p.WriteLatency.Nanoseconds(); w > dram {
		return w
	}
	return dram
}

// runStoreLat builds and runs one streaming-store trial in a fresh emulated
// environment, flushing the trailing epoch delay into the completion time.
func runStoreLat(envCfg bench.EnvConfig, slCfg bench.StoreLatConfig) (bench.StoreLatResult, error) {
	env, err := bench.NewEnv(envCfg)
	if err != nil {
		return bench.StoreLatResult{}, err
	}
	slCfg.Node = env.AllocNode()
	sl, err := bench.BuildStoreLat(env.Proc, slCfg)
	if err != nil {
		return bench.StoreLatResult{}, err
	}
	var res bench.StoreLatResult
	err = env.Run(func(e *bench.Env, th *simos.Thread) {
		start := th.Now()
		r := sl.Run(th)
		e.CloseEpoch(th)
		r.CT = th.Now() - start
		res = r
	})
	return res, err
}

// fig12AsymJobs decomposes the asymmetric-latency validation into one job per
// (family, NVM profile). Each job measures three quantities from independent
// units — the read latency via a single-chain MemLat chase under the full
// asymmetric configuration, and the store latency via a paired streaming-store
// kernel run with the store model off (baseline) and on — and reports the
// means. The emulated store latency is recovered from the pair as
// DRAM + (CT_asym - CT_base) / store_misses: stores are posted, so the whole
// write term arrives through the per-epoch injection the pair isolates.
func fig12AsymJobs(s Scale) JobSet {
	const id = "fig12-asym"
	profiles, perr := asymProfileList(s)
	if perr != nil {
		return errorJobSet(id, perr)
	}
	js := JobSet{ID: id}
	prs := presetRows()
	for _, pr := range prs {
		for _, prof := range profiles {
			pr, prof := pr, prof
			js.Jobs = append(js.Jobs, Job{
				Name: fmt.Sprintf("%s/%s", pr.label, prof.Name),
				Params: map[string]string{
					"family": pr.label, "profile": prof.Name,
					"read_ns":  fmt.Sprintf("%.0f", prof.ReadLatency.Nanoseconds()),
					"write_ns": fmt.Sprintf("%.0f", prof.WriteLatency.Nanoseconds()),
				},
				Run: func() (Metrics, error) {
					// Unit u is trial u/3; kind u%3 selects the read chase
					// (0), the write baseline (1) or the asymmetric write
					// run (2). All are independent simulations writing to
					// positional slots.
					reads := make([]sim.Time, s.Trials)
					base := make([]sim.Time, s.Trials)
					asym := make([]sim.Time, s.Trials)
					stores := int64(s.AsymLines)
					err := runUnits(s, 3*s.Trials, func(u int) error {
						trial := u / 3
						switch u % 3 {
						case 0:
							res, err := runMemLat(bench.EnvConfig{
								Preset: pr.preset, Mode: bench.Emulated,
								Quartz: asymQuartz(prof),
							}, bench.MemLatConfig{
								Lines: s.Lines / 4, Chains: 1, Iters: s.MemLatIters,
								Seed: int64(trial*17 + 3),
							})
							if err != nil {
								return trialErr("fig12-asym read", trial, err)
							}
							reads[trial] = res.PerIteration
						case 1:
							q := asymQuartz(prof)
							q.NVMWriteLatency = 0 // store model off: the subtraction baseline
							res, err := runStoreLat(bench.EnvConfig{
								Preset: pr.preset, Mode: bench.Emulated, Quartz: q,
							}, bench.StoreLatConfig{Lines: s.AsymLines})
							if err != nil {
								return trialErr("fig12-asym write base", trial, err)
							}
							base[trial] = res.CT
						default:
							res, err := runStoreLat(bench.EnvConfig{
								Preset: pr.preset, Mode: bench.Emulated, Quartz: asymQuartz(prof),
							}, bench.StoreLatConfig{Lines: s.AsymLines})
							if err != nil {
								return trialErr("fig12-asym write asym", trial, err)
							}
							asym[trial] = res.CT
						}
						return nil
					})
					if err != nil {
						return nil, err
					}
					dram := machine.PresetConfig(pr.preset).LocalLat.Nanoseconds()
					writes := make([]float64, s.Trials)
					for t := 0; t < s.Trials; t++ {
						writes[t] = dram + (asym[t]-base[t]).Nanoseconds()/float64(stores)
					}
					return Metrics{
						"read_ns":  stats.Summarize(nanos(reads)).Mean,
						"write_ns": stats.Summarize(writes).Mean,
					}, nil
				},
			})
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:    id,
			Title: "Asymmetric model: emulated read vs store latency per NVM profile",
			Header: []string{"Family", "Profile", "Read tgt ns", "Read ns", "Read err",
				"Write tgt ns", "Write ns", "Write err", "W/R"},
		}
		i := 0
		for _, pr := range prs {
			for _, prof := range profiles {
				m := points[i]
				i++
				wTgt := writeFloorNS(pr, prof)
				t.Rows = append(t.Rows, []string{
					pr.label, prof.Name,
					f1(prof.ReadLatency.Nanoseconds()), f1(m["read_ns"]),
					pct(stats.RelErr(m["read_ns"], prof.ReadLatency.Nanoseconds())),
					f1(wTgt), f1(m["write_ns"]),
					pct(stats.RelErr(m["write_ns"], wTgt)),
					f2(m["write_ns"] / m["read_ns"]),
				})
			}
		}
		t.Notes = append(t.Notes,
			"write target floors at local DRAM latency: the emulator delays stores, it cannot speed DRAM up (Optane's 94 ns ADR store target clamps to the floor)",
			"W/R < 1: writes faster than reads (Optane); W/R > 1: classic write-penalty asymmetry (PCM)")
		if s.AsymWriteLatNS > 0 {
			t.Notes = append(t.Notes,
				fmt.Sprintf("profile write latencies overridden to %.0f ns (-write-latency)", s.AsymWriteLatNS))
		}
		return t, nil
	}
	return js
}

// Fig12Asym validates the asymmetric read/write latency model: for each
// testbed and NVM profile it reports the emulated read latency (MemLat) and
// the emulated store latency (paired streaming-store kernel) against the
// profile targets.
func Fig12Asym(s Scale) (Table, error) { return fig12AsymJobs(s).runSerial() }

// fig11AsymPreset is the testbed the bandwidth-collapse sweep runs on; Ivy
// Bridge is the paper's most accurate testbed and the reference elsewhere.
var fig11AsymPreset = presetRow{machine.XeonE5_2660v2, "Ivy Bridge"}

// fig11AsymJobs decomposes the write-bandwidth-collapse sweep into one job
// per (profile, writer count): each spawns that many store+flush writer
// threads under the profile's full configuration — read/write bandwidth caps,
// access-granularity amplification, and the write-bandwidth-by-threads curve
// reprogramming the throttle as writers register — and reports the aggregate
// application-visible write throughput.
func fig11AsymJobs(s Scale) JobSet {
	const id = "fig11-asym"
	profiles, perr := asymProfileList(s)
	if perr != nil {
		return errorJobSet(id, perr)
	}
	js := JobSet{ID: id}
	pr := fig11AsymPreset
	for _, prof := range profiles {
		for _, writers := range s.AsymWriters {
			prof, writers := prof, writers
			js.Jobs = append(js.Jobs, Job{
				Name: fmt.Sprintf("%s/writers=%d", prof.Name, writers),
				Params: map[string]string{
					"profile": prof.Name, "writers": strconv.Itoa(writers),
				},
				Run: func() (Metrics, error) {
					bps := make([]float64, s.Trials)
					err := runUnits(s, s.Trials, func(trial int) error {
						mc := machine.PresetConfig(pr.preset)
						prof.ApplyToMem(&mc)
						q := asymQuartz(prof)
						q.NVMBandwidth = prof.ReadBandwidth
						q.NVMWriteBandwidth = prof.WriteBandwidth
						if curve := prof.WriteBandwidthByThreads; len(curve) > 0 {
							// The emulator's curve is indexed by registered
							// threads, which include the non-writing main
							// thread; prepend the 1-writer entry so T writer
							// threads (T+1 registered) land on curve[T-1].
							shifted := make([]float64, 0, len(curve)+1)
							shifted = append(shifted, curve[0])
							shifted = append(shifted, curve...)
							q.WriteBandwidthByThreads = shifted
						}
						env, err := bench.NewEnv(bench.EnvConfig{
							Preset: pr.preset, Machine: &mc, Mode: bench.Emulated,
							Quartz: q, Lookahead: 2 * sim.Microsecond,
						})
						if err != nil {
							return trialErr("fig11-asym", trial, err)
						}
						var res bench.StoreBWResult
						if err := env.Run(func(e *bench.Env, th *simosThread) {
							var rerr error
							res, rerr = bench.RunStoreBW(e, th, bench.StoreBWConfig{
								Writers: writers, Lines: s.AsymBWLines, Node: e.AllocNode(),
							})
							if rerr != nil {
								th.Failf("%v", rerr)
							}
						}); err != nil {
							return trialErr("fig11-asym", trial, err)
						}
						bps[trial] = res.AggBytesPerSec()
						return nil
					})
					if err != nil {
						return nil, err
					}
					return Metrics{"agg_bps": stats.Summarize(bps).Mean}, nil
				},
			})
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     id,
			Title:  fmt.Sprintf("Asymmetric model: write bandwidth vs writer threads (%s)", pr.label),
			Header: []string{"Profile", "Writers", "Agg GB/s", "Per-writer GB/s", "x 1-writer"},
		}
		i := 0
		for _, prof := range profiles {
			var oneWriter float64
			for w, writers := range s.AsymWriters {
				m := points[i]
				i++
				agg := m["agg_bps"] / 1e9
				if w == 0 {
					oneWriter = agg
				}
				ratio := 0.0
				if oneWriter > 0 {
					ratio = agg / oneWriter
				}
				t.Rows = append(t.Rows, []string{
					prof.Name, strconv.Itoa(writers),
					f2(agg), f2(agg / float64(writers)), f2(ratio),
				})
			}
		}
		t.Notes = append(t.Notes,
			"application-visible GB/s: each flushed 64 B line occupies the device for the profile's access granularity (256 B on Optane), so device traffic is up to 4x higher",
			"optane-dcpmm should rise, then collapse as the writer count passes the curve's peak; flat-bandwidth profiles saturate and plateau")
		return t, nil
	}
	return js
}

// Fig11Asym sweeps writer-thread counts through the store+flush kernel under
// the calibrated NVM profiles, demonstrating the Optane write-bandwidth
// collapse the per-thread throttle curve models.
func Fig11Asym(s Scale) (Table, error) { return fig11AsymJobs(s).runSerial() }
