package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment tables")

// TestGoldenTables pins the rendered output of representative experiments at
// tiny scale against committed golden files. Experiment tables are
// virtual-time measurements and must be byte-identical run to run — this is
// the determinism gate the hot-path optimizations are held to. Regenerate
// with `go test ./internal/experiments -run TestGoldenTables -update` and
// review the diff: any change means simulated timing changed.
func TestGoldenTables(t *testing.T) {
	// One latency sweep (epoch machinery, MemLat), one bandwidth sweep
	// (throttle registers, STREAM), one application (caches, prefetcher,
	// scheduler under multiple threads), and the two asymmetric-model sweeps
	// (store counters, write-stall injection, per-thread throttle curve).
	for _, id := range []string{"fig11", "fig8", "fig16", "fig11-asym", "fig12-asym"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, tiny)
			if err != nil {
				t.Fatal(err)
			}
			got := tab.Render()
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("rendered table differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}
