package experiments

import (
	"fmt"
	"strconv"

	"github.com/quartz-emu/quartz/internal/apps/kvstore"
	"github.com/quartz-emu/quartz/internal/apps/pagerank"
	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/stats"
)

// kvRun runs the key-value workload once in a fresh environment. The
// store's sub-microsecond critical sections would close a sync epoch every
// few operations at the default minimum epoch; per §3.2's tuning guidance
// the minimum epoch is raised until the epoch-creation overhead is
// amortizable (<4%), which the emulator's statistics feedback confirms.
func kvRun(s Scale, preset machine.Preset, mode bench.Mode, q core.Config, threads int, seed uint64, prof *vtprof.Profiler) (kvstore.WorkloadResult, error) {
	if q.MinEpoch != 0 && q.MinEpoch < 50*sim.Microsecond {
		q.MinEpoch = 50 * sim.Microsecond
	}
	env, err := bench.NewEnv(bench.EnvConfig{
		Preset: preset, Machine: appMachine(preset, kvL3Bytes), Mode: mode, Quartz: q,
		Lookahead: 2 * sim.Microsecond,
		Profiler:  prof,
	})
	if err != nil {
		return kvstore.WorkloadResult{}, err
	}
	alloc := func(size uintptr) (uintptr, error) {
		return env.Proc.MallocOnNode(size, env.AllocNode())
	}
	store, err := kvstore.New(env.Proc, kvstore.Config{Partitions: 16, Alloc: alloc})
	if err != nil {
		return kvstore.WorkloadResult{}, err
	}
	var res kvstore.WorkloadResult
	err = env.Run(func(e *bench.Env, th *simosThread) {
		var rerr error
		res, rerr = kvstore.RunWorkload(store, th, kvstore.WorkloadConfig{
			Preload: s.KVPreload, Threads: threads, OpsPerThread: s.KVOps,
			GetFraction: 0.5, Seed: seed,
			ValueBytes: 1024, ValueAlloc: alloc,
		}, e.CloseEpoch)
		if rerr != nil {
			th.Failf("%v", rerr)
		}
	})
	return res, err
}

// fig15Threads are the thread counts of Figure 15.
var fig15Threads = []int{1, 2, 4, 8}

// fig15Jobs decomposes Figure 15 into one job per (thread count, trial):
// each runs the paired physically-remote and emulated workloads with the
// same seed and reports the per-trial throughput errors.
func fig15Jobs(s Scale) JobSet {
	js := JobSet{ID: "fig15"}
	preset := machine.XeonE5_2450
	for _, threads := range fig15Threads {
		for trial := 0; trial < s.Trials; trial++ {
			js.Jobs = append(js.Jobs, Job{
				Name:   fmt.Sprintf("threads=%d/trial=%d", threads, trial),
				Params: map[string]string{"threads": strconv.Itoa(threads), "trial": strconv.Itoa(trial)},
				Run: func() (Metrics, error) {
					seed := uint64(trial*101 + threads)
					prof := s.profiler(js.ID, fmt.Sprintf("threads=%d/trial=%d", threads, trial))
					// The Conf_2 and Conf_1 runs are independent simulations
					// — parallel units under -trial-parallel; both fold into
					// the job's profiler (the fold is commutative).
					var phys, emu kvstore.WorkloadResult
					err := runUnits(s, 2, func(u int) error {
						if u == 0 {
							p, err := kvRun(s, preset, bench.PhysicalRemote, core.Config{}, threads, seed, prof)
							if err != nil {
								return trialErr("fig15 physical", trial, err)
							}
							phys = p
							return nil
						}
						e, err := kvRun(s, preset, bench.Emulated,
							quartzConfig(bench.RemoteLatNS(preset)), threads, seed, prof)
						if err != nil {
							return trialErr("fig15 emulated", trial, err)
						}
						emu = e
						return nil
					})
					if err != nil {
						return nil, err
					}
					return Metrics{
						"put_err": stats.RelErr(emu.PutsPerS, phys.PutsPerS),
						"get_err": stats.RelErr(emu.GetsPerS, phys.GetsPerS),
					}, nil
				},
			})
		}
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "fig15",
			Title:  "KV store (MassTree stand-in) validation errors (Fig. 15, Sandy Bridge)",
			Header: []string{"Threads", "put/s error", "get/s error"},
		}
		i := 0
		for _, threads := range fig15Threads {
			var putErrs, getErrs stats.Accumulator
			for trial := 0; trial < s.Trials; trial++ {
				putErrs.Add(points[i]["put_err"])
				getErrs.Add(points[i]["get_err"])
				i++
			}
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(threads),
				pct(putErrs.Summary().Mean),
				pct(getErrs.Summary().Mean),
			})
		}
		t.Notes = append(t.Notes, "paper: 2-8% across 1-8 threads")
		return t, nil
	}
	return js
}

// Fig15 reproduces Figure 15: the validation error of the key-value store's
// put/s and get/s throughput for 1-8 threads on Sandy Bridge, comparing
// Conf_1 (emulated) with Conf_2 (physically remote).
func Fig15(s Scale) (Table, error) { return fig15Jobs(s).runSerial() }

// prRun runs PageRank once in a fresh environment, reporting the kernel CT.
func prRun(s Scale, mode bench.Mode, q core.Config, seed uint64, prof *vtprof.Profiler) (pagerank.Result, error) {
	env, err := bench.NewEnv(bench.EnvConfig{
		Preset: machine.XeonE5_2450, Machine: appMachine(machine.XeonE5_2450, prL3Bytes),
		Mode: mode, Quartz: q,
		Profiler: prof,
	})
	if err != nil {
		return pagerank.Result{}, err
	}
	alloc := func(size uintptr) (uintptr, error) {
		return env.Proc.MallocOnNode(size, env.AllocNode())
	}
	g, err := pagerank.Generate(pagerank.GenerateConfig{
		Vertices: s.PRVertices, EdgesPerVertex: s.PREdgesPerVertex, Seed: seed,
	}, alloc)
	if err != nil {
		return pagerank.Result{}, err
	}
	var res pagerank.Result
	err = env.Run(func(e *bench.Env, th *simosThread) {
		cfg := pagerank.DefaultConfig()
		cfg.MaxIters = s.PRIters
		start := th.Now()
		r, rerr := pagerank.Run(g, th, cfg, alloc)
		if rerr != nil {
			th.Failf("%v", rerr)
		}
		e.CloseEpoch(th)
		r.CT = th.Now() - start
		res = r
	})
	return res, err
}

// pageRankValidationJobs decomposes the §4.7 validation into one job per
// trial, each running the paired Conf_2/Conf_1 executions with the same
// seed.
func pageRankValidationJobs(s Scale) JobSet {
	js := JobSet{ID: "pagerank-validate"}
	for trial := 0; trial < s.Trials; trial++ {
		js.Jobs = append(js.Jobs, Job{
			Name:   fmt.Sprintf("trial=%d", trial),
			Params: map[string]string{"trial": strconv.Itoa(trial)},
			Run: func() (Metrics, error) {
				seed := uint64(trial + 5)
				prof := s.profiler(js.ID, fmt.Sprintf("trial=%d", trial))
				// The Conf_2 and Conf_1 runs are independent simulations —
				// parallel units under -trial-parallel; both fold into the
				// job's profiler (the fold is commutative).
				var phys, emu pagerank.Result
				err := runUnits(s, 2, func(u int) error {
					if u == 0 {
						p, err := prRun(s, bench.PhysicalRemote, core.Config{}, seed, prof)
						if err != nil {
							return trialErr("pagerank physical", trial, err)
						}
						phys = p
						return nil
					}
					e, err := prRun(s, bench.Emulated, quartzConfig(bench.RemoteLatNS(machine.XeonE5_2450)), seed, prof)
					if err != nil {
						return trialErr("pagerank emulated", trial, err)
					}
					emu = e
					return nil
				})
				if err != nil {
					return nil, err
				}
				return Metrics{
					"phys_ct_ns": phys.CT.Nanoseconds(),
					"emu_ct_ns":  emu.CT.Nanoseconds(),
				}, nil
			},
		})
	}
	js.Assemble = func(points []Metrics) (Table, error) {
		t := Table{
			ID:     "pagerank-validate",
			Title:  "PageRank validation, Conf_1 vs Conf_2 (§4.7, Sandy Bridge)",
			Header: []string{"Conf_2 CT ms", "Conf_1 CT ms", "Error"},
		}
		var physs, emus stats.Accumulator
		for _, p := range points {
			physs.Add(p["phys_ct_ns"])
			emus.Add(p["emu_ct_ns"])
		}
		pm := physs.Summary().Mean
		em := emus.Summary().Mean
		t.Rows = append(t.Rows, []string{f2(pm / 1e6), f2(em / 1e6), pct(stats.RelErr(em, pm))})
		t.Notes = append(t.Notes, "paper: 2.9% on Sandy Bridge")
		return t, nil
	}
	return js
}

// PageRankValidation reproduces the §4.7 PageRank validation number: the
// error between emulated and physically-remote completion times (the paper
// reports 2.9% on Sandy Bridge).
func PageRankValidation(s Scale) (Table, error) { return pageRankValidationJobs(s).runSerial() }

// fig16Point is one sweep point of Figure 16: a label plus the emulator
// configuration it evaluates.
type fig16Point struct {
	sweep   string // "baseline", "latency" or "bandwidth"
	setting string
	q       core.Config
}

// fig16Points builds the Figure 16 sweep grid at scale s, baseline first.
func fig16Points(s Scale) []fig16Point {
	localNS := machine.PresetConfig(machine.XeonE5_2450).LocalLat.Nanoseconds()

	latPoints := []float64{100, 200, 300, 500, 1000, 2000}
	bwPoints := []float64{10e9, 5e9, 3e9, 1.5e9, 1e9, 0.5e9}
	if s.Sparse {
		latPoints = []float64{200, 1000, 2000}
		bwPoints = []float64{5e9, 1.5e9, 0.5e9}
	}

	points := []fig16Point{{sweep: "baseline", setting: "DRAM", q: quartzConfig(localNS)}}
	for _, lat := range latPoints {
		points = append(points, fig16Point{
			sweep: "latency", setting: fmt.Sprintf("%.0fns", lat), q: quartzConfig(lat),
		})
	}
	for _, bw := range bwPoints {
		q := quartzConfig(localNS)
		q.NVMBandwidth = bw
		points = append(points, fig16Point{
			sweep: "bandwidth", setting: fmt.Sprintf("%.1fGB/s", bw/1e9), q: q,
		})
	}
	return points
}

// fig16Jobs decomposes Figure 16 into two jobs per sweep point — the
// PageRank run and the KV-store run — so both applications sweep
// concurrently; the assembler normalizes every point against the baseline
// jobs.
func fig16Jobs(s Scale) JobSet {
	js := JobSet{ID: "fig16"}
	points := fig16Points(s)
	for _, pt := range points {
		js.Jobs = append(js.Jobs,
			Job{
				Name:   pt.sweep + "=" + pt.setting + "/pagerank",
				Params: map[string]string{"sweep": pt.sweep, "setting": pt.setting, "app": "pagerank"},
				Run: func() (Metrics, error) {
					name := pt.sweep + "=" + pt.setting + "/pagerank"
					pr, err := prRun(s, bench.Emulated, pt.q, 5, s.profiler(js.ID, name))
					if err != nil {
						return nil, fmt.Errorf("fig16 %s %s: %w", pt.sweep, pt.setting, err)
					}
					return Metrics{"pr_ct_ms": pr.CT.Milliseconds()}, nil
				},
			},
			Job{
				Name:   pt.sweep + "=" + pt.setting + "/kvstore",
				Params: map[string]string{"sweep": pt.sweep, "setting": pt.setting, "app": "kvstore"},
				Run: func() (Metrics, error) {
					name := pt.sweep + "=" + pt.setting + "/kvstore"
					kv, err := kvRun(s, machine.XeonE5_2450, bench.Emulated, pt.q, 4, 5, s.profiler(js.ID, name))
					if err != nil {
						return nil, fmt.Errorf("fig16 %s %s: %w", pt.sweep, pt.setting, err)
					}
					return Metrics{"kv_ops": kv.PutsPerS + kv.GetsPerS}, nil
				},
			},
		)
	}
	js.Assemble = func(pointsM []Metrics) (Table, error) {
		t := Table{
			ID:     "fig16",
			Title:  "Application sensitivity to NVM latency and bandwidth (Fig. 16, Sandy Bridge)",
			Header: []string{"Sweep", "Setting", "PageRank CT ms (x base)", "KV ops/s (frac of base)"},
		}
		basePR := pointsM[0]["pr_ct_ms"]
		baseKV := pointsM[1]["kv_ops"]
		t.Rows = append(t.Rows, []string{"baseline", "DRAM", f2(basePR) + " (1.00x)", fmt.Sprintf("%.0f (1.00)", baseKV)})
		for i, pt := range points {
			if i == 0 {
				continue
			}
			pr := pointsM[2*i]["pr_ct_ms"]
			kv := pointsM[2*i+1]["kv_ops"]
			t.Rows = append(t.Rows, []string{
				pt.sweep, pt.setting,
				fmt.Sprintf("%.2f (%.2fx)", pr, pr/basePR),
				fmt.Sprintf("%.0f (%.2f)", kv, kv/baseKV),
			})
		}
		t.Notes = append(t.Notes,
			"paper: at 200ns PageRank CT ~unchanged, KV throughput -15%; at 2us both degrade ~5x",
			"paper: bandwidth matters only below ~3GB/s (PageRank) / ~1.5GB/s (KV)")
		return t, nil
	}
	return js
}

// Fig16 reproduces Figure 16: PageRank completion time and KV-store
// throughput sensitivity to emulated NVM latency and bandwidth (Sandy
// Bridge; emulator-only predictions, as in the paper).
func Fig16(s Scale) (Table, error) { return fig16Jobs(s).runSerial() }
