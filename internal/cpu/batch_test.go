package cpu

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

// countersEqual compares the Table 1 counter state of two cores.
func countersEqual(t *testing.T, a, b *perf.Counters) {
	t.Helper()
	if a.TrueStallCycles() != b.TrueStallCycles() {
		t.Errorf("stall cycles diverged: %g vs %g", a.TrueStallCycles(), b.TrueStallCycles())
	}
	for _, e := range []perf.Event{perf.EventStallsL2Pending, perf.EventL3Hit, perf.EventL3MissLocal, perf.EventL3MissRemote} {
		va, erra := a.Read(e)
		vb, errb := b.Read(e)
		if (erra == nil) != (errb == nil) || va != vb {
			t.Errorf("counter %v diverged: %d (%v) vs %d (%v)", e, va, erra, vb, errb)
		}
	}
}

// TestLoadRunEquivalentToLoadLoop drives one core with individual dependent
// loads and a twin with the batched LoadRun over the same strided sequences.
// Total latency, final virtual time, perf counters and cache statistics must
// match exactly — LoadRun is the unrolled loop, batched.
func TestLoadRunEquivalentToLoadLoop(t *testing.T) {
	loop, _ := testCore(t, 4)
	run, _ := testCore(t, 4)

	x := uint64(7)
	rnd := func(n uint64) uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33) % n
	}
	nowLoop, nowRun := sim.Time(0), sim.Time(0)
	for iter := 0; iter < 200; iter++ {
		base := uintptr(rnd(1 << 22))
		stride := uintptr(rnd(4)+1) * 64
		n := int(rnd(32)) + 1

		var total sim.Time
		addr := base
		for i := 0; i < n; i++ {
			lat, _ := loop.Load(nowLoop+total, addr)
			total += lat
			addr += stride
		}
		nowLoop += total
		nowRun += run.LoadRun(nowRun, base, stride, n)
		if nowLoop != nowRun {
			t.Fatalf("iter %d: virtual time diverged: loop %v, run %v", iter, nowLoop, nowRun)
		}
	}
	countersEqual(t, loop.Counters(), run.Counters())
	if loop.L1().Stats() != run.L1().Stats() || loop.L3().Stats() != run.L3().Stats() {
		t.Error("cache statistics diverged between Load loop and LoadRun")
	}
}

// TestStoreRunEquivalentToStoreLoop does the same for posted stores.
func TestStoreRunEquivalentToStoreLoop(t *testing.T) {
	loop, _ := testCore(t, 0)
	run, _ := testCore(t, 0)
	nowLoop, nowRun := sim.Time(0), sim.Time(0)
	for iter := 0; iter < 100; iter++ {
		base := uintptr(iter) * 4096
		var total sim.Time
		for i := 0; i < 40; i++ {
			total += loop.Store(nowLoop+total, base+uintptr(i)*64)
		}
		nowLoop += total
		nowRun += run.StoreRun(nowRun, base, 64, 40)
		if nowLoop != nowRun {
			t.Fatalf("iter %d: virtual time diverged: loop %v, run %v", iter, nowLoop, nowRun)
		}
	}
	if loop.L1().Stats() != run.L1().Stats() {
		t.Error("L1 statistics diverged between Store loop and StoreRun")
	}
}

// TestLoadGroupRunEquivalentToLoadGroup checks the slice-free group variant
// against LoadGroup over the same arithmetic sequence, including runs larger
// than the MSHR bound (multiple waves).
func TestLoadGroupRunEquivalentToLoadGroup(t *testing.T) {
	group, _ := testCore(t, 4)
	run, _ := testCore(t, 4)
	nowGroup, nowRun := sim.Time(0), sim.Time(0)
	for iter := 0; iter < 100; iter++ {
		base := uintptr(iter) * 8192
		for _, n := range []int{1, 7, 10, 25} { // below, at and above MSHRs
			addrs := make([]uintptr, n)
			for i := range addrs {
				addrs[i] = base + uintptr(i)*64
			}
			nowGroup += group.LoadGroup(nowGroup, addrs)
			nowRun += run.LoadGroupRun(nowRun, base, 64, n)
			base += uintptr(n) * 64
			if nowGroup != nowRun {
				t.Fatalf("iter %d n=%d: virtual time diverged: group %v, run %v", iter, n, nowGroup, nowRun)
			}
		}
	}
	countersEqual(t, group.Counters(), run.Counters())
	if group.L1().Stats() != run.L1().Stats() {
		t.Error("L1 statistics diverged between LoadGroup and LoadGroupRun")
	}
}

// BenchmarkCoreLoad measures the per-access cost of the demand-load path on
// an L1-resident working set — the simulator's hottest operation.
func BenchmarkCoreLoad(b *testing.B) {
	core, _ := testCore(b, 0)
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat, _ := core.Load(now, uintptr(i%64)*64)
		now += lat
	}
}

// BenchmarkCoreLoadStream measures the streaming-miss path (prefetcher and
// memory system engaged).
func BenchmarkCoreLoadStream(b *testing.B) {
	core, _ := testCore(b, 4)
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat, _ := core.Load(now, uintptr(i)*64)
		now += lat
	}
}

// BenchmarkCoreLoadRun measures the batched strided-run entry point.
func BenchmarkCoreLoadRun(b *testing.B) {
	core, _ := testCore(b, 0)
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i += 64 {
		now += core.LoadRun(now, 0, 64, 64)
	}
}
