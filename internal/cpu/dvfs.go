package cpu

import (
	"github.com/quartz-emu/quartz/internal/sim"
)

// DVFS models dynamic voltage and frequency scaling. When enabled, the core
// frequency oscillates deterministically between the nominal frequency and
// LowFactor of it, with the given half-period. The paper (§6) disables DVFS
// on the testbeds because a varying frequency breaks the fixed relationship
// between cycles and nanoseconds that the delay-injection model needs;
// Quartz refuses to attach while DVFS is enabled, and a dedicated test shows
// the accuracy loss when that check is bypassed.
type DVFS struct {
	enabled    bool
	lowFactor  float64
	halfPeriod sim.Time
}

// NewDVFS builds a governor oscillating between full frequency and
// lowFactor (0 < lowFactor <= 1) every halfPeriod. It starts disabled.
func NewDVFS(lowFactor float64, halfPeriod sim.Time) *DVFS {
	if lowFactor <= 0 || lowFactor > 1 {
		lowFactor = 1
	}
	if halfPeriod <= 0 {
		halfPeriod = 100 * sim.Microsecond
	}
	return &DVFS{lowFactor: lowFactor, halfPeriod: halfPeriod}
}

// SetEnabled turns frequency scaling on or off (BIOS/governor switch).
func (d *DVFS) SetEnabled(on bool) {
	if d == nil {
		return
	}
	d.enabled = on
}

// Enabled reports whether frequency scaling is active.
func (d *DVFS) Enabled() bool { return d != nil && d.enabled }

// FactorAt reports the frequency multiplier in effect at virtual time t.
func (d *DVFS) FactorAt(t sim.Time) float64 {
	if d == nil || !d.enabled {
		return 1
	}
	if (t/d.halfPeriod)%2 == 0 {
		return 1
	}
	return d.lowFactor
}
