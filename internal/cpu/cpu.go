// Package cpu models processor cores: the cache walk for loads and stores,
// memory-level parallelism through MSHR-bounded parallel load groups, stall
// attribution to performance counters, the invariant timestamp counter
// (rdtscp), and an optional DVFS governor whose frequency wobble breaks the
// cycles-to-nanoseconds translation exactly as §6 of the paper warns.
package cpu

import (
	"fmt"
	"math/bits"

	"github.com/quartz-emu/quartz/internal/cache"
	"github.com/quartz-emu/quartz/internal/mem"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

// MemorySystem routes line requests to NUMA memory controllers. It is
// implemented by machine.Machine.
type MemorySystem interface {
	// HomeNode reports the NUMA node owning the physical address.
	HomeNode(addr uintptr) int
	// Access admits a line request at virtual time now issued by a core on
	// fromSocket and returns its completion time.
	Access(now sim.Time, addr uintptr, kind mem.AccessKind, fromSocket int) sim.Time
}

// Source classifies where a load was served from.
type Source int

// Load sources.
const (
	SrcL1 Source = iota + 1
	SrcL2
	SrcL3
	SrcMemLocal
	SrcMemRemote
)

func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	case SrcMemLocal:
		return "local DRAM"
	case SrcMemRemote:
		return "remote DRAM"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Config describes one core.
type Config struct {
	// FreqHz is the nominal core frequency.
	FreqHz float64
	// MSHRs bounds outstanding parallel demand misses (memory-level
	// parallelism). Modern Xeons have 10 line-fill buffers per core.
	MSHRs int
	// LineSize is the cache line size in bytes.
	LineSize int
	// PrefetchDepth is the stream prefetcher's look-ahead distance in
	// lines (0 disables prefetching).
	PrefetchDepth int
}

// Validate reports whether the core configuration is usable.
func (c Config) Validate() error {
	if c.FreqHz <= 0 {
		return fmt.Errorf("cpu: FreqHz = %g, must be positive", c.FreqHz)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cpu: MSHRs = %d, must be positive", c.MSHRs)
	}
	if c.LineSize <= 0 {
		return fmt.Errorf("cpu: LineSize = %d, must be positive", c.LineSize)
	}
	if c.PrefetchDepth < 0 {
		return fmt.Errorf("cpu: PrefetchDepth = %d, must be non-negative", c.PrefetchDepth)
	}
	return nil
}

// Core is one simulated hardware thread's execution resources.
type Core struct {
	id     int
	socket int
	cfg    Config

	l1, l2 *cache.Cache // private
	l3     *cache.Cache // shared within the socket
	pf     *cache.Prefetcher
	ctr    *perf.Counters
	memsys MemorySystem
	dvfs   *DVFS

	// Hot-path caches: the per-level probe latencies (so the walk does not
	// copy a Config struct per probe) and the line-address shift.
	l1Lat, l2Lat, l3Lat sim.Time
	lineShift           uint
	linePow2            bool
}

// NewCore assembles a core. l3 is the socket-shared last-level cache; ctr is
// the core's PMC bank; dvfs may be nil for a fixed-frequency core.
func NewCore(id, socket int, cfg Config, l1, l2, l3 *cache.Cache, ctr *perf.Counters, memsys MemorySystem, dvfs *DVFS) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if l1 == nil || l2 == nil || l3 == nil || ctr == nil || memsys == nil {
		return nil, fmt.Errorf("cpu: core %d: nil component", id)
	}
	c := &Core{
		id: id, socket: socket, cfg: cfg,
		l1: l1, l2: l2, l3: l3,
		pf:     cache.NewPrefetcher(cfg.PrefetchDepth),
		ctr:    ctr,
		memsys: memsys,
		dvfs:   dvfs,
		l1Lat:  l1.LookupLat(),
		l2Lat:  l2.LookupLat(),
		l3Lat:  l3.LookupLat(),
	}
	if cfg.LineSize&(cfg.LineSize-1) == 0 {
		c.lineShift = uint(bits.TrailingZeros(uint(cfg.LineSize)))
		c.linePow2 = true
	}
	return c, nil
}

// ID reports the core id.
func (c *Core) ID() int { return c.id }

// Socket reports the core's socket (== NUMA node).
func (c *Core) Socket() int { return c.socket }

// Config reports the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Counters exposes the core's PMC bank.
func (c *Core) Counters() *perf.Counters { return c.ctr }

// L1 exposes the private first-level cache (for tests and statistics).
func (c *Core) L1() *cache.Cache { return c.l1 }

// L2 exposes the private second-level cache.
func (c *Core) L2() *cache.Cache { return c.l2 }

// L3 exposes the socket-shared last-level cache.
func (c *Core) L3() *cache.Cache { return c.l3 }

// FreqHz reports the core's nominal frequency.
func (c *Core) FreqHz() float64 { return c.cfg.FreqHz }

// TSC reports the invariant timestamp counter at virtual time now. Like
// rdtscp on modern x86, it advances at the nominal frequency regardless of
// DVFS state.
func (c *Core) TSC(now sim.Time) uint64 {
	return uint64(sim.TimeToCycles(now, c.cfg.FreqHz))
}

// TimeForCycles converts a TSC cycle count to virtual time.
func (c *Core) TimeForCycles(cycles int64) sim.Time {
	return sim.CyclesToTime(cycles, c.cfg.FreqHz)
}

// ComputeTime reports how long n core cycles of computation take starting at
// virtual time now, accounting for the current DVFS frequency.
func (c *Core) ComputeTime(now sim.Time, cycles int64) sim.Time {
	f := c.cfg.FreqHz
	if c.dvfs != nil {
		f *= c.dvfs.FactorAt(now)
	}
	return sim.CyclesToTime(cycles, f)
}

// effectiveFreq is the instantaneous core frequency at time now.
func (c *Core) effectiveFreq(now sim.Time) float64 {
	if c.dvfs == nil {
		return c.cfg.FreqHz
	}
	return c.cfg.FreqHz * c.dvfs.FactorAt(now)
}

// Load performs one demand load at virtual time now and returns its latency
// and serving source. Counter state (L3 hits/misses, stall cycles) is
// updated as a side effect.
func (c *Core) Load(now sim.Time, addr uintptr) (sim.Time, Source) {
	// Last-line filter: a repeat access to the most recently touched L1
	// line skips the hierarchy walk. TouchLast performs the exact hit
	// bookkeeping Lookup would, and L1 hits record no stall, so the fast
	// path is bit-identical to the walk below.
	if wait, ok := c.l1.TouchLast(addr, now+c.l1Lat, false); ok {
		return c.l1Lat + wait, SrcL1
	}
	lat, src := c.loadOne(now, addr)
	c.recordStall(now, lat, src)
	return lat, src
}

// loadFast is loadOne behind the last-line filter (no stall accounting).
func (c *Core) loadFast(now sim.Time, addr uintptr) (sim.Time, Source) {
	if wait, ok := c.l1.TouchLast(addr, now+c.l1Lat, false); ok {
		return c.l1Lat + wait, SrcL1
	}
	return c.loadOne(now, addr)
}

// LoadRun performs n demand loads at addresses base, base+stride, …, each
// issued only after the previous completes (a dependent scan, no
// memory-level parallelism), and returns the total latency. It is
// behaviorally identical to n Load calls with the clock advanced by each
// load's latency in between; the batched entry point exists so tight scan
// loops pay one call instead of n and benefit from the last-line filter
// when consecutive elements share a 64B line.
func (c *Core) LoadRun(now sim.Time, base, stride uintptr, n int) sim.Time {
	var total sim.Time
	for ; n > 0; n-- {
		lat, src := c.loadFast(now, base)
		if src >= SrcL3 {
			c.ctr.AddStallCycles(sim.TimeToCycles(lat, c.effectiveFreq(now)))
		}
		now += lat
		total += lat
		base += stride
	}
	return total
}

// StoreRun performs n posted stores at addresses base, base+stride, …,
// with the clock advanced by each store's pipeline latency in between,
// returning the total. Identical to n sequential Store calls.
func (c *Core) StoreRun(now sim.Time, base, stride uintptr, n int) sim.Time {
	var total sim.Time
	for ; n > 0; n-- {
		lat := c.Store(now, base)
		now += lat
		total += lat
		base += stride
	}
	return total
}

// LoadGroup performs len(addrs) independent demand loads issued in parallel
// (memory-level parallelism), bounded by the core's MSHR count. It returns
// the overlapped completion latency of the whole group. Stall cycles are
// credited once per group — requests served in parallel with an outstanding
// request do not add stall cycles, exactly the property of
// CYCLE_ACTIVITY:STALLS_L2_PENDING the paper's Eq. 2 relies on.
func (c *Core) LoadGroup(now sim.Time, addrs []uintptr) sim.Time {
	var total sim.Time
	start := now
	for len(addrs) > 0 {
		wave := addrs
		if len(wave) > c.cfg.MSHRs {
			wave = wave[:c.cfg.MSHRs]
		}
		addrs = addrs[len(wave):]
		var waveLat, waveStall sim.Time
		for _, a := range wave {
			lat, src := c.loadFast(start, a)
			if lat > waveLat {
				waveLat = lat
			}
			if src >= SrcL3 && lat > waveStall {
				waveStall = lat
			}
		}
		if waveStall > 0 {
			c.ctr.AddStallCycles(sim.TimeToCycles(waveStall, c.effectiveFreq(start)))
		}
		start += waveLat
		total += waveLat
	}
	return total
}

// LoadGroupRun is LoadGroup over the arithmetic address sequence base,
// base+stride, …, base+(n-1)*stride, sparing streaming callers the
// address-slice rebuild on every batch. Wave structure, stall attribution
// and latencies are identical to LoadGroup over the same addresses.
func (c *Core) LoadGroupRun(now sim.Time, base, stride uintptr, n int) sim.Time {
	var total sim.Time
	start := now
	for n > 0 {
		wave := n
		if wave > c.cfg.MSHRs {
			wave = c.cfg.MSHRs
		}
		n -= wave
		var waveLat, waveStall sim.Time
		for ; wave > 0; wave-- {
			lat, src := c.loadFast(start, base)
			base += stride
			if lat > waveLat {
				waveLat = lat
			}
			if src >= SrcL3 && lat > waveStall {
				waveStall = lat
			}
		}
		if waveStall > 0 {
			c.ctr.AddStallCycles(sim.TimeToCycles(waveStall, c.effectiveFreq(start)))
		}
		start += waveLat
		total += waveLat
	}
	return total
}

// Store performs one store at virtual time now and returns its latency as
// seen by the pipeline. Stores are posted (absorbed by the store buffer and
// write-back caches): a miss triggers a write-allocate line fill that
// consumes memory bandwidth, but the pipeline only pays the L1 latency and
// no stall cycles are recorded — the property that makes pflush necessary
// for persistent-memory write modeling (§3.1).
func (c *Core) Store(now sim.Time, addr uintptr) sim.Time {
	c.ctr.CountStore()
	// Last-line filter: a repeat store to the most recently touched L1 line
	// dirties it with the exact bookkeeping Lookup would perform.
	if _, ok := c.l1.TouchLast(addr, now, true); ok {
		return c.l1Lat
	}
	if hit, _ := c.l1.Lookup(addr, now, true); hit {
		return c.l1Lat
	}
	// Write-allocate: fetch the line in the background.
	if hit, _ := c.l2.Lookup(addr, now, false); hit {
		c.fill(now, addr, true, now, false)
		return c.l1Lat
	}
	if hit, _ := c.l3.Lookup(addr, now, false); hit {
		c.fill(now, addr, true, now, false)
		return c.l1Lat
	}
	done := c.memsys.Access(now, addr, mem.Write, c.socket)
	c.ctr.CountStoreMiss(c.memsys.HomeNode(addr) != c.socket)
	c.fill(now, addr, true, done, true)
	return c.l1Lat
}

// Flush writes back (if dirty) and invalidates the line holding addr from
// the whole hierarchy, modeling clflush. The returned latency covers the
// instruction itself; the writeback is posted and its completion time is
// returned separately for callers that must stall on it (pflush).
func (c *Core) Flush(now sim.Time, addr uintptr) (lat, writebackDone sim.Time) {
	const flushCycles = 40 // clflush issue cost
	dirty := false
	if _, d := c.l1.Flush(addr); d {
		dirty = true
	}
	if _, d := c.l2.Flush(addr); d {
		dirty = true
	}
	if _, d := c.l3.Flush(addr); d {
		dirty = true
	}
	lat = c.ComputeTime(now, flushCycles)
	if dirty {
		writebackDone = c.memsys.Access(now+lat, addr, mem.Writeback, c.socket)
	}
	return lat, writebackDone
}

// loadOne walks the hierarchy for a single load.
func (c *Core) loadOne(now sim.Time, addr uintptr) (sim.Time, Source) {
	t := now

	t += c.l1Lat
	if hit, wait := c.l1.Lookup(addr, t, false); hit {
		return t + wait - now, SrcL1
	}

	t += c.l2Lat
	if hit, wait := c.l2.Lookup(addr, t, false); hit {
		t += wait
		c.promote(now, addr, t)
		// The L2 streamer observes requests arriving at L2 (hits and
		// misses alike), keeping the prefetch frontier moving even when
		// the demand stream runs entirely out of prefetched lines.
		c.prefetch(now, addr)
		return t - now, SrcL2
	}

	t += c.l3Lat
	if hit, wait := c.l3.Lookup(addr, t, false); hit {
		t += wait
		// Loads served by a still-in-flight fill (typically started by
		// another core or the prefetcher) are not clean XSNP_NONE hits —
		// the Table 1 hit events deliberately exclude them, so their
		// near-memory-latency stalls are not discounted by Eq. 3's
		// hit/miss weighting.
		if wait <= c.l3Lat {
			c.ctr.CountL3Hit()
		}
		c.promote(now, addr, t)
		c.prefetch(now, addr)
		return t - now, SrcL3
	}

	// Demand miss to DRAM.
	done := c.memsys.Access(t, addr, mem.Read, c.socket)
	remote := c.memsys.HomeNode(addr) != c.socket
	c.ctr.CountL3Miss(remote)
	c.fill(t, addr, false, done, true)
	c.prefetch(now, addr)
	src := SrcMemLocal
	if remote {
		src = SrcMemRemote
	}
	return done - now, src
}

// recordStall credits stall cycles for a single load served beyond L2.
func (c *Core) recordStall(now sim.Time, lat sim.Time, src Source) {
	if src >= SrcL3 {
		c.ctr.AddStallCycles(sim.TimeToCycles(lat, c.effectiveFreq(now)))
	}
}

// promote installs a line into the levels above its serving level.
func (c *Core) promote(now sim.Time, addr uintptr, arrival sim.Time) {
	c.insertWithWriteback(now, c.l1, addr, false, arrival)
	c.insertWithWriteback(now, c.l2, addr, false, arrival)
}

// fill installs a line into the whole hierarchy after a memory access.
// intoL3 is false when the line came from L3 itself.
func (c *Core) fill(now sim.Time, addr uintptr, dirty bool, arrival sim.Time, intoL3 bool) {
	if intoL3 {
		c.insertWithWriteback(now, c.l3, addr, false, arrival)
	}
	c.insertWithWriteback(now, c.l2, addr, false, arrival)
	c.insertWithWriteback(now, c.l1, addr, dirty, arrival)
}

// insertWithWriteback inserts a line and posts a writeback for any dirty
// victim. The writeback occupies a channel slot at the current walk time —
// not at the incoming line's (possibly future) arrival — so that a posted
// future request cannot block earlier traffic on the single-slot channel
// reservation model.
func (c *Core) insertWithWriteback(now sim.Time, level *cache.Cache, addr uintptr, dirty bool, arrival sim.Time) {
	if ev, evicted := level.Insert(addr, dirty, arrival); evicted && ev.Dirty {
		c.memsys.Access(now, ev.Addr, mem.Writeback, c.socket)
	}
}

// prefetch feeds the stream detector and issues proposed fills into L3 (and
// L2) with future arrival times.
func (c *Core) prefetch(now sim.Time, addr uintptr) {
	if c.pf.Depth() == 0 {
		return
	}
	lineSize := uintptr(c.cfg.LineSize)
	var line uintptr
	if c.linePow2 {
		line = addr >> c.lineShift
	} else {
		line = addr / lineSize
	}
	for _, line := range c.pf.Observe(line) {
		pAddr := line * lineSize
		if c.l3.Contains(pAddr) || c.l2.Contains(pAddr) {
			continue
		}
		arrival := c.memsys.Access(now, pAddr, mem.Prefetch, c.socket)
		c.insertWithWriteback(now, c.l3, pAddr, false, arrival)
		c.insertWithWriteback(now, c.l2, pAddr, false, arrival)
	}
}
