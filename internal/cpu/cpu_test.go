package cpu

import (
	"math"
	"testing"

	"github.com/quartz-emu/quartz/internal/cache"
	"github.com/quartz-emu/quartz/internal/mem"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
)

// fakeMem is a MemorySystem with fixed service latencies and no bandwidth
// contention. Addresses at or above remoteBase live on node 1.
type fakeMem struct {
	localLat   sim.Time
	remoteLat  sim.Time
	remoteBase uintptr
	accesses   []mem.AccessKind
}

func (f *fakeMem) HomeNode(addr uintptr) int {
	if addr >= f.remoteBase {
		return 1
	}
	return 0
}

func (f *fakeMem) Access(now sim.Time, addr uintptr, kind mem.AccessKind, fromSocket int) sim.Time {
	f.accesses = append(f.accesses, kind)
	lat := f.localLat
	if f.HomeNode(addr) != fromSocket {
		lat = f.remoteLat
	}
	return now + lat
}

func testCore(t testing.TB, prefetchDepth int) (*Core, *fakeMem) {
	t.Helper()
	mk := func(name string, size, ways int, lat sim.Time) *cache.Cache {
		c, err := cache.New(cache.Config{Name: name, SizeBytes: size, Ways: ways, LineSize: 64, LookupLat: lat})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	l1 := mk("L1", 32<<10, 8, 1*sim.Nanosecond)
	l2 := mk("L2", 256<<10, 8, 4*sim.Nanosecond)
	l3 := mk("L3", 2<<20, 16, 12*sim.Nanosecond)
	fm := &fakeMem{localLat: 80 * sim.Nanosecond, remoteLat: 145 * sim.Nanosecond, remoteBase: 1 << 40}
	ctr := perf.NewCounters(perf.Haswell, perf.Fidelity{StallBias: 1})
	ctr.SetEnabled(true)
	core, err := NewCore(0, 0, Config{FreqHz: 2e9, MSHRs: 10, LineSize: 64, PrefetchDepth: prefetchDepth}, l1, l2, l3, ctr, fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	return core, fm
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", Config{FreqHz: 2e9, MSHRs: 10, LineSize: 64}, false},
		{"zero-freq", Config{MSHRs: 10, LineSize: 64}, true},
		{"zero-mshr", Config{FreqHz: 2e9, LineSize: 64}, true},
		{"neg-prefetch", Config{FreqHz: 2e9, MSHRs: 10, LineSize: 64, PrefetchDepth: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestColdLoadMissesToMemory(t *testing.T) {
	core, _ := testCore(t, 0)
	lat, src := core.Load(0, 0x10000)
	if src != SrcMemLocal {
		t.Fatalf("cold load source = %v, want local DRAM", src)
	}
	// 1 + 4 + 12 ns of lookups plus 80ns service.
	want := 97 * sim.Nanosecond
	if lat != want {
		t.Errorf("cold load latency = %v, want %v", lat, want)
	}
	if v, _ := core.Counters().Read(perf.EventL3MissLocal); v != 1 {
		t.Errorf("local miss count = %d, want 1", v)
	}
}

func TestWarmLoadHitsL1(t *testing.T) {
	core, _ := testCore(t, 0)
	core.Load(0, 0x10000)
	lat, src := core.Load(200*sim.Nanosecond, 0x10000)
	if src != SrcL1 {
		t.Fatalf("warm load source = %v, want L1", src)
	}
	if lat != 1*sim.Nanosecond {
		t.Errorf("warm load latency = %v, want 1ns", lat)
	}
}

func TestRemoteLoadSlower(t *testing.T) {
	core, _ := testCore(t, 0)
	latLocal, _ := core.Load(0, 0x10000)
	latRemote, src := core.Load(0, 1<<40)
	if src != SrcMemRemote {
		t.Fatalf("remote load source = %v", src)
	}
	if latRemote-latLocal != 65*sim.Nanosecond {
		t.Errorf("remote-local latency gap = %v, want 65ns", latRemote-latLocal)
	}
	if v, _ := core.Counters().Read(perf.EventL3MissRemote); v != 1 {
		t.Errorf("remote miss count = %d, want 1", v)
	}
}

func TestStallCyclesMatchMissLatency(t *testing.T) {
	core, _ := testCore(t, 0)
	lat, _ := core.Load(0, 0x10000)
	wantCycles := sim.TimeToCycles(lat, 2e9)
	got := core.Counters().TrueStallCycles()
	if math.Abs(got-wantCycles) > 0.5 {
		t.Errorf("stall cycles = %g, want %g", got, wantCycles)
	}
}

func TestL1HitAddsNoStall(t *testing.T) {
	core, _ := testCore(t, 0)
	core.Load(0, 0x10000)
	before := core.Counters().TrueStallCycles()
	core.Load(200*sim.Nanosecond, 0x10000)
	if after := core.Counters().TrueStallCycles(); after != before {
		t.Errorf("L1 hit changed stalls from %g to %g", before, after)
	}
}

func TestLoadGroupOverlapsLatency(t *testing.T) {
	core, _ := testCore(t, 0)
	// 8 independent cold misses issued in parallel must complete in far
	// less than 8x the serial latency, and stall cycles must be credited
	// once (MLP-aware), not per miss.
	addrs := make([]uintptr, 8)
	for i := range addrs {
		addrs[i] = uintptr(0x100000 + i*4096)
	}
	lat := core.LoadGroup(0, addrs)
	serial := 8 * 97 * sim.Nanosecond
	if lat >= serial/4 {
		t.Errorf("group latency %v not overlapped (serial would be %v)", lat, serial)
	}
	stalls := core.Counters().TrueStallCycles()
	oneMiss := sim.TimeToCycles(97*sim.Nanosecond, 2e9)
	if stalls > 1.5*oneMiss {
		t.Errorf("group stalls = %g cycles, want about one miss (%g)", stalls, oneMiss)
	}
}

func TestLoadGroupRespectsMSHRBound(t *testing.T) {
	core, _ := testCore(t, 0)
	// 20 parallel misses with 10 MSHRs needs at least two memory waves.
	addrs := make([]uintptr, 20)
	for i := range addrs {
		addrs[i] = uintptr(0x200000 + i*4096)
	}
	lat := core.LoadGroup(0, addrs)
	if lat < 2*97*sim.Nanosecond {
		t.Errorf("20 misses over 10 MSHRs took %v, want >= 2 serial waves (194ns)", lat)
	}
}

func TestStoreIsPosted(t *testing.T) {
	core, fm := testCore(t, 0)
	lat := core.Store(0, 0x30000)
	if lat != 1*sim.Nanosecond {
		t.Errorf("store latency = %v, want L1 latency (posted)", lat)
	}
	if core.Counters().TrueStallCycles() != 0 {
		t.Error("posted store accrued stall cycles")
	}
	if len(fm.accesses) != 1 || fm.accesses[0] != mem.Write {
		t.Errorf("store traffic = %v, want one write-allocate fill", fm.accesses)
	}
}

func TestStoreDirtiesLineForFlush(t *testing.T) {
	core, fm := testCore(t, 0)
	core.Store(0, 0x30000)
	fm.accesses = nil
	_, wbDone := core.Flush(100*sim.Nanosecond, 0x30000)
	if wbDone == 0 {
		t.Fatal("flush of dirty line produced no writeback")
	}
	if len(fm.accesses) != 1 || fm.accesses[0] != mem.Writeback {
		t.Errorf("flush traffic = %v, want one writeback", fm.accesses)
	}
	// Line must now be gone.
	if _, src := core.Load(500*sim.Nanosecond, 0x30000); src != SrcMemLocal {
		t.Errorf("post-flush load served from %v, want memory", src)
	}
}

func TestFlushCleanLineNoWriteback(t *testing.T) {
	core, _ := testCore(t, 0)
	core.Load(0, 0x40000)
	_, wbDone := core.Flush(200*sim.Nanosecond, 0x40000)
	if wbDone != 0 {
		t.Error("flush of clean line issued a writeback")
	}
}

func TestPrefetchHidesStreamLatency(t *testing.T) {
	run := func(depth int) sim.Time {
		core, _ := testCore(t, depth)
		var now, total sim.Time
		for i := 0; i < 512; i++ {
			lat, _ := core.Load(now, uintptr(0x100000+i*64))
			now += lat
			total += lat
		}
		return total
	}
	without := run(0)
	with := run(16)
	if with >= without*3/4 {
		t.Errorf("prefetch run %v not clearly faster than %v", with, without)
	}
}

func TestPrefetchDoesNotHelpPointerChase(t *testing.T) {
	// A pseudo-random access pattern must see no prefetch benefit.
	run := func(depth int) sim.Time {
		core, _ := testCore(t, depth)
		var now, total sim.Time
		x := uint32(7)
		for i := 0; i < 256; i++ {
			x = x*1664525 + 1013904223
			addr := uintptr(0x100000 + (x%65536)*64*7)
			lat, _ := core.Load(now, addr)
			now += lat
			total += lat
		}
		return total
	}
	without := run(0)
	with := run(16)
	diff := math.Abs(float64(with-without)) / float64(without)
	if diff > 0.05 {
		t.Errorf("random chase changed %.1f%% with prefetch on, want ~0", diff*100)
	}
}

func TestTSCInvariantUnderDVFS(t *testing.T) {
	d := NewDVFS(0.6, 100*sim.Microsecond)
	d.SetEnabled(true)
	core, _ := testCore(t, 0)
	coreD, err := NewCore(1, 0, core.Config(), core.L1(), core.L2(), core.L3(), core.Counters(), &fakeMem{localLat: 80 * sim.Nanosecond, remoteBase: 1 << 40}, d)
	if err != nil {
		t.Fatal(err)
	}
	at := 150 * sim.Microsecond // inside the slow half-period
	if coreD.TSC(at) != core.TSC(at) {
		t.Error("TSC must be invariant under DVFS")
	}
	slow := coreD.ComputeTime(at, 1000)
	fast := core.ComputeTime(at, 1000)
	if slow <= fast {
		t.Errorf("DVFS slow-phase compute %v not slower than nominal %v", slow, fast)
	}
}

func TestDVFSDisabledIsUnity(t *testing.T) {
	d := NewDVFS(0.5, sim.Millisecond)
	for _, at := range []sim.Time{0, sim.Millisecond, 3 * sim.Millisecond} {
		if f := d.FactorAt(at); f != 1 {
			t.Errorf("disabled DVFS factor at %v = %g, want 1", at, f)
		}
	}
	var nilD *DVFS
	if nilD.Enabled() || nilD.FactorAt(0) != 1 {
		t.Error("nil DVFS must behave as disabled")
	}
}

func TestDVFSOscillates(t *testing.T) {
	d := NewDVFS(0.5, sim.Millisecond)
	d.SetEnabled(true)
	if f := d.FactorAt(500 * sim.Microsecond); f != 1 {
		t.Errorf("first half factor = %g, want 1", f)
	}
	if f := d.FactorAt(1500 * sim.Microsecond); f != 0.5 {
		t.Errorf("second half factor = %g, want 0.5", f)
	}
}

func TestNewCoreRejectsNilComponents(t *testing.T) {
	if _, err := NewCore(0, 0, Config{FreqHz: 1e9, MSHRs: 1, LineSize: 64}, nil, nil, nil, nil, nil, nil); err == nil {
		t.Error("NewCore with nil components succeeded")
	}
}

func TestSourceString(t *testing.T) {
	if SrcL3.String() != "L3" || SrcMemRemote.String() != "remote DRAM" {
		t.Error("Source.String mismatch")
	}
}

func TestCoreAccessors(t *testing.T) {
	core, _ := testCore(t, 0)
	if core.ID() != 0 || core.Socket() != 0 {
		t.Errorf("ID/Socket = %d/%d", core.ID(), core.Socket())
	}
	if core.FreqHz() != 2e9 {
		t.Errorf("FreqHz = %g", core.FreqHz())
	}
	if got := core.TimeForCycles(2_000_000_000); got != sim.Second {
		t.Errorf("TimeForCycles(freq) = %v, want 1s", got)
	}
}

func TestStoreHitsInLowerLevels(t *testing.T) {
	core, fm := testCore(t, 0)
	addr := uintptr(0x50000)
	core.Load(0, addr) // line now in L1/L2/L3

	// L1 hit store: no memory traffic.
	fm.accesses = nil
	core.Store(100*sim.Nanosecond, addr)
	if len(fm.accesses) != 0 {
		t.Errorf("L1-hit store issued traffic: %v", fm.accesses)
	}

	// Evict from L1 only by filling its sets, keeping L2 resident: then a
	// store must hit L2 and issue no memory write.
	for i := 0; i < 32*1024/64*2; i++ {
		core.Load(sim.Time(i)*sim.Microsecond, uintptr(0x900000+i*64))
	}
	if core.L1().Contains(addr) {
		t.Skip("line survived the L1 sweep; set mapping kept it resident")
	}
	if !core.L2().Contains(addr) && !core.L3().Contains(addr) {
		t.Skip("line evicted beyond L2/L3 by the sweep")
	}
	fm.accesses = nil
	core.Store(200*sim.Microsecond, addr)
	for _, k := range fm.accesses {
		if k == mem.Write {
			t.Error("L2/L3-resident store issued a write-allocate memory fill")
		}
	}
}

func TestDirtyL1EvictionWritesBack(t *testing.T) {
	core, fm := testCore(t, 0)
	// Dirty a line, then force its eviction from every level by sweeping a
	// working set larger than L3.
	core.Store(0, 0x40)
	fm.accesses = nil
	for i := 0; i < (2<<20)/64*2; i++ {
		core.Load(sim.Time(i)*sim.Microsecond, uintptr(0x4000000+i*64))
	}
	var writebacks int
	for _, k := range fm.accesses {
		if k == mem.Writeback {
			writebacks++
		}
	}
	if writebacks == 0 {
		t.Error("dirty line eviction produced no writeback traffic")
	}
}

func TestNewDVFSClampsArguments(t *testing.T) {
	d := NewDVFS(-0.5, -1)
	d.SetEnabled(true)
	if f := d.FactorAt(150 * sim.Microsecond); f != 1 {
		t.Errorf("clamped low factor = %g, want 1 (invalid input)", f)
	}
	var nilD *DVFS
	nilD.SetEnabled(true) // must not panic
}
