package mem

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/quartz-emu/quartz/internal/sim"
)

func testConfig() Config {
	return Config{
		Channels:          4,
		ChannelBandwidth:  12.8e9,
		LineSize:          64,
		ThrottleFullScale: 2048,
	}
}

func mustController(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController(0, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"zero-channels", func(c *Config) { c.Channels = 0 }, true},
		{"negative-bandwidth", func(c *Config) { c.ChannelBandwidth = -1 }, true},
		{"zero-linesize", func(c *Config) { c.LineSize = 0 }, true},
		{"zero-fullscale", func(c *Config) { c.ThrottleFullScale = 0 }, true},
		{"fullscale-too-big", func(c *Config) { c.ThrottleFullScale = RegisterMax + 1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestThrottleRegisterBounds(t *testing.T) {
	c := mustController(t)
	if err := c.SetThrottle(RegisterMax); err != nil {
		t.Errorf("SetThrottle(max) = %v", err)
	}
	if err := c.SetThrottle(RegisterMax + 1); err == nil {
		t.Error("SetThrottle(max+1) succeeded, want 12-bit rejection")
	}
}

func TestThrottleLinearity(t *testing.T) {
	// The paper's Fig. 8: bandwidth is linear in the register value until
	// the peak is reached, then flat.
	c := mustController(t)
	full := testConfig().ChannelBandwidth

	if err := c.SetThrottle(1024); err != nil {
		t.Fatal(err)
	}
	if got, want := c.ChannelBandwidth(), full/2; math.Abs(got-want) > 1 {
		t.Errorf("half-scale bandwidth = %g, want %g", got, want)
	}

	if err := c.SetThrottle(512); err != nil {
		t.Fatal(err)
	}
	if got, want := c.ChannelBandwidth(), full/4; math.Abs(got-want) > 1 {
		t.Errorf("quarter-scale bandwidth = %g, want %g", got, want)
	}

	if err := c.SetThrottle(4095); err != nil {
		t.Fatal(err)
	}
	if got := c.ChannelBandwidth(); got != full {
		t.Errorf("above-full-scale bandwidth = %g, want saturation at %g", got, full)
	}

	if err := c.SetThrottle(0); err != nil {
		t.Fatal(err)
	}
	if got := c.ChannelBandwidth(); got <= 0 {
		t.Errorf("zero-register bandwidth = %g, must stay positive", got)
	}
}

func TestRegisterForBandwidthRoundTrip(t *testing.T) {
	c := mustController(t)
	for _, target := range []float64{1e9, 5e9, 10e9, 25e9, 40e9} {
		reg := c.RegisterForBandwidth(target)
		if err := c.SetThrottle(reg); err != nil {
			t.Fatal(err)
		}
		got := c.EffectiveBandwidth()
		if rel := math.Abs(got-target) / target; rel > 0.01 {
			t.Errorf("target %g: register %d gives %g (%.2f%% off)", target, reg, got, rel*100)
		}
	}
	if got := c.RegisterForBandwidth(1e15); got != RegisterMax {
		t.Errorf("huge target register = %d, want max", got)
	}
	if got := c.RegisterForBandwidth(-5); got != 1 {
		t.Errorf("negative target register = %d, want 1", got)
	}
}

func TestAccessUnloadedLatency(t *testing.T) {
	c := mustController(t)
	service := 97 * sim.Nanosecond
	done := c.Access(0, 0, Read, service)
	if done != service {
		t.Errorf("unloaded read completes at %v, want %v", done, service)
	}
}

func TestAccessSameChannelQueues(t *testing.T) {
	c := mustController(t)
	service := 100 * sim.Nanosecond
	// Two back-to-back accesses to the same line map to the same channel;
	// the second must wait for the first transfer slot.
	first := c.Access(0, 0, Read, service)
	second := c.Access(0, 0, Read, service)
	if second <= first {
		t.Errorf("second access on same channel done at %v, want after %v", second, first)
	}
	occupancy := sim.Time(64.0 / c.ChannelBandwidth() * float64(sim.Second))
	if want := occupancy + service; second != want {
		t.Errorf("second access done at %v, want %v", second, want)
	}
}

func TestAccessDifferentChannelsOverlap(t *testing.T) {
	c := mustController(t)
	service := 100 * sim.Nanosecond
	lineSize := uintptr(testConfig().LineSize)
	d0 := c.Access(0, 0*lineSize, Read, service)
	d1 := c.Access(0, 1*lineSize, Read, service)
	if d0 != service || d1 != service {
		t.Errorf("parallel accesses done at %v, %v; want both %v", d0, d1, service)
	}
	if got := c.Stats().QueueTime; got != 0 {
		t.Errorf("queue time = %v, want 0 for disjoint channels", got)
	}
}

func TestThrottledAccessesQueueLonger(t *testing.T) {
	c := mustController(t)
	service := 100 * sim.Nanosecond
	burst := func() sim.Time {
		var last sim.Time
		for i := 0; i < 64; i++ {
			last = c.Access(0, 0, Read, service) // all on one channel
		}
		return last
	}
	fast := burst()
	if err := c.SetThrottle(128); err != nil {
		t.Fatal(err)
	}
	c.nextFree = make([]sim.Time, testConfig().Channels) // fresh channels
	slow := burst()
	if slow <= fast {
		t.Errorf("throttled burst done at %v, unthrottled at %v; throttling must slow it", slow, fast)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := mustController(t)
	c.Access(0, 0, Read, 0)
	c.Access(0, 64, Write, 0)
	c.Access(0, 128, Writeback, 0)
	c.Access(0, 192, Prefetch, 0)
	s := c.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Writebacks != 1 || s.Prefetches != 1 {
		t.Errorf("stats = %+v, want one of each kind", s)
	}
	if s.BytesWritten != 64 {
		t.Errorf("bytes written = %d, want 64", s.BytesWritten)
	}
	if s.BytesRead != 3*64 {
		t.Errorf("bytes read = %d, want 192", s.BytesRead)
	}
	c.ResetStats()
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("after reset stats = %+v, want zero", s)
	}
}

// TestBandwidthCapProperty streams many lines through the controller and
// checks the achieved bandwidth never exceeds the throttled cap.
func TestBandwidthCapProperty(t *testing.T) {
	prop := func(regRaw uint16, nRaw uint8) bool {
		reg := regRaw % (RegisterMax + 1)
		if reg < 16 {
			reg = 16 // avoid pathological slowness
		}
		n := int(nRaw)%512 + 256
		c, err := NewController(0, testConfig())
		if err != nil {
			return false
		}
		if err := c.SetThrottle(reg); err != nil {
			return false
		}
		occupancy := sim.Time(64.0 / c.ChannelBandwidth() * float64(sim.Second))
		var last sim.Time
		for i := 0; i < n; i++ {
			done := c.Access(0, uintptr(i*64), Read, 0) + occupancy
			if done > last {
				last = done
			}
		}
		if last == 0 {
			return true
		}
		achieved := float64(n*64) / last.Seconds()
		return achieved <= c.EffectiveBandwidth()*1.001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Writeback.String() != "writeback" {
		t.Error("AccessKind.String() mismatch")
	}
	if s := AccessKind(99).String(); s != "AccessKind(99)" {
		t.Errorf("unknown kind string = %q", s)
	}
}
