// Package mem models NUMA memory: per-socket integrated memory controllers
// with multiple DRAM channels, token-bucket bandwidth accounting, and the
// DRAM thermal-control throttle registers (THRT_PWR_DIMM_[0:2] on Intel Xeon
// parts) that Quartz programs to emulate NVM bandwidth.
//
// Throttling follows the paper's Figure 8: available bandwidth grows
// linearly with the 12-bit register value until the hardware maximum is
// reached, after which larger values have no further effect.
//
// Access is on the per-load hot path (every L3 miss lands here), so the
// steady state allocates nothing: channel state lives in flat arrays sized
// at construction, and token-bucket occupancy is recomputed only on
// throttle-register writes. The no-allocation contract is enforced by the
// gates behind `make bench-alloc`; see doc/performance.md.
package mem

import (
	"fmt"
	"math/bits"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/sim"
)

// AccessKind distinguishes the traffic classes a controller serves.
type AccessKind int

// Traffic classes.
const (
	Read      AccessKind = iota + 1 // demand load miss
	Write                           // demand store miss (line fill for write-allocate)
	Writeback                       // dirty line eviction; posted
	Prefetch                        // hardware prefetch fill; posted
)

func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Writeback:
		return "writeback"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// RegisterMax is the largest programmable throttle value (12-bit register).
const RegisterMax = 4095

// Config describes one integrated memory controller.
type Config struct {
	// Channels is the number of independent DRAM channels.
	Channels int
	// ChannelBandwidth is the peak bandwidth of one channel in bytes per
	// second at full throttle.
	ChannelBandwidth float64
	// LineSize is the transfer granularity in bytes (a cache line).
	LineSize int
	// AccessGranularity is the device's internal access granularity in
	// bytes: every line transfer occupies a channel for this many bytes of
	// device bandwidth. Optane DC PMM reads and writes 256 B XPLines
	// internally (Empirical Guide §3), so each 64 B line costs 4x its size
	// in device occupancy. 0 defaults to LineSize (no amplification).
	AccessGranularity int
	// ThrottleFullScale is the register value at which the linear throttle
	// ramp reaches peak bandwidth. Values above it saturate (Fig. 8).
	ThrottleFullScale uint16
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("mem: Channels = %d, must be positive", c.Channels)
	}
	if c.ChannelBandwidth <= 0 {
		return fmt.Errorf("mem: ChannelBandwidth = %g, must be positive", c.ChannelBandwidth)
	}
	if c.LineSize <= 0 {
		return fmt.Errorf("mem: LineSize = %d, must be positive", c.LineSize)
	}
	if c.AccessGranularity < 0 {
		return fmt.Errorf("mem: AccessGranularity = %d, must be non-negative", c.AccessGranularity)
	}
	if c.ThrottleFullScale == 0 || c.ThrottleFullScale > RegisterMax {
		return fmt.Errorf("mem: ThrottleFullScale = %d, must be in [1,%d]", c.ThrottleFullScale, RegisterMax)
	}
	return nil
}

// Stats aggregates controller traffic.
type Stats struct {
	Reads        int64
	Writes       int64
	Writebacks   int64
	Prefetches   int64
	BytesRead    int64
	BytesWritten int64
	// QueueTime is the total virtual time requests spent waiting for a
	// free channel slot.
	QueueTime sim.Time
}

// Controller is one socket's integrated memory controller. Read and write
// traffic have separate throttle registers: the paper (§2.1) describes the
// separate read/write thermal-control registers of the Intel datasheets —
// which would let an emulator model NVM's read/write bandwidth asymmetry —
// but found them non-functional on its testbeds. The simulated controller
// implements them as specified.
type Controller struct {
	node          int
	cfg           Config
	throttleRead  uint16
	throttleWrite uint16
	nextFree      []sim.Time
	stats         Stats

	// occRead/occWrite cache the per-access channel occupancy (the token
	// bucket's drain per line) so Access does one lookup instead of a float
	// division; they are refilled whenever a throttle register is written.
	occRead, occWrite sim.Time
	lineShift         uint
	linePow2          bool
}

// NewController builds a controller for NUMA node with the given config.
// The throttle registers start at their maximum (no throttling).
func NewController(node int, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		node:          node,
		cfg:           cfg,
		throttleRead:  RegisterMax,
		throttleWrite: RegisterMax,
		nextFree:      make([]sim.Time, cfg.Channels),
	}
	if cfg.LineSize&(cfg.LineSize-1) == 0 {
		c.lineShift = uint(bits.TrailingZeros(uint(cfg.LineSize)))
		c.linePow2 = true
	}
	c.refillRead()
	c.refillWrite()
	return c, nil
}

// granularityBytes is the per-transfer device occupancy in bytes: the
// device access granularity when configured (internal write/read
// amplification), the line size otherwise.
func (c *Controller) granularityBytes() float64 {
	if c.cfg.AccessGranularity > 0 {
		return float64(c.cfg.AccessGranularity)
	}
	return float64(c.cfg.LineSize)
}

// refillRead recomputes the cached read-path occupancy (the exact
// expression Access previously evaluated per request).
func (c *Controller) refillRead() {
	c.occRead = sim.Time(c.granularityBytes() / c.ChannelBandwidth() * float64(sim.Second))
}

// refillWrite recomputes the cached write-path occupancy.
func (c *Controller) refillWrite() {
	c.occWrite = sim.Time(c.granularityBytes() / c.ChannelWriteBandwidth() * float64(sim.Second))
}

// Node reports the controller's NUMA node id.
func (c *Controller) Node() int { return c.node }

// Config reports the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated traffic statistics.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the traffic statistics.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// SetThrottle programs both thermal-control registers to the same value.
// Values above RegisterMax are rejected; this mirrors writing a 12-bit PCI
// register.
func (c *Controller) SetThrottle(v uint16) error {
	if err := c.SetReadThrottle(v); err != nil {
		return err
	}
	return c.SetWriteThrottle(v)
}

// SetReadThrottle programs the read-path thermal-control register.
func (c *Controller) SetReadThrottle(v uint16) error {
	if v > RegisterMax {
		return fmt.Errorf("mem: read throttle value %d exceeds 12-bit register (max %d)", v, RegisterMax)
	}
	c.throttleRead = v
	c.refillRead()
	r := obs.Default()
	r.ThrottleProgrammed("read")
	r.BucketRefill("read")
	return nil
}

// SetWriteThrottle programs the write-path thermal-control register.
func (c *Controller) SetWriteThrottle(v uint16) error {
	if v > RegisterMax {
		return fmt.Errorf("mem: write throttle value %d exceeds 12-bit register (max %d)", v, RegisterMax)
	}
	c.throttleWrite = v
	c.refillWrite()
	r := obs.Default()
	r.ThrottleProgrammed("write")
	r.BucketRefill("write")
	return nil
}

// Throttle reports the read-path thermal-control register value (the knob
// the symmetric SetThrottle programs).
func (c *Controller) Throttle() uint16 { return c.throttleRead }

// WriteThrottle reports the write-path thermal-control register value.
func (c *Controller) WriteThrottle() uint16 { return c.throttleWrite }

// bandwidthFor converts a throttle register value to one channel's
// effective bandwidth: linear up to ThrottleFullScale, then flat (Fig. 8).
func (c *Controller) bandwidthFor(reg uint16) float64 {
	if reg == 0 {
		reg = 1 // a zero register would stall the memory system entirely
	}
	frac := float64(reg) / float64(c.cfg.ThrottleFullScale)
	if frac > 1 {
		frac = 1
	}
	return c.cfg.ChannelBandwidth * frac
}

// ChannelBandwidth reports one channel's effective read bandwidth in bytes
// per second under the current throttle setting.
func (c *Controller) ChannelBandwidth() float64 {
	return c.bandwidthFor(c.throttleRead)
}

// ChannelWriteBandwidth reports one channel's effective write bandwidth.
func (c *Controller) ChannelWriteBandwidth() float64 {
	return c.bandwidthFor(c.throttleWrite)
}

// isWrite classifies traffic onto the write-throttle path.
func (k AccessKind) isWrite() bool { return k == Writeback }

// PeakBandwidth reports the controller's total unthrottled bandwidth in
// bytes per second.
func (c *Controller) PeakBandwidth() float64 {
	return c.cfg.ChannelBandwidth * float64(c.cfg.Channels)
}

// EffectiveBandwidth reports the controller's total bandwidth under the
// current throttle setting in bytes per second.
func (c *Controller) EffectiveBandwidth() float64 {
	return c.ChannelBandwidth() * float64(c.cfg.Channels)
}

// RegisterForBandwidth computes the throttle register value that caps total
// controller bandwidth closest to target (bytes per second).
func (c *Controller) RegisterForBandwidth(target float64) uint16 {
	peak := c.PeakBandwidth()
	if target >= peak {
		return RegisterMax
	}
	if target <= 0 {
		return 1
	}
	reg := target / peak * float64(c.cfg.ThrottleFullScale)
	if reg < 1 {
		reg = 1
	}
	return uint16(reg + 0.5)
}

// Access admits one line-sized request at virtual time now and returns the
// time at which its data is available. serviceLat is the device latency
// (row access plus interconnect) as seen by the requesting socket; queueing
// induced by channel occupancy is added on top. Posted traffic (writebacks,
// prefetch fills) still occupies channel slots but callers normally ignore
// the returned completion time.
//
// Throttle-induced queueing is part of the returned completion time, so it
// reaches the requesting thread as load/store latency — which is how the
// virtual-time profiler sees it: the simos memory operations charge the
// whole interval (device latency plus throttle stall) to vtprof.MemStall.
func (c *Controller) Access(now sim.Time, addr uintptr, kind AccessKind, serviceLat sim.Time) sim.Time {
	var lineIdx uintptr
	if c.linePow2 {
		lineIdx = addr >> c.lineShift
	} else {
		lineIdx = addr / uintptr(c.cfg.LineSize)
	}
	ch := int(lineIdx) % c.cfg.Channels
	occupancy := c.occRead
	if kind.isWrite() {
		occupancy = c.occWrite
	}
	start := now
	if c.nextFree[ch] > start {
		start = c.nextFree[ch]
	}
	c.nextFree[ch] = start + occupancy
	c.stats.QueueTime += start - now

	line := int64(c.cfg.LineSize)
	switch kind {
	case Read:
		c.stats.Reads++
		c.stats.BytesRead += line
	case Write:
		c.stats.Writes++
		c.stats.BytesRead += line // write-allocate fills read the line first
	case Writeback:
		c.stats.Writebacks++
		c.stats.BytesWritten += line
	case Prefetch:
		c.stats.Prefetches++
		c.stats.BytesRead += line
	}
	return start + serviceLat
}
