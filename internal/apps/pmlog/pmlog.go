// Package pmlog is a crash-consistent, append-only write-ahead log in
// emulated persistent memory — the kind of persistent-memory software
// (Mnemosyne, NV-Heaps, PMFS logs) whose design trade-offs Quartz exists to
// evaluate. It follows the standard PM write protocol:
//
//  1. write the record payload into the log arena (ordinary stores),
//  2. flush the payload's cache lines to NVM,
//  3. only then update and flush the durable tail pointer.
//
// Payload-before-pointer ordering guarantees a crash never exposes a tail
// pointer covering unflushed bytes. Step 2 can use either the §3.1 pflush
// (stall per line, pessimistically serialized) or the §6 clflushopt+pcommit
// extension (independent lines drain in parallel; only the barrier waits),
// and records can be group-committed — the batch-size sweep in
// examples/walog shows the resulting durability-latency/throughput
// trade-off under different emulated NVM write latencies.
package pmlog

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// headerBytes reserves the first line of the arena for the durable tail
// pointer (and epoch/CRC metadata in a real implementation).
const headerBytes = 64

// lineSize is the flush granularity.
const lineSize = 64

// Config parameterizes a log.
type Config struct {
	// Capacity is the log arena size in bytes (excluding the header line).
	Capacity uintptr
	// UsePCommit selects the §6 clflushopt+pcommit write model; false uses
	// serialized pflush per line (§3.1).
	UsePCommit bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Capacity < 4*lineSize {
		return fmt.Errorf("pmlog: capacity %d too small (min %d)", c.Capacity, 4*lineSize)
	}
	return nil
}

// Stats aggregates log activity.
type Stats struct {
	Appends      int64
	Commits      int64
	BytesWritten int64
	// CommitStall is the virtual time spent waiting for flushes at commit
	// barriers (plus per-line pflush stalls in pflush mode).
	CommitStall sim.Time
}

// Log is an append-only persistent log. It is confined to one thread at a
// time (callers serialize externally, as a WAL writer thread does).
type Log struct {
	emu *core.Emulator
	cfg Config

	base    uintptr // header line
	arena   uintptr // first payload byte
	head    uintptr // next append offset within the arena
	durable uintptr // bytes guaranteed durable (tail pointer contents)

	pendingRecords int64 // appended but not yet committed
	records        int64 // total appended
	durableRecords int64 // records covered by the last committed tail

	stats Stats
}

// New allocates the log arena in persistent memory via the emulator's
// pmalloc and initializes the header.
func New(emu *core.Emulator, t *simos.Thread, cfg Config) (*Log, error) {
	if emu == nil || t == nil {
		return nil, fmt.Errorf("pmlog: nil emulator or thread")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base, err := emu.PMalloc(headerBytes + cfg.Capacity)
	if err != nil {
		return nil, fmt.Errorf("pmlog: allocating arena: %w", err)
	}
	l := &Log{emu: emu, cfg: cfg, base: base, arena: base + headerBytes}
	// Persist the empty header so recovery sees a valid (zero) tail.
	t.Store(l.base)
	emu.PFlush(t, l.base)
	return l, nil
}

// Stats returns a copy of the accumulated statistics.
func (l *Log) Stats() Stats { return l.stats }

// Records reports the total number of appended records.
func (l *Log) Records() int64 { return l.records }

// DurableRecords reports how many records a crash right now would preserve.
func (l *Log) DurableRecords() int64 { return l.durableRecords }

// DurableBytes reports the committed tail offset.
func (l *Log) DurableBytes() uintptr { return l.durable }

// Pending reports appended-but-uncommitted records.
func (l *Log) Pending() int64 { return l.pendingRecords }

// Free reports the remaining arena capacity.
func (l *Log) Free() uintptr { return l.cfg.Capacity - l.head }

// Append writes one record of the given payload size and flushes its lines
// per the configured write model. The record is NOT durable until Commit.
func (l *Log) Append(t *simos.Thread, size int) error {
	if size <= 0 {
		return fmt.Errorf("pmlog: record size %d", size)
	}
	total := uintptr(size+8+lineSize-1) &^ (lineSize - 1) // 8-byte length prefix, line-rounded
	if l.head+total > l.cfg.Capacity {
		return fmt.Errorf("pmlog: log full (%d free, %d needed); truncate first", l.Free(), total)
	}
	start := l.arena + l.head
	for off := uintptr(0); off < total; off += lineSize {
		t.Store(start + off)
		if l.cfg.UsePCommit {
			l.emu.PFlushOpt(t, start+off)
		} else {
			before := t.Now()
			l.emu.PFlush(t, start+off)
			l.stats.CommitStall += t.Now() - before
		}
	}
	l.head += total
	l.records++
	l.pendingRecords++
	l.stats.Appends++
	l.stats.BytesWritten += int64(total)
	return nil
}

// Commit makes every appended record durable: it drains outstanding payload
// flushes (the pcommit barrier), then updates and flushes the tail pointer.
// On return, a crash preserves all committed records.
func (l *Log) Commit(t *simos.Thread) {
	if l.pendingRecords == 0 {
		return
	}
	start := t.Now()
	if l.cfg.UsePCommit {
		l.emu.PCommit(t) // payload lines ordered before the pointer update
	}
	t.Store(l.base) // new tail offset
	l.emu.PFlush(t, l.base)
	l.stats.CommitStall += t.Now() - start

	l.durable = l.head
	l.durableRecords = l.records
	l.pendingRecords = 0
	l.stats.Commits++
}

// Truncate discards the committed prefix (checkpoint complete), resetting
// the arena. Uncommitted records are an error: truncating under a writer
// that hasn't committed would lose acknowledged-nothing data silently.
func (l *Log) Truncate(t *simos.Thread) error {
	if l.pendingRecords != 0 {
		return fmt.Errorf("pmlog: %d uncommitted records; commit before truncating", l.pendingRecords)
	}
	l.head = 0
	l.durable = 0
	t.Store(l.base)
	l.emu.PFlush(t, l.base)
	return nil
}
