package pmlog

import (
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// withLog runs fn on a fresh emulated system with a log of the given config.
func withLog(t *testing.T, cfg Config, writeLatNS float64, fn func(*core.Emulator, *simos.Thread, *Log)) {
	t.Helper()
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.Options{AllowedSockets: []int{0}, DefaultNode: -1,
		ThreadCreateCycles: 25_000, MutexOpCycles: 60, MutexHandoffCycles: 2_500, SignalDeliveryCycles: 1_200})
	if err != nil {
		t.Fatal(err)
	}
	emu, err := core.Attach(p, core.Config{
		NVMLatency:   sim.FromNanos(500),
		WriteLatency: sim.FromNanos(writeLatNS),
		MaxEpoch:     sim.Millisecond,
		InitCycles:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := emu.Run(func(th *simos.Thread) {
		l, lerr := New(emu, th, cfg)
		if lerr != nil {
			th.Failf("new log: %v", lerr)
		}
		fn(emu, th, l)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Capacity: 64}).Validate(); err == nil {
		t.Error("tiny capacity accepted")
	}
	if err := (Config{Capacity: 1 << 20}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDurabilityAdvancesOnlyAtCommit(t *testing.T) {
	withLog(t, Config{Capacity: 1 << 20, UsePCommit: true}, 600, func(emu *core.Emulator, th *simos.Thread, l *Log) {
		for i := 0; i < 5; i++ {
			if err := l.Append(th, 100); err != nil {
				th.Failf("append: %v", err)
			}
		}
		if l.DurableRecords() != 0 {
			th.Failf("durable = %d before commit, want 0", l.DurableRecords())
		}
		if l.Pending() != 5 {
			th.Failf("pending = %d, want 5", l.Pending())
		}
		l.Commit(th)
		if l.DurableRecords() != 5 || l.Pending() != 0 {
			th.Failf("after commit durable=%d pending=%d", l.DurableRecords(), l.Pending())
		}
		if l.DurableBytes() == 0 {
			th.Failf("durable bytes still 0 after commit")
		}
	})
}

func TestCommitEmptyIsNoOp(t *testing.T) {
	withLog(t, Config{Capacity: 1 << 20}, 600, func(emu *core.Emulator, th *simos.Thread, l *Log) {
		before := l.Stats().Commits
		l.Commit(th)
		if l.Stats().Commits != before {
			th.Failf("empty commit counted")
		}
	})
}

func TestLogFullAndTruncate(t *testing.T) {
	withLog(t, Config{Capacity: 4 * 64, UsePCommit: true}, 600, func(emu *core.Emulator, th *simos.Thread, l *Log) {
		if err := l.Append(th, 100); err != nil { // 2 lines
			th.Failf("append: %v", err)
		}
		if err := l.Append(th, 100); err != nil { // fills the arena
			th.Failf("append: %v", err)
		}
		if err := l.Append(th, 100); err == nil || !strings.Contains(err.Error(), "full") {
			th.Failf("overfull append error = %v", err)
		}
		// Truncation requires a clean commit point.
		if err := l.Truncate(th); err == nil {
			th.Failf("truncate with pending records accepted")
		}
		l.Commit(th)
		if err := l.Truncate(th); err != nil {
			th.Failf("truncate: %v", err)
		}
		if l.Free() != 4*64 || l.DurableBytes() != 0 {
			th.Failf("post-truncate free=%d durable=%d", l.Free(), l.DurableBytes())
		}
		if err := l.Append(th, 100); err != nil {
			th.Failf("append after truncate: %v", err)
		}
	})
}

func TestAppendRejectsBadSize(t *testing.T) {
	withLog(t, Config{Capacity: 1 << 20}, 600, func(emu *core.Emulator, th *simos.Thread, l *Log) {
		if err := l.Append(th, 0); err == nil {
			th.Failf("zero-size append accepted")
		}
	})
}

// TestGroupCommitAmortizesWriteLatency is the design question a PM log
// answers with Quartz: larger commit batches amortize the NVM write
// latency, and the pcommit model beats serialized pflush.
func TestGroupCommitAmortizesWriteLatency(t *testing.T) {
	const records = 200
	run := func(usePCommit bool, batch int) sim.Time {
		var elapsed sim.Time
		withLog(t, Config{Capacity: 1 << 22, UsePCommit: usePCommit}, 700, func(emu *core.Emulator, th *simos.Thread, l *Log) {
			start := th.Now()
			for i := 0; i < records; i++ {
				if err := l.Append(th, 192); err != nil {
					th.Failf("append: %v", err)
				}
				if (i+1)%batch == 0 {
					l.Commit(th)
				}
			}
			l.Commit(th)
			elapsed = th.Now() - start
			if l.DurableRecords() != records {
				th.Failf("durable = %d, want %d", l.DurableRecords(), records)
			}
		})
		return elapsed
	}

	strictPFlush := run(false, 1)
	strictPCommit := run(true, 1)
	batchedPCommit := run(true, 16)

	t.Logf("pflush/strict %v, pcommit/strict %v, pcommit/batch16 %v", strictPFlush, strictPCommit, batchedPCommit)
	if strictPCommit >= strictPFlush {
		t.Errorf("pcommit (%v) not faster than serialized pflush (%v)", strictPCommit, strictPFlush)
	}
	if batchedPCommit >= strictPCommit {
		t.Errorf("group commit (%v) not faster than per-record commit (%v)", batchedPCommit, strictPCommit)
	}
}

func TestStatsAccounting(t *testing.T) {
	withLog(t, Config{Capacity: 1 << 20, UsePCommit: true}, 600, func(emu *core.Emulator, th *simos.Thread, l *Log) {
		for i := 0; i < 10; i++ {
			if err := l.Append(th, 64); err != nil {
				th.Failf("append: %v", err)
			}
		}
		l.Commit(th)
		s := l.Stats()
		if s.Appends != 10 || s.Commits != 1 {
			th.Failf("stats = %+v", s)
		}
		if s.BytesWritten != 10*128 { // 64B payload + 8B header rounds to 2 lines
			th.Failf("bytes = %d, want 1280", s.BytesWritten)
		}
		if s.CommitStall <= 0 {
			th.Failf("commit stall not recorded")
		}
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Config{Capacity: 1 << 20}); err == nil {
		t.Error("nil emulator accepted")
	}
}
