package kvstore

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/workload"
)

// phaseTrafficPreload frames the store preload in vtprof output (the op
// phases themselves come from the traffic engine's op-kind tagging).
var phaseTrafficPreload = vtprof.Intern("traffic-preload")

// TrafficTarget adapts a Store to the traffic engine's workload.Target
// surface, adding the same per-key payload touches the validation workload
// charges (value bytes in a separate arena, so serving traffic is
// memory-bound the way production values are, not just tree-node-bound).
type TrafficTarget struct {
	s          *Store
	arena      uintptr
	valueBytes int
}

// NewTrafficTarget builds the adapter. valueBytes > 0 attaches a payload
// arena sized for keys in [0, keySpace) from alloc; 0 skips payloads.
func NewTrafficTarget(s *Store, keySpace uint64, valueBytes int, alloc Alloc) (*TrafficTarget, error) {
	tt := &TrafficTarget{s: s, valueBytes: valueBytes}
	if valueBytes > 0 {
		if alloc == nil {
			return nil, fmt.Errorf("kvstore: traffic valueBytes set without alloc")
		}
		arena, err := alloc(uintptr(keySpace) * uintptr(valueBytes))
		if err != nil {
			return nil, fmt.Errorf("kvstore: traffic payload arena: %w", err)
		}
		tt.arena = arena
	}
	return tt, nil
}

// touchValue charges the payload access for key: up to two cache lines at
// the head of the value slot, read or written — the validation workload's
// exact cost model.
func (tt *TrafficTarget) touchValue(t *simos.Thread, key uint64, write bool) {
	if tt.arena == 0 {
		return
	}
	addr := tt.arena + uintptr(key)*uintptr(tt.valueBytes)
	lines := (tt.valueBytes + 63) / 64
	if lines > 2 {
		lines = 2
	}
	for l := 0; l < lines; l++ {
		if write {
			t.Store(addr + uintptr(l*64))
		} else {
			t.Load(addr + uintptr(l*64))
		}
	}
}

// Preload inserts keys 0..count-1 from th, writing each payload, so scans
// over the traffic key space find dense runs.
func (tt *TrafficTarget) Preload(th *simos.Thread, count uint64) error {
	th.PushPhase(phaseTrafficPreload)
	defer th.PopPhase()
	for k := uint64(0); k < count; k++ {
		if err := tt.s.Put(th, k, k); err != nil {
			return fmt.Errorf("kvstore: traffic preload: %w", err)
		}
		tt.touchValue(th, k, true)
	}
	return nil
}

// Read looks key up and reads its payload on a hit.
func (tt *TrafficTarget) Read(t *simos.Thread, key uint64) bool {
	_, ok := tt.s.Get(t, key)
	if ok {
		tt.touchValue(t, key, false)
	}
	return ok
}

// Update inserts or overwrites key and writes its payload.
func (tt *TrafficTarget) Update(t *simos.Thread, key uint64, value uint64) error {
	if err := tt.s.Put(t, key, value); err != nil {
		return err
	}
	tt.touchValue(t, key, true)
	return nil
}

// Scan visits up to limit items from key onward, reading each payload.
func (tt *TrafficTarget) Scan(t *simos.Thread, key uint64, limit int) int {
	n := 0
	tt.s.Scan(t, key, limit, func(k, v uint64) bool {
		tt.touchValue(t, k, false)
		n++
		return true
	})
	return n
}

// TrafficTarget implements workload.Target.
var _ workload.Target = (*TrafficTarget)(nil)
