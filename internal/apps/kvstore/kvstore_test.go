package kvstore

import (
	"testing"
	"testing/quick"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

func newProc(t *testing.T) *simos.Process {
	t.Helper()
	m, err := machine.NewPreset(machine.XeonE5_2450)
	if err != nil {
		t.Fatal(err)
	}
	opts := simos.DefaultOptions()
	opts.Lookahead = 2 * sim.Microsecond
	p, err := simos.NewProcess(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newStore(t *testing.T, p *simos.Process, partitions int) *Store {
	t.Helper()
	s, err := New(p, Config{Partitions: partitions, Alloc: p.Malloc})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config accepted")
	}
	if err := (Config{Partitions: 4}).Validate(); err == nil {
		t.Error("nil alloc accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	p := newProc(t)
	s := newStore(t, p, 4)
	err := p.Run(func(th *simos.Thread) {
		for i := uint64(0); i < 500; i++ {
			if err := s.Put(th, i*31, i); err != nil {
				th.Failf("put: %v", err)
			}
		}
		for i := uint64(0); i < 500; i++ {
			v, ok := s.Get(th, i*31)
			if !ok || v != i {
				th.Failf("get(%d) = (%d,%v), want (%d,true)", i*31, v, ok, i)
			}
		}
		if _, ok := s.Get(th, 999_999_999); ok {
			t.Error("absent key found")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 500 {
		t.Errorf("Len = %d, want 500", s.Len())
	}
}

func TestPutOverwrites(t *testing.T) {
	p := newProc(t)
	s := newStore(t, p, 2)
	err := p.Run(func(th *simos.Thread) {
		s.Put(th, 42, 1)
		s.Put(th, 42, 2)
		if v, ok := s.Get(th, 42); !ok || v != 2 {
			th.Failf("get after overwrite = (%d,%v), want (2,true)", v, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len after overwrite = %d, want 1", s.Len())
	}
}

func TestSplitsPreserveOrder(t *testing.T) {
	// Insert enough sequential keys into one partition to force multi-level
	// splits, then scan to confirm sorted order and completeness.
	p := newProc(t)
	s := newStore(t, p, 1)
	const n = 2000
	err := p.Run(func(th *simos.Thread) {
		// Descending insert order stresses split paths.
		for i := n - 1; i >= 0; i-- {
			if err := s.Put(th, uint64(i), uint64(i)*3); err != nil {
				th.Failf("put: %v", err)
			}
		}
		var got []uint64
		s.Scan(th, 0, n+10, func(k, v uint64) bool {
			if v != k*3 {
				th.Failf("scan value for %d = %d, want %d", k, v, k*3)
			}
			got = append(got, k)
			return true
		})
		if len(got) != n {
			th.Failf("scan visited %d keys, want %d", len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				th.Failf("scan out of order at %d: %d after %d", i, got[i], got[i-1])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatchesReferenceMapProperty(t *testing.T) {
	prop := func(ops []uint32) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		p := newProc(t)
		s := newStore(t, p, 3)
		ref := map[uint64]uint64{}
		ok := true
		err := p.Run(func(th *simos.Thread) {
			for i, op := range ops {
				key := uint64(op % 64)
				if op%3 == 0 {
					v, found := s.Get(th, key)
					refV, refFound := ref[key]
					if found != refFound || (found && v != refV) {
						ok = false
					}
				} else {
					val := uint64(i)
					s.Put(th, key, val)
					ref[key] = val
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClientsKeepAllWrites(t *testing.T) {
	p := newProc(t)
	s := newStore(t, p, 8)
	const perThread = 300
	err := p.Run(func(th *simos.Thread) {
		var workers []*simos.Thread
		for w := 0; w < 4; w++ {
			base := uint64(w) << 32
			wt, err := th.CreateThread("client", func(t2 *simos.Thread) {
				for i := uint64(0); i < perThread; i++ {
					if err := s.Put(t2, base|i, i); err != nil {
						t2.Failf("put: %v", err)
					}
				}
			})
			if err != nil {
				th.Failf("create: %v", err)
			}
			workers = append(workers, wt)
		}
		for _, w := range workers {
			th.Join(w)
		}
		for w := 0; w < 4; w++ {
			base := uint64(w) << 32
			for i := uint64(0); i < perThread; i++ {
				if v, ok := s.Get(th, base|i); !ok || v != i {
					th.Failf("lost write %d/%d: (%d,%v)", w, i, v, ok)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4*perThread {
		t.Errorf("Len = %d, want %d", s.Len(), 4*perThread)
	}
}

func TestWorkloadThroughputScalesWithThreads(t *testing.T) {
	run := func(threads int) WorkloadResult {
		p := newProc(t)
		s := newStore(t, p, 16)
		var res WorkloadResult
		err := p.Run(func(th *simos.Thread) {
			var rerr error
			res, rerr = RunWorkload(s, th, WorkloadConfig{
				Preload: 2000, Threads: threads, OpsPerThread: 1500,
				GetFraction: 0.5, Seed: 7,
			}, nil)
			if rerr != nil {
				th.Failf("workload: %v", rerr)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	opsOne := one.PutsPerS + one.GetsPerS
	opsFour := four.PutsPerS + four.GetsPerS
	t.Logf("1 thread: %.0f ops/s; 4 threads: %.0f ops/s", opsOne, opsFour)
	if opsFour < opsOne*2 {
		t.Errorf("4-thread throughput %.0f not ≥2x single-thread %.0f", opsFour, opsOne)
	}
	if one.Puts+one.Gets != 1500 {
		t.Errorf("op count = %d, want 1500", one.Puts+one.Gets)
	}
}

func TestWorkloadValidation(t *testing.T) {
	if err := (WorkloadConfig{}).Validate(); err == nil {
		t.Error("empty workload config accepted")
	}
	if err := (WorkloadConfig{Threads: 1, OpsPerThread: 1, GetFraction: 1.5}).Validate(); err == nil {
		t.Error("GetFraction > 1 accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		p := newProc(t)
		s := newStore(t, p, 8)
		err := p.Run(func(th *simos.Thread) {
			if _, err := RunWorkload(s, th, WorkloadConfig{
				Preload: 500, Threads: 2, OpsPerThread: 500, GetFraction: 0.5, Seed: 3,
			}, nil); err != nil {
				th.Failf("workload: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return p.EndTime()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("workload nondeterministic: %v vs %v", a, b)
	}
}

func TestDelete(t *testing.T) {
	p := newProc(t)
	s := newStore(t, p, 2)
	err := p.Run(func(th *simos.Thread) {
		for i := uint64(0); i < 300; i++ {
			s.Put(th, i, i*2)
		}
		// Delete the odd keys.
		for i := uint64(1); i < 300; i += 2 {
			if !s.Delete(th, i) {
				th.Failf("delete(%d) reported absent", i)
			}
		}
		if s.Delete(th, 999) {
			th.Failf("delete of absent key reported present")
		}
		for i := uint64(0); i < 300; i++ {
			v, ok := s.Get(th, i)
			if i%2 == 1 && ok {
				th.Failf("deleted key %d still present", i)
			}
			if i%2 == 0 && (!ok || v != i*2) {
				th.Failf("surviving key %d = (%d,%v)", i, v, ok)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 150 {
		t.Errorf("Len after deletes = %d, want 150", s.Len())
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	p := newProc(t)
	s := newStore(t, p, 1)
	err := p.Run(func(th *simos.Thread) {
		for round := 0; round < 3; round++ {
			for i := uint64(0); i < 200; i++ {
				s.Put(th, i, uint64(round))
			}
			for i := uint64(0); i < 200; i++ {
				s.Delete(th, i)
			}
		}
		if s.Len() != 0 {
			th.Failf("Len = %d after full delete", s.Len())
		}
		s.Put(th, 42, 7)
		if v, ok := s.Get(th, 42); !ok || v != 7 {
			th.Failf("reinsert failed: (%d,%v)", v, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
