// Package kvstore implements a concurrent, ordered, in-memory key-value
// store over the simulated memory hierarchy. It stands in for MassTree in
// the paper's §4.7 case study: a cache-crafted tree whose upper levels stay
// cache-resident while leaf accesses are memory-bound, served by multiple
// threads with short critical sections.
//
// Structurally it is a hash-partitioned collection of B+-trees (a trie of
// B+-trees flattened to one level), each partition under a reader-writer
// lock — MassTree reads are non-blocking, and shared read locks are the
// closest simulated equivalent — so put/get scale with threads the way the
// paper's 1-8 thread runs do. Every node visit issues simulated memory
// loads, so the store's throughput responds to emulated NVM latency and
// bandwidth.
package kvstore

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/simos"
)

// order is the B+-tree fanout: keys per node.
const order = 16

// nodeBytes is the simulated footprint of one tree node: 16 keys (128 B) +
// 17 pointers (136 B) + header, rounded to cache lines.
const nodeBytes = 320

// keyLines is how many cache lines a node's key area spans.
const keyLines = 2

// Alloc abstracts the allocation source so a store can live in volatile
// DRAM (malloc) or persistent memory (the emulator's pmalloc).
type Alloc func(size uintptr) (uintptr, error)

// Config parameterizes a store.
type Config struct {
	// Partitions is the number of independently locked B+-trees.
	Partitions int
	// Alloc places tree nodes in simulated memory.
	Alloc Alloc
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Partitions <= 0 {
		return fmt.Errorf("kvstore: Partitions = %d, must be positive", c.Partitions)
	}
	if c.Alloc == nil {
		return fmt.Errorf("kvstore: nil Alloc")
	}
	return nil
}

// node is one B+-tree node. Key and pointer contents are mirrored host-side;
// simAddr anchors the node's simulated memory footprint so traversals cost
// real (simulated) loads.
type node struct {
	simAddr  uintptr
	leaf     bool
	keys     []uint64
	values   []uint64 // leaf payloads
	children []*node  // internal fanout
	next     *node    // leaf chaining for scans
}

// partition is one locked B+-tree. Reads take the lock shared — MassTree
// reads are non-blocking on real hardware, and a reader-writer lock is the
// closest simulated equivalent — while structural modifications take it
// exclusive.
type partition struct {
	mu   *simos.RWMutex
	root *node
	size int
}

// Store is the partitioned tree store.
type Store struct {
	cfg   Config
	parts []*partition
}

// New builds an empty store inside process p.
func New(p *simos.Process, cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg}
	for i := 0; i < cfg.Partitions; i++ {
		root, err := s.newNode(true)
		if err != nil {
			return nil, err
		}
		s.parts = append(s.parts, &partition{
			mu:   p.NewRWMutex(fmt.Sprintf("kv-part-%d", i)),
			root: root,
		})
	}
	return s, nil
}

func (s *Store) newNode(leaf bool) (*node, error) {
	addr, err := s.cfg.Alloc(nodeBytes)
	if err != nil {
		return nil, fmt.Errorf("kvstore: allocating node: %w", err)
	}
	return &node{simAddr: addr, leaf: leaf}, nil
}

// partOf hashes a key to its partition.
func (s *Store) partOf(key uint64) *partition {
	h := key * 0x9e3779b97f4a7c15
	return s.parts[h>>40%uint64(len(s.parts))]
}

// Len reports the total number of stored keys.
func (s *Store) Len() int {
	n := 0
	for _, p := range s.parts {
		n += p.size
	}
	return n
}

// touchNode charges the simulated loads of visiting a node: the header line
// plus the key area, fetched in parallel as a modern core would.
func touchNode(t *simos.Thread, n *node, batch []uintptr) {
	batch = batch[:0]
	for l := 0; l <= keyLines; l++ {
		batch = append(batch, n.simAddr+uintptr(l*64))
	}
	t.LoadGroup(batch)
}

// searchCost charges the branch-and-compare work of a binary search.
func searchCost(t *simos.Thread, n int) {
	t.Compute(int64(8 + 4*n))
}

// opCost charges the fixed per-request work (hashing, dispatch, response
// marshalling) that accompanies every store operation.
const opCost = 350

// Get looks key up from thread t, reporting its value and presence.
func (s *Store) Get(t *simos.Thread, key uint64) (uint64, bool) {
	t.Compute(opCost)
	p := s.partOf(key)
	p.mu.RLock(t)
	defer p.mu.Unlock(t)
	batch := make([]uintptr, 0, keyLines+1)
	n := p.root
	for !n.leaf {
		touchNode(t, n, batch)
		searchCost(t, len(n.keys))
		n = n.children[childIndex(n.keys, key)]
	}
	touchNode(t, n, batch)
	searchCost(t, len(n.keys))
	for i, k := range n.keys {
		if k == key {
			// Load the value's line.
			t.Load(n.simAddr + uintptr((keyLines+1+i/8)*64))
			return n.values[i], true
		}
	}
	return 0, false
}

// Put inserts or updates key from thread t.
func (s *Store) Put(t *simos.Thread, key, value uint64) error {
	t.Compute(opCost)
	p := s.partOf(key)
	p.mu.Lock(t)
	defer p.mu.Unlock(t)

	batch := make([]uintptr, 0, keyLines+1)
	// Descend, remembering the path for splits.
	var path []*node
	n := p.root
	for !n.leaf {
		touchNode(t, n, batch)
		searchCost(t, len(n.keys))
		path = append(path, n)
		n = n.children[childIndex(n.keys, key)]
	}
	touchNode(t, n, batch)
	searchCost(t, len(n.keys))

	// Update in place?
	for i, k := range n.keys {
		if k == key {
			n.values[i] = value
			t.Store(n.simAddr + uintptr((keyLines+1+i/8)*64))
			return nil
		}
	}

	// Insert into the leaf.
	idx := childIndex(n.keys, key)
	n.keys = insertU64(n.keys, idx, key)
	n.values = insertU64(n.values, idx, value)
	t.Store(n.simAddr)       // header/count line
	t.Store(n.simAddr + 64)  // shifted key area
	t.Store(n.simAddr + 192) // shifted value area
	p.size++

	// Split upward while overfull.
	child := n
	for i := len(path) - 1; len(child.keys) > order; i-- {
		sep, right, err := s.split(t, child)
		if err != nil {
			return err
		}
		if i < 0 {
			// Overfull root: grow a new root above it.
			newRoot, err := s.newNode(false)
			if err != nil {
				return err
			}
			newRoot.keys = []uint64{sep}
			newRoot.children = []*node{child, right}
			t.Store(newRoot.simAddr)
			p.root = newRoot
			break
		}
		parent := path[i]
		pidx := childIndex(parent.keys, sep)
		parent.keys = insertU64(parent.keys, pidx, sep)
		parent.children = insertNode(parent.children, pidx+1, right)
		t.Store(parent.simAddr)
		t.Store(parent.simAddr + 64)
		child = parent
	}
	return nil
}

// split divides an overfull node in half, returning the separator key to
// lift into the parent and the new right sibling.
func (s *Store) split(t *simos.Thread, n *node) (sep uint64, right *node, err error) {
	right, err = s.newNode(n.leaf)
	if err != nil {
		return 0, nil, err
	}
	mid := len(n.keys) / 2
	sep = n.keys[mid]
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.values = append(right.values, n.values[mid:]...)
		n.keys = n.keys[:mid]
		n.values = n.values[:mid]
		right.next = n.next
		n.next = right
	} else {
		// The separator moves up and out of both halves.
		right.keys = append(right.keys, n.keys[mid+1:]...)
		right.children = append(right.children, n.children[mid+1:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	t.Store(n.simAddr)
	t.Store(right.simAddr)
	t.Store(right.simAddr + 64)
	t.Compute(200) // memmove bookkeeping
	return sep, right, nil
}

// Delete removes key from the store, reporting whether it was present.
// Leaves are not rebalanced on removal (the usual choice for in-memory
// stores: space is reclaimed on later splits), so the tree stays valid and
// lookups stay correct.
func (s *Store) Delete(t *simos.Thread, key uint64) bool {
	t.Compute(opCost)
	p := s.partOf(key)
	p.mu.Lock(t)
	defer p.mu.Unlock(t)
	batch := make([]uintptr, 0, keyLines+1)
	n := p.root
	for !n.leaf {
		touchNode(t, n, batch)
		searchCost(t, len(n.keys))
		n = n.children[childIndex(n.keys, key)]
	}
	touchNode(t, n, batch)
	searchCost(t, len(n.keys))
	for i, k := range n.keys {
		if k == key {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.values = append(n.values[:i], n.values[i+1:]...)
			t.Store(n.simAddr)
			t.Store(n.simAddr + 64)
			p.size--
			return true
		}
	}
	return false
}

// Scan visits up to limit keys in [from, ∞) in one partition's order,
// calling fn for each. It exists to exercise leaf chaining; cross-partition
// ordered scans are out of scope (as for a hash-partitioned MassTree).
func (s *Store) Scan(t *simos.Thread, from uint64, limit int, fn func(k, v uint64) bool) {
	p := s.partOf(from)
	p.mu.RLock(t)
	defer p.mu.Unlock(t)
	batch := make([]uintptr, 0, keyLines+1)
	n := p.root
	for !n.leaf {
		touchNode(t, n, batch)
		n = n.children[childIndex(n.keys, from)]
	}
	count := 0
	for n != nil && count < limit {
		touchNode(t, n, batch)
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if count >= limit || !fn(k, n.values[i]) {
				return
			}
			count++
		}
		n = n.next
	}
}

// childIndex returns the number of keys < key (the descent index).
func childIndex(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertU64(s []uint64, i int, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNode(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
