package kvstore

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/workload"
)

// Coarse vtprof phases: the preload (setup, off the measured window) and the
// measured op loop.
var (
	phasePreload = vtprof.Intern("kv-preload")
	phaseOps     = vtprof.Intern("kv-ops")
)

// WorkloadConfig drives the §4.7 put/get experiment.
type WorkloadConfig struct {
	// Preload is the number of keys loaded before measurement.
	Preload int
	// Threads is the number of client threads (the paper runs 1,2,4,8).
	Threads int
	// OpsPerThread is the measured operation count per thread.
	OpsPerThread int
	// GetFraction in [0,1] splits the op mix (0.5 = the usual 50/50).
	GetFraction float64
	// KeySpace bounds generated keys; 0 defaults to 4x Preload.
	KeySpace uint64
	// ValueBytes, when positive, attaches a payload of that size to every
	// key in a separate arena: gets read it, puts write it. This is what
	// makes the workload memory-bound the way a production store's values
	// are (tree nodes alone can be cache-resident).
	ValueBytes int
	// ValueAlloc places the payload arena; required when ValueBytes > 0.
	ValueAlloc Alloc
	// Seed drives the operation streams.
	Seed uint64
}

// Validate reports configuration errors.
func (c WorkloadConfig) Validate() error {
	if c.Preload < 0 || c.Threads <= 0 || c.OpsPerThread <= 0 {
		return fmt.Errorf("kvstore: bad workload %+v", c)
	}
	if c.GetFraction < 0 || c.GetFraction > 1 {
		return fmt.Errorf("kvstore: GetFraction %g outside [0,1]", c.GetFraction)
	}
	if c.ValueBytes > 0 && c.ValueAlloc == nil {
		return fmt.Errorf("kvstore: ValueBytes set without ValueAlloc")
	}
	return nil
}

// WorkloadResult reports measured throughput in simulated time.
type WorkloadResult struct {
	CT       sim.Time
	Puts     int64
	Gets     int64
	PutsPerS float64
	GetsPerS float64
}

// RunWorkload preloads the store and drives the put/get mix from Threads
// client threads spawned off main. closeEpoch, when non-nil, is invoked per
// worker before its final timestamp (the emulator's CloseEpoch) so trailing
// epoch delays land inside the measured window.
func RunWorkload(s *Store, main *simos.Thread, cfg WorkloadConfig, closeEpoch func(*simos.Thread)) (WorkloadResult, error) {
	if err := cfg.Validate(); err != nil {
		return WorkloadResult{}, err
	}
	keySpace := cfg.KeySpace
	if keySpace == 0 {
		keySpace = uint64(4*cfg.Preload + 16)
	}
	// Payload arena: one slot per possible key.
	var arena uintptr
	if cfg.ValueBytes > 0 {
		var err error
		arena, err = cfg.ValueAlloc(uintptr(keySpace) * uintptr(cfg.ValueBytes))
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("kvstore: payload arena: %w", err)
		}
	}
	touchValue := func(t *simos.Thread, key uint64, write bool) {
		if arena == 0 {
			return
		}
		addr := arena + uintptr(key)*uintptr(cfg.ValueBytes)
		lines := (cfg.ValueBytes + 63) / 64
		if lines > 2 {
			lines = 2 // ops touch the head of large values
		}
		for l := 0; l < lines; l++ {
			if write {
				t.Store(addr + uintptr(l*64))
			} else {
				t.Load(addr + uintptr(l*64))
			}
		}
	}

	// Key and op-pick streams come from internal/workload, which preserves
	// this figure's historical generator bit-for-bit (golden-checked).
	dist := workload.Uniform{Keys: keySpace}
	pre := workload.NewLCG(workload.PreloadState(cfg.Seed))
	main.PushPhase(phasePreload)
	for i := 0; i < cfg.Preload; i++ {
		key := dist.Key(&pre)
		if err := s.Put(main, key, uint64(i)); err != nil {
			main.PopPhase()
			return WorkloadResult{}, fmt.Errorf("kvstore: preload: %w", err)
		}
		touchValue(main, key, true)
	}
	main.PopPhase()

	// Start rendezvous: every worker checks in after it is created and
	// (under an emulator) registered; only then does main open the measured
	// window and release them — exactly how a real benchmark separates
	// setup costs like thread registration from measurement.
	startMu := main.Process().NewMutex("kv-start-mu")
	arrivedCv := main.Process().NewCond("kv-arrived-cv")
	goCv := main.Process().NewCond("kv-go-cv")
	arrived := 0
	started := false

	var res WorkloadResult
	workers := make([]*simos.Thread, 0, cfg.Threads)
	putCounts := make([]int64, cfg.Threads)
	getCounts := make([]int64, cfg.Threads)
	var firstErr error
	for w := 0; w < cfg.Threads; w++ {
		w := w
		th, err := main.CreateThread(fmt.Sprintf("kv-client-%d", w), func(t *simos.Thread) {
			startMu.Lock(t)
			arrived++
			arrivedCv.Signal(t)
			for !started {
				goCv.Wait(t, startMu)
			}
			startMu.Unlock(t)
			r := workload.NewLCG(workload.ClientState(cfg.Seed, w))
			t.PushPhase(phaseOps)
			defer t.PopPhase()
			for i := 0; i < cfg.OpsPerThread; i++ {
				key := dist.Key(&r)
				if workload.GetDraw(&r, cfg.GetFraction) {
					if _, ok := s.Get(t, key); ok {
						touchValue(t, key, false)
					}
					getCounts[w]++
				} else {
					if err := s.Put(t, key, uint64(i)); err != nil && firstErr == nil {
						firstErr = err
						return
					}
					touchValue(t, key, true)
					putCounts[w]++
				}
			}
			if closeEpoch != nil {
				closeEpoch(t)
			}
		})
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("kvstore: spawning client %d: %w", w, err)
		}
		workers = append(workers, th)
	}
	// Wait for all workers to check in, flush main's pending epoch delay
	// (from the preload), then open the window and release the workers.
	startMu.Lock(main)
	for arrived < cfg.Threads {
		arrivedCv.Wait(main, startMu)
	}
	if closeEpoch != nil {
		closeEpoch(main)
	}
	start := main.Now()
	started = true
	goCv.Broadcast(main)
	startMu.Unlock(main)
	var end sim.Time
	for _, th := range workers {
		main.Join(th)
		if th.Now() > end {
			end = th.Now()
		}
	}
	if firstErr != nil {
		return WorkloadResult{}, firstErr
	}
	res.CT = end - start
	for w := 0; w < cfg.Threads; w++ {
		res.Puts += putCounts[w]
		res.Gets += getCounts[w]
	}
	secs := res.CT.Seconds()
	if secs > 0 {
		res.PutsPerS = float64(res.Puts) / secs
		res.GetsPerS = float64(res.Gets) / secs
	}
	return res, nil
}
