// Package pagerank implements the parallel-capable PageRank application of
// the paper's §4.7 case study on the simulated memory hierarchy, together
// with the seeded scale-free graph generator that stands in for the paper's
// 4.8M-vertex Yahoo web graph (scaled down; the access pattern — streaming
// edge arrays plus random vertex gathers — is what matters for latency and
// bandwidth sensitivity).
package pagerank

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/simos"
)

// Graph is a CSR (compressed sparse row) graph over simulated memory: for
// each destination vertex, the packed list of its in-neighbours. Host-side
// slices mirror the contents; the sim* fields anchor the simulated
// footprint so traversal costs real loads.
type Graph struct {
	N       int
	Offsets []int32 // len N+1
	Edges   []int32 // in-neighbour ids, len M
	OutDeg  []int32 // out-degree per vertex

	simOffsets uintptr
	simEdges   uintptr
	simOutDeg  uintptr
}

// Alloc places graph arrays in simulated memory (malloc or pmalloc).
type Alloc func(size uintptr) (uintptr, error)

// GenerateConfig parameterizes the synthetic scale-free generator.
type GenerateConfig struct {
	// Vertices is N.
	Vertices int
	// EdgesPerVertex is the average in-degree.
	EdgesPerVertex int
	// Seed makes generation deterministic.
	Seed uint64
}

// Validate reports configuration errors.
func (c GenerateConfig) Validate() error {
	if c.Vertices <= 1 || c.EdgesPerVertex <= 0 {
		return fmt.Errorf("pagerank: bad GenerateConfig %+v", c)
	}
	return nil
}

// Generate builds a scale-free-ish directed graph: edge sources are drawn
// with preferential skew (low-id vertices act as hubs), giving the heavy
// tail of web graphs.
func Generate(cfg GenerateConfig, alloc Alloc) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Vertices
	m := n * cfg.EdgesPerVertex
	g := &Graph{
		N:       n,
		Offsets: make([]int32, n+1),
		Edges:   make([]int32, 0, m),
		OutDeg:  make([]int32, n),
	}
	x := cfg.Seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x >> 11
	}
	// Each vertex v receives EdgesPerVertex in-edges; sources are skewed
	// toward hubs by squaring a uniform draw.
	for v := 0; v < n; v++ {
		g.Offsets[v] = int32(len(g.Edges))
		for e := 0; e < cfg.EdgesPerVertex; e++ {
			u := next() % uint64(n)
			u = u * u / uint64(n) // quadratic skew toward low ids
			if int(u) == v {
				u = (u + 1) % uint64(n)
			}
			g.Edges = append(g.Edges, int32(u))
			g.OutDeg[u]++
		}
	}
	g.Offsets[n] = int32(len(g.Edges))
	if alloc != nil {
		var err error
		if g.simOffsets, err = alloc(uintptr(len(g.Offsets)) * 4); err != nil {
			return nil, fmt.Errorf("pagerank: offsets: %w", err)
		}
		if g.simEdges, err = alloc(uintptr(len(g.Edges)) * 4); err != nil {
			return nil, fmt.Errorf("pagerank: edges: %w", err)
		}
		if g.simOutDeg, err = alloc(uintptr(len(g.OutDeg)) * 4); err != nil {
			return nil, fmt.Errorf("pagerank: outdeg: %w", err)
		}
	}
	return g, nil
}

// M reports the edge count.
func (g *Graph) M() int { return len(g.Edges) }

// SimEdges reports the simulated base address of the edge array.
func (g *Graph) SimEdges() uintptr { return g.simEdges }

// SimOffsets reports the simulated base address of the offsets array.
func (g *Graph) SimOffsets() uintptr { return g.simOffsets }

// edgeAddr is the simulated address of edge slot i (4-byte entries).
func (g *Graph) edgeAddr(i int) uintptr { return g.simEdges + uintptr(i)*4 }

// loadEdgesLine charges the streaming load covering edge slot i's cache
// line (16 int32 entries per 64-byte line).
func (g *Graph) loadEdgesLine(t *simos.Thread, i int) {
	t.Load(g.edgeAddr(i))
}
