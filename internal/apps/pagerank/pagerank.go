package pagerank

import (
	"fmt"
	"math"

	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// phaseRun frames the whole power-iteration kernel in vtprof output.
var phaseRun = vtprof.Intern("pagerank")

// Config parameterizes a PageRank computation.
type Config struct {
	// Damping is the PageRank damping factor (0.85 conventionally).
	Damping float64
	// Epsilon is the L1 convergence threshold.
	Epsilon float64
	// MaxIters bounds the iteration count.
	MaxIters int
	// GatherWidth is the number of rank gathers issued in parallel per
	// step — the memory-level parallelism an out-of-order core extracts
	// from independent x[src] reads.
	GatherWidth int
	// RankAlloc places the rank vectors; nil falls back to the graph
	// allocator passed to Run. Separating them is how the two-memory
	// example keeps hot vectors in DRAM while the large graph sits in NVM.
	RankAlloc Alloc
}

// DefaultConfig returns the standard §4.7 setup.
func DefaultConfig() Config {
	return Config{Damping: 0.85, Epsilon: 1e-7, MaxIters: 64, GatherWidth: 8}
}

// Result reports one computation's outcome.
type Result struct {
	Iterations int
	Error      float64 // final L1 delta
	CT         sim.Time
	Ranks      []float64
}

// Run computes PageRank on g from thread t with the power-iteration scheme
// of the paper's reference implementation (Gleich et al.'s linear-system
// formulation). Each iteration streams the CSR edge array (prefetch-
// friendly) while gathering source ranks at random (latency-bound) — the
// mix that produces Fig. 16's non-linear latency sensitivity.
func Run(g *Graph, t *simos.Thread, cfg Config, alloc Alloc) (Result, error) {
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		return Result{}, fmt.Errorf("pagerank: damping %g outside (0,1)", cfg.Damping)
	}
	if cfg.MaxIters <= 0 {
		return Result{}, fmt.Errorf("pagerank: MaxIters %d, must be positive", cfg.MaxIters)
	}
	if cfg.GatherWidth <= 0 {
		cfg.GatherWidth = 8
	}
	rankAlloc := cfg.RankAlloc
	if rankAlloc == nil {
		rankAlloc = alloc
	}
	if rankAlloc == nil {
		return Result{}, fmt.Errorf("pagerank: nil allocator")
	}
	n := g.N
	simX, err := rankAlloc(uintptr(n) * 8)
	if err != nil {
		return Result{}, fmt.Errorf("pagerank: rank vector: %w", err)
	}
	simY, err := rankAlloc(uintptr(n) * 8)
	if err != nil {
		return Result{}, fmt.Errorf("pagerank: next vector: %w", err)
	}

	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}

	batch := make([]uintptr, 0, cfg.GatherWidth)
	srcs := make([]int32, 0, cfg.GatherWidth)
	t.PushPhase(phaseRun)
	defer t.PopPhase()
	start := t.Now()
	var res Result
	for iter := 0; iter < cfg.MaxIters; iter++ {
		// Dangling vertices (no out-links) distribute their rank uniformly
		// — the standard teleportation of the linear-system formulation.
		var dangling float64
		for v := 0; v < n; v++ {
			if g.OutDeg[v] == 0 {
				dangling += x[v]
			}
		}
		t.Compute(int64(n)) // dangling scan
		base := (1-cfg.Damping)/float64(n) + cfg.Damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			s := 0.0
			lo, hi := int(g.Offsets[v]), int(g.Offsets[v+1])
			for e := lo; e < hi; {
				batch = batch[:0]
				srcs = srcs[:0]
				for ; e < hi && len(batch) < cfg.GatherWidth; e++ {
					if e%16 == 0 {
						g.loadEdgesLine(t, e) // streaming edge-array line
					}
					src := g.Edges[e]
					srcs = append(srcs, src)
					batch = append(batch, simX+uintptr(src)*8)
				}
				t.LoadGroup(batch) // random rank gathers, MLP-overlapped
				t.Compute(int64(14 * len(batch)))
				for _, src := range srcs {
					s += x[src] / float64(g.OutDeg[src])
				}
			}
			y[v] = base + cfg.Damping*s
			if v%8 == 0 {
				t.Store(simY + uintptr(v)*8) // streaming result line
			}
		}
		// Convergence: L1 delta over both vectors (streaming reads, one
		// simulated load per 16 vertices — a stride-128 run).
		var delta float64
		for v := 0; v < n; v++ {
			delta += math.Abs(y[v] - x[v])
		}
		t.LoadRun(simY, 128, (n+15)/16)
		t.Compute(int64(4 * n))

		x, y = y, x
		simX, simY = simY, simX
		res.Iterations = iter + 1
		res.Error = delta
		if delta < cfg.Epsilon {
			break
		}
	}
	res.CT = t.Now() - start
	res.Ranks = x
	return res, nil
}
