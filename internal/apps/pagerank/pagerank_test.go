package pagerank

import (
	"math"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/simos"
)

func newProc(t *testing.T) *simos.Process {
	t.Helper()
	m, err := machine.NewPreset(machine.XeonE5_2450)
	if err != nil {
		t.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenerateConfig{}, nil); err == nil {
		t.Error("empty generate config accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := Generate(GenerateConfig{Vertices: 1000, EdgesPerVertex: 8, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1000 || g.M() != 8000 {
		t.Fatalf("graph shape = %d vertices / %d edges", g.N, g.M())
	}
	if g.Offsets[0] != 0 || int(g.Offsets[g.N]) != g.M() {
		t.Error("CSR offsets malformed")
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			t.Fatalf("offsets not monotone at %d", v)
		}
	}
	// Scale-free skew: the top-32 hub vertices should receive well above
	// their uniform share of edges.
	var hubEdges int
	for _, e := range g.Edges {
		if e < 32 {
			hubEdges++
		}
	}
	if frac := float64(hubEdges) / float64(g.M()); frac < 0.05 {
		t.Errorf("hub fraction %.3f, want skew > uniform 0.032", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(GenerateConfig{Vertices: 500, EdgesPerVertex: 4, Seed: 9}, nil)
	b, _ := Generate(GenerateConfig{Vertices: 500, EdgesPerVertex: 4, Seed: 9}, nil)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs across same-seed generations", i)
		}
	}
}

func TestRunConvergesAndNormalizes(t *testing.T) {
	p := newProc(t)
	g, err := Generate(GenerateConfig{Vertices: 2000, EdgesPerVertex: 6, Seed: 3}, p.Malloc)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	err = p.Run(func(th *simos.Thread) {
		var rerr error
		res, rerr = Run(g, th, DefaultConfig(), p.Malloc)
		if rerr != nil {
			th.Failf("pagerank: %v", rerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.Iterations >= 64 && res.Error > 1e-4 {
		t.Errorf("did not converge: %d iters, err %g", res.Iterations, res.Error)
	}
	var sum float64
	for _, r := range res.Ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// With dangling mass approximated, the total stays near 1.
	if math.Abs(sum-1) > 0.2 {
		t.Errorf("rank sum = %g, want ~1", sum)
	}
	if res.CT <= 0 {
		t.Error("non-positive completion time")
	}
}

func TestHubsRankHigher(t *testing.T) {
	p := newProc(t)
	g, err := Generate(GenerateConfig{Vertices: 2000, EdgesPerVertex: 6, Seed: 3}, p.Malloc)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	err = p.Run(func(th *simos.Thread) {
		res, _ = Run(g, th, DefaultConfig(), p.Malloc)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hubs (low ids, which receive skewed in-edges) must out-rank the tail
	// on average.
	var hub, tail float64
	for v := 0; v < 64; v++ {
		hub += res.Ranks[v]
	}
	for v := g.N - 64; v < g.N; v++ {
		tail += res.Ranks[v]
	}
	if hub <= tail {
		t.Errorf("hub rank mass %g not above tail %g", hub, tail)
	}
}

func TestRunValidation(t *testing.T) {
	p := newProc(t)
	g, _ := Generate(GenerateConfig{Vertices: 10, EdgesPerVertex: 2, Seed: 1}, p.Malloc)
	err := p.Run(func(th *simos.Thread) {
		if _, err := Run(g, th, Config{Damping: 1.5, MaxIters: 10}, p.Malloc); err == nil {
			t.Error("bad damping accepted")
		}
		if _, err := Run(g, th, Config{Damping: 0.85}, p.Malloc); err == nil {
			t.Error("zero MaxIters accepted")
		}
		if _, err := Run(g, th, DefaultConfig(), nil); err == nil {
			t.Error("nil allocator accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRanksIndependentOfMemoryPlacement(t *testing.T) {
	// Simulated memory placement must never change numerical results —
	// only timing.
	run := func(node int) []float64 {
		p := newProc(t)
		alloc := func(size uintptr) (uintptr, error) { return p.MallocOnNode(size, node) }
		g, err := Generate(GenerateConfig{Vertices: 800, EdgesPerVertex: 4, Seed: 11}, alloc)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := p.Run(func(th *simos.Thread) {
			cfg := DefaultConfig()
			cfg.MaxIters = 10
			res, _ = Run(g, th, cfg, alloc)
		}); err != nil {
			t.Fatal(err)
		}
		return res.Ranks
	}
	a, b := run(0), run(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs across placements: %g vs %g", i, a[i], b[i])
		}
	}
}
