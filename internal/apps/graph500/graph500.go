// Package graph500 implements the Graph500 reference-style breadth-first
// search kernel on the simulated memory hierarchy. The paper's conclusion
// reports extended validation with the Graph500 reference implementation;
// this package provides that workload: BFS over a synthetic scale-free CSR
// graph with the visited-bitmap and frontier-queue access pattern whose
// random vertex probes are strongly latency-bound.
package graph500

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/apps/pagerank"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// phaseBFS frames the BFS kernel in vtprof output.
var phaseBFS = vtprof.Intern("bfs")

// Result reports one BFS run.
type Result struct {
	// Visited is the number of vertices reached.
	Visited int
	// EdgesTraversed counts scanned edges.
	EdgesTraversed int64
	// CT is the kernel completion time.
	CT sim.Time
	// TEPS is traversed edges per simulated second.
	TEPS float64
	// Depth is the BFS tree height.
	Depth int
}

// BFS runs a breadth-first search from root over g's in-edge CSR (treated
// as undirected-ish adjacency, as the Graph500 kernel does with its
// symmetrized input).
func BFS(g *pagerank.Graph, t *simos.Thread, root int, alloc pagerank.Alloc) (Result, error) {
	if root < 0 || root >= g.N {
		return Result{}, fmt.Errorf("graph500: root %d outside [0,%d)", root, g.N)
	}
	if alloc == nil {
		return Result{}, fmt.Errorf("graph500: nil allocator")
	}
	simVisited, err := alloc(uintptr(g.N) / 8)
	if err != nil {
		return Result{}, fmt.Errorf("graph500: visited bitmap: %w", err)
	}
	simParent, err := alloc(uintptr(g.N) * 4)
	if err != nil {
		return Result{}, fmt.Errorf("graph500: parent array: %w", err)
	}

	visited := make([]bool, g.N)
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	frontier := []int32{int32(root)}
	visited[root] = true
	parent[root] = int32(root)
	t.PushPhase(phaseBFS)
	defer t.PopPhase()

	var res Result
	res.Visited = 1
	start := t.Now()
	for len(frontier) > 0 {
		res.Depth++
		var next []int32
		for _, v := range frontier {
			lo, hi := int(g.Offsets[v]), int(g.Offsets[v+1])
			for e := lo; e < hi; e++ {
				if e%16 == 0 {
					t.Load(g.SimEdges() + uintptr(e)*4) // streaming adjacency line
				}
				u := g.Edges[e]
				res.EdgesTraversed++
				// Probe the visited bitmap: a random, latency-bound read.
				t.Load(simVisited + uintptr(u)/8)
				t.Compute(4)
				if !visited[u] {
					visited[u] = true
					parent[u] = v
					res.Visited++
					t.Store(simVisited + uintptr(u)/8)
					t.Store(simParent + uintptr(u)*4)
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	res.CT = t.Now() - start
	if secs := res.CT.Seconds(); secs > 0 {
		res.TEPS = float64(res.EdgesTraversed) / secs
	}
	return res, nil
}
