package graph500

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/apps/pagerank"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/simos"
)

func newProc(t *testing.T) *simos.Process {
	t.Helper()
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBFSVisitsReachableVertices(t *testing.T) {
	p := newProc(t)
	g, err := pagerank.Generate(pagerank.GenerateConfig{Vertices: 3000, EdgesPerVertex: 8, Seed: 5}, p.Malloc)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	err = p.Run(func(th *simos.Thread) {
		var rerr error
		res, rerr = BFS(g, th, 0, p.Malloc)
		if rerr != nil {
			th.Failf("bfs: %v", rerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dense scale-free graphs are mostly one component when traversed via
	// in-edges from a hub.
	if res.Visited < g.N/4 {
		t.Errorf("visited %d of %d vertices; expected a large component from a hub root", res.Visited, g.N)
	}
	if res.EdgesTraversed == 0 || res.TEPS <= 0 || res.Depth == 0 {
		t.Errorf("degenerate result %+v", res)
	}
}

func TestBFSValidation(t *testing.T) {
	p := newProc(t)
	g, _ := pagerank.Generate(pagerank.GenerateConfig{Vertices: 10, EdgesPerVertex: 2, Seed: 1}, p.Malloc)
	err := p.Run(func(th *simos.Thread) {
		if _, err := BFS(g, th, -1, p.Malloc); err == nil {
			t.Error("negative root accepted")
		}
		if _, err := BFS(g, th, 99, p.Malloc); err == nil {
			t.Error("out-of-range root accepted")
		}
		if _, err := BFS(g, th, 0, nil); err == nil {
			t.Error("nil allocator accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBFSDeterministic(t *testing.T) {
	run := func() Result {
		p := newProc(t)
		g, err := pagerank.Generate(pagerank.GenerateConfig{Vertices: 1000, EdgesPerVertex: 4, Seed: 2}, p.Malloc)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := p.Run(func(th *simos.Thread) {
			res, _ = BFS(g, th, 0, p.Malloc)
		}); err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("BFS nondeterministic: %+v vs %+v", a, b)
	}
}

func TestBFSSlowerOnRemoteMemory(t *testing.T) {
	// The BFS kernel is latency-bound: physically remote placement must
	// slow it down by roughly the latency ratio.
	run := func(node int) Result {
		p := newProc(t)
		alloc := func(size uintptr) (uintptr, error) { return p.MallocOnNode(size, node) }
		g, err := pagerank.Generate(pagerank.GenerateConfig{Vertices: 2000, EdgesPerVertex: 6, Seed: 8}, alloc)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := p.Run(func(th *simos.Thread) {
			res, _ = BFS(g, th, 0, alloc)
		}); err != nil {
			t.Fatal(err)
		}
		return res
	}
	local := run(0)
	remote := run(1)
	if remote.CT <= local.CT {
		t.Errorf("remote BFS %v not slower than local %v", remote.CT, local.CT)
	}
	if local.Visited != remote.Visited {
		t.Errorf("placement changed traversal: %d vs %d visited", local.Visited, remote.Visited)
	}
}
