package simos

// FuncTable holds the process's overridable "libc/libpthread" entry points.
// System libraries define these as weak symbols; the real Quartz overrides
// them by defining same-signature functions in a library loaded first via
// LD_PRELOAD (§3.1). Here an emulator overrides table entries before the
// process runs, wrapping the previous value to redirect to the original
// function after its own bookkeeping — the same call-intercept-redirect
// structure.
type FuncTable struct {
	// ThreadCreate intercepts pthread_create. socket pins the new thread
	// to a socket; -1 follows process policy.
	ThreadCreate func(parent *Thread, name string, fn ThreadFunc, socket int) (*Thread, error)
	// MutexLock intercepts pthread_mutex_lock.
	MutexLock func(t *Thread, m *Mutex)
	// MutexUnlock intercepts pthread_mutex_unlock — the lock-release event
	// the Quartz prototype interposes on to propagate delays (§2.3).
	MutexUnlock func(t *Thread, m *Mutex)
	// CondSignal intercepts pthread_cond_signal.
	CondSignal func(t *Thread, c *Cond)
	// CondBroadcast intercepts pthread_cond_broadcast.
	CondBroadcast func(t *Thread, c *Cond)
	// BarrierWait intercepts an OpenMP-style barrier rendezvous.
	BarrierWait func(t *Thread, b *Barrier)
	// RWLockShared intercepts pthread_rwlock_rdlock.
	RWLockShared func(t *Thread, m *RWMutex)
	// RWLockExclusive intercepts pthread_rwlock_wrlock.
	RWLockExclusive func(t *Thread, m *RWMutex)
	// RWUnlock intercepts pthread_rwlock_unlock.
	RWUnlock func(t *Thread, m *RWMutex)
}

// defaultFuncTable wires the uninterposed implementations.
func defaultFuncTable() FuncTable {
	return FuncTable{
		ThreadCreate: func(parent *Thread, name string, fn ThreadFunc, socket int) (*Thread, error) {
			p := parent.proc
			parent.Compute(p.opts.ThreadCreateCycles)
			parent.coro.Strict()
			return p.newThread(parent, name, fn, socket, 0)
		},
		MutexLock:       doLock,
		MutexUnlock:     doUnlock,
		CondSignal:      doCondSignal,
		CondBroadcast:   doCondBroadcast,
		BarrierWait:     doBarrierWait,
		RWLockShared:    doRWLockShared,
		RWLockExclusive: doRWLockExclusive,
		RWUnlock:        doRWUnlock,
	}
}
