package simos

import "fmt"

// Signal is a POSIX-style signal number.
type Signal int

// Signals used by the emulator and tests.
const (
	// SigEpoch is the signal the Quartz monitor sends to interrupt an
	// application thread whose epoch exceeded the maximum length
	// (SIGUSR1 in the real implementation).
	SigEpoch Signal = iota + 1
	// SigUser2 is a spare user signal for tests.
	SigUser2
)

func (s Signal) String() string {
	switch s {
	case SigEpoch:
		return "SIGEPOCH"
	case SigUser2:
		return "SIGUSR2"
	default:
		return fmt.Sprintf("Signal(%d)", int(s))
	}
}

// Handler is a signal handler. It runs in the interrupted thread's context,
// like a POSIX handler on the target thread's stack.
type Handler func(t *Thread, s Signal)
