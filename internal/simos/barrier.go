package simos

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/obs/vtprof"
)

// Barrier is an OpenMP-style thread barrier. The paper's conclusion lists
// barrier-like parallel-programming constructs among the inter-thread
// dependency events Quartz should learn to interpose on; Wait routes
// through the process function table so an emulator can close epochs and
// inject accumulated delay before the rendezvous becomes visible to peers —
// the same propagation rule as for lock releases (§2.3).
type Barrier struct {
	proc    *Process
	name    string
	parties int
	waiting []*Thread
	count   int
}

// NewBarrier creates a barrier for the given number of parties.
func (p *Process) NewBarrier(name string, parties int) (*Barrier, error) {
	if parties <= 0 {
		return nil, fmt.Errorf("simos: barrier %q: parties = %d, must be positive", name, parties)
	}
	return &Barrier{proc: p, name: name, parties: parties}, nil
}

// Name reports the barrier's diagnostic name.
func (b *Barrier) Name() string { return b.name }

// Parties reports the rendezvous size.
func (b *Barrier) Parties() int { return b.parties }

// Wait blocks until all parties have arrived, then releases the generation.
func (b *Barrier) Wait(t *Thread) { t.proc.table.BarrierWait(t, b) }

// doBarrierWait is the uninterposed barrier implementation.
func doBarrierWait(t *Thread, b *Barrier) {
	t.checkSignals()
	t.coro.Strict()
	t.coro.Advance(t.proc.cyc(t.proc.opts.MutexOpCycles, t))
	b.count++
	if b.count < b.parties {
		b.waiting = append(b.waiting, t)
		t.coro.Block()
		t.vtCharge(vtprof.SyncWait)
		t.checkSignals()
		return
	}
	// Last arriver releases the generation; waiters resume no earlier than
	// its (possibly delay-inflated) arrival time, so injected delays
	// propagate through the barrier.
	for _, w := range b.waiting {
		t.coro.Unblock(w.coro, t.coro.Clock()+t.proc.cyc(t.proc.opts.MutexHandoffCycles, w))
	}
	b.waiting = b.waiting[:0]
	b.count = 0
}
