package simos

import (
	"errors"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
)

func newProc(t *testing.T, opts Options) *Process {
	t.Helper()
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunSimpleProgram(t *testing.T) {
	p := newProc(t, DefaultOptions())
	var end sim.Time
	err := p.Run(func(th *Thread) {
		th.Compute(2200) // 1us at 2.2GHz
		end = th.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := end.Microseconds(); got < 0.99 || got > 1.01 {
		t.Errorf("compute end = %v, want ~1us", end)
	}
}

func TestLoadLatencies(t *testing.T) {
	p := newProc(t, DefaultOptions())
	cfg := p.Machine().Config()
	err := p.Run(func(th *Thread) {
		local, _ := p.MallocOnNode(1<<20, 0)
		remote, _ := p.MallocOnNode(1<<20, 1)

		start := th.Now()
		th.Load(local)
		latL := th.Now() - start

		start = th.Now()
		th.Load(remote)
		latR := th.Now() - start

		if latL != cfg.LocalLat {
			th.Failf("local load latency %v, want %v", latL, cfg.LocalLat)
		}
		if latR != cfg.RemoteLat {
			th.Failf("remote load latency %v, want %v", latR, cfg.RemoteLat)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMallocPlacement(t *testing.T) {
	p := newProc(t, DefaultOptions())
	a0, err := p.MallocOnNode(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.MallocOnNode(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeOf(a0) != 0 || p.NodeOf(a1) != 1 {
		t.Errorf("NodeOf = %d,%d, want 0,1", p.NodeOf(a0), p.NodeOf(a1))
	}
	if a0 == 0 {
		t.Error("allocation returned NULL")
	}
	if _, err := p.MallocOnNode(16, 9); err == nil {
		t.Error("malloc on invalid node succeeded")
	}
	b, err := p.MallocOnNode(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b == a0 {
		t.Error("allocations overlap")
	}
	// Default policy node is the first allowed socket.
	d, err := p.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeOf(d) != 0 {
		t.Errorf("default malloc on node %d, want 0", p.NodeOf(d))
	}
}

func TestAllowedSocketsBindThreadsAndMalloc(t *testing.T) {
	opts := DefaultOptions()
	opts.AllowedSockets = []int{1}
	p := newProc(t, opts)
	err := p.Run(func(th *Thread) {
		if got := th.Core().Socket(); got != 1 {
			th.Failf("main thread on socket %d, want 1", got)
		}
		a, err := p.Malloc(64)
		if err != nil {
			th.Failf("malloc: %v", err)
		}
		if p.NodeOf(a) != 1 {
			th.Failf("policy malloc landed on node %d, want 1", p.NodeOf(a))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateThreadAndJoin(t *testing.T) {
	p := newProc(t, DefaultOptions())
	var childEnd, mainAfterJoin sim.Time
	err := p.Run(func(th *Thread) {
		child, err := th.CreateThread("worker", func(w *Thread) {
			w.Compute(220_000) // 100us
			childEnd = w.Now()
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		th.Join(child)
		mainAfterJoin = th.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if mainAfterJoin < childEnd {
		t.Errorf("join returned at %v before child end %v", mainAfterJoin, childEnd)
	}
	if mainAfterJoin > childEnd+10*sim.Microsecond {
		t.Errorf("join overhead too large: %v after child end", mainAfterJoin-childEnd)
	}
}

func TestJoinAlreadyFinishedThread(t *testing.T) {
	p := newProc(t, DefaultOptions())
	err := p.Run(func(th *Thread) {
		child, _ := th.CreateThread("quick", func(w *Thread) {
			w.Compute(10)
		})
		th.Compute(22_000_000) // 10ms: child long gone
		before := th.Now()
		th.Join(child)
		if th.Now() != before {
			th.Failf("joining a finished thread advanced time from %v to %v", before, th.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMutexMutualExclusionAndFIFO(t *testing.T) {
	p := newProc(t, DefaultOptions())
	m := p.NewMutex("m")
	var order []string
	err := p.Run(func(th *Thread) {
		m.Lock(th)
		var children []*Thread
		for _, name := range []string{"a", "b", "c"} {
			name := name
			c, err := th.CreateThread(name, func(w *Thread) {
				m.Lock(w)
				order = append(order, w.Name())
				w.Compute(1000)
				m.Unlock(w)
			})
			if err != nil {
				th.Failf("create: %v", err)
			}
			children = append(children, c)
			th.Compute(220_000) // let each child reach the lock in turn
		}
		th.Compute(2_200_000)
		m.Unlock(th)
		for _, c := range children {
			th.Join(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("acquisition order = %v, want FIFO [a b c]", order)
	}
}

func TestMutexBlocksUntilRelease(t *testing.T) {
	p := newProc(t, DefaultOptions())
	m := p.NewMutex("m")
	var acquired, released sim.Time
	err := p.Run(func(th *Thread) {
		m.Lock(th)
		child, _ := th.CreateThread("waiter", func(w *Thread) {
			m.Lock(w)
			acquired = w.Now()
			m.Unlock(w)
		})
		th.ComputeFor(5 * sim.Millisecond)
		released = th.Now()
		m.Unlock(th)
		th.Join(child)
	})
	if err != nil {
		t.Fatal(err)
	}
	if acquired < released {
		t.Errorf("waiter acquired at %v before release at %v", acquired, released)
	}
}

func TestMutexErrors(t *testing.T) {
	p := newProc(t, DefaultOptions())
	m := p.NewMutex("m")
	err := p.Run(func(th *Thread) {
		m.Unlock(th) // unlock without holding
	})
	if err == nil {
		t.Error("unlock by non-owner did not fail")
	}

	p2 := newProc(t, DefaultOptions())
	m2 := p2.NewMutex("m2")
	err = p2.Run(func(th *Thread) {
		m2.Lock(th)
		m2.Lock(th) // recursive
	})
	if err == nil {
		t.Error("recursive lock did not fail")
	}
}

func TestCondSignalWakesOldestWaiter(t *testing.T) {
	p := newProc(t, DefaultOptions())
	m := p.NewMutex("m")
	c := p.NewCond("c")
	var woken []string
	err := p.Run(func(th *Thread) {
		mk := func(name string) *Thread {
			w, err := th.CreateThread(name, func(w *Thread) {
				m.Lock(w)
				c.Wait(w, m)
				woken = append(woken, w.Name())
				m.Unlock(w)
			})
			if err != nil {
				th.Failf("create: %v", err)
			}
			th.ComputeFor(sim.Millisecond) // deterministic wait order
			return w
		}
		w1 := mk("w1")
		w2 := mk("w2")
		th.ComputeFor(sim.Millisecond)
		m.Lock(th)
		c.Signal(th)
		m.Unlock(th)
		th.ComputeFor(sim.Millisecond)
		m.Lock(th)
		c.Broadcast(th)
		m.Unlock(th)
		th.Join(w1)
		th.Join(w2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(woken) != 2 || woken[0] != "w1" || woken[1] != "w2" {
		t.Errorf("wake order = %v, want [w1 w2]", woken)
	}
}

func TestSignalHandlerRunsInTargetContext(t *testing.T) {
	p := newProc(t, DefaultOptions())
	var handled *Thread
	p.RegisterHandler(SigEpoch, func(th *Thread, s Signal) {
		handled = th
	})
	err := p.Run(func(th *Thread) {
		worker, _ := th.CreateThread("worker", func(w *Thread) {
			for i := 0; i < 100; i++ {
				w.Compute(22_000) // 10us chunks
			}
		})
		th.ComputeFor(100 * sim.Microsecond)
		th.Kill(worker, SigEpoch)
		th.Join(worker)
		if handled == nil || handled.Name() != "worker" {
			th.Failf("handler thread = %v, want worker", handled)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNanosleepInterruptedReturnsEINTR(t *testing.T) {
	p := newProc(t, DefaultOptions())
	p.RegisterHandler(SigEpoch, func(th *Thread, s Signal) {})
	var sleepErr error
	var slept sim.Time
	err := p.Run(func(th *Thread) {
		sleeper, _ := th.CreateThread("sleeper", func(w *Thread) {
			start := w.Now()
			sleepErr = w.Nanosleep(50 * sim.Millisecond)
			slept = w.Now() - start
		})
		th.ComputeFor(1 * sim.Millisecond)
		th.Kill(sleeper, SigEpoch)
		th.Join(sleeper)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sleepErr, ErrInterrupted) {
		t.Errorf("nanosleep error = %v, want EINTR", sleepErr)
	}
	if slept > 10*sim.Millisecond {
		t.Errorf("interrupted sleep lasted %v, want ~1ms", slept)
	}
}

func TestNanosleepUninterruptedCompletes(t *testing.T) {
	p := newProc(t, DefaultOptions())
	err := p.Run(func(th *Thread) {
		start := th.Now()
		if err := th.Nanosleep(3 * sim.Millisecond); err != nil {
			th.Failf("nanosleep: %v", err)
		}
		if got := th.Now() - start; got != 3*sim.Millisecond {
			th.Failf("slept %v, want 3ms", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFuncTableInterposition(t *testing.T) {
	// Wrap MutexUnlock the way the emulator does and check the original
	// still runs (call-intercept-redirect).
	p := newProc(t, DefaultOptions())
	m := p.NewMutex("m")
	var intercepted int
	tbl := p.Table()
	orig := tbl.MutexUnlock
	tbl.MutexUnlock = func(th *Thread, mm *Mutex) {
		intercepted++
		orig(th, mm)
	}
	err := p.Run(func(th *Thread) {
		for i := 0; i < 5; i++ {
			m.Lock(th)
			m.Unlock(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if intercepted != 5 {
		t.Errorf("interposed unlock ran %d times, want 5", intercepted)
	}
}

func TestThreadCreateInterposition(t *testing.T) {
	p := newProc(t, DefaultOptions())
	var createdNames []string
	tbl := p.Table()
	orig := tbl.ThreadCreate
	tbl.ThreadCreate = func(parent *Thread, name string, fn ThreadFunc, socket int) (*Thread, error) {
		createdNames = append(createdNames, name)
		return orig(parent, name, fn, socket)
	}
	err := p.Run(func(th *Thread) {
		w, err := th.CreateThread("registered", func(w *Thread) { w.Compute(10) })
		if err != nil {
			th.Failf("create: %v", err)
		}
		th.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(createdNames) != 1 || createdNames[0] != "registered" {
		t.Errorf("intercepted creates = %v", createdNames)
	}
}

func TestStoreThenFlushStalls(t *testing.T) {
	p := newProc(t, DefaultOptions())
	err := p.Run(func(th *Thread) {
		addr, _ := p.Malloc(4096)
		th.Store(addr)
		start := th.Now()
		th.Flush(addr)
		flushTime := th.Now() - start
		if flushTime < 50*sim.Nanosecond {
			th.Failf("flush of dirty line took %v, want a memory round trip", flushTime)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushOptDoesNotStall(t *testing.T) {
	p := newProc(t, DefaultOptions())
	err := p.Run(func(th *Thread) {
		addr, _ := p.Malloc(4096)
		th.Store(addr)
		start := th.Now()
		wb := th.FlushOpt(addr)
		issueTime := th.Now() - start
		if issueTime > 50*sim.Nanosecond {
			th.Failf("clflushopt issue took %v, want instruction cost only", issueTime)
		}
		if wb <= th.Now() {
			th.Failf("writeback completion %v not in the future", wb)
		}
		th.Fence(wb)
		if th.Now() < wb {
			th.Failf("fence did not wait for writeback")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpinUntilTSC(t *testing.T) {
	p := newProc(t, DefaultOptions())
	err := p.Run(func(th *Thread) {
		start := th.RDTSC()
		target := start + 220_000 // 100us at 2.2GHz
		th.SpinUntilTSC(target, 20)
		if got := th.RDTSC(); got < target {
			th.Failf("spin ended at TSC %d, want >= %d", got, target)
		}
		if got := th.Core().TSC(th.Now()); got > target+1000 {
			th.Failf("spin overshot to %d (target %d)", got, target)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicMultithreadedRun(t *testing.T) {
	run := func() sim.Time {
		p := newProc(t, DefaultOptions())
		m := p.NewMutex("m")
		err := p.Run(func(th *Thread) {
			var children []*Thread
			for i := 0; i < 4; i++ {
				base, _ := p.Malloc(1 << 20)
				c, err := th.CreateThread("w", func(w *Thread) {
					for j := 0; j < 200; j++ {
						w.Load(base + uintptr(j*4096))
						m.Lock(w)
						w.Compute(100)
						m.Unlock(w)
					}
				})
				if err != nil {
					th.Failf("create: %v", err)
				}
				children = append(children, c)
			}
			for _, c := range children {
				th.Join(c)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return p.EndTime()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("multithreaded run nondeterministic: %v vs %v", a, b)
	}
}

func TestProcessRunTwiceFails(t *testing.T) {
	p := newProc(t, DefaultOptions())
	if err := p.Run(func(th *Thread) {}); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(func(th *Thread) {}); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestNewProcessValidation(t *testing.T) {
	m, err := machine.NewPreset(machine.XeonE5_2450)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProcess(nil, DefaultOptions()); err == nil {
		t.Error("nil machine accepted")
	}
	bad := DefaultOptions()
	bad.AllowedSockets = []int{5}
	if _, err := NewProcess(m, bad); err == nil {
		t.Error("invalid socket accepted")
	}
	bad = DefaultOptions()
	bad.DefaultNode = 7
	if _, err := NewProcess(m, bad); err == nil {
		t.Error("invalid default node accepted")
	}
}

func TestTraceRecordsOperations(t *testing.T) {
	p := newProc(t, DefaultOptions())
	buf := p.StartTrace(256)
	m := p.NewMutex("traced")
	err := p.Run(func(th *Thread) {
		a, _ := p.Malloc(4096)
		th.Load(a)
		th.Store(a)
		m.Lock(th)
		m.Unlock(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, e := range buf.Events() {
		kinds[e.Kind.String()] = true
	}
	for _, want := range []string{"load", "store", "lock", "unlock"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (have %v)", want, kinds)
		}
	}
	if got := p.StopTrace(); got != buf {
		t.Error("StopTrace returned a different buffer")
	}
	if p.Tracer() != nil {
		t.Error("tracer still active after StopTrace")
	}
}
