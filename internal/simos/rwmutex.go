package simos

import (
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/trace"
)

// RWMutex is a POSIX-style reader-writer lock (pthread_rwlock) with writer
// preference. Releases route through the process function table so an
// emulator can close epochs before a release becomes visible — readers and
// writers alike propagate accumulated delay to threads they unblock.
type RWMutex struct {
	proc     *Process
	name     string
	writer   *Thread
	readers  int
	waitersW []*Thread
	waitersR []*Thread
}

// NewRWMutex creates a reader-writer lock (pthread_rwlock_init).
func (p *Process) NewRWMutex(name string) *RWMutex {
	return &RWMutex{proc: p, name: name}
}

// Name reports the lock's diagnostic name.
func (m *RWMutex) Name() string { return m.name }

// RLock acquires the lock shared (pthread_rwlock_rdlock).
func (m *RWMutex) RLock(t *Thread) { t.proc.table.RWLockShared(t, m) }

// Lock acquires the lock exclusive (pthread_rwlock_wrlock).
func (m *RWMutex) Lock(t *Thread) { t.proc.table.RWLockExclusive(t, m) }

// Unlock releases the lock (pthread_rwlock_unlock); it works for both
// shared and exclusive holders, like the POSIX call.
func (m *RWMutex) Unlock(t *Thread) { t.proc.table.RWUnlock(t, m) }

// doRWLockShared is the uninterposed shared acquisition.
func doRWLockShared(t *Thread, m *RWMutex) {
	t.checkSignals()
	t.coro.Strict()
	t.coro.Advance(t.proc.cyc(t.proc.opts.MutexOpCycles, t))
	// Writer preference: readers defer to an active or waiting writer.
	for m.writer != nil || len(m.waitersW) > 0 {
		m.waitersR = append(m.waitersR, t)
		t.coro.Block()
		t.vtCharge(vtprof.SyncWait)
		t.checkSignals()
		t.coro.Strict()
	}
	m.readers++
	t.Trace(trace.KindLock, m.name+"(R)")
}

// doRWLockExclusive is the uninterposed exclusive acquisition.
func doRWLockExclusive(t *Thread, m *RWMutex) {
	t.checkSignals()
	t.coro.Strict()
	t.coro.Advance(t.proc.cyc(t.proc.opts.MutexOpCycles, t))
	for m.writer != nil || m.readers > 0 {
		m.waitersW = append(m.waitersW, t)
		t.coro.Block()
		t.vtCharge(vtprof.SyncWait)
		t.checkSignals()
		t.coro.Strict()
	}
	m.writer = t
	t.Trace(trace.KindLock, m.name+"(W)")
}

// doRWUnlock is the uninterposed release.
func doRWUnlock(t *Thread, m *RWMutex) {
	t.checkSignals()
	t.coro.Strict()
	switch {
	case m.writer == t:
		m.writer = nil
	case m.readers > 0:
		m.readers--
	default:
		t.Failf("rwmutex %q: unlock by non-holder %q", m.name, t.name)
	}
	t.coro.Advance(t.proc.cyc(t.proc.opts.MutexOpCycles, t))
	t.Trace(trace.KindUnlock, m.name)
	if m.writer != nil || m.readers > 0 {
		return // still held; nothing to wake yet
	}
	wake := func(w *Thread) {
		t.coro.Unblock(w.coro, t.coro.Clock()+t.proc.cyc(t.proc.opts.MutexHandoffCycles, w))
	}
	if len(m.waitersW) > 0 {
		next := m.waitersW[0]
		m.waitersW = m.waitersW[1:]
		wake(next)
		return
	}
	for _, r := range m.waitersR {
		wake(r)
	}
	m.waitersR = m.waitersR[:0]
}
