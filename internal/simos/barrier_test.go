package simos

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

func TestBarrierValidation(t *testing.T) {
	p := newProc(t, DefaultOptions())
	if _, err := p.NewBarrier("b", 0); err == nil {
		t.Error("zero-party barrier accepted")
	}
	b, err := p.NewBarrier("b", 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "b" || b.Parties() != 3 {
		t.Errorf("barrier metadata wrong: %q/%d", b.Name(), b.Parties())
	}
}

func TestBarrierRendezvous(t *testing.T) {
	p := newProc(t, DefaultOptions())
	b, err := p.NewBarrier("b", 3)
	if err != nil {
		t.Fatal(err)
	}
	var after [3]sim.Time
	err = p.Run(func(th *Thread) {
		var workers []*Thread
		for i := 0; i < 3; i++ {
			i := i
			w, err := th.CreateThread("w", func(t2 *Thread) {
				t2.ComputeFor(sim.Time(i+1) * sim.Millisecond) // staggered arrivals
				b.Wait(t2)
				after[i] = t2.Now()
			})
			if err != nil {
				th.Failf("create: %v", err)
			}
			workers = append(workers, w)
		}
		for _, w := range workers {
			th.Join(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// All three leave the barrier no earlier than the slowest arrival (3ms).
	for i, ts := range after {
		if ts < 3*sim.Millisecond {
			t.Errorf("worker %d left barrier at %v, before the last arrival", i, ts)
		}
		if ts > 3*sim.Millisecond+100*sim.Microsecond {
			t.Errorf("worker %d left barrier at %v, far after the last arrival", i, ts)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	p := newProc(t, DefaultOptions())
	b, err := p.NewBarrier("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	var counts [2]int
	err = p.Run(func(th *Thread) {
		mk := func(slot int) *Thread {
			w, err := th.CreateThread("w", func(t2 *Thread) {
				for r := 0; r < rounds; r++ {
					t2.Compute(int64(1000 * (slot + 1)))
					b.Wait(t2)
					counts[slot]++
				}
			})
			if err != nil {
				th.Failf("create: %v", err)
			}
			return w
		}
		a, bb := mk(0), mk(1)
		th.Join(a)
		th.Join(bb)
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != rounds || counts[1] != rounds {
		t.Errorf("rounds completed = %v, want %d each", counts, rounds)
	}
}

func TestBarrierInterposition(t *testing.T) {
	p := newProc(t, DefaultOptions())
	b, err := p.NewBarrier("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	var intercepted int
	tbl := p.Table()
	orig := tbl.BarrierWait
	tbl.BarrierWait = func(th *Thread, bb *Barrier) {
		intercepted++
		orig(th, bb)
	}
	err = p.Run(func(th *Thread) {
		w, err := th.CreateThread("w", func(t2 *Thread) {
			b.Wait(t2)
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		b.Wait(th)
		th.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if intercepted != 2 {
		t.Errorf("interposed barrier waits = %d, want 2", intercepted)
	}
}
