package simos

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/cpu"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/trace"
)

// ThreadFunc is a simulated thread body.
type ThreadFunc func(*Thread)

// Thread is one simulated POSIX thread bound to a core.
type Thread struct {
	proc *Process
	coro *sim.Coro
	core *cpu.Core
	tid  int
	name string

	sigPending []Signal
	inHandler  bool
	done       bool
	endClock   sim.Time
	joiners    []*Thread

	// vt is the thread's virtual-time profiler series; nil (the default)
	// keeps every charge a single pointer test. See Process.SetProfiler.
	vt *vtprof.ThreadSeries
}

// TID reports the thread id.
func (t *Thread) TID() int { return t.tid }

// Name reports the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Process reports the owning process.
func (t *Thread) Process() *Process { return t.proc }

// Core reports the core the thread is bound to.
func (t *Thread) Core() *cpu.Core { return t.core }

// Now reports the thread's local virtual time (CLOCK_MONOTONIC).
func (t *Thread) Now() sim.Time { return t.coro.Clock() }

// Done reports whether the thread body has returned.
func (t *Thread) Done() bool { return t.done }

// Failf aborts the simulation with an error attributed to this thread.
func (t *Thread) Failf(format string, args ...any) {
	t.coro.Failf(format, args...)
}

// Trace records an event against this thread when tracing is active. The
// emulator uses it for epoch and injection events; applications may record
// their own (trace.KindUser).
//
// The detail string is evaluated by the caller even when tracing is off, so
// hot paths must gate any formatting behind Tracing() to stay
// allocation-free (see traceAddr for the pattern).
func (t *Thread) Trace(kind trace.Kind, detail string) {
	if tr := t.proc.tracer; tr != nil {
		tr.Record(t.coro.Clock(), t.name, kind, detail)
	}
}

// Tracing reports whether an execution tracer is attached to the process.
// Hot paths check it before building Trace detail strings so that the
// disabled path pays one branch and zero allocations.
func (t *Thread) Tracing() bool { return t.proc.tracer != nil }

// traceAddr records a memory-op event without formatting cost when tracing
// is off.
func (t *Thread) traceAddr(kind trace.Kind, addr uintptr) {
	if tr := t.proc.tracer; tr != nil {
		tr.Record(t.coro.Clock(), t.name, kind, fmt.Sprintf("0x%x", addr))
	}
}

// PushPhase enters an interned profiling phase (vtprof.Intern) on this
// thread's phase stack. With no profiler attached it is a no-op costing one
// branch; with one attached it is allocation-free in the steady state. Time
// is attributed to the phase stack in effect when each interval is charged,
// so a push takes effect from the thread's next time-advancing operation.
func (t *Thread) PushPhase(p vtprof.Phase) {
	if t.vt != nil {
		t.vt.Push(p)
	}
}

// PopPhase leaves the current profiling phase.
func (t *Thread) PopPhase() {
	if t.vt != nil {
		t.vt.Pop()
	}
}

// vtCharge attributes virtual time elapsed since the last charge to cat.
func (t *Thread) vtCharge(cat vtprof.Category) {
	if t.vt != nil {
		t.vt.Charge(cat, t.coro.Clock())
	}
}

// AccountInjected attributes an epoch's injected delay (the interval since
// the last charge) to the inject categories, split read/write by the
// epoch's writeDelay share of totalDelay; internal/core calls it right
// after the injection spin. With no profiler attached it is a no-op.
func (t *Thread) AccountInjected(injected, writeDelay, totalDelay sim.Time) {
	if t.vt != nil {
		t.vt.ChargeInjected(t.coro.Clock(), injected, writeDelay, totalDelay)
	}
}

// finish runs after the thread body returns: it wakes joiners and folds the
// thread's profiler series into the job profile.
func (t *Thread) finish() {
	t.done = true
	t.endClock = t.coro.Clock()
	if t.vt != nil {
		t.vt.Fold(t.endClock)
	}
	t.coro.Strict()
	for _, j := range t.joiners {
		t.coro.Unblock(j.coro, t.endClock+t.proc.cyc(t.proc.opts.MutexHandoffCycles, t))
	}
	t.joiners = nil
}

// cyc converts a cycle count to time at th's core frequency.
func (p *Process) cyc(cycles int64, th *Thread) sim.Time {
	return sim.CyclesToTime(cycles, th.core.FreqHz())
}

// Compute advances the thread by n core cycles of pure computation.
func (t *Thread) Compute(n int64) {
	t.checkSignals()
	if n <= 0 {
		return
	}
	t.coro.Sync()
	t.coro.Advance(t.core.ComputeTime(t.coro.Clock(), n))
	t.vtCharge(vtprof.Compute)
}

// ComputeFor advances the thread by a wall-clock duration of computation.
func (t *Thread) ComputeFor(d sim.Time) {
	t.checkSignals()
	if d > 0 {
		t.coro.Sync()
		t.coro.Advance(d)
		t.vtCharge(vtprof.Compute)
	}
}

// Load performs one demand load from the simulated address.
func (t *Thread) Load(addr uintptr) {
	t.checkSignals()
	t.coro.Sync()
	t.traceAddr(trace.KindLoad, addr)
	lat, _ := t.core.Load(t.coro.Clock(), addr)
	t.coro.Advance(lat)
	t.vtCharge(vtprof.MemStall)
}

// LoadGroup performs independent loads in parallel (memory-level
// parallelism), advancing by the overlapped completion time.
func (t *Thread) LoadGroup(addrs []uintptr) {
	t.checkSignals()
	if len(addrs) == 0 {
		return
	}
	t.coro.Sync()
	t.coro.Advance(t.core.LoadGroup(t.coro.Clock(), addrs))
	t.vtCharge(vtprof.MemStall)
}

// LoadRun performs n dependent demand loads at addr, addr+stride, … — the
// common strided-scan loop, batched into one call. Each access performs the
// same signal check, synchronization yield and trace hook an individual
// Load would, so thread interleaving (and the simulated timeline) is
// identical to the unrolled loop.
func (t *Thread) LoadRun(addr, stride uintptr, n int) {
	for ; n > 0; n-- {
		t.checkSignals()
		t.coro.Sync()
		t.traceAddr(trace.KindLoad, addr)
		lat, _ := t.core.Load(t.coro.Clock(), addr)
		t.coro.Advance(lat)
		addr += stride
	}
	// One charge covers the whole batch: any epoch closed mid-run by
	// checkSignals charged (and re-watermarked) its own interval already.
	t.vtCharge(vtprof.MemStall)
}

// StoreRun performs n posted stores at addr, addr+stride, …, each with the
// per-access bookkeeping an individual Store would perform.
func (t *Thread) StoreRun(addr, stride uintptr, n int) {
	for ; n > 0; n-- {
		t.checkSignals()
		t.coro.Sync()
		t.traceAddr(trace.KindStore, addr)
		t.coro.Advance(t.core.Store(t.coro.Clock(), addr))
		addr += stride
	}
	t.vtCharge(vtprof.MemStall)
}

// LoadGroupRun is LoadGroup over the arithmetic address sequence addr,
// addr+stride, …, addr+(n-1)*stride, sparing streaming callers the
// address-slice rebuild on every batch.
func (t *Thread) LoadGroupRun(addr, stride uintptr, n int) {
	t.checkSignals()
	if n <= 0 {
		return
	}
	t.coro.Sync()
	t.coro.Advance(t.core.LoadGroupRun(t.coro.Clock(), addr, stride, n))
	t.vtCharge(vtprof.MemStall)
}

// Store performs one posted store to the simulated address.
func (t *Thread) Store(addr uintptr) {
	t.checkSignals()
	t.coro.Sync()
	t.traceAddr(trace.KindStore, addr)
	t.coro.Advance(t.core.Store(t.coro.Clock(), addr))
	t.vtCharge(vtprof.MemStall)
}

// Flush writes back and invalidates the cache line holding addr (clflush),
// stalling until the writeback reaches memory — the clflush ordering
// guarantee persistent-memory software relies on.
func (t *Thread) Flush(addr uintptr) {
	t.checkSignals()
	t.coro.Sync()
	t.traceAddr(trace.KindFlush, addr)
	lat, wbDone := t.core.Flush(t.coro.Clock(), addr)
	t.coro.Advance(lat)
	if wbDone > t.coro.Clock() {
		t.coro.AdvanceTo(wbDone)
	}
	t.vtCharge(vtprof.MemStall)
}

// FlushOpt writes back and invalidates the line without stalling for the
// writeback (clflushopt); it returns the virtual time the writeback will
// complete so a commit barrier (pcommit) can account for it.
func (t *Thread) FlushOpt(addr uintptr) sim.Time {
	t.checkSignals()
	t.coro.Sync()
	lat, wbDone := t.core.Flush(t.coro.Clock(), addr)
	t.coro.Advance(lat)
	t.vtCharge(vtprof.MemStall)
	return wbDone
}

// Fence stalls until the given completion time (sfence/pcommit wait).
func (t *Thread) Fence(until sim.Time) {
	t.checkSignals()
	t.coro.AdvanceTo(until)
	t.vtCharge(vtprof.MemStall)
}

// RDTSC reads the core timestamp counter (rdtscp), charging its cost.
func (t *Thread) RDTSC() uint64 {
	const rdtscpCycles = 32
	t.coro.Advance(t.core.TimeForCycles(rdtscpCycles))
	t.vtCharge(vtprof.Compute)
	return t.core.TSC(t.coro.Clock())
}

// SpinUntilTSC spins (as Quartz's delay injection does) until the timestamp
// counter reaches target, polling every pollCycles. It charges no profiler
// category itself: the emulator's injection path accounts the spin via
// AccountInjected, and any other caller's spin folds into that thread's
// next charged interval.
//
// The modeled spin's only observable effect is its final clock: the start
// clock plus the smallest whole number of polls whose TSC reaches target.
// TSC is monotone in the clock, so that poll count is found by galloping
// plus binary search with the same comparator the poll-by-poll loop used —
// identical final clock, and a delay injection of thousands of polls costs
// a dozen comparisons instead.
func (t *Thread) SpinUntilTSC(target uint64, pollCycles int64) {
	if pollCycles <= 0 {
		pollCycles = 20
	}
	step := t.core.TimeForCycles(pollCycles)
	start := t.coro.Clock()
	if t.core.TSC(start) >= target {
		return
	}
	if step <= 0 {
		t.Failf("simos: TSC spin cannot make progress (poll step %v)", step)
	}
	hi := sim.Time(1)
	for t.core.TSC(start+hi*step) < target {
		hi *= 2
	}
	lo := hi / 2 // below lo+1 polls the TSC is still short of target
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if t.core.TSC(start+mid*step) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	t.coro.Advance(hi * step)
}

// Nanosleep blocks for d of virtual time. If a signal arrives during the
// sleep the call wakes early, runs the handler, and returns ErrInterrupted
// (EINTR) — applications must retry, per §3.1.
func (t *Thread) Nanosleep(d sim.Time) error {
	t.checkSignals()
	deadline := t.coro.Clock() + d
	woke := t.coro.SleepUntil(deadline)
	t.vtCharge(vtprof.SyncWait)
	if len(t.sigPending) > 0 {
		t.checkSignals()
		if woke < deadline {
			return fmt.Errorf("simos: nanosleep: %w", ErrInterrupted)
		}
	}
	return nil
}

// YieldStrict synchronizes the thread with global virtual time; used before
// operations whose cross-thread ordering must be exact.
func (t *Thread) YieldStrict() { t.coro.Strict() }

// CreateThread creates a new thread running fn. It routes through the
// process function table so an attached emulator can interpose (the
// pthread_create hook).
func (t *Thread) CreateThread(name string, fn ThreadFunc) (*Thread, error) {
	return t.proc.table.ThreadCreate(t, name, fn, -1)
}

// CreateThreadOn is CreateThread pinned to a socket.
func (t *Thread) CreateThreadOn(socket int, name string, fn ThreadFunc) (*Thread, error) {
	return t.proc.table.ThreadCreate(t, name, fn, socket)
}

// Join blocks until other's body has returned.
func (t *Thread) Join(other *Thread) {
	t.checkSignals()
	t.coro.Strict()
	if other.done {
		t.coro.AdvanceTo(other.endClock)
		t.vtCharge(vtprof.SyncWait)
		return
	}
	other.joiners = append(other.joiners, t)
	t.coro.Block()
	t.vtCharge(vtprof.SyncWait)
	t.checkSignals()
}

// Kill queues signal s for target and wakes it if it is sleeping
// (pthread_kill). Handlers run at the target's next interruption point.
func (t *Thread) Kill(target *Thread, s Signal) {
	t.coro.Strict()
	if target.done {
		return
	}
	for _, pending := range target.sigPending {
		if pending == s {
			// Standard (non-realtime) POSIX signals coalesce: a signal
			// already pending is not queued twice.
			return
		}
	}
	target.sigPending = append(target.sigPending, s)
	t.coro.Interrupt(target.coro, t.coro.Clock()+t.proc.cyc(t.proc.opts.SignalDeliveryCycles, target))
}

// checkSignals delivers pending signals by running their handlers inline in
// this thread's context. Nested delivery is suppressed while a handler runs.
func (t *Thread) checkSignals() {
	if t.inHandler {
		return
	}
	for len(t.sigPending) > 0 {
		s := t.sigPending[0]
		t.sigPending = t.sigPending[1:]
		h := t.proc.handlers[s]
		if h == nil {
			continue // default disposition: ignore
		}
		t.inHandler = true
		t.Trace(trace.KindSignal, s.String())
		t.coro.Advance(t.proc.cyc(t.proc.opts.SignalDeliveryCycles, t))
		t.vtCharge(vtprof.SchedWait)
		h(t, s)
		t.inHandler = false
	}
}
