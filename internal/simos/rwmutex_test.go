package simos

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

func TestRWMutexReadersShareWritersExclude(t *testing.T) {
	p := newProc(t, DefaultOptions())
	rw := p.NewRWMutex("rw")
	var concurrentReaders, maxConcurrent int
	var writerSawReaders bool
	err := p.Run(func(th *Thread) {
		var workers []*Thread
		for i := 0; i < 4; i++ {
			w, err := th.CreateThread("reader", func(t2 *Thread) {
				rw.RLock(t2)
				concurrentReaders++
				if concurrentReaders > maxConcurrent {
					maxConcurrent = concurrentReaders
				}
				t2.ComputeFor(2 * sim.Millisecond)
				// Re-synchronize with global virtual time before touching
				// the shared host-side counter: Compute advances the local
				// clock without yielding, so unsynchronized host code here
				// would observe the "future".
				t2.YieldStrict()
				concurrentReaders--
				rw.Unlock(t2)
			})
			if err != nil {
				th.Failf("create: %v", err)
			}
			workers = append(workers, w)
		}
		th.ComputeFor(500 * sim.Microsecond)
		wr, err := th.CreateThread("writer", func(t2 *Thread) {
			rw.Lock(t2)
			t2.YieldStrict()
			if concurrentReaders != 0 {
				writerSawReaders = true
			}
			t2.ComputeFor(sim.Millisecond)
			rw.Unlock(t2)
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		workers = append(workers, wr)
		for _, w := range workers {
			th.Join(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxConcurrent < 2 {
		t.Errorf("max concurrent readers = %d, want sharing", maxConcurrent)
	}
	if writerSawReaders {
		t.Error("writer held the lock while readers were inside")
	}
}

func TestRWMutexWriterPreference(t *testing.T) {
	// A waiting writer blocks new readers, so it cannot starve.
	p := newProc(t, DefaultOptions())
	rw := p.NewRWMutex("rw")
	var order []string
	err := p.Run(func(th *Thread) {
		rw.RLock(th) // main holds shared
		writer, err := th.CreateThread("writer", func(t2 *Thread) {
			rw.Lock(t2)
			order = append(order, "writer")
			rw.Unlock(t2)
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		th.ComputeFor(sim.Millisecond) // writer is now queued
		lateReader, err := th.CreateThread("late-reader", func(t2 *Thread) {
			rw.RLock(t2)
			order = append(order, "late-reader")
			rw.Unlock(t2)
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		th.ComputeFor(sim.Millisecond)
		rw.Unlock(th) // release shared: writer must go first
		th.Join(writer)
		th.Join(lateReader)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "writer" || order[1] != "late-reader" {
		t.Errorf("acquisition order = %v, want [writer late-reader]", order)
	}
}

func TestRWMutexUnlockByNonHolderFails(t *testing.T) {
	p := newProc(t, DefaultOptions())
	rw := p.NewRWMutex("rw")
	err := p.Run(func(th *Thread) {
		rw.Unlock(th)
	})
	if err == nil {
		t.Error("unlock by non-holder did not fail")
	}
}

func TestRWMutexInterposition(t *testing.T) {
	p := newProc(t, DefaultOptions())
	rw := p.NewRWMutex("rw")
	var locks, unlocks int
	tbl := p.Table()
	origS, origX, origU := tbl.RWLockShared, tbl.RWLockExclusive, tbl.RWUnlock
	tbl.RWLockShared = func(t2 *Thread, m *RWMutex) { locks++; origS(t2, m) }
	tbl.RWLockExclusive = func(t2 *Thread, m *RWMutex) { locks++; origX(t2, m) }
	tbl.RWUnlock = func(t2 *Thread, m *RWMutex) { unlocks++; origU(t2, m) }
	err := p.Run(func(th *Thread) {
		rw.RLock(th)
		rw.Unlock(th)
		rw.Lock(th)
		rw.Unlock(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	if locks != 2 || unlocks != 2 {
		t.Errorf("interposed rwlock ops = %d/%d, want 2/2", locks, unlocks)
	}
}
