// Package simos is the simulated operating-system layer: processes whose
// threads execute on the simulated machine, POSIX-style mutexes, condition
// variables and signals (including EINTR semantics for interrupted
// "system calls"), a NUMA-aware allocator (malloc / numa_alloc_onnode), and
// a function-override table that mirrors the weak-symbol interposition the
// real Quartz performs via LD_PRELOAD.
package simos

import (
	"errors"
	"fmt"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/trace"
)

// ErrInterrupted is returned by interruptible blocking calls (Nanosleep)
// when a signal arrives mid-call — the EINTR behaviour §3.1 of the paper
// warns applications about.
var ErrInterrupted = errors.New("simos: interrupted system call (EINTR)")

// Options tunes a process's runtime costs and placement policy.
type Options struct {
	// Lookahead is the simulation kernel's lookahead quantum (see sim).
	Lookahead sim.Time
	// AllowedSockets restricts where threads may be placed; empty means
	// all sockets (numactl-style binding).
	AllowedSockets []int
	// DefaultNode is where Malloc allocates; -1 follows the first allowed
	// socket.
	DefaultNode int
	// ThreadCreateCycles is the cost of pthread_create.
	ThreadCreateCycles int64
	// MutexOpCycles is the cost of an uncontended lock/unlock.
	MutexOpCycles int64
	// MutexHandoffCycles is the wake-up cost transferring a contended lock.
	MutexHandoffCycles int64
	// SignalDeliveryCycles is the cost of delivering a POSIX signal.
	SignalDeliveryCycles int64
}

// DefaultOptions returns the standard runtime cost model.
func DefaultOptions() Options {
	return Options{
		Lookahead:            0,
		DefaultNode:          -1,
		ThreadCreateCycles:   25_000,
		MutexOpCycles:        60,
		MutexHandoffCycles:   2_500,
		SignalDeliveryCycles: 1_200,
	}
}

// Process is one simulated application: a set of threads sharing a machine,
// an address space, and a function table.
type Process struct {
	mach *machine.Machine
	kern *sim.Kernel
	opts Options

	table    FuncTable
	threads  []*Thread
	nextTID  int
	nextCore int

	handlers map[Signal]Handler
	heap     []uintptr // per-node bump pointers
	tracer   *trace.Buffer
	rec      *obs.Recorder    // nil-safe observability sink
	prof     *vtprof.Profiler // nil-safe virtual-time profiler

	started bool
}

// NewProcess creates a process on mach.
func NewProcess(mach *machine.Machine, opts Options) (*Process, error) {
	if mach == nil {
		return nil, errors.New("simos: nil machine")
	}
	nSockets := len(mach.Sockets())
	for _, s := range opts.AllowedSockets {
		if s < 0 || s >= nSockets {
			return nil, fmt.Errorf("simos: allowed socket %d out of range [0,%d)", s, nSockets)
		}
	}
	if opts.DefaultNode >= nSockets {
		return nil, fmt.Errorf("simos: default node %d out of range [0,%d)", opts.DefaultNode, nSockets)
	}
	p := &Process{
		mach:     mach,
		kern:     sim.NewKernel(opts.Lookahead),
		opts:     opts,
		handlers: make(map[Signal]Handler),
		heap:     make([]uintptr, nSockets),
	}
	p.table = defaultFuncTable()
	return p, nil
}

// Machine reports the process's machine.
func (p *Process) Machine() *machine.Machine { return p.mach }

// Kernel exposes the simulation kernel (for advanced harness use).
func (p *Process) Kernel() *sim.Kernel { return p.kern }

// Options reports the process options.
func (p *Process) Options() Options { return p.opts }

// Table returns a pointer to the process's function table so that an
// emulator library can interpose on its entries before the process runs
// (the LD_PRELOAD-equivalent hook point).
func (p *Process) Table() *FuncTable { return &p.table }

// Threads returns all threads created so far, in creation order.
func (p *Process) Threads() []*Thread { return p.threads }

// allowedSockets resolves the effective socket binding.
func (p *Process) allowedSockets() []int {
	if len(p.opts.AllowedSockets) > 0 {
		return p.opts.AllowedSockets
	}
	all := make([]int, len(p.mach.Sockets()))
	for i := range all {
		all[i] = i
	}
	return all
}

// defaultNode resolves the node Malloc uses.
func (p *Process) defaultNode() int {
	if p.opts.DefaultNode >= 0 {
		return p.opts.DefaultNode
	}
	return p.allowedSockets()[0]
}

// Run spawns the main thread executing fn and drives the simulation to
// completion. It returns the first fatal error (thread panic, deadlock).
func (p *Process) Run(fn ThreadFunc) error {
	if p.started {
		return errors.New("simos: process already ran")
	}
	p.started = true
	if _, err := p.newThread(nil, "main", fn, -1, 0); err != nil {
		return err
	}
	err := p.kern.Run()
	if p.prof != nil {
		// Threads fold their series in finish(); an aborted run leaves some
		// unfolded, so sweep them here (Fold is idempotent).
		for _, t := range p.threads {
			t.vt.Fold(t.coro.Clock())
		}
	}
	p.rec.KernelRun(p.kern.Stats())
	if err != nil {
		return fmt.Errorf("simos: %w", err)
	}
	return nil
}

// SetRecorder installs an observability recorder; sync primitives count
// contended waits against it and Run folds in the kernel's scheduler
// statistics. A nil recorder (the default) records nothing.
func (p *Process) SetRecorder(r *obs.Recorder) { p.rec = r }

// Recorder reports the installed observability recorder (nil when unset).
func (p *Process) Recorder() *obs.Recorder { return p.rec }

// SetProfiler installs a virtual-time profiler before the process runs:
// every thread created from then on carries a vtprof series, the simos
// operations charge their time categories against it, and threads fold into
// the profiler as they exit. A nil profiler (the default) leaves every
// charge site a single pointer test and the simulation byte-identical.
func (p *Process) SetProfiler(prof *vtprof.Profiler) { p.prof = prof }

// Profiler reports the installed virtual-time profiler (nil when unset).
func (p *Process) Profiler() *vtprof.Profiler { return p.prof }

// EndTime reports the virtual time at which the last thread finished. Valid
// after Run returns.
func (p *Process) EndTime() sim.Time { return p.kern.Now() }

// RegisterHandler installs a process-wide signal handler (sigaction).
func (p *Process) RegisterHandler(s Signal, h Handler) {
	p.handlers[s] = h
}

// StartTrace begins recording thread activity into a bounded ring buffer of
// the given capacity; it returns the buffer for later inspection. Tracing
// is off by default (it costs a branch per operation and detail formatting
// per event).
func (p *Process) StartTrace(capacity int) *trace.Buffer {
	p.tracer = trace.NewBuffer(capacity)
	return p.tracer
}

// StopTrace detaches the tracer, returning it.
func (p *Process) StopTrace() *trace.Buffer {
	t := p.tracer
	p.tracer = nil
	return t
}

// Tracer reports the active trace buffer (nil when tracing is off).
func (p *Process) Tracer() *trace.Buffer { return p.tracer }

// pickCore assigns the next core, round-robin over the allowed sockets'
// cores. Oversubscription is allowed: a blocked thread sharing a core with
// a runnable one costs nothing in this model (no preemption contention).
func (p *Process) pickCore(socket int) int {
	allowed := p.allowedSockets()
	if socket >= 0 {
		allowed = []int{socket}
	}
	cps := p.mach.Config().CoresPerSocket
	slot := p.nextCore
	p.nextCore++
	s := allowed[slot%len(allowed)]
	idx := (slot / len(allowed)) % cps
	return s*cps + idx
}

// newThread creates a thread bound to a core. socket pins the thread to a
// socket (-1 follows policy); startDelay defers its first instruction.
func (p *Process) newThread(parent *Thread, name string, fn ThreadFunc, socket int, startDelay sim.Time) (*Thread, error) {
	if fn == nil {
		return nil, errors.New("simos: nil thread function")
	}
	coreID := p.pickCore(socket)
	t := &Thread{
		proc: p,
		tid:  p.nextTID,
		name: name,
		core: p.mach.Core(coreID),
	}
	p.nextTID++
	p.threads = append(p.threads, t)

	body := func(c *sim.Coro) {
		t.coro = c
		fn(t)
		t.finish()
	}
	// Spawning directly on the kernel serves both the pre-run path (main
	// thread) and in-run creation; kernel structures are only touched from
	// simulation context, so this is race-free.
	var at sim.Time
	if parent != nil {
		at = parent.coro.Clock() + startDelay
	}
	t.vt = p.prof.NewThread(name, at)
	t.coro = p.kern.Spawn(name, at, body)
	return t, nil
}
