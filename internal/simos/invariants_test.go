package simos

import (
	"testing"
	"testing/quick"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
)

// TestMutexExclusionProperty: under random per-thread work patterns, at most
// one thread is ever inside the critical section, and every entry/exit pair
// nests correctly in virtual time.
func TestMutexExclusionProperty(t *testing.T) {
	prop := func(seed uint32, threadsRaw uint8) bool {
		threads := int(threadsRaw)%4 + 2
		m, err := machine.NewPreset(machine.XeonE5_2450)
		if err != nil {
			return false
		}
		opts := DefaultOptions()
		opts.Lookahead = sim.Microsecond
		p, err := NewProcess(m, opts)
		if err != nil {
			return false
		}
		mu := p.NewMutex("m")
		inside := 0
		maxInside := 0
		type interval struct{ enter, exit sim.Time }
		var intervals []interval
		err = p.Run(func(th *Thread) {
			var workers []*Thread
			for i := 0; i < threads; i++ {
				x := uint64(seed) + uint64(i)*0x9e3779b9 + 1
				w, werr := th.CreateThread("w", func(t2 *Thread) {
					local := x
					for j := 0; j < 30; j++ {
						local = local*6364136223846793005 + 1442695040888963407
						t2.Compute(int64(local%5000) + 100)
						mu.Lock(t2)
						inside++
						if inside > maxInside {
							maxInside = inside
						}
						enter := t2.Now()
						t2.Compute(int64(local%2000) + 50)
						inside--
						intervals = append(intervals, interval{enter, t2.Now()})
						mu.Unlock(t2)
					}
				})
				if werr != nil {
					th.Failf("create: %v", werr)
				}
				workers = append(workers, w)
			}
			for _, w := range workers {
				th.Join(w)
			}
		})
		if err != nil || maxInside != 1 {
			return false
		}
		// Critical-section intervals must not overlap in virtual time.
		for i := 1; i < len(intervals); i++ {
			if intervals[i].enter < intervals[i-1].exit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocatorNonOverlapProperty: distinct allocations never overlap and
// always live on the requested node.
func TestAllocatorNonOverlapProperty(t *testing.T) {
	prop := func(sizesRaw []uint16) bool {
		if len(sizesRaw) > 50 {
			sizesRaw = sizesRaw[:50]
		}
		m, err := machine.NewPreset(machine.XeonE5_2660v2)
		if err != nil {
			return false
		}
		p, err := NewProcess(m, DefaultOptions())
		if err != nil {
			return false
		}
		type span struct{ lo, hi uintptr }
		var spans []span
		for i, raw := range sizesRaw {
			size := uintptr(raw)%65536 + 1
			node := i % 2
			addr, err := p.MallocOnNode(size, node)
			if err != nil {
				return false
			}
			if p.NodeOf(addr) != node || p.NodeOf(addr+size-1) != node {
				return false
			}
			spans = append(spans, span{addr, addr + size})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.lo < b.hi && b.lo < a.hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualTimeMonotoneUnderSignals: a thread's clock never runs backwards
// even while handlers interleave with its ops.
func TestVirtualTimeMonotoneUnderSignals(t *testing.T) {
	m, err := machine.NewPreset(machine.XeonE5_2450)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var stamps []sim.Time
	p.RegisterHandler(SigUser2, func(th *Thread, _ Signal) {
		stamps = append(stamps, th.Now())
		th.Compute(500)
	})
	err = p.Run(func(th *Thread) {
		w, werr := th.CreateThread("victim", func(t2 *Thread) {
			for i := 0; i < 200; i++ {
				t2.Compute(2000)
				stamps = append(stamps, t2.Now())
			}
		})
		if werr != nil {
			th.Failf("create: %v", werr)
		}
		for i := 0; i < 20; i++ {
			th.ComputeFor(5 * sim.Microsecond)
			th.Kill(w, SigUser2)
		}
		th.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	// stamps mixes victim + handler times, all on the victim thread: its
	// own subsequence must be monotone. (All stamps are from the victim.)
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("victim clock went backwards: %v after %v", stamps[i], stamps[i-1])
		}
	}
	if len(stamps) <= 200 {
		t.Error("no signal handlers appear to have run")
	}
}
