package simos

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/machine"
)

// allocAlign is the allocation granularity (one page of a 4 KiB-aligned
// bump allocator; the paper's benchmarks use 2 MiB hugepages, which the
// address-space model subsumes since TLB walks are not simulated).
const allocAlign = 4096

// heapBase offsets allocations within a node's address stripe so that
// address 0 stays invalid (NULL).
const heapBase = 1 << 20

// Malloc allocates size bytes of simulated memory on the process's default
// policy node and returns the base address (malloc).
func (p *Process) Malloc(size uintptr) (uintptr, error) {
	return p.MallocOnNode(size, p.defaultNode())
}

// MallocOnNode allocates size bytes on a specific NUMA node
// (numa_alloc_onnode), the primitive Quartz's virtual topology uses to back
// pmalloc with remote DRAM (§3.3).
func (p *Process) MallocOnNode(size uintptr, node int) (uintptr, error) {
	if node < 0 || node >= len(p.heap) {
		return 0, fmt.Errorf("simos: malloc on invalid node %d", node)
	}
	if size == 0 {
		size = 1
	}
	rounded := (size + allocAlign - 1) &^ (allocAlign - 1)
	limit := uintptr(1) << machine.NodeShift
	if p.heap[node]+rounded+heapBase > limit {
		return 0, fmt.Errorf("simos: node %d out of simulated memory (%d bytes requested)", node, size)
	}
	base := p.mach.NodeBase(node) + heapBase + p.heap[node]
	p.heap[node] += rounded
	return base, nil
}

// Free releases an allocation. The bump allocator does not recycle address
// space — simulated addresses are unbounded integers, so reuse is
// unnecessary — but the call is kept for API fidelity with malloc/free and
// pmalloc/pfree.
func (p *Process) Free(addr uintptr) {
	_ = addr
}

// NodeOf reports the NUMA node owning a simulated address.
func (p *Process) NodeOf(addr uintptr) int { return p.mach.HomeNode(addr) }
