package simos

import (
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/trace"
)

// Mutex is a POSIX-style mutex with FIFO handoff. Lock and Unlock route
// through the process function table, the interposition point Quartz uses to
// close epochs at inter-thread communication events (§2.3).
type Mutex struct {
	proc    *Process
	name    string
	owner   *Thread
	waiters []*Thread
}

// NewMutex creates a mutex (pthread_mutex_init).
func (p *Process) NewMutex(name string) *Mutex {
	return &Mutex{proc: p, name: name}
}

// Name reports the mutex's diagnostic name.
func (m *Mutex) Name() string { return m.name }

// Owner reports the current holder, or nil.
func (m *Mutex) Owner() *Thread { return m.owner }

// Lock acquires the mutex, blocking in FIFO order if it is held.
func (m *Mutex) Lock(t *Thread) { t.proc.table.MutexLock(t, m) }

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock(t *Thread) { t.proc.table.MutexUnlock(t, m) }

// doLock is the uninterposed lock implementation. Like a futex-based
// pthread mutex, a woken waiter competes for the lock rather than receiving
// it by handoff, and pending signal handlers run between wake-up and
// re-acquisition — so an emulator's delay injection on a waiting thread
// happens while the thread does NOT hold the lock, exactly as on real
// hardware.
func doLock(t *Thread, m *Mutex) {
	t.checkSignals()
	t.coro.Strict()
	t.coro.Advance(t.proc.cyc(t.proc.opts.MutexOpCycles, t))
	if m.owner == t {
		t.Failf("mutex %q: recursive lock", m.name)
	}
	for m.owner != nil {
		t.proc.rec.ContendedWait()
		m.waiters = append(m.waiters, t)
		t.coro.Block()
		t.vtCharge(vtprof.SyncWait)
		// Handlers (e.g. epoch delay injection) run before the retry.
		t.checkSignals()
		t.coro.Strict()
	}
	m.owner = t
	t.Trace(trace.KindLock, m.name)
}

// doUnlock is the uninterposed unlock implementation.
func doUnlock(t *Thread, m *Mutex) {
	t.checkSignals()
	t.coro.Strict()
	if m.owner != t {
		t.Failf("mutex %q: unlock by non-owner %q", m.name, t.name)
	}
	t.coro.Advance(t.proc.cyc(t.proc.opts.MutexOpCycles, t))
	t.Trace(trace.KindUnlock, m.name)
	m.owner = nil
	if len(m.waiters) == 0 {
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	t.coro.Unblock(next.coro, t.coro.Clock()+t.proc.cyc(t.proc.opts.MutexHandoffCycles, next))
}

// Cond is a POSIX-style condition variable.
type Cond struct {
	proc    *Process
	name    string
	waiters []*Thread
}

// NewCond creates a condition variable (pthread_cond_init).
func (p *Process) NewCond(name string) *Cond {
	return &Cond{proc: p, name: name}
}

// Name reports the condvar's diagnostic name.
func (c *Cond) Name() string { return c.name }

// Wait atomically releases m and blocks until signalled, then re-acquires m
// before returning (pthread_cond_wait).
func (c *Cond) Wait(t *Thread, m *Mutex) {
	t.checkSignals()
	t.coro.Strict()
	if m.owner != t {
		t.Failf("cond %q: wait without holding mutex %q", c.name, m.name)
	}
	c.waiters = append(c.waiters, t)
	// Release through the table so an attached emulator sees the unlock —
	// the inter-thread communication event it must inject delay before.
	t.proc.table.MutexUnlock(t, m)
	t.coro.Block()
	t.vtCharge(vtprof.SyncWait)
	t.checkSignals()
	m.Lock(t)
}

// Signal wakes the oldest waiter, if any (pthread_cond_signal). It routes
// through the function table so an emulator can interpose.
func (c *Cond) Signal(t *Thread) { t.proc.table.CondSignal(t, c) }

// Broadcast wakes all waiters (pthread_cond_broadcast), via the table.
func (c *Cond) Broadcast(t *Thread) { t.proc.table.CondBroadcast(t, c) }

// doCondSignal is the uninterposed signal implementation.
func doCondSignal(t *Thread, c *Cond) {
	t.checkSignals()
	t.coro.Strict()
	t.coro.Advance(t.proc.cyc(t.proc.opts.MutexOpCycles, t))
	if len(c.waiters) == 0 {
		return
	}
	next := c.waiters[0]
	c.waiters = c.waiters[1:]
	t.coro.Unblock(next.coro, t.coro.Clock()+t.proc.cyc(t.proc.opts.MutexHandoffCycles, next))
}

// doCondBroadcast is the uninterposed broadcast implementation.
func doCondBroadcast(t *Thread, c *Cond) {
	t.checkSignals()
	t.coro.Strict()
	t.coro.Advance(t.proc.cyc(t.proc.opts.MutexOpCycles, t))
	for _, w := range c.waiters {
		t.coro.Unblock(w.coro, t.coro.Clock()+t.proc.cyc(t.proc.opts.MutexHandoffCycles, w))
	}
	c.waiters = nil
}
