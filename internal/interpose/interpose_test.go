package interpose

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/simos"
)

func newProc(t *testing.T) *simos.Process {
	t.Helper()
	m, err := machine.NewPreset(machine.XeonE5_2450)
	if err != nil {
		t.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInstallValidation(t *testing.T) {
	if _, err := Install(nil, Hooks{}); err == nil {
		t.Error("Install(nil) succeeded")
	}
}

func TestAllHooksFire(t *testing.T) {
	p := newProc(t)
	var started, unlocks, signals, broadcasts, barriers int
	restore, err := Install(p, Hooks{
		ThreadStarted:       func(*simos.Thread) { started++ },
		BeforeMutexUnlock:   func(*simos.Thread, *simos.Mutex) { unlocks++ },
		BeforeCondSignal:    func(*simos.Thread, *simos.Cond) { signals++ },
		BeforeCondBroadcast: func(*simos.Thread, *simos.Cond) { broadcasts++ },
		BeforeBarrierWait:   func(*simos.Thread, *simos.Barrier) { barriers++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	mu := p.NewMutex("m")
	cv := p.NewCond("c")
	bar, err := p.NewBarrier("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Run(func(th *simos.Thread) {
		w, err := th.CreateThread("w", func(t2 *simos.Thread) {
			mu.Lock(t2)
			cv.Wait(t2, mu) // releases through the interposed unlock
			mu.Unlock(t2)
			bar.Wait(t2)
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		th.ComputeFor(1_000_000_000) // let the worker reach the wait
		mu.Lock(th)
		cv.Signal(th)
		mu.Unlock(th)
		mu.Lock(th)
		cv.Broadcast(th)
		mu.Unlock(th)
		bar.Wait(th)
		th.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if started != 1 {
		t.Errorf("ThreadStarted fired %d times, want 1", started)
	}
	// Unlocks: worker cond-wait release + worker unlock + 2 main unlocks.
	if unlocks != 4 {
		t.Errorf("BeforeMutexUnlock fired %d times, want 4", unlocks)
	}
	if signals != 1 || broadcasts != 1 {
		t.Errorf("cond hooks fired %d/%d, want 1/1", signals, broadcasts)
	}
	if barriers != 2 {
		t.Errorf("BeforeBarrierWait fired %d times, want 2", barriers)
	}
}

func TestRestoreReinstatesOriginals(t *testing.T) {
	p := newProc(t)
	var count int
	restore, err := Install(p, Hooks{
		BeforeMutexUnlock: func(*simos.Thread, *simos.Mutex) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	restore()
	mu := p.NewMutex("m")
	if err := p.Run(func(th *simos.Thread) {
		mu.Lock(th)
		mu.Unlock(th)
	}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("hook fired %d times after restore", count)
	}
}

func TestNilHooksLeaveTableUntouched(t *testing.T) {
	p := newProc(t)
	before := *p.Table()
	restore, err := Install(p, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	// With no hooks requested, the original functions must still run; the
	// process should behave identically.
	mu := p.NewMutex("m")
	if err := p.Run(func(th *simos.Thread) {
		mu.Lock(th)
		mu.Unlock(th)
	}); err != nil {
		t.Fatal(err)
	}
	_ = before
}

func TestThreadStartedWrapsBody(t *testing.T) {
	// The hook must run in the new thread's context, before its body.
	p := newProc(t)
	var hookTID, bodyFirst int
	restore, err := Install(p, Hooks{
		ThreadStarted: func(t2 *simos.Thread) {
			hookTID = t2.TID()
			if bodyFirst == 0 {
				bodyFirst = -1 // hook ran first
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	var workerTID int
	err = p.Run(func(th *simos.Thread) {
		w, err := th.CreateThread("w", func(t2 *simos.Thread) {
			workerTID = t2.TID()
			if bodyFirst == 0 {
				bodyFirst = 1 // body ran first: wrong
			}
		})
		if err != nil {
			th.Failf("create: %v", err)
		}
		th.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hookTID != workerTID {
		t.Errorf("hook ran on thread %d, body on %d", hookTID, workerTID)
	}
	if bodyFirst != -1 {
		t.Error("ThreadStarted did not run before the thread body")
	}
}
