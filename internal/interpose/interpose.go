// Package interpose implements the LD_PRELOAD-equivalent hook layer. The
// real Quartz exploits the fact that pthread functions are weak symbols: a
// preloaded library defines same-name functions that intercept calls, do
// emulator bookkeeping, and redirect to the original implementation (§3.1).
// Here the same structure is expressed by wrapping entries of a process's
// function table before the process runs.
package interpose

import (
	"errors"

	"github.com/quartz-emu/quartz/internal/simos"
)

// Hooks are the callbacks an emulator installs.
type Hooks struct {
	// ThreadStarted runs in the context of every newly created thread
	// before its body — the "new threads call back into the library and
	// register themselves with the monitor" step (Fig. 5, step 1).
	ThreadStarted func(t *simos.Thread)
	// BeforeMutexLock runs before a lock acquisition is attempted: §2.3
	// closes epochs when a thread enters a critical section, so delay
	// accrued *outside* the section is injected before contending and is
	// never serialized under the lock.
	BeforeMutexLock func(t *simos.Thread, m *simos.Mutex)
	// BeforeMutexUnlock runs before the lock release becomes visible to
	// waiters — where accumulated critical-section delay must be injected
	// so it propagates to contenders (Fig. 4b).
	BeforeMutexUnlock func(t *simos.Thread, m *simos.Mutex)
	// BeforeCondSignal runs before a condition-variable signal.
	BeforeCondSignal func(t *simos.Thread, c *simos.Cond)
	// BeforeCondBroadcast runs before a condition-variable broadcast.
	BeforeCondBroadcast func(t *simos.Thread, c *simos.Cond)
	// BeforeRWLock runs before a reader-writer lock acquisition (shared or
	// exclusive), the enter-side epoch point.
	BeforeRWLock func(t *simos.Thread, m *simos.RWMutex)
	// BeforeRWUnlock runs before a reader-writer lock release becomes
	// visible to waiters.
	BeforeRWUnlock func(t *simos.Thread, m *simos.RWMutex)
	// BeforeBarrierWait runs before an OpenMP-style barrier rendezvous —
	// the arriving thread's accumulated delay must be injected before its
	// arrival becomes visible (§7 lists such constructs as future work;
	// this reproduction implements them).
	BeforeBarrierWait func(t *simos.Thread, b *simos.Barrier)
}

// Install wraps the process function table with the hooks and returns a
// restore function that reinstates the previous table (dlclose-equivalent).
func Install(p *simos.Process, h Hooks) (restore func(), err error) {
	if p == nil {
		return nil, errors.New("interpose: nil process")
	}
	tbl := p.Table()
	orig := *tbl

	if h.ThreadStarted != nil {
		tbl.ThreadCreate = func(parent *simos.Thread, name string, fn simos.ThreadFunc, socket int) (*simos.Thread, error) {
			wrapped := func(t *simos.Thread) {
				h.ThreadStarted(t)
				fn(t)
			}
			return orig.ThreadCreate(parent, name, wrapped, socket)
		}
	}
	if h.BeforeMutexLock != nil {
		tbl.MutexLock = func(t *simos.Thread, m *simos.Mutex) {
			h.BeforeMutexLock(t, m)
			orig.MutexLock(t, m)
		}
	}
	if h.BeforeMutexUnlock != nil {
		tbl.MutexUnlock = func(t *simos.Thread, m *simos.Mutex) {
			h.BeforeMutexUnlock(t, m)
			orig.MutexUnlock(t, m)
		}
	}
	if h.BeforeCondSignal != nil {
		tbl.CondSignal = func(t *simos.Thread, c *simos.Cond) {
			h.BeforeCondSignal(t, c)
			orig.CondSignal(t, c)
		}
	}
	if h.BeforeCondBroadcast != nil {
		tbl.CondBroadcast = func(t *simos.Thread, c *simos.Cond) {
			h.BeforeCondBroadcast(t, c)
			orig.CondBroadcast(t, c)
		}
	}
	if h.BeforeRWLock != nil {
		tbl.RWLockShared = func(t *simos.Thread, m *simos.RWMutex) {
			h.BeforeRWLock(t, m)
			orig.RWLockShared(t, m)
		}
		tbl.RWLockExclusive = func(t *simos.Thread, m *simos.RWMutex) {
			h.BeforeRWLock(t, m)
			orig.RWLockExclusive(t, m)
		}
	}
	if h.BeforeRWUnlock != nil {
		tbl.RWUnlock = func(t *simos.Thread, m *simos.RWMutex) {
			h.BeforeRWUnlock(t, m)
			orig.RWUnlock(t, m)
		}
	}
	if h.BeforeBarrierWait != nil {
		tbl.BarrierWait = func(t *simos.Thread, b *simos.Barrier) {
			h.BeforeBarrierWait(t, b)
			orig.BarrierWait(t, b)
		}
	}
	return func() { *tbl = orig }, nil
}
