// Package trace is a lightweight virtual-time execution tracer. A bounded
// ring buffer records (time, thread, kind, detail) events; when a workload
// under emulation behaves unexpectedly — delays landing in the wrong place,
// epochs closing too often — the dumped trace shows the interleaving of
// memory operations, synchronization, signals and epoch boundaries in
// virtual-time order.
package trace

import (
	"fmt"
	"io"
	"sort"

	"github.com/quartz-emu/quartz/internal/sim"
)

// Kind classifies trace events.
type Kind int

// Event kinds.
const (
	KindLoad Kind = iota + 1
	KindStore
	KindFlush
	KindCompute
	KindLock
	KindUnlock
	KindCondWait
	KindCondSignal
	KindBarrier
	KindSignal
	KindSleep
	KindThreadStart
	KindThreadExit
	KindEpoch
	KindInject
	KindUser
)

func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindFlush:
		return "flush"
	case KindCompute:
		return "compute"
	case KindLock:
		return "lock"
	case KindUnlock:
		return "unlock"
	case KindCondWait:
		return "cond-wait"
	case KindCondSignal:
		return "cond-signal"
	case KindBarrier:
		return "barrier"
	case KindSignal:
		return "signal"
	case KindSleep:
		return "sleep"
	case KindThreadStart:
		return "thread-start"
	case KindThreadExit:
		return "thread-exit"
	case KindEpoch:
		return "epoch"
	case KindInject:
		return "inject"
	case KindUser:
		return "user"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Time   sim.Time
	Thread string
	Kind   Kind
	Detail string
}

// Buffer is a bounded ring of events. It is used from simulation context
// only (single-threaded), so it needs no locking.
type Buffer struct {
	events []Event
	next   int
	filled bool
	total  int64
}

// NewBuffer creates a ring holding up to cap events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{events: make([]Event, capacity)}
}

// Record appends an event, overwriting the oldest when full.
func (b *Buffer) Record(at sim.Time, thread string, kind Kind, detail string) {
	b.events[b.next] = Event{Time: at, Thread: thread, Kind: kind, Detail: detail}
	b.next++
	b.total++
	if b.next == len(b.events) {
		b.next = 0
		b.filled = true
	}
}

// Len reports how many events are currently retained.
func (b *Buffer) Len() int {
	if b.filled {
		return len(b.events)
	}
	return b.next
}

// Total reports how many events were ever recorded (including overwritten).
func (b *Buffer) Total() int64 { return b.total }

// Events returns the retained events in recording order.
func (b *Buffer) Events() []Event {
	if !b.filled {
		return append([]Event(nil), b.events[:b.next]...)
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Dump writes the retained events as text, sorted by virtual time (events
// from different threads may be recorded slightly out of order under
// lookahead execution).
func (b *Buffer) Dump(w io.Writer) error {
	evs := b.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	for _, e := range evs {
		if _, err := fmt.Fprintf(w, "%14s  %-16s %-12s %s\n", e.Time, e.Thread, e.Kind, e.Detail); err != nil {
			return err
		}
	}
	return nil
}
