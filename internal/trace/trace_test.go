package trace

import (
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	b := NewBuffer(8)
	b.Record(10*sim.Nanosecond, "main", KindLoad, "0x1000")
	b.Record(20*sim.Nanosecond, "main", KindUnlock, "m")
	evs := b.Events()
	if len(evs) != 2 || b.Len() != 2 || b.Total() != 2 {
		t.Fatalf("events = %d, len = %d, total = %d", len(evs), b.Len(), b.Total())
	}
	if evs[0].Kind != KindLoad || evs[1].Detail != "m" {
		t.Errorf("event contents wrong: %+v", evs)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Record(sim.Time(i)*sim.Nanosecond, "t", KindCompute, "")
	}
	evs := b.Events()
	if len(evs) != 4 || b.Total() != 10 {
		t.Fatalf("retained %d (total %d), want 4 (10)", len(evs), b.Total())
	}
	// Oldest retained event is i=6.
	if evs[0].Time != 6*sim.Nanosecond || evs[3].Time != 9*sim.Nanosecond {
		t.Errorf("ring window = [%v, %v], want [6ns, 9ns]", evs[0].Time, evs[3].Time)
	}
}

func TestDumpSortedByTime(t *testing.T) {
	b := NewBuffer(8)
	b.Record(30*sim.Nanosecond, "b", KindStore, "late")
	b.Record(10*sim.Nanosecond, "a", KindLoad, "early")
	var sb strings.Builder
	if err := b.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Index(out, "early") > strings.Index(out, "late") {
		t.Errorf("dump not time-sorted:\n%s", out)
	}
	if !strings.Contains(out, "load") || !strings.Contains(out, "store") {
		t.Errorf("dump missing kinds:\n%s", out)
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	b := NewBuffer(0)
	if len(b.events) == 0 {
		t.Error("zero capacity produced empty ring")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindLoad; k <= KindUser; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind not formatted as Kind(n)")
	}
}
