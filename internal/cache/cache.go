// Package cache models set-associative write-back caches with LRU
// replacement, in-flight fill tracking (so a prefetched line that has not
// yet arrived still charges partial latency), explicit line flushes
// (clflush/clflushopt), and a simple stream prefetcher.
//
// The storage layout is optimized for the simulator's hot path: instead of
// an array of per-line structs, the cache keeps parallel arrays so that the
// set walk — the single hottest loop in the whole simulation — scans a
// compact one-byte signature vector (a hash of each way's tag, with 0
// reserved for invalid ways) and touches the full 8-byte tag only to verify
// a signature match. A large modeled L3 keeps its whole signature vector
// host-cache resident where the tag vector would not be, so a set probe
// that misses costs one host cache line instead of several; false signature
// matches (~ways/255 per probe) are filtered by the exact tag compare, so
// outcomes never depend on the hash. The full tag and the in-flight arrival
// time live in one 16-byte record so a hit verifies and reads one metadata
// line, while the LRU clocks stay in their own packed vector so the
// eviction min-scan streams 8-byte values.
// A per-set MRU way hint resolves the common repeat-hit in one probe,
// and a cache-global last-hit fast path (TouchLast) lets the CPU layer skip
// the walk entirely for consecutive accesses to the same line. Every fast
// path performs bit-identical bookkeeping to the plain walk: hit/miss
// outcomes, LRU clocks, statistics and in-flight arrival accounting are
// unchanged, so simulated virtual time is unaffected (the determinism gate
// the equivalence tests pin down).
//
// No-allocation contract: after New, the steady-state operations — Lookup,
// TouchLast, Insert, Flush, Contains and the prefetcher's Observe — never
// allocate. `make bench-alloc` gates this with testing.AllocsPerRun.
package cache

import (
	"fmt"
	"math/bits"

	"github.com/quartz-emu/quartz/internal/sim"
)

// Config describes one cache level.
type Config struct {
	// Name labels the level for diagnostics (e.g. "L1d", "L3").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineSize is the line size in bytes.
	LineSize int
	// LookupLat is the latency contribution of probing this level.
	LookupLat sim.Time
}

// Validate reports whether the configuration describes a buildable cache.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cache %q: size/ways/linesize must be positive (got %d/%d/%d)",
			c.Name, c.SizeBytes, c.Ways, c.LineSize)
	}
	lines := c.SizeBytes / c.LineSize
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	return nil
}

// Stats aggregates cache activity.
type Stats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
	Flushes        int64
}

// Eviction describes a line displaced by an insert.
type Eviction struct {
	Addr  uintptr // line-aligned address
	Dirty bool
}

// wayMeta pairs the per-way fill arrival time with the stored tag (tag+1,
// meaningful only while the way's signature is nonzero). A hit verifies the
// tag and reads the arrival from one 16-byte record — a single metadata
// line — and an eviction reconstructs the victim's address from the same
// line the insert is about to overwrite. The LRU clock stays in its own
// packed vector so the eviction min-scan streams 8-byte values.
type wayMeta struct {
	arrival sim.Time
	tag     uintptr
}

// Cache is one set-associative write-back cache level.
//
// Line state is held in parallel arrays indexed by set*ways+way. meta holds
// each way's tag as tag+1 so that zero means "invalid way"; sigs holds a
// one-byte hash of that value (0 = invalid way), the vector the set walk
// actually scans. A way is valid iff its signature is nonzero.
type Cache struct {
	cfg     Config
	sigs    []uint8   // signature of meta[i].tag per way; 0 = invalid
	meta    []wayMeta // per way; fill arrival + tag
	lastUse []uint64  // per way; LRU clock value of the last touch
	dirty   []bool    // per way
	mru     []int32   // per set; way of the most recent hit/insert

	numSets   int
	ways      int
	setMask   int  // numSets-1 when numSets is a power of two, else 0
	lineShift uint // log2(LineSize) when it is a power of two
	linePow2  bool

	// lastIdx/lastTag remember the most recently hit (or inserted) line for
	// the TouchLast fast path; lastIdx is -1 when no such line is valid.
	lastIdx int
	lastTag uintptr

	useClk uint64
	stats  Stats
}

// sigOf hashes a stored tag value (tag+1, never zero) to its one-byte walk
// signature. Zero is reserved for invalid ways, so a valid signature is
// remapped away from it; any deterministic mixing works — a false match
// only costs one exact tag compare.
func sigOf(want uintptr) uint8 {
	s := uint8(want ^ want>>13 ^ want>>27)
	if s == 0 {
		return 0xa5
	}
	return s
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineSize
	numSets := lines / cfg.Ways
	mask := 0
	if numSets&(numSets-1) == 0 {
		mask = numSets - 1
	}
	c := &Cache{
		cfg:     cfg,
		sigs:    make([]uint8, lines),
		meta:    make([]wayMeta, lines),
		lastUse: make([]uint64, lines),
		dirty:   make([]bool, lines),
		mru:     make([]int32, numSets),
		numSets: numSets,
		ways:    cfg.Ways,
		setMask: mask,
		lastIdx: -1,
	}
	if cfg.LineSize&(cfg.LineSize-1) == 0 {
		c.lineShift = uint(bits.TrailingZeros(uint(cfg.LineSize)))
		c.linePow2 = true
	}
	return c, nil
}

// Config reports the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LookupLat reports the level's probe latency without copying the whole
// configuration (the hot-path accessor for the CPU walk).
func (c *Cache) LookupLat() sim.Time { return c.cfg.LookupLat }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) lineAddr(addr uintptr) uintptr {
	return addr &^ uintptr(c.cfg.LineSize-1)
}

// tagOf maps an address to its line tag (addr / LineSize; a shift when the
// line size is a power of two — unsigned division and shift agree exactly).
func (c *Cache) tagOf(addr uintptr) uintptr {
	if c.linePow2 {
		return addr >> c.lineShift
	}
	return addr / uintptr(c.cfg.LineSize)
}

// setOf maps a tag to its set index.
func (c *Cache) setOf(tag uintptr) int {
	if c.setMask != 0 {
		return int(tag) & c.setMask
	}
	return int(tag % uintptr(c.numSets))
}

// hitAt performs the bookkeeping of a hit on the way at index idx and
// returns the residual in-flight wait. It is the single shared hit path, so
// the MRU probe, the walk and TouchLast are bit-identical by construction.
func (c *Cache) hitAt(idx int, tag uintptr, now sim.Time, markDirty bool) (wait sim.Time) {
	c.useClk++
	c.lastUse[idx] = c.useClk
	if markDirty {
		c.dirty[idx] = true
	}
	c.stats.Hits++
	c.lastIdx = idx
	c.lastTag = tag
	if a := c.meta[idx].arrival; a > now {
		return a - now
	}
	return 0
}

// Lookup probes the cache at virtual time now. On a hit it updates LRU state
// and returns any residual wait for an in-flight fill (zero once the line
// has fully arrived). markDirty additionally dirties the line (a store hit).
func (c *Cache) Lookup(addr uintptr, now sim.Time, markDirty bool) (hit bool, wait sim.Time) {
	tag := c.tagOf(addr)
	set := c.setOf(tag)
	base := set * c.ways
	want := tag + 1
	sig := sigOf(want)
	// MRU probe: the way that hit last time in this set.
	if m := base + int(c.mru[set]); c.sigs[m] == sig && c.meta[m].tag == want {
		wait = c.hitAt(m, tag, now, markDirty)
		return true, wait
	}
	for i, s := range c.sigs[base : base+c.ways] {
		if s == sig && c.meta[base+i].tag == want {
			idx := base + i
			c.mru[set] = int32(i)
			wait = c.hitAt(idx, tag, now, markDirty)
			return true, wait
		}
	}
	c.stats.Misses++
	return false, 0
}

// TouchLast re-hits the cache's most recently hit or filled line when addr
// still maps to it, performing bookkeeping identical to Lookup, and reports
// ok=false (with no side effects) otherwise. It lets the CPU's per-core
// last-line filter skip the set walk for consecutive same-line accesses.
func (c *Cache) TouchLast(addr uintptr, now sim.Time, markDirty bool) (wait sim.Time, ok bool) {
	tag := c.tagOf(addr)
	idx := c.lastIdx
	if idx < 0 || c.meta[idx].tag != tag+1 {
		return 0, false
	}
	return c.hitAt(idx, tag, now, markDirty), true
}

// Contains reports whether the line holding addr is present, without
// touching LRU or statistics.
func (c *Cache) Contains(addr uintptr) bool {
	tag := c.tagOf(addr)
	set := c.setOf(tag)
	base := set * c.ways
	want := tag + 1
	sig := sigOf(want)
	if m := base + int(c.mru[set]); c.sigs[m] == sig && c.meta[m].tag == want {
		return true
	}
	for i, s := range c.sigs[base : base+c.ways] {
		if s == sig && c.meta[base+i].tag == want {
			return true
		}
	}
	return false
}

// Insert fills the line holding addr, evicting the LRU victim if the set is
// full. arrival is when the fill data lands (demand fills arrive "now";
// prefetches arrive later). The displaced line, if any, is returned so the
// caller can issue a writeback.
func (c *Cache) Insert(addr uintptr, dirty bool, arrival sim.Time) (ev Eviction, evicted bool) {
	tag := c.tagOf(addr)
	set := c.setOf(tag)
	base := set * c.ways
	want := tag + 1
	sig := sigOf(want)
	// First pass touches only the signature vector: it finds a matching way
	// (already present) or the first invalid way. The LRU min-scan over the
	// metadata records runs separately and only when the set is full — the
	// same victim the reference single-pass walk selected (first invalid
	// way, else strict minimum lastUse with earliest-index tiebreak), but
	// the common steady-state insert streams through two compact vectors
	// instead of interleaving loads and data-dependent branches.
	firstInvalid := -1
	for i, s := range c.sigs[base : base+c.ways] {
		if s == sig && c.meta[base+i].tag == want {
			// Already present (e.g. racing prefetch): refresh.
			idx := base + i
			c.useClk++
			c.lastUse[idx] = c.useClk
			c.dirty[idx] = c.dirty[idx] || dirty
			if arrival < c.meta[idx].arrival {
				c.meta[idx].arrival = arrival
			}
			c.mru[set] = int32(i)
			c.lastIdx = idx
			c.lastTag = tag
			return Eviction{}, false
		}
		if s == 0 && firstInvalid == -1 {
			firstInvalid = base + i
		}
	}
	victim := firstInvalid
	if victim == -1 {
		lu := c.lastUse[base : base+c.ways]
		victim = base
		min := lu[0]
		for i := 1; i < len(lu); i++ {
			if lu[i] < min {
				min = lu[i]
				victim = base + i
			}
		}
	}
	if c.sigs[victim] != 0 {
		c.stats.Evictions++
		if c.dirty[victim] {
			c.stats.DirtyEvictions++
		}
		ev = Eviction{Addr: (c.meta[victim].tag - 1) * uintptr(c.cfg.LineSize), Dirty: c.dirty[victim]}
		evicted = true
		if c.lastIdx == victim {
			c.lastIdx = -1
		}
	}
	c.useClk++
	c.sigs[victim] = sig
	c.dirty[victim] = dirty
	c.lastUse[victim] = c.useClk
	c.meta[victim] = wayMeta{arrival: arrival, tag: want}
	c.mru[set] = int32(victim - base)
	c.lastIdx = victim
	c.lastTag = tag
	return ev, evicted
}

// Flush invalidates the line holding addr, reporting whether it was present
// and whether it was dirty (and therefore needs a writeback). This models
// clflush/clflushopt.
func (c *Cache) Flush(addr uintptr) (present, dirty bool) {
	tag := c.tagOf(addr)
	base := c.setOf(tag) * c.ways
	want := tag + 1
	sig := sigOf(want)
	for i, s := range c.sigs[base : base+c.ways] {
		if s == sig && c.meta[base+i].tag == want {
			idx := base + i
			c.stats.Flushes++
			present, dirty = true, c.dirty[idx]
			c.sigs[idx] = 0
			c.dirty[idx] = false
			c.lastUse[idx] = 0
			c.meta[idx] = wayMeta{}
			if c.lastIdx == idx {
				c.lastIdx = -1
			}
			return present, dirty
		}
	}
	return false, false
}

// InvalidateAll drops every line, returning the dirty line addresses so the
// caller can model writeback traffic. It is used to model cache invalidation
// between experiment trials.
func (c *Cache) InvalidateAll() []uintptr {
	var dirtyAddrs []uintptr
	for i, s := range c.sigs {
		if s != 0 && c.dirty[i] {
			dirtyAddrs = append(dirtyAddrs, (c.meta[i].tag-1)*uintptr(c.cfg.LineSize))
		}
		c.sigs[i] = 0
		c.dirty[i] = false
		c.lastUse[i] = 0
		c.meta[i] = wayMeta{}
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.lastIdx = -1
	return dirtyAddrs
}
