// Package cache models set-associative write-back caches with LRU
// replacement, in-flight fill tracking (so a prefetched line that has not
// yet arrived still charges partial latency), explicit line flushes
// (clflush/clflushopt), and a simple stream prefetcher.
package cache

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/sim"
)

// Config describes one cache level.
type Config struct {
	// Name labels the level for diagnostics (e.g. "L1d", "L3").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineSize is the line size in bytes.
	LineSize int
	// LookupLat is the latency contribution of probing this level.
	LookupLat sim.Time
}

// Validate reports whether the configuration describes a buildable cache.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cache %q: size/ways/linesize must be positive (got %d/%d/%d)",
			c.Name, c.SizeBytes, c.Ways, c.LineSize)
	}
	lines := c.SizeBytes / c.LineSize
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	return nil
}

// Stats aggregates cache activity.
type Stats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
	Flushes        int64
}

// Eviction describes a line displaced by an insert.
type Eviction struct {
	Addr  uintptr // line-aligned address
	Dirty bool
}

type line struct {
	tag     uintptr
	valid   bool
	dirty   bool
	lastUse uint64
	arrival sim.Time // fill arrival; reads before this wait the remainder
}

// Cache is one set-associative write-back cache level.
type Cache struct {
	cfg     Config
	sets    []line // numSets * ways, row-major
	numSets int
	setMask int // numSets-1 when numSets is a power of two, else 0
	useClk  uint64
	stats   Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineSize
	numSets := lines / cfg.Ways
	mask := 0
	if numSets&(numSets-1) == 0 {
		mask = numSets - 1
	}
	return &Cache{
		cfg:     cfg,
		sets:    make([]line, lines),
		numSets: numSets,
		setMask: mask,
	}, nil
}

// Config reports the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) lineAddr(addr uintptr) uintptr {
	return addr &^ uintptr(c.cfg.LineSize-1)
}

func (c *Cache) setOf(tag uintptr) []line {
	var idx int
	if c.setMask != 0 {
		idx = int(tag) & c.setMask
	} else {
		idx = int(tag % uintptr(c.numSets))
	}
	return c.sets[idx*c.cfg.Ways : (idx+1)*c.cfg.Ways]
}

// Lookup probes the cache at virtual time now. On a hit it updates LRU state
// and returns any residual wait for an in-flight fill (zero once the line
// has fully arrived). markDirty additionally dirties the line (a store hit).
func (c *Cache) Lookup(addr uintptr, now sim.Time, markDirty bool) (hit bool, wait sim.Time) {
	tag := addr / uintptr(c.cfg.LineSize)
	set := c.setOf(tag)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.useClk++
			l.lastUse = c.useClk
			if markDirty {
				l.dirty = true
			}
			c.stats.Hits++
			if l.arrival > now {
				return true, l.arrival - now
			}
			return true, 0
		}
	}
	c.stats.Misses++
	return false, 0
}

// Contains reports whether the line holding addr is present, without
// touching LRU or statistics.
func (c *Cache) Contains(addr uintptr) bool {
	tag := addr / uintptr(c.cfg.LineSize)
	set := c.setOf(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Insert fills the line holding addr, evicting the LRU victim if the set is
// full. arrival is when the fill data lands (demand fills arrive "now";
// prefetches arrive later). The displaced line, if any, is returned so the
// caller can issue a writeback.
func (c *Cache) Insert(addr uintptr, dirty bool, arrival sim.Time) (ev Eviction, evicted bool) {
	tag := addr / uintptr(c.cfg.LineSize)
	set := c.setOf(tag)
	victim := -1
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			// Already present (e.g. racing prefetch): refresh.
			c.useClk++
			l.lastUse = c.useClk
			l.dirty = l.dirty || dirty
			if arrival < l.arrival {
				l.arrival = arrival
			}
			return Eviction{}, false
		}
		if !l.valid {
			if victim == -1 || set[victim].valid {
				victim = i
			}
			continue
		}
		if victim == -1 || (set[victim].valid && l.lastUse < set[victim].lastUse) {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.DirtyEvictions++
		}
		ev = Eviction{Addr: v.tag * uintptr(c.cfg.LineSize), Dirty: v.dirty}
		evicted = true
	}
	c.useClk++
	*v = line{tag: tag, valid: true, dirty: dirty, lastUse: c.useClk, arrival: arrival}
	return ev, evicted
}

// Flush invalidates the line holding addr, reporting whether it was present
// and whether it was dirty (and therefore needs a writeback). This models
// clflush/clflushopt.
func (c *Cache) Flush(addr uintptr) (present, dirty bool) {
	tag := addr / uintptr(c.cfg.LineSize)
	set := c.setOf(tag)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.stats.Flushes++
			present, dirty = true, l.dirty
			*l = line{}
			return present, dirty
		}
	}
	return false, false
}

// InvalidateAll drops every line, returning the dirty line addresses so the
// caller can model writeback traffic. It is used to model cache invalidation
// between experiment trials.
func (c *Cache) InvalidateAll() []uintptr {
	var dirty []uintptr
	for i := range c.sets {
		l := &c.sets[i]
		if l.valid && l.dirty {
			dirty = append(dirty, l.tag*uintptr(c.cfg.LineSize))
		}
		*l = line{}
	}
	return dirty
}
