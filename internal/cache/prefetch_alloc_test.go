package cache

import "testing"

// TestPrefetcherObserveNoAllocs gates the access-path contract: once built,
// Observe never allocates — proposed lines come from the construction-time
// scratch buffer. Covers the streaming case (every Observe proposes lines)
// and the pointer-chase case (every Observe allocates a new stream slot).
func TestPrefetcherObserveNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	t.Run("stream", func(t *testing.T) {
		p := NewPrefetcher(4)
		line := uintptr(100)
		for i := 0; i < 64; i++ { // arm the stream past the confidence gate
			p.Observe(line)
			line++
		}
		if allocs := testing.AllocsPerRun(200, func() {
			p.Observe(line)
			line++
		}); allocs != 0 {
			t.Errorf("streaming Observe: %v allocs/op, want 0", allocs)
		}
	})
	t.Run("chase", func(t *testing.T) {
		p := NewPrefetcher(4)
		rng := uintptr(12345)
		if allocs := testing.AllocsPerRun(500, func() {
			rng = rng*6364136223846793005 + 1442695040888963407
			p.Observe(rng >> 16)
		}); allocs != 0 {
			t.Errorf("pointer-chase Observe: %v allocs/op, want 0", allocs)
		}
	})
}

// BenchmarkPrefetcherObserve is the streaming hot loop for bench-quick; the
// 0 allocs/op report is asserted by TestPrefetcherObserveNoAllocs.
func BenchmarkPrefetcherObserve(b *testing.B) {
	p := NewPrefetcher(4)
	b.ReportAllocs()
	line := uintptr(1)
	for i := 0; i < b.N; i++ {
		p.Observe(line)
		line++
	}
}
