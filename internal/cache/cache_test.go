package cache

import (
	"testing"
	"testing/quick"

	"github.com/quartz-emu/quartz/internal/sim"
)

func smallConfig() Config {
	return Config{Name: "test", SizeBytes: 4096, Ways: 4, LineSize: 64, LookupLat: sim.Nanosecond}
}

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"zero-size", func(c *Config) { c.SizeBytes = 0 }, true},
		{"zero-ways", func(c *Config) { c.Ways = 0 }, true},
		{"indivisible-ways", func(c *Config) { c.Ways = 3 }, true},
		{"non-pow2-sets-ok", func(c *Config) { c.SizeBytes = 4096 * 3 / 2; c.Ways = 4 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMissThenHit(t *testing.T) {
	c := mustCache(t, smallConfig())
	if hit, _ := c.Lookup(0x1000, 0, false); hit {
		t.Fatal("cold lookup hit")
	}
	c.Insert(0x1000, false, 0)
	if hit, wait := c.Lookup(0x1000, 0, false); !hit || wait != 0 {
		t.Fatalf("post-insert lookup = (%v, %v), want hit with no wait", hit, wait)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c := mustCache(t, smallConfig())
	c.Insert(0x1000, false, 0)
	for _, off := range []uintptr{0, 8, 63} {
		if hit, _ := c.Lookup(0x1000+off, 0, false); !hit {
			t.Errorf("offset %d within line missed", off)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := smallConfig() // 16 sets, 4 ways
	c := mustCache(t, cfg)
	numSets := cfg.SizeBytes / cfg.LineSize / cfg.Ways
	setStride := uintptr(numSets * cfg.LineSize)

	// Fill one set with 4 lines mapping to the same set.
	for i := uintptr(0); i < 4; i++ {
		if _, ev := c.Insert(i*setStride, false, 0); ev {
			t.Fatalf("insert %d evicted prematurely", i)
		}
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Lookup(0, 0, false)
	ev, evicted := c.Insert(4*setStride, false, 0)
	if !evicted {
		t.Fatal("fifth insert into full set did not evict")
	}
	if ev.Addr != setStride {
		t.Errorf("evicted %#x, want LRU line %#x", ev.Addr, setStride)
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	cfg := smallConfig()
	c := mustCache(t, cfg)
	numSets := cfg.SizeBytes / cfg.LineSize / cfg.Ways
	setStride := uintptr(numSets * cfg.LineSize)
	c.Insert(0, true, 0) // dirty line
	for i := uintptr(1); i <= 4; i++ {
		ev, evicted := c.Insert(i*setStride, false, 0)
		if evicted && ev.Addr == 0 {
			if !ev.Dirty {
				t.Error("dirty line evicted without dirty flag")
			}
			return
		}
	}
	t.Fatal("dirty line was never evicted")
}

func TestStoreHitDirtiesLine(t *testing.T) {
	c := mustCache(t, smallConfig())
	c.Insert(0x40, false, 0)
	c.Lookup(0x40, 0, true) // store hit
	present, dirty := c.Flush(0x40)
	if !present || !dirty {
		t.Errorf("Flush = (%v, %v), want present dirty line", present, dirty)
	}
}

func TestFlushRemovesLine(t *testing.T) {
	c := mustCache(t, smallConfig())
	c.Insert(0x80, false, 0)
	if present, dirty := c.Flush(0x80); !present || dirty {
		t.Errorf("first flush = (%v,%v), want present clean", present, dirty)
	}
	if present, _ := c.Flush(0x80); present {
		t.Error("second flush still found the line")
	}
	if hit, _ := c.Lookup(0x80, 0, false); hit {
		t.Error("lookup after flush hit")
	}
}

func TestInFlightFillChargesResidualWait(t *testing.T) {
	c := mustCache(t, smallConfig())
	arrival := 150 * sim.Nanosecond
	c.Insert(0x100, false, arrival) // prefetch landing at 150ns
	if _, wait := c.Lookup(0x100, 100*sim.Nanosecond, false); wait != 50*sim.Nanosecond {
		t.Errorf("wait = %v, want 50ns residual", wait)
	}
	if _, wait := c.Lookup(0x100, 200*sim.Nanosecond, false); wait != 0 {
		t.Errorf("wait after arrival = %v, want 0", wait)
	}
}

func TestInsertExistingLineMergesDirty(t *testing.T) {
	c := mustCache(t, smallConfig())
	c.Insert(0x200, true, 0)
	if _, evicted := c.Insert(0x200, false, 0); evicted {
		t.Error("re-insert of resident line evicted something")
	}
	if _, dirty := c.Flush(0x200); !dirty {
		t.Error("re-insert cleared the dirty bit")
	}
}

func TestInvalidateAllReturnsDirtyLines(t *testing.T) {
	c := mustCache(t, smallConfig())
	c.Insert(0x0, true, 0)
	c.Insert(0x40, false, 0)
	c.Insert(0x80, true, 0)
	dirty := c.InvalidateAll()
	if len(dirty) != 2 {
		t.Fatalf("InvalidateAll returned %d dirty lines, want 2", len(dirty))
	}
	if hit, _ := c.Lookup(0x40, 0, false); hit {
		t.Error("line survived InvalidateAll")
	}
}

func TestContainsDoesNotPerturbState(t *testing.T) {
	c := mustCache(t, smallConfig())
	c.Insert(0x40, false, 0)
	before := c.Stats()
	if !c.Contains(0x40) || c.Contains(0x9000) {
		t.Error("Contains gave wrong answers")
	}
	if c.Stats() != before {
		t.Error("Contains modified statistics")
	}
}

// TestCapacityProperty: inserting N distinct lines never leaves more than
// capacity lines resident, and a working set within capacity always hits
// after warm-up (fully associative behaviour is not required — only that a
// set-sized working set within one set survives).
func TestCapacityProperty(t *testing.T) {
	prop := func(seed uint32) bool {
		cfg := smallConfig()
		c, err := New(cfg)
		if err != nil {
			return false
		}
		// Working set: exactly the 4 ways of set 0.
		numSets := cfg.SizeBytes / cfg.LineSize / cfg.Ways
		stride := uintptr(numSets * cfg.LineSize)
		addrs := []uintptr{0, stride, 2 * stride, 3 * stride}
		for _, a := range addrs {
			c.Insert(a, false, 0)
		}
		// Any access order drawn from the working set must always hit.
		x := seed
		for i := 0; i < 256; i++ {
			x = x*1664525 + 1013904223
			a := addrs[x%4]
			if hit, _ := c.Lookup(a, 0, false); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetcherDetectsAscendingStream(t *testing.T) {
	p := NewPrefetcher(4)
	var proposed []uintptr
	for l := uintptr(100); l < 110; l++ {
		proposed = append(proposed, p.Observe(l)...)
	}
	if len(proposed) == 0 {
		t.Fatal("ascending stream produced no prefetches")
	}
	seen := map[uintptr]bool{}
	for _, l := range proposed {
		if seen[l] {
			t.Errorf("line %d proposed twice", l)
		}
		seen[l] = true
		if l <= 101 {
			t.Errorf("prefetched line %d is behind the stream", l)
		}
	}
}

func TestPrefetcherDetectsDescendingStream(t *testing.T) {
	p := NewPrefetcher(4)
	var proposed []uintptr
	for l := uintptr(200); l > 190; l-- {
		proposed = append(proposed, p.Observe(l)...)
	}
	if len(proposed) == 0 {
		t.Fatal("descending stream produced no prefetches")
	}
	for _, l := range proposed {
		if l >= 200 {
			t.Errorf("descending prefetch %d not below stream head", l)
		}
	}
}

func TestPrefetcherIgnoresRandomAccesses(t *testing.T) {
	p := NewPrefetcher(4)
	x := uint32(12345)
	var proposed int
	for i := 0; i < 1000; i++ {
		x = x*1664525 + 1013904223
		proposed += len(p.Observe(uintptr(x) * 7919))
	}
	if proposed > 20 {
		t.Errorf("random access pattern triggered %d prefetches, want ~0", proposed)
	}
}

func TestPrefetcherDisabled(t *testing.T) {
	p := NewPrefetcher(0)
	for l := uintptr(0); l < 100; l++ {
		if got := p.Observe(l); len(got) != 0 {
			t.Fatal("disabled prefetcher proposed lines")
		}
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	p := NewPrefetcher(2)
	var a, b int
	for i := uintptr(0); i < 20; i++ {
		a += len(p.Observe(1000 + i))
		b += len(p.Observe(5000 + i))
	}
	if a == 0 || b == 0 {
		t.Errorf("interleaved streams prefetched (%d, %d) lines; both must be detected", a, b)
	}
}
