package cache

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

func benchCache(b *testing.B) *Cache {
	b.Helper()
	c, err := New(Config{Name: "bench", SizeBytes: 32 << 10, Ways: 8, LineSize: 64, LookupLat: sim.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkCacheLookupHit measures the repeat-hit walk — the single hottest
// loop in the simulator (the MRU probe's best case).
func BenchmarkCacheLookupHit(b *testing.B) {
	c := benchCache(b)
	for a := uintptr(0); a < 64; a++ {
		c.Insert(a*64, false, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uintptr(i%64)*64, 0, false)
	}
}

// BenchmarkCacheLookupMiss measures the full-set scan on a guaranteed miss.
func BenchmarkCacheLookupMiss(b *testing.B) {
	c := benchCache(b)
	for a := uintptr(0); a < 512; a++ {
		c.Insert(a*64, false, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uintptr(1<<30)+uintptr(i)*64, 0, false)
	}
}

// BenchmarkCacheTouchLast measures the last-line fast path.
func BenchmarkCacheTouchLast(b *testing.B) {
	c := benchCache(b)
	c.Insert(0x1000, false, 0)
	c.Lookup(0x1000, 0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TouchLast(0x1000, 0, false)
	}
}

// BenchmarkCacheInsertEvict measures steady-state insert with eviction (the
// streaming-workload fill path).
func BenchmarkCacheInsertEvict(b *testing.B) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uintptr(i)*64, false, 0)
	}
}

// BenchmarkPrefetcherObserveRandom measures the stream-table scan under a
// pattern with no streams — the allocation path a pointer chase takes on
// every load.
func BenchmarkPrefetcherObserveRandom(b *testing.B) {
	p := NewPrefetcher(4)
	x := uint32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*1664525 + 1013904223
		p.Observe(uintptr(x) * 7919)
	}
}
