package cache

// Prefetcher is a per-core stream prefetcher: it watches the line-address
// sequence of demand accesses, detects ascending or descending unit-stride
// streams, and proposes lines to fetch ahead of the demand stream.
//
// Prefetch effectiveness is latency-dependent by construction: proposed
// lines are inserted with a future arrival time, so a demand access that
// catches up with the prefetcher before the fill lands still pays the
// residual latency. This is what makes streaming workloads (STREAM,
// PageRank's edge arrays) insensitive to moderate latency increases but
// increasingly exposed as emulated NVM latency grows — the non-linearity in
// the paper's Figure 16.
type Prefetcher struct {
	streams []stream
	depth   int
	clk     uint64
}

type stream struct {
	lastLine   uintptr
	dir        int // +1 ascending, -1 descending
	confidence int
	lastPF     uintptr // furthest line already proposed
	lastUse    uint64
	valid      bool
}

// prefetchConfidence is how many consecutive unit-stride hits arm a stream.
const prefetchConfidence = 2

// maxStreams bounds concurrently tracked streams, like hardware trackers.
const maxStreams = 16

// NewPrefetcher builds a stream prefetcher that runs depth lines ahead of a
// detected stream. A depth of zero disables prefetching.
func NewPrefetcher(depth int) *Prefetcher {
	return &Prefetcher{depth: depth, streams: make([]stream, maxStreams)}
}

// Depth reports the configured prefetch distance in lines.
func (p *Prefetcher) Depth() int { return p.depth }

// Observe records a demand access to the given line address and returns the
// line addresses that should be prefetched (possibly none).
func (p *Prefetcher) Observe(lineAddr uintptr) []uintptr {
	if p.depth <= 0 {
		return nil
	}
	p.clk++
	// Find a stream this access continues.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		var next uintptr
		if s.dir > 0 {
			next = s.lastLine + 1
		} else {
			next = s.lastLine - 1
		}
		if lineAddr == next {
			s.lastLine = lineAddr
			s.lastUse = p.clk
			if s.confidence < prefetchConfidence {
				s.confidence++
			}
			if s.confidence >= prefetchConfidence {
				return p.propose(s, lineAddr)
			}
			return nil
		}
		if lineAddr == s.lastLine { // repeated access; refresh recency
			s.lastUse = p.clk
			return nil
		}
	}
	// Try to pair with an existing embryonic stream head (stride ±1 from a
	// tracked line in either direction establishes direction).
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid || s.confidence >= prefetchConfidence {
			continue
		}
		switch lineAddr {
		case s.lastLine + 1:
			s.dir, s.lastLine, s.confidence, s.lastUse = +1, lineAddr, prefetchConfidence, p.clk
			return p.propose(s, lineAddr)
		case s.lastLine - 1:
			s.dir, s.lastLine, s.confidence, s.lastUse = -1, lineAddr, prefetchConfidence, p.clk
			return p.propose(s, lineAddr)
		}
	}
	// Allocate a new stream over the least recently used slot.
	victim := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lastUse < p.streams[victim].lastUse {
			victim = i
		}
	}
	p.streams[victim] = stream{lastLine: lineAddr, dir: +1, confidence: 1, lastUse: p.clk, valid: true}
	return nil
}

// propose returns the lines between the stream's prefetch frontier and
// lineAddr+depth (in stream direction), advancing the frontier.
func (p *Prefetcher) propose(s *stream, lineAddr uintptr) []uintptr {
	var out []uintptr
	if s.dir > 0 {
		target := lineAddr + uintptr(p.depth)
		start := lineAddr + 1
		if s.lastPF >= start && s.lastPF <= target {
			start = s.lastPF + 1
		}
		for l := start; l <= target; l++ {
			out = append(out, l)
		}
		if target > s.lastPF {
			s.lastPF = target
		}
	} else {
		if lineAddr < uintptr(p.depth) {
			return nil
		}
		target := lineAddr - uintptr(p.depth)
		start := lineAddr - 1
		if s.lastPF != 0 && s.lastPF <= start && s.lastPF >= target {
			start = s.lastPF - 1
		}
		for l := start; l >= target; l-- {
			out = append(out, l)
			if l == 0 {
				break
			}
		}
		if s.lastPF == 0 || target < s.lastPF {
			s.lastPF = target
		}
	}
	return out
}
