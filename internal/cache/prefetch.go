package cache

// Prefetcher is a per-core stream prefetcher: it watches the line-address
// sequence of demand accesses, detects ascending or descending unit-stride
// streams, and proposes lines to fetch ahead of the demand stream.
//
// Prefetch effectiveness is latency-dependent by construction: proposed
// lines are inserted with a future arrival time, so a demand access that
// catches up with the prefetcher before the fill lands still pays the
// residual latency. This is what makes streaming workloads (STREAM,
// PageRank's edge arrays) insensitive to moderate latency increases but
// increasingly exposed as emulated NVM latency grows — the non-linearity in
// the paper's Figure 16.
//
// The table is laid out for Observe's hot path. Stream state lives in
// parallel fixed-size arrays (the scan reads compact per-field vectors
// instead of 48-byte records), and recency is an intrusive doubly-linked
// list over the slots instead of per-stream timestamps: every stream touch
// moves its slot to the MRU end, so the LRU victim is the list head in O(1)
// rather than a min-scan. Touch order is exactly increasing last-use time
// (one stream is touched per Observe), so the head is always the stream the
// reference timestamp min-scan would have picked. Invalid slots fill in
// index order — allocation only ever appends — so "first invalid way" is
// simply the next unused index.
type Prefetcher struct {
	depth int

	lastLine   [maxStreams]uintptr
	lastPF     [maxStreams]uintptr // furthest line already proposed
	dir        [maxStreams]int8    // +1 ascending, -1 descending
	confidence [maxStreams]int8

	// Recency list over the first nValid slots; head is LRU, tail is MRU.
	prev, next       [maxStreams]int8
	lruHead, lruTail int8
	nValid           int8

	// scratch backs the slice Observe returns, sized to depth once at
	// construction so proposing lines never allocates on the access path.
	scratch []uintptr
}

// prefetchConfidence is how many consecutive unit-stride hits arm a stream.
const prefetchConfidence = 2

// maxStreams bounds concurrently tracked streams, like hardware trackers.
const maxStreams = 16

// NewPrefetcher builds a stream prefetcher that runs depth lines ahead of a
// detected stream. A depth of zero disables prefetching.
func NewPrefetcher(depth int) *Prefetcher {
	p := &Prefetcher{depth: depth, lruHead: -1, lruTail: -1}
	if depth > 0 {
		p.scratch = make([]uintptr, 0, depth)
	}
	return p
}

// Depth reports the configured prefetch distance in lines.
func (p *Prefetcher) Depth() int { return p.depth }

// touch moves an in-list stream slot to the MRU end of the recency list.
func (p *Prefetcher) touch(i int) {
	if int8(i) == p.lruTail {
		return
	}
	pr, nx := p.prev[i], p.next[i]
	if pr >= 0 {
		p.next[pr] = nx
	} else {
		p.lruHead = nx
	}
	p.prev[nx] = pr // i is not the tail, so nx >= 0
	p.prev[i] = p.lruTail
	p.next[i] = -1
	p.next[p.lruTail] = int8(i)
	p.lruTail = int8(i)
}

// enlist appends a not-yet-listed slot at the MRU end.
func (p *Prefetcher) enlist(i int) {
	p.prev[i] = p.lruTail
	p.next[i] = -1
	if p.lruTail >= 0 {
		p.next[p.lruTail] = int8(i)
	} else {
		p.lruHead = int8(i)
	}
	p.lruTail = int8(i)
}

// Observe records a demand access to the given line address and returns the
// line addresses that should be prefetched (possibly none). The returned
// slice aliases an internal scratch buffer and is valid only until the next
// Observe call — the core consumes it immediately, keeping the access path
// allocation-free.
//
// The reference logic is three sequential scans over the stream table:
// continuations (and repeats) first, then embryonic-stream pairing, then
// victim allocation (first invalid slot, else LRU). One merged pass
// collects the first continuation match (stopping there — nothing later in
// the table can matter) and the first pairing match; the victim needs no
// scan at all (see the recency list above). Stream-state evolution is
// identical to the reference at a fraction of the table traffic, which
// matters because random access patterns (pointer chases) take the
// allocation path on every single load.
func (p *Prefetcher) Observe(lineAddr uintptr) []uintptr {
	if p.depth <= 0 {
		return nil
	}
	cont := -1 // first stream this access continues (or repeats)
	pair := -1 // first embryonic stream this access pairs with
	var pairDir int8
	n := int(p.nValid)
	for i := 0; i < n; i++ {
		last := p.lastLine[i]
		if lineAddr == last+uintptr(int(p.dir[i])) || lineAddr == last {
			cont = i
			break
		}
		if pair == -1 && p.confidence[i] < prefetchConfidence {
			switch lineAddr {
			case last + 1:
				pair, pairDir = i, +1
			case last - 1:
				pair, pairDir = i, -1
			}
		}
	}
	switch {
	case cont != -1:
		p.touch(cont)
		if lineAddr == p.lastLine[cont] { // repeated access; refresh recency
			return nil
		}
		p.lastLine[cont] = lineAddr
		if p.confidence[cont] < prefetchConfidence {
			p.confidence[cont]++
		}
		if p.confidence[cont] >= prefetchConfidence {
			return p.propose(cont, lineAddr)
		}
		return nil
	case pair != -1:
		p.touch(pair)
		p.dir[pair] = pairDir
		p.lastLine[pair] = lineAddr
		p.confidence[pair] = prefetchConfidence
		return p.propose(pair, lineAddr)
	default:
		var v int
		if int(p.nValid) < maxStreams {
			v = int(p.nValid)
			p.nValid++
			p.enlist(v)
		} else {
			v = int(p.lruHead)
			p.touch(v)
		}
		p.lastLine[v] = lineAddr
		p.lastPF[v] = 0
		p.dir[v] = 1
		p.confidence[v] = 1
		return nil
	}
}

// propose returns the lines between stream i's prefetch frontier and
// lineAddr+depth (in stream direction), advancing the frontier. The result
// reuses p.scratch (at most depth lines fit between frontier and target, so
// the buffer never grows past its construction-time capacity).
func (p *Prefetcher) propose(i int, lineAddr uintptr) []uintptr {
	out := p.scratch[:0]
	if p.dir[i] > 0 {
		target := lineAddr + uintptr(p.depth)
		start := lineAddr + 1
		if pf := p.lastPF[i]; pf >= start && pf <= target {
			start = pf + 1
		}
		for l := start; l <= target; l++ {
			out = append(out, l)
		}
		if target > p.lastPF[i] {
			p.lastPF[i] = target
		}
	} else {
		if lineAddr < uintptr(p.depth) {
			return nil
		}
		target := lineAddr - uintptr(p.depth)
		start := lineAddr - 1
		if pf := p.lastPF[i]; pf != 0 && pf <= start && pf >= target {
			start = pf - 1
		}
		for l := start; l >= target; l-- {
			out = append(out, l)
			if l == 0 {
				break
			}
		}
		if p.lastPF[i] == 0 || target < p.lastPF[i] {
			p.lastPF[i] = target
		}
	}
	return out
}
