package cache

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

// refCache is the pre-optimization reference model: an array of per-line
// records walked linearly, with no MRU hint, no tag+1 encoding and no
// last-hit fast path. The optimized Cache must be observably
// indistinguishable from it — same hit/miss outcomes, waits, victims and
// statistics on any operation sequence — which is the determinism gate for
// the hot-path layout work.
type refCache struct {
	cfg     Config
	lines   []refLine
	numSets int
	useClk  uint64
	stats   Stats
}

type refLine struct {
	valid   bool
	tag     uintptr
	dirty   bool
	lastUse uint64
	arrival sim.Time
}

func newRefCache(cfg Config) *refCache {
	lines := cfg.SizeBytes / cfg.LineSize
	return &refCache{cfg: cfg, lines: make([]refLine, lines), numSets: lines / cfg.Ways}
}

func (c *refCache) set(addr uintptr) []refLine {
	tag := addr / uintptr(c.cfg.LineSize)
	base := int(tag%uintptr(c.numSets)) * c.cfg.Ways
	return c.lines[base : base+c.cfg.Ways]
}

func (c *refCache) Lookup(addr uintptr, now sim.Time, markDirty bool) (bool, sim.Time) {
	tag := addr / uintptr(c.cfg.LineSize)
	for i := range c.set(addr) {
		ln := &c.set(addr)[i]
		if ln.valid && ln.tag == tag {
			c.useClk++
			ln.lastUse = c.useClk
			if markDirty {
				ln.dirty = true
			}
			c.stats.Hits++
			if ln.arrival > now {
				return true, ln.arrival - now
			}
			return true, 0
		}
	}
	c.stats.Misses++
	return false, 0
}

func (c *refCache) Insert(addr uintptr, dirty bool, arrival sim.Time) (Eviction, bool) {
	tag := addr / uintptr(c.cfg.LineSize)
	set := c.set(addr)
	victim := -1
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			c.useClk++
			ln.lastUse = c.useClk
			ln.dirty = ln.dirty || dirty
			if arrival < ln.arrival {
				ln.arrival = arrival
			}
			return Eviction{}, false
		}
		if victim == -1 && !ln.valid {
			victim = i
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
	}
	var ev Eviction
	var evicted bool
	if set[victim].valid {
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.DirtyEvictions++
		}
		ev = Eviction{Addr: set[victim].tag * uintptr(c.cfg.LineSize), Dirty: set[victim].dirty}
		evicted = true
	}
	c.useClk++
	set[victim] = refLine{valid: true, tag: tag, dirty: dirty, lastUse: c.useClk, arrival: arrival}
	return ev, evicted
}

func (c *refCache) Flush(addr uintptr) (present, dirty bool) {
	tag := addr / uintptr(c.cfg.LineSize)
	for i := range c.set(addr) {
		ln := &c.set(addr)[i]
		if ln.valid && ln.tag == tag {
			c.stats.Flushes++
			present, dirty = true, ln.dirty
			*ln = refLine{}
			return present, dirty
		}
	}
	return false, false
}

// TestOptimizedMatchesReferenceTrace drives the optimized cache and the
// reference model with identical pseudo-random operation traces (the mix a
// core generates: mostly lookups with insert-on-miss, occasional store hits,
// prefetch-style future arrivals and flushes) and requires every per-op
// result and the final statistics to agree exactly.
func TestOptimizedMatchesReferenceTrace(t *testing.T) {
	for _, cfg := range []Config{
		smallConfig(),
		{Name: "np2-sets", SizeBytes: 4096 * 3 / 2, Ways: 4, LineSize: 64, LookupLat: sim.Nanosecond},
		{Name: "np2-line", SizeBytes: 48 * 96, Ways: 4, LineSize: 48, LookupLat: sim.Nanosecond},
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			opt := mustCache(t, cfg)
			ref := newRefCache(cfg)
			x := uint64(0x9e3779b97f4a7c15)
			rnd := func(n uint64) uint64 {
				x = x*6364136223846793005 + 1442695040888963407
				return (x >> 33) % n
			}
			for op := 0; op < 50_000; op++ {
				// Small address pool so sets conflict and evict heavily.
				addr := uintptr(rnd(256)) * uintptr(cfg.LineSize) / 2
				now := sim.Time(rnd(1000)) * sim.Nanosecond
				switch rnd(10) {
				case 0: // flush
					p1, d1 := opt.Flush(addr)
					p2, d2 := ref.Flush(addr)
					if p1 != p2 || d1 != d2 {
						t.Fatalf("op %d: Flush(%#x) = (%v,%v), ref (%v,%v)", op, addr, p1, d1, p2, d2)
					}
				case 1: // prefetch-style insert with future arrival
					e1, v1 := opt.Insert(addr, false, now+100*sim.Nanosecond)
					e2, v2 := ref.Insert(addr, false, now+100*sim.Nanosecond)
					if e1 != e2 || v1 != v2 {
						t.Fatalf("op %d: Insert(%#x) = (%+v,%v), ref (%+v,%v)", op, addr, e1, v1, e2, v2)
					}
				default: // demand access, insert on miss
					markDirty := rnd(4) == 0
					h1, w1 := opt.Lookup(addr, now, markDirty)
					h2, w2 := ref.Lookup(addr, now, markDirty)
					if h1 != h2 || w1 != w2 {
						t.Fatalf("op %d: Lookup(%#x) = (%v,%v), ref (%v,%v)", op, addr, h1, w1, h2, w2)
					}
					if !h1 {
						e1, v1 := opt.Insert(addr, markDirty, now)
						e2, v2 := ref.Insert(addr, markDirty, now)
						if e1 != e2 || v1 != v2 {
							t.Fatalf("op %d: fill Insert(%#x) = (%+v,%v), ref (%+v,%v)", op, addr, e1, v1, e2, v2)
						}
					}
				}
			}
			if opt.Stats() != ref.stats {
				t.Errorf("final stats diverged: opt %+v, ref %+v", opt.Stats(), ref.stats)
			}
		})
	}
}

// TestTouchLastEquivalentToLookup drives two optimized caches with the same
// trace; one takes the TouchLast fast path whenever it applies (falling back
// to Lookup as the CPU layer does), the other always walks. Outcomes and
// statistics must be identical — TouchLast is bookkeeping-equivalent to a
// Lookup hit and side-effect-free on failure.
func TestTouchLastEquivalentToLookup(t *testing.T) {
	cfg := smallConfig()
	fast := mustCache(t, cfg)
	walk := mustCache(t, cfg)
	x := uint64(42)
	rnd := func(n uint64) uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33) % n
	}
	for op := 0; op < 50_000; op++ {
		// Heavy same-line repetition so TouchLast actually exercises.
		addr := uintptr(rnd(32)) * 8
		if rnd(8) == 0 {
			addr += uintptr(rnd(64)) * uintptr(cfg.LineSize)
		}
		now := sim.Time(op) * sim.Nanosecond
		markDirty := rnd(4) == 0

		hw, ww := walk.Lookup(addr, now, markDirty)
		var hf bool
		var wf sim.Time
		if wait, ok := fast.TouchLast(addr, now, markDirty); ok {
			hf, wf = true, wait
		} else {
			hf, wf = fast.Lookup(addr, now, markDirty)
		}
		if hf != hw || wf != ww {
			t.Fatalf("op %d: fast (%v,%v) vs walk (%v,%v) at %#x", op, hf, wf, hw, ww, addr)
		}
		if !hw {
			fast.Insert(addr, markDirty, now)
			walk.Insert(addr, markDirty, now)
		}
	}
	if fast.Stats() != walk.Stats() {
		t.Errorf("stats diverged: fast %+v, walk %+v", fast.Stats(), walk.Stats())
	}
}
