package bench

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// StoreLatConfig parameterizes the streaming-store kernel used by the
// asymmetric-model validation sweeps (fig12-asym): one pass of posted stores
// over a cold buffer, so every line is write-allocated from memory exactly
// once and the store-miss count equals the line count.
type StoreLatConfig struct {
	// Lines is the number of cache-line-sized elements stored to.
	Lines int
	// Node is the NUMA node the buffer is allocated on.
	Node int
}

// Validate reports configuration errors.
func (c StoreLatConfig) Validate() error {
	if c.Lines <= 0 {
		return fmt.Errorf("bench: StoreLat needs positive lines (got %d)", c.Lines)
	}
	return nil
}

// StoreLatResult is one run's measurement.
type StoreLatResult struct {
	// CT is the completion time of the store pass (trailing epoch delay
	// flushed by the caller via Env.CloseEpoch before timestamping).
	CT sim.Time
	// Stores is the number of stores issued (== expected store misses: the
	// buffer is cold and every store touches a fresh line).
	Stores int64
}

// StoreLat is a built instance of the kernel.
type StoreLat struct {
	cfg  StoreLatConfig
	base uintptr
}

// BuildStoreLat allocates the store buffer inside p's address space.
func BuildStoreLat(p *simos.Process, cfg StoreLatConfig) (*StoreLat, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base, err := p.MallocOnNode(uintptr(cfg.Lines)*64, cfg.Node)
	if err != nil {
		return nil, fmt.Errorf("bench: StoreLat buffer: %w", err)
	}
	return &StoreLat{cfg: cfg, base: base}, nil
}

// Run streams one store per line from thread t. Stores are posted — the
// pipeline pays only the L1 latency — so the baseline completion time is
// nearly flat; under the asymmetric store model the per-epoch write-stall
// injection stretches CT by storeMisses x (NVM_write - DRAM), which is what
// the fig12-asym sweep extracts.
func (b *StoreLat) Run(t *simos.Thread) StoreLatResult {
	start := t.Now()
	t.StoreRun(b.base, 64, b.cfg.Lines)
	return StoreLatResult{
		CT:     t.Now() - start,
		Stores: int64(b.cfg.Lines),
	}
}

// StoreBWConfig parameterizes the multi-writer persistent-store kernel of
// the write-bandwidth-collapse sweep (fig11-asym): Writers threads, each
// streaming store+clflushopt batches over a private buffer and fencing per
// batch — the standard persistent-memory write idiom. Batching keeps several
// writebacks outstanding per writer, so the kernel saturates (and its
// aggregate throughput tracks) the possibly collapsing write throttle
// instead of serializing on per-line flush stalls.
type StoreBWConfig struct {
	// Writers is the number of concurrent writer threads.
	Writers int
	// Lines is the number of cache lines each writer stores and flushes.
	Lines int
	// Batch is the number of clflushopt writebacks kept in flight between
	// fences (0 defaults to 8).
	Batch int
	// Node is where the buffers are allocated.
	Node int
}

// Validate reports configuration errors.
func (c StoreBWConfig) Validate() error {
	if c.Writers <= 0 || c.Lines <= 0 {
		return fmt.Errorf("bench: StoreBW needs positive writers/lines (got %d/%d)", c.Writers, c.Lines)
	}
	if c.Batch < 0 {
		return fmt.Errorf("bench: StoreBW batch %d negative", c.Batch)
	}
	return nil
}

// StoreBWResult is one run's measurement.
type StoreBWResult struct {
	// CT is the wall completion time from the post-rendezvous start to the
	// last writer's finish.
	CT sim.Time
	// Bytes is the total application payload written (lines x 64 B across
	// all writers; the device may move more per line under a configured
	// access granularity).
	Bytes int64
}

// AggBytesPerSec reports the kernel's aggregate application-visible write
// throughput.
func (r StoreBWResult) AggBytesPerSec() float64 {
	if r.CT <= 0 {
		return 0
	}
	return float64(r.Bytes) / (float64(r.CT) / float64(sim.Second))
}

// RunStoreBW builds the per-writer buffers, spawns the writers from the
// given main thread, and reports the completion time and bytes written. It
// must be called from inside an Env.Run body so thread creation flows
// through the (possibly interposed) process table — under the emulator,
// each writer registration reprograms the write throttle when a
// write-bandwidth collapse curve is configured.
func RunStoreBW(env *Env, main *simos.Thread, cfg StoreBWConfig) (StoreBWResult, error) {
	if err := cfg.Validate(); err != nil {
		return StoreBWResult{}, err
	}
	bases := make([]uintptr, cfg.Writers)
	for i := range bases {
		base, err := env.Proc.MallocOnNode(uintptr(cfg.Lines)*64, cfg.Node)
		if err != nil {
			return StoreBWResult{}, fmt.Errorf("bench: StoreBW buffer %d: %w", i, err)
		}
		bases[i] = base
	}

	// Start rendezvous, as in RunMultiThreaded: the measured window opens
	// after every writer has registered, keeping registration costs (and the
	// per-registration throttle reprogramming) out of the completion time.
	startMu := env.Proc.NewMutex("sbw-start-mu")
	arrivedCv := env.Proc.NewCond("sbw-arrived-cv")
	goCv := env.Proc.NewCond("sbw-go-cv")
	arrived := 0
	started := false

	threads := make([]*simos.Thread, 0, cfg.Writers)
	for i := range bases {
		base := bases[i]
		th, err := main.CreateThread(fmt.Sprintf("sbw-%d", i), func(t *simos.Thread) {
			startMu.Lock(t)
			arrived++
			arrivedCv.Signal(t)
			for !started {
				goCv.Wait(t, startMu)
			}
			startMu.Unlock(t)
			batch := cfg.Batch
			if batch <= 0 {
				batch = 8
			}
			for l := 0; l < cfg.Lines; {
				var fence sim.Time
				for b := 0; b < batch && l < cfg.Lines; b, l = b+1, l+1 {
					addr := base + uintptr(l)*64
					t.Store(addr)
					if done := t.FlushOpt(addr); done > fence {
						fence = done
					}
				}
				t.Fence(fence) // sfence: drain the batch's writebacks
			}
		})
		if err != nil {
			return StoreBWResult{}, fmt.Errorf("bench: spawning StoreBW writer %d: %w", i, err)
		}
		threads = append(threads, th)
	}
	startMu.Lock(main)
	for arrived < cfg.Writers {
		arrivedCv.Wait(main, startMu)
	}
	env.CloseEpoch(main)
	start := main.Now()
	started = true
	goCv.Broadcast(main)
	startMu.Unlock(main)
	var end sim.Time
	for _, th := range threads {
		main.Join(th)
		if th.Now() > end {
			end = th.Now()
		}
	}
	if after := main.Now(); after > end {
		end = after
	}
	return StoreBWResult{
		CT:    end - start,
		Bytes: int64(cfg.Writers) * int64(cfg.Lines) * 64,
	}, nil
}
