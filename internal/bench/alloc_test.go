package bench

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// TestEmulatedHotPathNoAllocs is the allocation gate for the emulator's
// steady-state hot paths, measured end to end inside a live emulated
// environment: a closed epoch (counter read, Eq. 2/3 delay, amortization,
// rdtscp spin injection) and the batched access runs must not produce
// garbage once the simulation has reached steady state. Setup paths (Attach,
// thread registration, first epochs growing kernel structures) may allocate;
// the steady state may not — that is what keeps long emulations flat.
func TestEmulatedHotPathNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2450, Mode: Emulated, Quartz: quickQuartz(400)})
	if err != nil {
		t.Fatal(err)
	}
	const lines = 1 << 12
	base, err := env.Proc.MallocOnNode(lines*64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(func(e *Env, th *simos.Thread) {
		// Warm up: fault in kernel/scheduler capacity, arm prefetch streams,
		// accrue counter state, close a few epochs.
		for i := 0; i < 8; i++ {
			th.LoadRun(base, 64, lines)
			th.StoreRun(base, 64, lines)
			e.CloseEpoch(th)
		}

		if allocs := testing.AllocsPerRun(20, func() {
			th.LoadRun(base, 64, lines)
		}); allocs != 0 {
			t.Errorf("steady-state LoadRun: %v allocs/op, want 0", allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			th.StoreRun(base, 64, lines)
		}); allocs != 0 {
			t.Errorf("steady-state StoreRun: %v allocs/op, want 0", allocs)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			th.LoadRun(base, 64, 512) // accrue stall cycles so the close injects
			e.CloseEpoch(th)
		}); allocs != 0 {
			t.Errorf("steady-state epoch close: %v allocs/op, want 0", allocs)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAsymStorePathNoAllocs extends the allocation gate to the asymmetric
// store model: with NVMWriteLatency set, every epoch close additionally
// reads the store counters, evaluates the write-stall term, and records the
// split delay — and the steady state must still produce zero garbage, both
// for the store+flush stream and for the close itself. This is what `make
// bench-alloc` holds the store-stall path to.
func TestAsymStorePathNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	q := quickQuartz(400)
	q.NVMWriteLatency = sim.FromNanos(700) // above DRAM, so the term injects
	env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2450, Mode: Emulated, Quartz: q})
	if err != nil {
		t.Fatal(err)
	}
	const lines = 1 << 12
	base, err := env.Proc.MallocOnNode(lines*64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(func(e *Env, th *simos.Thread) {
		for i := 0; i < 8; i++ {
			th.StoreRun(base, 64, lines)
			e.CloseEpoch(th)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			th.StoreRun(base, 64, lines)
		}); allocs != 0 {
			t.Errorf("steady-state StoreRun under the store model: %v allocs/op, want 0", allocs)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			th.StoreRun(base, 64, 512) // accrue store misses so the close injects Δw
			e.CloseEpoch(th)
		}); allocs != 0 {
			t.Errorf("steady-state asymmetric epoch close: %v allocs/op, want 0", allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			addr := base
			var fence sim.Time
			for i := 0; i < 64; i++ {
				th.Store(addr)
				if done := th.FlushOpt(addr); done > fence {
					fence = done
				}
				addr += 64
			}
			th.Fence(fence)
		}); allocs != 0 {
			t.Errorf("steady-state store+flushopt+fence batch: %v allocs/op, want 0", allocs)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEmulatedEpochClose measures one load batch plus an explicit epoch
// close under emulation — the per-epoch cost Quartz's lightweight claim
// rests on. Reported allocs/op must be 0 (TestEmulatedHotPathNoAllocs is
// the hard gate).
func BenchmarkEmulatedEpochClose(b *testing.B) {
	env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2450, Mode: Emulated, Quartz: quickQuartz(400)})
	if err != nil {
		b.Fatal(err)
	}
	const lines = 1 << 12
	base, err := env.Proc.MallocOnNode(lines*64, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := env.Run(func(e *Env, th *simos.Thread) {
		th.LoadRun(base, 64, lines)
		e.CloseEpoch(th)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.LoadRun(base, 64, 512)
			e.CloseEpoch(th)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEmulatedLoadRun measures the batched strided-load path under
// emulation, per line.
func BenchmarkEmulatedLoadRun(b *testing.B) {
	env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2450, Mode: Emulated, Quartz: quickQuartz(400)})
	if err != nil {
		b.Fatal(err)
	}
	const lines = 1 << 12
	base, err := env.Proc.MallocOnNode(lines*64, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := env.Run(func(e *Env, th *simos.Thread) {
		th.LoadRun(base, 64, lines)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.LoadRun(base, 64, lines)
		}
	}); err != nil {
		b.Fatal(err)
	}
}
