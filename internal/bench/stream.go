package bench

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// StreamConfig parameterizes the STREAM copy kernel (§4.2, Fig. 8): several
// threads stream through disjoint slices of a large region with wide
// (SSE-style) accesses, saturating memory bandwidth.
type StreamConfig struct {
	// Lines is the total number of cache lines copied (per array).
	Lines int
	// Threads forks that many streaming workers, as the paper's
	// calibration helper does to saturate bandwidth.
	Threads int
	// Node is where both arrays live.
	Node int
	// Batch is the number of parallel line loads issued per step
	// (the streaming-load pipeline depth).
	Batch int
}

// Validate reports configuration errors.
func (c StreamConfig) Validate() error {
	if c.Lines <= 0 || c.Threads <= 0 {
		return fmt.Errorf("bench: bad StreamConfig %+v", c)
	}
	return nil
}

// StreamResult is one run's measurement.
type StreamResult struct {
	CT sim.Time
	// BytesPerSec is the achieved copy bandwidth, counted STREAM-style as
	// bytes read plus bytes written (2 x 64 per copied line).
	BytesPerSec float64
}

// RunStream copies src to dst with Threads workers from the given main
// thread and reports achieved bandwidth.
func RunStream(env *Env, main *simos.Thread, cfg StreamConfig) (StreamResult, error) {
	if err := cfg.Validate(); err != nil {
		return StreamResult{}, err
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	src, err := env.Proc.MallocOnNode(uintptr(cfg.Lines)*64, cfg.Node)
	if err != nil {
		return StreamResult{}, fmt.Errorf("bench: stream src: %w", err)
	}
	dst, err := env.Proc.MallocOnNode(uintptr(cfg.Lines)*64, cfg.Node)
	if err != nil {
		return StreamResult{}, fmt.Errorf("bench: stream dst: %w", err)
	}

	perWorker := cfg.Lines / cfg.Threads
	start := main.Now()
	var workers []*simos.Thread
	for w := 0; w < cfg.Threads; w++ {
		lo := w * perWorker
		hi := lo + perWorker
		if w == cfg.Threads-1 {
			hi = cfg.Lines
		}
		th, err := main.CreateThread(fmt.Sprintf("stream-%d", w), func(t *simos.Thread) {
			for i := lo; i < hi; i += cfg.Batch {
				n := cfg.Batch
				if i+n > hi {
					n = hi - i
				}
				t.LoadGroupRun(src+uintptr(i)*64, 64, n)
				t.StoreRun(dst+uintptr(i)*64, 64, n)
			}
		})
		if err != nil {
			return StreamResult{}, fmt.Errorf("bench: spawning stream worker %d: %w", w, err)
		}
		workers = append(workers, th)
	}
	var end sim.Time
	for _, th := range workers {
		main.Join(th)
		if th.Now() > end {
			end = th.Now()
		}
	}
	ct := end - start
	if ct <= 0 {
		return StreamResult{}, fmt.Errorf("bench: stream finished in non-positive time %v", ct)
	}
	moved := float64(cfg.Lines) * 64 * 2
	return StreamResult{CT: ct, BytesPerSec: moved / ct.Seconds()}, nil
}
