package bench

import (
	"fmt"
	"sync"

	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// MemLatConfig parameterizes the MemLat pointer-chasing benchmark (§4.4).
type MemLatConfig struct {
	// Lines is the number of cache-line-sized elements per chain. Choose
	// it much larger than the last-level cache so every access misses.
	Lines int
	// Chains is the number of independent chains chased concurrently —
	// the configurable degree of memory access parallelism.
	Chains int
	// Iters is the number of chase iterations; each iteration reads the
	// current element of every chain.
	Iters int
	// Node is the NUMA node the chains are allocated on.
	Node int
	// Seed makes the permutation deterministic.
	Seed int64
}

// Validate reports configuration errors.
func (c MemLatConfig) Validate() error {
	if c.Lines <= 1 || c.Chains <= 0 || c.Iters <= 0 {
		return fmt.Errorf("bench: MemLat needs positive lines/chains/iters (got %d/%d/%d)", c.Lines, c.Chains, c.Iters)
	}
	return nil
}

// MemLat is a built instance of the benchmark: Chains independent pointer
// cycles, each a random permutation over Lines cache lines. The contents of
// each element dictate which one is read next, so a chain is strictly
// latency-bound; different chains are independent, so a group of them
// exercises memory-level parallelism.
type MemLat struct {
	cfg   MemLatConfig
	next  [][]int32
	bases []uintptr
	batch []uintptr
	cur   []int32
}

// MemLatResult is one run's measurement.
type MemLatResult struct {
	// CT is the completion time of the chase loop.
	CT sim.Time
	// PerIteration is CT divided by iterations: with one chain this is the
	// measured memory access latency (the Intel MLC-style measurement the
	// paper exploits in Fig. 12).
	PerIteration sim.Time
	// Accesses is the total number of loads issued.
	Accesses int64
}

// BuildMemLat allocates and links the chains inside p's address space.
func BuildMemLat(p *simos.Process, cfg MemLatConfig) (*MemLat, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &MemLat{
		cfg:   cfg,
		next:  make([][]int32, cfg.Chains),
		bases: make([]uintptr, cfg.Chains),
		batch: make([]uintptr, cfg.Chains),
		cur:   make([]int32, cfg.Chains),
	}
	for c := 0; c < cfg.Chains; c++ {
		base, err := p.MallocOnNode(uintptr(cfg.Lines)*64, cfg.Node)
		if err != nil {
			return nil, fmt.Errorf("bench: MemLat chain %d: %w", c, err)
		}
		b.bases[c] = base
		b.next[c] = permutationCycle(cfg.Lines, cfg.Seed+int64(c)*7919)
	}
	return b, nil
}

// Run chases the chains for the configured iterations from thread t.
func (b *MemLat) Run(t *simos.Thread) MemLatResult {
	for c := range b.cur {
		b.cur[c] = 0
	}
	start := t.Now()
	if b.cfg.Chains == 1 {
		next, base := b.next[0], b.bases[0]
		cur := int32(0)
		for i := 0; i < b.cfg.Iters; i++ {
			t.Load(base + uintptr(cur)*64)
			cur = next[cur]
		}
	} else {
		for i := 0; i < b.cfg.Iters; i++ {
			for c := 0; c < b.cfg.Chains; c++ {
				b.batch[c] = b.bases[c] + uintptr(b.cur[c])*64
			}
			t.LoadGroup(b.batch)
			for c := 0; c < b.cfg.Chains; c++ {
				b.cur[c] = b.next[c][b.cur[c]]
			}
		}
	}
	ct := t.Now() - start
	return MemLatResult{
		CT:           ct,
		PerIteration: ct / sim.Time(b.cfg.Iters),
		Accesses:     int64(b.cfg.Iters) * int64(b.cfg.Chains),
	}
}

// permCache memoizes permutationCycle results. Workload construction is
// fully seeded, so the same (n, seed) chain is rebuilt for every trial and
// every sweep point of an experiment; the successor arrays are treated as
// read-only by every consumer, so trials (including parallel runner jobs)
// can share one copy. The key space is bounded by the experiment configs.
var permCache sync.Map // permKey -> []int32

type permKey struct {
	n    int
	seed int64
}

// permutationCycle builds a single-cycle successor array over n slots using
// a seeded splitmix-style shuffle, so a chase visits every element exactly
// once before repeating. The returned slice is shared and must not be
// mutated.
func permutationCycle(n int, seed int64) []int32 {
	key := permKey{n, seed}
	if v, ok := permCache.Load(key); ok {
		return v.([]int32)
	}
	next := buildPermutationCycle(n, seed)
	permCache.Store(key, next)
	return next
}

// buildPermutationCycle is the uncached construction.
func buildPermutationCycle(n int, seed int64) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i := n - 1; i > 0; i-- {
		x = x*6364136223846793005 + 1442695040888963407
		j := int((x >> 11) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]int32, n)
	for i := 0; i < n; i++ {
		next[perm[i]] = perm[(i+1)%n]
	}
	return next
}
