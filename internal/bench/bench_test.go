package bench

import (
	"math"
	"testing"

	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
	"github.com/quartz-emu/quartz/internal/stats"
)

// testLines overflows every preset L3 several times (64 MiB working set).
const testLines = 1 << 20

func quickQuartz(nvmNS float64) core.Config {
	return core.Config{
		NVMLatency: sim.FromNanos(nvmNS),
		MaxEpoch:   sim.Millisecond,
		MinEpoch:   20 * sim.Microsecond,
		InitCycles: 1,
	}
}

func TestMemLatMeasuresNativeLatency(t *testing.T) {
	env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2660v2, Mode: Native})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := BuildMemLat(env.Proc, MemLatConfig{Lines: testLines, Chains: 1, Iters: 50_000, Node: env.AllocNode(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var res MemLatResult
	if err := env.Run(func(e *Env, th *simos.Thread) {
		res = ml.Run(th)
	}); err != nil {
		t.Fatal(err)
	}
	local := machine.PresetConfig(machine.XeonE5_2660v2).LocalLat
	if rel := stats.RelErr(res.PerIteration.Nanoseconds(), local.Nanoseconds()); rel > 0.02 {
		t.Errorf("native MemLat latency %v, want ~%v (%.2f%% off)", res.PerIteration, local, rel*100)
	}
	if res.Accesses != 50_000 {
		t.Errorf("accesses = %d, want 50000", res.Accesses)
	}
}

func TestMemLatMeasuresPhysicalRemoteLatency(t *testing.T) {
	env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2660v2, Mode: PhysicalRemote})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := BuildMemLat(env.Proc, MemLatConfig{Lines: testLines, Chains: 1, Iters: 50_000, Node: env.AllocNode(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var res MemLatResult
	if err := env.Run(func(e *Env, th *simos.Thread) {
		res = ml.Run(th)
	}); err != nil {
		t.Fatal(err)
	}
	remote := machine.PresetConfig(machine.XeonE5_2660v2).RemoteLat
	if rel := stats.RelErr(res.PerIteration.Nanoseconds(), remote.Nanoseconds()); rel > 0.02 {
		t.Errorf("remote MemLat latency %v, want ~%v (%.2f%% off)", res.PerIteration, remote, rel*100)
	}
}

func TestMemLatChainsOverlap(t *testing.T) {
	// With 4 independent chains the per-iteration time must stay near one
	// access latency, not four (MLP).
	runChains := func(chains int) sim.Time {
		env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2660v2, Mode: Native})
		if err != nil {
			t.Fatal(err)
		}
		ml, err := BuildMemLat(env.Proc, MemLatConfig{Lines: testLines / 4, Chains: chains, Iters: 30_000, Node: 0, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var res MemLatResult
		if err := env.Run(func(e *Env, th *simos.Thread) {
			res = ml.Run(th)
		}); err != nil {
			t.Fatal(err)
		}
		return res.PerIteration
	}
	one := runChains(1)
	four := runChains(4)
	if four > one*3/2 {
		t.Errorf("4-chain per-iteration %v vs 1-chain %v: chains are not overlapping", four, one)
	}
}

// TestMemLatEmulationErrorAcrossMLP is Fig. 11 at test scale: the emulation
// error between Conf_1 (Quartz emulating remote latency) and Conf_2
// (physically remote) stays small across parallelism degrees.
func TestMemLatEmulationErrorAcrossMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config validation is slow")
	}
	const iters = 40_000
	for _, chains := range []int{1, 3, 8} {
		cfg := MemLatConfig{Lines: testLines / 2, Chains: chains, Iters: iters, Seed: 9}

		phys, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2660v2, Mode: PhysicalRemote})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Node = phys.AllocNode()
		mlP, err := BuildMemLat(phys.Proc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ctPhys sim.Time
		if err := phys.Run(func(e *Env, th *simos.Thread) {
			ctPhys = mlP.Run(th).CT
		}); err != nil {
			t.Fatal(err)
		}

		emu, err := NewEnv(EnvConfig{
			Preset: machine.XeonE5_2660v2, Mode: Emulated,
			Quartz: quickQuartz(RemoteLatNS(machine.XeonE5_2660v2)),
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Node = emu.AllocNode()
		mlE, err := BuildMemLat(emu.Proc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ctEmu sim.Time
		if err := emu.Run(func(e *Env, th *simos.Thread) {
			start := th.Now()
			mlE.Run(th)
			e.CloseEpoch(th)
			ctEmu = th.Now() - start
		}); err != nil {
			t.Fatal(err)
		}

		rel := stats.RelErr(float64(ctEmu), float64(ctPhys))
		t.Logf("chains=%d: physical %v, emulated %v, error %.2f%%", chains, ctPhys, ctEmu, rel*100)
		// The error grows with MLP because Eq. 2 scales the loaded
		// (queueing-inflated) stall time by the latency ratio — the §6
		// "loaded latency" limitation. The paper's overall band is 0.2-9%.
		if rel > 0.09 {
			t.Errorf("chains=%d: emulation error %.2f%% > 9%%", chains, rel*100)
		}
	}
}

func TestMultiThreadedDelayPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("multithreaded validation is slow")
	}
	// Fig. 13's essence: with contended critical sections, propagating
	// delays at lock release (small min epoch) tracks the physical run;
	// NOT propagating (min = max epoch) underestimates the completion
	// time, and increasingly so.
	mtCfg := MTConfig{Threads: 4, Sections: 400, CSDur: 60, OutDur: 0, Lines: testLines / 4, Seed: 3}

	run := func(mode Mode, quartz core.Config) sim.Time {
		env, err := NewEnv(EnvConfig{
			Preset: machine.XeonE5_2660v2, Mode: mode, Quartz: quartz,
			Lookahead: 2 * sim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := mtCfg
		cfg.Node = env.AllocNode()
		var res MTResult
		if err := env.Run(func(e *Env, th *simos.Thread) {
			var rerr error
			res, rerr = RunMultiThreaded(e, th, cfg)
			if rerr != nil {
				th.Failf("%v", rerr)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return res.CT
	}

	physical := run(PhysicalRemote, core.Config{})

	good := quickQuartz(RemoteLatNS(machine.XeonE5_2660v2))
	good.MinEpoch = 10 * sim.Microsecond
	withProp := run(Emulated, good)

	bad := quickQuartz(RemoteLatNS(machine.XeonE5_2660v2))
	bad.MinEpoch = 10 * sim.Millisecond
	bad.MaxEpoch = 10 * sim.Millisecond // min == max: no sync epochs (Fig. 13 light-blue line)
	noProp := run(Emulated, bad)

	errProp := stats.RelErr(float64(withProp), float64(physical))
	errNoProp := stats.RelErr(float64(noProp), float64(physical))
	t.Logf("physical %v, propagated %v (%.1f%%), unpropagated %v (%.1f%%)",
		physical, withProp, errProp*100, noProp, errNoProp*100)
	if errProp > 0.08 {
		t.Errorf("with delay propagation error %.1f%% > 8%%", errProp*100)
	}
	if errNoProp < errProp {
		t.Errorf("disabling propagation improved accuracy (%.1f%% vs %.1f%%); expected it to hurt", errNoProp*100, errProp*100)
	}
	if noProp >= physical {
		t.Errorf("unpropagated run %v should underestimate the physical %v (overlapped critical sections)", noProp, physical)
	}
}

func TestMultiLatPatternInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two-memory validation is slow")
	}
	// §4.6: completion time must match Num*lat sums regardless of the
	// access pattern.
	const nvmNS = 400
	for _, burst := range []struct{ d, n int }{{2000, 1000}, {200, 100}} {
		env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2650v3, Mode: Emulated,
			Quartz: func() core.Config {
				c := quickQuartz(nvmNS)
				c.TwoMemory = true
				return c
			}(),
		})
		if err != nil {
			t.Fatal(err)
		}
		mlCfg := MultiLatConfig{
			DRAMLines: 60_000, NVMLines: 30_000,
			DRAMBurst: burst.d, NVMBurst: burst.n, Seed: 17,
		}
		ml, err := BuildMultiLat(env.Proc, env.Emu, mlCfg)
		if err != nil {
			t.Fatal(err)
		}
		var res MultiLatResult
		if err := env.Run(func(e *Env, th *simos.Thread) {
			start := th.Now()
			r := ml.Run(th, machine.PresetConfig(machine.XeonE5_2650v3).LocalLat, sim.FromNanos(nvmNS))
			e.CloseEpoch(th)
			r.CT = th.Now() - start
			res = r
		}); err != nil {
			t.Fatal(err)
		}
		rel := stats.RelErr(float64(res.CT), float64(res.ExpectedCT))
		t.Logf("pattern %d:%d CT %v expected %v error %.2f%%", burst.d, burst.n, res.CT, res.ExpectedCT, rel*100)
		if rel > 0.05 {
			t.Errorf("pattern %d:%d error %.2f%% > 5%% (paper: <1.2%%)", burst.d, burst.n, rel*100)
		}
	}
}

func TestStreamBandwidthReasonable(t *testing.T) {
	env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2450, Mode: Native, Lookahead: 5 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var res StreamResult
	if err := env.Run(func(e *Env, th *simos.Thread) {
		var rerr error
		res, rerr = RunStream(e, th, StreamConfig{Lines: 1 << 17, Threads: 4, Node: 0})
		if rerr != nil {
			th.Failf("%v", rerr)
		}
	}); err != nil {
		t.Fatal(err)
	}
	peak := machine.PresetConfig(machine.XeonE5_2450).Mem.ChannelBandwidth * 3
	t.Logf("STREAM copy: %.1f GB/s (socket peak %.1f GB/s)", res.BytesPerSec/1e9, peak/1e9)
	if res.BytesPerSec < peak*0.3 {
		t.Errorf("copy bandwidth %.1f GB/s below 30%% of peak %.1f GB/s", res.BytesPerSec/1e9, peak/1e9)
	}
	if res.BytesPerSec > peak {
		t.Errorf("copy bandwidth %.1f GB/s exceeds the physical peak %.1f GB/s", res.BytesPerSec/1e9, peak/1e9)
	}
}

// TestStreamThrottleLinearity reproduces Fig. 8's shape at test scale:
// throttled bandwidth grows linearly in the register value, then saturates.
func TestStreamThrottleLinearity(t *testing.T) {
	if testing.Short() {
		t.Skip("throttle sweep is slow")
	}
	measure := func(reg uint16) float64 {
		env, err := NewEnv(EnvConfig{Preset: machine.XeonE5_2450, Mode: Native, Lookahead: 5 * sim.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range env.Mach.Sockets() {
			if err := s.Ctrl.SetThrottle(reg); err != nil {
				t.Fatal(err)
			}
		}
		var res StreamResult
		if err := env.Run(func(e *Env, th *simos.Thread) {
			var rerr error
			res, rerr = RunStream(e, th, StreamConfig{Lines: 1 << 16, Threads: 4, Node: 0})
			if rerr != nil {
				th.Failf("%v", rerr)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return res.BytesPerSec
	}
	b256 := measure(256)
	b512 := measure(512)
	b4095 := measure(4095)
	// Linear region: doubling the register about doubles the bandwidth.
	if ratio := b512 / b256; math.Abs(ratio-2) > 0.3 {
		t.Errorf("register 512/256 bandwidth ratio = %.2f, want ~2 (linear throttle)", ratio)
	}
	// Saturation: full register no better than the attainable maximum.
	if b4095 <= b512 {
		t.Errorf("bandwidth did not grow past the linear region: %g vs %g", b4095, b512)
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	if err := (MemLatConfig{}).Validate(); err == nil {
		t.Error("empty MemLatConfig accepted")
	}
	if err := (MTConfig{}).Validate(); err == nil {
		t.Error("empty MTConfig accepted")
	}
	if err := (MultiLatConfig{}).Validate(); err == nil {
		t.Error("empty MultiLatConfig accepted")
	}
	if err := (StreamConfig{}).Validate(); err == nil {
		t.Error("empty StreamConfig accepted")
	}
	if Native.String() == "" || Emulated.String() == "" || Mode(99).String() == "" {
		t.Error("Mode.String broken")
	}
}

func TestPermutationCycleVisitsAll(t *testing.T) {
	next := permutationCycle(1000, 77)
	seen := make([]bool, 1000)
	cur := int32(0)
	for i := 0; i < 1000; i++ {
		if seen[cur] {
			t.Fatalf("cycle revisited %d after %d steps", cur, i)
		}
		seen[cur] = true
		cur = next[cur]
	}
	if cur != 0 {
		t.Errorf("cycle did not close (ended at %d)", cur)
	}
}
