package bench

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// MultiLatConfig parameterizes the MultiLat benchmark (§4.6): a pointer
// chain spanning two arrays — one in DRAM, one in (virtual) NVM — visited
// with a repeating access pattern of DRAMBurst DRAM reads followed by
// NVMBurst NVM reads, until every element of both arrays has been read
// exactly once.
type MultiLatConfig struct {
	// DRAMLines and NVMLines are Num^DRAM and Num^NVM.
	DRAMLines, NVMLines int
	// DRAMBurst / NVMBurst define the repeating access pattern, e.g.
	// 2000:1000 (the paper's Pattern-3).
	DRAMBurst, NVMBurst int
	// Seed drives the chain permutations.
	Seed int64
}

// Validate reports configuration errors.
func (c MultiLatConfig) Validate() error {
	if c.DRAMLines <= 1 || c.NVMLines <= 1 || c.DRAMBurst <= 0 || c.NVMBurst <= 0 {
		return fmt.Errorf("bench: bad MultiLatConfig %+v", c)
	}
	return nil
}

// MultiLat is a built instance: a DRAM-resident chain (plain malloc) and an
// NVM-resident chain (pmalloc through the emulator's virtual topology).
type MultiLat struct {
	cfg      MultiLatConfig
	nextDRAM []int32
	nextNVM  []int32
	baseDRAM uintptr
	baseNVM  uintptr
}

// MultiLatResult is one run's measurement.
type MultiLatResult struct {
	CT sim.Time
	// ExpectedCT is Num^DRAM * DRAM_lat + Num^NVM * NVM_lat, the model
	// completion time the paper validates against (§4.6).
	ExpectedCT sim.Time
}

// BuildMultiLat allocates the two chains: DRAM via malloc, NVM via the
// emulator's pmalloc.
func BuildMultiLat(p *simos.Process, emu *core.Emulator, cfg MultiLatConfig) (*MultiLat, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	baseDRAM, err := p.Malloc(uintptr(cfg.DRAMLines) * 64)
	if err != nil {
		return nil, fmt.Errorf("bench: MultiLat DRAM array: %w", err)
	}
	baseNVM, err := emu.PMalloc(uintptr(cfg.NVMLines) * 64)
	if err != nil {
		return nil, fmt.Errorf("bench: MultiLat NVM array: %w", err)
	}
	return &MultiLat{
		cfg:      cfg,
		nextDRAM: permutationCycle(cfg.DRAMLines, cfg.Seed),
		nextNVM:  permutationCycle(cfg.NVMLines, cfg.Seed+65537),
		baseDRAM: baseDRAM,
		baseNVM:  baseNVM,
	}, nil
}

// Run chases the combined pattern until both arrays are exhausted, reading
// each element exactly once.
func (b *MultiLat) Run(t *simos.Thread, dramLat, nvmLat sim.Time) MultiLatResult {
	remDRAM, remNVM := b.cfg.DRAMLines, b.cfg.NVMLines
	curD, curN := int32(0), int32(0)
	start := t.Now()
	for remDRAM > 0 || remNVM > 0 {
		for i := 0; i < b.cfg.DRAMBurst && remDRAM > 0; i++ {
			t.Load(b.baseDRAM + uintptr(curD)*64)
			curD = b.nextDRAM[curD]
			remDRAM--
		}
		for i := 0; i < b.cfg.NVMBurst && remNVM > 0; i++ {
			t.Load(b.baseNVM + uintptr(curN)*64)
			curN = b.nextNVM[curN]
			remNVM--
		}
	}
	ct := t.Now() - start
	return MultiLatResult{
		CT: ct,
		ExpectedCT: sim.Time(b.cfg.DRAMLines)*dramLat +
			sim.Time(b.cfg.NVMLines)*nvmLat,
	}
}
