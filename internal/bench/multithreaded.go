package bench

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// MTConfig parameterizes the Multi-Threaded benchmark (§4.5): N threads each
// executing K critical sections protected by one shared lock, with
// pointer-chasing work inside (cs_dur) and outside (out_dur) the sections.
type MTConfig struct {
	// Threads is N.
	Threads int
	// Sections is K, the critical sections per thread.
	Sections int
	// CSDur is the number of chase iterations inside each critical
	// section.
	CSDur int
	// OutDur is the number of chase iterations between critical sections
	// (0 reproduces the paper's "cs only" extreme).
	OutDur int
	// Lines sizes each thread's private chain.
	Lines int
	// Node is where the chains are allocated.
	Node int
	// Seed drives the chain permutations.
	Seed int64
}

// Validate reports configuration errors.
func (c MTConfig) Validate() error {
	if c.Threads <= 0 || c.Sections <= 0 || c.CSDur < 0 || c.OutDur < 0 || c.Lines <= 1 {
		return fmt.Errorf("bench: bad MTConfig %+v", c)
	}
	return nil
}

// MTResult is one run's measurement.
type MTResult struct {
	// CT is the wall completion time from workload start to the last
	// thread's finish.
	CT sim.Time
}

// RunMultiThreaded builds the per-thread chains, spawns the workers from the
// given main thread, and reports the completion time. It must be called from
// inside an Env.Run body so that thread creation flows through the (possibly
// interposed) process table.
func RunMultiThreaded(env *Env, main *simos.Thread, cfg MTConfig) (MTResult, error) {
	if err := cfg.Validate(); err != nil {
		return MTResult{}, err
	}
	type worker struct {
		next []int32
		base uintptr
	}
	workers := make([]worker, cfg.Threads)
	for i := range workers {
		base, err := env.Proc.MallocOnNode(uintptr(cfg.Lines)*64, cfg.Node)
		if err != nil {
			return MTResult{}, fmt.Errorf("bench: MT chain %d: %w", i, err)
		}
		workers[i] = worker{
			next: permutationCycle(cfg.Lines, cfg.Seed+int64(i)*104729),
			base: base,
		}
	}
	lock := env.Proc.NewMutex("mt-lock")

	// Start rendezvous: the measured window opens after every worker has
	// checked in (created and registered with the emulator, if any),
	// keeping one-time registration costs out of the completion time.
	startMu := env.Proc.NewMutex("mt-start-mu")
	arrivedCv := env.Proc.NewCond("mt-arrived-cv")
	goCv := env.Proc.NewCond("mt-go-cv")
	arrived := 0
	started := false

	threads := make([]*simos.Thread, 0, cfg.Threads)
	for i := range workers {
		w := workers[i]
		th, err := main.CreateThread(fmt.Sprintf("mt-%d", i), func(t *simos.Thread) {
			startMu.Lock(t)
			arrived++
			arrivedCv.Signal(t)
			for !started {
				goCv.Wait(t, startMu)
			}
			startMu.Unlock(t)
			cur := int32(0)
			chase := func(iters int) {
				for j := 0; j < iters; j++ {
					t.Load(w.base + uintptr(cur)*64)
					cur = w.next[cur]
				}
			}
			for k := 0; k < cfg.Sections; k++ {
				lock.Lock(t)
				chase(cfg.CSDur)
				lock.Unlock(t)
				chase(cfg.OutDur)
			}
		})
		if err != nil {
			return MTResult{}, fmt.Errorf("bench: spawning MT worker %d: %w", i, err)
		}
		threads = append(threads, th)
	}
	startMu.Lock(main)
	for arrived < cfg.Threads {
		arrivedCv.Wait(main, startMu)
	}
	env.CloseEpoch(main)
	start := main.Now()
	started = true
	goCv.Broadcast(main)
	startMu.Unlock(main)
	var end sim.Time
	for _, th := range threads {
		main.Join(th)
		if th.Now() > end {
			end = th.Now()
		}
	}
	if after := main.Now(); after > end {
		end = after
	}
	return MTResult{CT: end - start}, nil
}
