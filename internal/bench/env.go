// Package bench implements the paper's evaluation workloads — MemLat (§4.4),
// the Multi-Threaded benchmark (§4.5), MultiLat (§4.6), and the STREAM copy
// kernel (§4.2) — together with the validation environments of §4.3:
//
//   - Conf_1: computation and memory on socket 0, with Quartz emulating a
//     higher latency in software;
//   - Conf_2: computation on socket 0 with memory physically bound to the
//     remote socket via numactl, giving physically slower memory.
//
// Comparing completion times across the two configurations yields the
// emulation error reported throughout §4.
package bench

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// Mode selects how an environment runs a workload.
type Mode int

// Environment modes.
const (
	// Native runs on local DRAM without emulation ("no emulation"
	// baselines).
	Native Mode = iota + 1
	// PhysicalRemote binds workload memory to the remote socket without
	// emulation — the paper's Conf_2 ground truth.
	PhysicalRemote
	// Emulated runs on local DRAM under Quartz — the paper's Conf_1.
	Emulated
)

func (m Mode) String() string {
	switch m {
	case Native:
		return "native"
	case PhysicalRemote:
		return "physical-remote (Conf_2)"
	case Emulated:
		return "emulated (Conf_1)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// EnvConfig describes a validation environment.
type EnvConfig struct {
	Preset machine.Preset
	// Machine, when non-nil, overrides the preset with a custom machine
	// configuration (e.g. the scaled testbed used for application
	// experiments, which shrinks the L3 to preserve the paper's
	// working-set-to-cache ratio at tractable simulation sizes).
	Machine *machine.Config
	Mode    Mode
	// Quartz configures the emulator in Emulated mode.
	Quartz core.Config
	// Lookahead tunes simulation speed for multithreaded workloads.
	Lookahead sim.Time
	// OSOptions overrides the simulated-OS cost model (zero value uses
	// DefaultOptions with the binding the mode requires).
	OSOptions *simos.Options
	// Profiler, when non-nil, attaches a virtual-time profiler to the
	// process: every thread's simulated time is attributed by (phase stack,
	// category) and folded into it. Trial-parallel units may share one
	// profiler; the fold is commutative. Nil (the default) is inert.
	Profiler *vtprof.Profiler
}

// Env is one assembled machine + process (+ optional emulator).
type Env struct {
	Mach *machine.Machine
	Proc *simos.Process
	Emu  *core.Emulator // nil unless Mode == Emulated
	Mode Mode
}

// NewEnv assembles a fresh machine and process for one trial. Building a new
// environment per trial gives cold caches, matching the paper's practice of
// invalidating caches between runs.
func NewEnv(cfg EnvConfig) (*Env, error) {
	var mach *machine.Machine
	var err error
	if cfg.Machine != nil {
		mach, err = machine.New(*cfg.Machine)
	} else {
		mach, err = machine.NewPreset(cfg.Preset)
	}
	if err != nil {
		return nil, err
	}
	opts := simos.DefaultOptions()
	if cfg.OSOptions != nil {
		opts = *cfg.OSOptions
	}
	opts.Lookahead = cfg.Lookahead
	opts.AllowedSockets = []int{0} // computation always on socket 0 (§4.3)
	switch cfg.Mode {
	case PhysicalRemote:
		opts.DefaultNode = 1 // numactl --membind to the remote socket
	default:
		opts.DefaultNode = 0
	}
	proc, err := simos.NewProcess(mach, opts)
	if err != nil {
		return nil, err
	}
	if cfg.Profiler != nil {
		proc.SetProfiler(cfg.Profiler)
	}
	env := &Env{Mach: mach, Proc: proc, Mode: cfg.Mode}
	if cfg.Mode == Emulated {
		emu, err := core.Attach(proc, cfg.Quartz)
		if err != nil {
			return nil, err
		}
		env.Emu = emu
	}
	return env, nil
}

// Run executes fn as the environment's main thread, under the emulator when
// one is attached.
func (e *Env) Run(fn func(*Env, *simos.Thread)) error {
	body := func(t *simos.Thread) { fn(e, t) }
	if e.Emu != nil {
		return e.Emu.Run(body)
	}
	return e.Proc.Run(body)
}

// CloseEpoch flushes the thread's pending epoch delay in Emulated mode so
// the caller's next timestamp includes it; a no-op otherwise.
func (e *Env) CloseEpoch(t *simos.Thread) {
	if e.Emu != nil {
		e.Emu.CloseEpoch(t)
	}
}

// AllocNode reports the NUMA node workload data should live on in this mode.
func (e *Env) AllocNode() int {
	if e.Mode == PhysicalRemote {
		return 1
	}
	return 0
}

// RemoteLatNS is a convenience for configuring Quartz to emulate exactly the
// machine's remote-DRAM latency, the §4 validation target.
func RemoteLatNS(p machine.Preset) float64 {
	return machine.PresetConfig(p).RemoteLat.Nanoseconds()
}
