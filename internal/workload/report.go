package workload

import (
	"fmt"
	"strings"
)

// SLOPoint is one client-count sweep point of an SLO report.
type SLOPoint struct {
	Clients   int
	OpsPerSec float64
	// P50/P95/P99 are all-ops response-time quantiles in nanoseconds.
	P50, P95, P99 float64
}

// PointOf condenses a scenario result into its sweep point.
func PointOf(r ScenarioResult) SLOPoint {
	p := SLOPoint{Clients: r.Clients, OpsPerSec: r.OpsPerSec}
	p.P50, p.P95, p.P99 = r.Quantiles()
	return p
}

// SLOReport is one (scenario, mix) series across a client-count sweep, with
// the throughput knee and the latency-SLO breach located.
type SLOReport struct {
	Scenario string
	Mix      string
	Points   []SLOPoint
	// KneeIdx indexes the throughput knee in Points (-1 when the sweep is
	// too short or never bends).
	KneeIdx int
	// BreachIdx indexes the first point whose P99 exceeds BreachFactor
	// times the first point's P99 (-1 when none does).
	BreachIdx int
}

// BreachFactor is the p99 growth (relative to the sweep's first point) that
// counts as blowing the latency SLO.
const BreachFactor = 4.0

// NewSLOReport assembles a report over points (which must be in ascending
// client-count order).
func NewSLOReport(scenario, mix string, points []SLOPoint) SLOReport {
	return SLOReport{
		Scenario:  scenario,
		Mix:       mix,
		Points:    points,
		KneeIdx:   DetectKnee(points),
		BreachIdx: detectBreach(points),
	}
}

// DetectKnee locates the throughput knee of an ascending client-count sweep:
// the point of diminishing returns where added clients stop buying
// throughput. It normalizes the curve to the unit square and returns the
// index maximizing the vertical distance above the diagonal (the simplified
// Kneedle criterion) — -1 when the sweep has under three points or the curve
// never gains. The computation is pure float arithmetic over the points, so
// it is deterministic for deterministic inputs.
func DetectKnee(points []SLOPoint) int {
	if len(points) < 3 {
		return -1
	}
	minTP, maxTP := points[0].OpsPerSec, points[0].OpsPerSec
	for _, p := range points {
		if p.OpsPerSec < minTP {
			minTP = p.OpsPerSec
		}
		if p.OpsPerSec > maxTP {
			maxTP = p.OpsPerSec
		}
	}
	if maxTP <= minTP {
		return -1
	}
	best, bestDist := -1, 0.0
	for i, p := range points {
		x := float64(i) / float64(len(points)-1)
		y := (p.OpsPerSec - minTP) / (maxTP - minTP)
		if d := y - x; d > bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// detectBreach finds the first point whose p99 exceeds BreachFactor times
// the first point's p99.
func detectBreach(points []SLOPoint) int {
	if len(points) == 0 || points[0].P99 <= 0 {
		return -1
	}
	limit := points[0].P99 * BreachFactor
	for i, p := range points {
		if p.P99 > limit {
			return i
		}
	}
	return -1
}

// Knee reports the client count at the throughput knee (0 when none).
func (r SLOReport) Knee() int {
	if r.KneeIdx < 0 {
		return 0
	}
	return r.Points[r.KneeIdx].Clients
}

// Summary renders the report's one-line verdict, the form the experiment
// tables quote in their notes.
func (r SLOReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: ", r.Scenario, r.Mix)
	if r.KneeIdx >= 0 {
		p := r.Points[r.KneeIdx]
		fmt.Fprintf(&b, "knee at %d clients (%.0f ops/s, p99 %s)", p.Clients, p.OpsPerSec, fmtLatNS(p.P99))
	} else {
		b.WriteString("no throughput knee in sweep")
	}
	if r.BreachIdx >= 0 {
		p := r.Points[r.BreachIdx]
		fmt.Fprintf(&b, "; p99 SLO (%.0fx baseline) first exceeded at %d clients", BreachFactor, p.Clients)
	}
	return b.String()
}

// Render formats the full report as aligned text: one row per sweep point,
// the knee row marked.
func (r SLOReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLO report — scenario %s, mix %s\n", r.Scenario, r.Mix)
	fmt.Fprintf(&b, "%10s  %12s  %10s  %10s  %10s\n", "clients", "ops/s", "p50", "p95", "p99")
	for i, p := range r.Points {
		mark := ""
		if i == r.KneeIdx {
			mark = "  <- knee"
		}
		fmt.Fprintf(&b, "%10d  %12.0f  %10s  %10s  %10s%s\n",
			p.Clients, p.OpsPerSec, fmtLatNS(p.P50), fmtLatNS(p.P95), fmtLatNS(p.P99), mark)
	}
	b.WriteString(r.Summary())
	b.WriteByte('\n')
	return b.String()
}

// fmtLatNS renders a nanosecond latency with an adaptive unit.
func fmtLatNS(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
