package workload

import "testing"

// TestLCGGoldenValues pins the generator constants bit-for-bit: the kvstore
// validation figure's golden tables depend on exactly these streams, so any
// drift here would silently invalidate fig16.golden.
func TestLCGGoldenValues(t *testing.T) {
	const seed = 12345
	if got, want := PreloadState(seed), uint64(17399844927936646018); got != want {
		t.Errorf("PreloadState(%d) = %d, want %d", seed, got, want)
	}
	if got, want := ClientState(seed, 2), uint64(4354685564936857700); got != want {
		t.Errorf("ClientState(%d, 2) = %d, want %d", seed, got, want)
	}
	pre := NewLCG(PreloadState(seed))
	for i, want := range []uint64{936678769431352, 7792750518010736, 3080410748336722} {
		if got := pre.Next(); got != want {
			t.Errorf("preload draw %d = %d, want %d", i, got, want)
		}
	}
	cl := NewLCG(ClientState(seed, 2))
	for i, want := range []uint64{5846404718992294, 7221447164384376, 1102927629385401} {
		if got := cl.Next(); got != want {
			t.Errorf("client-2 draw %d = %d, want %d", i, got, want)
		}
	}
}

func TestLCGFloat64Range(t *testing.T) {
	r := NewLCG(PreloadState(7))
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0, 1)", v)
		}
	}
}

func TestGetDrawFraction(t *testing.T) {
	r := NewLCG(ClientState(99, 0))
	const n = 100000
	gets := 0
	for i := 0; i < n; i++ {
		if GetDraw(&r, 0.9) {
			gets++
		}
	}
	frac := float64(gets) / n
	if frac < 0.88 || frac > 0.92 {
		t.Errorf("GetDraw(0.9) fraction = %v, want ~0.9", frac)
	}
}

func TestMixValidate(t *testing.T) {
	for _, m := range Presets {
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", m.Name, err)
		}
	}
	bad := []Mix{
		{Name: "sum", Read: 900, Update: 50, Scan: 0},
		{Name: "neg", Read: 1100, Update: -100, Scan: 0},
		{Name: "scanlen", Read: 900, Update: 0, Scan: 100, ScanLen: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %q validated but should not", m.Name)
		}
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range PresetNames() {
		m, ok := MixByName(name)
		if !ok || m.Name != name {
			t.Errorf("MixByName(%q) = %+v, %v", name, m, ok)
		}
	}
	if _, ok := MixByName("nope"); ok {
		t.Error("MixByName accepted unknown name")
	}
}

// TestClientGenDrawOrder pins the stream contract: one key draw, then one
// per-mille kind draw, from the LCG seeded with ClientState(seed, c). The
// replay below is the exact specification a different pool decomposition
// must reproduce.
func TestClientGenDrawOrder(t *testing.T) {
	const seed, c = 42, 3
	keys := Uniform{Keys: 50}
	mix := Mix{Name: "t", Read: 700, Update: 200, Scan: 100, ScanLen: 4}
	g := NewClientGen(seed, c, keys, mix)
	r := NewLCG(ClientState(seed, c))
	for i := 0; i < 1000; i++ {
		op := g.Next()
		wantKey := r.Next() % keys.Keys
		v := int(r.Next() % 1000)
		var wantKind OpKind
		switch {
		case v < mix.Read:
			wantKind = OpRead
		case v < mix.Read+mix.Update:
			wantKind = OpUpdate
		default:
			wantKind = OpScan
		}
		if op.Key != wantKey || op.Kind != wantKind {
			t.Fatalf("op %d = {%v %d}, want {%v %d}", i, op.Kind, op.Key, wantKind, wantKey)
		}
	}
}

func TestClientGenKindFrequencies(t *testing.T) {
	mix := Mix{Name: "t", Read: 700, Update: 200, Scan: 100, ScanLen: 4}
	g := NewClientGen(7, 0, Uniform{Keys: 1000}, mix)
	const n = 100000
	var counts [NumOpKinds]int
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	wants := []float64{0.7, 0.2, 0.1}
	for k, want := range wants {
		frac := float64(counts[k]) / n
		if frac < want-0.02 || frac > want+0.02 {
			t.Errorf("%v fraction = %v, want ~%v", OpKind(k), frac, want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	wants := map[OpKind]string{OpRead: "read", OpUpdate: "update", OpScan: "scan", OpKind(9): "OpKind(9)"}
	for k, want := range wants {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
