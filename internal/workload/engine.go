package workload

import (
	"fmt"
	"strconv"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// Interned vtprof phases: the warmup/measure windows frame each pool
// thread's run, and each operation runs under its kind's phase. Interning at
// init keeps the per-op tagging free of strings and maps.
var (
	phaseWarmup  = vtprof.Intern("warmup")
	phaseMeasure = vtprof.Intern("measure")
	opPhases     = func() [NumOpKinds]vtprof.Phase {
		var p [NumOpKinds]vtprof.Phase
		for k := range p {
			p[k] = vtprof.Intern("op:" + OpKind(k).String())
		}
		return p
	}()
)

// Target is the application-side surface a scenario drives — the three
// YCSB-style verbs. Implementations charge simulated time (loads, stores,
// compute) on the calling thread; internal/apps/kvstore.TrafficTarget adapts
// the validation KV store.
type Target interface {
	// Read looks key up, reporting presence.
	Read(t *simos.Thread, key uint64) bool
	// Update inserts or overwrites key.
	Update(t *simos.Thread, key uint64, value uint64) error
	// Scan visits up to limit items from key onward, reporting how many it
	// saw.
	Scan(t *simos.Thread, key uint64, limit int) int
}

// ScenarioConfig describes one traffic scenario: who the clients are, what
// they ask for, and how they arrive.
type ScenarioConfig struct {
	// Name labels the scenario in reports, metrics and events.
	Name string
	// Clients is the number of simulated clients. Client state is flat
	// struct-of-arrays (a due time, an inline generator, a done count per
	// client — a few dozen bytes each), so a literal million clients
	// multiplex over a small pool.
	Clients int
	// PoolThreads is the number of simos threads serving the clients
	// (client c is owned by thread c % PoolThreads). The pool models the
	// server's worker threads; client count beyond it creates queueing.
	PoolThreads int
	// WarmupOps is the per-client op count run before the measurement
	// window opens. Warmup ops never reach the histograms or metrics.
	WarmupOps int
	// MeasureOps is the per-client measured op count.
	MeasureOps int
	// Keys is the key-popularity distribution. Required.
	Keys KeyDist
	// Mix is the operation blend.
	Mix Mix
	// Seed drives every client stream (see ClientState).
	Seed uint64
	// ThinkTime is the closed-loop pause between a client's completion and
	// its next request (0 = back-to-back).
	ThinkTime sim.Time
	// ArrivalPeriod, when positive, switches the scenario to an open loop:
	// each client issues requests on a fixed schedule (one per period,
	// phase-staggered across clients) regardless of completions, so
	// latency includes queueing backlog once the pool saturates. Zero is
	// the closed loop.
	ArrivalPeriod sim.Time
	// CloseEpoch, when non-nil, is invoked per pool thread before its final
	// timestamp (the emulator's CloseEpoch) so trailing epoch delays land
	// inside the measured window — the same contract as the validation
	// workload.
	CloseEpoch func(*simos.Thread)
	// Obs, when non-nil, feeds the live introspection plane: per-op-kind
	// quartz.ops.* counters and latency histograms, and "traffic" progress
	// events. It never influences the measured result.
	Obs *obs.Recorder
	// EventEvery is the number of measured ops between traffic progress
	// events — and between refreshes of the live quartz.ops.* metrics,
	// which the measured-op path batches in per-worker plain histograms
	// (0 selects a default; negative disables progress events).
	EventEvery int

	// sched forces a specific next-due picker for the scheduler
	// equivalence tests; the zero value selects automatically.
	sched schedMode
}

// defaultEventEvery spaces traffic progress events (and live-metric
// refreshes) when EventEvery is 0.
const defaultEventEvery = 4096

// Validate reports configuration errors.
func (c ScenarioConfig) Validate() error {
	if c.Clients <= 0 || c.PoolThreads <= 0 || c.MeasureOps <= 0 || c.WarmupOps < 0 {
		return fmt.Errorf("workload: bad scenario sizing (clients=%d pool=%d measure=%d warmup=%d)",
			c.Clients, c.PoolThreads, c.MeasureOps, c.WarmupOps)
	}
	if c.Keys == nil || c.Keys.N() == 0 {
		return fmt.Errorf("workload: scenario %q has no key distribution", c.Name)
	}
	if c.ThinkTime < 0 || c.ArrivalPeriod < 0 {
		return fmt.Errorf("workload: negative think/arrival time")
	}
	return c.Mix.Validate()
}

// Latencies are a scenario's measured-op latency histograms: one per op
// kind plus the all-ops aggregate, in the obs power-of-two form (so
// p50/p95/p99 come straight from Snapshot).
type Latencies struct {
	All  obs.Histogram
	Kind [NumOpKinds]obs.Histogram
}

// ScenarioResult is one scenario's measured outcome. All quantities are
// simulated time — deterministic for a given configuration.
type ScenarioResult struct {
	Name    string
	Clients int
	// CT is the measurement window: barrier release to the last pool
	// thread's completion.
	CT sim.Time
	// Ops counts measured operations (Clients * MeasureOps on success).
	Ops int64
	// Counts breaks Ops down by kind.
	Counts [NumOpKinds]int64
	// OpsPerSec is the measured throughput in simulated time.
	OpsPerSec float64
	// Lat holds the latency histograms. Latency is response time: op
	// completion minus the op's due time, so it includes time spent queued
	// behind other clients on the pool (closed loop) or behind the arrival
	// schedule (open loop).
	Lat *Latencies
}

// Quantiles reports the all-ops p50/p95/p99 in nanoseconds.
func (r ScenarioResult) Quantiles() (p50, p95, p99 float64) {
	s := r.Lat.All.Snapshot()
	return s.P50, s.P95, s.P99
}

// liveMetrics caches the registry handles the engine feeds per metric
// flush, so the flush path never touches the registry's name map.
type liveMetrics struct {
	allCount  *obs.Counter
	allLat    *obs.Histogram
	kindCount [NumOpKinds]*obs.Counter
	kindLat   [NumOpKinds]*obs.Histogram
}

// newLiveMetrics resolves the quartz.ops.* metric family, or nil when no
// recorder is attached.
func newLiveMetrics(rec *obs.Recorder) *liveMetrics {
	reg := rec.Registry()
	if reg == nil {
		return nil
	}
	lm := &liveMetrics{
		allCount: reg.Counter("quartz.ops.count"),
		allLat:   reg.Histogram("quartz.ops.latency_ns"),
	}
	for k := 0; k < NumOpKinds; k++ {
		name := OpKind(k).String()
		lm.kindCount[k] = reg.Counter("quartz.ops." + name + ".count")
		lm.kindLat[k] = reg.Histogram("quartz.ops." + name + ".latency_ns")
	}
	return lm
}

// scenario is the per-run state every pool worker shares. Pool threads
// interleave cooperatively within one simulation kernel, so the plain
// (non-atomic) fields are race-free.
type scenario struct {
	cfg    *ScenarioConfig
	target Target
	lm     *liveMetrics
	lat    *Latencies // the assembled result histograms (flush destination)
	pool   int
	// readMax/updMax are the mix's cumulative per-mille thresholds, hoisted
	// so the per-op kind draw is two compares.
	readMax, updMax int
	eventEvery      int64
	totalOps        int64
	// measured counts measured ops across workers; it times progress
	// events and live-metric flushes only, never the result.
	measured int64
	firstErr error
}

// worker is one pool thread's client state, flattened struct-of-arrays
// style: position i owns global client c = w + i*pool, and its due time,
// generator state and per-phase done count live in parallel slices
// preallocated to the exact owned count at spawn — a million clients are a
// few flat slices, not a million heap objects.
type worker struct {
	sc *scenario
	w  int

	due  []sim.Time // next due time per owned client
	gen  []LCG      // inline generator state (8 bytes per client)
	done []int32    // ops completed in the current phase

	heap heap4
	fifo fifoRing

	record bool
	mStart sim.Time // measurement-phase start, for progress events

	// Measured-op tallies, recorded plain (no atomics) on the op path and
	// merged positionally into the scenario result after the join; the
	// flushed* fields track what has already left for the live registry.
	// lat feeds both the result histograms and the registry from one flush
	// stream.
	counts        [NumOpKinds]int64
	flushedCounts [NumOpKinds]int64
	flushedAll    int64
	lat           struct {
		all  obs.LocalHistogram
		kind [NumOpKinds]obs.LocalHistogram
	}
}

// ownedCount reports how many of n clients position-map onto worker w of a
// pool-sized pool (the c == w mod pool owners).
func ownedCount(n, pool, w int) int {
	if w >= n {
		return 0
	}
	return (n-1-w)/pool + 1
}

// init preallocates the worker's flat client state to its exact owned
// count and seeds every generator from (Seed, global client index) — the
// same streams for any PoolThreads value.
func (wk *worker) init() {
	cfg := wk.sc.cfg
	n := ownedCount(cfg.Clients, wk.sc.pool, wk.w)
	wk.due = make([]sim.Time, n)
	wk.gen = make([]LCG, n)
	wk.done = make([]int32, n)
	for i := 0; i < n; i++ {
		wk.gen[i] = NewLCG(ClientState(cfg.Seed, wk.w+i*wk.sc.pool))
	}
	// Preallocate only the picker the arrival rule needs: the calendar
	// needs none, the FIFO ring one int32 per client (its heap fallback
	// grows lazily in the rare zero-time-op case), everything else the
	// heap.
	if cfg.sched == schedAuto && cfg.ArrivalPeriod == 0 && cfg.ThinkTime == 0 {
		wk.fifo.buf = make([]int32, n)
	} else if cfg.sched == schedHeap || cfg.sched == schedAuto && cfg.ArrivalPeriod == 0 {
		wk.heap.idx = make([]int32, 0, n)
	}
}

// runOne executes client position i's next op, recording its latency when
// the measurement window is open, and advances the client's due time.
func (wk *worker) runOne(t *simos.Thread, i int32) bool {
	sc := wk.sc
	cfg := sc.cfg
	now := t.Now()
	due := wk.due[i]
	if due > now {
		if err := t.Nanosleep(due - now); err != nil {
			// No signals are used; an interrupt is a bug.
			t.Failf("workload: %v", err)
		}
	}
	op := nextOp(&wk.gen[i], cfg.Keys, sc.readMax, sc.updMax)
	// The op runs under its kind's phase; the due-time sleep above stays
	// under the window phase (it is queueing, not op work).
	t.PushPhase(opPhases[op.Kind])
	err := applyOp(t, sc.target, op, cfg.Mix.ScanLen, uint64(wk.done[i]))
	t.PopPhase()
	if err != nil {
		if sc.firstErr == nil {
			sc.firstErr = err
		}
		return false
	}
	end := t.Now()
	if wk.record {
		lat := int64((end - due) / sim.Nanosecond)
		wk.lat.all.Observe(lat)
		wk.lat.kind[op.Kind].Observe(lat)
		wk.counts[op.Kind]++
		sc.measured++
		if sc.eventEvery > 0 && sc.measured%sc.eventEvery == 0 {
			wk.flush()
			publishProgress(*cfg, sc.measured, sc.totalOps, end-wk.mStart, sc.lat.All.Quantile(0.99))
		}
	}
	wk.done[i]++
	if cfg.ArrivalPeriod > 0 {
		wk.due[i] = due + cfg.ArrivalPeriod
	} else {
		wk.due[i] = end + cfg.ThinkTime
	}
	return true
}

// flush folds the tallies recorded since the previous flush into the
// scenario result histograms and, when live metrics are attached, the
// quartz.ops.* registry — the metric batching that keeps the measured-op
// path free of atomic operations. Histogram merges are commutative adds, so
// the assembled result is identical however flushes interleave.
func (wk *worker) flush() {
	sc := wk.sc
	var allReg *obs.Histogram
	if sc.lm != nil {
		allReg = sc.lm.allLat
	}
	wk.lat.all.FlushInto(&sc.lat.All, allReg)
	for k := 0; k < NumOpKinds; k++ {
		var kindReg *obs.Histogram
		if sc.lm != nil {
			kindReg = sc.lm.kindLat[k]
		}
		wk.lat.kind[k].FlushInto(&sc.lat.Kind[k], kindReg)
	}
	if sc.lm == nil {
		return
	}
	var all int64
	for k, n := range wk.counts {
		if d := n - wk.flushedCounts[k]; d != 0 {
			sc.lm.kindCount[k].Add(d)
			wk.flushedCounts[k] = n
		}
		all += n
	}
	if d := all - wk.flushedAll; d != 0 {
		sc.lm.allCount.Add(d)
		wk.flushedAll = all
	}
}

// runPhase serves whichever owned client is due next (ties to the lowest
// position), one op per pick, until every one has done limit ops.
func (wk *worker) runPhase(t *simos.Thread, limit int32, record bool) bool {
	sc := wk.sc
	cfg := sc.cfg
	start := t.Now()
	wk.record = record
	if record {
		t.PushPhase(phaseMeasure)
	} else {
		t.PushPhase(phaseWarmup)
	}
	defer t.PopPhase()
	if record {
		wk.mStart = start
	}
	n := int32(len(wk.due))
	for i := int32(0); i < n; i++ {
		wk.done[i] = 0
		if cfg.ArrivalPeriod > 0 {
			// Phase-stagger the open-loop schedules so arrivals spread over
			// the period instead of thundering in herds. The global client
			// index keeps the schedule independent of the pool size.
			c := wk.w + int(i)*sc.pool
			wk.due[i] = start + cfg.ArrivalPeriod*sim.Time(c)/sim.Time(cfg.Clients)
		} else {
			wk.due[i] = start
		}
	}
	ok := true
	switch {
	case limit <= 0 || n == 0:
		// Nothing to serve (WarmupOps == 0).
	case cfg.sched == schedLinear:
		ok = wk.runLinear(t, limit)
	case cfg.sched == schedAuto && cfg.ArrivalPeriod > 0:
		ok = wk.runCalendar(t, limit)
	case cfg.sched == schedAuto && cfg.ThinkTime == 0:
		ok = wk.runFIFO(t, limit)
	default:
		wk.heap.due = wk.due
		wk.heap.resetAll(n)
		ok = wk.heapLoop(t, limit)
	}
	if record {
		wk.flush()
	}
	return ok
}

// runLinear is the reference picker the optimized schedulers are held to:
// scan every owned client, serve the earliest due with ties to the lowest
// position — exactly the pre-flattening engine's behavior, O(owned) per op.
func (wk *worker) runLinear(t *simos.Thread, limit int32) bool {
	n := int32(len(wk.due))
	for {
		next := int32(-1)
		for i := int32(0); i < n; i++ {
			if wk.done[i] < limit && (next < 0 || wk.due[i] < wk.due[next]) {
				next = i
			}
		}
		if next < 0 {
			return true
		}
		if !wk.runOne(t, next) {
			return false
		}
	}
}

// runCalendar serves the open-loop fixed-arrival schedule in rounds, O(1)
// per pick with no bookkeeping at all. The initial dues are nondecreasing
// in position and all inside one arrival period, and every op advances its
// client by exactly one period, so (due, position) order is provably strict
// round-robin: round r serves positions 0..n-1 in order, and every due in
// round r precedes every due in round r+1.
func (wk *worker) runCalendar(t *simos.Thread, limit int32) bool {
	n := int32(len(wk.due))
	for r := int32(0); r < limit; r++ {
		for i := int32(0); i < n; i++ {
			if !wk.runOne(t, i) {
				return false
			}
		}
	}
	return true
}

// runFIFO serves the closed-loop zero-think case from a ring, O(1) per
// pick: a served client's next due is its completion time, which simulated
// -time monotonicity puts at or past every other owned client's due, so the
// earliest-due client is the least recently served one. Every re-append is
// guarded — the new key must follow the ring's back in (due, position)
// order, which only an op completing in zero simulated time can violate —
// and on violation the remaining picks fall back to the heap; picks made
// before the fallback were already correct.
func (wk *worker) runFIFO(t *simos.Thread, limit int32) bool {
	wk.fifo.reset(int32(len(wk.due)))
	for wk.fifo.size > 0 {
		i := wk.fifo.pop()
		if !wk.runOne(t, i) {
			return false
		}
		if wk.done[i] >= limit {
			continue
		}
		if wk.fifo.size > 0 {
			back := wk.fifo.back()
			if d, bd := wk.due[i], wk.due[back]; d < bd || d == bd && i < back {
				wk.fifo.push(i)
				wk.heap.due = wk.due
				wk.heap.idx = wk.fifo.drain(wk.heap.idx[:0])
				wk.heap.heapify()
				return wk.heapLoop(t, limit)
			}
		}
		wk.fifo.push(i)
	}
	return true
}

// heapLoop serves from the 4-ary heap: peek the minimum, run it, then
// either drop it (quota reached) or sift its advanced due time back down —
// one O(log4 owned) fix per op.
func (wk *worker) heapLoop(t *simos.Thread, limit int32) bool {
	for wk.heap.len() > 0 {
		i := wk.heap.min()
		if !wk.runOne(t, i) {
			return false
		}
		if wk.done[i] >= limit {
			wk.heap.popMin()
		} else {
			wk.heap.fixMin()
		}
	}
	return true
}

// RunScenario drives cfg against target from main, spawning the pool,
// running the warmup phase, opening the measurement window at a pool-wide
// barrier, and collecting the measured ops. The returned result depends only
// on the configuration (never on the host's scheduling), and per-client op
// streams depend only on (Seed, client index) — the same streams for any
// PoolThreads value.
func RunScenario(main *simos.Thread, target Target, cfg ScenarioConfig) (ScenarioResult, error) {
	if err := cfg.Validate(); err != nil {
		return ScenarioResult{}, err
	}
	res := ScenarioResult{Name: cfg.Name, Clients: cfg.Clients, Lat: &Latencies{}}

	pool := cfg.PoolThreads
	if pool > cfg.Clients {
		pool = cfg.Clients
	}
	// The measurement barrier: every pool thread finishes warmup, then main
	// stamps the window open; injected emulator delays propagate through the
	// barrier like any sync event.
	bar, err := main.Process().NewBarrier(cfg.Name+"-measure", pool+1)
	if err != nil {
		return ScenarioResult{}, err
	}

	eventEvery := cfg.EventEvery
	if eventEvery == 0 {
		eventEvery = defaultEventEvery
	}
	sc := &scenario{
		cfg:        &cfg,
		target:     target,
		lm:         newLiveMetrics(cfg.Obs),
		lat:        res.Lat,
		pool:       pool,
		readMax:    cfg.Mix.Read,
		updMax:     cfg.Mix.Read + cfg.Mix.Update,
		eventEvery: int64(eventEvery),
		totalOps:   int64(cfg.Clients) * int64(cfg.MeasureOps),
	}

	// Per-worker state, merged by position after the join so the result
	// never depends on worker completion order.
	ws := make([]worker, pool)

	// Build pool thread names by appending to one shared prefix buffer —
	// no per-thread fmt.Sprintf.
	nameBuf := make([]byte, 0, len(cfg.Name)+len("-pool-")+20)
	nameBuf = append(nameBuf, cfg.Name...)
	nameBuf = append(nameBuf, "-pool-"...)

	workers := make([]*simos.Thread, 0, pool)
	for w := 0; w < pool; w++ {
		wk := &ws[w]
		wk.sc, wk.w = sc, w
		th, err := main.CreateThread(string(strconv.AppendInt(nameBuf, int64(w), 10)), func(t *simos.Thread) {
			wk.init()
			// Warmup, then rendezvous: the window opens only after every
			// pool thread has finished warming up.
			warmOK := wk.runPhase(t, int32(cfg.WarmupOps), false)
			bar.Wait(t)
			if !warmOK {
				return
			}
			wk.runPhase(t, int32(cfg.MeasureOps), true)
			if cfg.CloseEpoch != nil {
				cfg.CloseEpoch(t)
			}
		})
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("workload: spawning pool thread %d: %w", w, err)
		}
		workers = append(workers, th)
	}

	// Main arrives at the barrier last-ish; the release time — which carries
	// any delay injected during warmup — opens the window. Flush main's own
	// pending epoch delay first so it lands before the window, not inside.
	if cfg.CloseEpoch != nil {
		cfg.CloseEpoch(main)
	}
	bar.Wait(main)
	winStart := main.Now()

	var end sim.Time
	for _, th := range workers {
		main.Join(th)
		if th.Now() > end {
			end = th.Now()
		}
	}
	if sc.firstErr != nil {
		return ScenarioResult{}, sc.firstErr
	}
	res.CT = end - winStart
	for w := range ws {
		for k, n := range ws[w].counts {
			res.Counts[k] += n
			res.Ops += n
		}
	}
	if secs := res.CT.Seconds(); secs > 0 {
		res.OpsPerSec = float64(res.Ops) / secs
	}
	publishProgress(cfg, res.Ops, sc.totalOps, res.CT, res.Lat.All.Quantile(0.99))
	return res, nil
}

// applyOp executes one generated operation against the target.
func applyOp(t *simos.Thread, target Target, op Op, scanLen int, val uint64) error {
	switch op.Kind {
	case OpRead:
		target.Read(t, op.Key)
		return nil
	case OpUpdate:
		return target.Update(t, op.Key, val)
	default:
		target.Scan(t, op.Key, scanLen)
		return nil
	}
}

// publishProgress emits one "traffic" event (and refreshes the live traffic
// gauges) when a recorder is attached.
func publishProgress(cfg ScenarioConfig, done, total int64, elapsed sim.Time, p99 float64) {
	if cfg.Obs == nil || cfg.EventEvery < 0 {
		return
	}
	opsPerSec := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		opsPerSec = float64(done) / secs
	}
	cfg.Obs.TrafficProgress(cfg.Name, cfg.Mix.Name, cfg.Clients, done, total,
		opsPerSec, p99)
}
