package workload

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// Target is the application-side surface a scenario drives — the three
// YCSB-style verbs. Implementations charge simulated time (loads, stores,
// compute) on the calling thread; internal/apps/kvstore.TrafficTarget adapts
// the validation KV store.
type Target interface {
	// Read looks key up, reporting presence.
	Read(t *simos.Thread, key uint64) bool
	// Update inserts or overwrites key.
	Update(t *simos.Thread, key uint64, value uint64) error
	// Scan visits up to limit items from key onward, reporting how many it
	// saw.
	Scan(t *simos.Thread, key uint64, limit int) int
}

// ScenarioConfig describes one traffic scenario: who the clients are, what
// they ask for, and how they arrive.
type ScenarioConfig struct {
	// Name labels the scenario in reports, metrics and events.
	Name string
	// Clients is the number of simulated clients. Clients are lightweight
	// state machines (a generator plus a due time), so tens of thousands
	// multiplex over a small pool.
	Clients int
	// PoolThreads is the number of simos threads serving the clients
	// (client c is owned by thread c % PoolThreads). The pool models the
	// server's worker threads; client count beyond it creates queueing.
	PoolThreads int
	// WarmupOps is the per-client op count run before the measurement
	// window opens. Warmup ops never reach the histograms or metrics.
	WarmupOps int
	// MeasureOps is the per-client measured op count.
	MeasureOps int
	// Keys is the key-popularity distribution. Required.
	Keys KeyDist
	// Mix is the operation blend.
	Mix Mix
	// Seed drives every client stream (see ClientState).
	Seed uint64
	// ThinkTime is the closed-loop pause between a client's completion and
	// its next request (0 = back-to-back).
	ThinkTime sim.Time
	// ArrivalPeriod, when positive, switches the scenario to an open loop:
	// each client issues requests on a fixed schedule (one per period,
	// phase-staggered across clients) regardless of completions, so
	// latency includes queueing backlog once the pool saturates. Zero is
	// the closed loop.
	ArrivalPeriod sim.Time
	// CloseEpoch, when non-nil, is invoked per pool thread before its final
	// timestamp (the emulator's CloseEpoch) so trailing epoch delays land
	// inside the measured window — the same contract as the validation
	// workload.
	CloseEpoch func(*simos.Thread)
	// Obs, when non-nil, feeds the live introspection plane: per-op-kind
	// quartz.ops.* counters and latency histograms, and "traffic" progress
	// events. It never influences the measured result.
	Obs *obs.Recorder
	// EventEvery is the number of measured ops between traffic progress
	// events (0 selects a default; negative disables progress events).
	EventEvery int
}

// defaultEventEvery spaces traffic progress events when EventEvery is 0.
const defaultEventEvery = 4096

// Validate reports configuration errors.
func (c ScenarioConfig) Validate() error {
	if c.Clients <= 0 || c.PoolThreads <= 0 || c.MeasureOps <= 0 || c.WarmupOps < 0 {
		return fmt.Errorf("workload: bad scenario sizing (clients=%d pool=%d measure=%d warmup=%d)",
			c.Clients, c.PoolThreads, c.MeasureOps, c.WarmupOps)
	}
	if c.Keys == nil || c.Keys.N() == 0 {
		return fmt.Errorf("workload: scenario %q has no key distribution", c.Name)
	}
	if c.ThinkTime < 0 || c.ArrivalPeriod < 0 {
		return fmt.Errorf("workload: negative think/arrival time")
	}
	return c.Mix.Validate()
}

// Latencies are a scenario's measured-op latency histograms: one per op
// kind plus the all-ops aggregate, in the obs power-of-two form (so
// p50/p95/p99 come straight from Snapshot).
type Latencies struct {
	All  obs.Histogram
	Kind [NumOpKinds]obs.Histogram
}

// ScenarioResult is one scenario's measured outcome. All quantities are
// simulated time — deterministic for a given configuration.
type ScenarioResult struct {
	Name    string
	Clients int
	// CT is the measurement window: barrier release to the last pool
	// thread's completion.
	CT sim.Time
	// Ops counts measured operations (Clients * MeasureOps on success).
	Ops int64
	// Counts breaks Ops down by kind.
	Counts [NumOpKinds]int64
	// OpsPerSec is the measured throughput in simulated time.
	OpsPerSec float64
	// Lat holds the latency histograms. Latency is response time: op
	// completion minus the op's due time, so it includes time spent queued
	// behind other clients on the pool (closed loop) or behind the arrival
	// schedule (open loop).
	Lat *Latencies
}

// Quantiles reports the all-ops p50/p95/p99 in nanoseconds.
func (r ScenarioResult) Quantiles() (p50, p95, p99 float64) {
	s := r.Lat.All.Snapshot()
	return s.P50, s.P95, s.P99
}

// client is one simulated client's scheduling state.
type client struct {
	gen  ClientGen
	due  sim.Time
	done int
}

// liveMetrics caches the registry handles the engine feeds per measured op,
// so the hot path never touches the registry's name map.
type liveMetrics struct {
	allCount  *obs.Counter
	allLat    *obs.Histogram
	kindCount [NumOpKinds]*obs.Counter
	kindLat   [NumOpKinds]*obs.Histogram
}

// newLiveMetrics resolves the quartz.ops.* metric family, or nil when no
// recorder is attached.
func newLiveMetrics(rec *obs.Recorder) *liveMetrics {
	reg := rec.Registry()
	if reg == nil {
		return nil
	}
	lm := &liveMetrics{
		allCount: reg.Counter("quartz.ops.count"),
		allLat:   reg.Histogram("quartz.ops.latency_ns"),
	}
	for k := 0; k < NumOpKinds; k++ {
		name := OpKind(k).String()
		lm.kindCount[k] = reg.Counter("quartz.ops." + name + ".count")
		lm.kindLat[k] = reg.Histogram("quartz.ops." + name + ".latency_ns")
	}
	return lm
}

// RunScenario drives cfg against target from main, spawning the pool,
// running the warmup phase, opening the measurement window at a pool-wide
// barrier, and collecting the measured ops. The returned result depends only
// on the configuration (never on the host's scheduling), and per-client op
// streams depend only on (Seed, client index) — the same streams for any
// PoolThreads value.
func RunScenario(main *simos.Thread, target Target, cfg ScenarioConfig) (ScenarioResult, error) {
	if err := cfg.Validate(); err != nil {
		return ScenarioResult{}, err
	}
	res := ScenarioResult{Name: cfg.Name, Clients: cfg.Clients, Lat: &Latencies{}}

	pool := cfg.PoolThreads
	if pool > cfg.Clients {
		pool = cfg.Clients
	}
	// The measurement barrier: every pool thread finishes warmup, then main
	// stamps the window open; injected emulator delays propagate through the
	// barrier like any sync event.
	bar, err := main.Process().NewBarrier(cfg.Name+"-measure", pool+1)
	if err != nil {
		return ScenarioResult{}, err
	}

	lm := newLiveMetrics(cfg.Obs)
	eventEvery := cfg.EventEvery
	if eventEvery == 0 {
		eventEvery = defaultEventEvery
	}
	totalOps := int64(cfg.Clients) * int64(cfg.MeasureOps)

	// Per-worker tallies, merged by position after the join so the result
	// never depends on worker completion order.
	perWorker := make([][NumOpKinds]int64, pool)
	var winStart sim.Time
	// measuredSoFar feeds progress events only; pool threads interleave
	// cooperatively within one simulation kernel, so plain increments are
	// race-free.
	var measuredSoFar int64
	var firstErr error

	workers := make([]*simos.Thread, 0, pool)
	for w := 0; w < pool; w++ {
		w := w
		th, err := main.CreateThread(fmt.Sprintf("%s-pool-%d", cfg.Name, w), func(t *simos.Thread) {
			// Build the owned clients: c == w (mod pool), merged by position.
			var owned []*client
			for c := w; c < cfg.Clients; c += pool {
				owned = append(owned, &client{gen: NewClientGen(cfg.Seed, c, cfg.Keys, cfg.Mix)})
			}
			// mStart is this worker's measurement-phase start, for progress
			// events (the assembled result uses the barrier's window).
			var mStart sim.Time
			// runOne executes the client's next op, recording its latency
			// when the measurement window is open.
			runOne := func(cl *client, record bool) bool {
				now := t.Now()
				if cl.due > now {
					if err := t.Nanosleep(cl.due - now); err != nil {
						// No signals are used; an interrupt is a bug.
						t.Failf("workload: %v", err)
					}
				}
				op := cl.gen.Next()
				if err := applyOp(t, target, op, cfg.Mix.ScanLen, uint64(cl.done)); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return false
				}
				end := t.Now()
				if record {
					lat := int64((end - cl.due) / sim.Nanosecond)
					res.Lat.All.Observe(lat)
					res.Lat.Kind[op.Kind].Observe(lat)
					perWorker[w][op.Kind]++
					if lm != nil {
						lm.allCount.Add(1)
						lm.allLat.Observe(lat)
						lm.kindCount[op.Kind].Add(1)
						lm.kindLat[op.Kind].Observe(lat)
					}
					measuredSoFar++
					if eventEvery > 0 && measuredSoFar%int64(eventEvery) == 0 {
						publishProgress(cfg, measuredSoFar, totalOps, end-mStart, res.Lat)
					}
				}
				cl.done++
				if cfg.ArrivalPeriod > 0 {
					cl.due += cfg.ArrivalPeriod
				} else {
					cl.due = end + cfg.ThinkTime
				}
				return true
			}
			// runPhase serves whichever owned client is due next (ties to
			// the lowest position), one op per pick, until every one has
			// done limit ops.
			runPhase := func(limit int, record bool) bool {
				start := t.Now()
				if record {
					mStart = start
				}
				for i, cl := range owned {
					cl.done = 0
					if cfg.ArrivalPeriod > 0 {
						// Phase-stagger the open-loop schedules so arrivals
						// spread over the period instead of thundering in
						// herds. The global client index keeps the schedule
						// independent of the pool size.
						c := w + i*pool
						cl.due = start + cfg.ArrivalPeriod*sim.Time(c)/sim.Time(cfg.Clients)
					} else {
						cl.due = start
					}
				}
				for {
					var next *client
					for _, cl := range owned {
						if cl.done < limit && (next == nil || cl.due < next.due) {
							next = cl
						}
					}
					if next == nil {
						return true
					}
					if !runOne(next, record) {
						return false
					}
				}
			}
			// Warmup, then rendezvous: the window opens only after every
			// pool thread has finished warming up.
			warmOK := runPhase(cfg.WarmupOps, false)
			bar.Wait(t)
			if !warmOK {
				return
			}
			runPhase(cfg.MeasureOps, true)
			if cfg.CloseEpoch != nil {
				cfg.CloseEpoch(t)
			}
		})
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("workload: spawning pool thread %d: %w", w, err)
		}
		workers = append(workers, th)
	}

	// Main arrives at the barrier last-ish; the release time — which carries
	// any delay injected during warmup — opens the window. Flush main's own
	// pending epoch delay first so it lands before the window, not inside.
	if cfg.CloseEpoch != nil {
		cfg.CloseEpoch(main)
	}
	bar.Wait(main)
	winStart = main.Now()

	var end sim.Time
	for _, th := range workers {
		main.Join(th)
		if th.Now() > end {
			end = th.Now()
		}
	}
	if firstErr != nil {
		return ScenarioResult{}, firstErr
	}
	res.CT = end - winStart
	for w := range perWorker {
		for k, n := range perWorker[w] {
			res.Counts[k] += n
			res.Ops += n
		}
	}
	if secs := res.CT.Seconds(); secs > 0 {
		res.OpsPerSec = float64(res.Ops) / secs
	}
	publishProgress(cfg, res.Ops, totalOps, res.CT, res.Lat)
	return res, nil
}

// applyOp executes one generated operation against the target.
func applyOp(t *simos.Thread, target Target, op Op, scanLen int, val uint64) error {
	switch op.Kind {
	case OpRead:
		target.Read(t, op.Key)
		return nil
	case OpUpdate:
		return target.Update(t, op.Key, val)
	default:
		target.Scan(t, op.Key, scanLen)
		return nil
	}
}

// publishProgress emits one "traffic" event (and refreshes the live traffic
// gauges) when a recorder is attached.
func publishProgress(cfg ScenarioConfig, done, total int64, elapsed sim.Time, lat *Latencies) {
	if cfg.Obs == nil || cfg.EventEvery < 0 {
		return
	}
	opsPerSec := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		opsPerSec = float64(done) / secs
	}
	cfg.Obs.TrafficProgress(cfg.Name, cfg.Mix.Name, cfg.Clients, done, total,
		opsPerSec, lat.All.Quantile(0.99))
}
