package workload

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/sim"
)

// TestMeasuredOpPathNoAllocs is the allocation gate for the engine's
// steady-state per-op work: picking the next-due client (heap and FIFO),
// advancing its generator, and recording the measured latency locally. All
// of it runs on preallocated flat state, so a scenario's measurement window
// produces zero garbage regardless of client count — that is what lets
// traffic-mega sweep to a million clients without GC pressure.
func TestMeasuredOpPathNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const n = 4096
	due := make([]sim.Time, n)
	for i := range due {
		due[i] = sim.Time(i)
	}
	h := heap4{idx: make([]int32, 0, n), due: due}
	h.resetAll(n)
	if allocs := testing.AllocsPerRun(100, func() {
		i := h.min()
		h.due[i] += 1000
		h.fixMin()
	}); allocs != 0 {
		t.Errorf("heap pick+fix: %v allocs/op, want 0", allocs)
	}

	var f fifoRing
	f.buf = make([]int32, n)
	f.reset(n)
	if allocs := testing.AllocsPerRun(100, func() {
		f.push(f.pop())
	}); allocs != 0 {
		t.Errorf("fifo pop+push: %v allocs/op, want 0", allocs)
	}

	gen := NewLCG(ClientState(7, 0))
	// The engine holds cfg.Keys as a KeyDist interface built once at config
	// time; holding a concrete Uniform here would re-box it on every call.
	var keys KeyDist = Uniform{Keys: 1 << 16}
	zipf, err := NewZipfian(1<<16, 0.99, true)
	if err != nil {
		t.Fatal(err)
	}
	var sink Op
	if allocs := testing.AllocsPerRun(100, func() {
		sink = nextOp(&gen, keys, 950, 1000)
	}); allocs != 0 {
		t.Errorf("client advance (uniform): %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		sink = nextOp(&gen, zipf, 950, 1000)
	}); allocs != 0 {
		t.Errorf("client advance (zipfian): %v allocs/op, want 0", allocs)
	}
	_ = sink

	var lat obs.LocalHistogram
	var counts [NumOpKinds]int64
	v := int64(1)
	if allocs := testing.AllocsPerRun(100, func() {
		lat.Observe(v)
		counts[OpRead]++
		v += 997
	}); allocs != 0 {
		t.Errorf("record: %v allocs/op, want 0", allocs)
	}
	var dst, reg obs.Histogram
	if allocs := testing.AllocsPerRun(100, func() {
		lat.Observe(v)
		v += 997
		lat.FlushInto(&dst, &reg)
	}); allocs != 0 {
		t.Errorf("flush: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkWorkloadPickNext measures one serve step of each picker — the
// work the engine does to choose which client runs next — at a large owned
// count (the per-worker share of a million-client scenario).
func BenchmarkWorkloadPickNext(b *testing.B) {
	const n = 65536
	b.Run("heap", func(b *testing.B) {
		due := make([]sim.Time, n)
		for i := range due {
			due[i] = sim.Time(i * 13)
		}
		h := heap4{idx: make([]int32, 0, n), due: due}
		h.resetAll(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := h.min()
			h.due[j] += 100_000
			h.fixMin()
		}
	})
	b.Run("fifo", func(b *testing.B) {
		var f fifoRing
		f.buf = make([]int32, n)
		f.reset(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.push(f.pop())
		}
	})
	b.Run("linear", func(b *testing.B) {
		due := make([]sim.Time, n)
		for i := range due {
			due[i] = sim.Time(i * 13)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			best := int32(0)
			bd := due[0]
			for j := int32(1); j < n; j++ {
				if due[j] < bd {
					best, bd = j, due[j]
				}
			}
			due[best] = bd + 100_000
		}
	})
}

// BenchmarkWorkloadClientAdvance measures one generator step (key draw plus
// op-kind draw) against both key distributions.
func BenchmarkWorkloadClientAdvance(b *testing.B) {
	gen := NewLCG(ClientState(7, 0))
	var sink Op
	b.Run("uniform", func(b *testing.B) {
		var keys KeyDist = Uniform{Keys: 1 << 20}
		for i := 0; i < b.N; i++ {
			sink = nextOp(&gen, keys, 950, 1000)
		}
	})
	b.Run("zipfian", func(b *testing.B) {
		zipf, err := NewZipfian(1<<20, 0.99, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = nextOp(&gen, zipf, 950, 1000)
		}
	})
	_ = sink
}

// BenchmarkWorkloadRecord measures recording one measured op into the
// worker-local histogram and tally (the per-op cost), and the periodic
// delta-flush into the shared result and registry histograms (paid once per
// EventEvery ops).
func BenchmarkWorkloadRecord(b *testing.B) {
	b.Run("observe", func(b *testing.B) {
		var lat obs.LocalHistogram
		var counts [NumOpKinds]int64
		v := int64(1)
		for i := 0; i < b.N; i++ {
			lat.Observe(v)
			counts[OpRead]++
			v += 997
		}
	})
	b.Run("flush", func(b *testing.B) {
		var lat obs.LocalHistogram
		var dst, reg obs.Histogram
		v := int64(1)
		for i := 0; i < b.N; i++ {
			lat.Observe(v)
			v += 997
			lat.FlushInto(&dst, &reg)
		}
	})
}
