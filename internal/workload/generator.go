// Package workload is the traffic scenario engine: deterministic YCSB-style
// operation-stream generators (seeded key-popularity distributions, op-mix
// presets) and a client engine that multiplexes many simulated clients over
// a bounded pool of simos threads, with warmup/measurement windows and
// SLO-style latency reporting (report.go).
//
// Determinism is the package contract, matching the experiment runner's
// byte-identical-tables gate: every stream derives from (seed, client index)
// alone, so a scenario produces identical per-client op sequences — and
// identical assembled tables — for any pool size and any runner worker
// count.
package workload

import "fmt"

// LCG is the linear congruential generator every Quartz workload stream
// uses (Knuth's MMIX constants, top 53 bits output). It is the exact
// generator the kvstore validation figure (Fig. 15/16) has always used,
// extracted here so the validation workload and the traffic scenarios share
// one implementation.
type LCG struct{ x uint64 }

// NewLCG creates a generator with the given raw initial state. The state is
// used as-is: derive it with PreloadState or ClientState for the standard
// stream families.
func NewLCG(state uint64) LCG { return LCG{x: state} }

// Next advances the generator and returns the next 53-bit value.
func (l *LCG) Next() uint64 {
	l.x = l.x*6364136223846793005 + 1442695040888963407
	return l.x >> 11
}

// Float64 returns the next value scaled to [0, 1).
func (l *LCG) Float64() float64 {
	return float64(l.Next()) / float64(uint64(1)<<53)
}

// PreloadState derives the LCG state of a workload's preload stream from its
// seed (the kvstore validation figure's historical derivation).
func PreloadState(seed uint64) uint64 {
	return seed*2862933555777941757 + 3037000493
}

// ClientState derives the LCG state of client c's op stream from the
// scenario seed. Distinct clients get decorrelated streams via a golden-ratio
// stride (the kvstore validation figure's historical per-thread derivation).
func ClientState(seed uint64, c int) uint64 {
	return seed + uint64(c)*0x9e3779b97f4a7c15 + 1
}

// GetDraw reports whether the next operation of the classic put/get mix is a
// get, consuming one draw. This reproduces the validation figure's op pick
// bit-for-bit (a per-mille threshold on one LCG draw).
func GetDraw(r *LCG, getFraction float64) bool {
	return float64(r.Next()%1000)/1000 < getFraction
}

// KeyDist draws keys from a popularity distribution over [0, N). All
// implementations are deterministic functions of the generator state.
type KeyDist interface {
	// Key consumes draws from r and returns the next key.
	Key(r *LCG) uint64
	// N reports the key-space size.
	N() uint64
}

// Uniform draws every key in [0, Keys) with equal probability — the
// validation figure's historical key distribution.
type Uniform struct {
	Keys uint64
}

// Key consumes one draw.
func (u Uniform) Key(r *LCG) uint64 { return r.Next() % u.Keys }

// N reports the key-space size.
func (u Uniform) N() uint64 { return u.Keys }

// OpKind discriminates scenario operations.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpScan
	opKinds // number of kinds
)

// NumOpKinds is the number of operation kinds (for per-kind arrays).
const NumOpKinds = int(opKinds)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Mix is a YCSB-style operation blend in per-mille weights (the three
// weights must sum to 1000, checked by Validate).
type Mix struct {
	Name string
	// Read/Update/Scan are the per-mille op shares.
	Read, Update, Scan int
	// ScanLen is the item limit of one scan operation.
	ScanLen int
}

// Validate reports configuration errors.
func (m Mix) Validate() error {
	if m.Read < 0 || m.Update < 0 || m.Scan < 0 || m.Read+m.Update+m.Scan != 1000 {
		return fmt.Errorf("workload: mix %q weights %d/%d/%d must be non-negative and sum to 1000",
			m.Name, m.Read, m.Update, m.Scan)
	}
	if m.Scan > 0 && m.ScanLen <= 0 {
		return fmt.Errorf("workload: mix %q has scans but ScanLen = %d", m.Name, m.ScanLen)
	}
	return nil
}

// Presets are the standard serving blends, in the spirit of the YCSB core
// workloads: read-mostly (YCSB-B), write-heavy (YCSB-A), and a scan blend
// (YCSB-E-flavored, with point reads and updates mixed in).
var Presets = []Mix{
	{Name: "read-mostly", Read: 950, Update: 50, Scan: 0},
	{Name: "write-heavy", Read: 500, Update: 500, Scan: 0},
	{Name: "scan-blend", Read: 700, Update: 200, Scan: 100, ScanLen: 16},
}

// MixByName finds a preset by name.
func MixByName(name string) (Mix, bool) {
	for _, m := range Presets {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// PresetNames lists the preset mix names in declaration order.
func PresetNames() []string {
	names := make([]string, len(Presets))
	for i, m := range Presets {
		names[i] = m.Name
	}
	return names
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// ClientGen produces one simulated client's deterministic op stream: keys
// from the scenario's popularity distribution, kinds from its mix, all
// driven by a generator derived from (seed, client index) alone.
type ClientGen struct {
	r    LCG
	keys KeyDist
	mix  Mix
}

// NewClientGen builds client c's stream for the given scenario seed.
func NewClientGen(seed uint64, c int, keys KeyDist, mix Mix) ClientGen {
	return ClientGen{r: NewLCG(ClientState(seed, c)), keys: keys, mix: mix}
}

// Next generates the client's next operation: one key draw, then one op-kind
// draw (the same draw order as the validation workload).
func (g *ClientGen) Next() Op {
	return nextOp(&g.r, g.keys, g.mix.Read, g.mix.Read+g.mix.Update)
}

// nextOp is the generation step over externally held generator state — the
// engine keeps one inline LCG per client in a flat slice and shares the key
// distribution and the mix's cumulative per-mille thresholds (readMax =
// Read, updMax = Read+Update) scenario-wide. Draw order (key, then kind) is
// the validation workload's, bit for bit.
func nextOp(r *LCG, keys KeyDist, readMax, updMax int) Op {
	op := Op{Key: keys.Key(r)}
	v := int(r.Next() % 1000)
	switch {
	case v < readMax:
		op.Kind = OpRead
	case v < updMax:
		op.Kind = OpUpdate
	default:
		op.Kind = OpScan
	}
	return op
}
