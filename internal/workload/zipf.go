package workload

import (
	"fmt"
	"math"
)

// Zipfian draws keys with the zipf-like popularity skew real serving
// workloads exhibit: rank r's probability is proportional to 1/r^Theta.
// It implements Gray et al.'s constant-time inversion ("Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD '94) — the same algorithm
// YCSB's ZipfianGenerator uses — over a precomputed zeta sum, so sampling
// costs one uniform draw and a handful of float operations regardless of
// key-space size.
//
// With Scramble set, ranks are hashed (FNV-1a) over the key space so the
// popular keys scatter uniformly instead of clustering at the low end —
// YCSB's "scrambled zipfian". For a hash-partitioned store this spreads the
// hot set across partitions, which is how real key popularity behaves.
type Zipfian struct {
	n        uint64
	theta    float64
	scramble bool

	alpha, zetan, eta float64
	thetaHalfPow      float64 // 0.5^theta, the rank-1 threshold
}

// DefaultTheta is the conventional YCSB zipfian constant.
const DefaultTheta = 0.99

// NewZipfian precomputes a zipfian distribution over [0, n). theta in (0, 1)
// controls the skew (0.99 is the YCSB default; closer to 1 is more skewed).
func NewZipfian(n uint64, theta float64, scramble bool) (*Zipfian, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: zipfian over empty key space")
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipfian theta %g outside (0, 1)", theta)
	}
	z := &Zipfian{n: n, theta: theta, scramble: scramble}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.thetaHalfPow = math.Pow(0.5, theta)
	return z, nil
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Key consumes one draw and returns the next key. Without scrambling the
// result is the popularity rank itself (rank 0 most popular).
func (z *Zipfian) Key(r *LCG) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+z.thetaHalfPow:
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	if z.scramble {
		return fnv64(rank) % z.n
	}
	return rank
}

// N reports the key-space size.
func (z *Zipfian) N() uint64 { return z.n }

// RankProb reports the probability of drawing popularity rank i (the i-th
// most popular key before scrambling): P(i) = (1/(i+1)^theta) / zetan.
func (z *Zipfian) RankProb(rank uint64) float64 {
	return 1 / math.Pow(float64(rank+1), z.theta) / z.zetan
}

// fnv64 hashes v's eight bytes with FNV-1a.
func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
