package workload

import (
	"fmt"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// zeroTarget serves every op in zero simulated time — the adversarial case
// for the FIFO fast path, whose append guard must detect the tie and fall
// back to the heap without changing the served order.
type zeroTarget struct{ ops []Op }

func (z *zeroTarget) Read(t *simos.Thread, key uint64) bool {
	z.ops = append(z.ops, Op{Kind: OpRead, Key: key})
	return true
}

func (z *zeroTarget) Update(t *simos.Thread, key uint64, value uint64) error {
	z.ops = append(z.ops, Op{Kind: OpUpdate, Key: key})
	return nil
}

func (z *zeroTarget) Scan(t *simos.Thread, key uint64, limit int) int {
	z.ops = append(z.ops, Op{Kind: OpScan, Key: key})
	return limit
}

// runSched executes cfg under the given scheduler mode against a recording
// target and returns the result plus the exact served op sequence.
func runSched(t *testing.T, cfg ScenarioConfig, mode schedMode, zeroCost bool) (ScenarioResult, []Op) {
	t.Helper()
	cfg.sched = mode
	if !zeroCost {
		res, ops := runStub(t, cfg)
		return res, ops
	}
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	target := &zeroTarget{}
	var res ScenarioResult
	var runErr error
	if err := p.Run(func(th *simos.Thread) {
		res, runErr = RunScenario(th, target, cfg)
	}); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return res, target.ops
}

// TestSchedulerEquivalence pins the determinism contract of the optimized
// pickers: for every loop shape, the 4-ary heap, the open-loop calendar and
// the closed-loop FIFO ring must serve the exact op sequence — and produce
// the identical result — of the reference linear scan. The zero-cost case
// forces ops that complete in zero simulated time, the one schedule the
// FIFO's append guard must hand off to the heap.
func TestSchedulerEquivalence(t *testing.T) {
	shapes := []struct {
		name     string
		zeroCost bool
		mutate   func(*ScenarioConfig)
	}{
		{"closed-zero-think", false, func(c *ScenarioConfig) {}},
		{"closed-think", false, func(c *ScenarioConfig) { c.ThinkTime = 3 * sim.Microsecond }},
		{"open-loop", false, func(c *ScenarioConfig) { c.ArrivalPeriod = 2 * sim.Microsecond }},
		{"open-loop-overload", false, func(c *ScenarioConfig) {
			c.ArrivalPeriod = 100 // far faster than service: deep backlog
			c.Clients = 17        // prime, so stagger offsets collide and tie
		}},
		{"closed-zero-cost-ops", true, func(c *ScenarioConfig) {}},
	}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			cfg := baseConfig(shape.name)
			cfg.Clients = 13 // not a pool multiple: uneven owned counts
			cfg.MeasureOps = 12
			shape.mutate(&cfg)
			refRes, refOps := runSched(t, cfg, schedLinear, shape.zeroCost)
			for mode, name := range map[schedMode]string{schedAuto: "auto", schedHeap: "heap"} {
				res, ops := runSched(t, cfg, mode, shape.zeroCost)
				if fmt.Sprint(ops) != fmt.Sprint(refOps) {
					t.Errorf("%s: served op sequence diverges from the linear reference", name)
				}
				if res.CT != refRes.CT || res.Ops != refRes.Ops || res.Counts != refRes.Counts {
					t.Errorf("%s: result %+v, want %+v", name, res, refRes)
				}
				if fmt.Sprint(res.Lat.All.Snapshot()) != fmt.Sprint(refRes.Lat.All.Snapshot()) {
					t.Errorf("%s: latency histogram diverges from the linear reference", name)
				}
			}
		})
	}
}

// TestFIFOFallbackServesEveryOp drives the zero-cost schedule directly
// through the auto picker and checks completeness: the heap fallback must
// pick up exactly where the ring left off, with every client reaching its
// quota exactly once.
func TestFIFOFallbackServesEveryOp(t *testing.T) {
	cfg := baseConfig("fallback")
	cfg.Clients = 9
	cfg.PoolThreads = 2
	cfg.MeasureOps = 7
	res, ops := runSched(t, cfg, schedAuto, true)
	want := int64(cfg.Clients * cfg.MeasureOps)
	if res.Ops != want {
		t.Errorf("measured %d ops, want %d", res.Ops, want)
	}
	if total := cfg.Clients * (cfg.WarmupOps + cfg.MeasureOps); len(ops) != total {
		t.Errorf("served %d ops, want %d", len(ops), total)
	}
}

// TestScenarioPoolSizeInvarianceLarge is the at-scale determinism gate: at
// 100k+ clients the op multiset and per-kind counts must be identical for
// every pool size, exactly as at toy scale. -short trims the client axis.
func TestScenarioPoolSizeInvarianceLarge(t *testing.T) {
	clients := 120_000
	if testing.Short() {
		clients = 8_000
	}
	cfg := baseConfig("pool-large")
	cfg.Clients = clients
	cfg.WarmupOps = 1
	cfg.MeasureOps = 2
	cfg.Keys = Uniform{Keys: 4096}
	var wantCounts [NumOpKinds]int64
	var wantOps []Op
	for i, pool := range []int{1, 7, 16} {
		cfg.PoolThreads = pool
		res, ops := runStub(t, cfg)
		if res.Ops != int64(clients*cfg.MeasureOps) {
			t.Fatalf("pool %d measured %d ops, want %d", pool, res.Ops, clients*cfg.MeasureOps)
		}
		canon := sortedOps(ops)
		if i == 0 {
			wantCounts, wantOps = res.Counts, canon
			continue
		}
		if res.Counts != wantCounts {
			t.Errorf("pool %d counts %v, want %v", pool, res.Counts, wantCounts)
		}
		if !opsEqual(canon, wantOps) {
			t.Errorf("pool %d generated a different op multiset", pool)
		}
	}
}

// opsEqual compares op slices without the fmt.Sprint detour (the large
// invariance test would otherwise spend its time formatting).
func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
