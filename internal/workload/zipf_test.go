package workload

import (
	"math"
	"testing"
)

// TestZipfianChiSquare draws a fixed-seed sample and compares the observed
// rank frequencies against the analytic zipfian probabilities with a
// chi-square test. The draw is fully deterministic, so the statistic is a
// constant. Gray et al.'s inversion is an approximation — its per-rank bias
// adds a systematic term on top of the chi-square(df=99) sampling noise
// (99.9th pct ~ 148), so the threshold carries headroom above that; a broken
// sampler still fails by two orders of magnitude (uniform scores ~31000 at
// this sample count).
func TestZipfianChiSquare(t *testing.T) {
	const n = 100
	const samples = 20000
	z, err := NewZipfian(n, DefaultTheta, false)
	if err != nil {
		t.Fatal(err)
	}
	r := NewLCG(ClientState(2026, 0))
	var obs [n]float64
	for i := 0; i < samples; i++ {
		k := z.Key(&r)
		if k >= n {
			t.Fatalf("key %d outside [0, %d)", k, n)
		}
		obs[k]++
	}
	var chi2 float64
	for rank := 0; rank < n; rank++ {
		exp := z.RankProb(uint64(rank)) * samples
		d := obs[rank] - exp
		chi2 += d * d / exp
	}
	if chi2 > 300 {
		t.Errorf("chi-square = %.1f over 99 df, want < 300", chi2)
	}
	// The skew must actually be there: rank 0 carries ~6.3% of the mass at
	// theta 0.99 over 100 keys, an order of magnitude above uniform.
	if frac := obs[0] / samples; frac < 0.05 {
		t.Errorf("rank-0 mass = %v, want > 0.05 (zipfian skew missing)", frac)
	}
}

func TestZipfianRankProbSumsToOne(t *testing.T) {
	z, err := NewZipfian(1000, DefaultTheta, false)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := uint64(0); i < 1000; i++ {
		sum += z.RankProb(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum of RankProb = %v, want 1", sum)
	}
}

// TestZipfianScramble checks the scrambled variant preserves the popularity
// mass while scattering it: the hottest scrambled key receives the rank-0
// probability mass, but at a hashed position.
func TestZipfianScramble(t *testing.T) {
	const n = 1000
	const samples = 100000
	z, err := NewZipfian(n, DefaultTheta, true)
	if err != nil {
		t.Fatal(err)
	}
	r := NewLCG(ClientState(7, 0))
	counts := make(map[uint64]int)
	for i := 0; i < samples; i++ {
		k := z.Key(&r)
		if k >= n {
			t.Fatalf("scrambled key %d outside [0, %d)", k, n)
		}
		counts[k]++
	}
	var hotKey uint64
	hot := 0
	for k, c := range counts {
		if c > hot {
			hot, hotKey = c, k
		}
	}
	if want := fnv64(0) % n; hotKey != want {
		t.Errorf("hottest key = %d, want fnv64(0) %% n = %d", hotKey, want)
	}
	wantHot := z.RankProb(0) * samples
	if d := math.Abs(float64(hot) - wantHot); d > wantHot*0.15 {
		t.Errorf("hottest key count = %d, want ~%.0f", hot, wantHot)
	}
}

func TestZipfianValidation(t *testing.T) {
	if _, err := NewZipfian(0, DefaultTheta, false); err == nil {
		t.Error("empty key space accepted")
	}
	if _, err := NewZipfian(10, 0, false); err == nil {
		t.Error("theta 0 accepted")
	}
	if _, err := NewZipfian(10, 1, false); err == nil {
		t.Error("theta 1 accepted")
	}
}

func TestZipfianDeterminism(t *testing.T) {
	z, err := NewZipfian(500, DefaultTheta, true)
	if err != nil {
		t.Fatal(err)
	}
	a := NewLCG(ClientState(11, 4))
	b := NewLCG(ClientState(11, 4))
	for i := 0; i < 5000; i++ {
		if ka, kb := z.Key(&a), z.Key(&b); ka != kb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ka, kb)
		}
	}
}
