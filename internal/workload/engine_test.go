package workload

import (
	"fmt"
	"sort"
	"testing"

	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/simos"
)

// stubTarget is a Target that charges a fixed compute cost per op and
// records every operation it serves.
type stubTarget struct {
	cycles int64
	ops    []Op
}

func (s *stubTarget) Read(t *simos.Thread, key uint64) bool {
	t.Compute(s.cycles)
	s.ops = append(s.ops, Op{Kind: OpRead, Key: key})
	return true
}

func (s *stubTarget) Update(t *simos.Thread, key uint64, value uint64) error {
	t.Compute(s.cycles)
	s.ops = append(s.ops, Op{Kind: OpUpdate, Key: key})
	return nil
}

func (s *stubTarget) Scan(t *simos.Thread, key uint64, limit int) int {
	t.Compute(s.cycles * int64(limit))
	s.ops = append(s.ops, Op{Kind: OpScan, Key: key})
	return limit
}

// runStub executes cfg against a fresh stub target on a fresh simulated
// process and returns the result plus the served ops.
func runStub(t *testing.T, cfg ScenarioConfig) (ScenarioResult, []Op) {
	t.Helper()
	m, err := machine.NewPreset(machine.XeonE5_2660v2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := simos.NewProcess(m, simos.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	target := &stubTarget{cycles: 2000}
	var res ScenarioResult
	var runErr error
	if err := p.Run(func(th *simos.Thread) {
		res, runErr = RunScenario(th, target, cfg)
	}); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return res, target.ops
}

func baseConfig(name string) ScenarioConfig {
	return ScenarioConfig{
		Name:        name,
		Clients:     12,
		PoolThreads: 3,
		WarmupOps:   4,
		MeasureOps:  10,
		Keys:        Uniform{Keys: 64},
		Mix:         Mix{Name: "t", Read: 700, Update: 200, Scan: 100, ScanLen: 4},
		Seed:        2026,
		EventEvery:  -1,
	}
}

// sortedOps canonicalizes a served-op multiset for comparison across pool
// sizes (service order differs; the set of generated ops must not).
func sortedOps(ops []Op) []Op {
	out := append([]Op(nil), ops...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TestScenarioDeterminism runs the same scenario twice and requires an
// identical result — the byte-identical-tables gate at engine level.
func TestScenarioDeterminism(t *testing.T) {
	cfg := baseConfig("det")
	a, opsA := runStub(t, cfg)
	b, opsB := runStub(t, cfg)
	if a.CT != b.CT || a.Ops != b.Ops || a.Counts != b.Counts || a.OpsPerSec != b.OpsPerSec {
		t.Errorf("reruns diverged: %+v vs %+v", a, b)
	}
	if fmt.Sprint(a.Lat.All.Snapshot()) != fmt.Sprint(b.Lat.All.Snapshot()) {
		t.Error("latency histograms diverged between reruns")
	}
	if fmt.Sprint(opsA) != fmt.Sprint(opsB) {
		t.Error("served op sequences diverged between reruns")
	}
}

// TestScenarioPoolSizeInvariance requires that changing the pool size never
// changes which ops the clients generate: per-client streams derive from
// (seed, client index) alone, so the served multiset — and the per-kind
// counts — are identical for 1, 3 and 12 pool threads.
func TestScenarioPoolSizeInvariance(t *testing.T) {
	cfg := baseConfig("pool")
	var wantOps []Op
	var wantCounts [NumOpKinds]int64
	for i, pool := range []int{1, 3, 12} {
		cfg.PoolThreads = pool
		res, ops := runStub(t, cfg)
		if res.Ops != int64(cfg.Clients*cfg.MeasureOps) {
			t.Fatalf("pool %d measured %d ops, want %d", pool, res.Ops, cfg.Clients*cfg.MeasureOps)
		}
		canon := sortedOps(ops)
		if i == 0 {
			wantOps, wantCounts = canon, res.Counts
			continue
		}
		if res.Counts != wantCounts {
			t.Errorf("pool %d counts %v, want %v", pool, res.Counts, wantCounts)
		}
		if fmt.Sprint(canon) != fmt.Sprint(wantOps) {
			t.Errorf("pool %d generated a different op multiset", pool)
		}
	}
}

// TestWarmupExclusion verifies warmup ops reach the target but never the
// histograms or the live metrics.
func TestWarmupExclusion(t *testing.T) {
	rec := obs.New(0)
	cfg := baseConfig("warm")
	cfg.Obs = rec
	cfg.EventEvery = 0
	res, ops := runStub(t, cfg)
	total := cfg.Clients * (cfg.WarmupOps + cfg.MeasureOps)
	measured := int64(cfg.Clients * cfg.MeasureOps)
	if len(ops) != total {
		t.Errorf("target served %d ops, want %d (warmup + measured)", len(ops), total)
	}
	if got := res.Lat.All.Snapshot().Count; got != measured {
		t.Errorf("histogram count = %d, want %d (measured only)", got, measured)
	}
	if res.Ops != measured {
		t.Errorf("res.Ops = %d, want %d", res.Ops, measured)
	}
	if got := rec.Registry().Counter("quartz.ops.count").Value(); got != measured {
		t.Errorf("quartz.ops.count = %d, want %d (warmup excluded)", got, measured)
	}
	var kindSum int64
	for k := 0; k < NumOpKinds; k++ {
		name := OpKind(k).String()
		c := rec.Registry().Counter("quartz.ops." + name + ".count").Value()
		h := rec.Registry().Histogram("quartz.ops." + name + ".latency_ns").Snapshot().Count
		if c != h {
			t.Errorf("%s: count %d != histogram count %d", name, c, h)
		}
		if c != res.Counts[k] {
			t.Errorf("%s: live count %d != result count %d", name, c, res.Counts[k])
		}
		kindSum += c
	}
	if kindSum != measured {
		t.Errorf("per-kind counts sum to %d, want %d", kindSum, measured)
	}
}

// TestTrafficEvents verifies the engine publishes "traffic" progress events
// carrying the scenario identity and final op count.
func TestTrafficEvents(t *testing.T) {
	rec := obs.New(0)
	ch, cancel := rec.Events(256)
	defer cancel()
	cfg := baseConfig("events")
	cfg.Obs = rec
	cfg.EventEvery = 8
	res, _ := runStub(t, cfg)
	cancel()
	var events []obs.Event
	for drain := true; drain; {
		select {
		case ev := <-ch:
			if ev.Kind == "traffic" {
				events = append(events, ev)
			}
		default:
			drain = false
		}
	}
	if len(events) == 0 {
		t.Fatal("no traffic events published")
	}
	last := events[len(events)-1]
	if last.Scenario != "events" || last.Mix != cfg.Mix.Name || last.Clients != cfg.Clients {
		t.Errorf("final event identity = %+v", last)
	}
	if last.Done != res.Ops || last.TotalOps != res.Ops {
		t.Errorf("final event progress %d/%d, want %d/%d", last.Done, last.TotalOps, res.Ops, res.Ops)
	}
	if last.OpsPerSec <= 0 || last.P99NS <= 0 {
		t.Errorf("final event rates = %+v", last)
	}
}

// TestOpenLoopQueueing checks the open loop produces the saturation
// signature: with arrivals far faster than the pool can serve, p99 response
// time grows well beyond the per-op service time (backlog queueing), while a
// leisurely schedule keeps latency near service time.
func TestOpenLoopQueueing(t *testing.T) {
	cfg := baseConfig("open")
	cfg.Clients = 32
	cfg.PoolThreads = 2
	cfg.MeasureOps = 20
	cfg.ArrivalPeriod = 100 // 100 fs: absurdly fast arrivals, guaranteed backlog
	over, _ := runStub(t, cfg)
	_, _, p99Over := over.Quantiles()

	cfg2 := baseConfig("calm")
	cfg2.Clients = 4
	cfg2.PoolThreads = 4
	cfg2.MeasureOps = 20
	calm, _ := runStub(t, cfg2)
	_, _, p99Calm := calm.Quantiles()

	if p99Over < 4*p99Calm {
		t.Errorf("overloaded open-loop p99 %.0fns not >> closed-loop %.0fns", p99Over, p99Calm)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []func(*ScenarioConfig){
		func(c *ScenarioConfig) { c.Clients = 0 },
		func(c *ScenarioConfig) { c.PoolThreads = 0 },
		func(c *ScenarioConfig) { c.MeasureOps = 0 },
		func(c *ScenarioConfig) { c.WarmupOps = -1 },
		func(c *ScenarioConfig) { c.Keys = nil },
		func(c *ScenarioConfig) { c.ThinkTime = -1 },
		func(c *ScenarioConfig) { c.ArrivalPeriod = -1 },
		func(c *ScenarioConfig) { c.Mix.Read = 0 },
	}
	for i, mutate := range bad {
		cfg := baseConfig("bad")
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d validated but should not", i)
		}
	}
	if err := baseConfig("ok").Validate(); err != nil {
		t.Errorf("base config invalid: %v", err)
	}
}
