package workload

import (
	"strings"
	"testing"
)

// sweep builds the classic saturating sweep: throughput climbs, flattens at
// the knee, and p99 explodes past it.
func sweep() []SLOPoint {
	return []SLOPoint{
		{Clients: 4, OpsPerSec: 1000, P50: 500, P95: 800, P99: 1000},
		{Clients: 16, OpsPerSec: 3800, P50: 520, P95: 850, P99: 1100},
		{Clients: 64, OpsPerSec: 9000, P50: 600, P95: 1000, P99: 1500},
		{Clients: 256, OpsPerSec: 9800, P50: 2500, P95: 5000, P99: 9000},
		{Clients: 1024, OpsPerSec: 9900, P50: 11000, P95: 30000, P99: 60000},
	}
}

func TestDetectKnee(t *testing.T) {
	points := sweep()
	if got := DetectKnee(points); got != 2 {
		t.Errorf("DetectKnee = %d, want 2 (64 clients)", got)
	}
	if got := DetectKnee(points[:2]); got != -1 {
		t.Errorf("DetectKnee on 2 points = %d, want -1", got)
	}
	flat := []SLOPoint{{OpsPerSec: 5}, {OpsPerSec: 5}, {OpsPerSec: 5}}
	if got := DetectKnee(flat); got != -1 {
		t.Errorf("DetectKnee on flat sweep = %d, want -1", got)
	}
}

func TestSLOReport(t *testing.T) {
	r := NewSLOReport("traffic-sweep", "read-mostly", sweep())
	if r.KneeIdx != 2 {
		t.Errorf("KneeIdx = %d, want 2", r.KneeIdx)
	}
	if r.Knee() != 64 {
		t.Errorf("Knee() = %d, want 64", r.Knee())
	}
	// Baseline p99 1000; 4x limit 4000; first breach is 256 clients (9000).
	if r.BreachIdx != 3 {
		t.Errorf("BreachIdx = %d, want 3", r.BreachIdx)
	}
	out := r.Render()
	for _, want := range []string{"read-mostly", "<- knee", "knee at 64 clients", "first exceeded at 256 clients", "9.00us"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestSLOReportNoKnee(t *testing.T) {
	r := NewSLOReport("s", "m", nil)
	if r.KneeIdx != -1 || r.BreachIdx != -1 || r.Knee() != 0 {
		t.Errorf("empty report = %+v", r)
	}
	if !strings.Contains(r.Summary(), "no throughput knee") {
		t.Errorf("Summary() = %q", r.Summary())
	}
}

func TestPointOf(t *testing.T) {
	res := ScenarioResult{Name: "s", Clients: 8, OpsPerSec: 123, Lat: &Latencies{}}
	res.Lat.All.Observe(1000)
	p := PointOf(res)
	if p.Clients != 8 || p.OpsPerSec != 123 || p.P99 <= 0 {
		t.Errorf("PointOf = %+v", p)
	}
}
