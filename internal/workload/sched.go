package workload

import "github.com/quartz-emu/quartz/internal/sim"

// Per-worker next-due pickers. The engine owns clients as flat parallel
// slices indexed by local position i (global client c = w + i*pool); the
// pickers below decide which position is served next. All of them reproduce
// the reference rule exactly — earliest due time wins, ties go to the lowest
// position (equivalently the lowest global client index, since global order
// is position order within one worker) — so the served op sequence, and with
// it every simulated timestamp, is identical whichever picker runs. That
// equivalence is pinned by TestSchedulerEquivalence.
//
// Cost per pick: the reference scan is O(owned); the 4-ary heap is
// O(log4 owned); the open-loop calendar and the closed-loop zero-think FIFO
// are O(1). At a million clients over a 16-thread pool an owned set is
// 65 536 clients, so the difference is the whole ballgame.

// schedMode selects the picker. The zero value picks automatically: the
// calendar for open-loop fixed arrivals, the FIFO ring for closed-loop
// zero-think, the heap otherwise. The forced modes exist for the
// equivalence tests.
type schedMode uint8

const (
	schedAuto   schedMode = iota
	schedHeap             // force the 4-ary heap even where a fast path applies
	schedLinear           // reference O(owned) scan (the pre-flattening picker)
)

// heap4 is a 4-ary min-heap of local client positions keyed by
// (due[pos], pos) — lexicographic, so equal due times pop in position order,
// matching the reference scan's lowest-position-wins tie-break. The 4-ary
// layout halves a binary heap's depth and keeps three of four children on
// the parent's cache line pair.
type heap4 struct {
	idx []int32
	due []sim.Time // the worker's due vector (shared, not owned)
}

func (h *heap4) len() int { return len(h.idx) }

func (h *heap4) less(a, b int32) bool {
	da, db := h.due[a], h.due[b]
	return da < db || (da == db && a < b)
}

// resetAll fills the heap with positions 0..n-1 and restores heap order.
func (h *heap4) resetAll(n int32) {
	h.idx = h.idx[:0]
	for i := int32(0); i < n; i++ {
		h.idx = append(h.idx, i)
	}
	h.heapify()
}

// heapify establishes heap order bottom-up in O(n).
func (h *heap4) heapify() {
	for k := (len(h.idx) - 2) / 4; k >= 0; k-- {
		h.siftDown(k)
	}
}

// min reports the position with the smallest (due, position) key.
func (h *heap4) min() int32 { return h.idx[0] }

// fixMin restores heap order after the root's due time changed (the served
// client's next due is never earlier than its previous one, so sifting down
// suffices).
func (h *heap4) fixMin() { h.siftDown(0) }

// popMin removes the root (a client that finished its per-phase quota).
func (h *heap4) popMin() {
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

func (h *heap4) siftDown(k int) {
	n := len(h.idx)
	for {
		first := 4*k + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.less(h.idx[c], h.idx[best]) {
				best = c
			}
		}
		if !h.less(h.idx[best], h.idx[k]) {
			return
		}
		h.idx[k], h.idx[best] = h.idx[best], h.idx[k]
		k = best
	}
}

// fifoRing is the O(1) picker for the closed-loop zero-think case: a served
// client's next due is its completion time, which simulated-time
// monotonicity puts at or past every other owned client's due, so the
// earliest-due client is simply the least recently served one. The ring
// holds positions in (due, position) order; the engine guards every
// re-append and falls back to the heap if an op that completed in zero
// simulated time would break the order (see worker.runFIFO).
type fifoRing struct {
	buf  []int32 // capacity == owned count; at most that many queued
	head int32
	size int32
}

// reset fills the ring with positions 0..n-1 — the correct (due, position)
// order at phase start, when every due time is the phase start time.
func (f *fifoRing) reset(n int32) {
	f.buf = f.buf[:n]
	for i := int32(0); i < n; i++ {
		f.buf[i] = i
	}
	f.head, f.size = 0, n
}

// pop removes and returns the front position.
func (f *fifoRing) pop() int32 {
	i := f.buf[f.head]
	f.head++
	if f.head == int32(len(f.buf)) {
		f.head = 0
	}
	f.size--
	return i
}

// push appends a position at the back.
func (f *fifoRing) push(i int32) {
	p := f.head + f.size
	if n := int32(len(f.buf)); p >= n {
		p -= n
	}
	f.buf[p] = i
	f.size++
}

// back reports the most recently appended position (size must be > 0).
func (f *fifoRing) back() int32 {
	p := f.head + f.size - 1
	if n := int32(len(f.buf)); p >= n {
		p -= n
	}
	return f.buf[p]
}

// drain appends the ring's contents in queue order to dst and empties the
// ring (the heap-fallback handoff).
func (f *fifoRing) drain(dst []int32) []int32 {
	for f.size > 0 {
		dst = append(dst, f.pop())
	}
	return dst
}
