package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %g, want sqrt(2.5)", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestRelErr(t *testing.T) {
	tests := []struct {
		got, want, expect float64
	}{
		{110, 100, 0.1},
		{90, 100, 0.1},
		{100, 100, 0},
		{0, 0, 0},
		{-110, -100, 0.1},
	}
	for _, tt := range tests {
		if got := RelErr(tt.got, tt.want); math.Abs(got-tt.expect) > 1e-12 {
			t.Errorf("RelErr(%g,%g) = %g, want %g", tt.got, tt.want, got, tt.expect)
		}
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) not +Inf")
	}
}

func TestSignedErr(t *testing.T) {
	if got := SignedErr(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("SignedErr(90,100) = %g, want -0.1", got)
	}
	if got := SignedErr(120, 100); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("SignedErr(120,100) = %g, want 0.2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %g, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negative input not NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(empty) not NaN")
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			// Bound magnitudes so the sum cannot overflow; the summary is
			// used on measurement data, not extreme-float corner cases.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Stddev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
