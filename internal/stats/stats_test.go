package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %g, want sqrt(2.5)", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestRelErr(t *testing.T) {
	tests := []struct {
		got, want, expect float64
	}{
		{110, 100, 0.1},
		{90, 100, 0.1},
		{100, 100, 0},
		{0, 0, 0},
		{-110, -100, 0.1},
	}
	for _, tt := range tests {
		if got := RelErr(tt.got, tt.want); math.Abs(got-tt.expect) > 1e-12 {
			t.Errorf("RelErr(%g,%g) = %g, want %g", tt.got, tt.want, got, tt.expect)
		}
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) not +Inf")
	}
}

func TestSignedErr(t *testing.T) {
	if got := SignedErr(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("SignedErr(90,100) = %g, want -0.1", got)
	}
	if got := SignedErr(120, 100); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("SignedErr(120,100) = %g, want 0.2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %g, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negative input not NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(empty) not NaN")
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			// Bound magnitudes so the sum cannot overflow; the summary is
			// used on measurement data, not extreme-float corner cases.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Stddev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	xs := []float64{4.5, -1, 0, 12.25, 3, 3, 8.75}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	want := Summarize(xs)
	got := a.Summary()
	if a.N() != len(xs) || got.N != want.N || got.Mean != want.Mean ||
		got.Min != want.Min || got.Max != want.Max {
		t.Errorf("accumulator summary = %+v, want %+v", got, want)
	}
	if math.Abs(got.Stddev-want.Stddev) > 1e-12*want.Stddev {
		t.Errorf("stddev = %g, want %g", got.Stddev, want.Stddev)
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if s := a.Summary(); s != (Summary{}) {
		t.Errorf("empty accumulator summary = %+v", s)
	}
	a.Add(7)
	if s := a.Summary(); s.N != 1 || s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.Stddev != 0 {
		t.Errorf("single accumulator summary = %+v", s)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	for split := 0; split <= len(xs); split++ {
		var lo, hi Accumulator
		for _, x := range xs[:split] {
			lo.Add(x)
		}
		for _, x := range xs[split:] {
			hi.Add(x)
		}
		lo.Merge(hi)
		want := Summarize(xs)
		got := lo.Summary()
		if got.N != want.N || math.Abs(got.Mean-want.Mean) > 1e-12 ||
			got.Min != want.Min || got.Max != want.Max ||
			math.Abs(got.Stddev-want.Stddev) > 1e-12 {
			t.Errorf("split %d: merged summary = %+v, want %+v", split, got, want)
		}
	}
}

func TestAccumulatorMergeProperty(t *testing.T) {
	// Bound magnitudes: near math.MaxFloat64 the running sums overflow
	// differently depending on addition order, which isn't the property
	// under test.
	ok := func(x float64) bool { return !math.IsNaN(x) && math.Abs(x) < 1e100 }
	f := func(a, b []float64) bool {
		var whole, left, right Accumulator
		for _, x := range a {
			if !ok(x) {
				return true
			}
			whole.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			if !ok(x) {
				return true
			}
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(right)
		w, m := whole.Summary(), left.Summary()
		if w.N != m.N || w.Min != m.Min || w.Max != m.Max {
			return false
		}
		scale := math.Max(1, math.Abs(w.Mean))
		return math.Abs(w.Mean-m.Mean) <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
