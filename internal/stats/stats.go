// Package stats provides the small statistical helpers the experiment
// harness uses: summaries over repeated trials and relative-error
// computation against reference measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Stddev float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4g min=%.4g max=%.4g sd=%.3g n=%d", s.Mean, s.Min, s.Max, s.Stddev, s.N)
}

// Accumulator is a merge-friendly streaming summary: samples are added one
// at a time (or whole accumulators merged), without retaining them. Mean,
// min and max match Summarize exactly for the same insertion order; the
// variance uses Welford/Chan updates and can differ from Summarize's
// two-pass result by floating-point rounding.
type Accumulator struct {
	n        int
	sum      float64
	min, max float64
	mean, m2 float64 // Welford running mean and sum of squared deviations
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = math.Inf(1), math.Inf(-1)
	}
	a.n++
	a.sum += x
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds another accumulator into a (Chan et al.'s parallel variance
// combination), so per-worker partial summaries reduce to the whole-sample
// summary.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := float64(a.n + b.n)
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / n
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/n
	a.n += b.n
	a.sum += b.sum
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// N reports the number of samples added.
func (a Accumulator) N() int { return a.n }

// Summary finalizes the accumulated statistics. An empty accumulator yields
// a zero Summary, as Summarize does for an empty sample.
func (a Accumulator) Summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	s := Summary{N: a.n, Mean: a.sum / float64(a.n), Min: a.min, Max: a.max}
	if a.n > 1 {
		s.Stddev = math.Sqrt(a.m2 / float64(a.n-1))
	}
	return s
}

// RelErr reports |got-want|/|want| (0 when want is 0 and got is 0; +Inf when
// only want is 0).
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// SignedErr reports (got-want)/|want|: negative when the measurement
// undershoots the reference.
func SignedErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (got - want) / math.Abs(want)
}

// Percentile returns the p-th percentile (0..100) of xs by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// GeoMean returns the geometric mean of positive xs (NaN if any x <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
