// Package stats provides the small statistical helpers the experiment
// harness uses: summaries over repeated trials and relative-error
// computation against reference measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Stddev float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4g min=%.4g max=%.4g sd=%.3g n=%d", s.Mean, s.Min, s.Max, s.Stddev, s.N)
}

// RelErr reports |got-want|/|want| (0 when want is 0 and got is 0; +Inf when
// only want is 0).
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// SignedErr reports (got-want)/|want|: negative when the measurement
// undershoots the reference.
func SignedErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (got - want) / math.Abs(want)
}

// Percentile returns the p-th percentile (0..100) of xs by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// GeoMean returns the geometric mean of positive xs (NaN if any x <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
