package perf

import "fmt"

// AccessMode is how software reads the counters.
type AccessMode int

// Counter access modes. The paper (§3.2) measures ~2,000 cycles to read the
// model's counters with rdpmc from user mode versus ~30,000 cycles through
// virtualized frameworks (perf, PAPI) that trap into the kernel — the
// difference that makes epoch overhead amortizable.
const (
	RDPMC AccessMode = iota + 1
	PAPI
)

func (m AccessMode) String() string {
	switch m {
	case RDPMC:
		return "rdpmc"
	case PAPI:
		return "papi"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// ReadCostCycles reports the core cycles consumed by reading n counters in
// the given mode.
func ReadCostCycles(mode AccessMode, n int) int64 {
	switch mode {
	case PAPI:
		return int64(n) * 7500
	default:
		return int64(n) * 500
	}
}

// Counters is one core's PMC bank. The simulated memory hierarchy feeds it
// ground-truth events; reads apply the family fidelity model, so software
// observes realistically imperfect values.
type Counters struct {
	family   Family
	fidelity Fidelity
	enabled  bool

	stallCycles float64 // architectural (bias- and noise-distorted) count
	trueStall   float64 // ground-truth accumulation, for validation only
	l3Hit       uint64
	l3MissLoc   uint64
	l3MissRem   uint64

	// Store-side counts for the asymmetric write model. These are exact
	// (no fidelity distortion): retirement counters for stores are precise
	// on real hardware, and keeping them off the noise sequence means the
	// read-path pseudo-noise stream is bit-identical whether or not the
	// write model observes them.
	stores       uint64
	storeMissLoc uint64
	storeMissRem uint64

	sampleSeq uint64 // advances per accumulation; drives pseudo-noise
}

// NewCounters builds a counter bank for family f with fidelity fid.
func NewCounters(f Family, fid Fidelity) *Counters {
	return &Counters{family: f, fidelity: fid}
}

// Family reports the counter bank's processor family.
func (c *Counters) Family() Family { return c.family }

// SetEnabled turns event counting on or off (the kernel module enables
// counting after programming the events).
func (c *Counters) SetEnabled(on bool) { c.enabled = on }

// Enabled reports whether events are being counted.
func (c *Counters) Enabled() bool { return c.enabled }

// AddStallCycles accumulates memory stall cycles (loads pending beyond L2).
// The family fidelity distortion — a multiplicative bias plus bounded
// pseudo-noise — applies to each increment: real counters mis-attribute
// *activity* (what gets counted during an interval), so their error scales
// with the increment, not with the cumulative register value.
func (c *Counters) AddStallCycles(cycles float64) {
	if !c.enabled || cycles <= 0 {
		return
	}
	c.trueStall += cycles
	v := cycles * c.fidelity.StallBias
	if c.fidelity.StallNoise > 0 {
		c.sampleSeq++
		v *= 1 + c.fidelity.StallNoise*noiseUnit(c.sampleSeq)
	}
	if v > 0 {
		c.stallCycles += v
	}
}

// CountL3Hit records a load served by the last-level cache.
func (c *Counters) CountL3Hit() {
	if c.enabled {
		c.l3Hit++
	}
}

// CountL3Miss records a load served by DRAM on the given NUMA relationship.
func (c *Counters) CountL3Miss(remote bool) {
	if !c.enabled {
		return
	}
	if remote {
		c.l3MissRem++
	} else {
		c.l3MissLoc++
	}
}

// CountStore records a retired store uop.
func (c *Counters) CountStore() {
	if c.enabled {
		c.stores++
	}
}

// CountStoreMiss records a store (RFO) served by memory on the given NUMA
// relationship.
func (c *Counters) CountStoreMiss(remote bool) {
	if !c.enabled {
		return
	}
	if remote {
		c.storeMissRem++
	} else {
		c.storeMissLoc++
	}
}

// Read returns the architectural value of event e as user software would see
// it via rdpmc, including the family fidelity distortion on stall counts.
// Events the family cannot count (Table 1) return an error.
func (c *Counters) Read(e Event) (uint64, error) {
	if _, ok := EventName(c.family, e); !ok {
		return 0, fmt.Errorf("perf: event %v not available on %v", e, c.family)
	}
	switch e {
	case EventStallsL2Pending:
		return uint64(c.stallCycles), nil
	case EventL3Hit:
		return c.l3Hit, nil
	case EventL3Miss:
		return c.l3MissLoc + c.l3MissRem, nil
	case EventL3MissLocal:
		return c.l3MissLoc, nil
	case EventL3MissRemote:
		return c.l3MissRem, nil
	case EventStoresRetired:
		return c.stores, nil
	case EventStoreMiss:
		return c.storeMissLoc + c.storeMissRem, nil
	case EventStoreMissLocal:
		return c.storeMissLoc, nil
	case EventStoreMissRemote:
		return c.storeMissRem, nil
	default:
		return 0, fmt.Errorf("perf: unknown event %v", e)
	}
}

// TrueStallCycles exposes the undistorted stall accumulation for validation
// harnesses and tests; real software cannot observe this.
func (c *Counters) TrueStallCycles() float64 { return c.trueStall }

// Reset zeroes all counts (used between experiment trials).
func (c *Counters) Reset() {
	c.stallCycles, c.trueStall = 0, 0
	c.l3Hit, c.l3MissLoc, c.l3MissRem = 0, 0, 0
	c.stores, c.storeMissLoc, c.storeMissRem = 0, 0, 0
}

// noiseUnit maps a sequence number to a deterministic value in [-1, 1] via a
// splitmix64 hash, giving reproducible "measurement noise".
func noiseUnit(seq uint64) float64 {
	z := seq + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z)/float64(1<<63) - 1
}
