package perf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTable1EventNames(t *testing.T) {
	// Spot-check the exact mnemonics from the paper's Table 1.
	tests := []struct {
		family Family
		event  Event
		want   string
	}{
		{SandyBridge, EventStallsL2Pending, "CYCLE_ACTIVITY:STALLS_L2_PENDING"},
		{SandyBridge, EventL3Hit, "MEM_LOAD_UOPS_RETIRED:L3_HIT"},
		{SandyBridge, EventL3Miss, "MEM_LOAD_UOPS_MISC_RETIRED:LLC_MISS"},
		{IvyBridge, EventL3Hit, "MEM_LOAD_UOPS_LLC_HIT_RETIRED:XSNP_NONE"},
		{IvyBridge, EventL3MissLocal, "MEM_LOAD_UOPS_LLC_MISS_RETIRED:LOCAL_DRAM"},
		{IvyBridge, EventL3MissRemote, "MEM_LOAD_UOPS_LLC_MISS_RETIRED:REMOTE_DRAM"},
		{Haswell, EventL3Hit, "MEM_LOAD_UOPS_L3_HIT_RETIRED:XSNP_NONE"},
		{Haswell, EventL3MissLocal, "MEM_LOAD_UOPS_L3_MISS_RETIRED:LOCAL_DRAM"},
	}
	for _, tt := range tests {
		got, ok := EventName(tt.family, tt.event)
		if !ok || got != tt.want {
			t.Errorf("EventName(%v, %v) = %q/%v, want %q", tt.family, tt.event, got, ok, tt.want)
		}
	}
}

func TestTable1IvyHaswellDifferOnlyInLLCvsL3(t *testing.T) {
	// Footnote 3: Ivy Bridge and Haswell events are the same modulo the
	// "LLC" -> "L3" rename.
	for _, e := range EventsFor(IvyBridge) {
		ivy, ok1 := EventName(IvyBridge, e)
		has, ok2 := EventName(Haswell, e)
		if !ok1 || !ok2 {
			t.Fatalf("event %v missing on a family", e)
		}
		if strings.ReplaceAll(ivy, "LLC", "L3") != has {
			t.Errorf("event %v: ivy %q does not map to haswell %q via LLC->L3", e, ivy, has)
		}
	}
}

func TestUnavailableEvents(t *testing.T) {
	if _, ok := EventName(SandyBridge, EventL3MissLocal); ok {
		t.Error("Sandy Bridge must not expose local/remote miss split")
	}
	if _, ok := EventName(IvyBridge, EventL3Miss); ok {
		t.Error("Ivy Bridge programs split events, not the total-miss event")
	}
	if SplitsLocalRemote(SandyBridge) {
		t.Error("SplitsLocalRemote(SandyBridge) = true, want false")
	}
	if !SplitsLocalRemote(Haswell) {
		t.Error("SplitsLocalRemote(Haswell) = false, want true")
	}
}

func TestEventsForCounts(t *testing.T) {
	if got := len(EventsFor(SandyBridge)); got != 3 {
		t.Errorf("Sandy Bridge programs %d events, want 3", got)
	}
	// §3.3: the two-memory model needs at most four counters.
	if got := len(EventsFor(Haswell)); got != 4 {
		t.Errorf("Haswell programs %d events, want 4", got)
	}
}

func TestReadCostCycles(t *testing.T) {
	// §3.2: reading all counters via PAPI is about 8x the rdpmc cost.
	r := ReadCostCycles(RDPMC, 4)
	p := ReadCostCycles(PAPI, 4)
	if r != 2000 {
		t.Errorf("rdpmc cost = %d cycles, want 2000", r)
	}
	if p != 30000 {
		t.Errorf("PAPI cost = %d cycles, want 30000", p)
	}
	if ratio := float64(p) / float64(r); math.Abs(ratio-15) > 16 || ratio < 8 {
		t.Errorf("PAPI/rdpmc ratio = %g, want >= 8", ratio)
	}
}

func TestCountersDisabledByDefault(t *testing.T) {
	c := NewCounters(IvyBridge, Fidelity{StallBias: 1})
	c.AddStallCycles(100)
	c.CountL3Hit()
	c.CountL3Miss(false)
	if v, err := c.Read(EventL3Hit); err != nil || v != 0 {
		t.Errorf("disabled counter read = %d (%v), want 0", v, err)
	}
}

func TestCountersAccumulateAndReset(t *testing.T) {
	c := NewCounters(Haswell, Fidelity{StallBias: 1})
	c.SetEnabled(true)
	c.AddStallCycles(1234)
	c.CountL3Hit()
	c.CountL3Hit()
	c.CountL3Miss(false)
	c.CountL3Miss(true)
	c.CountL3Miss(true)

	if v, _ := c.Read(EventL3Hit); v != 2 {
		t.Errorf("L3 hits = %d, want 2", v)
	}
	if v, _ := c.Read(EventL3MissLocal); v != 1 {
		t.Errorf("local misses = %d, want 1", v)
	}
	if v, _ := c.Read(EventL3MissRemote); v != 2 {
		t.Errorf("remote misses = %d, want 2", v)
	}
	if v, _ := c.Read(EventStallsL2Pending); v != 1234 {
		t.Errorf("stalls = %d, want 1234 with unit fidelity", v)
	}
	c.Reset()
	if v, _ := c.Read(EventL3MissRemote); v != 0 {
		t.Errorf("after Reset remote misses = %d, want 0", v)
	}
	if c.TrueStallCycles() != 0 {
		t.Error("after Reset true stalls nonzero")
	}
}

func TestSandyBridgeTotalMissOnly(t *testing.T) {
	c := NewCounters(SandyBridge, DefaultFidelity(SandyBridge))
	c.SetEnabled(true)
	c.CountL3Miss(false)
	c.CountL3Miss(true)
	if v, err := c.Read(EventL3Miss); err != nil || v != 2 {
		t.Errorf("total miss = %d (%v), want 2", v, err)
	}
	if _, err := c.Read(EventL3MissLocal); err == nil {
		t.Error("Sandy Bridge local-miss read succeeded, want error")
	}
}

func TestStallBiasApplied(t *testing.T) {
	c := NewCounters(SandyBridge, Fidelity{StallBias: 1.10})
	c.SetEnabled(true)
	c.AddStallCycles(10000)
	v, err := c.Read(EventStallsL2Pending)
	if err != nil {
		t.Fatal(err)
	}
	if v < 10900 || v > 11100 {
		t.Errorf("biased stall read = %d, want ~11000", v)
	}
	if c.TrueStallCycles() != 10000 {
		t.Errorf("true stalls = %g, want 10000 (bias must not touch ground truth)", c.TrueStallCycles())
	}
}

func TestStallNoiseBoundedAndDeterministic(t *testing.T) {
	accumulate := func() []uint64 {
		c := NewCounters(Haswell, Fidelity{StallBias: 1, StallNoise: 0.05})
		c.SetEnabled(true)
		var out []uint64
		for i := 0; i < 16; i++ {
			c.AddStallCycles(1e6)
			v, err := c.Read(EventStallsL2Pending)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		}
		return out
	}
	a, b := accumulate(), accumulate()
	var prev uint64
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise is not deterministic: sample %d gave %d then %d", i, a[i], b[i])
		}
		// Each increment is 1e6 cycles +- 5%: the delta stays in band and
		// the register is monotone (counters never run backwards).
		delta := a[i] - prev
		if delta < 950_000 || delta > 1_050_000 {
			t.Errorf("noisy increment %d = %d outside +-5%% band", i, delta)
		}
		prev = a[i]
	}
}

func TestDefaultFidelityOrdering(t *testing.T) {
	// The paper's accuracy ordering: Ivy Bridge best, Haswell middle,
	// Sandy Bridge worst.
	sb, ib, hw := DefaultFidelity(SandyBridge), DefaultFidelity(IvyBridge), DefaultFidelity(Haswell)
	devSB := math.Abs(sb.StallBias-1) + sb.StallNoise
	devIB := math.Abs(ib.StallBias-1) + ib.StallNoise
	devHW := math.Abs(hw.StallBias-1) + hw.StallNoise
	if !(devIB < devHW && devHW < devSB) {
		t.Errorf("fidelity deviation ordering violated: SB=%g IB=%g HW=%g", devSB, devIB, devHW)
	}
}

func TestNoiseUnitRangeProperty(t *testing.T) {
	prop := func(seq uint64) bool {
		v := noiseUnit(seq)
		return v >= -1 && v <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if SandyBridge.String() != "Sandy Bridge" || Haswell.String() != "Haswell" {
		t.Error("Family.String mismatch")
	}
	if EventStallsL2Pending.String() != "L2_stalls" {
		t.Error("Event.String mismatch")
	}
	if RDPMC.String() != "rdpmc" || PAPI.String() != "papi" {
		t.Error("AccessMode.String mismatch")
	}
}
