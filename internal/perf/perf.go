// Package perf models per-core hardware performance-monitoring counters
// (PMCs): the family-specific event sets of the paper's Table 1, the cost of
// reading counters (rdpmc versus virtualized frameworks like perf/PAPI), and
// per-family fidelity quirks.
//
// The paper notes that the Sandy Bridge stall counters are "less reliable"
// than Ivy Bridge / Haswell ones, which is why its emulation errors are
// larger (up to 9% versus 2%). We model that as a deterministic
// multiplicative bias plus bounded pseudo-noise applied when counters are
// read, so the emulator — which only ever sees counter values — inherits
// family-shaped inaccuracy exactly as on real hardware.
package perf

import "fmt"

// Family identifies an Intel Xeon processor generation.
type Family int

// Supported processor families (the three the paper implements).
const (
	SandyBridge Family = iota + 1
	IvyBridge
	Haswell
)

func (f Family) String() string {
	switch f {
	case SandyBridge:
		return "Sandy Bridge"
	case IvyBridge:
		return "Ivy Bridge"
	case Haswell:
		return "Haswell"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Event identifies a hardware performance event used by the Quartz model.
type Event int

// Model events. Sandy Bridge exposes only the total L3 miss count; Ivy
// Bridge and Haswell split misses into local and remote DRAM (Table 1),
// which is what enables the two-memory-type (DRAM+NVM) mode.
const (
	EventStallsL2Pending Event = iota + 1 // stall cycles with L2-pending loads
	EventL3Hit                            // loads served by the last-level cache
	EventL3Miss                           // loads missing LLC (total)
	EventL3MissLocal                      // LLC misses served by local DRAM
	EventL3MissRemote                     // LLC misses served by remote DRAM

	// Store-side events for the asymmetric read/write model (Koshiba et
	// al.). These are NOT part of the paper's Table 1 set — EventsFor
	// excludes them so the read-only model programs exactly the events the
	// paper lists; StoreEventsFor reports the extra set.
	EventStoresRetired   // retired store uops
	EventStoreMiss       // stores missing LLC (total, RFO to memory)
	EventStoreMissLocal  // store misses served by local DRAM
	EventStoreMissRemote // store misses served by remote DRAM
)

func (e Event) String() string {
	switch e {
	case EventStallsL2Pending:
		return "L2_stalls"
	case EventL3Hit:
		return "L3_hit"
	case EventL3Miss:
		return "L3_miss"
	case EventL3MissLocal:
		return "L3_miss_local"
	case EventL3MissRemote:
		return "L3_miss_remote"
	case EventStoresRetired:
		return "stores"
	case EventStoreMiss:
		return "store_miss"
	case EventStoreMissLocal:
		return "store_miss_local"
	case EventStoreMissRemote:
		return "store_miss_remote"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// EventName reports the Intel mnemonic programmed for event e on family f,
// reproducing the paper's Table 1. ok is false if the family cannot count e.
func EventName(f Family, e Event) (name string, ok bool) {
	switch f {
	case SandyBridge:
		switch e {
		case EventStallsL2Pending:
			return "CYCLE_ACTIVITY:STALLS_L2_PENDING", true
		case EventL3Hit:
			return "MEM_LOAD_UOPS_RETIRED:L3_HIT", true
		case EventL3Miss:
			return "MEM_LOAD_UOPS_MISC_RETIRED:LLC_MISS", true
		case EventStoresRetired:
			return "MEM_UOPS_RETIRED:ALL_STORES", true
		case EventStoreMiss:
			return "OFFCORE_RESPONSE:DMND_RFO:LLC_MISS", true
		}
	case IvyBridge:
		switch e {
		case EventStallsL2Pending:
			return "CYCLE_ACTIVITY:STALLS_L2_PENDING", true
		case EventL3Hit:
			return "MEM_LOAD_UOPS_LLC_HIT_RETIRED:XSNP_NONE", true
		case EventL3MissLocal:
			return "MEM_LOAD_UOPS_LLC_MISS_RETIRED:LOCAL_DRAM", true
		case EventL3MissRemote:
			return "MEM_LOAD_UOPS_LLC_MISS_RETIRED:REMOTE_DRAM", true
		case EventStoresRetired:
			return "MEM_UOPS_RETIRED:ALL_STORES", true
		case EventStoreMissLocal:
			return "OFFCORE_RESPONSE:DMND_RFO:LLC_MISS_LOCAL", true
		case EventStoreMissRemote:
			return "OFFCORE_RESPONSE:DMND_RFO:LLC_MISS_REMOTE", true
		}
	case Haswell:
		switch e {
		case EventStallsL2Pending:
			return "CYCLE_ACTIVITY:STALLS_L2_PENDING", true
		case EventL3Hit:
			return "MEM_LOAD_UOPS_L3_HIT_RETIRED:XSNP_NONE", true
		case EventL3MissLocal:
			return "MEM_LOAD_UOPS_L3_MISS_RETIRED:LOCAL_DRAM", true
		case EventL3MissRemote:
			return "MEM_LOAD_UOPS_L3_MISS_RETIRED:REMOTE_DRAM", true
		case EventStoresRetired:
			return "MEM_UOPS_RETIRED:ALL_STORES", true
		case EventStoreMissLocal:
			return "OFFCORE_RESPONSE:DMND_RFO:L3_MISS_LOCAL", true
		case EventStoreMissRemote:
			return "OFFCORE_RESPONSE:DMND_RFO:L3_MISS_REMOTE", true
		}
	}
	return "", false
}

// EventsFor reports the event set Quartz programs on family f (Table 1).
func EventsFor(f Family) []Event {
	if f == SandyBridge {
		return []Event{EventStallsL2Pending, EventL3Hit, EventL3Miss}
	}
	return []Event{EventStallsL2Pending, EventL3Hit, EventL3MissLocal, EventL3MissRemote}
}

// StoreEventsFor reports the additional store-side events programmed when
// the asymmetric write model is enabled. Kept separate from EventsFor so the
// read-only model's counter set — and its per-epoch read cost — is exactly
// the paper's Table 1.
func StoreEventsFor(f Family) []Event {
	if f == SandyBridge {
		return []Event{EventStoresRetired, EventStoreMiss}
	}
	return []Event{EventStoresRetired, EventStoreMissLocal, EventStoreMissRemote}
}

// SplitsLocalRemote reports whether family f can attribute LLC misses to
// local versus remote DRAM, the prerequisite for two-memory-type emulation.
func SplitsLocalRemote(f Family) bool { return f != SandyBridge }

// Fidelity models counter trustworthiness per family.
type Fidelity struct {
	// StallBias multiplies the stall-cycle counter at read time (1.0 =
	// perfect). Real STALLS_L2_PENDING implementations over- or
	// under-count stalls attributable to memory.
	StallBias float64
	// StallNoise is the amplitude of deterministic pseudo-noise applied to
	// stall reads, as a fraction of the value.
	StallNoise float64
}

// DefaultFidelity reports the fidelity used for family f. The values are
// chosen so that the emulator's end-to-end validation errors land in the
// per-family bands the paper reports (Fig. 12: <9% Sandy Bridge, <2% Ivy
// Bridge, <6% Haswell).
func DefaultFidelity(f Family) Fidelity {
	switch f {
	case SandyBridge:
		return Fidelity{StallBias: 1.055, StallNoise: 0.02}
	case IvyBridge:
		return Fidelity{StallBias: 1.004, StallNoise: 0.004}
	case Haswell:
		return Fidelity{StallBias: 1.03, StallNoise: 0.01}
	default:
		return Fidelity{StallBias: 1.0}
	}
}
