package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPromName covers the exposition-grammar sanitization.
func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"quartz.epochs.closed", "quartz_epochs_closed"},
		{"already_legal:name", "already_legal:name"},
		{"9starts.with.digit", "_9starts_with_digit"},
		{"spaces and-dashes", "spaces_and_dashes"},
	}
	for _, c := range cases {
		if got := promName(c.in); got != c.want {
			t.Errorf("promName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition byte-for-byte for a fixed
// registry: sorted sanitized names, counter/gauge samples, and a histogram's
// cumulative _bucket/_sum/_count triplet over power-of-two bounds.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("quartz.epochs.closed").Add(3)
	reg.Gauge("obs.ledger.total").Set(2.5)
	h := reg.Histogram("quartz.epoch.len_ns")
	h.Observe(1)   // bucket le="1"
	h.Observe(10)  // bucket le="16"
	h.Observe(100) // bucket le="128"

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE obs_ledger_total gauge",
		"obs_ledger_total 2.5",
		"# TYPE quartz_epoch_len_ns histogram",
		`quartz_epoch_len_ns_bucket{le="1"} 1`,
		`quartz_epoch_len_ns_bucket{le="16"} 2`,
		`quartz_epoch_len_ns_bucket{le="128"} 3`,
		`quartz_epoch_len_ns_bucket{le="+Inf"} 3`,
		"quartz_epoch_len_ns_sum 111",
		"quartz_epoch_len_ns_count 3",
		"# TYPE quartz_epochs_closed counter",
		"quartz_epochs_closed 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusEmptyHistogram: a registered-but-unobserved histogram
// still emits the mandatory +Inf bucket and zero sum/count.
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("t.empty")
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE t_empty histogram",
		`t_empty_bucket{le="+Inf"} 0`,
		"t_empty_sum 0",
		"t_empty_count 0",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("empty histogram exposition:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRecorderWritePrometheus: the recorder-level export refreshes the
// ledger gauges (as WriteMetricsJSON does) and renders without error; a nil
// recorder is a no-op.
func TestRecorderWritePrometheus(t *testing.T) {
	r := New(8)
	r.EpochClosed(EpochRecord{Reason: "max"})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"quartz_epochs_closed 1",
		"# TYPE obs_ledger_total gauge",
		"obs_ledger_total 1",
		`quartz_epoch_len_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("recorder exposition missing %q:\n%s", want, out)
		}
	}
	var nilRec *Recorder
	if err := nilRec.WritePrometheus(&buf); err != nil {
		t.Errorf("nil recorder WritePrometheus: %v", err)
	}
}
