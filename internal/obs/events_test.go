package obs

import (
	"sync"
	"testing"
	"time"
)

// TestEventsMatchLedgerOrder: epoch events must arrive in exactly the
// sequence order the ledger assigned, even when many goroutines close
// epochs concurrently — publication happens under the ledger lock.
func TestEventsMatchLedgerOrder(t *testing.T) {
	r := New(0)
	ch, cancel := r.Events(4096)
	defer cancel()

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.EpochClosed(fullRecord(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()

	want := uint64(0)
	deadline := time.After(5 * time.Second)
	for want < workers*perWorker {
		select {
		case ev := <-ch:
			if ev.Kind != "epoch" {
				continue // interleaved inject events are fine
			}
			if ev.Seq != want {
				t.Fatalf("epoch event seq %d arrived out of order, want %d", ev.Seq, want)
			}
			want++
		case <-deadline:
			t.Fatalf("timed out after %d/%d epoch events", want, workers*perWorker)
		}
	}
	if dropped := r.EventsDropped(); dropped != 0 {
		t.Errorf("%d events dropped with a large subscriber buffer", dropped)
	}
}

// TestEventsInjectAndKinds: an epoch with injected delay publishes a
// paired inject event; throttle and job events carry their payloads.
func TestEventsInjectAndKinds(t *testing.T) {
	r := New(0)
	ch, cancel := r.Events(64)
	defer cancel()

	rec := fullRecord(3) // Injected > 0 for i=3
	if rec.Injected <= 0 {
		t.Fatal("fixture must have injected delay")
	}
	r.EpochClosed(rec)
	r.ThrottleProgrammed("/sys/devices/t0")
	r.JobDone("exp-1/j2", "ok", 2, 1500*time.Millisecond)

	wantKinds := []string{"epoch", "inject", "throttle", "job"}
	for _, want := range wantKinds {
		select {
		case ev := <-ch:
			if ev.Kind != want {
				t.Fatalf("got kind %q, want %q", ev.Kind, want)
			}
			switch want {
			case "inject":
				if ev.InjectedNS != rec.Injected.Nanoseconds() {
					t.Errorf("inject event carries %v ns, want %v", ev.InjectedNS, rec.Injected)
				}
			case "throttle":
				if ev.Path == "" {
					t.Error("throttle event missing path")
				}
			case "job":
				if ev.Job != "exp-1/j2" || ev.Status != "ok" || ev.Attempts != 2 {
					t.Errorf("job event payload: %+v", ev)
				}
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for %q event", want)
		}
	}
}

// TestEventsNoSubscribersIsFree: with nobody subscribed, publishing drops
// nothing and counts nothing — the hub is inert.
func TestEventsNoSubscribersIsFree(t *testing.T) {
	r := New(0)
	for i := 0; i < 100; i++ {
		r.EpochClosed(fullRecord(i))
	}
	if got := r.EventsDropped(); got != 0 {
		t.Errorf("EventsDropped = %d with no subscribers, want 0", got)
	}
}

// TestEventsSlowSubscriberDrops: a full subscriber buffer must never block
// EpochClosed; overflow is counted, not waited on.
func TestEventsSlowSubscriberDrops(t *testing.T) {
	r := New(0)
	_, cancel := r.Events(1) // tiny buffer, never read
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			r.EpochClosed(fullRecord(i))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("EpochClosed blocked on a slow subscriber")
	}
	if r.EventsDropped() == 0 {
		t.Error("overflow not counted as dropped")
	}
}

// TestEventsNilRecorder: the nil receiver returns a closed-ish no-op
// subscription without panicking.
func TestEventsNilRecorder(t *testing.T) {
	var r *Recorder
	ch, cancel := r.Events(0)
	cancel()
	select {
	case _, ok := <-ch:
		if ok {
			t.Error("nil recorder delivered an event")
		}
	default:
	}
}
