package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

// TestAppendJSONRecordMatchesStdlib is the contract behind the zero-alloc
// JSONL encoder: its output must be byte-identical to json.Marshal for any
// EpochRecord, so readers (jq, DecodeLedger, external tooling) cannot tell
// the encoders apart. Exercises omitempty boundaries, the float formatting
// regimes, and strings that need escaping.
func TestAppendJSONRecordMatchesStdlib(t *testing.T) {
	floats := []float64{
		0, 1, -1, 0.1, -0.25, 1.5e6, 11000,
		1e-6, 9.999e-7, 1e-7, -1e-7, 5e-7, // 'f'→'e' boundary below 1e-6
		1e21, 9.99e20, -1e21, 2.5e22, // 'f'→'e' boundary at 1e21
		1e-9, -3.25e-12, 1e300, 4.9e-324, math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	strs := []string{
		"", "main", "worker-12", "bench",
		`quo"te`, `back\slash`, "<html>&", "line\nbreak", "tab\there",
		"\x00ctl", "caf\u00e9", "\u2028sep", "emoji \U0001F600",
	}
	rng := rand.New(rand.NewSource(1))
	check := func(rec EpochRecord) {
		t.Helper()
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got := appendJSONRecord(nil, rec)
		if !bytes.Equal(got, want) {
			t.Errorf("encoder mismatch for %+v:\n got %s\nwant %s", rec, got, want)
		}
	}

	check(EpochRecord{}) // every omitempty field at its zero value
	for i := 0; i < 500; i++ {
		rec := EpochRecord{
			Seq:            rng.Uint64(),
			PID:            rng.Intn(100),
			TID:            rng.Intn(64) - 2,
			Thread:         strs[rng.Intn(len(strs))],
			Start:          sim.Time(rng.Int63n(1e15)),
			End:            sim.Time(rng.Int63n(1e15)),
			Reason:         []string{"max", "sync", "end"}[rng.Intn(3)],
			StallCycles:    rng.Uint64() >> uint(rng.Intn(64)),
			L3Hit:          uint64(rng.Int63n(1e9)),
			L3MissLocal:    uint64(rng.Int63n(1e9)),
			L3MissRemote:   uint64(rng.Int63n(3)) * uint64(rng.Int63n(1e9)),
			LDMStallCycles: floats[rng.Intn(len(floats))],
			Stores:         uint64(rng.Int63n(2)) * uint64(rng.Int63n(1e9)),
			StoreMissLocal: uint64(rng.Int63n(2)) * uint64(rng.Int63n(1e9)),
			StoreMissRem:   uint64(rng.Int63n(3)) * uint64(rng.Int63n(1e9)),
			WriteDelay:     sim.Time(rng.Int63n(2)) * sim.Time(rng.Int63n(1e12)),
			Delay:          sim.Time(rng.Int63n(1e12)),
			Injected:       sim.Time(rng.Int63n(1e12)),
			InjectStart:    sim.Time(rng.Int63n(2)) * sim.Time(rng.Int63n(1e15)),
			InjectEnd:      sim.Time(rng.Int63n(2)) * sim.Time(rng.Int63n(1e15)),
			Overhead:       sim.Time(rng.Int63n(1e9)),
			Carry:          sim.Time(rng.Int63n(1e9) - 5e8),
		}
		check(rec)
	}
	// Random float bit patterns, skipping the NaN/Inf space json refuses.
	for i := 0; i < 2000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		check(EpochRecord{LDMStallCycles: f, Reason: "max"})
	}
}

// TestAppendRecordBinaryMatchesTwoBuffer pins the in-place length-prefix
// encoding against the obvious two-buffer construction.
func TestAppendRecordBinaryMatchesTwoBuffer(t *testing.T) {
	recs := []EpochRecord{
		{},
		benchRecord,
		{Seq: 1 << 60, Thread: "long-thread-name-to-grow-the-payload",
			Reason: "sync", LDMStallCycles: -1.5, Carry: -sim.Millisecond},
	}
	for _, rec := range recs {
		var want []byte
		payload := appendBinaryPayload(nil, rec)
		want = appendUvarintTest(want, uint64(len(payload)))
		want = append(want, payload...)

		got := appendRecord(nil, rec, FormatBinary)
		if !bytes.Equal(got, want) {
			t.Errorf("binary framing mismatch for %+v:\n got %x\nwant %x", rec, got, want)
		}
		// And prefix-encoding onto a non-empty buffer must not disturb it.
		pre := []byte("prefix")
		got2 := appendRecord(append([]byte(nil), pre...), rec, FormatBinary)
		if !bytes.Equal(got2, append(append([]byte(nil), pre...), want...)) {
			t.Errorf("binary framing with prefix mismatch for %+v", rec)
		}
	}
}

func appendUvarintTest(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// TestLedgerAppendNoAllocs is the allocation gate for the sink-attached
// epoch-close path: once the tail ring and encoder scratch have reached
// steady state, appending a record must not allocate in either format.
func TestLedgerAppendNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	for _, format := range []SinkFormat{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			r := New(0)
			if err := r.AttachSink(NewWriterSink(discard{}, format), 64); err != nil {
				t.Fatal(err)
			}
			// Warm up: fill the tail ring and grow the encoder scratch.
			for i := 0; i < 256; i++ {
				r.EpochClosed(benchRecord)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				r.EpochClosed(benchRecord)
			}); allocs != 0 {
				t.Errorf("steady-state EpochClosed with %s sink: %v allocs/op, want 0", format, allocs)
			}
			if err := r.CloseSink(); err != nil {
				t.Fatal(err)
			}
			if err := r.SinkErr(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
