package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestQuantileUniform checks the bucket-midpoint estimator against a known
// uniform distribution. Values 1..1000 land in power-of-two buckets; the
// estimator returns the midpoint of the bucket containing the rank, so the
// expected values are derivable by hand:
//
//	p50: rank 500 falls in bucket [256,512) (cumulative 511) → midpoint 384
//	p95: rank 950 falls in bucket [512,1024) → midpoint 768
//	p99: rank 990 falls in the same bucket → midpoint 768
func TestQuantileUniform(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.uniform")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 384},
		{0.95, 768},
		{0.99, 768},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestQuantileConstant: a degenerate distribution must clamp every quantile
// to the observed value, not report a bucket midpoint that was never seen.
func TestQuantileConstant(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.const")
	for i := 0; i < 57; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("Quantile(%v) = %v, want exactly 100 (min==max clamp)", q, got)
		}
	}
}

// TestQuantileSkewed: a heavy-tailed distribution — the p99 must land in the
// tail bucket while the p50 stays in the body.
func TestQuantileSkewed(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.skew")
	for i := 0; i < 990; i++ {
		h.Observe(10) // bucket [8,16), midpoint 12
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket [65536,131072), midpoint 98304
	}
	if got := h.Quantile(0.5); got != 12 {
		t.Errorf("p50 = %v, want 12", got)
	}
	// p99: rank 981 is still in the body bucket (cumulative 990).
	if got := h.Quantile(0.99); got != 12 {
		t.Errorf("p99 = %v, want 12 (body holds 99%%)", got)
	}
	// p99.5: rank 995 crosses into the tail; midpoint 98304 clamps to the
	// observed max 100000? No — midpoint 98304 < max, stays as-is.
	if got := h.Quantile(0.995); got != 98304 {
		t.Errorf("p99.5 = %v, want 98304", got)
	}
}

// TestQuantileEmpty: no observations → an explicit 0 at every quantile, not
// NaN and not a bucket midpoint. The snapshot path must agree, and report
// Min = 0 rather than the atomic's uninitialized placeholder.
func TestQuantileEmpty(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.empty")
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	hs := h.Snapshot()
	if hs.P50 != 0 || hs.P95 != 0 || hs.P99 != 0 {
		t.Errorf("empty snapshot quantiles = %v/%v/%v, want 0/0/0", hs.P50, hs.P95, hs.P99)
	}
	if hs.Min != 0 || hs.Max != 0 || hs.Mean != 0 {
		t.Errorf("empty snapshot min/max/mean = %v/%v/%v, want 0/0/0", hs.Min, hs.Max, hs.Mean)
	}
	if hs.quantileOf(0.5) != 0 {
		t.Errorf("empty snapshot quantileOf(0.5) = %v, want 0", hs.quantileOf(0.5))
	}
}

// TestQuantileOneSample: a single observation clamps every quantile to that
// exact value (min == max), at both extremes of q.
func TestQuantileOneSample(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.one")
	h.Observe(37)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 37 {
			t.Errorf("one-sample Quantile(%v) = %v, want 37", q, got)
		}
	}
}

// TestQuantileTwoBuckets: two observations in distinct buckets — the p50 must
// come from the low bucket (clamped up to its observed min) and the p99 from
// the high bucket (clamped down to the observed max), exercising the
// cumulative walk's bucket boundary with the smallest possible population.
func TestQuantileTwoBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.two")
	h.Observe(10)  // bucket (8,16], midpoint 12
	h.Observe(100) // bucket (64,128], midpoint 96
	if got := h.Quantile(0.5); got != 12 {
		t.Errorf("p50 = %v, want 12 (low bucket midpoint)", got)
	}
	if got := h.Quantile(0.99); got != 96 {
		t.Errorf("p99 = %v, want 96 (high bucket midpoint)", got)
	}
	// The direct path and the snapshot-derived path must agree.
	hs := h.Snapshot()
	if hs.quantileOf(0.5) != h.Quantile(0.5) || hs.quantileOf(0.99) != h.Quantile(0.99) {
		t.Errorf("snapshot quantileOf diverges from Quantile: %v/%v vs %v/%v",
			hs.quantileOf(0.5), hs.quantileOf(0.99), h.Quantile(0.5), h.Quantile(0.99))
	}
}

// TestSnapshotIncludesQuantiles: the registry snapshot and the JSON export
// both carry p50/p95/p99 alongside the buckets.
func TestSnapshotIncludesQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.snap")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	hs, ok := reg.Snapshot()["t.snap"].(HistogramSnapshot)
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.P50 != 384 || hs.P95 != 768 || hs.P99 != 768 {
		t.Errorf("snapshot quantiles = %v/%v/%v, want 384/768/768", hs.P50, hs.P95, hs.P99)
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	var got struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
	}
	if err := json.Unmarshal(decoded["t.snap"], &got); err != nil {
		t.Fatal(err)
	}
	if got.P50 != 384 || got.P95 != 768 || got.P99 != 768 {
		t.Errorf("JSON quantiles = %+v, want 384/768/768", got)
	}
}
