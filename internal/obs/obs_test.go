package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/quartz-emu/quartz/internal/sim"
)

// TestNilRecorderNoOp: every Recorder method must be callable on a nil
// receiver without panicking or allocating — the disabled path is the
// default for every emulation, so it has to be free.
func TestNilRecorderNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.Registry() != nil {
		t.Error("nil recorder has a registry")
	}
	if pid := r.RegisterProcess("x"); pid != 0 {
		t.Errorf("nil RegisterProcess = %d, want 0", pid)
	}
	r.EpochClosed(EpochRecord{Delay: sim.Microsecond})
	r.EpochSuppressed("sync")
	r.ContendedWait()
	r.KernelRun(sim.KernelStats{Spawned: 3})
	r.JobDone("job", "ok", 1, time.Second)
	if got := r.Ledger(); got != nil {
		t.Errorf("nil Ledger = %v, want nil", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("nil Dropped = %d, want 0", got)
	}
	var sb strings.Builder
	if err := r.WriteMetricsJSON(&sb); err != nil {
		t.Errorf("nil WriteMetricsJSON: %v", err)
	}
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil recorder wrote output: %q", sb.String())
	}

	rec := EpochRecord{Start: 1, End: 2, Delay: 3}
	if allocs := testing.AllocsPerRun(100, func() {
		r.EpochClosed(rec)
		r.EpochSuppressed("sync")
		r.ContendedWait()
	}); allocs != 0 {
		t.Errorf("nil recorder allocates: %.1f allocs/op", allocs)
	}
}

// TestConcurrentEpochClosesOrdered: many goroutines closing epochs against
// one recorder (the parallel-runner situation) must produce a ledger whose
// Seq values are dense and strictly increasing in append order, with no
// records lost. Run with -race.
func TestConcurrentEpochClosesOrdered(t *testing.T) {
	const goroutines = 8
	const perG = 500
	r := New(goroutines * perG)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pid := r.RegisterProcess("proc")
			for i := 0; i < perG; i++ {
				r.EpochClosed(EpochRecord{
					PID:      pid,
					TID:      g,
					Start:    sim.Time(i) * sim.Microsecond,
					End:      sim.Time(i+1) * sim.Microsecond,
					Reason:   "sync",
					Delay:    sim.Microsecond,
					Injected: sim.Microsecond / 2,
				})
				r.EpochSuppressed("sync")
				r.ContendedWait()
			}
		}(g)
	}
	wg.Wait()

	ledger := r.Ledger()
	if len(ledger) != goroutines*perG {
		t.Fatalf("ledger has %d records, want %d", len(ledger), goroutines*perG)
	}
	for i, rec := range ledger {
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has Seq %d; ledger order and close order diverged", i, rec.Seq)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}

	reg := r.Registry()
	if got := reg.Counter("quartz.epochs.closed").Value(); got != goroutines*perG {
		t.Errorf("epochs.closed = %d, want %d", got, goroutines*perG)
	}
	wantInjectedNS := int64(goroutines*perG) * ns(sim.Microsecond/2)
	if got := reg.Counter("quartz.delay.injected_ns").Value(); got != wantInjectedNS {
		t.Errorf("delay.injected_ns = %d, want %d", got, wantInjectedNS)
	}
	if got := reg.Counter("quartz.epochs.suppressed.sync").Value(); got != goroutines*perG {
		t.Errorf("epochs.suppressed.sync = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Counter("simos.sync.contended_waits").Value(); got != goroutines*perG {
		t.Errorf("contended_waits = %d, want %d", got, goroutines*perG)
	}
}

// TestLedgerLimit: records beyond the limit are dropped (oldest retained)
// but still aggregated into the metrics.
func TestLedgerLimit(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.EpochClosed(EpochRecord{Delay: sim.Nanosecond})
	}
	if got := len(r.Ledger()); got != 4 {
		t.Errorf("ledger retained %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	if got := r.Registry().Counter("quartz.epochs.closed").Value(); got != 10 {
		t.Errorf("metrics saw %d epochs, want 10 (drops must not lose metrics)", got)
	}
}

// TestDefaultRecorder: the process-global default used by the CLIs.
func TestDefaultRecorder(t *testing.T) {
	if Default() != nil {
		t.Fatal("default recorder set at test start")
	}
	r := New(0)
	SetDefault(r)
	if Default() != r {
		t.Error("Default() did not return the installed recorder")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Error("SetDefault(nil) did not clear")
	}
}

// TestJobDoneMetrics covers the runner-facing aggregation.
func TestJobDoneMetrics(t *testing.T) {
	r := New(0)
	r.JobDone("a", "ok", 1, 10*time.Millisecond)
	r.JobDone("b", "ok", 3, 20*time.Millisecond) // two retries used
	r.JobDone("c", "failed", 2, 5*time.Millisecond)
	reg := r.Registry()
	if got := reg.Counter("runner.jobs.ok").Value(); got != 2 {
		t.Errorf("jobs.ok = %d, want 2", got)
	}
	if got := reg.Counter("runner.jobs.failed").Value(); got != 1 {
		t.Errorf("jobs.failed = %d, want 1", got)
	}
	if got := reg.Counter("runner.attempts").Value(); got != 6 {
		t.Errorf("attempts = %d, want 6", got)
	}
	if got := reg.Counter("runner.retries_used").Value(); got != 3 {
		t.Errorf("retries_used = %d, want 3", got)
	}
	h := reg.Histogram("runner.job_wall_ms").Snapshot()
	if h.Count != 3 || h.Sum != 35 {
		t.Errorf("job_wall_ms count=%d sum=%d, want 3/35", h.Count, h.Sum)
	}
}
