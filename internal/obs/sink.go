package obs

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/quartz-emu/quartz/internal/sim"
)

// LedgerSink receives every closed epoch record, in close order, as it is
// recorded. Attaching a sink to a Recorder (AttachSink) removes the
// in-memory ledger bound: the full ledger lives wherever the sink puts it
// and memory keeps only a small tail ring for live queries. Append is called
// under the recorder's ledger mutex, so implementations need not be
// concurrency-safe for Append-vs-Append, but Close may race with nothing
// (the recorder detaches first).
type LedgerSink interface {
	// Append writes one record. Implementations should buffer: Append is on
	// the epoch-close path (wall-clock only — virtual time is never
	// perturbed by observation, but a slow sink still slows the host run).
	Append(rec EpochRecord) error
	// Close flushes buffered records and releases resources. File-backed
	// sinks fsync before closing so a completed run's ledger survives a
	// crash of whatever reads it next.
	Close() error
}

// SinkFormat selects a ledger sink's on-disk encoding.
type SinkFormat int

const (
	// FormatJSONL writes one JSON object per line — self-describing,
	// grep/jq-able, ~2.5x larger than binary.
	FormatJSONL SinkFormat = iota
	// FormatBinary writes the compact length-prefixed binary framing
	// (magic "QZLG1", then per record: uvarint payload length + varint/
	// fixed64 fields). See doc/live-monitoring.md for the field order.
	FormatBinary
)

// String names the format as accepted by ParseSinkFormat.
func (f SinkFormat) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("SinkFormat(%d)", int(f))
	}
}

// ParseSinkFormat parses "jsonl" or "binary".
func ParseSinkFormat(s string) (SinkFormat, error) {
	switch s {
	case "jsonl":
		return FormatJSONL, nil
	case "binary":
		return FormatBinary, nil
	default:
		return 0, fmt.Errorf("unknown ledger format %q (jsonl|binary)", s)
	}
}

// binaryMagic opens every binary-format segment file.
const binaryMagic = "QZLG1"

// SinkOptions tunes a FileSink.
type SinkOptions struct {
	// Format selects the encoding (default FormatJSONL).
	Format SinkFormat
	// RotateBytes rotates the active file when appending a record would push
	// it past this size: the current segment is flushed, fsynced and renamed
	// to <path>.<n> (n = 1, 2, ... in write order) and a fresh <path> is
	// opened. 0 disables rotation.
	RotateBytes int64
	// BufferBytes is the write-buffer size (default 256 KiB).
	BufferBytes int
}

// FileSink streams epoch records to a file, buffered, with optional
// size-based rotation and fsync-on-close. All methods are safe for
// concurrent use.
type FileSink struct {
	mu      sync.Mutex
	path    string
	opts    SinkOptions
	f       *os.File
	bw      *bufio.Writer
	n       int64 // bytes appended to the active segment
	seg     int   // next rotation suffix
	scratch []byte
	closed  bool
}

// NewFileSink creates (truncating) path and returns a sink writing records
// to it in opts.Format.
func NewFileSink(path string, opts SinkOptions) (*FileSink, error) {
	if opts.BufferBytes <= 0 {
		opts.BufferBytes = 256 << 10
	}
	s := &FileSink{path: path, opts: opts, seg: 1}
	if err := s.openSegment(); err != nil {
		return nil, err
	}
	return s, nil
}

// Path returns the active segment's path.
func (s *FileSink) Path() string { return s.path }

// openSegment opens a fresh active file and writes the format header.
func (s *FileSink) openSegment() error {
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	s.f = f
	s.bw = bufio.NewWriterSize(f, s.opts.BufferBytes)
	s.n = 0
	if s.opts.Format == FormatBinary {
		if _, err := s.bw.WriteString(binaryMagic); err != nil {
			return err
		}
		s.n = int64(len(binaryMagic))
	}
	return nil
}

// Append implements LedgerSink.
func (s *FileSink) Append(rec EpochRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	s.scratch = appendRecord(s.scratch[:0], rec, s.opts.Format)
	if s.opts.RotateBytes > 0 && s.n > int64(headerLen(s.opts.Format)) &&
		s.n+int64(len(s.scratch)) > s.opts.RotateBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.bw.Write(s.scratch)
	s.n += int64(n)
	return err
}

// headerLen is the fixed per-segment header size for a format.
func headerLen(f SinkFormat) int {
	if f == FormatBinary {
		return len(binaryMagic)
	}
	return 0
}

// rotateLocked seals the active segment and opens a fresh one. The sealed
// segment is flushed, fsynced and renamed to <path>.<seg>.
func (s *FileSink) rotateLocked() error {
	if err := s.sealLocked(); err != nil {
		return err
	}
	if err := os.Rename(s.path, fmt.Sprintf("%s.%d", s.path, s.seg)); err != nil {
		return err
	}
	s.seg++
	return s.openSegment()
}

// sealLocked flushes, fsyncs and closes the active file.
func (s *FileSink) sealLocked() error {
	err := s.bw.Flush()
	if serr := s.f.Sync(); err == nil {
		err = serr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close implements LedgerSink: flush, fsync, close.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.sealLocked()
}

// writerSink is a LedgerSink over a plain io.Writer — no file, no rotation,
// no fsync. It backs tests and benchmarks.
type writerSink struct {
	mu      sync.Mutex
	w       io.Writer
	format  SinkFormat
	scratch []byte
	started bool
}

// NewWriterSink returns a sink encoding records to w in the given format.
// The binary magic header is written before the first record.
func NewWriterSink(w io.Writer, format SinkFormat) LedgerSink {
	return &writerSink{w: w, format: format}
}

func (s *writerSink) Append(rec EpochRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		s.started = true
		if s.format == FormatBinary {
			if _, err := io.WriteString(s.w, binaryMagic); err != nil {
				return err
			}
		}
	}
	s.scratch = appendRecord(s.scratch[:0], rec, s.format)
	_, err := s.w.Write(s.scratch)
	return err
}

func (s *writerSink) Close() error { return nil }

// appendRecord encodes rec in the given format onto buf. Both encodings are
// allocation-free once buf has grown to steady-state capacity — Append sits
// on the epoch-close path, so each record must not cost a garbage object.
func appendRecord(buf []byte, rec EpochRecord, format SinkFormat) []byte {
	if format == FormatJSONL {
		buf = appendJSONRecord(buf, rec)
		return append(buf, '\n')
	}
	// Length-prefix the payload without a second buffer: reserve the widest
	// possible uvarint, encode the payload after it, then write the real
	// prefix and slide the payload onto it.
	base := len(buf)
	var zero [binary.MaxVarintLen64]byte
	buf = append(buf, zero[:]...)
	buf = appendBinaryPayload(buf, rec)
	payloadLen := len(buf) - base - binary.MaxVarintLen64
	n := binary.PutUvarint(zero[:], uint64(payloadLen))
	copy(buf[base:], zero[:n])
	copy(buf[base+n:], buf[base+binary.MaxVarintLen64:])
	return buf[:base+n+payloadLen]
}

// appendJSONRecord encodes rec byte-identically to encoding/json (field
// order, omitempty handling, float formatting and string escaping all
// match; TestAppendJSONRecordMatchesStdlib enforces the equivalence) while
// appending into the caller's buffer instead of allocating a fresh line.
func appendJSONRecord(buf []byte, rec EpochRecord) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, rec.Seq, 10)
	buf = append(buf, `,"pid":`...)
	buf = strconv.AppendInt(buf, int64(rec.PID), 10)
	buf = append(buf, `,"tid":`...)
	buf = strconv.AppendInt(buf, int64(rec.TID), 10)
	if rec.Thread != "" {
		buf = append(buf, `,"thread":`...)
		buf = appendJSONString(buf, rec.Thread)
	}
	buf = append(buf, `,"start_fs":`...)
	buf = strconv.AppendInt(buf, int64(rec.Start), 10)
	buf = append(buf, `,"end_fs":`...)
	buf = strconv.AppendInt(buf, int64(rec.End), 10)
	buf = append(buf, `,"reason":`...)
	buf = appendJSONString(buf, rec.Reason)
	buf = append(buf, `,"stall_cycles":`...)
	buf = strconv.AppendUint(buf, rec.StallCycles, 10)
	buf = append(buf, `,"l3_hit":`...)
	buf = strconv.AppendUint(buf, rec.L3Hit, 10)
	buf = append(buf, `,"l3_miss_local":`...)
	buf = strconv.AppendUint(buf, rec.L3MissLocal, 10)
	if rec.L3MissRemote != 0 {
		buf = append(buf, `,"l3_miss_remote":`...)
		buf = strconv.AppendUint(buf, rec.L3MissRemote, 10)
	}
	if rec.Stores != 0 {
		buf = append(buf, `,"stores":`...)
		buf = strconv.AppendUint(buf, rec.Stores, 10)
	}
	if rec.StoreMissLocal != 0 {
		buf = append(buf, `,"store_miss_local":`...)
		buf = strconv.AppendUint(buf, rec.StoreMissLocal, 10)
	}
	if rec.StoreMissRem != 0 {
		buf = append(buf, `,"store_miss_remote":`...)
		buf = strconv.AppendUint(buf, rec.StoreMissRem, 10)
	}
	buf = append(buf, `,"ldm_stall_cycles":`...)
	buf = appendJSONFloat(buf, rec.LDMStallCycles)
	buf = append(buf, `,"delay_fs":`...)
	buf = strconv.AppendInt(buf, int64(rec.Delay), 10)
	if rec.WriteDelay != 0 {
		buf = append(buf, `,"write_delay_fs":`...)
		buf = strconv.AppendInt(buf, int64(rec.WriteDelay), 10)
	}
	buf = append(buf, `,"injected_fs":`...)
	buf = strconv.AppendInt(buf, int64(rec.Injected), 10)
	if rec.InjectStart != 0 {
		buf = append(buf, `,"inject_start_fs":`...)
		buf = strconv.AppendInt(buf, int64(rec.InjectStart), 10)
	}
	if rec.InjectEnd != 0 {
		buf = append(buf, `,"inject_end_fs":`...)
		buf = strconv.AppendInt(buf, int64(rec.InjectEnd), 10)
	}
	buf = append(buf, `,"overhead_fs":`...)
	buf = strconv.AppendInt(buf, int64(rec.Overhead), 10)
	buf = append(buf, `,"carry_fs":`...)
	buf = strconv.AppendInt(buf, int64(rec.Carry), 10)
	return append(buf, '}')
}

// appendJSONString appends s as a JSON string. Strings that are plain
// printable ASCII with nothing encoding/json would escape (it HTML-escapes
// <, >, & by default) take the copy fast path; anything else — control
// bytes, quotes, backslashes, non-ASCII — defers to json.Marshal for
// byte-identical escaping (allocating; epoch reasons and thread names are
// ASCII-safe in practice).
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil {
				panic(fmt.Sprintf("obs: marshaling string: %v", err))
			}
			return append(buf, enc...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// appendJSONFloat appends f with encoding/json's float formatting: shortest
// representation, %f style except for very small or very large magnitudes,
// and the stdlib's two-digit-exponent cleanup (e-09 → e-9).
func appendJSONFloat(buf []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		// json.Marshal would refuse the record; make the impossible loud.
		panic(fmt.Sprintf("obs: unsupported float value %v in EpochRecord", f))
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	start := len(buf)
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(buf); n-start >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf
}

// appendBinaryPayload encodes the record fields in their fixed order:
// uvarint Seq; varint PID, TID; string Thread; varint Start, End; string
// Reason; uvarint StallCycles, L3Hit, L3MissLocal, L3MissRemote, Stores,
// StoreMissLocal, StoreMissRem; fixed64 LDMStallCycles (IEEE 754,
// little-endian); varint Delay, WriteDelay, Injected, InjectStart,
// InjectEnd, Overhead, Carry. Strings are uvarint length + bytes.
func appendBinaryPayload(buf []byte, rec EpochRecord) []byte {
	buf = binary.AppendUvarint(buf, rec.Seq)
	buf = binary.AppendVarint(buf, int64(rec.PID))
	buf = binary.AppendVarint(buf, int64(rec.TID))
	buf = appendString(buf, rec.Thread)
	buf = binary.AppendVarint(buf, int64(rec.Start))
	buf = binary.AppendVarint(buf, int64(rec.End))
	buf = appendString(buf, rec.Reason)
	buf = binary.AppendUvarint(buf, rec.StallCycles)
	buf = binary.AppendUvarint(buf, rec.L3Hit)
	buf = binary.AppendUvarint(buf, rec.L3MissLocal)
	buf = binary.AppendUvarint(buf, rec.L3MissRemote)
	buf = binary.AppendUvarint(buf, rec.Stores)
	buf = binary.AppendUvarint(buf, rec.StoreMissLocal)
	buf = binary.AppendUvarint(buf, rec.StoreMissRem)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.LDMStallCycles))
	buf = binary.AppendVarint(buf, int64(rec.Delay))
	buf = binary.AppendVarint(buf, int64(rec.WriteDelay))
	buf = binary.AppendVarint(buf, int64(rec.Injected))
	buf = binary.AppendVarint(buf, int64(rec.InjectStart))
	buf = binary.AppendVarint(buf, int64(rec.InjectEnd))
	buf = binary.AppendVarint(buf, int64(rec.Overhead))
	return binary.AppendVarint(buf, int64(rec.Carry))
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeLedger decodes a ledger stream written by a JSONL or binary sink,
// sniffing the format from the first bytes. An empty stream decodes to an
// empty ledger.
func DecodeLedger(r io.Reader) ([]EpochRecord, error) {
	br := bufio.NewReaderSize(r, 256<<10)
	head, err := br.Peek(len(binaryMagic))
	if err == io.EOF {
		return nil, nil
	}
	if err != nil && len(head) == 0 {
		return nil, err
	}
	if string(head) == binaryMagic {
		return decodeBinaryLedger(br)
	}
	return decodeJSONLLedger(br)
}

// decodeJSONLLedger decodes one JSON object per line.
func decodeJSONLLedger(br *bufio.Reader) ([]EpochRecord, error) {
	var out []EpochRecord
	dec := json.NewDecoder(br)
	for {
		var rec EpochRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: jsonl ledger record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// decodeBinaryLedger decodes the length-prefixed binary framing (after
// verifying the magic header).
func decodeBinaryLedger(br *bufio.Reader) ([]EpochRecord, error) {
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("obs: binary ledger header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("obs: bad binary ledger magic %q", magic)
	}
	var out []EpochRecord
	var payload []byte
	for {
		n, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: binary ledger record %d length: %w", len(out), err)
		}
		if n > 1<<20 {
			return out, fmt.Errorf("obs: binary ledger record %d implausibly large (%d bytes)", len(out), n)
		}
		if uint64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return out, fmt.Errorf("obs: binary ledger record %d: %w", len(out), err)
		}
		rec, err := decodeBinaryPayload(payload)
		if err != nil {
			return out, fmt.Errorf("obs: binary ledger record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

var errShortPayload = errors.New("truncated payload")

// decodeBinaryPayload is the inverse of appendBinaryPayload.
func decodeBinaryPayload(p []byte) (EpochRecord, error) {
	d := payloadReader{p: p}
	var rec EpochRecord
	rec.Seq = d.uvarint()
	rec.PID = int(d.varint())
	rec.TID = int(d.varint())
	rec.Thread = d.str()
	rec.Start = sim.Time(d.varint())
	rec.End = sim.Time(d.varint())
	rec.Reason = d.str()
	rec.StallCycles = d.uvarint()
	rec.L3Hit = d.uvarint()
	rec.L3MissLocal = d.uvarint()
	rec.L3MissRemote = d.uvarint()
	rec.Stores = d.uvarint()
	rec.StoreMissLocal = d.uvarint()
	rec.StoreMissRem = d.uvarint()
	rec.LDMStallCycles = d.float64()
	rec.Delay = sim.Time(d.varint())
	rec.WriteDelay = sim.Time(d.varint())
	rec.Injected = sim.Time(d.varint())
	rec.InjectStart = sim.Time(d.varint())
	rec.InjectEnd = sim.Time(d.varint())
	rec.Overhead = sim.Time(d.varint())
	rec.Carry = sim.Time(d.varint())
	if d.err != nil {
		return EpochRecord{}, d.err
	}
	if len(d.p) != 0 {
		return EpochRecord{}, fmt.Errorf("%d trailing bytes", len(d.p))
	}
	return rec, nil
}

// payloadReader consumes a binary record payload, latching the first error.
type payloadReader struct {
	p   []byte
	err error
}

func (d *payloadReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.err = errShortPayload
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *payloadReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.p)
	if n <= 0 {
		d.err = errShortPayload
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *payloadReader) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.p)) < n {
		d.err = errShortPayload
		return ""
	}
	s := string(d.p[:n])
	d.p = d.p[n:]
	return s
}

func (d *payloadReader) float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.p) < 8 {
		d.err = errShortPayload
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.p))
	d.p = d.p[8:]
	return v
}

// LedgerSegments returns a FileSink's segment files in write order: the
// rotated segments <path>.1, <path>.2, ... followed by the active <path>.
// Missing rotated segments are fine (rotation may never have fired); a
// missing <path> is an error.
func LedgerSegments(path string) ([]string, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	matches, err := filepath.Glob(path + ".*")
	if err != nil {
		return nil, err
	}
	type seg struct {
		n    int
		path string
	}
	var segs []seg
	for _, m := range matches {
		suffix := strings.TrimPrefix(m, path+".")
		n, err := strconv.Atoi(suffix)
		if err != nil || n <= 0 {
			continue // unrelated file sharing the prefix
		}
		segs = append(segs, seg{n, m})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })
	out := make([]string, 0, len(segs)+1)
	for _, s := range segs {
		out = append(out, s.path)
	}
	return append(out, path), nil
}

// ReadLedger decodes a FileSink's complete output — every rotated segment
// plus the active file, concatenated in write order.
func ReadLedger(path string) ([]EpochRecord, error) {
	segs, err := LedgerSegments(path)
	if err != nil {
		return nil, err
	}
	var out []EpochRecord
	for _, seg := range segs {
		f, err := os.Open(seg)
		if err != nil {
			return out, err
		}
		recs, err := DecodeLedger(f)
		f.Close()
		if err != nil {
			return out, fmt.Errorf("%s: %w", seg, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}
