package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric holding one settable value (last write wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add increments the gauge by d (not atomic with respect to concurrent Adds
// of different deltas; use a Counter when exact concurrent sums matter).
func (g *Gauge) Add(d float64) { g.Set(g.Value() + d) }

// histBuckets is the number of power-of-two histogram buckets: bucket k
// counts observations v with 2^(k-1) < v <= 2^k (bucket 0 counts v <= 1).
const histBuckets = 64

// Histogram accumulates int64 observations into power-of-two buckets. It
// tracks count, sum, min and max exactly; the distribution is approximated
// by the bucket counts.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64 // valid when count > 0
	max   atomic.Int64
	once  sync.Once
	bkt   [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.once.Do(func() { h.min.Store(v) })
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.bkt[bucketOf(v)].Add(1)
}

// bucketOf maps v (>= 0) to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// HistogramSnapshot is an exported view of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	// Buckets maps the bucket's inclusive upper bound (a power of two) to
	// its observation count; empty buckets are omitted.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot exports the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	} else {
		s.Min = 0
	}
	for k := range h.bkt {
		if n := h.bkt[k].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[string]int64)
			}
			s.Buckets[bucketLabel(k)] = n
		}
	}
	return s
}

// bucketLabel renders bucket k's upper bound ("<=1", "<=2", "<=4", ...).
func bucketLabel(k int) string {
	if k >= 63 { // 2^63 overflows int64; label the top bucket openly
		return "<=inf"
	}
	return "<=" + strconv.FormatInt(int64(1)<<uint(k), 10)
}

// Registry is a named collection of counters, gauges and histograms —
// expvar-style: metrics are created on first use and exported as one JSON
// snapshot. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot exports every metric's current value keyed by name: counters as
// int64, gauges as float64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	// Emit in sorted order for stable, diffable output.
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, name := range names {
		v, err := json.Marshal(snap[name])
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(names)-1 {
			sep = "\n"
		}
		k, _ := json.Marshal(name)
		if _, err := io.WriteString(w, "  "+string(k)+": "+string(v)+sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
