package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric holding one settable value (last write wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add increments the gauge by d (not atomic with respect to concurrent Adds
// of different deltas; use a Counter when exact concurrent sums matter).
func (g *Gauge) Add(d float64) { g.Set(g.Value() + d) }

// histBuckets is the number of power-of-two histogram buckets: bucket k
// counts observations v with 2^(k-1) < v <= 2^k (bucket 0 counts v <= 1).
const histBuckets = 64

// Histogram accumulates int64 observations into power-of-two buckets. It
// tracks count, sum, min and max exactly; the distribution is approximated
// by the bucket counts.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64 // valid when count > 0
	max   atomic.Int64
	once  sync.Once
	bkt   [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.once.Do(func() { h.min.Store(v) })
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.bkt[bucketOf(v)].Add(1)
}

// bucketOf maps v (>= 0) to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// merge folds a batch of observations — a count, their sum, the batch min
// and max, and per-bucket counts (nil when the caller folds buckets itself)
// — into the histogram. Each field is merged atomically, so concurrent
// mergers and observers compose; min/max may be re-merged idempotently
// across repeated flushes of the same source.
func (h *Histogram) merge(count, sum, mn, mx int64, bkt *[histBuckets]int64) {
	if count <= 0 {
		return
	}
	h.once.Do(func() { h.min.Store(mn) })
	h.count.Add(count)
	h.sum.Add(sum)
	for {
		cur := h.min.Load()
		if mn >= cur || h.min.CompareAndSwap(cur, mn) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if mx <= cur || h.max.CompareAndSwap(cur, mx) {
			break
		}
	}
	if bkt != nil {
		for k := range bkt {
			if n := bkt[k]; n != 0 {
				h.bkt[k].Add(n)
			}
		}
	}
}

// LocalHistogram is a plain, non-atomic power-of-two histogram for batched
// recording on a hot path owned by one goroutine (or one cooperatively
// scheduled simulation thread): Observe is a handful of plain integer
// operations, and FlushInto periodically folds everything recorded since the
// previous flush into one or two shared Histograms. The final flush makes
// the shared totals exact; between flushes they lag by at most the unflushed
// batch.
type LocalHistogram struct {
	count, sum int64
	min, max   int64
	bkt        [histBuckets]int64
	// flushed state: the prefix already folded into the destinations.
	fCount, fSum int64
	fBkt         [histBuckets]int64
}

// Observe records one value. Negative values are clamped to zero.
func (l *LocalHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if l.count == 0 || v < l.min {
		l.min = v
	}
	if v > l.max {
		l.max = v
	}
	l.count++
	l.sum += v
	l.bkt[bucketOf(v)]++
}

// Count reports the number of observations recorded (flushed or not).
func (l *LocalHistogram) Count() int64 { return l.count }

// FlushInto folds the observations recorded since the previous flush into
// dst and, when non-nil, dst2 — the same delta into both, so a result
// histogram and a live registry histogram stay in step from one flush
// stream. Nil destinations are skipped; a no-op when nothing new was
// recorded.
func (l *LocalHistogram) FlushInto(dst, dst2 *Histogram) {
	dc := l.count - l.fCount
	if dc == 0 {
		return
	}
	ds := l.sum - l.fSum
	if dst != nil {
		dst.merge(dc, ds, l.min, l.max, nil)
	}
	if dst2 != nil {
		dst2.merge(dc, ds, l.min, l.max, nil)
	}
	for k := range l.bkt {
		if d := l.bkt[k] - l.fBkt[k]; d != 0 {
			if dst != nil {
				dst.bkt[k].Add(d)
			}
			if dst2 != nil {
				dst2.bkt[k].Add(d)
			}
			l.fBkt[k] = l.bkt[k]
		}
	}
	l.fCount, l.fSum = l.count, l.sum
}

// HistogramSnapshot is an exported view of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	// P50/P95/P99 are quantile estimates derived from the power-of-two
	// bucket midpoints, clamped to the observed [Min, Max]. The bucket
	// resolution bounds the estimation error: the true quantile lies within
	// the estimate's bucket, i.e. within a factor of ~1.5.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Buckets maps the bucket's inclusive upper bound (a power of two) to
	// its observation count; empty buckets are omitted.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot exports the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	} else {
		s.Min = 0
	}
	var counts [histBuckets]int64
	var total int64
	for k := range h.bkt {
		if n := h.bkt[k].Load(); n > 0 {
			counts[k] = n
			total += n
			if s.Buckets == nil {
				s.Buckets = make(map[string]int64)
			}
			s.Buckets[bucketLabel(k)] = n
		}
	}
	if total > 0 {
		s.P50 = quantile(counts[:], total, 0.50, s.Min, s.Max)
		s.P95 = quantile(counts[:], total, 0.95, s.Min, s.Max)
		s.P99 = quantile(counts[:], total, 0.99, s.Min, s.Max)
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the observed
// distribution from the bucket midpoints, clamped to the observed min/max.
// An empty histogram explicitly reports 0 — never NaN or a phantom bucket
// midpoint. It reads the atomic buckets directly (no snapshot allocation),
// so concurrent observers may land between the count and bucket loads; the
// bucket total, not the count, drives the rank so the walk stays in range.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count.Load() == 0 {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for k := range h.bkt {
		if n := h.bkt[k].Load(); n > 0 {
			counts[k] = n
			total += n
		}
	}
	if total == 0 {
		return 0
	}
	return quantile(counts[:], total, q, h.min.Load(), h.max.Load())
}

// quantileOf recomputes a quantile from an existing snapshot's buckets.
func (s HistogramSnapshot) quantileOf(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for label, n := range s.Buckets {
		counts[bucketOfLabel(label)] = n
		total += n
	}
	return quantile(counts[:], total, q, s.Min, s.Max)
}

// bucketOfLabel inverts bucketLabel.
func bucketOfLabel(label string) int {
	if label == "<=inf" {
		return histBuckets - 1
	}
	v, _ := strconv.ParseInt(label[2:], 10, 64)
	return bucketOf(v)
}

// quantile walks the cumulative bucket counts to the bucket holding the
// q-th ranked observation and returns that bucket's midpoint, clamped to
// the observed [min, max].
func quantile(counts []int64, total int64, q float64, min, max int64) float64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for k, c := range counts {
		cum += c
		if cum >= rank && c > 0 {
			mid := bucketMidpoint(k)
			if mid < float64(min) {
				mid = float64(min)
			}
			if mid > float64(max) {
				mid = float64(max)
			}
			return mid
		}
	}
	return float64(max)
}

// bucketMidpoint is the midpoint of bucket k's value range: bucket 0 covers
// v <= 1, bucket k > 0 covers (2^(k-1), 2^k].
func bucketMidpoint(k int) float64 {
	if k == 0 {
		return 0.5
	}
	return 1.5 * math.Ldexp(1, k-1)
}

// bucketLabel renders bucket k's upper bound ("<=1", "<=2", "<=4", ...).
func bucketLabel(k int) string {
	if k >= 63 { // 2^63 overflows int64; label the top bucket openly
		return "<=inf"
	}
	return "<=" + strconv.FormatInt(int64(1)<<uint(k), 10)
}

// Registry is a named collection of counters, gauges and histograms —
// expvar-style: metrics are created on first use and exported as one JSON
// snapshot. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot exports every metric's current value keyed by name: counters as
// int64, gauges as float64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	// Emit in sorted order for stable, diffable output.
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, name := range names {
		v, err := json.Marshal(snap[name])
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(names)-1 {
			sep = "\n"
		}
		k, _ := json.Marshal(name)
		if _, err := io.WriteString(w, "  "+string(k)+": "+string(v)+sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
