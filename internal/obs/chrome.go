package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/quartz-emu/quartz/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// schema chrome://tracing and Perfetto load). Timestamps and durations are
// microseconds; fractional values carry the sub-microsecond precision of
// the femtosecond virtual clock.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   *uint64        `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace-file object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// us converts virtual time (femtoseconds) to trace microseconds.
func us(t sim.Time) float64 { return float64(t) / 1e9 }

// WriteChromeTrace renders the epoch ledger as a Chrome trace-event JSON
// file: every closed epoch is a complete slice on its thread's track,
// every delay injection is a separate "inject" slice linked to its epoch
// by a flow arrow, and process/thread metadata names the tracks. Virtual
// time maps to trace time, so one trace can hold many parallel emulated
// processes (distinct PIDs) without collision.
//
// It is a no-op on a nil recorder.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	ledger, procs, dropped := r.snapshotLedger()

	events := make([]chromeEvent, 0, 2*len(ledger)+len(procs))

	// Process metadata: name each PID's track after its RegisterProcess
	// label. PID 0 collects records from emulators attached without a
	// recorder-registered process (not expected, but representable).
	for i, label := range procs {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: i + 1,
			Args: map[string]any{"name": label},
		})
	}

	// Thread metadata, first appearance order.
	type threadKey struct {
		pid, tid int
	}
	seen := make(map[threadKey]bool)
	for _, rec := range ledger {
		k := threadKey{rec.PID, rec.TID}
		if seen[k] {
			continue
		}
		seen[k] = true
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: rec.PID, TID: rec.TID,
			Args: map[string]any{"name": rec.Thread},
		})
	}

	for i := range ledger {
		rec := &ledger[i]
		dur := us(rec.Len())
		events = append(events, chromeEvent{
			Name: "epoch/" + rec.Reason,
			Cat:  "epoch",
			Ph:   "X",
			TS:   us(rec.Start),
			Dur:  &dur,
			PID:  rec.PID,
			TID:  rec.TID,
			Args: map[string]any{
				"seq":              rec.Seq,
				"reason":           rec.Reason,
				"stall_cycles":     rec.StallCycles,
				"l3_hit":           rec.L3Hit,
				"l3_miss_local":    rec.L3MissLocal,
				"l3_miss_remote":   rec.L3MissRemote,
				"ldm_stall_cycles": rec.LDMStallCycles,
				"delay_ns":         rec.Delay.Nanoseconds(),
				"injected_ns":      rec.Injected.Nanoseconds(),
				"overhead_ns":      rec.Overhead.Nanoseconds(),
				"carry_ns":         rec.Carry.Nanoseconds(),
			},
		})
		if rec.Injected <= 0 {
			continue
		}
		injDur := us(rec.InjectEnd - rec.InjectStart)
		seq := rec.Seq
		events = append(events,
			chromeEvent{
				Name: "inject",
				Cat:  "inject",
				Ph:   "X",
				TS:   us(rec.InjectStart),
				Dur:  &injDur,
				PID:  rec.PID,
				TID:  rec.TID,
				Args: map[string]any{
					"seq":         rec.Seq,
					"injected_ns": rec.Injected.Nanoseconds(),
				},
			},
			// Flow arrow: epoch close -> its delay injection.
			chromeEvent{
				Name: "delay", Cat: "inject", Ph: "s", ID: &seq,
				TS: us(rec.End), PID: rec.PID, TID: rec.TID,
			},
			chromeEvent{
				Name: "delay", Cat: "inject", Ph: "f", ID: &seq, BP: "e",
				TS: us(rec.InjectStart), PID: rec.PID, TID: rec.TID,
			},
		)
	}

	// Stable output: metadata first, then events by (ts, pid, tid, ph).
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			return false // keep metadata insertion order
		}
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		if events[i].PID != events[j].PID {
			return events[i].PID < events[j].PID
		}
		return events[i].TID < events[j].TID
	})

	tr := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"source":          "quartz internal/obs",
			"epochs_retained": len(ledger),
			"epochs_dropped":  dropped,
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}
