package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

// buildFixedRecorder assembles a deterministic two-epoch recorder used by
// the golden and structural trace tests.
func buildFixedRecorder() *Recorder {
	r := New(0)
	pid := r.RegisterProcess("quartz test (NVM 500ns)")
	r.EpochClosed(EpochRecord{
		PID: pid, TID: 0, Thread: "main",
		Start: 0, End: 2 * sim.Microsecond,
		Reason:      "sync",
		StallCycles: 1000, L3Hit: 10, L3MissLocal: 90,
		LDMStallCycles: 900,
		Delay:          sim.Microsecond,
		Injected:       sim.Microsecond / 2,
		InjectStart:    2*sim.Microsecond + 10*sim.Nanosecond,
		InjectEnd:      2*sim.Microsecond + 510*sim.Nanosecond,
		Overhead:       100 * sim.Nanosecond,
		Carry:          0,
	})
	r.EpochClosed(EpochRecord{
		PID: pid, TID: 1, Thread: "worker-1",
		Start: sim.Microsecond, End: 4 * sim.Microsecond,
		Reason:      "max",
		StallCycles: 50, L3Hit: 40, L3MissLocal: 5,
		LDMStallCycles: 20,
		Delay:          0,
		Overhead:       100 * sim.Nanosecond,
		Carry:          100 * sim.Nanosecond,
	})
	return r
}

// TestChromeTraceGolden locks the exporter's output byte-for-byte: viewers
// are external, so format drift must be a conscious decision (update the
// golden when changing the exporter deliberately).
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "quartz test (NVM 500ns)"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "main"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "worker-1"
   }
  },
  {
   "name": "epoch/sync",
   "cat": "epoch",
   "ph": "X",
   "ts": 0,
   "dur": 2,
   "pid": 1,
   "tid": 0,
   "args": {
    "carry_ns": 0,
    "delay_ns": 1000,
    "injected_ns": 500,
    "l3_hit": 10,
    "l3_miss_local": 90,
    "l3_miss_remote": 0,
    "ldm_stall_cycles": 900,
    "overhead_ns": 100,
    "reason": "sync",
    "seq": 0,
    "stall_cycles": 1000
   }
  },
  {
   "name": "epoch/max",
   "cat": "epoch",
   "ph": "X",
   "ts": 1,
   "dur": 3,
   "pid": 1,
   "tid": 1,
   "args": {
    "carry_ns": 100,
    "delay_ns": 0,
    "injected_ns": 0,
    "l3_hit": 40,
    "l3_miss_local": 5,
    "l3_miss_remote": 0,
    "ldm_stall_cycles": 20,
    "overhead_ns": 100,
    "reason": "max",
    "seq": 1,
    "stall_cycles": 50
   }
  },
  {
   "name": "delay",
   "cat": "inject",
   "ph": "s",
   "ts": 2,
   "pid": 1,
   "tid": 0,
   "id": 0
  },
  {
   "name": "inject",
   "cat": "inject",
   "ph": "X",
   "ts": 2.01,
   "dur": 0.5,
   "pid": 1,
   "tid": 0,
   "args": {
    "injected_ns": 500,
    "seq": 0
   }
  },
  {
   "name": "delay",
   "cat": "inject",
   "ph": "f",
   "ts": 2.01,
   "pid": 1,
   "tid": 0,
   "id": 0,
   "bp": "e"
  }
 ],
 "displayTimeUnit": "ns",
 "otherData": {
  "epochs_dropped": 0,
  "epochs_retained": 2,
  "source": "quartz internal/obs"
 }
}
`
	if buf.String() != golden {
		t.Errorf("chrome trace drifted from golden.\ngot:\n%s", buf.String())
	}
}

// TestChromeTraceStructure validates the parts a viewer depends on without
// pinning bytes: valid JSON, a traceEvents array, slices with durations,
// and a matched flow-event pair per injection.
func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var slices, flowS, flowF int
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("slice without dur: %v", ev)
			}
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	if slices != 3 { // 2 epochs + 1 injection
		t.Errorf("slices = %d, want 3", slices)
	}
	if flowS != 1 || flowF != 1 {
		t.Errorf("flow events s/f = %d/%d, want 1/1", flowS, flowF)
	}
}

// TestChromeTraceEmpty: an empty recorder still writes a loadable file
// (traceEvents present and an array, not null).
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New(0).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr["traceEvents"].([]any); !ok {
		t.Errorf("traceEvents is not an array: %v", tr["traceEvents"])
	}
}
