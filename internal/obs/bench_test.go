package obs

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

var benchRecord = EpochRecord{
	TID: 1, Thread: "bench",
	Start: 0, End: sim.Millisecond,
	Reason:      "max",
	StallCycles: 12345, L3Hit: 100, L3MissLocal: 900,
	LDMStallCycles: 11000,
	Stores:         4000, StoreMissLocal: 700,
	WriteDelay: 30 * sim.Microsecond,
	Delay:      100 * sim.Microsecond,
	Injected:   90 * sim.Microsecond,
	Overhead:   sim.Microsecond,
}

// BenchmarkEpochClosedNil measures the fully disabled observability path —
// the per-epoch cost every emulation pays when no recorder is installed.
// It must stay at one branch (sub-nanosecond, zero allocations).
func BenchmarkEpochClosedNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.EpochClosed(benchRecord)
	}
}

// BenchmarkEpochClosedActive measures the enabled path (ledger append +
// metric folds) for comparison.
func BenchmarkEpochClosedActive(b *testing.B) {
	r := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.EpochClosed(benchRecord)
	}
}

// BenchmarkEpochClosedStreaming measures the sink-attached path: tail-ring
// append + event check + encode to the sink. Both formats are zero-alloc at
// steady state (TestLedgerAppendNoAllocs is the hard gate).
func BenchmarkEpochClosedStreaming(b *testing.B) {
	for _, format := range []SinkFormat{FormatJSONL, FormatBinary} {
		b.Run(format.String(), func(b *testing.B) {
			r := New(0)
			if err := r.AttachSink(NewWriterSink(discard{}, format), DefaultTailRing); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.EpochClosed(benchRecord)
			}
			if err := r.CloseSink(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkSuppressedAndWaitNil covers the other hot nil-path call sites
// (epoch suppression check, contended-lock accounting).
func BenchmarkSuppressedAndWaitNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.EpochSuppressed("sync")
		r.ContendedWait()
	}
}

// TestDisabledPathOverheadBudget is the ISSUE's "<2% overhead" guard in an
// absolute, machine-independent form: the nil-recorder epoch hooks must cost
// on the order of a branch (we allow 50ns/op for slow CI machines — real
// cost is <1ns). Epochs close at millisecond granularity, so 50ns/epoch is
// under 0.01% of emulated work, far inside the 2% budget.
func TestDisabledPathOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation dominates the measured path")
	}
	var r *Recorder
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.EpochClosed(benchRecord)
			r.EpochSuppressed("sync")
			r.ContendedWait()
		}
	})
	if res.AllocsPerOp() != 0 {
		t.Errorf("disabled path allocates: %d allocs/op", res.AllocsPerOp())
	}
	if perOp := res.NsPerOp(); perOp > 50 {
		t.Errorf("disabled observability path costs %dns/op, budget 50ns", perOp)
	}
}
