// Package obs is the emulator's observability layer: a low-overhead epoch
// ledger, an aggregated metrics registry, and a Chrome trace-event exporter.
//
// Quartz's value is explaining where emulated time goes — per-epoch stall
// cycles, the Eq. 2/3 delay derivation, min/max-epoch truncation, and the
// amortization carry — so the instrumentation that computes those quantities
// must be inspectable. This package provides three surfaces:
//
//   - the epoch ledger: one EpochRecord per closed epoch, in global close
//     order, carrying the trigger, the raw counter deltas, the computed
//     LDM_STALL, and the injected/amortized delay split;
//   - the metrics registry (registry.go): expvar-style named counters,
//     gauges and histograms covering epochs, delays, suppressions, runner
//     job outcomes and simulation-kernel activity, exported as one JSON
//     snapshot;
//   - the Chrome trace exporter (chrome.go): the ledger rendered as a
//     trace-event JSON file loadable in chrome://tracing or Perfetto, with
//     epochs as slices and delay injections as flow-connected slices.
//
// The entry point is the Recorder. A nil *Recorder is valid and records
// nothing: every method nil-checks its receiver, so instrumented code calls
// unconditionally and the disabled path costs one predictable branch. All
// methods are safe for concurrent use — the experiment runner executes many
// independent simulations in parallel against one shared recorder.
package obs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/quartz-emu/quartz/internal/sim"
)

// DefaultLedgerLimit bounds the ledger when New is called with limit <= 0.
// At ~200 bytes per record this caps ledger memory near 100 MB; longer runs
// keep the newest records and count the dropped ones.
const DefaultLedgerLimit = 1 << 19

// EpochRecord is one closed epoch as the emulator core observed it.
type EpochRecord struct {
	// Seq is the global close order (0-based) assigned by the recorder.
	Seq uint64
	// PID identifies the emulated process (one RegisterProcess call);
	// parallel experiment jobs get distinct PIDs.
	PID int
	// TID and Thread identify the thread within the process.
	TID    int
	Thread string

	// Start and End bound the epoch in virtual time. End is the close
	// time, before epoch-processing overhead and delay injection.
	Start, End sim.Time
	// Reason is the close trigger: "max" (monitor signal at maximum epoch
	// length), "sync" (inter-thread communication event), or "end"
	// (explicit close / thread exit).
	Reason string

	// Raw Table 1 counter deltas over the epoch.
	StallCycles  uint64
	L3Hit        uint64
	L3MissLocal  uint64
	L3MissRemote uint64

	// LDMStallCycles is Eq. 3's memory-attributable stall extraction (after
	// the Eq. 4 remote split in two-memory mode).
	LDMStallCycles float64

	// Delay is the model-computed delay (Eq. 1 or Eq. 2) for this epoch;
	// Injected is what was actually spun after overhead amortization.
	// Injected < Delay means the difference amortized accumulated overhead;
	// Injected == 0 with Delay > 0 also covers switched-off-injection mode.
	Delay    sim.Time
	Injected sim.Time
	// InjectStart/InjectEnd bound the injection spin in virtual time
	// (zero when nothing was injected).
	InjectStart, InjectEnd sim.Time
	// Overhead is the epoch-processing cost charged at this close; Carry is
	// the unamortized overhead outstanding after this epoch.
	Overhead sim.Time
	Carry    sim.Time
}

// Len reports the epoch's length in virtual time.
func (e EpochRecord) Len() sim.Time { return e.End - e.Start }

// Recorder collects epoch records and metrics for one run (or one parallel
// suite of runs). The zero value is not used directly; construct with New.
// A nil *Recorder is a valid no-op sink.
type Recorder struct {
	reg *Registry

	mu      sync.Mutex
	ledger  []EpochRecord
	limit   int
	dropped int64
	procs   []string // index = PID-1
}

// New creates a recorder whose ledger keeps at most limit records
// (limit <= 0 selects DefaultLedgerLimit).
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLedgerLimit
	}
	return &Recorder{reg: NewRegistry(), limit: limit}
}

// Enabled reports whether r actually records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the metrics registry (nil for a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// RegisterProcess allocates a trace PID for one emulated process and
// associates it with a display label. It returns 0 on a nil recorder.
func (r *Recorder) RegisterProcess(label string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.procs = append(r.procs, label)
	return len(r.procs)
}

// EpochClosed appends one closed epoch to the ledger (assigning rec.Seq)
// and folds it into the aggregate metrics. When the ledger is full the
// record is counted as dropped but the metrics still aggregate it.
func (r *Recorder) EpochClosed(rec EpochRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rec.Seq = uint64(len(r.ledger)) + uint64(r.dropped)
	if len(r.ledger) < r.limit {
		r.ledger = append(r.ledger, rec)
	} else {
		r.dropped++
	}
	r.mu.Unlock()

	r.reg.Counter("quartz.epochs.closed").Add(1)
	r.reg.Counter("quartz.epochs.reason." + rec.Reason).Add(1)
	r.reg.Counter("quartz.delay.computed_ns").Add(ns(rec.Delay))
	r.reg.Counter("quartz.delay.injected_ns").Add(ns(rec.Injected))
	if rec.Delay > rec.Injected {
		r.reg.Counter("quartz.delay.withheld_ns").Add(ns(rec.Delay - rec.Injected))
	}
	r.reg.Counter("quartz.overhead.epoch_ns").Add(ns(rec.Overhead))
	r.reg.Histogram("quartz.epoch.len_ns").Observe(ns(rec.Len()))
	r.reg.Histogram("quartz.epoch.delay_ns").Observe(ns(rec.Delay))
	r.reg.Histogram("quartz.epoch.stall_cycles").Observe(int64(rec.StallCycles))
}

// EpochSuppressed counts an epoch-close trigger that was ignored because
// the epoch was still below the minimum length. Trigger is "sync" (a
// synchronization event arrived early) or "max" (the monitor's signal
// landed after the epoch was already reset — wake-up drift).
func (r *Recorder) EpochSuppressed(trigger string) {
	if r == nil {
		return
	}
	r.reg.Counter("quartz.epochs.suppressed." + trigger).Add(1)
}

// ContendedWait counts a thread blocking on an already-held lock — the
// inter-thread communication events whose epoch closes propagate delay.
func (r *Recorder) ContendedWait() {
	if r == nil {
		return
	}
	r.reg.Counter("simos.sync.contended_waits").Add(1)
}

// KernelRun folds one finished simulation kernel's scheduler statistics
// into the aggregate metrics.
func (r *Recorder) KernelRun(ks sim.KernelStats) {
	if r == nil {
		return
	}
	r.reg.Counter("sim.kernels").Add(1)
	r.reg.Counter("sim.coros_spawned").Add(int64(ks.Spawned))
	r.reg.Counter("sim.coros_finished").Add(int64(ks.Finished))
	r.reg.Counter("sim.dispatches").Add(int64(ks.Dispatches))
	r.reg.Histogram("sim.max_runqueue").Observe(int64(ks.MaxQueue))
}

// ThrottleProgrammed counts one DRAM thermal-control register write on the
// given path ("read" or "write") — the Fig. 8 knob Quartz programs to
// emulate NVM bandwidth.
func (r *Recorder) ThrottleProgrammed(path string) {
	if r == nil {
		return
	}
	r.reg.Counter("mem.throttle.programmed." + path).Add(1)
}

// BucketRefill counts one token-bucket refill on the given path: the
// recomputation of a controller's per-access channel occupancy that a
// throttle-register write triggers.
func (r *Recorder) BucketRefill(path string) {
	if r == nil {
		return
	}
	r.reg.Counter("mem.bucket.refills." + path).Add(1)
}

// JobDone records one experiment-runner job outcome.
func (r *Recorder) JobDone(status string, attempts int, wall time.Duration) {
	if r == nil {
		return
	}
	r.reg.Counter("runner.jobs." + status).Add(1)
	r.reg.Counter("runner.attempts").Add(int64(attempts))
	if attempts > 1 {
		r.reg.Counter("runner.retries_used").Add(int64(attempts - 1))
	}
	r.reg.Histogram("runner.job_wall_ms").Observe(wall.Milliseconds())
}

// Ledger returns a copy of the retained epoch records in close order.
func (r *Recorder) Ledger() []EpochRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EpochRecord, len(r.ledger))
	copy(out, r.ledger)
	return out
}

// Dropped reports how many epoch records were discarded because the ledger
// was full (their metrics were still aggregated).
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteMetricsJSON writes the metrics snapshot as indented JSON. It is a
// no-op on a nil recorder.
func (r *Recorder) WriteMetricsJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	dropped := r.dropped
	retained := len(r.ledger)
	r.mu.Unlock()
	r.reg.Gauge("obs.ledger.retained").Set(float64(retained))
	r.reg.Gauge("obs.ledger.dropped").Set(float64(dropped))
	return r.reg.WriteJSON(w)
}

// ns converts virtual time to integer nanoseconds for metric accumulation.
func ns(t sim.Time) int64 { return int64(t / sim.Nanosecond) }

// defaultRecorder is the process-global recorder CLIs install so that
// emulators assembled deep inside experiment jobs attach to it without
// threading a handle through every constructor.
var defaultRecorder atomic.Pointer[Recorder]

// SetDefault installs (or, with nil, clears) the global default recorder
// that core.Attach falls back to when its Config carries no Observer.
func SetDefault(r *Recorder) { defaultRecorder.Store(r) }

// Default returns the global default recorder, or nil when none is set.
func Default() *Recorder { return defaultRecorder.Load() }
