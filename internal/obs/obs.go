// Package obs is the emulator's observability layer: a low-overhead epoch
// ledger, an aggregated metrics registry, a Chrome trace-event exporter,
// streaming ledger sinks, and a live event stream.
//
// Quartz's value is explaining where emulated time goes — per-epoch stall
// cycles, the Eq. 2/3 delay derivation, min/max-epoch truncation, and the
// amortization carry — so the instrumentation that computes those quantities
// must be inspectable. This package provides these surfaces:
//
//   - the epoch ledger: one EpochRecord per closed epoch, in global close
//     order, carrying the trigger, the raw counter deltas, the computed
//     LDM_STALL, and the injected/amortized delay split;
//   - the metrics registry (registry.go): expvar-style named counters,
//     gauges and histograms covering epochs, delays, suppressions, runner
//     job outcomes and simulation-kernel activity, exported as one JSON
//     snapshot with p50/p95/p99 summaries;
//   - the Chrome trace exporter (chrome.go): the ledger rendered as a
//     trace-event JSON file loadable in chrome://tracing or Perfetto, with
//     epochs as slices and delay injections as flow-connected slices;
//   - ledger sinks (sink.go): JSONL or compact-binary streaming of every
//     epoch record to disk, removing the in-memory retention bound;
//   - the event stream (events.go): a non-blocking fan-out of epoch closes,
//     delay injections, throttle programmings and job completions, feeding
//     the HTTP introspection plane (internal/obs/obshttp).
//
// The entry point is the Recorder. A nil *Recorder is valid and records
// nothing: every method nil-checks its receiver, so instrumented code calls
// unconditionally and the disabled path costs one predictable branch. All
// methods are safe for concurrent use — the experiment runner executes many
// independent simulations in parallel against one shared recorder.
package obs

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/quartz-emu/quartz/internal/sim"
)

// DefaultLedgerLimit bounds the ledger when New is called with limit <= 0
// and no sink is attached. At ~200 bytes per record this caps ledger memory
// near 100 MB; longer runs keep the oldest records and count the newer ones
// as dropped. Attaching a LedgerSink removes the bound entirely (the full
// ledger streams to the sink) and memory keeps only a DefaultTailRing-sized
// tail.
const DefaultLedgerLimit = 1 << 19

// DefaultTailRing is the number of newest records kept in memory for live
// tail queries (Recorder.LedgerSince, the /ledger endpoint) once a sink is
// attached.
const DefaultTailRing = 4096

// EpochRecord is one closed epoch as the emulator core observed it. The
// JSON field names are the JSONL sink / HTTP ledger schema; virtual times
// are femtoseconds (the sim.Time unit), suffixed _fs.
type EpochRecord struct {
	// Seq is the global close order (0-based) assigned by the recorder.
	Seq uint64 `json:"seq"`
	// PID identifies the emulated process (one RegisterProcess call);
	// parallel experiment jobs get distinct PIDs.
	PID int `json:"pid"`
	// TID and Thread identify the thread within the process.
	TID    int    `json:"tid"`
	Thread string `json:"thread,omitempty"`

	// Start and End bound the epoch in virtual time. End is the close
	// time, before epoch-processing overhead and delay injection.
	Start sim.Time `json:"start_fs"`
	End   sim.Time `json:"end_fs"`
	// Reason is the close trigger: "max" (monitor signal at maximum epoch
	// length), "sync" (inter-thread communication event), or "end"
	// (explicit close / thread exit).
	Reason string `json:"reason"`

	// Raw Table 1 counter deltas over the epoch.
	StallCycles  uint64 `json:"stall_cycles"`
	L3Hit        uint64 `json:"l3_hit"`
	L3MissLocal  uint64 `json:"l3_miss_local"`
	L3MissRemote uint64 `json:"l3_miss_remote,omitempty"`

	// Store-side counter deltas (asymmetric write model, doc/asymmetry.md).
	// Zero — and omitted from the JSONL schema — when the store model is
	// disabled, keeping symmetric-configuration ledgers byte-identical.
	Stores         uint64 `json:"stores,omitempty"`
	StoreMissLocal uint64 `json:"store_miss_local,omitempty"`
	StoreMissRem   uint64 `json:"store_miss_remote,omitempty"`

	// LDMStallCycles is Eq. 3's memory-attributable stall extraction (after
	// the Eq. 4 remote split in two-memory mode).
	LDMStallCycles float64 `json:"ldm_stall_cycles"`

	// Delay is the model-computed delay (Eq. 1 or Eq. 2) for this epoch;
	// Injected is what was actually spun after overhead amortization.
	// Injected < Delay means the difference amortized accumulated overhead;
	// Injected == 0 with Delay > 0 also covers switched-off-injection mode.
	Delay sim.Time `json:"delay_fs"`
	// WriteDelay is the store-model component included in Delay (zero and
	// omitted when the asymmetric model is disabled).
	WriteDelay sim.Time `json:"write_delay_fs,omitempty"`
	Injected   sim.Time `json:"injected_fs"`
	// InjectStart/InjectEnd bound the injection spin in virtual time
	// (zero when nothing was injected).
	InjectStart sim.Time `json:"inject_start_fs,omitempty"`
	InjectEnd   sim.Time `json:"inject_end_fs,omitempty"`
	// Overhead is the epoch-processing cost charged at this close; Carry is
	// the unamortized overhead outstanding after this epoch.
	Overhead sim.Time `json:"overhead_fs"`
	Carry    sim.Time `json:"carry_fs"`
}

// Len reports the epoch's length in virtual time.
func (e EpochRecord) Len() sim.Time { return e.End - e.Start }

// Recorder collects epoch records and metrics for one run (or one parallel
// suite of runs). The zero value is not used directly; construct with New.
// A nil *Recorder is a valid no-op sink.
// hotMetrics caches the handles of the metrics the per-epoch paths touch.
// Registry.Counter/Histogram take a mutex and allocate when the name is
// built by concatenation, so the steady-state recording path resolves every
// fixed name once (in New) and reaches the atomics directly afterwards.
type hotMetrics struct {
	epochsClosed   *Counter
	reasonMax      *Counter
	reasonSync     *Counter
	reasonEnd      *Counter
	delayComputed  *Counter
	delayInjected  *Counter
	delayWithheld  *Counter
	overheadEpoch  *Counter
	epochLen       *Histogram
	epochDelay     *Histogram
	epochStall     *Histogram
	suppressedSync *Counter
	suppressedMax  *Counter
	contendedWaits *Counter
}

func newHotMetrics(reg *Registry) hotMetrics {
	return hotMetrics{
		epochsClosed:   reg.Counter("quartz.epochs.closed"),
		reasonMax:      reg.Counter("quartz.epochs.reason.max"),
		reasonSync:     reg.Counter("quartz.epochs.reason.sync"),
		reasonEnd:      reg.Counter("quartz.epochs.reason.end"),
		delayComputed:  reg.Counter("quartz.delay.computed_ns"),
		delayInjected:  reg.Counter("quartz.delay.injected_ns"),
		delayWithheld:  reg.Counter("quartz.delay.withheld_ns"),
		overheadEpoch:  reg.Counter("quartz.overhead.epoch_ns"),
		epochLen:       reg.Histogram("quartz.epoch.len_ns"),
		epochDelay:     reg.Histogram("quartz.epoch.delay_ns"),
		epochStall:     reg.Histogram("quartz.epoch.stall_cycles"),
		suppressedSync: reg.Counter("quartz.epochs.suppressed.sync"),
		suppressedMax:  reg.Counter("quartz.epochs.suppressed.max"),
		contendedWaits: reg.Counter("simos.sync.contended_waits"),
	}
}

// reasonCounter maps a close-trigger string to its cached counter; unknown
// reasons (none exist today) fall back to the registry's concat path.
func (h *hotMetrics) reasonCounter(reg *Registry, reason string) *Counter {
	switch reason {
	case "max":
		return h.reasonMax
	case "sync":
		return h.reasonSync
	case "end":
		return h.reasonEnd
	}
	return reg.Counter("quartz.epochs.reason." + reason)
}

type Recorder struct {
	reg *Registry
	hot hotMetrics
	hub eventHub

	mu     sync.Mutex
	ledger []EpochRecord
	// start is the ring head (index of the oldest retained record) once the
	// ledger operates as a circular tail buffer (sink attached and ring
	// full); 0 in append mode.
	start int
	// ringCap caps the tail ring when a sink is attached; limit bounds the
	// append-mode ledger when none is.
	ringCap  int
	limit    int
	total    uint64
	sink     LedgerSink
	sinkErr  error
	streamed bool // a sink was attached at some point: nothing was dropped
	procs    []string
}

// New creates a recorder whose in-memory ledger keeps at most limit records
// (limit <= 0 selects DefaultLedgerLimit). Attaching a LedgerSink
// (AttachSink) lifts the bound by streaming every record out.
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLedgerLimit
	}
	reg := NewRegistry()
	return &Recorder{reg: reg, hot: newHotMetrics(reg), limit: limit}
}

// Enabled reports whether r actually records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the metrics registry (nil for a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// RegisterProcess allocates a trace PID for one emulated process and
// associates it with a display label. It returns 0 on a nil recorder.
func (r *Recorder) RegisterProcess(label string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.procs = append(r.procs, label)
	return len(r.procs)
}

// AttachSink streams every epoch record to s, removing the in-memory
// retention bound: the complete ledger lives in the sink and memory keeps
// only the newest ringSize records (<= 0 selects DefaultTailRing) for tail
// queries. Records already retained are flushed to the sink first, so the
// sink always holds the full ledger from Seq 0 — attach before the run for
// that to be every record ever closed. The first sink error is latched
// (SinkErr); recording continues in memory-tail-only mode after an error.
func (r *Recorder) AttachSink(s LedgerSink, ringSize int) error {
	if r == nil || s == nil {
		return nil
	}
	if ringSize <= 0 {
		ringSize = DefaultTailRing
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	retained := r.ledgerLocked()
	for _, rec := range retained {
		if err := s.Append(rec); err != nil {
			return err
		}
	}
	// Convert to the tail ring, keeping the newest ringSize records.
	if len(retained) > ringSize {
		retained = retained[len(retained)-ringSize:]
	}
	ring := make([]EpochRecord, 0, ringSize)
	r.ledger = append(ring, retained...)
	r.start = 0
	r.ringCap = ringSize
	r.sink = s
	r.streamed = true
	return nil
}

// CloseSink detaches and closes the attached sink (flushing buffered
// records), returning the first error the sink reported during the run, or
// the close error. It is a no-op when no sink is attached.
func (r *Recorder) CloseSink() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := r.sink
	err := r.sinkErr
	r.sink = nil
	r.mu.Unlock()
	if s == nil {
		return err
	}
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}

// SinkErr reports the first error the attached sink returned from Append
// (nil while streaming is healthy).
func (r *Recorder) SinkErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// EpochClosed appends one closed epoch to the ledger (assigning rec.Seq)
// and folds it into the aggregate metrics. With a sink attached the record
// also streams to the sink and the in-memory ledger keeps only the newest
// tail; without one, records past the limit are counted as dropped but the
// metrics still aggregate them.
func (r *Recorder) EpochClosed(rec EpochRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rec.Seq = r.total
	r.total++
	if r.sink != nil {
		if err := r.sink.Append(rec); err != nil && r.sinkErr == nil {
			r.sinkErr = err
		}
	}
	switch {
	case r.ringCap > 0: // tail ring (sink attached now or earlier)
		if len(r.ledger) < r.ringCap {
			r.ledger = append(r.ledger, rec)
		} else {
			r.ledger[r.start] = rec
			r.start++
			if r.start == len(r.ledger) {
				r.start = 0
			}
		}
	case len(r.ledger) < r.limit:
		r.ledger = append(r.ledger, rec)
	}
	// Publish under the ledger mutex so event order equals ledger order.
	r.epochEvents(rec)
	r.mu.Unlock()

	r.hot.epochsClosed.Add(1)
	r.hot.reasonCounter(r.reg, rec.Reason).Add(1)
	r.hot.delayComputed.Add(ns(rec.Delay))
	r.hot.delayInjected.Add(ns(rec.Injected))
	if rec.Delay > rec.Injected {
		r.hot.delayWithheld.Add(ns(rec.Delay - rec.Injected))
	}
	r.hot.overheadEpoch.Add(ns(rec.Overhead))
	r.hot.epochLen.Observe(ns(rec.Len()))
	r.hot.epochDelay.Observe(ns(rec.Delay))
	r.hot.epochStall.Observe(int64(rec.StallCycles))
}

// EpochSuppressed counts an epoch-close trigger that was ignored because
// the epoch was still below the minimum length. Trigger is "sync" (a
// synchronization event arrived early) or "max" (the monitor's signal
// landed after the epoch was already reset — wake-up drift).
func (r *Recorder) EpochSuppressed(trigger string) {
	if r == nil {
		return
	}
	switch trigger {
	case "sync":
		r.hot.suppressedSync.Add(1)
	case "max":
		r.hot.suppressedMax.Add(1)
	default:
		r.reg.Counter("quartz.epochs.suppressed." + trigger).Add(1)
	}
}

// ContendedWait counts a thread blocking on an already-held lock — the
// inter-thread communication events whose epoch closes propagate delay.
func (r *Recorder) ContendedWait() {
	if r == nil {
		return
	}
	r.hot.contendedWaits.Add(1)
}

// KernelRun folds one finished simulation kernel's scheduler statistics
// into the aggregate metrics.
func (r *Recorder) KernelRun(ks sim.KernelStats) {
	if r == nil {
		return
	}
	r.reg.Counter("sim.kernels").Add(1)
	r.reg.Counter("sim.coros_spawned").Add(int64(ks.Spawned))
	r.reg.Counter("sim.coros_finished").Add(int64(ks.Finished))
	r.reg.Counter("sim.dispatches").Add(int64(ks.Dispatches))
	r.reg.Histogram("sim.max_runqueue").Observe(int64(ks.MaxQueue))
}

// ThrottleProgrammed counts one DRAM thermal-control register write on the
// given path ("read" or "write") — the Fig. 8 knob Quartz programs to
// emulate NVM bandwidth.
func (r *Recorder) ThrottleProgrammed(path string) {
	if r == nil {
		return
	}
	r.reg.Counter("mem.throttle.programmed." + path).Add(1)
	r.hub.publish(Event{Kind: "throttle", Path: path})
}

// BucketRefill counts one token-bucket refill on the given path: the
// recomputation of a controller's per-access channel occupancy that a
// throttle-register write triggers.
func (r *Recorder) BucketRefill(path string) {
	if r == nil {
		return
	}
	r.reg.Counter("mem.bucket.refills." + path).Add(1)
}

// JobDone records one experiment-runner job outcome. jobID names the job
// for the event stream; it does not affect the aggregated metrics.
func (r *Recorder) JobDone(jobID, status string, attempts int, wall time.Duration) {
	if r == nil {
		return
	}
	r.reg.Counter("runner.jobs." + status).Add(1)
	r.reg.Counter("runner.attempts").Add(int64(attempts))
	if attempts > 1 {
		r.reg.Counter("runner.retries_used").Add(int64(attempts - 1))
	}
	r.reg.Histogram("runner.job_wall_ms").Observe(wall.Milliseconds())
	r.hub.publish(Event{
		Kind: "job", Job: jobID, Status: status, Attempts: attempts,
		WallMS: float64(wall.Microseconds()) / 1e3,
	})
}

// TrafficProgress publishes one traffic-scenario progress event and refreshes
// the quartz.traffic.* live gauges: the scenario's measured-op progress plus
// the measurement window's running throughput and p99 latency (simulated
// time). The traffic engine calls it periodically during the measured phase
// and once at scenario completion.
func (r *Recorder) TrafficProgress(scenario, mix string, clients int, done, total int64, opsPerSec, p99NS float64) {
	if r == nil {
		return
	}
	r.reg.Gauge("quartz.traffic.clients").Set(float64(clients))
	r.reg.Gauge("quartz.traffic.done").Set(float64(done))
	r.reg.Gauge("quartz.traffic.total_ops").Set(float64(total))
	r.reg.Gauge("quartz.traffic.ops_per_sec").Set(opsPerSec)
	r.reg.Gauge("quartz.traffic.p99_ns").Set(p99NS)
	r.hub.publish(Event{
		Kind: "traffic", Scenario: scenario, Mix: mix, Clients: clients,
		Done: done, TotalOps: total, OpsPerSec: opsPerSec, P99NS: p99NS,
	})
}

// ledgerLocked returns the retained records in Seq order. Caller holds r.mu.
func (r *Recorder) ledgerLocked() []EpochRecord {
	out := make([]EpochRecord, 0, len(r.ledger))
	out = append(out, r.ledger[r.start:]...)
	return append(out, r.ledger[:r.start]...)
}

// Ledger returns a copy of the retained epoch records in close order.
func (r *Recorder) Ledger() []EpochRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ledgerLocked()
}

// LedgerSince returns a copy of the retained records with Seq >= since, in
// close order, plus the total number of epochs ever closed. When since
// predates the oldest retained record the result starts at the oldest one
// (its Seq exceeds since — that gap is how callers detect truncation; the
// full ledger is in the sink, if one is attached).
func (r *Recorder) LedgerSince(since uint64) (recs []EpochRecord, total uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	all := r.ledgerLocked() // fresh copy, Seq ascending in both modes
	idx := sort.Search(len(all), func(i int) bool { return all[i].Seq >= since })
	return all[idx:], r.total
}

// Total reports how many epochs have ever been closed against r.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many epoch records were discarded because the bounded
// in-memory ledger was full (their metrics were still aggregated). It is
// always 0 once a sink has been attached: the sink holds every record and
// the in-memory ledger is just a tail cache.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedLocked()
}

// droppedLocked computes the dropped count. Caller holds r.mu.
func (r *Recorder) droppedLocked() int64 {
	if r.streamed {
		return 0
	}
	return int64(r.total) - int64(len(r.ledger))
}

// snapshotLedger copies the ledger state for exporters.
func (r *Recorder) snapshotLedger() (ledger []EpochRecord, procs []string, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ledgerLocked(), append([]string(nil), r.procs...), r.droppedLocked()
}

// WriteMetricsJSON writes the metrics snapshot as indented JSON. It is a
// no-op on a nil recorder.
func (r *Recorder) WriteMetricsJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	dropped := r.droppedLocked()
	retained := len(r.ledger)
	total := r.total
	r.mu.Unlock()
	r.reg.Gauge("obs.ledger.retained").Set(float64(retained))
	r.reg.Gauge("obs.ledger.dropped").Set(float64(dropped))
	r.reg.Gauge("obs.ledger.total").Set(float64(total))
	r.reg.Gauge("obs.events.dropped").Set(float64(r.hub.dropped.Load()))
	return r.reg.WriteJSON(w)
}

// ns converts virtual time to integer nanoseconds for metric accumulation.
func ns(t sim.Time) int64 { return int64(t / sim.Nanosecond) }

// defaultRecorder is the process-global recorder CLIs install so that
// emulators assembled deep inside experiment jobs attach to it without
// threading a handle through every constructor.
var defaultRecorder atomic.Pointer[Recorder]

// SetDefault installs (or, with nil, clears) the global default recorder
// that core.Attach falls back to when its Config carries no Observer.
func SetDefault(r *Recorder) { defaultRecorder.Store(r) }

// Default returns the global default recorder, or nil when none is set.
func Default() *Recorder { return defaultRecorder.Load() }
