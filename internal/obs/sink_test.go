package obs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

// fullRecord returns a record with every field populated, varied by i, so
// round-trip tests cover the whole schema.
func fullRecord(i int) EpochRecord {
	t := sim.Time(i+1) * sim.Millisecond
	return EpochRecord{
		PID: i%3 + 1, TID: i % 5, Thread: fmt.Sprintf("worker-%d", i%4),
		Start: t, End: t + sim.Millisecond,
		Reason:      []string{"max", "sync", "end"}[i%3],
		StallCycles: uint64(1000 * (i + 1)), L3Hit: uint64(10 * i),
		L3MissLocal: uint64(900 + i), L3MissRemote: uint64(i % 7),
		LDMStallCycles: 123.25 * float64(i+1),
		Stores:         uint64(2000 * i), StoreMissLocal: uint64(800 + i),
		StoreMissRem: uint64(i % 5),
		WriteDelay:   sim.Time(i%4) * sim.Microsecond,
		Delay:        sim.Time(i) * sim.Microsecond,
		Injected:     sim.Time(i) * sim.Microsecond / 2,
		InjectStart:  t + sim.Millisecond,
		InjectEnd:    t + sim.Millisecond + sim.Time(i)*sim.Microsecond/2,
		Overhead:     sim.Time(i%10) * sim.Nanosecond,
		Carry:        sim.Time(i%3) * sim.Nanosecond,
	}
}

// TestSinkRoundTrip: write through the recorder, reopen, decode — the
// decoded stream must equal the in-memory ledger, for both formats.
func TestSinkRoundTrip(t *testing.T) {
	for _, format := range []SinkFormat{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ledger."+format.String())
			sink, err := NewFileSink(path, SinkOptions{Format: format})
			if err != nil {
				t.Fatal(err)
			}
			const n = 100
			r := New(0)
			if err := r.AttachSink(sink, n); err != nil { // ring holds everything
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				r.EpochClosed(fullRecord(i))
			}
			if err := r.CloseSink(); err != nil {
				t.Fatalf("CloseSink: %v", err)
			}
			got, err := ReadLedger(path)
			if err != nil {
				t.Fatalf("ReadLedger: %v", err)
			}
			want := r.Ledger()
			if len(got) != len(want) {
				t.Fatalf("decoded %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSinkRemovesLedgerBound: with a sink attached nothing is ever dropped —
// the sink holds the complete ledger and memory keeps only the tail ring.
func TestSinkRemovesLedgerBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	sink, err := NewFileSink(path, SinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := New(0)
	const ring = 16
	const n = 200
	if err := r.AttachSink(sink, ring); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.EpochClosed(fullRecord(i))
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("Dropped = %d with sink attached, want 0", got)
	}
	if got := r.Total(); got != n {
		t.Errorf("Total = %d, want %d", got, n)
	}
	tail := r.Ledger()
	if len(tail) != ring {
		t.Fatalf("in-memory tail has %d records, want ring size %d", len(tail), ring)
	}
	for i, rec := range tail {
		if want := uint64(n - ring + i); rec.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d (newest records retained in order)", i, rec.Seq, want)
		}
	}
	if err := r.CloseSink(); err != nil {
		t.Fatal(err)
	}
	disk, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(disk) != n {
		t.Fatalf("sink holds %d records, want all %d", len(disk), n)
	}
	for i, rec := range disk {
		if rec.Seq != uint64(i) {
			t.Fatalf("disk[%d].Seq = %d: stream must be dense and ordered", i, rec.Seq)
		}
	}
}

// TestAttachSinkFlushesRetained: records closed before the sink attaches
// are flushed into it, so the sink's stream always starts at Seq 0.
func TestAttachSinkFlushesRetained(t *testing.T) {
	r := New(0)
	for i := 0; i < 5; i++ {
		r.EpochClosed(fullRecord(i))
	}
	var buf bytes.Buffer
	if err := r.AttachSink(NewWriterSink(&buf, FormatBinary), 0); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		r.EpochClosed(fullRecord(i))
	}
	if err := r.CloseSink(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("sink has %d records, want 8 (5 pre-attach + 3 post)", len(got))
	}
	for i, rec := range got {
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has Seq %d", i, rec.Seq)
		}
	}
}

// TestSinkRotation: a tiny rotation budget must produce multiple segments,
// each independently decodable, concatenating to the full ledger in order.
func TestSinkRotation(t *testing.T) {
	for _, format := range []SinkFormat{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ledger.out")
			sink, err := NewFileSink(path, SinkOptions{Format: format, RotateBytes: 2048})
			if err != nil {
				t.Fatal(err)
			}
			const n = 300
			for i := 0; i < n; i++ {
				rec := fullRecord(i)
				rec.Seq = uint64(i)
				if err := sink.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := LedgerSegments(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(segs) < 3 {
				t.Fatalf("only %d segments for %d records at 2KB rotation: %v", len(segs), n, segs)
			}
			for _, seg := range segs {
				st, err := os.Stat(seg)
				if err != nil {
					t.Fatal(err)
				}
				// Rotation must happen at record boundaries, never splitting a
				// frame: every segment decodes cleanly on its own.
				f, err := os.Open(seg)
				if err != nil {
					t.Fatal(err)
				}
				recs, err := DecodeLedger(f)
				f.Close()
				if err != nil {
					t.Fatalf("segment %s (%d bytes) does not decode standalone: %v", seg, st.Size(), err)
				}
				if len(recs) == 0 {
					t.Fatalf("segment %s is empty", seg)
				}
			}
			all, err := ReadLedger(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != n {
				t.Fatalf("reassembled %d records, want %d", len(all), n)
			}
			for i, rec := range all {
				if rec.Seq != uint64(i) {
					t.Fatalf("record %d has Seq %d: segment order broken", i, rec.Seq)
				}
			}
		})
	}
}

// failSink errors after failAfter appends.
type failSink struct {
	n         int
	failAfter int
}

func (s *failSink) Append(EpochRecord) error {
	s.n++
	if s.n > s.failAfter {
		return errors.New("disk full")
	}
	return nil
}
func (s *failSink) Close() error { return nil }

// TestSinkErrorLatched: the first sink error is latched and surfaced by
// SinkErr/CloseSink; recording itself keeps going (tail + metrics).
func TestSinkErrorLatched(t *testing.T) {
	r := New(0)
	if err := r.AttachSink(&failSink{failAfter: 3}, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		r.EpochClosed(fullRecord(i))
	}
	if r.SinkErr() == nil {
		t.Fatal("sink error not latched")
	}
	if got := r.Registry().Counter("quartz.epochs.closed").Value(); got != 6 {
		t.Errorf("metrics stopped at %d epochs after sink error, want 6", got)
	}
	if err := r.CloseSink(); err == nil {
		t.Error("CloseSink did not surface the latched error")
	}
}

// TestLedgerSince covers the cursor in both retention modes.
func TestLedgerSince(t *testing.T) {
	t.Run("bounded", func(t *testing.T) {
		r := New(4) // keeps oldest 4 of 10
		for i := 0; i < 10; i++ {
			r.EpochClosed(fullRecord(i))
		}
		recs, total := r.LedgerSince(2)
		if total != 10 {
			t.Errorf("total = %d, want 10", total)
		}
		if len(recs) != 2 || recs[0].Seq != 2 || recs[1].Seq != 3 {
			t.Errorf("since=2 over retained seqs 0-3: got %d records starting at %v", len(recs), recs)
		}
		if recs, _ := r.LedgerSince(100); len(recs) != 0 {
			t.Errorf("since past the end returned %d records", len(recs))
		}
	})
	t.Run("ring", func(t *testing.T) {
		r := New(0)
		if err := r.AttachSink(NewWriterSink(&bytes.Buffer{}, FormatJSONL), 4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			r.EpochClosed(fullRecord(i))
		}
		// Retained: seqs 6..9. A cursor from 0 jumps to the oldest retained.
		recs, total := r.LedgerSince(0)
		if total != 10 {
			t.Errorf("total = %d, want 10", total)
		}
		if len(recs) != 4 || recs[0].Seq != 6 {
			t.Fatalf("since=0 over ring 6..9: got %d records, first seq %d", len(recs), recs[0].Seq)
		}
		recs, _ = r.LedgerSince(8)
		if len(recs) != 2 || recs[0].Seq != 8 {
			t.Errorf("since=8: got %d records, first %v", len(recs), recs)
		}
	})
}

// TestDecodeLedgerEmptyAndGarbage: edge cases of the sniffing decoder.
func TestDecodeLedgerEmptyAndGarbage(t *testing.T) {
	if recs, err := DecodeLedger(bytes.NewReader(nil)); err != nil || len(recs) != 0 {
		t.Errorf("empty stream: recs=%v err=%v", recs, err)
	}
	if _, err := DecodeLedger(bytes.NewReader([]byte("not a ledger\n"))); err == nil {
		t.Error("garbage stream decoded without error")
	}
	// A truncated binary stream must fail loudly, not silently shorten.
	var buf bytes.Buffer
	s := NewWriterSink(&buf, FormatBinary)
	for i := 0; i < 3; i++ {
		if err := s.Append(fullRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := DecodeLedger(bytes.NewReader(cut)); err == nil {
		t.Error("truncated binary stream decoded without error")
	}
}

// TestParseSinkFormat pins the CLI-facing format names.
func TestParseSinkFormat(t *testing.T) {
	if f, err := ParseSinkFormat("jsonl"); err != nil || f != FormatJSONL {
		t.Errorf("jsonl: %v %v", f, err)
	}
	if f, err := ParseSinkFormat("binary"); err != nil || f != FormatBinary {
		t.Errorf("binary: %v %v", f, err)
	}
	if _, err := ParseSinkFormat("csv"); err == nil {
		t.Error("csv accepted")
	}
}
