package vtprof_test

// Round-trip coverage for the hand-encoded pprof exporter: a minimal
// profile.proto decoder (test-only — the production side stays stdlib-only
// and write-only) decodes what WritePprof emitted, and the decoded samples
// must reproduce the profile exactly. The emulated-run test then reconciles
// the decoded totals against the emulator's independent accounting: total
// virtual_ns equals the scenario's virtual duration, and the inject_*
// categories equal the metrics registry's quartz.delay.injected_ns counter
// to the nanosecond.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"testing"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// ---- minimal profile.proto decoder (field numbers per pprof's proto) ----

type decodedValueType struct{ typ, unit string }

type decodedSample struct {
	stack  []string // leaf-first: category, phases deepest-first, thread
	values []int64  // one per sample type
}

type decodedProfile struct {
	sampleTypes       []decodedValueType
	samples           []decodedSample
	periodType        decodedValueType
	period            int64
	defaultSampleType string
}

func uvarint(t *testing.T, b []byte, i int) (uint64, int) {
	t.Helper()
	var v uint64
	for shift := 0; ; shift += 7 {
		if i >= len(b) {
			t.Fatal("truncated varint")
		}
		c := b[i]
		i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i
		}
	}
}

// fields splits a protobuf message into (field, wiretype, payload) triples;
// varint fields carry the value in num, length-delimited fields in buf.
type field struct {
	num  int
	wire int
	val  uint64
	buf  []byte
}

func parseFields(t *testing.T, b []byte) []field {
	t.Helper()
	var fs []field
	for i := 0; i < len(b); {
		var key uint64
		key, i = uvarint(t, b, i)
		f := field{num: int(key >> 3), wire: int(key & 7)}
		switch f.wire {
		case 0:
			f.val, i = uvarint(t, b, i)
		case 2:
			var n uint64
			n, i = uvarint(t, b, i)
			if i+int(n) > len(b) {
				t.Fatal("truncated length-delimited field")
			}
			f.buf = b[i : i+int(n)]
			i += int(n)
		default:
			t.Fatalf("unexpected wire type %d for field %d", f.wire, f.num)
		}
		fs = append(fs, f)
	}
	return fs
}

func packedUint64s(t *testing.T, f field) []uint64 {
	t.Helper()
	if f.wire == 0 {
		return []uint64{f.val}
	}
	var vs []uint64
	for i := 0; i < len(f.buf); {
		var v uint64
		v, i = uvarint(t, f.buf, i)
		vs = append(vs, v)
	}
	return vs
}

func decodePprof(t *testing.T, gzipped []byte) *decodedProfile {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gzipped))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}

	var (
		strs      []string
		vts       [][2]int64 // (type, unit) string indices, field order
		rawSmpls  [][2][]uint64
		locFunc   = map[uint64]uint64{}
		funcName  = map[uint64]int64{}
		periodVT  [2]int64
		period    int64
		defaultST int64
	)
	for _, f := range parseFields(t, raw) {
		switch f.num {
		case 6: // string_table
			strs = append(strs, string(f.buf))
		case 1, 11: // sample_type, period_type
			var vt [2]int64
			for _, g := range parseFields(t, f.buf) {
				if g.num == 1 {
					vt[0] = int64(g.val)
				} else if g.num == 2 {
					vt[1] = int64(g.val)
				}
			}
			if f.num == 1 {
				vts = append(vts, vt)
			} else {
				periodVT = vt
			}
		case 2: // sample
			var s [2][]uint64
			for _, g := range parseFields(t, f.buf) {
				if g.num == 1 {
					s[0] = append(s[0], packedUint64s(t, g)...)
				} else if g.num == 2 {
					s[1] = append(s[1], packedUint64s(t, g)...)
				}
			}
			rawSmpls = append(rawSmpls, s)
		case 4: // location
			var id, fn uint64
			for _, g := range parseFields(t, f.buf) {
				if g.num == 1 {
					id = g.val
				} else if g.num == 4 { // line
					for _, l := range parseFields(t, g.buf) {
						if l.num == 1 {
							fn = l.val
						}
					}
				}
			}
			locFunc[id] = fn
		case 5: // function
			var id uint64
			var name int64
			for _, g := range parseFields(t, f.buf) {
				if g.num == 1 {
					id = g.val
				} else if g.num == 2 {
					name = int64(g.val)
				}
			}
			funcName[id] = name
		case 12:
			period = int64(f.val)
		case 14:
			defaultST = int64(f.val)
		}
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strs) {
			t.Fatalf("string index %d out of range (%d strings)", i, len(strs))
		}
		return strs[i]
	}
	p := &decodedProfile{
		period:            period,
		periodType:        decodedValueType{str(periodVT[0]), str(periodVT[1])},
		defaultSampleType: str(defaultST),
	}
	for _, vt := range vts {
		p.sampleTypes = append(p.sampleTypes, decodedValueType{str(vt[0]), str(vt[1])})
	}
	for _, s := range rawSmpls {
		ds := decodedSample{}
		for _, loc := range s[0] {
			fn, ok := locFunc[loc]
			if !ok {
				t.Fatalf("sample references unknown location %d", loc)
			}
			ds.stack = append(ds.stack, str(funcName[fn]))
		}
		for _, v := range s[1] {
			ds.values = append(ds.values, int64(v))
		}
		p.samples = append(p.samples, ds)
	}
	return p
}

// total sums decoded values for one sample-type index, optionally filtered by
// leaf frame (the category).
func (p *decodedProfile) total(valueIdx int, leaf string) int64 {
	var sum int64
	for _, s := range p.samples {
		if leaf != "" && (len(s.stack) == 0 || s.stack[0] != leaf) {
			continue
		}
		sum += s.values[valueIdx]
	}
	return sum
}

// rootTotal sums one sample-type index over the samples rooted at the given
// thread frame (the stack's last element).
func (p *decodedProfile) rootTotal(valueIdx int, thread string) int64 {
	var sum int64
	for _, s := range p.samples {
		if len(s.stack) == 0 || s.stack[len(s.stack)-1] != thread {
			continue
		}
		sum += s.values[valueIdx]
	}
	return sum
}

// ---- tests ----

// TestPprofRoundTripExact: encode a known profile and decode it back; the
// header, stacks and values must all survive the trip.
func TestPprofRoundTripExact(t *testing.T) {
	outer := vtprof.Intern("rt.outer")
	inner := vtprof.Intern("rt.inner")
	p := vtprof.New()
	s := p.NewThread("w0", 0)
	s.Push(outer)
	s.Charge(vtprof.Compute, 5*sim.Nanosecond)
	s.Push(inner)
	s.Charge(vtprof.MemStall, 12*sim.Nanosecond)
	s.Pop()
	s.Pop()
	s.ChargeInjected(30*sim.Nanosecond, 15*sim.Nanosecond, 5*sim.Nanosecond, 15*sim.Nanosecond)
	s.Fold(30 * sim.Nanosecond)

	b, err := p.Snapshot().PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	dec := decodePprof(t, b)

	if len(dec.sampleTypes) != 2 ||
		dec.sampleTypes[0] != (decodedValueType{"virtual_ns", "nanoseconds"}) ||
		dec.sampleTypes[1] != (decodedValueType{"injected_ns", "nanoseconds"}) {
		t.Fatalf("sample types = %v", dec.sampleTypes)
	}
	if dec.defaultSampleType != "virtual_ns" || dec.period != 1 ||
		dec.periodType != (decodedValueType{"virtual_ns", "nanoseconds"}) {
		t.Errorf("header: default=%q period=%d periodType=%v",
			dec.defaultSampleType, dec.period, dec.periodType)
	}

	// Every decoded sample is leaf-first: category, phases deepest-first,
	// thread root. Rebuild the (stack → values) map and compare exactly.
	got := map[string][2]int64{}
	for _, s := range dec.samples {
		got[fmt.Sprintf("%v", s.stack)] = [2]int64{s.values[0], s.values[1]}
	}
	want := map[string][2]int64{
		"[compute rt.outer w0]":            {5, 0},
		"[mem_stall rt.inner rt.outer w0]": {7, 0},
		"[inject_read w0]":                 {10, 10},
		"[inject_write w0]":                {5, 5},
		"[sched_wait w0]":                  {3, 0},
	}
	if len(got) != len(want) {
		t.Errorf("decoded %d samples, want %d: %v", len(got), len(want), got)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("sample %s = %v, want %v", k, got[k], w)
		}
	}
}

// TestPprofEmulatedReconciles runs a real emulated MemLat scenario with the
// profiler attached and reconciles the decoded profile against the run's two
// independent accountings: total virtual_ns must equal the scenario's virtual
// duration exactly, and the inject_* categories must equal the metrics
// registry's quartz.delay.injected_ns counter exactly.
func TestPprofEmulatedReconciles(t *testing.T) {
	rec := obs.New(0)
	prof := vtprof.New()
	env, err := bench.NewEnv(bench.EnvConfig{
		Preset: machine.XeonE5_2450,
		Mode:   bench.Emulated,
		Quartz: core.Config{
			NVMLatency: sim.FromNanos(600),
			MaxEpoch:   sim.Millisecond,
			MinEpoch:   20 * sim.Microsecond,
			InitCycles: 1,
			Observer:   rec,
		},
		Profiler: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := bench.BuildMemLat(env.Proc, bench.MemLatConfig{
		Lines: 1 << 18, Chains: 1, Iters: 40_000, Node: env.AllocNode(), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(func(e *bench.Env, th *simos.Thread) {
		ml.Run(th)
		e.CloseEpoch(th)
	}); err != nil {
		t.Fatal(err)
	}

	b, err := prof.Snapshot().PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	dec := decodePprof(t, b)
	if len(dec.sampleTypes) != 2 || dec.sampleTypes[0].typ != "virtual_ns" || dec.sampleTypes[1].typ != "injected_ns" {
		t.Fatalf("sample types = %v", dec.sampleTypes)
	}

	// The main thread was born at virtual 0 and finished last (it joins the
	// emulator's monitor thread before exiting), folding at the scenario's
	// virtual end; the watermark carry makes its charged total exactly the
	// floor of the scenario's virtual duration in nanoseconds. The grand
	// total adds the monitor thread's lifetime on top.
	wantNS := int64(env.Proc.EndTime() / sim.Nanosecond)
	if got := dec.rootTotal(0, "main"); got != wantNS {
		t.Errorf("decoded main-thread virtual_ns = %d, scenario virtual duration = %d ns", got, wantNS)
	}
	if got := dec.total(0, ""); got < wantNS {
		t.Errorf("decoded virtual_ns grand total = %d, below the scenario duration %d ns", got, wantNS)
	}

	// Inject reconciliation, exact: profile inject categories == registry
	// counter == decoded injected_ns column.
	wantInjected := rec.Registry().Counter("quartz.delay.injected_ns").Value()
	if wantInjected == 0 {
		t.Fatal("scenario injected nothing; emulation inactive?")
	}
	injRead := dec.total(0, "inject_read")
	injWrite := dec.total(0, "inject_write")
	if injRead+injWrite != wantInjected {
		t.Errorf("decoded inject_read+inject_write = %d+%d, registry quartz.delay.injected_ns = %d",
			injRead, injWrite, wantInjected)
	}
	if got := dec.total(1, ""); got != wantInjected {
		t.Errorf("decoded injected_ns column total = %d, registry = %d", got, wantInjected)
	}
	if injRead == 0 {
		t.Error("inject_read = 0 on a 600 ns read-latency scenario")
	}
	if injWrite != 0 {
		t.Errorf("inject_write = %d on a symmetric (read-only model) scenario", injWrite)
	}

	// And the exporter-side totals agree with the decoder's view.
	snap := prof.Snapshot()
	if snap.TotalNS() != dec.total(0, "") || snap.InjectedNS() != wantInjected {
		t.Errorf("snapshot totals %d/%d disagree with decoded %d/%d",
			snap.TotalNS(), snap.InjectedNS(), dec.total(0, ""), wantInjected)
	}
}

// TestProfilerDoesNotPerturbVirtualTime: attaching the profiler must not move
// a single virtual clock — the same scenario finishes at the same virtual
// instant with and without it.
func TestProfilerDoesNotPerturbVirtualTime(t *testing.T) {
	run := func(prof *vtprof.Profiler) sim.Time {
		env, err := bench.NewEnv(bench.EnvConfig{
			Preset: machine.XeonE5_2450,
			Mode:   bench.Emulated,
			Quartz: core.Config{
				NVMLatency: sim.FromNanos(400),
				MaxEpoch:   sim.Millisecond,
				MinEpoch:   20 * sim.Microsecond,
				InitCycles: 1,
			},
			Profiler: prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		ml, err := bench.BuildMemLat(env.Proc, bench.MemLatConfig{
			Lines: 1 << 18, Chains: 2, Iters: 20_000, Node: env.AllocNode(), Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Run(func(e *bench.Env, th *simos.Thread) {
			ml.Run(th)
			e.CloseEpoch(th)
		}); err != nil {
			t.Fatal(err)
		}
		return env.Proc.EndTime()
	}
	bare := run(nil)
	profiled := run(vtprof.New())
	if bare != profiled {
		t.Errorf("virtual completion time moved under profiling: %v vs %v", bare, profiled)
	}
}
