// Package vtprof is the virtual-time profiler: it attributes every simulated
// nanosecond of a run to a (thread, phase-stack, category) triple, the same
// hierarchical model pprof applies to wall time. Threads carry a fixed-depth
// stack of interned phase IDs (Thread.PushPhase/PopPhase in internal/simos);
// the accounting points that advance simulated time — instruction advances,
// memory-model latency, epoch delay injection, sync waits, signal delivery —
// charge the elapsed interval to the current stack under one of six
// categories. The steady-state path is allocation-free: charging is integer
// arithmetic on a per-thread tree of pre-faulted nodes, pushing an interned
// phase walks a sibling list, and no map or string is touched until a thread
// folds its series into the job profile at exit.
//
// Attribution is watermark-based: each ThreadSeries remembers the virtual
// clock at its last charge and assigns the whole interval since then to the
// charged category. Femtosecond residues below a nanosecond carry over
// (restFS), so a thread's charged total is exactly
// floor(lifetime / 1ns) — which makes the profile reconcile exactly with the
// obs registry's nanosecond counters (see ChargeInjected).
//
// A nil *Profiler, nil *ThreadSeries, or nil *Suite is inert: every method
// is a cheap no-op, so the instrumentation can stay unconditionally wired
// and costs one pointer test when profiling is off.
package vtprof

import (
	"sort"
	"sync"

	"github.com/quartz-emu/quartz/internal/sim"
)

// Category classifies where a slice of simulated time went.
type Category uint8

const (
	// Compute is instruction execution and fixed per-op costs (including
	// the emulator's own epoch-close cost model).
	Compute Category = iota
	// MemStall is hit-level memory latency: the cycles the memory model
	// charges loads, stores, flushes and fences, including bandwidth
	// throttle stalls (internal/mem).
	MemStall
	// InjectRead is epoch delay injected for the read-latency term
	// (Eq. 2/3).
	InjectRead
	// InjectWrite is epoch delay injected for the asymmetric write term
	// (store model).
	InjectWrite
	// SyncWait is time blocked on mutexes, condition variables, rwmutexes,
	// barriers, joins and nanosleeps.
	SyncWait
	// SchedWait is scheduler/runtime time: signal delivery, spin overshoot
	// past an injection target, and the uncategorized residue charged when
	// a thread folds.
	SchedWait

	// NumCategories bounds per-node value arrays.
	NumCategories = 6
)

var categoryNames = [NumCategories]string{
	"compute", "mem_stall", "inject_read", "inject_write", "sync_wait", "sched_wait",
}

// String returns the category's stable profile-facing name.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "unknown"
}

// Phase is an interned phase name. Interning happens at setup time
// (package init of the tagged workload, typically); pushing and popping a
// Phase on the hot path involves no strings or maps.
type Phase int32

var (
	internMu   sync.Mutex
	phaseNames []string
	phaseIDs   = map[string]Phase{}
)

// Intern returns the stable ID for a phase name, registering it on first
// use. Call it once per distinct name at setup time and keep the Phase.
func Intern(name string) Phase {
	internMu.Lock()
	defer internMu.Unlock()
	if p, ok := phaseIDs[name]; ok {
		return p
	}
	p := Phase(len(phaseNames))
	phaseNames = append(phaseNames, name)
	phaseIDs[name] = p
	return p
}

// Name resolves the phase back to its name (fold/export time only).
func (p Phase) Name() string {
	internMu.Lock()
	defer internMu.Unlock()
	if p >= 0 && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "?"
}

// MaxDepth is the phase-stack depth limit. Pushes beyond it are counted and
// matched against pops but charge to the depth-MaxDepth node, keeping the
// hot path branch-cheap with no error plumbing.
const MaxDepth = 16

// node is one phase-stack frame of one thread's attribution tree. Children
// are a singly linked sibling list — phase stacks are shallow and narrow, so
// a linear walk beats a map and allocates nothing once the tree is built.
type node struct {
	phase  Phase
	parent *node
	child  *node
	sib    *node
	vals   [NumCategories]int64
}

// ThreadSeries accumulates one thread's virtual-time attribution. It is
// owned by the simulated thread (single kernel, cooperative scheduling), so
// no locking happens until Fold.
type ThreadSeries struct {
	prof   *Profiler
	thread string
	root   node
	cur    *node
	// last is the virtual clock at the previous charge; restFS the
	// sub-nanosecond femtosecond residue carried into the next charge.
	last   sim.Time
	restFS sim.Time
	depth  int
	// dropped counts pushes past MaxDepth so pops stay matched.
	dropped int
	folded  bool
}

// NewThread creates the series for a thread born at the given virtual time.
// On a nil profiler it returns nil, which every ThreadSeries call site must
// (and internal/simos does) guard with a pointer test.
func (p *Profiler) NewThread(name string, birth sim.Time) *ThreadSeries {
	if p == nil {
		return nil
	}
	s := &ThreadSeries{prof: p, thread: name, last: birth}
	s.root.phase = -1
	s.cur = &s.root
	return s
}

// Charge attributes the interval since the last charge to cat at the
// current phase stack, moving the watermark to now. Whole nanoseconds are
// charged; the femtosecond remainder carries into the next charge.
func (s *ThreadSeries) Charge(cat Category, now sim.Time) {
	d := now - s.last
	if d < 0 {
		d = 0
	}
	s.last = now
	s.restFS += d
	n := int64(s.restFS / sim.Nanosecond)
	if n == 0 {
		return
	}
	s.restFS -= sim.Time(n) * sim.Nanosecond
	s.cur.vals[cat] += n
}

// ChargeInjected attributes an epoch's delay injection, which spans the
// interval since the last charge: exactly floor(injected/1ns) nanoseconds go
// to the inject categories — the same per-epoch truncation the obs registry
// applies to quartz.delay.injected_ns, so profile and registry reconcile
// exactly — split between InjectWrite and InjectRead by the epoch's
// writeDelay/totalDelay ratio; the rest of the interval (spin overshoot past
// the injection target, plus carried residue) goes to SchedWait.
func (s *ThreadSeries) ChargeInjected(now sim.Time, injected, writeDelay, totalDelay sim.Time) {
	d := now - s.last
	if d < 0 {
		d = 0
	}
	s.last = now
	s.restFS += d
	total := int64(s.restFS / sim.Nanosecond)
	s.restFS -= sim.Time(total) * sim.Nanosecond
	inj := int64(injected / sim.Nanosecond)
	if inj > total {
		inj = total // unreachable: the spin overshoots the target
	}
	var w int64
	if writeDelay > 0 && totalDelay > 0 {
		w = int64(float64(inj) * (float64(writeDelay) / float64(totalDelay)))
		if w > inj {
			w = inj
		}
	}
	v := &s.cur.vals
	v[InjectWrite] += w
	v[InjectRead] += inj - w
	v[SchedWait] += total - inj
}

// Push enters a phase. The first entry of a given phase under the current
// frame allocates its node; re-entry walks the sibling list and is
// allocation-free.
func (s *ThreadSeries) Push(p Phase) {
	if s.depth >= MaxDepth {
		s.dropped++
		return
	}
	s.depth++
	for c := s.cur.child; c != nil; c = c.sib {
		if c.phase == p {
			s.cur = c
			return
		}
	}
	n := &node{phase: p, parent: s.cur, sib: s.cur.child}
	s.cur.child = n
	s.cur = n
}

// Pop leaves the current phase. Unmatched pops at the root are ignored.
func (s *ThreadSeries) Pop() {
	if s.dropped > 0 {
		s.dropped--
		return
	}
	if s.cur.parent != nil {
		s.cur = s.cur.parent
		s.depth--
	}
}

// Fold charges the residue since the last charge to SchedWait and merges
// the series into its profiler. It is idempotent; internal/simos folds at
// thread exit and defensively again after the kernel run (aborts).
func (s *ThreadSeries) Fold(now sim.Time) {
	if s == nil || s.folded {
		return
	}
	s.folded = true
	s.Charge(SchedWait, now)
	s.prof.fold(s)
}

// keySep joins frame names into sample keys; it cannot appear in names.
const keySep = "\x1f"

// Profiler aggregates the folded thread series of one job. Threads of
// several kernels (trial-parallel units) may share one Profiler; folding is
// mutex-protected and commutative, so the aggregate is independent of unit
// scheduling.
type Profiler struct {
	mu      sync.Mutex
	samples map[string]*[NumCategories]int64
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{samples: make(map[string]*[NumCategories]int64)}
}

func (p *Profiler) fold(s *ThreadSeries) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := make([]byte, 0, 64)
	var walk func(n *node)
	walk = func(n *node) {
		pre := len(key)
		if n.phase >= 0 {
			key = append(key, keySep...)
			key = append(key, n.phase.Name()...)
		}
		var any bool
		for _, v := range n.vals {
			if v != 0 {
				any = true
				break
			}
		}
		if any {
			k := s.thread + string(key)
			sv := p.samples[k]
			if sv == nil {
				sv = new([NumCategories]int64)
				p.samples[k] = sv
			}
			for i, v := range n.vals {
				sv[i] += v
			}
		}
		for c := n.child; c != nil; c = c.sib {
			walk(c)
		}
		key = key[:pre]
	}
	walk(&s.root)
}

// Snapshot returns the profiler's samples in canonical (sorted) order. A nil
// profiler snapshots empty.
func (p *Profiler) Snapshot() *Profile {
	prof := &Profile{}
	if p == nil {
		return prof
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.samples))
	for k := range p.samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		prof.Samples = append(prof.Samples, Sample{
			Stack:  splitKey(k),
			Values: *p.samples[k],
		})
	}
	return prof
}

// Suite holds one profiler per runner job, created on demand. A nil Suite
// hands out nil profilers, keeping every downstream layer inert.
type Suite struct {
	mu   sync.Mutex
	jobs map[string]*Profiler
}

// NewSuite creates an empty suite.
func NewSuite() *Suite {
	return &Suite{jobs: make(map[string]*Profiler)}
}

// Job returns the profiler for the named job, creating it on first use.
func (s *Suite) Job(name string) *Profiler {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.jobs[name]
	if p == nil {
		p = New()
		s.jobs[name] = p
	}
	return p
}

// Jobs lists the job names that have profilers, sorted.
func (s *Suite) Jobs() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.jobs))
	for n := range s.jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// JobProfile snapshots one job's profile (empty if the job is unknown).
func (s *Suite) JobProfile(name string) *Profile {
	if s == nil {
		return &Profile{}
	}
	s.mu.Lock()
	p := s.jobs[name]
	s.mu.Unlock()
	return p.Snapshot()
}

// Merged snapshots every job and merges them into the suite profile. The
// merge is a commutative per-key sum (the stats.Accumulator pattern), so the
// result is byte-identical however jobs were scheduled.
func (s *Suite) Merged() *Profile {
	if s == nil {
		return &Profile{}
	}
	profiles := make([]*Profile, 0, 8)
	for _, name := range s.Jobs() {
		profiles = append(profiles, s.JobProfile(name))
	}
	return Merge(profiles...)
}

// PprofBytes encodes the merged suite profile as gzipped pprof protobuf —
// the GET /vtprof payload.
func (s *Suite) PprofBytes() ([]byte, error) {
	return s.Merged().PprofBytes()
}
