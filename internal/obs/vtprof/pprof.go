package vtprof

import (
	"bytes"
	"compress/gzip"
	"io"
)

// This file hand-encodes the pprof profile.proto wire format — small enough
// that a protobuf dependency isn't warranted. Field numbers follow
// github.com/google/pprof/proto/profile.proto:
//
//	Profile:  sample_type=1 sample=2 location=4 function=5 string_table=6
//	          period_type=11 period=12 default_sample_type=14
//	ValueType: type=1 unit=2        (string-table indices)
//	Sample:    location_id=1 value=2 (packed)
//	Location:  id=1 line=4
//	Line:      function_id=1 line=2
//	Function:  id=1 name=2 system_name=3 filename=4
//
// time_nanos is deliberately omitted and the gzip header carries no
// timestamp, so identical profiles encode to identical bytes — the
// determinism contract the parallelism tests pin.

type protoBuf struct{ data []byte }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.data = append(b.data, byte(v)|0x80)
		v >>= 7
	}
	b.data = append(b.data, byte(v))
}

func (b *protoBuf) tag(field, wire int) {
	b.varint(uint64(field)<<3 | uint64(wire))
}

// uint64Field emits a varint field, skipping proto3 zero defaults.
func (b *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(v)
}

func (b *protoBuf) int64Field(field int, v int64) {
	b.uint64Field(field, uint64(v))
}

func (b *protoBuf) bytesField(field int, data []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(data)))
	b.data = append(b.data, data...)
}

func (b *protoBuf) stringField(field int, s string) {
	b.tag(field, 2)
	b.varint(uint64(len(s)))
	b.data = append(b.data, s...)
}

func (b *protoBuf) packedInt64(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	b.bytesField(field, inner.data)
}

func (b *protoBuf) packedUint64(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	b.bytesField(field, inner.data)
}

// WritePprof encodes the profile as gzipped pprof protobuf with two sample
// types, virtual_ns (all simulated time) and injected_ns (the portion that
// is epoch delay injection). Each (stack, category) pair becomes one pprof
// sample whose leaf frame is the category, above it the phase stack
// (deepest phase first), with the thread name as the root frame.
func (p *Profile) WritePprof(w io.Writer) error {
	var (
		strs    = []string{""}
		strIdx  = map[string]int64{"": 0}
		funcIDs = map[string]uint64{}
		funcs   protoBuf
		locs    protoBuf
	)
	sid := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}
	// One function + one location per distinct frame name; location id ==
	// function id. Frames are registered in sample order, deterministically.
	frameLoc := func(name string) uint64 {
		if id, ok := funcIDs[name]; ok {
			return id
		}
		id := uint64(len(funcIDs) + 1)
		funcIDs[name] = id
		var fn protoBuf
		fn.uint64Field(1, id)
		fn.int64Field(2, sid(name))
		fn.int64Field(3, sid(name))
		fn.int64Field(4, sid("virtual"))
		funcs.bytesField(5, fn.data)
		var line protoBuf
		line.uint64Field(1, id)
		var loc protoBuf
		loc.uint64Field(1, id)
		loc.bytesField(4, line.data)
		locs.bytesField(4, loc.data)
		return id
	}

	var out protoBuf
	valueType := func(typ, unit string) []byte {
		var vt protoBuf
		vt.int64Field(1, sid(typ))
		vt.int64Field(2, sid(unit))
		return vt.data
	}
	out.bytesField(1, valueType("virtual_ns", "nanoseconds"))
	out.bytesField(1, valueType("injected_ns", "nanoseconds"))

	var samples protoBuf
	stack := make([]uint64, 0, MaxDepth+2)
	for i := range p.Samples {
		s := &p.Samples[i]
		for c, v := range s.Values {
			if v == 0 {
				continue
			}
			stack = stack[:0]
			stack = append(stack, frameLoc(Category(c).String()))
			for j := len(s.Stack) - 1; j >= 1; j-- {
				stack = append(stack, frameLoc(s.Stack[j]))
			}
			if len(s.Stack) > 0 {
				stack = append(stack, frameLoc(s.Stack[0]))
			}
			inj := int64(0)
			if Category(c) == InjectRead || Category(c) == InjectWrite {
				inj = v
			}
			var sm protoBuf
			sm.packedUint64(1, stack)
			sm.packedInt64(2, []int64{v, inj})
			samples.bytesField(2, sm.data)
		}
	}
	out.data = append(out.data, samples.data...)
	out.data = append(out.data, locs.data...)
	out.data = append(out.data, funcs.data...)

	out.bytesField(11, valueType("virtual_ns", "nanoseconds"))
	out.int64Field(12, 1)
	out.int64Field(14, sid("virtual_ns"))
	// string_table last: sid registrations above must all have landed.
	// Field order within a message is free in protobuf; decoders
	// (including go tool pprof) accept any order.
	var table protoBuf
	for _, s := range strs {
		table.stringField(6, s)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(table.data); err != nil {
		return err
	}
	if _, err := gz.Write(out.data); err != nil {
		return err
	}
	return gz.Close()
}

// PprofBytes renders WritePprof to a byte slice.
func (p *Profile) PprofBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
