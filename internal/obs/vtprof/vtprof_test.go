package vtprof

import (
	"bytes"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/sim"
)

// snapshotOf folds s at now and returns the profiler's canonical snapshot.
func snapshotOf(p *Profiler, s *ThreadSeries, now sim.Time) *Profile {
	s.Fold(now)
	return p.Snapshot()
}

// TestChargeWatermark: each charge attributes the whole interval since the
// previous charge to the given category.
func TestChargeWatermark(t *testing.T) {
	p := New()
	s := p.NewThread("w", 0)
	s.Charge(Compute, 10*sim.Nanosecond)
	s.Charge(MemStall, 25*sim.Nanosecond)
	s.Charge(SyncWait, 25*sim.Nanosecond) // zero-length interval
	prof := snapshotOf(p, s, 25*sim.Nanosecond)
	tot := prof.Totals()
	if tot[Compute] != 10 || tot[MemStall] != 15 || tot[SyncWait] != 0 {
		t.Errorf("totals = %v, want compute=10 mem_stall=15 sync_wait=0", tot)
	}
	if prof.TotalNS() != 25 {
		t.Errorf("TotalNS = %d, want 25", prof.TotalNS())
	}
}

// TestChargeCarry: sub-nanosecond femtosecond residues carry between charges
// so the charged total is exactly floor(lifetime / 1ns), never more.
func TestChargeCarry(t *testing.T) {
	p := New()
	s := p.NewThread("w", 0)
	step := 6 * sim.Nanosecond / 10 // 0.6 ns
	now := sim.Time(0)
	for i := 0; i < 5; i++ { // 3.0 ns total
		now += step
		s.Charge(Compute, now)
	}
	prof := snapshotOf(p, s, now)
	if got := prof.TotalNS(); got != int64(now/sim.Nanosecond) {
		t.Errorf("charged %d ns over a %v lifetime, want %d", got, now, int64(now/sim.Nanosecond))
	}
}

// TestChargeBackwardClock: a clock that does not advance (or an interval
// computed as negative) charges nothing and does not corrupt the watermark.
func TestChargeBackwardClock(t *testing.T) {
	p := New()
	s := p.NewThread("w", 10*sim.Nanosecond)
	s.Charge(Compute, 5*sim.Nanosecond) // behind the watermark
	s.Charge(Compute, 12*sim.Nanosecond)
	prof := snapshotOf(p, s, 12*sim.Nanosecond)
	if got := prof.Totals()[Compute]; got != 7 {
		t.Errorf("compute = %d, want 7 (5 backward + 7 forward)", got)
	}
}

// TestPushPopStacks: charges land on the phase stack in effect at charge
// time; the folded profile carries thread-rooted stacks.
func TestPushPopStacks(t *testing.T) {
	load := Intern("t.load")
	serve := Intern("t.serve")
	p := New()
	s := p.NewThread("w0", 0)
	s.Push(load)
	s.Charge(Compute, 5*sim.Nanosecond)
	s.Pop()
	s.Push(serve)
	s.Push(load) // nested re-use of the same phase name
	s.Charge(MemStall, 9*sim.Nanosecond)
	s.Pop()
	s.Charge(Compute, 10*sim.Nanosecond)
	s.Pop()
	prof := snapshotOf(p, s, 10*sim.Nanosecond)

	want := map[string][NumCategories]int64{
		"w0" + keySep + "t.load":                      {Compute: 5},
		"w0" + keySep + "t.serve" + keySep + "t.load": {MemStall: 9 - 5},
		"w0" + keySep + "t.serve":                     {Compute: 10 - 9},
	}
	for _, smp := range prof.Samples {
		k := strings.Join(smp.Stack, keySep)
		if w, ok := want[k]; ok {
			if smp.Values != w {
				t.Errorf("stack %q values = %v, want %v", k, smp.Values, w)
			}
			delete(want, k)
		}
	}
	for k := range want {
		t.Errorf("missing sample for stack %q", k)
	}
}

// TestDepthOverflow: pushes past MaxDepth are dropped but counted, so the
// matching pops unwind back to exactly the right frame.
func TestDepthOverflow(t *testing.T) {
	deep := Intern("t.deep")
	leaf := Intern("t.leaf")
	p := New()
	s := p.NewThread("w", 0)
	for i := 0; i < MaxDepth+3; i++ {
		s.Push(deep)
	}
	s.Charge(Compute, 4*sim.Nanosecond) // charges at depth MaxDepth
	for i := 0; i < MaxDepth+3; i++ {
		s.Pop()
	}
	// Back at the root: a fresh push must start at depth 1.
	s.Push(leaf)
	s.Charge(MemStall, 6*sim.Nanosecond)
	s.Pop()
	prof := snapshotOf(p, s, 6*sim.Nanosecond)

	for _, smp := range prof.Samples {
		switch {
		case smp.Values[Compute] == 4:
			if len(smp.Stack) != 1+MaxDepth {
				t.Errorf("overflow charge at depth %d, want %d", len(smp.Stack)-1, MaxDepth)
			}
		case smp.Values[MemStall] == 2:
			if len(smp.Stack) != 2 || smp.Stack[1] != "t.leaf" {
				t.Errorf("post-overflow stack = %v, want [w t.leaf]", smp.Stack)
			}
		}
	}
	if got := prof.TotalNS(); got != 6 {
		t.Errorf("TotalNS = %d, want 6", got)
	}
}

// TestUnmatchedPop: pops at the root are ignored, not a crash or underflow.
func TestUnmatchedPop(t *testing.T) {
	p := New()
	s := p.NewThread("w", 0)
	s.Pop()
	s.Pop()
	s.Push(Intern("t.only"))
	s.Charge(Compute, sim.Nanosecond)
	s.Pop()
	s.Pop()
	prof := snapshotOf(p, s, sim.Nanosecond)
	if prof.TotalNS() != 1 {
		t.Errorf("TotalNS = %d, want 1", prof.TotalNS())
	}
}

// TestChargeInjected: the injected nanoseconds split between the write and
// read categories by the writeDelay/totalDelay ratio, and the interval's
// remainder (spin overshoot) goes to SchedWait.
func TestChargeInjected(t *testing.T) {
	p := New()
	s := p.NewThread("w", 0)
	// 100 ns interval, 60 ns injected, write:total delay ratio 1:3.
	s.ChargeInjected(100*sim.Nanosecond, 60*sim.Nanosecond, 10*sim.Nanosecond, 30*sim.Nanosecond)
	prof := snapshotOf(p, s, 100*sim.Nanosecond)
	tot := prof.Totals()
	if tot[InjectWrite] != 20 || tot[InjectRead] != 40 || tot[SchedWait] != 40 {
		t.Errorf("totals = %v, want inject_write=20 inject_read=40 sched_wait=40", tot)
	}
	if prof.InjectedNS() != 60 {
		t.Errorf("InjectedNS = %d, want 60", prof.InjectedNS())
	}
}

// TestChargeInjectedClamped: injected time beyond the elapsed interval clamps
// to the interval (the defensive unreachable branch), and a zero totalDelay
// sends everything to the read term.
func TestChargeInjectedClamped(t *testing.T) {
	p := New()
	s := p.NewThread("w", 0)
	s.ChargeInjected(10*sim.Nanosecond, 50*sim.Nanosecond, 0, 0)
	prof := snapshotOf(p, s, 10*sim.Nanosecond)
	tot := prof.Totals()
	if tot[InjectRead] != 10 || tot[InjectWrite] != 0 || tot[SchedWait] != 0 {
		t.Errorf("totals = %v, want inject_read=10 only", tot)
	}
}

// TestFoldIdempotent: double-folding (thread exit + defensive kernel sweep)
// must not double-count.
func TestFoldIdempotent(t *testing.T) {
	p := New()
	s := p.NewThread("w", 0)
	s.Charge(Compute, 8*sim.Nanosecond)
	s.Fold(10 * sim.Nanosecond) // residue 2 ns → SchedWait
	s.Fold(10 * sim.Nanosecond)
	prof := p.Snapshot()
	tot := prof.Totals()
	if tot[Compute] != 8 || tot[SchedWait] != 2 {
		t.Errorf("totals = %v, want compute=8 sched_wait=2", tot)
	}
	if prof.TotalNS() != 10 {
		t.Errorf("TotalNS = %d, want 10 after double fold", prof.TotalNS())
	}
}

// TestFoldMergesThreadsByName: two series with the same thread name fold into
// one sample row (trial-parallel units sharing a job profiler).
func TestFoldMergesThreadsByName(t *testing.T) {
	p := New()
	a := p.NewThread("w", 0)
	a.Charge(Compute, 3*sim.Nanosecond)
	a.Fold(3 * sim.Nanosecond)
	b := p.NewThread("w", 0)
	b.Charge(Compute, 4*sim.Nanosecond)
	b.Fold(4 * sim.Nanosecond)
	prof := p.Snapshot()
	if len(prof.Samples) != 1 {
		t.Fatalf("samples = %d, want 1 merged row", len(prof.Samples))
	}
	if prof.Samples[0].Values[Compute] != 7 {
		t.Errorf("compute = %d, want 7", prof.Samples[0].Values[Compute])
	}
}

// TestNilInert: nil profiler, series and suite are cheap no-ops end to end.
func TestNilInert(t *testing.T) {
	var p *Profiler
	s := p.NewThread("w", 0)
	if s != nil {
		t.Fatal("nil profiler handed out a series")
	}
	s.Fold(sim.Nanosecond) // nil receiver must not panic
	if prof := p.Snapshot(); len(prof.Samples) != 0 {
		t.Errorf("nil profiler snapshot has %d samples", len(prof.Samples))
	}
	var su *Suite
	if su.Job("x") != nil {
		t.Error("nil suite handed out a profiler")
	}
	if su.Jobs() != nil {
		t.Error("nil suite lists jobs")
	}
	if got := su.Merged(); len(got.Samples) != 0 {
		t.Error("nil suite merged non-empty")
	}
}

// TestMergeCommutative: merging profiles in any order produces byte-identical
// pprof output — the determinism contract behind -parallel layouts.
func TestMergeCommutative(t *testing.T) {
	mk := func(thread string, c Category, ns int64) *Profile {
		p := New()
		s := p.NewThread(thread, 0)
		s.Charge(c, sim.Time(ns)*sim.Nanosecond)
		s.Fold(sim.Time(ns) * sim.Nanosecond)
		return p.Snapshot()
	}
	a := mk("w0", Compute, 5)
	b := mk("w1", MemStall, 7)
	c := mk("w0", InjectRead, 3)

	ab, err := Merge(a, b, c).PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge(c, b, a).PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, ba) {
		t.Error("merge order changed the encoded profile bytes")
	}
	tot := Merge(a, b, c).Totals()
	if tot[Compute] != 5 || tot[MemStall] != 7 || tot[InjectRead] != 3 {
		t.Errorf("merged totals = %v", tot)
	}
}

// TestPprofBytesDeterministic: encoding the same profile twice is
// byte-identical (no timestamps, no map-order leakage).
func TestPprofBytesDeterministic(t *testing.T) {
	p := New()
	s := p.NewThread("w", 0)
	s.Push(Intern("t.phase"))
	s.Charge(Compute, 5*sim.Nanosecond)
	s.Pop()
	s.Fold(5 * sim.Nanosecond)
	prof := p.Snapshot()
	a, err := prof.PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := prof.PprofBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("re-encoding the same profile changed its bytes")
	}
}

// TestWriteFoldedGolden pins the folded-stacks exporter output.
func TestWriteFoldedGolden(t *testing.T) {
	phase := Intern("t.golden")
	p := New()
	s := p.NewThread("w0", 0)
	s.Push(phase)
	s.Charge(Compute, 5*sim.Nanosecond)
	s.Charge(MemStall, 9*sim.Nanosecond)
	s.Pop()
	s.Fold(9 * sim.Nanosecond)

	var buf bytes.Buffer
	if err := p.Snapshot().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "w0;t.golden;compute 5\nw0;t.golden;mem_stall 4\n"
	if got := buf.String(); got != want {
		t.Errorf("folded output:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSuiteJobsAndMerged: job profilers are created on demand, listed sorted,
// and the suite merge sums across jobs.
func TestSuiteJobsAndMerged(t *testing.T) {
	su := NewSuite()
	for _, name := range []string{"b/j1", "a/j0"} {
		p := su.Job(name)
		if p == nil {
			t.Fatalf("Job(%q) = nil", name)
		}
		if su.Job(name) != p {
			t.Errorf("Job(%q) not stable across calls", name)
		}
		s := p.NewThread("w", 0)
		s.Charge(Compute, 2*sim.Nanosecond)
		s.Fold(2 * sim.Nanosecond)
	}
	jobs := su.Jobs()
	if len(jobs) != 2 || jobs[0] != "a/j0" || jobs[1] != "b/j1" {
		t.Errorf("Jobs() = %v, want sorted [a/j0 b/j1]", jobs)
	}
	if got := su.Merged().Totals()[Compute]; got != 4 {
		t.Errorf("merged compute = %d, want 4", got)
	}
	if got := su.JobProfile("a/j0").Totals()[Compute]; got != 2 {
		t.Errorf("job profile compute = %d, want 2", got)
	}
	if got := su.JobProfile("missing"); len(got.Samples) != 0 {
		t.Error("unknown job profile non-empty")
	}
}

// TestInternStable: interning the same name twice returns the same ID, and
// the ID resolves back to the name.
func TestInternStable(t *testing.T) {
	a := Intern("t.stable")
	b := Intern("t.stable")
	if a != b {
		t.Errorf("Intern not stable: %d vs %d", a, b)
	}
	if a.Name() != "t.stable" {
		t.Errorf("Name() = %q", a.Name())
	}
	if Phase(-1).Name() != "?" {
		t.Errorf("out-of-range phase name = %q", Phase(-1).Name())
	}
}

// TestChargeNoAllocs: the steady-state charge path — phase push/pop over an
// already-built tree plus watermark charges — is allocation-free. This is the
// vtprof-on half of the bench-alloc gate; the off half is a nil-series
// pointer test in internal/simos and allocates trivially nothing.
func TestChargeNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	p1 := Intern("t.alloc.outer")
	p2 := Intern("t.alloc.inner")
	p := New()
	s := p.NewThread("w", 0)
	// First pass faults in the tree nodes; afterwards re-entry must not
	// allocate.
	s.Push(p1)
	s.Push(p2)
	s.Pop()
	s.Pop()
	now := sim.Time(0)
	avg := testing.AllocsPerRun(1000, func() {
		now += 3 * sim.Nanosecond / 2
		s.Push(p1)
		s.Charge(Compute, now)
		s.Push(p2)
		now += sim.Nanosecond
		s.Charge(MemStall, now)
		s.Pop()
		s.Pop()
		now += 2 * sim.Nanosecond
		s.ChargeInjected(now, sim.Nanosecond, 0, 0)
	})
	if avg != 0 {
		t.Errorf("steady-state charge path allocates %.1f/op, want 0", avg)
	}
}
