//go:build race

package vtprof

// raceEnabled reports whether the race detector is compiled in; the
// allocation gates skip under it because its instrumentation allocates.
const raceEnabled = true
