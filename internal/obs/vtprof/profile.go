package vtprof

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one (thread, phase-stack) row of a snapshot: Stack[0] is the
// thread name, Stack[1:] the phase stack root-first, Values the per-category
// virtual nanoseconds.
type Sample struct {
	Stack  []string
	Values [NumCategories]int64
}

// Profile is a canonical profiler snapshot: samples sorted by stack, stable
// across fold order, worker count and trial parallelism. It is the input to
// both exporters (pprof protobuf and folded stacks).
type Profile struct {
	Samples []Sample
}

func splitKey(k string) []string {
	return strings.Split(k, keySep)
}

func joinStack(stack []string) string {
	return strings.Join(stack, keySep)
}

// Merge sums profiles sample-by-sample into a new canonical profile. The sum
// is commutative and associative, so merged output is independent of the
// order jobs finished in.
func Merge(profiles ...*Profile) *Profile {
	acc := make(map[string]*[NumCategories]int64)
	for _, p := range profiles {
		if p == nil {
			continue
		}
		for i := range p.Samples {
			s := &p.Samples[i]
			k := joinStack(s.Stack)
			sv := acc[k]
			if sv == nil {
				sv = new([NumCategories]int64)
				acc[k] = sv
			}
			for c, v := range s.Values {
				sv[c] += v
			}
		}
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := &Profile{}
	for _, k := range keys {
		out.Samples = append(out.Samples, Sample{Stack: splitKey(k), Values: *acc[k]})
	}
	return out
}

// Totals sums the profile per category.
func (p *Profile) Totals() [NumCategories]int64 {
	var t [NumCategories]int64
	for i := range p.Samples {
		for c, v := range p.Samples[i].Values {
			t[c] += v
		}
	}
	return t
}

// TotalNS is the profile's total virtual nanoseconds across all categories.
func (p *Profile) TotalNS() int64 {
	var sum int64
	for _, v := range p.Totals() {
		sum += v
	}
	return sum
}

// InjectedNS is the profile's total injected delay (read + write terms).
func (p *Profile) InjectedNS() int64 {
	t := p.Totals()
	return t[InjectRead] + t[InjectWrite]
}

// WriteFolded emits the profile in folded-stacks form, one line per
// (stack, category) with a nonzero value:
//
//	thread;phase1;...;phaseN;category virtual_ns
//
// sorted, ready for inferno/flamegraph.pl.
func (p *Profile) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range p.Samples {
		s := &p.Samples[i]
		base := strings.Join(s.Stack, ";")
		for c, v := range s.Values {
			if v == 0 {
				continue
			}
			bw.WriteString(base)
			bw.WriteByte(';')
			bw.WriteString(Category(c).String())
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(v, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
