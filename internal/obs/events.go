package obs

import (
	"sync"
	"sync/atomic"
)

// Event is one live-stream notification from a Recorder: an epoch close, a
// delay injection, a throttle-register programming, or an experiment-runner
// job completion. Events exist for the introspection plane (SSE streaming,
// quartztop); the ledger and the metrics registry remain the authoritative
// records — an overloaded subscriber loses events, never ledger records.
type Event struct {
	// Kind discriminates the payload: "epoch", "inject", "throttle", "job",
	// "traffic".
	Kind string `json:"kind"`

	// Epoch close / injection fields (Kind "epoch" and "inject"). Seq is the
	// ledger sequence number of the epoch, so an SSE consumer can correlate
	// events with /ledger records.
	Seq        uint64  `json:"seq,omitempty"`
	PID        int     `json:"pid,omitempty"`
	TID        int     `json:"tid,omitempty"`
	Reason     string  `json:"reason,omitempty"`
	LenNS      float64 `json:"len_ns,omitempty"`
	DelayNS    float64 `json:"delay_ns,omitempty"`
	InjectedNS float64 `json:"injected_ns,omitempty"`

	// Path is the throttled memory path ("read" or "write") for Kind
	// "throttle".
	Path string `json:"path,omitempty"`

	// Runner job fields (Kind "job").
	Job      string  `json:"job,omitempty"`
	Status   string  `json:"status,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	WallMS   float64 `json:"wall_ms,omitempty"`

	// Traffic scenario progress fields (Kind "traffic"): the scenario name,
	// its client count and op mix, measured-op progress, and the live
	// throughput/p99 of the measurement window so far (simulated time).
	Scenario  string  `json:"scenario,omitempty"`
	Clients   int     `json:"clients,omitempty"`
	Mix       string  `json:"mix,omitempty"`
	Done      int64   `json:"done,omitempty"`
	TotalOps  int64   `json:"total_ops,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	P99NS     float64 `json:"p99_ns,omitempty"`
}

// eventHub fans events out to subscribers over buffered channels. Publishing
// never blocks: a subscriber whose buffer is full loses the event (counted
// in dropped). With zero subscribers publish is a single atomic load, so the
// recording hot path pays nothing when nobody is streaming.
type eventHub struct {
	active  atomic.Int32
	dropped atomic.Int64

	mu   sync.Mutex
	subs map[int]chan Event
	next int
}

// publish delivers ev to every subscriber that has buffer space.
func (h *eventHub) publish(ev Event) {
	if h.active.Load() == 0 {
		return
	}
	h.mu.Lock()
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// subscribe registers a new subscriber with the given channel buffer
// (<= 0 selects a default of 1024) and returns its channel plus a cancel
// function. Events published after subscribe returns are delivered in
// publish order; cancel is idempotent and leaves any buffered events
// readable.
func (h *eventHub) subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 1024
	}
	ch := make(chan Event, buf)
	h.mu.Lock()
	if h.subs == nil {
		h.subs = make(map[int]chan Event)
	}
	id := h.next
	h.next++
	h.subs[id] = ch
	h.mu.Unlock()
	h.active.Add(1)

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, id)
			h.mu.Unlock()
			h.active.Add(-1)
		})
	}
	return ch, cancel
}

// Events subscribes to the recorder's live event stream (see Event). buf is
// the subscriber's channel buffer (<= 0 selects the default). The returned
// cancel function must be called when done; it is idempotent. A nil recorder
// returns a nil channel (which blocks forever) and a no-op cancel.
func (r *Recorder) Events(buf int) (<-chan Event, func()) {
	if r == nil {
		return nil, func() {}
	}
	return r.hub.subscribe(buf)
}

// EventsDropped reports how many events were lost to full subscriber
// buffers since the recorder was created.
func (r *Recorder) EventsDropped() int64 {
	if r == nil {
		return 0
	}
	return r.hub.dropped.Load()
}

// epochEvents publishes the epoch-close event (and the injection event when
// the epoch actually injected delay) for rec. Called with r.mu held so that
// event order matches ledger order exactly.
func (r *Recorder) epochEvents(rec EpochRecord) {
	if r.hub.active.Load() == 0 {
		return
	}
	ev := Event{
		Kind:       "epoch",
		Seq:        rec.Seq,
		PID:        rec.PID,
		TID:        rec.TID,
		Reason:     rec.Reason,
		LenNS:      rec.Len().Nanoseconds(),
		DelayNS:    rec.Delay.Nanoseconds(),
		InjectedNS: rec.Injected.Nanoseconds(),
	}
	r.hub.publish(ev)
	if rec.Injected > 0 {
		ev.Kind = "inject"
		r.hub.publish(ev)
	}
}
