package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a")
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("a") != c {
		t.Error("Counter(name) did not return the existing counter")
	}
	g := reg.Gauge("g")
	g.Set(1.5)
	g.Add(1.0)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %g, want 2.5", g.Value())
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 1010 {
		t.Errorf("sum = %d, want 1010", s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 0/1000", s.Min, s.Max)
	}
	// 0, 1 and the clamped -5 land in "<=1"; 2 in "<=2"; 3, 4 in "<=4";
	// 1000 in "<=1024".
	want := map[string]int64{"<=1": 3, "<=2": 1, "<=4": 2, "<=1024": 1}
	for k, n := range want {
		if s.Buckets[k] != n {
			t.Errorf("bucket %q = %d, want %d (all: %v)", k, s.Buckets[k], n, s.Buckets)
		}
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("shared").Add(1)
				reg.Histogram("h").Observe(int64(i))
				reg.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
	if got := reg.Histogram("h").Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestWriteJSONSortedAndParseable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.last").Add(1)
	reg.Counter("a.first").Add(2)
	reg.Gauge("m.gauge").Set(0.5)
	reg.Histogram("h.hist").Observe(7)

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	var parsed map[string]any
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if parsed["a.first"] != float64(2) {
		t.Errorf("a.first = %v, want 2", parsed["a.first"])
	}
	if strings.Index(out, `"a.first"`) > strings.Index(out, `"z.last"`) {
		t.Error("keys are not sorted")
	}
	hist, ok := parsed["h.hist"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("histogram snapshot malformed: %v", parsed["h.hist"])
	}
}

// TestLocalHistogramFlushEquivalence: a LocalHistogram flushed in batches
// (into two destinations at once) must leave the shared histograms exactly
// as per-op Observe calls would have — same snapshot, byte for byte.
func TestLocalHistogramFlushEquivalence(t *testing.T) {
	var direct Histogram
	var dst, dst2 Histogram
	var local LocalHistogram

	vals := []int64{0, 1, 2, 3, 1000, -5, 1 << 20, 7, 7, 7, 1 << 40, 42}
	for i, v := range vals {
		direct.Observe(v)
		local.Observe(v)
		if i%4 == 3 {
			local.FlushInto(&dst, &dst2)
		}
	}
	local.FlushInto(&dst, &dst2)
	// Repeated flushes with nothing new must be no-ops.
	local.FlushInto(&dst, &dst2)

	want := fmt.Sprint(direct.Snapshot())
	if got := fmt.Sprint(dst.Snapshot()); got != want {
		t.Errorf("flushed primary differs from direct:\ngot  %s\nwant %s", got, want)
	}
	if got := fmt.Sprint(dst2.Snapshot()); got != want {
		t.Errorf("flushed secondary differs from direct:\ngot  %s\nwant %s", got, want)
	}
	if local.Count() != int64(len(vals)) {
		t.Errorf("local count = %d, want %d", local.Count(), len(vals))
	}
}

// TestLocalHistogramFlushIntoWarmDestination: flushing into a histogram that
// already has direct observations must merge, not replace — min/max and
// counts combine.
func TestLocalHistogramFlushIntoWarmDestination(t *testing.T) {
	var dst Histogram
	dst.Observe(100)
	dst.Observe(200)

	var local LocalHistogram
	local.Observe(5)
	local.Observe(1 << 30)
	local.FlushInto(&dst, nil)

	s := dst.Snapshot()
	if s.Count != 4 || s.Min != 5 || s.Max != 1<<30 {
		t.Errorf("merged snapshot = count %d min %d max %d, want 4/5/%d", s.Count, s.Min, s.Max, int64(1)<<30)
	}
	if s.Sum != 100+200+5+1<<30 {
		t.Errorf("merged sum = %d", s.Sum)
	}
}
