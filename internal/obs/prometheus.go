package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of the metrics registry, the
// format every Prometheus-compatible scraper and agent ingests. The JSON
// snapshot (WriteJSON / WriteMetricsJSON) stays the primary, lossless export;
// this view maps the same metrics onto the exposition's three families:
//
//   - counters and gauges emit one sample each;
//   - histograms emit the cumulative _bucket series over the power-of-two
//     bucket bounds (plus the mandatory le="+Inf" bucket), then _sum and
//     _count — exactly the shape promQL's histogram_quantile expects.
//
// Metric names are sanitized for the exposition grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): the registry's dotted names become
// underscore-separated ("quartz.epochs.closed" → "quartz_epochs_closed"),
// and any other illegal byte also maps to '_'. Output is sorted by
// sanitized name, so the exposition is byte-stable for a fixed registry
// state and golden-testable.

// promName sanitizes a registry metric name for the exposition grammar.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float64 sample value (Prometheus accepts Go's
// shortest-representation float syntax, including exponent forms).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format, sorted by sanitized name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type metric struct {
		name string
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	ms := make([]metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		ms = append(ms, metric{name: promName(name), c: c})
	}
	for name, g := range r.gauges {
		ms = append(ms, metric{name: promName(name), g: g})
	}
	for name, h := range r.hists {
		ms = append(ms, metric{name: promName(name), h: h})
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	bw := bufio.NewWriter(w)
	for _, m := range ms {
		switch {
		case m.c != nil:
			bw.WriteString("# TYPE " + m.name + " counter\n")
			bw.WriteString(m.name + " " + strconv.FormatInt(m.c.Value(), 10) + "\n")
		case m.g != nil:
			bw.WriteString("# TYPE " + m.name + " gauge\n")
			bw.WriteString(m.name + " " + promFloat(m.g.Value()) + "\n")
		default:
			writePromHistogram(bw, m.name, m.h)
		}
	}
	return bw.Flush()
}

// writePromHistogram emits one histogram family: cumulative buckets over the
// nonzero power-of-two bounds, the mandatory +Inf bucket, then sum and count.
func writePromHistogram(bw *bufio.Writer, name string, h *Histogram) {
	bw.WriteString("# TYPE " + name + " histogram\n")
	var cum int64
	for k := 0; k < histBuckets; k++ {
		n := h.bkt[k].Load()
		if n == 0 {
			continue
		}
		cum += n
		if k >= 63 {
			// The top bucket's bound overflows int64; it folds into +Inf.
			continue
		}
		le := strconv.FormatInt(int64(1)<<uint(k), 10)
		bw.WriteString(name + `_bucket{le="` + le + `"} ` + strconv.FormatInt(cum, 10) + "\n")
	}
	bw.WriteString(name + `_bucket{le="+Inf"} ` + strconv.FormatInt(cum, 10) + "\n")
	bw.WriteString(name + "_sum " + strconv.FormatInt(h.sum.Load(), 10) + "\n")
	bw.WriteString(name + "_count " + strconv.FormatInt(h.count.Load(), 10) + "\n")
}

// WritePrometheus writes the recorder's metrics in the Prometheus text
// exposition format, refreshing the same ledger/event gauges
// WriteMetricsJSON refreshes so both exports describe identical state. It is
// a no-op on a nil recorder.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	dropped := r.droppedLocked()
	retained := len(r.ledger)
	total := r.total
	r.mu.Unlock()
	r.reg.Gauge("obs.ledger.retained").Set(float64(retained))
	r.reg.Gauge("obs.ledger.dropped").Set(float64(dropped))
	r.reg.Gauge("obs.ledger.total").Set(float64(total))
	r.reg.Gauge("obs.events.dropped").Set(float64(r.hub.dropped.Load()))
	return r.reg.WritePrometheus(w)
}
