package obshttp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/runner"
	"github.com/quartz-emu/quartz/internal/sim"
)

func testRecord(i int) obs.EpochRecord {
	t := sim.Time(i+1) * sim.Millisecond
	return obs.EpochRecord{
		PID: 1, TID: i % 4, Start: t, End: t + sim.Millisecond,
		Reason:      "max",
		StallCycles: uint64(100 * (i + 1)), L3MissLocal: uint64(50 + i),
		Delay: sim.Time(i) * sim.Microsecond, Injected: sim.Time(i) * sim.Microsecond,
	}
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp
}

// TestMetricsEndpoint: /metrics must serve the exact registry snapshot the
// -metrics-out export writes, so the two always reconcile.
func TestMetricsEndpoint(t *testing.T) {
	rec := obs.New(0)
	for i := 0; i < 7; i++ {
		rec.EpochClosed(testRecord(i))
	}
	srv := httptest.NewServer(Handler(Options{Recorder: rec}))
	defer srv.Close()

	var metrics map[string]json.RawMessage
	resp := getJSON(t, srv.URL+"/metrics", &metrics)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var closed int64
	if err := json.Unmarshal(metrics["quartz.epochs.closed"], &closed); err != nil || closed != 7 {
		t.Errorf("quartz.epochs.closed = %s (err %v), want 7", metrics["quartz.epochs.closed"], err)
	}
	// Histogram entries must carry the quantile summaries.
	var hist struct {
		P50 float64 `json:"p50"`
	}
	raw, ok := metrics["quartz.epoch.len_ns"]
	if !ok {
		t.Fatalf("quartz.epoch.len_ns missing; have %d keys", len(metrics))
	}
	if err := json.Unmarshal(raw, &hist); err != nil || hist.P50 <= 0 {
		t.Errorf("epoch length p50 = %v (err %v), want > 0", hist.P50, err)
	}
}

// TestLedgerCursor: paging through /ledger with ?since cursors must visit
// every record exactly once, in order, and terminate.
func TestLedgerCursor(t *testing.T) {
	rec := obs.New(0)
	const n = 25
	for i := 0; i < n; i++ {
		rec.EpochClosed(testRecord(i))
	}
	srv := httptest.NewServer(Handler(Options{Recorder: rec}))
	defer srv.Close()

	var got []obs.EpochRecord
	since := uint64(0)
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("cursor did not terminate")
		}
		var page LedgerPage
		getJSON(t, fmt.Sprintf("%s/ledger?since=%d&limit=10", srv.URL, since), &page)
		if page.Total != n {
			t.Fatalf("total = %d, want %d", page.Total, n)
		}
		if page.Truncated {
			t.Fatal("truncated reported with full retention")
		}
		got = append(got, page.Records...)
		if len(page.Records) == 0 {
			if page.More {
				t.Fatal("empty page claims more")
			}
			break
		}
		if len(page.Records) == 10 != page.More && uint64(len(got)) < n {
			t.Fatalf("page of %d records, more=%v, collected %d", len(page.Records), page.More, len(got))
		}
		since = page.Next
	}
	if len(got) != n {
		t.Fatalf("cursor visited %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

// TestLedgerTruncation: when the tail ring has evicted early records, the
// page must say so rather than silently skipping them.
func TestLedgerTruncation(t *testing.T) {
	rec := obs.New(0)
	if err := rec.AttachSink(obs.NewWriterSink(discardWriter{}, obs.FormatJSONL), 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec.EpochClosed(testRecord(i))
	}
	srv := httptest.NewServer(Handler(Options{Recorder: rec}))
	defer srv.Close()

	var page LedgerPage
	getJSON(t, srv.URL+"/ledger?since=0", &page)
	if !page.Truncated {
		t.Error("truncation not reported")
	}
	if len(page.Records) != 4 || page.Records[0].Seq != 6 {
		t.Errorf("got %d records starting at seq %v, want ring tail 6..9",
			len(page.Records), page.Records)
	}
	if page.Total != 10 {
		t.Errorf("total = %d, want 10", page.Total)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestLedgerBadQuery: malformed cursors are client errors, not 500s or
// silent defaults.
func TestLedgerBadQuery(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{Recorder: obs.New(0)}))
	defer srv.Close()
	for _, q := range []string{"?since=abc", "?limit=-1", "?since=1.5"} {
		resp, err := http.Get(srv.URL + "/ledger" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /ledger%s: %s, want 400", q, resp.Status)
		}
	}
}

// TestRunsEndpoint: with a board attached /runs serves the suite snapshot;
// without one it 404s so pollers can distinguish "no runner" from "empty".
func TestRunsEndpoint(t *testing.T) {
	board := runner.NewStatusBoard()
	board.SuiteStarted([]string{"overhead", "bandwidth"}, []int{3, 2})
	board.JobFinished(runner.Result{JobID: "overhead/0", Experiment: "overhead", Status: runner.StatusOK})
	board.JobFinished(runner.Result{JobID: "overhead/1", Experiment: "overhead", Status: runner.StatusFailed})
	board.ExperimentFinished("bandwidth", errors.New("boom"))

	srv := httptest.NewServer(Handler(Options{Recorder: obs.New(0), Status: board}))
	defer srv.Close()

	var snap runner.StatusSnapshot
	getJSON(t, srv.URL+"/runs", &snap)
	if snap.TotalJobs != 5 || snap.DoneJobs != 2 || snap.FailedJobs != 1 {
		t.Errorf("snapshot totals: %+v", snap)
	}
	if len(snap.Experiments) != 2 {
		t.Fatalf("%d experiments", len(snap.Experiments))
	}

	bare := httptest.NewServer(Handler(Options{Recorder: obs.New(0)}))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("no board: %s, want 404", resp.Status)
	}
}

// sseClient reads one SSE stream line-by-line, delivering parsed events.
type sseEvent struct {
	kind string
	data obs.Event
}

func openSSE(t *testing.T, url string) (<-chan sseEvent, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	// Wait for the ready comment: events recorded after this point must be
	// delivered in order.
	ready := make(chan struct{})
	ch := make(chan sseEvent, 1024)
	go func() {
		defer close(ch)
		var kind string
		opened := false
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == ": stream open":
				if !opened {
					opened = true
					close(ready)
				}
			case strings.HasPrefix(line, "event: "):
				kind = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var ev obs.Event
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err == nil {
					ch <- sseEvent{kind: kind, data: ev}
				}
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		resp.Body.Close()
		t.Fatal("SSE stream never signalled ready")
	}
	return ch, func() { resp.Body.Close() }
}

// TestEventsSSEOrderMatchesLedger: the SSE epoch stream must replay the
// ledger exactly — same sequence numbers, same order — even under
// concurrent closers.
func TestEventsSSEOrderMatchesLedger(t *testing.T) {
	rec := obs.New(0)
	srv := httptest.NewServer(Handler(Options{Recorder: rec}))
	defer srv.Close()

	ch, cancel := openSSE(t, srv.URL+"/events?kinds=epoch")
	defer cancel()

	const workers = 4
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec.EpochClosed(testRecord(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	var seqs []uint64
	deadline := time.After(10 * time.Second)
	for len(seqs) < total {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d/%d events", len(seqs), total)
			}
			if ev.kind != "epoch" {
				t.Fatalf("kinds filter leaked a %q event", ev.kind)
			}
			seqs = append(seqs, ev.data.Seq)
		case <-deadline:
			t.Fatalf("timed out after %d/%d events", len(seqs), total)
		}
	}
	ledger := rec.Ledger()
	if len(ledger) != total {
		t.Fatalf("ledger has %d records", len(ledger))
	}
	for i, s := range seqs {
		if s != ledger[i].Seq {
			t.Fatalf("event %d has seq %d, ledger has %d: SSE order diverges from ledger",
				i, s, ledger[i].Seq)
		}
	}
}

// TestConcurrentClosesAndPolling: hammer EpochClosed while polling every
// endpoint; run under -race this is the data-race gate for the whole plane.
func TestConcurrentClosesAndPolling(t *testing.T) {
	rec := obs.New(0)
	if err := rec.AttachSink(obs.NewWriterSink(discardWriter{}, obs.FormatBinary), 64); err != nil {
		t.Fatal(err)
	}
	board := runner.NewStatusBoard()
	board.SuiteStarted([]string{"x"}, []int{1000})
	srv := httptest.NewServer(Handler(Options{Recorder: rec, Status: board}))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.EpochClosed(testRecord(i))
				if i%50 == 0 {
					board.JobFinished(runner.Result{JobID: "x/j", Experiment: "x", Status: runner.StatusOK})
				}
			}
		}(w)
	}
	for _, path := range []string{"/metrics", "/ledger?since=0", "/runs", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %s", path, resp.Status)
				}
				resp.Body.Close()
			}
		}(path)
	}
	// SSE subscriber churning while epochs close.
	_, cancelSSE := openSSE(t, srv.URL+"/events")
	time.Sleep(50 * time.Millisecond)
	cancelSSE()
	close(stop)
	wg.Wait()
	if err := rec.SinkErr(); err != nil {
		t.Errorf("sink error under load: %v", err)
	}
	if got := rec.Total(); got != 800 {
		t.Errorf("total = %d, want 800", got)
	}
}

// TestStartServesAndCloses: the background Server binds an ephemeral port,
// reports a dialable URL, serves, and shuts down.
func TestStartServesAndCloses(t *testing.T) {
	rec := obs.New(0)
	rec.EpochClosed(testRecord(0))
	s, err := Start("127.0.0.1:0", Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	url := s.URL()
	if !strings.HasPrefix(url, "http://127.0.0.1:") {
		t.Fatalf("URL = %q", url)
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestIndexAndMethodFiltering: the mux serves the index only at "/" exactly
// and rejects non-GET methods.
func TestIndexAndMethodFiltering(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{Recorder: obs.New(0)}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("index: %s", resp.Status)
	}
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: %s, want 404", resp.Status)
	}
	resp, err = http.Post(srv.URL+"/metrics", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: %s, want 405", resp.Status)
	}
}

// TestMetricsPrometheusFormat: ?format=prometheus switches /metrics to the
// text exposition; the default JSON stays unchanged; an unknown format is a
// client error.
func TestMetricsPrometheusFormat(t *testing.T) {
	rec := obs.New(0)
	rec.EpochClosed(testRecord(0))
	srv := httptest.NewServer(Handler(Options{Recorder: rec}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus format: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE quartz_epochs_closed counter",
		"quartz_epochs_closed 1",
		"# TYPE quartz_epoch_len_ns histogram",
		`quartz_epoch_len_ns_bucket{le="+Inf"} 1`,
		"quartz_epoch_len_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// The default stays JSON.
	var metrics map[string]json.RawMessage
	getJSON(t, srv.URL+"/metrics", &metrics)
	if _, ok := metrics["quartz.epochs.closed"]; !ok {
		t.Error("default JSON export lost quartz.epochs.closed")
	}

	resp, err = http.Get(srv.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("format=xml: %s, want 400", resp.Status)
	}
}

// TestVTProfEndpoint: /vtprof serves the profile bytes when a source is
// attached and 404s when none is, so pollers can distinguish "no profiler"
// from an error.
func TestVTProfEndpoint(t *testing.T) {
	payload := []byte("\x1f\x8b-not-really-gzip-but-bytes")
	srv := httptest.NewServer(Handler(Options{
		Recorder: obs.New(0),
		VTProf:   func() ([]byte, error) { return payload, nil },
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/vtprof")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/vtprof: %s", resp.Status)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("/vtprof served %d bytes, want the %d profile bytes", len(body), len(payload))
	}

	bare := httptest.NewServer(Handler(Options{Recorder: obs.New(0)}))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/vtprof")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("no profiler: %s, want 404", resp.Status)
	}
}

// TestDebugPprofMount: /debug/pprof/ exists only when DebugPprof is set.
func TestDebugPprofMount(t *testing.T) {
	on := httptest.NewServer(Handler(Options{Recorder: obs.New(0), DebugPprof: true}))
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("DebugPprof on: /debug/pprof/ = %s, want 200", resp.Status)
	}

	off := httptest.NewServer(Handler(Options{Recorder: obs.New(0)}))
	defer off.Close()
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DebugPprof off: /debug/pprof/ = %s, want 404", resp.Status)
	}
}
