// Package obshttp is the live introspection plane: an embeddable HTTP
// server exposing a running emulation's observability surfaces
// (internal/obs) while the run is still going — the -serve flag on
// quartzbench and quartzrun, and the backend cmd/quartztop polls.
//
// Endpoints:
//
//	GET /          human-readable index
//	GET /healthz   liveness probe ("ok")
//	GET /metrics   metrics-registry snapshot (sorted JSON, same schema as
//	               -metrics-out, including histogram p50/p95/p99);
//	               ?format=prometheus switches to the Prometheus text
//	               exposition (cumulative _bucket/_sum/_count histograms)
//	GET /ledger    incremental epoch-ledger cursor:
//	               ?since=N  first sequence number wanted (default 0)
//	               ?limit=M  max records per page (default 1000, cap 10000)
//	GET /runs      experiment-runner suite/job status (404 without a board)
//	GET /events    Server-Sent Events stream of live Events:
//	               ?kinds=epoch,job  optional kind filter
//	GET /vtprof    virtual-time profile, pprof protobuf (gzipped; 404 when
//	               no profiler is attached)
//
// With Options.DebugPprof the host-side net/http/pprof handlers are mounted
// under /debug/pprof/ — host CPU/heap profiles of the emulator itself, as
// opposed to /vtprof's simulated-time attribution.
//
// Everything is read-only and safe to poll while the run mutates state;
// see doc/live-monitoring.md for schemas and examples.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/runner"
)

// Options configures the handler's data sources.
type Options struct {
	// Recorder feeds /metrics, /ledger and /events. Required.
	Recorder *obs.Recorder
	// Status feeds /runs; nil makes /runs respond 404 (quartzrun has no
	// experiment runner).
	Status *runner.StatusBoard
	// VTProf feeds /vtprof: it returns the current virtual-time profile as
	// gzipped pprof protobuf bytes (vtprof.Suite.PprofBytes, or a single
	// profiler's). Nil makes /vtprof respond 404.
	VTProf func() ([]byte, error)
	// DebugPprof mounts net/http/pprof under /debug/pprof/ (host-side
	// profiles of the emulator process). Off by default: the introspection
	// plane stays read-only cheap unless explicitly asked for.
	DebugPprof bool
}

// LedgerPage is the /ledger response schema.
type LedgerPage struct {
	// Total is the number of epochs ever closed.
	Total uint64 `json:"total"`
	// Next is the ?since cursor that continues after this page.
	Next uint64 `json:"next"`
	// Truncated reports that records between ?since and the first returned
	// record have been evicted from the in-memory tail (they are still in
	// the ledger sink, if one is attached).
	Truncated bool `json:"truncated"`
	// More reports that another page is immediately available (the page was
	// cut by ?limit, not by the ledger's end).
	More    bool              `json:"more"`
	Records []obs.EpochRecord `json:"records"`
}

// Handler builds the introspection mux over o's sources.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", index)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		switch format := r.URL.Query().Get("format"); format {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			if err := o.Recorder.WriteMetricsJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "prometheus":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := o.Recorder.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want json or prometheus)", format),
				http.StatusBadRequest)
		}
	})
	mux.HandleFunc("GET /vtprof", func(w http.ResponseWriter, r *http.Request) {
		if o.VTProf == nil {
			http.Error(w, "no virtual-time profiler attached (run with -vtprof)", http.StatusNotFound)
			return
		}
		b, err := o.VTProf()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="vtprof.pb.gz"`)
		w.Write(b) //nolint:errcheck // client disconnects are not actionable
	})
	if o.DebugPprof {
		// The default net/http/pprof handlers register on DefaultServeMux;
		// mount them here explicitly so nothing leaks onto the default mux.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /ledger", func(w http.ResponseWriter, r *http.Request) {
		ledger(o.Recorder, w, r)
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		if o.Status == nil {
			http.Error(w, "no experiment runner attached", http.StatusNotFound)
			return
		}
		writeJSON(w, o.Status.Snapshot())
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		events(o.Recorder, w, r)
	})
	return mux
}

// index is the human-facing endpoint listing.
func index(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `quartz live introspection
  /metrics          metrics-registry snapshot (JSON; ?format=prometheus for text exposition)
  /ledger?since=N   incremental epoch-ledger cursor (JSON)
  /runs             experiment-runner suite status (JSON)
  /events           live event stream (SSE; ?kinds=epoch,inject,throttle,job)
  /vtprof           virtual-time profile (pprof protobuf, gzipped)
  /healthz          liveness probe
`)
}

// writeJSON marshals v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ledger serves one page of the incremental epoch-ledger cursor.
func ledger(rec *obs.Recorder, w http.ResponseWriter, r *http.Request) {
	since, err := queryUint(r, "since", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := queryUint(r, "limit", 1000)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if limit == 0 || limit > 10000 {
		limit = 10000
	}
	recs, total := rec.LedgerSince(since)
	page := LedgerPage{Total: total, Next: since}
	if uint64(len(recs)) > limit {
		recs = recs[:limit]
		page.More = true
	}
	page.Records = recs
	if len(recs) > 0 {
		page.Next = recs[len(recs)-1].Seq + 1
		page.Truncated = recs[0].Seq > since
	} else if page.Records == nil {
		page.Records = []obs.EpochRecord{} // render [], not null
	}
	writeJSON(w, page)
}

// queryUint parses an optional unsigned query parameter.
func queryUint(r *http.Request, name string, def uint64) (uint64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: must be a non-negative integer", name, s)
	}
	return v, nil
}

// events streams recorder events as Server-Sent Events until the client
// disconnects. Each event is "event: <kind>\ndata: <json>\n\n"; a comment
// line is sent first so clients know the subscription is active.
func events(rec *obs.Recorder, w http.ResponseWriter, r *http.Request) {
	if rec == nil {
		http.Error(w, "no recorder attached", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var kinds map[string]bool
	if q := r.URL.Query().Get("kinds"); q != "" {
		kinds = make(map[string]bool)
		for _, k := range strings.Split(q, ",") {
			kinds[strings.TrimSpace(k)] = true
		}
	}

	ch, cancel := rec.Events(0)
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	// The open comment doubles as the subscribed-and-ready signal: events
	// recorded after the client reads it are guaranteed to be delivered (or
	// counted as dropped), never silently predate the subscription.
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case ev := <-ch:
			if kinds != nil && !kinds[ev.Kind] {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
			fl.Flush()
		}
	}
}

// Server is a started introspection server bound to a listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. ":8077", "127.0.0.1:0") and serves the
// introspection handler in the background until Close.
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspection server: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(o),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return &Server{ln: ln, srv: srv}, nil
}

// Addr is the bound listen address (resolves ":0" to the real port).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// URL is the server's base URL with a dialable host (wildcard listen
// addresses render as 127.0.0.1).
func (s *Server) URL() string {
	host, port, err := net.SplitHostPort(s.ln.Addr().String())
	if err != nil {
		return "http://" + s.ln.Addr().String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Close immediately shuts the server down, cutting open SSE streams.
func (s *Server) Close() error { return s.srv.Close() }
