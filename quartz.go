// Package quartz is the public API of the Quartz persistent-memory
// performance emulator reproduction (Volos et al., Middleware 2015).
//
// The emulator models the two performance characteristics of emerging
// byte-addressable NVM that dominate end-to-end application performance —
// latency and bandwidth — without modeling device internals. Bandwidth is
// emulated by programming the memory controller's thermal-control throttle
// registers; latency is emulated epoch-based: hardware performance counters
// supply memory stall cycles, an analytic model (Eqs. 1–4 of the paper)
// converts them to a required delay, and the delay is injected by spinning
// on the timestamp counter at epoch boundaries — including before lock
// releases, so delays propagate between threads.
//
// Because the original system requires hardware access unavailable to a Go
// process (rdpmc, PCI thermal registers, LD_PRELOAD), this reproduction
// runs applications on a deterministic simulated machine (NUMA sockets,
// cache hierarchy, DRAM channels, PMCs) that exposes exactly the interfaces
// the real emulator needs. See DESIGN.md for the substitution map.
//
// Quick start:
//
//	sys, err := quartz.NewSystem(quartz.IvyBridge, quartz.Config{
//		NVMLatency: quartz.Nanoseconds(500),
//	})
//	if err != nil { ... }
//	err = sys.Run(func(t *quartz.Thread) {
//		buf, _ := sys.PMalloc(1 << 20)
//		t.Load(buf) // served at emulated NVM speed
//	})
//	fmt.Println(sys.Stats().Suggestion())
package quartz

import (
	"fmt"

	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/perf"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

// Re-exported core types. Aliases let downstream code use the engine types
// without importing internal packages.
type (
	// Time is simulated time (femtoseconds); see Nanoseconds.
	Time = sim.Time
	// Machine is an assembled simulated server.
	Machine = machine.Machine
	// MachineConfig customizes a machine beyond the presets.
	MachineConfig = machine.Config
	// Preset selects one of the paper's three Xeon testbeds.
	Preset = machine.Preset
	// Process is a simulated application process.
	Process = simos.Process
	// ProcessOptions tunes OS costs and thread/memory placement.
	ProcessOptions = simos.Options
	// Thread is a simulated POSIX thread; workloads run on it.
	Thread = simos.Thread
	// Mutex is an interposable POSIX-style mutex.
	Mutex = simos.Mutex
	// Cond is an interposable POSIX-style condition variable.
	Cond = simos.Cond
	// Config parameterizes the emulator (latency target, bandwidth cap,
	// epochs, model selection, two-memory mode, ...).
	Config = core.Config
	// Emulator is an attached Quartz instance.
	Emulator = core.Emulator
	// Stats is the emulator's §3.2 statistics and feedback.
	Stats = core.Stats
	// Model selects the Eq. 2 stall model or the Eq. 1 ablation.
	Model = core.Model
	// Family is a processor generation (counter event file).
	Family = perf.Family
	// Recorder is the epoch-level observability sink: a per-epoch ledger,
	// an aggregated metrics registry, and a Chrome trace-event exporter. A
	// nil *Recorder is a valid no-op. See doc/observability.md.
	Recorder = obs.Recorder
	// EpochRecord is one closed epoch as recorded in the ledger.
	EpochRecord = obs.EpochRecord
)

// The paper's three dual-socket testbeds (§4.1).
const (
	// SandyBridge is the Intel Xeon E5-2450 testbed (97/163 ns).
	SandyBridge = machine.XeonE5_2450
	// IvyBridge is the Intel Xeon E5-2660 v2 testbed (87/176 ns).
	IvyBridge = machine.XeonE5_2660v2
	// Haswell is the Intel Xeon E5-2650 v3 testbed (120/175 ns).
	Haswell = machine.XeonE5_2650v3
)

// Latency model selectors.
const (
	// ModelStall is the paper's Eq. 2 (MLP-aware, default).
	ModelStall = core.ModelStall
	// ModelSimple is the naive Eq. 1 baseline.
	ModelSimple = core.ModelSimple
)

// Nanoseconds converts nanoseconds to simulated Time.
func Nanoseconds(ns float64) Time { return sim.FromNanos(ns) }

// Milliseconds converts milliseconds to simulated Time.
func Milliseconds(ms float64) Time { return sim.FromNanos(ms * 1e6) }

// NewMachine assembles one of the paper's testbeds.
func NewMachine(p Preset) (*Machine, error) { return machine.NewPreset(p) }

// NewCustomMachine assembles a machine from an explicit configuration.
func NewCustomMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// PresetMachineConfig returns preset p's full configuration so callers can
// customize it (e.g. scale the cache hierarchy to a workload) before
// NewCustomMachine.
func PresetMachineConfig(p Preset) MachineConfig { return machine.PresetConfig(p) }

// NewCustomSystem is NewSystem on a custom machine configuration.
func NewCustomSystem(mcfg MachineConfig, cfg Config) (*System, error) {
	m, err := NewCustomMachine(mcfg)
	if err != nil {
		return nil, err
	}
	opts := DefaultProcessOptions()
	opts.AllowedSockets = []int{0}
	opts.Lookahead = 2 * sim.Microsecond
	proc, err := NewProcess(m, opts)
	if err != nil {
		return nil, err
	}
	emu, err := Attach(proc, cfg)
	if err != nil {
		return nil, err
	}
	return &System{Machine: m, Process: proc, Emulator: emu}, nil
}

// NewProcess creates a simulated process on a machine.
func NewProcess(m *Machine, opts ProcessOptions) (*Process, error) {
	return simos.NewProcess(m, opts)
}

// DefaultProcessOptions returns the standard simulated-OS cost model.
func DefaultProcessOptions() ProcessOptions { return simos.DefaultOptions() }

// Attach prepares emulation of a process, exactly as loading the real
// library via LD_PRELOAD would: it programs counters and throttle registers
// through the kernel-module layer and interposes on pthread entry points.
func Attach(p *Process, cfg Config) (*Emulator, error) { return core.Attach(p, cfg) }

// System bundles machine + process + emulator for the common case.
type System struct {
	Machine  *Machine
	Process  *Process
	Emulator *Emulator
}

// NewSystem assembles a preset machine, a process bound to socket 0, and an
// attached emulator. For two-memory mode set cfg.TwoMemory; PMalloc then
// serves from the virtual-NVM socket.
func NewSystem(p Preset, cfg Config) (*System, error) {
	m, err := NewMachine(p)
	if err != nil {
		return nil, err
	}
	opts := DefaultProcessOptions()
	opts.AllowedSockets = []int{0}
	opts.Lookahead = 2 * sim.Microsecond
	proc, err := NewProcess(m, opts)
	if err != nil {
		return nil, err
	}
	emu, err := Attach(proc, cfg)
	if err != nil {
		return nil, err
	}
	return &System{Machine: m, Process: proc, Emulator: emu}, nil
}

// Run executes fn as the emulated process's main thread.
func (s *System) Run(fn func(*Thread)) error { return s.Emulator.Run(fn) }

// Malloc allocates volatile memory per process policy.
func (s *System) Malloc(size uintptr) (uintptr, error) { return s.Process.Malloc(size) }

// PMalloc allocates persistent memory through the emulator.
func (s *System) PMalloc(size uintptr) (uintptr, error) { return s.Emulator.PMalloc(size) }

// Stats returns the emulator's accumulated statistics (valid after Run).
func (s *System) Stats() Stats { return s.Emulator.Stats() }

// String describes the system.
func (s *System) String() string {
	return fmt.Sprintf("%s on %s", s.Emulator, s.Machine.Config().Name)
}

// LoadConfigFile reads a Config from an nvmemul.ini-style file, the
// configuration format of the original Quartz release. See core.ParseINI
// for the schema and doc/config.md for the key reference.
func LoadConfigFile(path string) (Config, error) { return core.LoadINIFile(path) }

// NewRecorder creates an observability recorder whose epoch ledger keeps at
// most ledgerLimit records (<= 0 selects the default limit). Attach it to an
// emulation via Config.Observer:
//
//	rec := quartz.NewRecorder(0)
//	sys, _ := quartz.NewSystem(quartz.IvyBridge, quartz.Config{
//		NVMLatency: quartz.Nanoseconds(500),
//		Observer:   rec,
//	})
//	_ = sys.Run(workload)
//	_ = rec.WriteChromeTrace(traceFile)  // epochs as Perfetto slices
//	_ = rec.WriteMetricsJSON(os.Stdout)  // aggregated counters
func NewRecorder(ledgerLimit int) *Recorder { return obs.New(ledgerLimit) }
