package quartz

import (
	"math"
	"strings"
	"testing"
)

func TestNewSystemAndRun(t *testing.T) {
	sys, err := NewSystem(IvyBridge, Config{
		NVMLatency: Nanoseconds(400),
		InitCycles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var measured float64
	err = sys.Run(func(th *Thread) {
		buf, err := sys.PMalloc(64 << 20)
		if err != nil {
			th.Failf("pmalloc: %v", err)
		}
		// Chase far beyond the L3 so every access misses.
		const n = 1 << 19
		const iters = 30_000
		cur := uintptr(0)
		start := th.Now()
		for i := 0; i < iters; i++ {
			th.Load(buf + cur*64)
			cur = (cur*1103515245 + 12345) % n
		}
		sys.Emulator.CloseEpoch(th)
		measured = float64(th.Now()-start) / iters / 1e6 // ns per access
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-400)/400 > 0.08 {
		t.Errorf("facade chase measured %.1fns, want ~400ns", measured)
	}
	st := sys.Stats()
	if st.Epochs == 0 {
		t.Error("no epochs recorded through facade")
	}
	if s := sys.String(); !strings.Contains(s, "E5-2660") {
		t.Errorf("System.String() = %q", s)
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	if _, err := NewSystem(SandyBridge, Config{NVMLatency: Nanoseconds(10)}); err == nil {
		t.Error("NVM below DRAM accepted through facade")
	}
}

func TestTimeHelpers(t *testing.T) {
	if Nanoseconds(1).Nanoseconds() != 1 {
		t.Error("Nanoseconds round trip failed")
	}
	if Milliseconds(2).Milliseconds() != 2 {
		t.Error("Milliseconds round trip failed")
	}
}

func TestPresetsDiffer(t *testing.T) {
	a, err := NewMachine(SandyBridge)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMachine(Haswell)
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().Name == b.Config().Name {
		t.Error("presets produced identical machines")
	}
}
