# Build/test/bench entry points. `make` runs vet + race tests (the tier-1
# gate plus the race detector over the parallel runner); `make ci` adds the
# documentation and formatting checks.

GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet test bench-quick bench bench-alloc bench-compare bench-smoke serve-smoke traffic-smoke asym-smoke profile-smoke full-results docs-check ci

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# docs-check gates the documentation: no dead relative links anywhere in
# the Markdown tree (README, DESIGN, doc/ book, ...), gofmt-clean sources,
# and a clean vet.
docs-check:
	$(GO) run ./cmd/docscheck .
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

ci: docs-check test bench-alloc bench-smoke serve-smoke traffic-smoke asym-smoke profile-smoke

# serve-smoke end-to-end checks the live introspection plane: quartzbench
# -serve on an ephemeral port with a streaming ledger sink, probed by
# quartztop -once (validates /metrics, /ledger and /runs).
serve-smoke:
	sh scripts/serve-smoke.sh

# traffic-smoke end-to-end checks the traffic scenario engine: a narrowed
# traffic-sweep through quartzbench -serve, asserting a well-formed SLO
# report, live traffic metrics on the probe, and a dense streamed ledger.
traffic-smoke:
	sh scripts/traffic-smoke.sh

# asym-smoke end-to-end checks the asymmetric read/write model: both
# calibrated-profile sweeps must diverge in the documented directions
# (Optane W/R < 1 with a bandwidth collapse past 4 writers, PCM W/R > 1),
# the -write-latency/-nvm-profile overrides must land, and bad values must
# exit 2 upfront. The store-stall 0-alloc gate runs under bench-alloc.
asym-smoke:
	sh scripts/asym-smoke.sh

# profile-smoke end-to-end checks the virtual-time profiler: a narrowed
# traffic-sweep with -vtprof and -serve, asserting `go tool pprof -top`
# parses the merged suite profile with nonzero inject_read time and that
# the live /vtprof endpoint serves the profile. The profiler's charge-path
# 0-alloc gate runs under bench-alloc.
profile-smoke:
	sh scripts/profile-smoke.sh

# bench-quick regenerates two representative artifacts on the parallel
# runner — a fast smoke test of the whole stack — and runs the hot-path
# micro-benchmarks (cache walk, core load, kernel dispatch, emulated epoch
# close, ledger append), which must report 0 allocs/op on steady-state
# paths; see doc/performance.md.
bench-quick:
	$(GO) run ./cmd/quartzbench -exp table2,fig8 -scale quick -parallel 4
	$(GO) test -bench='BenchmarkCache|BenchmarkPrefetcher' -benchtime=100000x -run=^$$ ./internal/cache
	$(GO) test -bench='BenchmarkCore' -benchtime=100000x -run=^$$ ./internal/cpu
	$(GO) test -bench='BenchmarkKernel' -benchtime=100000x -run=^$$ ./internal/sim
	$(GO) test -bench='BenchmarkEmulated' -benchtime=10000x -run=^$$ ./internal/bench
	$(GO) test -bench='BenchmarkEpochClosedStreaming' -benchtime=100000x -run=^$$ ./internal/obs
	$(GO) test -bench='BenchmarkWorkload' -benchtime=100000x -run=^$$ ./internal/workload

# bench-alloc runs the allocation-regression gates: testing.AllocsPerRun
# asserting zero allocations on the steady-state epoch-close, batched
# load/store, prefetcher, ledger-append, and traffic measured-op paths. Runs
# without -race (the race runtime allocates); `make test` still covers these
# files race-enabled with the gates skipped.
bench-alloc:
	$(GO) test -run 'NoAllocs' -count=1 ./internal/bench ./internal/cache ./internal/obs ./internal/obs/vtprof ./internal/workload

# bench-compare times the quick suite experiment by experiment (min of
# three passes each) with intra-experiment trial parallelism on, diffs
# against the committed BENCH_7 artifact, and rewrites it — the
# perf-trajectory record. Fails (after writing, so the numbers survive for
# inspection) if the quick suite regressed more than 5% against the
# committed artifact. Wall times on a shared host drift day to day
# (doc/performance.md shows ~8% across two days on identical code), so
# treat a small positive delta as noise unless an interleaved A/B confirms
# it; the committed artifact must come from a same-day baseline run.
bench-compare:
	$(GO) run ./cmd/benchcompare -exp fig11,fig12,fig13 -scale quick -runs 3 -trial-parallel 4 -baseline BENCH_7.json -o BENCH_7.json -fail-above 5

# bench-smoke exercises the bench-compare flow on one fast experiment
# without touching the committed artifact (the ci hook).
bench-smoke:
	$(GO) run ./cmd/benchcompare -exp table2 -scale quick -runs 1 -o ""

# bench runs every paper artifact as testing.B benchmarks at quick scale.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# full-results regenerates EXPERIMENTS.md's numbers (slow).
full-results:
	$(GO) run ./cmd/quartzbench -exp all -scale full -parallel 0 -progress -o full_results.txt
