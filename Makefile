# Build/test/bench entry points. `make` runs vet + race tests (the tier-1
# gate plus the race detector over the parallel runner); `make ci` adds the
# documentation and formatting checks.

GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet test bench-quick bench full-results docs-check ci

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# docs-check gates the documentation: no dead relative links anywhere in
# the Markdown tree (README, DESIGN, doc/ book, ...), gofmt-clean sources,
# and a clean vet.
docs-check:
	$(GO) run ./cmd/docscheck .
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

ci: docs-check test

# bench-quick regenerates two representative artifacts on the parallel
# runner — a fast smoke test of the whole stack.
bench-quick:
	$(GO) run ./cmd/quartzbench -exp table2,fig8 -scale quick -parallel 4

# bench runs every paper artifact as testing.B benchmarks at quick scale.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# full-results regenerates EXPERIMENTS.md's numbers (slow).
full-results:
	$(GO) run ./cmd/quartzbench -exp all -scale full -parallel 0 -progress -o full_results.txt
