#!/bin/sh
# profile-smoke: end-to-end check of the virtual-time profiler.
#
# Runs a narrowed traffic-sweep through quartzbench with -vtprof and
# -serve, probes the live /vtprof endpoint with `quartztop -once`, then
# verifies the on-disk artifacts: `go tool pprof -top` must parse the
# merged suite profile and attribute nonzero virtual time to inject_read
# (the 600 ns NVM latency guarantees injected read stalls), and the folded
# flame-graph text must agree. No fixed ports, no tools beyond the repo's
# binaries and the Go toolchain's own pprof.
set -eu

workdir=$(mktemp -d)
bench_pid=""
cleanup() {
    [ -n "$bench_pid" ] && kill "$bench_pid" 2>/dev/null || true
    [ -n "$bench_pid" ] && wait "$bench_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "profile-smoke: building quartzbench and quartztop"
go build -o "$workdir/quartzbench" ./cmd/quartzbench
go build -o "$workdir/quartztop" ./cmd/quartztop

# The profiles are written before the linger window opens, so once the
# server lingers both the files and the live /vtprof snapshot are ready.
"$workdir/quartzbench" -exp traffic-sweep -scale quick \
    -traffic-clients 16 -traffic-mixes read-mostly -traffic-lats 600 \
    -vtprof "$workdir/prof" \
    -serve 127.0.0.1:0 -serve-linger 60s \
    >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
bench_pid=$!

addr=""
for _ in $(seq 1 300); do
    if grep -q "introspection server lingering" "$workdir/stderr.log" 2>/dev/null; then
        addr=$(sed -n 's/.*serving introspection on \(http:[^ ]*\).*/\1/p' "$workdir/stderr.log" | head -n 1)
        break
    fi
    if ! kill -0 "$bench_pid" 2>/dev/null; then
        echo "profile-smoke: quartzbench exited before lingering" >&2
        cat "$workdir/stderr.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "profile-smoke: server never reached the linger phase" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi
echo "profile-smoke: probing $addr"

# quartztop -once reports the live profile's size; a profiled run must
# serve a nonzero pprof payload on /vtprof.
"$workdir/quartztop" -addr "$addr" -once | tee "$workdir/probe.log"
if ! grep -Eq 'vtprof: [1-9][0-9]* bytes' "$workdir/probe.log"; then
    echo "profile-smoke: /vtprof served no profile bytes" >&2
    exit 1
fi

kill -INT "$bench_pid"
wait "$bench_pid" || {
    echo "profile-smoke: quartzbench exited non-zero" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
}
bench_pid=""

for f in suite.pb.gz suite.folded; do
    if ! [ -s "$workdir/prof/$f" ]; then
        echo "profile-smoke: -vtprof wrote no $f" >&2
        ls -l "$workdir/prof" >&2 || true
        exit 1
    fi
done

# The merged profile must be a well-formed pprof file with the injected
# read latency showing up as attributed virtual time.
go tool pprof -top -nodecount=200 "$workdir/prof/suite.pb.gz" \
    >"$workdir/top.log" 2>"$workdir/pprof-err.log" || {
    echo "profile-smoke: go tool pprof failed on suite.pb.gz" >&2
    cat "$workdir/pprof-err.log" >&2
    exit 1
}
if ! grep -q 'inject_read' "$workdir/top.log"; then
    echo "profile-smoke: pprof -top attributes no time to inject_read" >&2
    cat "$workdir/top.log" >&2
    exit 1
fi
if ! grep -q 'inject_read' "$workdir/prof/suite.folded"; then
    echo "profile-smoke: folded stacks miss inject_read" >&2
    exit 1
fi

echo "profile-smoke: pprof -top summary:"
head -n 12 "$workdir/top.log"
echo "profile-smoke: OK"
