#!/bin/sh
# serve-smoke: end-to-end check of the live introspection plane.
#
# Runs quartzbench with -serve on an ephemeral port and a streaming ledger
# sink, waits for the suite to finish (the server lingers), probes
# /metrics, /ledger and /runs with `quartztop -once` (which validates the
# JSON), then interrupts the linger so the sink seals and checks the
# streamed ledger is non-empty. No fixed ports, no tools beyond the repo's
# own binaries.
set -eu

workdir=$(mktemp -d)
bench_pid=""
cleanup() {
    [ -n "$bench_pid" ] && kill "$bench_pid" 2>/dev/null || true
    [ -n "$bench_pid" ] && wait "$bench_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building quartzbench and quartztop"
go build -o "$workdir/quartzbench" ./cmd/quartzbench
go build -o "$workdir/quartztop" ./cmd/quartztop

# -serve-linger keeps the server up after the (fast) suite so the probe
# reads a finished run's numbers; SIGINT below cuts the linger short.
"$workdir/quartzbench" -exp overhead -scale quick \
    -serve 127.0.0.1:0 -serve-linger 60s \
    -ledger-out "$workdir/ledger.jsonl" \
    >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
bench_pid=$!

# Wait for the suite to finish: "introspection server lingering ..." on
# stderr follows the address announcement.
addr=""
for _ in $(seq 1 300); do
    if grep -q "introspection server lingering" "$workdir/stderr.log" 2>/dev/null; then
        addr=$(sed -n 's/.*serving introspection on \(http:[^ ]*\).*/\1/p' "$workdir/stderr.log" | head -n 1)
        break
    fi
    if ! kill -0 "$bench_pid" 2>/dev/null; then
        echo "serve-smoke: quartzbench exited before lingering" >&2
        cat "$workdir/stderr.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: server never reached the linger phase" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi
echo "serve-smoke: probing $addr"

# quartztop -once GETs /metrics, /ledger and /runs, validates the JSON and
# summarizes; a non-zero exit fails the smoke test.
"$workdir/quartztop" -addr "$addr" -once | tee "$workdir/probe.log"
if ! grep -q "epochs closed" "$workdir/probe.log"; then
    echo "serve-smoke: probe output missing metrics summary" >&2
    exit 1
fi

# SIGINT ends the linger; quartzbench then seals the ledger sink and exits.
kill -INT "$bench_pid"
wait "$bench_pid" || {
    echo "serve-smoke: quartzbench exited non-zero" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
}
bench_pid=""
if ! [ -s "$workdir/ledger.jsonl" ]; then
    echo "serve-smoke: ledger sink wrote nothing" >&2
    exit 1
fi
records=$(wc -l < "$workdir/ledger.jsonl")
echo "serve-smoke: ledger streamed $records records"
echo "serve-smoke: OK"
