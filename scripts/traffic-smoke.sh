#!/bin/sh
# traffic-smoke: end-to-end check of the traffic scenario engine.
#
# Runs a seconds-scale traffic-sweep through quartzbench with -serve and a
# streaming ledger sink, narrowed by the -traffic-* flags to one mix and two
# client counts. Asserts the rendered SLO report is well formed (every sweep
# row present, knee/summary notes emitted), probes the live plane with
# `quartztop -once` (which must show the traffic op counters), and checks the
# streamed ledger is dense. No fixed ports, no tools beyond the repo's own
# binaries.
set -eu

workdir=$(mktemp -d)
bench_pid=""
cleanup() {
    [ -n "$bench_pid" ] && kill "$bench_pid" 2>/dev/null || true
    [ -n "$bench_pid" ] && wait "$bench_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "traffic-smoke: building quartzbench and quartztop"
go build -o "$workdir/quartzbench" ./cmd/quartzbench
go build -o "$workdir/quartztop" ./cmd/quartztop

# A narrowed sweep: one mix, three client counts (quick scale's defaults for
# latency dimension), kept seconds-scale. -serve-linger keeps the server up
# after the suite for the probe; SIGINT below cuts it short.
"$workdir/quartzbench" -exp traffic-sweep -scale quick \
    -traffic-clients 8,24,64 -traffic-mixes read-mostly \
    -serve 127.0.0.1:0 -serve-linger 60s \
    -ledger-out "$workdir/ledger.jsonl" \
    >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
bench_pid=$!

addr=""
for _ in $(seq 1 600); do
    if grep -q "introspection server lingering" "$workdir/stderr.log" 2>/dev/null; then
        addr=$(sed -n 's/.*serving introspection on \(http:[^ ]*\).*/\1/p' "$workdir/stderr.log" | head -n 1)
        break
    fi
    if ! kill -0 "$bench_pid" 2>/dev/null; then
        echo "traffic-smoke: quartzbench exited before lingering" >&2
        cat "$workdir/stderr.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "traffic-smoke: server never reached the linger phase" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi

# The SLO report: one row per (mix, latency, clients) cell and the knee /
# SLO-breach summary notes under the table.
for clients in 8 24 64; do
    if ! grep -q "read-mostly.*[^0-9]$clients " "$workdir/stdout.log"; then
        echo "traffic-smoke: SLO table missing clients=$clients row" >&2
        cat "$workdir/stdout.log" >&2
        exit 1
    fi
done
if ! grep -q "knee" "$workdir/stdout.log"; then
    echo "traffic-smoke: SLO report has no knee summary" >&2
    cat "$workdir/stdout.log" >&2
    exit 1
fi
echo "traffic-smoke: SLO report well formed"

# The large-client smoke point: traffic-mega at quick scale pushes the
# engine's flat client state and O(1) scheduling to 16k clients per scenario
# (64x the quick sweep's largest point) and must still finish in seconds.
echo "traffic-smoke: traffic-mega large-client point"
"$workdir/quartzbench" -exp traffic-mega -scale quick >"$workdir/mega.log" 2>&1 || {
    echo "traffic-smoke: traffic-mega failed" >&2
    cat "$workdir/mega.log" >&2
    exit 1
}
for clients in 4096 16384; do
    if ! grep -q "^$clients " "$workdir/mega.log"; then
        echo "traffic-smoke: traffic-mega table missing clients=$clients row" >&2
        cat "$workdir/mega.log" >&2
        exit 1
    fi
done
echo "traffic-smoke: traffic-mega OK"

echo "traffic-smoke: probing $addr"
"$workdir/quartztop" -addr "$addr" -once | tee "$workdir/probe.log"
if ! grep -q "^traffic: " "$workdir/probe.log"; then
    echo "traffic-smoke: probe output missing traffic summary" >&2
    exit 1
fi

# SIGINT ends the linger; quartzbench seals the ledger sink and exits.
kill -INT "$bench_pid"
wait "$bench_pid" || {
    echo "traffic-smoke: quartzbench exited non-zero" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
}
bench_pid=""
if ! [ -s "$workdir/ledger.jsonl" ]; then
    echo "traffic-smoke: ledger sink wrote nothing" >&2
    exit 1
fi
records=$(wc -l < "$workdir/ledger.jsonl")
if [ "$records" -lt 10 ]; then
    echo "traffic-smoke: ledger too sparse ($records records)" >&2
    exit 1
fi
echo "traffic-smoke: ledger streamed $records records"
echo "traffic-smoke: OK"
