#!/bin/sh
# asym-smoke: end-to-end check of the asymmetric read/write latency model.
#
# Runs the two asymmetric-model sweeps through quartzbench at quick scale and
# asserts the calibrated profiles actually diverge: Optane's W/R ratio below
# 1 (ADR-buffered stores beat its reads), PCM's above 1 (the classic write
# penalty), and the -write-latency override reflected in the rendered table.
# Also exercises the CLI validation contract (bad values exit 2 before any
# experiment runs) and a quartzrun workload under an NVM profile. No fixed
# ports, no tools beyond the repo's own binaries.
set -eu

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT INT TERM

echo "asym-smoke: building quartzbench and quartzrun"
go build -o "$workdir/quartzbench" ./cmd/quartzbench
go build -o "$workdir/quartzrun" ./cmd/quartzrun

echo "asym-smoke: fig12-asym + fig11-asym at quick scale"
"$workdir/quartzbench" -exp fig12-asym,fig11-asym -scale quick \
    >"$workdir/asym.log" 2>"$workdir/asym.err" || {
    echo "asym-smoke: asymmetric sweeps failed" >&2
    cat "$workdir/asym.err" >&2
    exit 1
}

for profile in optane-dcpmm pcm; do
    if ! grep -q "$profile" "$workdir/asym.log"; then
        echo "asym-smoke: tables missing profile $profile" >&2
        cat "$workdir/asym.log" >&2
        exit 1
    fi
done

# The divergence claim itself: every Optane W/R (last column of the
# fig12-asym table) must be < 1, every PCM W/R > 1.
awk '
    /^== fig12-asym/ { in12 = 1 }
    /^\(fig12-asym/  { in12 = 0 }
    in12 && /optane-dcpmm/ && $NF >= 1 { print "optane W/R " $NF " not < 1"; bad = 1 }
    in12 && / pcm /         && $NF <= 1 { print "pcm W/R " $NF " not > 1"; bad = 1 }
    END { exit bad }
' "$workdir/asym.log" || {
    echo "asym-smoke: fig12-asym read/write asymmetry did not diverge" >&2
    cat "$workdir/asym.log" >&2
    exit 1
}

# Bandwidth collapse: Optane's 8-writer point must sit below its 4-writer
# peak in the fig11-asym table (columns: Profile Writers Agg ...).
awk '
    /^== fig11-asym/ { in11 = 1 }
    /^\(fig11-asym/  { in11 = 0 }
    in11 && $1 == "optane-dcpmm" && $2 == 4 { peak = $3 }
    in11 && $1 == "optane-dcpmm" && $2 == 8 { last = $3 }
    END { exit !(peak > 0 && last > 0 && last < peak) }
' "$workdir/asym.log" || {
    echo "asym-smoke: fig11-asym shows no write-bandwidth collapse past the peak" >&2
    cat "$workdir/asym.log" >&2
    exit 1
}
echo "asym-smoke: profiles diverge (W/R both directions, Optane collapse)"

echo "asym-smoke: -write-latency override"
"$workdir/quartzbench" -exp fig12-asym -scale quick \
    -nvm-profile pcm -write-latency 900 >"$workdir/override.log" 2>&1 || {
    echo "asym-smoke: override run failed" >&2
    cat "$workdir/override.log" >&2
    exit 1
}
if ! grep -q "900.0" "$workdir/override.log"; then
    echo "asym-smoke: -write-latency 900 not reflected in the table" >&2
    cat "$workdir/override.log" >&2
    exit 1
fi
if grep -q "optane-dcpmm" "$workdir/override.log"; then
    echo "asym-smoke: -nvm-profile pcm did not narrow the sweep" >&2
    exit 1
fi

echo "asym-smoke: CLI validation (bad values exit 2)"
for args in "-write-latency -5" "-nvm-profile xpoint"; do
    set +e
    # shellcheck disable=SC2086
    "$workdir/quartzbench" -exp fig12-asym $args >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 2 ]; then
        echo "asym-smoke: quartzbench $args exited $code, want 2" >&2
        exit 1
    fi
done
set +e
"$workdir/quartzrun" -nvm-write -1 >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "asym-smoke: quartzrun -nvm-write -1 exited $code, want 2" >&2
    exit 1
fi

echo "asym-smoke: quartzrun under -nvm-profile pcm"
"$workdir/quartzrun" -workload memlat -nvm-profile pcm \
    -iters 5000 -lines 32768 -min-epoch 0.05 -max-epoch 1 \
    >"$workdir/run.log" 2>&1 || {
    echo "asym-smoke: quartzrun failed" >&2
    cat "$workdir/run.log" >&2
    exit 1
}
if ! grep -q "^store model: " "$workdir/run.log"; then
    echo "asym-smoke: quartzrun did not report store-model stats" >&2
    cat "$workdir/run.log" >&2
    exit 1
fi
echo "asym-smoke: OK"
