// Command benchcompare times the evaluation suite experiment by experiment
// and emits a machine-readable timing artifact (BENCH_N.json) so the
// repository tracks its performance trajectory.
//
// Each selected experiment runs -runs times in-process (serially, for stable
// numbers) and is scored by its minimum wall time — the standard estimator
// for noisy hosts. With -baseline pointing at a previous artifact, the
// per-experiment delta against it is computed and printed; the emitted
// artifact then carries both sides, so a committed BENCH file always shows
// before and after.
//
// -trial-parallel lets each experiment run its independent trials (and
// paired Conf_1/Conf_2 simulations) concurrently — the knob being measured
// by the BENCH_7 artifact; tables stay byte-identical. With -fail-above N,
// the command exits 1 when the total is more than N% slower than the
// baseline, making it usable as a CI regression gate.
//
// Usage:
//
//	benchcompare -exp fig11,fig12,fig13 -scale quick -runs 2 -trial-parallel 4 -baseline BENCH_3.json -o BENCH_7.json -fail-above 5
//	benchcompare -exp table2 -runs 1 -o ""   # print-only smoke run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/quartz-emu/quartz/internal/experiments"
)

// Artifact is the BENCH_N.json schema.
type Artifact struct {
	Schema      string       `json:"schema"`
	GeneratedAt string       `json:"generated_at"`
	Scale       string       `json:"scale"`
	Runs        int          `json:"runs"`
	Experiments []Experiment `json:"experiments"`
	TotalMinMS  float64      `json:"total_min_ms"`
	// BaselineTotalMS and DeltaPct are present when a baseline was supplied.
	BaselineTotalMS float64 `json:"baseline_total_ms,omitempty"`
	DeltaPct        float64 `json:"delta_pct,omitempty"`
}

// Experiment is one experiment's timing entry.
type Experiment struct {
	ID     string    `json:"id"`
	WallMS []float64 `json:"wall_ms"`
	MinMS  float64   `json:"min_ms"`
	// BaselineMS and DeltaPct compare against the -baseline artifact
	// (negative delta = faster than baseline).
	BaselineMS float64 `json:"baseline_ms,omitempty"`
	DeltaPct   float64 `json:"delta_pct,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcompare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag      = fs.String("exp", "fig11,fig12,fig13", "comma-separated experiment ids")
		scaleFlag    = fs.String("scale", "quick", "sweep scale: quick or full")
		runsFlag     = fs.Int("runs", 2, "timed passes per experiment (scored by minimum)")
		trialPar     = fs.Int("trial-parallel", 0, "concurrent trials/variants within one experiment job (0 or 1 = serial)")
		baselineFlag = fs.String("baseline", "", "previous artifact to diff against")
		outFlag      = fs.String("o", "BENCH.json", "output artifact path (empty = print only)")
		failAbove    = fs.Float64("fail-above", 0, "exit 1 if the total delta vs -baseline exceeds this percentage (0 = never fail)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(stderr, "benchcompare: unknown scale %q (quick|full)\n", *scaleFlag)
		return 2
	}
	if *runsFlag < 1 {
		fmt.Fprintln(stderr, "benchcompare: -runs must be at least 1")
		return 2
	}
	if *trialPar < 0 {
		fmt.Fprintf(stderr, "benchcompare: -trial-parallel %d: must be >= 0 (0 or 1 = serial)\n", *trialPar)
		return 2
	}
	if *failAbove < 0 {
		fmt.Fprintf(stderr, "benchcompare: -fail-above %g: must be >= 0 (0 = never fail)\n", *failAbove)
		return 2
	}
	if *failAbove > 0 && *baselineFlag == "" {
		fmt.Fprintln(stderr, "benchcompare: -fail-above needs -baseline")
		return 2
	}
	scale.TrialParallel = *trialPar

	var ids []string
	for _, id := range strings.Split(*expFlag, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !experiments.Known(id) {
			fmt.Fprintf(stderr, "benchcompare: unknown experiment %q\n", id)
			return 2
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		fmt.Fprintln(stderr, "benchcompare: no experiments selected")
		return 2
	}

	baseline := map[string]float64{}
	var baselineTotal float64
	if *baselineFlag != "" {
		prev, err := readArtifact(*baselineFlag)
		if err != nil {
			fmt.Fprintf(stderr, "benchcompare: reading baseline: %v\n", err)
			return 1
		}
		for _, e := range prev.Experiments {
			baseline[e.ID] = e.MinMS
		}
		baselineTotal = prev.TotalMinMS
	}

	art := Artifact{
		Schema:      "quartz-bench-compare/1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       *scaleFlag,
		Runs:        *runsFlag,
	}
	for _, id := range ids {
		e := Experiment{ID: id, MinMS: -1}
		for r := 0; r < *runsFlag; r++ {
			start := time.Now()
			if _, err := experiments.Run(id, scale); err != nil {
				fmt.Fprintf(stderr, "benchcompare: %s: %v\n", id, err)
				return 1
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			e.WallMS = append(e.WallMS, ms)
			if e.MinMS < 0 || ms < e.MinMS {
				e.MinMS = ms
			}
		}
		line := fmt.Sprintf("%-18s %8.1f ms (min of %d)", id, e.MinMS, *runsFlag)
		if b, ok := baseline[id]; ok && b > 0 {
			e.BaselineMS = b
			e.DeltaPct = (e.MinMS - b) / b * 100
			line += fmt.Sprintf("   baseline %8.1f ms   delta %+6.1f%%", b, e.DeltaPct)
		}
		fmt.Fprintln(stdout, line)
		art.TotalMinMS += e.MinMS
		art.Experiments = append(art.Experiments, e)
	}
	if baselineTotal > 0 {
		art.BaselineTotalMS = baselineTotal
		art.DeltaPct = (art.TotalMinMS - baselineTotal) / baselineTotal * 100
		fmt.Fprintf(stdout, "%-18s %8.1f ms             baseline %8.1f ms   delta %+6.1f%%\n",
			"total", art.TotalMinMS, baselineTotal, art.DeltaPct)
	} else {
		fmt.Fprintf(stdout, "%-18s %8.1f ms\n", "total", art.TotalMinMS)
	}

	if *outFlag != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchcompare: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchcompare: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *outFlag)
	}
	if *failAbove > 0 && baselineTotal > 0 && art.DeltaPct > *failAbove {
		fmt.Fprintf(stderr, "benchcompare: total regressed %+.1f%% vs baseline (threshold +%g%%)\n",
			art.DeltaPct, *failAbove)
		return 1
	}
	return 0
}

func readArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
