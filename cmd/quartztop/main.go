// Command quartztop is a live terminal monitor for a running emulation: it
// polls a quartzbench/quartzrun introspection server (-serve) and renders
// epochs/sec, the injected-delay share, histogram quantiles, throttle and
// token-bucket activity, per-experiment job progress, and a live event feed
// from the SSE stream — top(1) for an emulated memory system.
//
// Usage:
//
//	quartzbench -exp all -scale full -serve :8077 &
//	quartztop -addr http://127.0.0.1:8077
//
//	quartztop -addr http://127.0.0.1:8077 -interval 5s
//	quartztop -addr http://127.0.0.1:8077 -once       # one probe, no TUI
//
// -once fetches /metrics, /ledger and /runs once, validates the responses,
// prints a one-shot summary and exits — the smoke-test mode make
// serve-smoke uses.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("quartztop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag     = fs.String("addr", "http://127.0.0.1:8077", "introspection server base URL (quartzbench/quartzrun -serve)")
		intervalFlag = fs.Duration("interval", 2*time.Second, "poll interval")
		onceFlag     = fs.Bool("once", false, "probe /metrics, /ledger and /runs once, print a summary, exit")
		iterFlag     = fs.Int("n", 0, "stop after this many refreshes (0 = until interrupted)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *intervalFlag <= 0 {
		fmt.Fprintln(stderr, "quartztop: -interval must be > 0")
		return 2
	}
	base := strings.TrimSuffix(*addrFlag, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &client{base: base, hc: &http.Client{Timeout: 10 * time.Second}}

	if *onceFlag {
		if err := probeOnce(c, stdout); err != nil {
			fmt.Fprintf(stderr, "quartztop: %v\n", err)
			return 1
		}
		return 0
	}
	if err := monitor(c, *intervalFlag, *iterFlag, stdout); err != nil {
		fmt.Fprintf(stderr, "quartztop: %v\n", err)
		return 1
	}
	return 0
}

// client wraps the introspection endpoints.
type client struct {
	base string
	hc   *http.Client
}

// getJSON fetches path and decodes the JSON body into v. notFoundOK makes a
// 404 a nil result instead of an error (the /runs endpoint without a
// runner).
func (c *client) getJSON(path string, v any, notFoundOK bool) (found bool, err error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if notFoundOK && resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return false, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return false, fmt.Errorf("GET %s: invalid JSON: %v", path, err)
	}
	return true, nil
}

// metrics is a decoded /metrics snapshot.
type metrics map[string]any

// counter reads a counter/gauge value (both decode as float64).
func (m metrics) counter(name string) float64 {
	v, _ := m[name].(float64)
	return v
}

// histQ reads quantile q ("p50"...) of histogram name.
func (m metrics) histQ(name, q string) float64 {
	h, _ := m[name].(map[string]any)
	v, _ := h[q].(float64)
	return v
}

// ledgerPage mirrors obshttp.LedgerPage (decoded loosely: quartztop only
// needs counts and sequence numbers).
type ledgerPage struct {
	Total     uint64           `json:"total"`
	Next      uint64           `json:"next"`
	Truncated bool             `json:"truncated"`
	Records   []map[string]any `json:"records"`
}

// runsPage mirrors runner.StatusSnapshot.
type runsPage struct {
	Running     bool    `json:"running"`
	ElapsedS    float64 `json:"elapsed_s"`
	TotalJobs   int     `json:"total_jobs"`
	DoneJobs    int     `json:"done_jobs"`
	FailedJobs  int     `json:"failed_jobs"`
	Experiments []struct {
		ID         string `json:"id"`
		TotalJobs  int    `json:"total_jobs"`
		DoneJobs   int    `json:"done_jobs"`
		FailedJobs int    `json:"failed_jobs"`
		State      string `json:"state"`
	} `json:"experiments"`
	LastJob *struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	} `json:"last_job"`
}

// probeOnce is the -once smoke mode: fetch every pollable endpoint,
// validate, summarize.
func probeOnce(c *client, w io.Writer) error {
	var m metrics
	if _, err := c.getJSON("/metrics", &m, false); err != nil {
		return err
	}
	var lp ledgerPage
	if _, err := c.getJSON("/ledger?since=0&limit=5", &lp, false); err != nil {
		return err
	}
	var runs runsPage
	haveRuns, err := c.getJSON("/runs", &runs, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "metrics: %d entries, epochs closed %.0f\n", len(m), m.counter("quartz.epochs.closed"))
	if ops := m.counter("quartz.ops.count"); ops > 0 {
		fmt.Fprintf(w, "traffic: %.0f ops (read %.0f, update %.0f, scan %.0f), op p99 %s\n",
			ops, m.counter("quartz.ops.read.count"), m.counter("quartz.ops.update.count"),
			m.counter("quartz.ops.scan.count"), fmtNS(m.histQ("quartz.ops.latency_ns", "p99")))
	}
	fmt.Fprintf(w, "ledger: total %d, page of %d records (next=%d)\n", lp.Total, len(lp.Records), lp.Next)
	if haveRuns {
		fmt.Fprintf(w, "runs: %d/%d jobs done, %d failed, running=%v\n",
			runs.DoneJobs, runs.TotalJobs, runs.FailedJobs, runs.Running)
	} else {
		fmt.Fprintln(w, "runs: no experiment runner attached")
	}
	if n, found, err := c.getVTProf(); err != nil {
		return err
	} else if found {
		fmt.Fprintf(w, "vtprof: %d bytes\n", n)
	} else {
		fmt.Fprintln(w, "vtprof: no virtual-time profiler attached")
	}
	return nil
}

// getVTProf fetches /vtprof and reports the profile size; a 404 (no profiler
// attached) is a normal outcome, not an error.
func (c *client) getVTProf() (n int64, found bool, err error) {
	resp, err := c.hc.Get(c.base + "/vtprof")
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return 0, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, false, fmt.Errorf("GET /vtprof: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	n, err = io.Copy(io.Discard, resp.Body)
	if err != nil {
		return 0, false, fmt.Errorf("GET /vtprof: %v", err)
	}
	return n, true, nil
}

// trafficEvent mirrors the "traffic" SSE event payload (obs.Event's traffic
// fields): live scenario progress published by the workload engine.
type trafficEvent struct {
	Scenario  string  `json:"scenario"`
	Clients   int     `json:"clients"`
	Mix       string  `json:"mix"`
	Done      int64   `json:"done"`
	TotalOps  int64   `json:"total_ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P99NS     float64 `json:"p99_ns"`
}

// eventCounts tallies SSE events by kind and keeps the newest traffic
// scenario payload for the live panel.
type eventCounts struct {
	connected     atomic.Bool
	epoch, inject atomic.Int64
	throttle, job atomic.Int64
	traffic       atomic.Int64
	lastTraffic   atomic.Pointer[trafficEvent]
}

// watchEvents consumes the SSE stream, counting events until ctx ends. It
// reconnects with backoff so a monitor started before the server survives.
func watchEvents(ctx context.Context, c *client, ec *eventCounts) {
	for ctx.Err() == nil {
		streamEvents(ctx, c, ec)
		ec.connected.Store(false)
		select {
		case <-ctx.Done():
		case <-time.After(time.Second):
		}
	}
}

// streamEvents reads one SSE connection until it breaks.
func streamEvents(ctx context.Context, c *client, ec *eventCounts) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/events", nil)
	if err != nil {
		return
	}
	resp, err := c.hc.Transport.RoundTrip(req) // no client timeout on the stream
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	ec.connected.Store(true)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var pendingTraffic bool // the next "data: " line belongs to a traffic event
	for sc.Scan() {
		line := sc.Text()
		if pendingTraffic {
			pendingTraffic = false
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var te trafficEvent
				if json.Unmarshal([]byte(data), &te) == nil {
					ec.lastTraffic.Store(&te)
				}
			}
		}
		kind, ok := strings.CutPrefix(line, "event: ")
		if !ok {
			continue
		}
		switch kind {
		case "epoch":
			ec.epoch.Add(1)
		case "inject":
			ec.inject.Add(1)
		case "throttle":
			ec.throttle.Add(1)
		case "job":
			ec.job.Add(1)
		case "traffic":
			ec.traffic.Add(1)
			pendingTraffic = true
		}
	}
}

// sample is one poll of the server.
type sample struct {
	at      time.Time
	metrics metrics
	runs    *runsPage
}

// poll fetches one sample.
func poll(c *client) (*sample, error) {
	s := &sample{at: time.Now()}
	if _, err := c.getJSON("/metrics", &s.metrics, false); err != nil {
		return nil, err
	}
	var runs runsPage
	if found, err := c.getJSON("/runs", &runs, true); err == nil && found {
		s.runs = &runs
	}
	return s, nil
}

// monitor is the live loop: poll, render, repeat.
func monitor(c *client, interval time.Duration, iters int, w io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if c.hc.Transport == nil {
		c.hc.Transport = http.DefaultTransport
	}
	var ec eventCounts
	go watchEvents(ctx, c, &ec)

	var prev *sample
	for n := 0; iters == 0 || n < iters; n++ {
		cur, err := poll(c)
		if err != nil {
			if prev == nil {
				return err
			}
			fmt.Fprintf(w, "\n(connection lost: %v — run finished?)\n", err)
			return nil
		}
		fmt.Fprint(w, "\x1b[2J\x1b[H") // clear screen, home cursor
		render(w, c.base, cur, prev, &ec)
		prev = cur
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
	return nil
}

// render draws one frame.
func render(w io.Writer, base string, cur, prev *sample, ec *eventCounts) {
	m := cur.metrics
	fmt.Fprintf(w, "quartztop — %s — %s\n\n", base, cur.at.Format("15:04:05"))

	epochs := m.counter("quartz.epochs.closed")
	rate := 0.0
	if prev != nil {
		if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
			rate = (epochs - prev.metrics.counter("quartz.epochs.closed")) / dt
		}
	}
	computed := m.counter("quartz.delay.computed_ns")
	injected := m.counter("quartz.delay.injected_ns")
	share := 100.0
	if computed > 0 {
		share = injected / computed * 100
	}
	fmt.Fprintf(w, "  epochs closed   %12.0f   (%.0f/s)\n", epochs, rate)
	fmt.Fprintf(w, "    by reason     max %.0f  sync %.0f  end %.0f\n",
		m.counter("quartz.epochs.reason.max"), m.counter("quartz.epochs.reason.sync"),
		m.counter("quartz.epochs.reason.end"))
	fmt.Fprintf(w, "  delay injected  %10.1fms   (%.1f%% of computed %.1fms)\n",
		injected/1e6, share, computed/1e6)
	fmt.Fprintf(w, "  epoch len p50/p95/p99   %s / %s / %s\n",
		fmtNS(m.histQ("quartz.epoch.len_ns", "p50")),
		fmtNS(m.histQ("quartz.epoch.len_ns", "p95")),
		fmtNS(m.histQ("quartz.epoch.len_ns", "p99")))
	fmt.Fprintf(w, "  epoch delay p50/p95/p99 %s / %s / %s\n",
		fmtNS(m.histQ("quartz.epoch.delay_ns", "p50")),
		fmtNS(m.histQ("quartz.epoch.delay_ns", "p95")),
		fmtNS(m.histQ("quartz.epoch.delay_ns", "p99")))
	fmt.Fprintf(w, "  throttle writes %.0f read / %.0f write   bucket refills %.0f read / %.0f write\n",
		m.counter("mem.throttle.programmed.read"), m.counter("mem.throttle.programmed.write"),
		m.counter("mem.bucket.refills.read"), m.counter("mem.bucket.refills.write"))

	renderTraffic(w, cur, prev, ec)

	if ec.connected.Load() {
		fmt.Fprintf(w, "  events (SSE)    epoch %d  inject %d  throttle %d  job %d  traffic %d\n",
			ec.epoch.Load(), ec.inject.Load(), ec.throttle.Load(), ec.job.Load(), ec.traffic.Load())
	} else {
		fmt.Fprintf(w, "  events (SSE)    connecting...\n")
	}

	if cur.runs != nil {
		r := cur.runs
		state := "done"
		if r.Running {
			state = "running"
		}
		fmt.Fprintf(w, "\n  suite %s — %d/%d jobs, %d failed, %.1fs\n",
			state, r.DoneJobs, r.TotalJobs, r.FailedJobs, r.ElapsedS)
		for _, e := range r.Experiments {
			fmt.Fprintf(w, "    %-14s %s %3d/%-3d %-7s", e.ID,
				bar(e.DoneJobs, e.TotalJobs, 20), e.DoneJobs, e.TotalJobs, e.State)
			if e.FailedJobs > 0 {
				fmt.Fprintf(w, "  %d failed", e.FailedJobs)
			}
			fmt.Fprintln(w)
		}
		if r.LastJob != nil {
			fmt.Fprintf(w, "    last: %s (%s)\n", r.LastJob.ID, r.LastJob.Status)
		}
	}

	// A few other interesting counters, if present.
	var extras []string
	for _, name := range []string{"runner.jobs.ok", "runner.jobs.failed", "sim.dispatches", "simos.sync.contended_waits"} {
		if v, ok := m[name].(float64); ok && v > 0 {
			extras = append(extras, fmt.Sprintf("%s %.0f", name, v))
		}
	}
	sort.Strings(extras)
	if len(extras) > 0 {
		fmt.Fprintf(w, "\n  %s\n", strings.Join(extras, "   "))
	}
	fmt.Fprintln(w, "\n  (Ctrl-C to quit)")
}

// renderTraffic draws the serving-traffic panel: cumulative op counts and
// latency quantiles from the quartz.ops.* metric family, a wall-clock op rate
// from the delta between polls, and the newest traffic SSE event's scenario
// progress. Hidden until a traffic scenario has run.
func renderTraffic(w io.Writer, cur, prev *sample, ec *eventCounts) {
	m := cur.metrics
	ops := m.counter("quartz.ops.count")
	te := ec.lastTraffic.Load()
	if ops == 0 && te == nil {
		return
	}
	wallRate := 0.0
	if prev != nil {
		if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
			wallRate = (ops - prev.metrics.counter("quartz.ops.count")) / dt
		}
	}
	fmt.Fprintf(w, "  traffic ops     %12.0f   (%.0f/s wall)   read %.0f  update %.0f  scan %.0f\n",
		ops, wallRate,
		m.counter("quartz.ops.read.count"), m.counter("quartz.ops.update.count"),
		m.counter("quartz.ops.scan.count"))
	fmt.Fprintf(w, "  op lat p50/p95/p99      %s / %s / %s\n",
		fmtNS(m.histQ("quartz.ops.latency_ns", "p50")),
		fmtNS(m.histQ("quartz.ops.latency_ns", "p95")),
		fmtNS(m.histQ("quartz.ops.latency_ns", "p99")))
	if te != nil {
		fmt.Fprintf(w, "  scenario %-24s %s clients  %s %s/%s ops  %.0f ops/s sim  p99 %s\n",
			te.Scenario, fmtCount(float64(te.Clients)),
			bar(int(te.Done), int(te.TotalOps), 20), fmtCount(float64(te.Done)), fmtCount(float64(te.TotalOps)),
			te.OpsPerSec, fmtNS(te.P99NS))
	}
}

// fmtCount renders a count compactly: exact below 100k, k/M-suffixed above
// (a million-client scenario reports 1.0M clients and multi-million op
// totals, which would otherwise blow out the panel's columns).
func fmtCount(n float64) string {
	switch {
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", n/1e6)
	case n >= 1e5:
		return fmt.Sprintf("%.0fk", n/1e3)
	default:
		return fmt.Sprintf("%.0f", n)
	}
}

// bar renders a width-character progress bar.
func bar(done, total, width int) string {
	if total <= 0 {
		return strings.Repeat("-", width)
	}
	filled := done * width / total
	if filled > width {
		filled = width
	}
	return strings.Repeat("#", filled) + strings.Repeat(".", width-filled)
}

// fmtNS renders a nanosecond quantity with an adaptive unit.
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
