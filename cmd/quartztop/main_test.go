package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/obs/obshttp"
	"github.com/quartz-emu/quartz/internal/runner"
	"github.com/quartz-emu/quartz/internal/sim"
)

// testServer spins up a real introspection server with a populated recorder
// and status board, exactly what quartztop polls in production.
func testServer(t *testing.T, withBoard bool) *httptest.Server {
	t.Helper()
	rec := obs.New(0)
	for i := 0; i < 20; i++ {
		start := sim.Time(i) * sim.Millisecond
		rec.EpochClosed(obs.EpochRecord{
			PID: 1, TID: 0, Start: start, End: start + sim.Millisecond,
			Reason: "max", StallCycles: 5000, L3MissLocal: 100,
			Delay: 20 * sim.Microsecond, Injected: 18 * sim.Microsecond,
		})
	}
	o := obshttp.Options{Recorder: rec}
	if withBoard {
		board := runner.NewStatusBoard()
		board.SuiteStarted([]string{"overhead"}, []int{4})
		board.JobFinished(runner.Result{JobID: "overhead/0", Experiment: "overhead", Status: runner.StatusOK})
		o.Status = board
	}
	srv := httptest.NewServer(obshttp.Handler(o))
	t.Cleanup(srv.Close)
	return srv
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestOnceProbesAllEndpoints: the -once smoke mode must validate /metrics,
// /ledger and /runs and summarize each.
func TestOnceProbesAllEndpoints(t *testing.T) {
	srv := testServer(t, true)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-once")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "epochs closed 20") {
		t.Errorf("metrics summary wrong:\n%s", stdout)
	}
	if !strings.Contains(stdout, "ledger: total 20, page of 5 records") {
		t.Errorf("ledger summary wrong:\n%s", stdout)
	}
	if !strings.Contains(stdout, "runs: 1/4 jobs done") {
		t.Errorf("runs summary wrong:\n%s", stdout)
	}
	// No profiler attached: /vtprof 404 is a normal outcome, not an error.
	if !strings.Contains(stdout, "vtprof: no virtual-time profiler attached") {
		t.Errorf("missing no-profiler line:\n%s", stdout)
	}
}

// TestOnceVTProf: with a profiler attached, the probe reports the profile's
// byte size instead of the 404 line.
func TestOnceVTProf(t *testing.T) {
	rec := obs.New(0)
	payload := []byte("pprof-bytes-here")
	srv := httptest.NewServer(obshttp.Handler(obshttp.Options{
		Recorder: rec,
		VTProf:   func() ([]byte, error) { return payload, nil },
	}))
	t.Cleanup(srv.Close)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-once")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if want := fmt.Sprintf("vtprof: %d bytes", len(payload)); !strings.Contains(stdout, want) {
		t.Errorf("missing %q:\n%s", want, stdout)
	}
}

// TestOnceWithoutRunner: /runs 404 is reported, not treated as an error.
func TestOnceWithoutRunner(t *testing.T) {
	srv := testServer(t, false)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-once")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "runs: no experiment runner attached") {
		t.Errorf("missing no-runner line:\n%s", stdout)
	}
}

// TestOnceUnreachableServer: a dead server is exit 1 with a clear error.
func TestOnceUnreachableServer(t *testing.T) {
	code, _, stderr := runCLI(t, "-addr", "http://127.0.0.1:1", "-once")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "quartztop:") {
		t.Errorf("stderr: %q", stderr)
	}
}

// TestMonitorRendersFrames: -n bounds the TUI loop so it renders frames and
// exits; the frame must carry the headline numbers.
func TestMonitorRendersFrames(t *testing.T) {
	srv := testServer(t, true)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-n", "2", "-interval", "10ms")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"quartztop — " + srv.URL,
		"epochs closed",
		"epoch len p50/p95/p99",
		"suite running — 1/4 jobs",
		"overhead",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("frame missing %q:\n%s", want, stdout)
		}
	}
}

// trafficServer spins up an introspection server whose recorder has served
// traffic: quartz.ops.* metrics plus the quartz.traffic.* gauges.
func trafficServer(t *testing.T) *httptest.Server {
	t.Helper()
	rec := obs.New(0)
	reg := rec.Registry()
	reg.Counter("quartz.ops.count").Add(100)
	reg.Counter("quartz.ops.read.count").Add(70)
	reg.Counter("quartz.ops.update.count").Add(20)
	reg.Counter("quartz.ops.scan.count").Add(10)
	for i := int64(1); i <= 100; i++ {
		reg.Histogram("quartz.ops.latency_ns").Observe(i * 100)
	}
	rec.EpochClosed(obs.EpochRecord{PID: 1, Reason: "max", Delay: sim.Microsecond})
	rec.TrafficProgress("read-mostly/lat=200ns/clients=8", "read-mostly", 8, 50, 100, 123456, 9000)
	srv := httptest.NewServer(obshttp.Handler(obshttp.Options{Recorder: rec}))
	t.Cleanup(srv.Close)
	return srv
}

// TestOnceTrafficLine: with served traffic, -once prints the traffic summary
// line (what scripts/traffic-smoke.sh greps for).
func TestOnceTrafficLine(t *testing.T) {
	srv := trafficServer(t)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-once")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "traffic: 100 ops (read 70, update 20, scan 10)") {
		t.Errorf("traffic line wrong:\n%s", stdout)
	}
}

// TestOnceNoTrafficLine: without traffic metrics the line stays hidden.
func TestOnceNoTrafficLine(t *testing.T) {
	srv := testServer(t, false)
	_, stdout, _ := runCLI(t, "-addr", srv.URL, "-once")
	if strings.Contains(stdout, "traffic:") {
		t.Errorf("traffic line shown without traffic:\n%s", stdout)
	}
}

// TestMonitorTrafficPanel: the TUI frame shows the traffic panel with op
// counts and latency quantiles when a scenario has run.
func TestMonitorTrafficPanel(t *testing.T) {
	srv := trafficServer(t)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-n", "1", "-interval", "10ms")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"traffic ops", "read 70", "update 20", "scan 10", "op lat p50/p95/p99"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("frame missing %q:\n%s", want, stdout)
		}
	}
}

// TestStreamEventsTraffic: streamEvents must count traffic events and decode
// the following data line into lastTraffic.
func TestStreamEventsTraffic(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, ": connected\n\n")
		fmt.Fprint(w, "event: epoch\ndata: {\"kind\":\"epoch\"}\n\n")
		fmt.Fprint(w, "event: traffic\ndata: {\"kind\":\"traffic\",\"scenario\":\"s1\",\"mix\":\"write-heavy\","+
			"\"clients\":32,\"done\":10,\"total_ops\":64,\"ops_per_sec\":5000,\"p99_ns\":1500}\n\n")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := &client{base: srv.URL, hc: &http.Client{Transport: http.DefaultTransport}}
	var ec eventCounts
	streamEvents(context.Background(), c, &ec)
	if got := ec.traffic.Load(); got != 1 {
		t.Errorf("traffic events = %d, want 1", got)
	}
	if got := ec.epoch.Load(); got != 1 {
		t.Errorf("epoch events = %d, want 1", got)
	}
	te := ec.lastTraffic.Load()
	if te == nil {
		t.Fatal("lastTraffic not captured")
	}
	if te.Scenario != "s1" || te.Mix != "write-heavy" || te.Clients != 32 ||
		te.Done != 10 || te.TotalOps != 64 || te.OpsPerSec != 5000 || te.P99NS != 1500 {
		t.Errorf("lastTraffic = %+v", *te)
	}
}

// TestBadFlags: invalid invocations are usage errors.
func TestBadFlags(t *testing.T) {
	if code, _, _ := runCLI(t, "-interval", "0s"); code != 2 {
		t.Errorf("-interval 0: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

// TestAddrNormalization: a bare host:port gets the scheme prepended.
func TestAddrNormalization(t *testing.T) {
	srv := testServer(t, false)
	bare := strings.TrimPrefix(srv.URL, "http://")
	code, stdout, stderr := runCLI(t, "-addr", bare, "-once")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "epochs closed 20") {
		t.Errorf("probe over normalized addr failed:\n%s", stdout)
	}
}

func TestBar(t *testing.T) {
	if got := bar(0, 0, 4); got != "----" {
		t.Errorf("bar(0,0) = %q", got)
	}
	if got := bar(2, 4, 4); got != "##.." {
		t.Errorf("bar(2,4) = %q", got)
	}
	if got := bar(9, 4, 4); got != "####" {
		t.Errorf("bar overflow = %q", got)
	}
}

func TestFmtCount(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		512:       "512",
		16_384:    "16384",
		262_144:   "262k",
		1_048_576: "1.0M",
	}
	for in, want := range cases {
		if got := fmtCount(in); got != want {
			t.Errorf("fmtCount(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtNS(t *testing.T) {
	cases := map[float64]string{
		12:      "12ns",
		1500:    "1.5us",
		2500000: "2.5ms",
	}
	for in, want := range cases {
		if got := fmtNS(in); got != want {
			t.Errorf("fmtNS(%v) = %q, want %q", in, got, want)
		}
	}
}
